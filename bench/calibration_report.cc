/**
 * @file
 * Calibration report: simulated SAVAT versus the paper's anchor
 * values for every machine and distance. Used to fit the emission
 * constants in src/em/emission.cc and regenerated for
 * EXPERIMENTS.md.
 */

#include <cstdio>
#include <vector>

#include "core/meter.hh"
#include "core/reference.hh"
#include "support/stats.hh"
#include "support/units.hh"

using namespace savat;
using core::ReferenceAnchor;
using kernels::EventKind;

namespace {

double
meanSavat(core::SavatMeter &meter, EventKind a, EventKind b,
          std::uint64_t seed, int reps = 10)
{
    const auto &sim = meter.simulatePair(a, b);
    Rng rng(seed);
    RunningStats stats;
    for (int i = 0; i < reps; ++i) {
        auto rep = rng.fork();
        stats.add(meter.measure(sim, rep).savat.inZepto());
    }
    return stats.mean();
}

void
reportAnchors(const std::string &machine, double distance_cm,
              const std::vector<ReferenceAnchor> &anchors)
{
    core::MeterConfig config;
    config.distance = Distance::centimeters(distance_cm);
    auto meter = core::SavatMeter::forMachine(machine, config);
    std::printf("== %s @ %.0f cm ==\n", machine.c_str(), distance_cm);
    std::printf("%-12s %10s %10s %8s\n", "pair", "paper[zJ]", "sim[zJ]",
                "ratio");
    for (const auto &a : anchors) {
        const double sim =
            meanSavat(meter, a.a, a.b, 42 + distance_cm);
        std::printf("%-5s/%-6s %10.2f %10.2f %8.2f\n",
                    kernels::eventName(a.a), kernels::eventName(a.b),
                    a.zj, sim, sim / a.zj);
    }
    std::printf("\n");
}

std::vector<ReferenceAnchor>
core2duoAnchors10cm()
{
    const auto &ref = core::figure9Core2Duo();
    auto cell = [&ref](EventKind a, EventKind b) {
        const auto ia = static_cast<std::size_t>(a);
        const auto ib = static_cast<std::size_t>(b);
        return ReferenceAnchor{a, b, ref.zj[ia][ib]};
    };
    return {
        cell(EventKind::ADD, EventKind::ADD),
        cell(EventKind::ADD, EventKind::MUL),
        cell(EventKind::ADD, EventKind::LDL1),
        cell(EventKind::ADD, EventKind::DIV),
        cell(EventKind::ADD, EventKind::LDL2),
        cell(EventKind::ADD, EventKind::STL2),
        cell(EventKind::ADD, EventKind::LDM),
        cell(EventKind::ADD, EventKind::STM),
        cell(EventKind::LDL2, EventKind::LDM),
        cell(EventKind::LDL1, EventKind::LDL2),
        cell(EventKind::STL1, EventKind::STL2),
        cell(EventKind::STL2, EventKind::STM),
        cell(EventKind::STL2, EventKind::DIV),
        cell(EventKind::LDM, EventKind::LDM),
        cell(EventKind::STM, EventKind::STM),
        cell(EventKind::LDL2, EventKind::LDL2),
        cell(EventKind::DIV, EventKind::DIV),
        cell(EventKind::LDM, EventKind::STM),
    };
}

std::vector<ReferenceAnchor>
core2duoAnchors(const core::ReferenceMatrix &ref)
{
    auto cell = [&ref](EventKind a, EventKind b) {
        const auto ia = static_cast<std::size_t>(a);
        const auto ib = static_cast<std::size_t>(b);
        return ReferenceAnchor{a, b, ref.zj[ia][ib]};
    };
    return {
        cell(EventKind::ADD, EventKind::ADD),
        cell(EventKind::ADD, EventKind::DIV),
        cell(EventKind::ADD, EventKind::LDL2),
        cell(EventKind::ADD, EventKind::LDM),
        cell(EventKind::ADD, EventKind::STM),
        cell(EventKind::LDM, EventKind::LDM),
        cell(EventKind::STM, EventKind::STM),
    };
}

} // namespace

int
main()
{
    reportAnchors("core2duo", 10.0, core2duoAnchors10cm());
    reportAnchors("core2duo", 50.0,
                  core2duoAnchors(core::figure17Core2Duo50cm()));
    reportAnchors("core2duo", 100.0,
                  core2duoAnchors(core::figure18Core2Duo100cm()));
    reportAnchors("pentium3m", 10.0, core::pentium3mAnchors());
    reportAnchors("turionx2", 10.0, core::turionx2Anchors());
    return 0;
}
