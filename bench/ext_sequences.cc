/**
 * @file
 * Extension experiment: instruction-sequence SAVAT (Section III's
 * "combination" future work).
 *
 * The paper conjectures that the sum of single-instruction SAVATs
 * estimates a sequence's combined signal, while warning that
 * reordering/overlap make the estimate imprecise. Here we measure
 * sequence pairs directly with sequence alternation kernels and
 * compare against the additivity estimate.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/meter.hh"
#include "support/stats.hh"
#include "support/strings.hh"
#include "support/table.hh"

using namespace savat;
using kernels::EventKind;
using kernels::EventSequence;

namespace {

double
meanSeq(core::SavatMeter &meter, const EventSequence &a,
        const EventSequence &b)
{
    const auto &sim = meter.simulateSequencePair(a, b);
    Rng rng(77);
    RunningStats s;
    for (int i = 0; i < 8; ++i) {
        auto rep = rng.fork();
        s.add(meter.measure(sim, rep).savat.inZepto());
    }
    return s.mean();
}

} // namespace

int
main()
{
    auto meter = core::SavatMeter::forMachine("core2duo");

    bench::heading("Sequence SAVAT vs additivity estimate "
                   "(Core 2 Duo, vs NOI)");

    struct Case
    {
        EventSequence seq;
    };
    const std::vector<EventSequence> sequences = {
        {EventKind::DIV, EventKind::DIV},
        {EventKind::LDM, EventKind::DIV},
        {EventKind::LDL2, EventKind::DIV},
        {EventKind::LDM, EventKind::MUL},
        {EventKind::ADD, EventKind::SUB},
    };

    const double floor_zj =
        meanSeq(meter, {EventKind::NOI}, {EventKind::NOI});
    std::cout << format("same-sequence floor: %.2f zJ\n\n", floor_zj);

    TextTable t;
    t.setHeader({"sequence", "measured [zJ]", "sum of singles [zJ]",
                 "ratio"});
    for (const auto &seq : sequences) {
        const double measured =
            meanSeq(meter, {EventKind::NOI}, seq) - floor_zj;
        double additive = 0.0;
        for (auto e : seq) {
            additive +=
                meanSeq(meter, {EventKind::NOI}, {e}) - floor_zj;
        }
        t.startRow();
        t.addCell(kernels::sequenceName(seq));
        t.addCell(measured, 2);
        t.addCell(additive, 2);
        t.addCell(additive > 0.0 ? measured / additive : 0.0, 2);
    }
    t.render(std::cout);

    std::cout
        << "\nAs the paper anticipates, additivity is a usable "
           "first-order estimate but not exact: sequence members "
           "share the iteration (their activity rates dilute each "
           "other) and same-pointer memory members coalesce in the "
           "cache.\n";

    bench::heading("Sequence-vs-sequence pairs");
    TextTable p;
    p.setHeader({"A", "B", "SAVAT [zJ]"});
    const std::vector<std::pair<EventSequence, EventSequence>> pairs =
        {
            {{EventKind::ADD, EventKind::ADD},
             {EventKind::MUL, EventKind::MUL}},
            {{EventKind::ADD, EventKind::MUL},
             {EventKind::MUL, EventKind::ADD}},
            {{EventKind::LDM, EventKind::ADD},
             {EventKind::ADD, EventKind::LDM}},
            {{EventKind::LDM, EventKind::DIV},
             {EventKind::LDM, EventKind::MUL}},
        };
    for (const auto &[a, b] : pairs) {
        p.startRow();
        p.addCell(kernels::sequenceName(a));
        p.addCell(kernels::sequenceName(b));
        p.addCell(meanSeq(meter, a, b), 2);
    }
    p.render(std::cout);
    std::cout << "\nReordered sequences (same multiset of events) "
                 "are nearly indistinguishable, as the interaction "
                 "model the paper calls for would predict.\n";
    return 0;
}
