/**
 * @file
 * Shared helpers for the experiment-reproduction benchmark binaries:
 * campaign execution with progress output, reference comparison and
 * consistent report formatting.
 */

#ifndef SAVAT_BENCH_BENCH_UTIL_HH
#define SAVAT_BENCH_BENCH_UTIL_HH

#include <string>

#include "core/campaign.hh"
#include "core/reference.hh"

namespace savat::bench {

/** Print a section heading. */
void heading(const std::string &title);

/**
 * Run a full 11x11 campaign with a progress spinner on stderr.
 *
 * `jobs` is forwarded to CampaignConfig::jobs (0 = auto); the
 * matrix is identical for every value. `quiet` suppresses the
 * progress spinner -- required when several campaigns run
 * concurrently, which would interleave on stderr.
 */
core::CampaignResult runFullCampaign(const std::string &machineId,
                                     double distanceCm,
                                     std::size_t repetitions = 10,
                                     std::uint64_t seed = 0x5AFA7,
                                     std::size_t jobs = 0,
                                     bool quiet = false);

/**
 * Run only the paper's selected bar-chart pairings (Figures
 * 11/13/15/16) -- much faster than the full matrix. `jobs` and
 * `quiet` as in runFullCampaign().
 */
core::CampaignResult runSelectedPairs(const std::string &machineId,
                                      double distanceCm,
                                      std::size_t repetitions = 10,
                                      std::uint64_t seed = 0x5AFA7,
                                      std::size_t jobs = 0,
                                      bool quiet = false);

/**
 * Print matrix + heatmap + validation statistics, and when a
 * reference matrix is supplied, the paper-vs-measured comparison.
 */
void reportCampaign(const core::CampaignResult &result,
                    const core::ReferenceMatrix *reference = nullptr);

/** Print paper-vs-measured rows for a set of anchors. */
void reportAnchors(const core::CampaignResult &result,
                   const std::vector<core::ReferenceAnchor> &anchors);

/**
 * Repetitions for campaigns, overridable with SAVAT_BENCH_REPS for
 * quick smoke runs.
 */
std::size_t benchRepetitions(std::size_t defaultReps = 10);

} // namespace savat::bench

#endif // SAVAT_BENCH_BENCH_UTIL_HH
