/**
 * @file
 * Figures 16, 17 and 18: the distance study. Selected pairings
 * measured at 50 cm and 100 cm (Figure 16), and the full matrices at
 * both distances (Figures 17/18), compared with the published
 * Core 2 Duo data. The paper's observations under test:
 *   1. SAVAT drops significantly from 10 cm to 50 cm;
 *   2. it barely drops further from 50 cm to 100 cm;
 *   3. at range, off-chip pairs are by far the most distinguishable;
 *   4. DIV's advantage over other arithmetic almost vanishes.
 */

#include <iostream>
#include <optional>

#include "bench_util.hh"
#include "support/parallel.hh"
#include "support/strings.hh"
#include "core/report.hh"
#include "support/table.hh"

using namespace savat;
using kernels::EventKind;

int
main()
{
    const auto reps = bench::benchRepetitions();

    bench::heading("Figure 16: selected pairings at 50 cm / 100 cm");
    // The three distances are independent campaigns, so run them
    // concurrently, splitting the hardware budget between them
    // (campaign results do not depend on the jobs value). Progress
    // bars stay off: three interleaved spinners are unreadable.
    const std::size_t jobsEach = std::max<std::size_t>(
        1, support::resolveJobs(0) / 3);
    std::optional<core::CampaignResult> sel10opt, sel50opt, sel100opt;
    support::parallelInvoke({
        [&] {
            sel10opt = bench::runSelectedPairs("core2duo", 10.0, reps,
                                               0x5AFA7, jobsEach,
                                               /*quiet=*/true);
        },
        [&] {
            sel50opt = bench::runSelectedPairs("core2duo", 50.0, reps,
                                               0x5AFA7, jobsEach,
                                               /*quiet=*/true);
        },
        [&] {
            sel100opt = bench::runSelectedPairs("core2duo", 100.0,
                                                reps, 0x5AFA7,
                                                jobsEach,
                                                /*quiet=*/true);
        },
    });
    const auto &sel10 = *sel10opt;
    const auto &sel50 = *sel50opt;
    const auto &sel100 = *sel100opt;

    TextTable t;
    t.setHeader({"pair", "10cm[zJ]", "50cm[zJ]", "100cm[zJ]",
                 "50/10", "100/50"});
    for (const auto &[a, b] : core::selectedBarPairs()) {
        const auto ia = sel10.matrix.indexOf(a);
        const auto ib = sel10.matrix.indexOf(b);
        const double v10 = sel10.matrix.mean(ia, ib);
        const double v50 = sel50.matrix.mean(ia, ib);
        const double v100 = sel100.matrix.mean(ia, ib);
        t.startRow();
        t.addCell(std::string(kernels::eventName(a)) + "/" +
                  kernels::eventName(b));
        t.addCell(v10, 2);
        t.addCell(v50, 2);
        t.addCell(v100, 2);
        t.addCell(v50 / v10, 2);
        t.addCell(v100 / v50, 2);
    }
    t.render(std::cout);

    bench::heading("Figure 17: full matrix at 50 cm");
    const auto full50 = bench::runFullCampaign("core2duo", 50.0, reps);
    bench::reportCampaign(full50, &core::figure17Core2Duo50cm());

    bench::heading("Figure 18: full matrix at 100 cm");
    const auto full100 =
        bench::runFullCampaign("core2duo", 100.0, reps);
    bench::reportCampaign(full100, &core::figure18Core2Duo100cm());

    bench::heading("Distance-study observations");
    auto at = [](const core::CampaignResult &r, EventKind a,
                 EventKind b) {
        return r.matrix.mean(r.matrix.indexOf(a),
                             r.matrix.indexOf(b));
    };
    std::cout << format(
        "off-chip pairs stay on top at 50 cm: ADD/LDM %.2f vs "
        "ADD/LDL2 %.2f vs ADD/DIV %.2f zJ\n",
        at(full50, EventKind::ADD, EventKind::LDM),
        at(full50, EventKind::ADD, EventKind::LDL2),
        at(full50, EventKind::ADD, EventKind::DIV));
    std::cout << format(
        "DIV barely distinguishable at range: ADD/DIV %.2f vs "
        "ADD/MUL %.2f zJ at 50 cm\n",
        at(full50, EventKind::ADD, EventKind::DIV),
        at(full50, EventKind::ADD, EventKind::MUL));
    return 0;
}
