/**
 * @file
 * Extension experiments from the paper's Section VII future-work
 * list:
 *   1. branch-predictor hit/miss events (BRH/BRM) measured with the
 *      standard methodology on all three machines;
 *   2. the power side channel: the same campaign measured on the
 *      supply rail instead of the EM antenna.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/meter.hh"
#include "support/stats.hh"
#include "support/strings.hh"
#include "support/table.hh"

using namespace savat;
using kernels::EventKind;

namespace {

double
meanSavat(core::SavatMeter &meter, EventKind a, EventKind b)
{
    const auto &sim = meter.simulatePair(a, b);
    Rng rng(55);
    RunningStats s;
    for (int i = 0; i < 8; ++i) {
        auto rep = rng.fork();
        s.add(meter.measure(sim, rep).savat.inZepto());
    }
    return s.mean();
}

} // namespace

int
main()
{
    bench::heading("Branch-predictor events (Section VII)");
    TextTable t;
    t.setHeader({"machine", "BRH/BRH", "BRH/BRM", "ADD/BRM",
                 "ADD/DIV", "mispredict cost [cyc]"});
    for (const auto &mc : uarch::caseStudyMachines()) {
        auto meter = core::SavatMeter::forMachine(mc.id);
        t.startRow();
        t.addCell(mc.id);
        t.addCell(meanSavat(meter, EventKind::BRH, EventKind::BRH),
                  2);
        t.addCell(meanSavat(meter, EventKind::BRH, EventKind::BRM),
                  2);
        t.addCell(meanSavat(meter, EventKind::ADD, EventKind::BRM),
                  2);
        t.addCell(meanSavat(meter, EventKind::ADD, EventKind::DIV),
                  2);
        t.addCell(static_cast<long long>(mc.lat.branchMispredict));
    }
    t.render(std::cout);
    std::cout
        << "\nMisprediction flushes are distinguishable at roughly "
           "the divider's level: secret-dependent branch outcomes "
           "belong on the same watch list the paper puts DIV on.\n";

    bench::heading("Power side channel vs EM (Core 2 Duo)");
    core::MeterConfig power_cfg;
    power_cfg.channel = core::SideChannel::Power;
    auto power = core::SavatMeter::forMachine("core2duo", power_cfg);
    auto em = core::SavatMeter::forMachine("core2duo");

    const std::vector<std::pair<EventKind, EventKind>> pairs = {
        {EventKind::ADD, EventKind::ADD},
        {EventKind::ADD, EventKind::MUL},
        {EventKind::ADD, EventKind::LDL1},
        {EventKind::ADD, EventKind::DIV},
        {EventKind::ADD, EventKind::LDL2},
        {EventKind::ADD, EventKind::STL2},
        {EventKind::ADD, EventKind::LDM},
        {EventKind::LDL2, EventKind::LDM},
    };
    TextTable c;
    c.setHeader({"pair", "EM @10cm [zJ]", "power rail [zJ]",
                 "power/EM"});
    for (const auto &[a, b] : pairs) {
        const double e = meanSavat(em, a, b);
        const double p = meanSavat(power, a, b);
        c.startRow();
        c.addCell(std::string(kernels::eventName(a)) + "/" +
                  kernels::eventName(b));
        c.addCell(e, 2);
        c.addCell(p, 2);
        c.addCell(p / e, 1);
    }
    c.render(std::cout);
    std::cout
        << "\nThe rail hands the attacker far more raw energy (no "
           "propagation loss) but sees net current, not fields: "
           "off-chip bursts dominate, the divider's unpipelined "
           "burn still shows, and L2 *hits* nearly vanish because "
           "the stalled pipeline offsets the array's draw -- the "
           "same event class that is among the loudest at the EM "
           "antenna. Which side channel is dangerous depends on "
           "the component, exactly the cross-channel comparison "
           "the paper's Section VII calls for.\n";
    return 0;
}
