/**
 * @file
 * Section V's instruction grouping and Section III's proposed
 * clustering, regenerated: agglomerative clustering with SAVAT as
 * the distance recovers the paper's four groups -- off-chip
 * accesses, L2 hits, arithmetic + L1, and DIV alone -- and the
 * dendrogram shows where each group forms.
 */

#include <iostream>

#include "bench_util.hh"
#include "support/strings.hh"
#include "core/clustering.hh"
#include "support/table.hh"

using namespace savat;

int
main()
{
    bench::heading("Instruction clustering (Core 2 Duo, 10 cm)");
    const auto result = bench::runFullCampaign(
        "core2duo", 10.0, bench::benchRepetitions());

    for (std::size_t k : {2, 3, 4, 5}) {
        const auto clusters = core::clusterEvents(result.matrix, k);
        std::cout << format("k=%zu: ", k)
                  << core::describeClusters(clusters) << "\n";
    }

    bench::heading("Dendrogram (merge order, average linkage)");
    const auto full = core::clusterEvents(result.matrix, 1);
    TextTable t;
    t.setHeader({"merge", "linkage distance [zJ]"});
    for (std::size_t i = 0; i < full.dendrogram.size(); ++i) {
        t.startRow();
        t.addCell(static_cast<long long>(i + 1));
        t.addCell(full.dendrogram[i].distance, 3);
    }
    t.render(std::cout);

    bench::heading("Comparison with the paper's grouping");
    const auto paper = core::clusterEvents(result.matrix, 4);
    std::cout << "measured, k=4: " << core::describeClusters(paper)
              << "\n";
    std::cout << "paper, Section V: {ADD SUB MUL NOI LDL1 STL1} "
                 "{LDM STM} {LDL2 STL2} {DIV}\n";
    return 0;
}
