/**
 * @file
 * Section III's methodology argument, quantified: the naive
 * record-two-signals-and-subtract approach versus the alternation
 * methodology, on identical simulated physics.
 *
 * The paper's claims under test:
 *   1. with realistic noise (proportional to the overall signal
 *      level) the naive estimate's relative error dwarfs the true
 *      single-instruction difference;
 *   2. sample-grid misalignment adds further error;
 *   3. the alternation methodology measures the same pairs with a
 *      few-percent repeatability.
 */

#include <iostream>

#include "bench_util.hh"
#include "support/strings.hh"
#include "core/meter.hh"
#include "core/naive.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace savat;
using kernels::EventKind;

int
main()
{
    const auto machine = uarch::core2duo();
    const auto profile = em::emissionProfileFor("core2duo");
    auto meter = core::SavatMeter::forMachine("core2duo");

    const std::vector<std::pair<EventKind, EventKind>> pairs = {
        {EventKind::ADD, EventKind::SUB},
        {EventKind::ADD, EventKind::MUL},
        {EventKind::ADD, EventKind::DIV},
        {EventKind::ADD, EventKind::LDM},
    };

    bench::heading("Naive methodology: relative error per pair");
    TextTable t;
    t.setHeader({"pair", "true diff", "naive mean", "naive std",
                 "rel. error", "alternation std/mean"});
    for (const auto &[a, b] : pairs) {
        core::NaiveConfig cfg;
        Rng rng(7);
        const auto naive = core::runNaiveComparison(
            machine, profile, a, b, cfg, 40, rng);

        // Alternation methodology repeatability on the same pair.
        const auto &sim = meter.simulatePair(a, b);
        Rng arng(7);
        RunningStats alt;
        for (int i = 0; i < 10; ++i) {
            auto rep = arng.fork();
            alt.add(meter.measure(sim, rep).savat.inZepto());
        }

        t.startRow();
        t.addCell(std::string(kernels::eventName(a)) + "/" +
                  kernels::eventName(b));
        t.addCell(format("%.3g", naive.trueDifference));
        t.addCell(format("%.3g", naive.estimates.mean));
        t.addCell(format("%.3g", naive.estimates.stddev));
        t.addCell(naive.trueDifference > 0.0
                      ? format("%.1fx", naive.meanRelativeError)
                      : std::string("inf (truth = 0)"));
        t.addCell(alt.coefficientOfVariation(), 3);
    }
    t.render(std::cout);

    bench::heading("Error decomposition (ADD/DIV)");
    TextTable d;
    d.setHeader({"noise", "alignment jitter", "relative error"});
    for (double noise : {0.0, 0.001, 0.005, 0.02}) {
        for (int jitter : {0, 1, 2}) {
            core::NaiveConfig cfg;
            cfg.noiseFraction = noise;
            cfg.alignmentJitterSamples = jitter;
            Rng rng(11);
            const auto res = core::runNaiveComparison(
                machine, profile, EventKind::ADD, EventKind::DIV, cfg,
                30, rng);
            d.startRow();
            d.addCell(format("%.3f", noise));
            d.addCell(format("+/-%d samples", jitter));
            d.addCell(res.meanRelativeError, 3);
        }
    }
    d.render(std::cout);
    std::cout
        << "\nThe naive approach needs a >50 GS/s instrument and "
           "still loses the single-instruction signal in noise; the "
           "alternation methodology reaches ~5 % repeatability with "
           "a narrowband receiver.\n";
    return 0;
}
