/**
 * @file
 * Figures 12 and 13: the Pentium 3 M campaign (10 cm, 80 kHz). The
 * published P3M matrix did not survive the source's OCR, so the
 * comparison uses the prose-corroborated anchors: off-chip accesses
 * dominate, LDM louder than STM, DIV an order of magnitude above
 * ADD/MUL.
 */

#include <iostream>

#include "bench_util.hh"
#include "support/strings.hh"
#include "core/report.hh"

using namespace savat;
using kernels::EventKind;

int
main()
{
    bench::heading("Figure 12: Pentium 3 M, 10 cm, 80 kHz");
    const auto result = bench::runFullCampaign(
        "pentium3m", 10.0, bench::benchRepetitions());
    bench::reportCampaign(result);

    bench::heading("Figure 13: selected instruction pairings [zJ]");
    core::printSelectedBars(std::cout, result.matrix);

    bench::heading("Prose-corroborated anchors");
    bench::reportAnchors(result, core::pentium3mAnchors());

    // The paper's three P3M-specific claims.
    const auto &m = result.matrix;
    auto at = [&](EventKind a, EventKind b) {
        return m.mean(m.indexOf(a), m.indexOf(b));
    };
    std::cout << format(
        "\nADD/DIV vs ADD/MUL: %.1fx (paper: ~an order of "
        "magnitude)\n",
        at(EventKind::ADD, EventKind::DIV) /
            at(EventKind::ADD, EventKind::MUL));
    std::cout << format(
        "ADD/LDM vs ADD/STM: %.1fx (paper: LDM louder than STM)\n",
        at(EventKind::ADD, EventKind::LDM) /
            at(EventKind::ADD, EventKind::STM));
    std::cout << format(
        "ADD/LDM vs ADD/LDL2: %.1fx (paper: off-chip well above "
        "L2)\n",
        at(EventKind::ADD, EventKind::LDM) /
            at(EventKind::ADD, EventKind::LDL2));
    return 0;
}
