/**
 * @file
 * Section V's measurement-quality statistics, regenerated:
 *   - the standard-deviation-to-mean ratio across ten repetitions
 *     (the paper reports 0.05 on average),
 *   - the diagonal-minimum validation (all but one),
 *   - A/B vs B/A agreement (instruction-placement error),
 *   - the single-instruction SAVAT of each instruction class
 *     (Section II's definition).
 */

#include <iostream>

#include "bench_util.hh"
#include "support/strings.hh"
#include "support/table.hh"

using namespace savat;
using kernels::EventKind;

int
main()
{
    bench::heading("Repeatability statistics (Core 2 Duo, 10 cm)");
    const auto result = bench::runFullCampaign(
        "core2duo", 10.0, bench::benchRepetitions());
    const auto &m = result.matrix;

    std::cout << format(
        "mean std/mean across 121 cells x %zu reps: %.3f "
        "(paper: 0.05)\n",
        result.config.repetitions, m.meanCoefficientOfVariation());
    std::cout << format(
        "diagonal-minimum cells (0.15 zJ tolerance): %zu of %zu "
        "(paper: 10 of 11)\n",
        m.diagonalMinimumCount(0.15), m.size());
    std::cout << format(
        "A/B vs B/A mean asymmetry: %.3f (placement error bound)\n",
        m.symmetryError());

    bench::heading("Per-cell repeatability (std/mean)");
    TextTable t;
    auto header = m.labels();
    header.insert(header.begin(), "A\\B");
    t.setHeader(header);
    for (std::size_t a = 0; a < m.size(); ++a) {
        t.startRow();
        t.addCell(m.labels()[a]);
        for (std::size_t b = 0; b < m.size(); ++b) {
            const auto s = m.cellSummary(a, b);
            t.addCell(s.mean > 0 ? s.stddev / s.mean : 0.0, 3);
        }
    }
    t.render(std::cout);

    bench::heading("Single-instruction SAVAT (Section II)");
    TextTable si;
    si.setHeader({"instruction class", "events",
                  "single-instruction SAVAT [zJ]"});
    struct Group
    {
        const char *name;
        const char *events;
        std::vector<EventKind> members;
    };
    const Group groups[] = {
        {"load", "LDM LDL2 LDL1",
         {EventKind::LDM, EventKind::LDL2, EventKind::LDL1}},
        {"store", "STM STL2 STL1",
         {EventKind::STM, EventKind::STL2, EventKind::STL1}},
        {"simple arithmetic", "ADD SUB",
         {EventKind::ADD, EventKind::SUB}},
        {"multiply", "MUL", {EventKind::MUL}},
        {"divide", "DIV", {EventKind::DIV}},
    };
    for (const auto &g : groups) {
        si.startRow();
        si.addCell(g.name);
        si.addCell(g.events);
        si.addCell(m.singleInstructionSavat(g.members), 2);
    }
    si.render(std::cout);
    std::cout << "\nA load whose hit level depends on a secret is "
                 "the paper's worst case: its single-instruction "
                 "SAVAT is dominated by the LDM/LDL2 pairing.\n";
    return 0;
}
