/**
 * @file
 * Figures 9, 10 and 11: the full 11x11 pairwise SAVAT matrix for the
 * Core 2 Duo laptop at 10 cm and 80 kHz (values, grayscale
 * visualization, and the selected-pairings bar chart), with the
 * paper's published matrix as the comparison baseline.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/report.hh"

using namespace savat;

int
main()
{
    bench::heading("Figures 9/10: Core 2 Duo, 10 cm, 80 kHz");
    const auto result = bench::runFullCampaign(
        "core2duo", 10.0, bench::benchRepetitions());
    bench::reportCampaign(result, &core::figure9Core2Duo());

    bench::heading("Figure 11: selected instruction pairings [zJ]");
    core::printSelectedBars(std::cout, result.matrix);

    bench::heading("Paper-vs-measured, key cells");
    const auto &ref = core::figure9Core2Duo();
    std::vector<core::ReferenceAnchor> anchors;
    for (const auto &[a, b] : core::selectedBarPairs()) {
        anchors.push_back(
            {a, b,
             ref.zj[static_cast<std::size_t>(a)]
                   [static_cast<std::size_t>(b)]});
    }
    bench::reportAnchors(result, anchors);
    return 0;
}
