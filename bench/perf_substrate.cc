/**
 * @file
 * google-benchmark microbenchmarks for the performance-critical
 * substrate: simulator instruction throughput, cache accesses, FFT,
 * single-bin DFT and spectrum synthesis. These guard the end-to-end
 * campaign time (a full 11x11 campaign is ~1M simulated
 * instructions per pair).
 */

#include <benchmark/benchmark.h>

#include "analysis/ir/analyzer.hh"
#include "core/campaign.hh"
#include "core/meter.hh"
#include "dsp/fft.hh"
#include "isa/assembler.hh"
#include "kernels/generator.hh"
#include "pipeline/chain.hh"
#include "pipeline/stages.hh"
#include "uarch/cpu.hh"

using namespace savat;

namespace {

/** The meter's KernelSpec for an (a, b) pair, for stage benches. */
pipeline::KernelSpec
pipelineSpec(core::SavatMeter &meter, kernels::EventKind a,
             kernels::EventKind b)
{
    const auto &machine = meter.machine();
    pipeline::KernelSpec spec;
    spec.build = [&machine, a, b](std::uint64_t ca, std::uint64_t cb) {
        return kernels::buildAlternationKernel(machine, a, b, ca, cb);
    };
    spec.cpiA = meter.iterationCycles(a);
    spec.cpiB = meter.iterationCycles(b);
    spec.footprintA = kernels::footprintBytes(a, machine);
    spec.footprintB = kernels::footprintBytes(b, machine);
    spec.prefillA = kernels::isLoadEvent(a);
    spec.prefillB = kernels::isLoadEvent(b);
    spec.labelA = a;
    spec.labelB = b;
    return spec;
}

void
BM_CpuAluLoop(benchmark::State &state)
{
    uarch::NullActivitySink sink;
    uarch::SimpleCpu cpu(uarch::core2duo(), sink);
    const auto prog = isa::assembleOrDie(
        "top: add eax,1\nsub ebx,1\nxor ecx,5\ndec edx\njmp top\n",
        "alu");
    for (auto _ : state) {
        uarch::RunLimits limits;
        limits.maxInstructions = 10000;
        benchmark::DoNotOptimize(cpu.run(prog, limits));
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_CpuAluLoop);

void
BM_CpuMemorySweep(benchmark::State &state)
{
    uarch::NullActivitySink sink;
    uarch::SimpleCpu cpu(uarch::core2duo(), sink);
    const auto prog = kernels::buildCalibrationKernel(
        uarch::core2duo(), kernels::EventKind::LDM, 1, 10000);
    for (auto _ : state) {
        state.PauseTiming();
        cpu.reset();
        state.ResumeTiming();
        benchmark::DoNotOptimize(cpu.run(prog));
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_CpuMemorySweep);

void
BM_Fft(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<dsp::Complex> data(n);
    for (std::size_t i = 0; i < n; ++i)
        data[i] = dsp::Complex(std::sin(0.1 * static_cast<double>(i)),
                               0.0);
    for (auto _ : state) {
        auto copy = data;
        dsp::fft(copy);
        benchmark::DoNotOptimize(copy);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(16384)->Arg(262144);

void
BM_SingleBinDft(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<double> data(n);
    for (std::size_t i = 0; i < n; ++i)
        data[i] = std::sin(0.01 * static_cast<double>(i));
    for (auto _ : state)
        benchmark::DoNotOptimize(dsp::singleBinDft(data, 0.00123));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SingleBinDft)->Arg(30000)->Arg(240000);

void
BM_PairSimulation(benchmark::State &state)
{
    for (auto _ : state) {
        auto meter = core::SavatMeter::forMachine("core2duo");
        benchmark::DoNotOptimize(meter.simulatePair(
            kernels::EventKind::ADD, kernels::EventKind::LDL2));
    }
}
BENCHMARK(BM_PairSimulation)->Unit(benchmark::kMillisecond);

void
BM_MeasureRepetition(benchmark::State &state)
{
    auto meter = core::SavatMeter::forMachine("core2duo");
    const auto &sim = meter.simulatePair(kernels::EventKind::ADD,
                                         kernels::EventKind::LDM);
    Rng rng(3);
    for (auto _ : state) {
        auto rep = rng.fork();
        benchmark::DoNotOptimize(meter.measure(sim, rep));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeasureRepetition)->Unit(benchmark::kMillisecond);

/**
 * Per-stage cost of the measurement pipeline, so a regression in one
 * stage shows up by name instead of only in the end-to-end campaign
 * numbers (BM_CampaignPair is the sum of all of these).
 */
void
BM_PipelineStageBurstSolve(benchmark::State &state)
{
    auto meter = core::SavatMeter::forMachine("core2duo");
    const auto spec = pipelineSpec(meter, kernels::EventKind::ADD,
                                   kernels::EventKind::LDM);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pipeline::burstSolve(meter.machine(), spec,
                                 meter.config()));
    }
}
BENCHMARK(BM_PipelineStageBurstSolve);

void
BM_PipelineStageKernelBuild(benchmark::State &state)
{
    auto meter = core::SavatMeter::forMachine("core2duo");
    const auto spec = pipelineSpec(meter, kernels::EventKind::ADD,
                                   kernels::EventKind::LDM);
    const auto counts =
        pipeline::burstSolve(meter.machine(), spec, meter.config());
    for (auto _ : state)
        benchmark::DoNotOptimize(pipeline::kernelBuild(spec, counts));
}
BENCHMARK(BM_PipelineStageKernelBuild)->Unit(benchmark::kMillisecond);

/**
 * The savat::analysis::ir gate that runAlternation runs before every
 * cell's simulation: IR lowering, CFG, liveness, intervals, symmetry
 * over one kernel pair. Budget: well under a millisecond, so the
 * gate stays invisible next to the simulation itself.
 */
void
BM_AnalyzeKernel(benchmark::State &state)
{
    auto meter = core::SavatMeter::forMachine("core2duo");
    const auto spec = pipelineSpec(meter, kernels::EventKind::ADD,
                                   kernels::EventKind::LDM);
    const auto counts =
        pipeline::burstSolve(meter.machine(), spec, meter.config());
    const auto kernel = pipeline::kernelBuild(spec, counts);
    const auto &machine = meter.machine();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            analysis::ir::analyzeKernel(kernel, &machine));
    }
}
BENCHMARK(BM_AnalyzeKernel)->Unit(benchmark::kMicrosecond);

void
BM_PipelineStageSimulate(benchmark::State &state)
{
    auto meter = core::SavatMeter::forMachine("core2duo");
    const auto spec = pipelineSpec(meter, kernels::EventKind::ADD,
                                   kernels::EventKind::LDM);
    const auto counts =
        pipeline::burstSolve(meter.machine(), spec, meter.config());
    const auto kernel = pipeline::kernelBuild(spec, counts);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pipeline::simulate(meter.machine(), spec, kernel, counts,
                               meter.config().measurePeriods));
    }
}
BENCHMARK(BM_PipelineStageSimulate)->Unit(benchmark::kMillisecond);

void
BM_PipelineStageChannelExtract(benchmark::State &state)
{
    auto meter = core::SavatMeter::forMachine("core2duo");
    const auto spec = pipelineSpec(meter, kernels::EventKind::ADD,
                                   kernels::EventKind::LDM);
    const auto counts =
        pipeline::burstSolve(meter.machine(), spec, meter.config());
    const auto run = pipeline::simulate(
        meter.machine(), spec, pipeline::kernelBuild(spec, counts),
        counts, meter.config().measurePeriods);
    for (auto _ : state) {
        pipeline::PairSimulation sim;
        pipeline::channelExtract(run, meter.synth().profile(),
                                 meter.config().measurePeriods, sim);
        benchmark::DoNotOptimize(sim);
    }
}
BENCHMARK(BM_PipelineStageChannelExtract)
    ->Unit(benchmark::kMillisecond);

/** One chain repetition (Synthesize + Sweep + BandIntegrate). */
void
BM_PipelineStageChainMeasure(benchmark::State &state)
{
    core::MeterConfig cfg;
    cfg.channel = state.range(0) == 0 ? pipeline::ChannelKind::Em
                                      : pipeline::ChannelKind::Power;
    auto meter = core::SavatMeter::forMachine("core2duo", cfg);
    const auto &sim = meter.simulatePair(kernels::EventKind::ADD,
                                         kernels::EventKind::LDM);
    Rng rng(3);
    pipeline::MeasureScratch scratch;
    for (auto _ : state) {
        auto rep = rng.fork();
        benchmark::DoNotOptimize(
            meter.measureValue(sim, rep, scratch));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PipelineStageChainMeasure)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("power")
    ->Unit(benchmark::kMillisecond);

/**
 * One timing-channel repetition over the transient pair: the
 * prime+probe simulation runs with a 32-deep speculation frontier,
 * so this prices the wrong-path execution plus the probe sweeps on
 * top of the ordinary simulate cost.
 */
void
BM_TimingChain(benchmark::State &state)
{
    core::MeterConfig cfg;
    cfg.channel = pipeline::ChannelKind::Timing;
    cfg.specWindow = 32;
    auto meter = core::SavatMeter::forMachine("core2duo", cfg);
    const auto &sim = meter.simulatePair(kernels::EventKind::TLD,
                                         kernels::EventKind::TLF);
    Rng rng(3);
    pipeline::MeasureScratch scratch;
    for (auto _ : state) {
        auto rep = rng.fork();
        benchmark::DoNotOptimize(
            meter.measureValue(sim, rep, scratch));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimingChain)->Unit(benchmark::kMillisecond);

/** One campaign cell end to end: simulate + a few repetitions. */
void
BM_CampaignPair(benchmark::State &state)
{
    core::CampaignConfig cfg;
    cfg.machineId = "core2duo";
    cfg.repetitions = 3;
    cfg.jobs = 1;
    const std::vector<std::pair<kernels::EventKind, kernels::EventKind>>
        pairs = {{kernels::EventKind::ADD, kernels::EventKind::LDM}};
    for (auto _ : state)
        benchmark::DoNotOptimize(core::runCampaignPairs(cfg, pairs));
}
BENCHMARK(BM_CampaignPair)->Unit(benchmark::kMillisecond);

/**
 * A small all-pairs campaign at jobs = 1/2/4. Wall-clock (real
 * time), since the work spreads over the worker team; the speedup
 * between Arg(1) and Arg(4) is the tentpole acceptance number.
 */
void
BM_CampaignParallel(benchmark::State &state)
{
    core::CampaignConfig cfg;
    cfg.machineId = "core2duo";
    cfg.repetitions = 3;
    cfg.jobs = static_cast<std::size_t>(state.range(0));
    cfg.events = {
        kernels::EventKind::ADD,
        kernels::EventKind::LDL2,
        kernels::EventKind::LDM,
        kernels::EventKind::DIV,
    };
    for (auto _ : state)
        benchmark::DoNotOptimize(core::runCampaign(cfg));
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(cfg.events.size() *
                                  cfg.events.size()));
}
BENCHMARK(BM_CampaignParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
