/**
 * @file
 * Emission-channel knock-out ablation: re-measure key pairs with one
 * emitter channel silenced at a time, attributing each matrix block
 * to a physical structure (DESIGN.md's design-choice check). The
 * paper's interpretation under test: the off-chip block is the bus,
 * the L2 block is the L2 array, the DIV column is the divider.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/meter.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace savat;
using kernels::EventKind;

namespace {

core::SavatMeter
meterWithout(em::Channel silenced)
{
    auto profile = em::emissionProfileFor("core2duo");
    if (silenced != em::Channel::NumChannels) {
        profile.gain[static_cast<std::size_t>(silenced)] = 0.0;
        profile.mismatchFraction[static_cast<std::size_t>(silenced)] =
            0.0;
    }
    em::ReceivedSignalSynthesizer synth(
        std::move(profile), em::DistanceModel(), em::LoopAntenna(),
        em::EnvironmentConfig());
    return core::SavatMeter(uarch::core2duo(), std::move(synth), {});
}

double
meanSavat(core::SavatMeter &meter, EventKind a, EventKind b)
{
    const auto &sim = meter.simulatePair(a, b);
    Rng rng(31);
    RunningStats s;
    for (int i = 0; i < 8; ++i) {
        auto rep = rng.fork();
        s.add(meter.measure(sim, rep).savat.inZepto());
    }
    return s.mean();
}

} // namespace

int
main()
{
    const std::vector<std::pair<EventKind, EventKind>> pairs = {
        {EventKind::ADD, EventKind::LDM},
        {EventKind::ADD, EventKind::LDL2},
        {EventKind::ADD, EventKind::LDL1},
        {EventKind::ADD, EventKind::DIV},
        {EventKind::ADD, EventKind::MUL},
        {EventKind::LDL2, EventKind::LDM},
    };
    const std::vector<std::pair<std::string, em::Channel>> cuts = {
        {"(none)", em::Channel::NumChannels},
        {"-Bus", em::Channel::Bus},
        {"-Dram", em::Channel::Dram},
        {"-L2", em::Channel::L2},
        {"-L1", em::Channel::L1},
        {"-Div", em::Channel::Div},
        {"-Mul", em::Channel::Mul},
        {"-Logic", em::Channel::Logic},
    };

    bench::heading(
        "Channel knock-out: SAVAT [zJ] per pair (Core 2 Duo, 10 cm)");
    TextTable t;
    std::vector<std::string> header = {"silenced"};
    for (const auto &[a, b] : pairs) {
        header.push_back(std::string(kernels::eventName(a)) + "/" +
                         kernels::eventName(b));
    }
    t.setHeader(header);

    for (const auto &[label, channel] : cuts) {
        auto meter = meterWithout(channel);
        t.startRow();
        t.addCell(label);
        for (const auto &[a, b] : pairs)
            t.addCell(meanSavat(meter, a, b), 2);
    }
    t.render(std::cout);

    std::cout
        << "\nReading: silencing Bus guts ADD/LDM; silencing L2 "
           "guts ADD/LDL2 and the LDL2/LDM excess; silencing Div "
           "flattens ADD/DIV to the ADD/MUL floor. Each matrix "
           "block maps onto one physical emitter, which is what "
           "makes SAVAT useful to microarchitects.\n";
    return 0;
}
