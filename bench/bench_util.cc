#include "bench_util.hh"

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/report.hh"
#include "support/strings.hh"

namespace savat::bench {

void
heading(const std::string &title)
{
    std::cout << "\n==== " << title << " ====\n\n";
}

std::size_t
benchRepetitions(std::size_t defaultReps)
{
    if (const char *env = std::getenv("SAVAT_BENCH_REPS")) {
        long long v = 0;
        if (parseInt(env, v) && v >= 1)
            return static_cast<std::size_t>(v);
    }
    return defaultReps;
}

namespace {

core::CampaignConfig
makeConfig(const std::string &machineId, double distanceCm,
           std::size_t repetitions, std::uint64_t seed)
{
    core::CampaignConfig cfg;
    cfg.machineId = machineId;
    cfg.repetitions = repetitions;
    cfg.seed = seed;
    cfg.meter.distance = Distance::centimeters(distanceCm);
    return cfg;
}

core::ProgressFn
progressBar()
{
    return [](std::size_t done, std::size_t total) {
        std::fprintf(stderr, "\r  measuring pair %zu/%zu ...", done,
                     total);
        if (done == total)
            std::fprintf(stderr, "\n");
    };
}

} // namespace

core::CampaignResult
runFullCampaign(const std::string &machineId, double distanceCm,
                std::size_t repetitions, std::uint64_t seed,
                std::size_t jobs, bool quiet)
{
    auto cfg = makeConfig(machineId, distanceCm, repetitions, seed);
    cfg.jobs = jobs;
    return core::runCampaign(cfg, quiet ? core::ProgressFn()
                                        : progressBar());
}

core::CampaignResult
runSelectedPairs(const std::string &machineId, double distanceCm,
                 std::size_t repetitions, std::uint64_t seed,
                 std::size_t jobs, bool quiet)
{
    auto cfg = makeConfig(machineId, distanceCm, repetitions, seed);
    cfg.jobs = jobs;
    return core::runCampaignPairs(cfg, core::selectedBarPairs(),
                                  quiet ? core::ProgressFn()
                                        : progressBar());
}

void
reportCampaign(const core::CampaignResult &result,
               const core::ReferenceMatrix *reference)
{
    std::cout << "SAVAT matrix [zJ], rows = A, columns = B:\n\n";
    core::printMatrixTable(std::cout, result.matrix);
    std::cout << "\nGrayscale visualization (dark = high SAVAT):\n\n";
    core::printMatrixHeatmap(std::cout, result.matrix);
    std::cout << "\nValidation:\n";
    std::cout << format(
        "  diagonal is row/column minimum (0.15 zJ tol): %zu of %zu\n",
        result.matrix.diagonalMinimumCount(0.15),
        result.matrix.size());
    std::cout << format("  repeatability (mean std/mean): %.3f\n",
                        result.matrix.meanCoefficientOfVariation());
    std::cout << format("  A/B vs B/A asymmetry: %.3f\n",
                        result.matrix.symmetryError());
    if (reference) {
        std::cout << format(
            "\nAgreement with the paper's %s:\n",
            reference->figure.c_str());
        std::cout << format(
            "  Spearman rank correlation: %.3f\n",
            core::rankCorrelation(result.matrix, *reference));
        std::cout << format(
            "  Pearson correlation of log-SAVAT: %.3f\n",
            core::logCorrelation(result.matrix, *reference));
    }
}

void
reportAnchors(const core::CampaignResult &result,
              const std::vector<core::ReferenceAnchor> &anchors)
{
    std::cout << format("%-12s %10s %10s %8s\n", "pair", "paper[zJ]",
                        "sim[zJ]", "ratio");
    for (const auto &a : anchors) {
        const auto ia = result.matrix.tryIndexOf(a.a);
        const auto ib = result.matrix.tryIndexOf(a.b);
        if (ia < 0 || ib < 0)
            continue;
        const double sim =
            result.matrix.mean(static_cast<std::size_t>(ia),
                               static_cast<std::size_t>(ib));
        std::cout << format("%-5s/%-6s %10.2f %10.2f %8.2f\n",
                            kernels::eventName(a.a),
                            kernels::eventName(a.b), a.zj, sim,
                            sim / a.zj);
    }
}

} // namespace savat::bench
