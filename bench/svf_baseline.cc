/**
 * @file
 * Baseline comparison: SVF (Demme et al., the state of the art the
 * paper cites) versus SAVAT, on the same simulated physics.
 *
 * The paper's argument (Sections I and VI): SVF tells you *that* a
 * system/application leaks -- the correlation between execution
 * phases and the side-channel signal -- but not *which* instructions
 * or components are responsible. This bench computes SVF for a
 * phased workload across distances and noise levels, then shows the
 * per-component attribution only SAVAT provides.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/assessment.hh"
#include "core/svf.hh"
#include "support/strings.hh"
#include "support/table.hh"

using namespace savat;
using kernels::EventKind;

int
main()
{
    const auto machine = uarch::core2duo();
    const auto profile = em::emissionProfileFor("core2duo");
    const auto workload = core::buildPhasedWorkload(machine, 200);

    bench::heading(
        "SVF of a phased workload vs distance and noise");
    TextTable t;
    t.setHeader({"distance", "noise 0.05", "noise 0.5", "noise 2.0"});
    for (double cm : {10.0, 50.0, 100.0, 300.0}) {
        t.startRow();
        t.addCell(format("%.0f cm", cm));
        for (double noise : {0.05, 0.5, 2.0}) {
            core::SvfConfig cfg;
            cfg.distance = Distance::centimeters(cm);
            cfg.observationNoise = noise;
            cfg.windows = 48;
            const auto res = core::computeSvf(
                machine, profile, em::DistanceModel(), workload, cfg);
            t.addCell(res.svf, 3);
        }
    }
    t.render(std::cout);
    std::cout
        << "\nSVF grades the whole system: it reports clear leakage "
           "near the device and decays with distance/noise -- but a "
           "0.3 and a 0.8 tell an architect nothing about WHERE to "
           "spend mitigation effort. It also cannot separate the L2 "
           "and off-chip phases (their total powers match on this "
           "machine, exactly the ADD/LDL2 ~ ADD/LDM effect the "
           "paper measures).\n";

    bench::heading("The same question answered with SAVAT");
    auto meter = core::SavatMeter::forMachine("core2duo");
    TextTable s;
    s.setHeader({"component under suspicion", "probe pair",
                 "net SAVAT [zJ]"});
    struct Row
    {
        const char *component;
        EventKind a, b;
    };
    for (const auto &row : std::initializer_list<Row>{
             {"off-chip bus/DRAM", EventKind::ADD, EventKind::LDM},
             {"L2 array", EventKind::ADD, EventKind::LDL2},
             {"L1 array", EventKind::ADD, EventKind::LDL1},
             {"divider", EventKind::ADD, EventKind::DIV},
             {"multiplier", EventKind::ADD, EventKind::MUL},
             {"branch predictor", EventKind::BRH, EventKind::BRM},
         }) {
        s.startRow();
        s.addCell(row.component);
        s.addCell(std::string(kernels::eventName(row.a)) + "/" +
                  kernels::eventName(row.b));
        s.addCell(core::netSavatZj(meter, row.a, row.b), 2);
    }
    s.render(std::cout);
    std::cout << "\nSAVAT attributes the leakage: the off-chip "
                 "interface and L2 array dominate, the divider and "
                 "branch mispredictions follow, and the rest sits "
                 "at the floor -- a concrete worklist for the "
                 "architect.\n";
    return 0;
}
