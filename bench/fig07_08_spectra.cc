/**
 * @file
 * Figures 7 and 8: recorded spectra around the 80 kHz alternation
 * frequency for ADD/LDM (a strong pair -- shifted, dispersed peak
 * inside the +/- 1 kHz band) and ADD/ADD (same-instruction control:
 * noise floor, weak residual tone, external radio spurs).
 */

#include <iostream>

#include "bench_util.hh"
#include "support/strings.hh"
#include "core/meter.hh"
#include "core/report.hh"

using namespace savat;
using kernels::EventKind;

namespace {

void
showSpectrum(core::SavatMeter &meter, EventKind a, EventKind b,
             std::uint64_t seed)
{
    const auto &sim = meter.simulatePair(a, b);
    Rng rng(seed);
    const auto m = meter.measure(sim, rng);
    std::cout << format(
        "pair %s/%s: alternation %.3f kHz, %.3g A/B pairs/s\n",
        kernels::eventName(a), kernels::eventName(b),
        sim.actualFrequency.inKhz(), sim.pairsPerSecond);
    std::cout << format(
        "tone realized at %.1f Hz (shift %+.1f Hz from 80 kHz)\n",
        m.toneHz, m.toneHz - 80000.0);
    std::cout << format("SAVAT = %.2f zJ\n\n", m.savat.inZepto());
    core::printSpectrum(std::cout, m.trace, 79000.0, 81000.0);
}

} // namespace

int
main()
{
    auto meter = core::SavatMeter::forMachine("core2duo");

    bench::heading(
        "Figure 7: spectrum for 80 kHz ADD/LDM alternation");
    showSpectrum(meter, EventKind::ADD, EventKind::LDM, 2014);

    bench::heading(
        "Figure 8: spectrum for 80 kHz ADD/ADD alternation");
    showSpectrum(meter, EventKind::ADD, EventKind::ADD, 2014);

    std::cout << "\nNote: the ADD/ADD band contains only the "
                 "instrument floor (~6e-18 W/Hz), external radio "
                 "spurs and the weak residual of imperfect A/B "
                 "matching, exactly as the paper's Figure 8.\n";
    return 0;
}
