/**
 * @file
 * Instrument and methodology parameter sweeps:
 *   1. RBW sensitivity: the measured SAVAT must be stable as long
 *      as the +/- 1 kHz integration band captures the dispersed
 *      tone (the paper's choice of 1 Hz RBW / 1 kHz band);
 *   2. alternation-frequency freedom (Section III: the frequency
 *      "can be adjusted in software", so SAVAT -- a per-pair energy
 *      -- must come out the same);
 *   3. integration-band sensitivity: too narrow a band loses the
 *      shifted/dispersed tone.
 */

#include <iostream>

#include "bench_util.hh"
#include "support/strings.hh"
#include "core/meter.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace savat;
using kernels::EventKind;

namespace {

double
meanSavat(core::SavatMeter &meter, EventKind a, EventKind b,
          int reps = 8)
{
    const auto &sim = meter.simulatePair(a, b);
    Rng rng(17);
    RunningStats s;
    for (int i = 0; i < reps; ++i) {
        auto rep = rng.fork();
        s.add(meter.measure(sim, rep).savat.inZepto());
    }
    return s.mean();
}

} // namespace

int
main()
{
    bench::heading("RBW sweep (ADD/LDM and ADD/LDL2, Core 2 Duo)");
    TextTable rbw;
    rbw.setHeader({"RBW [Hz]", "ADD/LDM [zJ]", "ADD/LDL2 [zJ]",
                   "ADD/ADD [zJ]"});
    for (double hz : {1.0, 3.0, 10.0, 30.0, 100.0}) {
        core::MeterConfig cfg;
        cfg.rbwHz = hz;
        auto meter = core::SavatMeter::forMachine("core2duo", cfg);
        rbw.startRow();
        rbw.addCell(format("%.0f", hz));
        rbw.addCell(meanSavat(meter, EventKind::ADD, EventKind::LDM),
                    2);
        rbw.addCell(
            meanSavat(meter, EventKind::ADD, EventKind::LDL2), 2);
        rbw.addCell(meanSavat(meter, EventKind::ADD, EventKind::ADD),
                    2);
    }
    rbw.render(std::cout);

    bench::heading("Alternation-frequency sweep");
    TextTable freq;
    freq.setHeader({"f_alt [kHz]", "ADD/LDM [zJ]", "ADD/LDL2 [zJ]",
                    "ADD/DIV [zJ]"});
    for (double khz : {20.0, 40.0, 80.0, 160.0, 320.0}) {
        core::MeterConfig cfg;
        cfg.alternation = Frequency::khz(khz);
        auto meter = core::SavatMeter::forMachine("core2duo", cfg);
        freq.startRow();
        freq.addCell(format("%.0f", khz));
        freq.addCell(meanSavat(meter, EventKind::ADD, EventKind::LDM),
                     2);
        freq.addCell(
            meanSavat(meter, EventKind::ADD, EventKind::LDL2), 2);
        freq.addCell(meanSavat(meter, EventKind::ADD, EventKind::DIV),
                     2);
    }
    freq.render(std::cout);
    std::cout << "\nSAVAT is a per-pair energy: the rows agree "
                 "across a 16x frequency range, confirming the "
                 "methodology's normalization.\n";

    bench::heading("Integration-band sweep (ADD/LDM)");
    TextTable band;
    band.setHeader({"band +/- [Hz]", "ADD/LDM [zJ]",
                    "fraction of +/-1 kHz value"});
    core::MeterConfig ref_cfg;
    auto ref_meter = core::SavatMeter::forMachine("core2duo", ref_cfg);
    const double ref =
        meanSavat(ref_meter, EventKind::ADD, EventKind::LDM);
    for (double hz : {50.0, 150.0, 400.0, 1000.0, 2000.0}) {
        core::MeterConfig cfg;
        cfg.bandHz = hz;
        cfg.spanHz = std::max(2000.0, 2.0 * hz);
        auto meter = core::SavatMeter::forMachine("core2duo", cfg);
        const double v =
            meanSavat(meter, EventKind::ADD, EventKind::LDM);
        band.startRow();
        band.addCell(format("%.0f", hz));
        band.addCell(v, 2);
        band.addCell(v / ref, 2);
    }
    band.render(std::cout);
    std::cout << "\nA +/-50 Hz band misses the ~200 Hz tone shift on "
                 "some repetitions; +/-1 kHz (the paper's choice) "
                 "captures the tone with minimal extra noise.\n";
    return 0;
}
