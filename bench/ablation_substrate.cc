/**
 * @file
 * Substrate-sensitivity ablations (DESIGN.md design choices):
 *   1. timing model -- Pipelined (default) versus Scalar
 *      (non-pipelined): the arithmetic/L1 group only exists because
 *      the pipelined core hides simple-op latency; a scalar core
 *      exposes rate differences everywhere;
 *   2. burst-length policy -- EqualDuration (50 % duty) versus the
 *      paper's Figure-4 EqualCounts listing: the matrix orderings
 *      must survive the policy change.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/meter.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace savat;
using kernels::EventKind;

namespace {

double
meanSavat(core::SavatMeter &meter, EventKind a, EventKind b)
{
    const auto &sim = meter.simulatePair(a, b);
    Rng rng(23);
    RunningStats s;
    for (int i = 0; i < 8; ++i) {
        auto rep = rng.fork();
        s.add(meter.measure(sim, rep).savat.inZepto());
    }
    return s.mean();
}

core::SavatMeter
meterFor(uarch::TimingModel timing, kernels::PairingMode pairing)
{
    auto machine = uarch::core2duo();
    machine.timing = timing;
    core::MeterConfig cfg;
    cfg.pairing = pairing;
    em::ReceivedSignalSynthesizer synth(
        em::emissionProfileFor("core2duo"), em::DistanceModel(),
        em::LoopAntenna(), em::EnvironmentConfig());
    return core::SavatMeter(std::move(machine), std::move(synth),
                            cfg);
}

} // namespace

int
main()
{
    const std::vector<std::pair<EventKind, EventKind>> pairs = {
        {EventKind::ADD, EventKind::NOI},
        {EventKind::ADD, EventKind::MUL},
        {EventKind::ADD, EventKind::LDL1},
        {EventKind::ADD, EventKind::DIV},
        {EventKind::ADD, EventKind::LDL2},
        {EventKind::ADD, EventKind::LDM},
    };

    bench::heading("Timing-model ablation (Core 2 Duo, 10 cm)");
    TextTable t;
    t.setHeader({"pair", "Pipelined [zJ]", "Scalar [zJ]"});
    auto pipe = meterFor(uarch::TimingModel::Pipelined,
                         kernels::PairingMode::EqualDuration);
    auto scalar = meterFor(uarch::TimingModel::Scalar,
                           kernels::PairingMode::EqualDuration);
    for (const auto &[a, b] : pairs) {
        t.startRow();
        t.addCell(std::string(kernels::eventName(a)) + "/" +
                  kernels::eventName(b));
        t.addCell(meanSavat(pipe, a, b), 2);
        t.addCell(meanSavat(scalar, a, b), 2);
    }
    t.render(std::cout);
    std::cout
        << "\nOn the scalar core every latency difference changes "
           "the surrounding code's execution rate, so even ADD/NOI "
           "and ADD/MUL rise above the floor -- the paper's "
           "tight arithmetic/L1 group depends on pipelined "
           "machines hiding simple-op latency.\n";

    bench::heading("Burst policy ablation: EqualDuration vs "
                   "EqualCounts (Figure 4 verbatim)");
    TextTable p;
    p.setHeader({"pair", "EqualDuration [zJ]", "EqualCounts [zJ]",
                 "duty (EqualCounts)"});
    auto eq_dur = meterFor(uarch::TimingModel::Pipelined,
                           kernels::PairingMode::EqualDuration);
    auto eq_cnt = meterFor(uarch::TimingModel::Pipelined,
                           kernels::PairingMode::EqualCounts);
    for (const auto &[a, b] : pairs) {
        p.startRow();
        p.addCell(std::string(kernels::eventName(a)) + "/" +
                  kernels::eventName(b));
        p.addCell(meanSavat(eq_dur, a, b), 2);
        p.addCell(meanSavat(eq_cnt, a, b), 2);
        p.addCell(eq_cnt.simulatePair(a, b).duty, 2);
    }
    p.render(std::cout);
    std::cout
        << "\nBoth policies hit the intended 80 kHz and preserve "
           "the orderings; EqualCounts loses some contrast on "
           "slow events because the duty cycle drifts from 50 %.\n";
    return 0;
}
