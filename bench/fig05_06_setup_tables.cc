/**
 * @file
 * Figures 5 and 6: the case-study instruction table and the three
 * laptop configurations, regenerated from the library's own models
 * (so drift between code and paper is visible immediately).
 */

#include <iostream>

#include "bench_util.hh"
#include "support/strings.hh"
#include "kernels/events.hh"
#include "kernels/generator.hh"
#include "support/table.hh"
#include "uarch/machine.hh"

using namespace savat;

int
main()
{
    bench::heading("Figure 5: instruction/event classes");
    TextTable fig5;
    fig5.setHeader({"Event", "Instruction", "Description",
                    "sweep footprint (core2duo)"});
    const auto core2 = uarch::core2duo();
    for (auto e : kernels::allEvents()) {
        fig5.startRow();
        fig5.addCell(kernels::eventName(e));
        const auto text = kernels::eventAsm(e, "esi");
        fig5.addCell(text.empty() ? "(empty slot)" : text);
        fig5.addCell(kernels::eventDescription(e));
        fig5.addCell(format(
            "%llu KB", static_cast<unsigned long long>(
                           kernels::footprintBytes(e, core2) / 1024)));
    }
    fig5.render(std::cout);

    bench::heading("Figure 6: laptop systems");
    TextTable fig6;
    fig6.setHeader({"Processor", "clock", "L1 data cache", "L2 cache",
                    "eff. mem stall", "idiv lat"});
    for (const auto &m : uarch::caseStudyMachines()) {
        fig6.startRow();
        fig6.addCell(m.name);
        fig6.addCell(format("%.1f GHz", m.clock.inGhz()));
        fig6.addCell(format("%u KB, %u way", m.l1.sizeBytes / 1024,
                            m.l1.assoc));
        fig6.addCell(format("%u KB, %u way", m.l2.sizeBytes / 1024,
                            m.l2.assoc));
        fig6.addCell(format("%u cyc", m.memLatency));
        fig6.addCell(format("%u cyc", m.lat.idiv));
    }
    fig6.render(std::cout);

    bench::heading("Steady-state cycles per kernel iteration");
    TextTable cpi;
    std::vector<std::string> header = {"machine"};
    for (auto e : kernels::allEvents())
        header.emplace_back(kernels::eventName(e));
    cpi.setHeader(header);
    for (const auto &m : uarch::caseStudyMachines()) {
        cpi.startRow();
        cpi.addCell(m.id);
        for (auto e : kernels::allEvents())
            cpi.addCell(kernels::measureIterationCycles(m, e), 1);
    }
    cpi.render(std::cout);

    bench::heading("Generated alternation kernel (ADD/LDM, Figure 4)");
    const auto kernel = kernels::buildAlternationKernel(
        core2, kernels::EventKind::ADD, kernels::EventKind::LDM, 1667,
        625);
    std::cout << kernel.source;
    return 0;
}
