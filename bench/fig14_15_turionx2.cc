/**
 * @file
 * Figures 14 and 15: the Turion X2 campaign (10 cm, 80 kHz).
 * The paper: "very similar results as the Pentium 3 M, except that
 * the DIV instruction here has an even higher SAVAT -- rivaling
 * off-chip memory accesses."
 */

#include <iostream>

#include "bench_util.hh"
#include "support/strings.hh"
#include "core/report.hh"

using namespace savat;
using kernels::EventKind;

int
main()
{
    bench::heading("Figure 14: Turion X2, 10 cm, 80 kHz");
    const auto result = bench::runFullCampaign(
        "turionx2", 10.0, bench::benchRepetitions());
    bench::reportCampaign(result);

    bench::heading("Figure 15: selected instruction pairings [zJ]");
    core::printSelectedBars(std::cout, result.matrix);

    bench::heading("Prose-corroborated anchors");
    bench::reportAnchors(result, core::turionx2Anchors());

    const auto &m = result.matrix;
    auto at = [&](EventKind a, EventKind b) {
        return m.mean(m.indexOf(a), m.indexOf(b));
    };
    std::cout << format(
        "\nADD/DIV vs ADD/LDM: %.2f (paper: DIV rivals off-chip "
        "accesses)\n",
        at(EventKind::ADD, EventKind::DIV) /
            at(EventKind::ADD, EventKind::LDM));
    return 0;
}
