/**
 * @file
 * Unit and property tests for the DSP substrate: FFT, single-bin
 * DFT, windows and PSD estimation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/fft.hh"
#include "dsp/psd.hh"
#include "dsp/window.hh"
#include "support/rng.hh"

namespace savat::dsp {
namespace {

TEST(Fft, NextPowerOfTwo)
{
    EXPECT_EQ(nextPowerOfTwo(1), 1u);
    EXPECT_EQ(nextPowerOfTwo(2), 2u);
    EXPECT_EQ(nextPowerOfTwo(3), 4u);
    EXPECT_EQ(nextPowerOfTwo(1024), 1024u);
    EXPECT_EQ(nextPowerOfTwo(1025), 2048u);
}

TEST(Fft, ImpulseIsFlat)
{
    std::vector<Complex> x(8, Complex(0, 0));
    x[0] = Complex(1, 0);
    fft(x);
    for (const auto &v : x) {
        EXPECT_NEAR(v.real(), 1.0, 1e-12);
        EXPECT_NEAR(v.imag(), 0.0, 1e-12);
    }
}

TEST(Fft, DcConcentratesInBinZero)
{
    std::vector<Complex> x(16, Complex(2.0, 0));
    fft(x);
    EXPECT_NEAR(x[0].real(), 32.0, 1e-9);
    for (std::size_t i = 1; i < x.size(); ++i)
        EXPECT_NEAR(std::abs(x[i]), 0.0, 1e-9);
}

TEST(Fft, SineLandsInItsBin)
{
    const std::size_t n = 64;
    const std::size_t k = 5;
    std::vector<Complex> x(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = Complex(std::cos(2.0 * M_PI * static_cast<double>(k * i) /
                                static_cast<double>(n)),
                       0.0);
    }
    fft(x);
    EXPECT_NEAR(std::abs(x[k]), static_cast<double>(n) / 2.0, 1e-9);
    EXPECT_NEAR(std::abs(x[n - k]), static_cast<double>(n) / 2.0, 1e-9);
    EXPECT_NEAR(std::abs(x[k + 1]), 0.0, 1e-9);
}

TEST(Fft, InverseRoundTrip)
{
    Rng rng(17);
    std::vector<Complex> x(128);
    for (auto &v : x)
        v = Complex(rng.gaussian(), rng.gaussian());
    const auto orig = x;
    fft(x);
    fft(x, /*inverse=*/true);
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(x[i].real() / 128.0, orig[i].real(), 1e-9);
        EXPECT_NEAR(x[i].imag() / 128.0, orig[i].imag(), 1e-9);
    }
}

TEST(Fft, ParsevalHolds)
{
    Rng rng(23);
    std::vector<Complex> x(256);
    double time_energy = 0.0;
    for (auto &v : x) {
        v = Complex(rng.gaussian(), 0.0);
        time_energy += std::norm(v);
    }
    const auto spec = fftCopy(x);
    double freq_energy = 0.0;
    for (const auto &v : spec)
        freq_energy += std::norm(v);
    EXPECT_NEAR(freq_energy / 256.0, time_energy,
                1e-9 * time_energy);
}

TEST(Fft, Linearity)
{
    Rng rng(31);
    std::vector<Complex> a(64), b(64), sum(64);
    for (std::size_t i = 0; i < 64; ++i) {
        a[i] = Complex(rng.gaussian(), 0);
        b[i] = Complex(rng.gaussian(), 0);
        sum[i] = a[i] + 2.0 * b[i];
    }
    const auto fa = fftCopy(a);
    const auto fb = fftCopy(b);
    const auto fsum = fftCopy(sum);
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_NEAR(std::abs(fsum[i] - (fa[i] + 2.0 * fb[i])), 0.0,
                    1e-9);
}

TEST(Fft, RealFftPadsToPowerOfTwo)
{
    std::vector<double> x(100, 1.0);
    const auto spec = realFft(x);
    EXPECT_EQ(spec.size(), 128u);
    EXPECT_NEAR(spec[0].real(), 100.0, 1e-9);
}

TEST(SingleBinDft, PureToneAmplitude)
{
    const std::size_t n = 4096;
    const double freq = 0.0123; // cycles per sample, off-grid
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = 3.0 * std::cos(2.0 * M_PI * freq *
                              static_cast<double>(i) + 0.7);
    EXPECT_NEAR(toneAmplitude(x, freq), 3.0, 0.02);
}

TEST(SingleBinDft, IntegerPeriodExact)
{
    // When an integer number of cycles fits, the estimate is exact.
    const std::size_t n = 1000;
    const double freq = 10.0 / static_cast<double>(n);
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = 2.5 * std::cos(2.0 * M_PI * freq *
                              static_cast<double>(i));
    EXPECT_NEAR(toneAmplitude(x, freq), 2.5, 1e-9);
}

TEST(SingleBinDft, RejectsOtherFrequencies)
{
    const std::size_t n = 1000;
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = std::cos(2.0 * M_PI * 0.05 * static_cast<double>(i));
    EXPECT_NEAR(toneAmplitude(x, 0.25), 0.0, 0.01);
}

TEST(SingleBinDft, RecoversPhase)
{
    const std::size_t n = 2000;
    const double freq = 20.0 / static_cast<double>(n);
    const double phase = 1.1;
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = std::cos(2.0 * M_PI * freq * static_cast<double>(i) +
                        phase);
    const auto c = singleBinDft(x, freq);
    EXPECT_NEAR(std::arg(c), phase, 1e-6);
}

TEST(SingleBinDft, SquareWaveFundamental)
{
    // A +/-A square wave has fundamental amplitude 4A/pi.
    const std::size_t period = 100;
    const std::size_t n = period * 50;
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = (i % period) < period / 2 ? 1.0 : -1.0;
    EXPECT_NEAR(toneAmplitude(x, 1.0 / static_cast<double>(period)),
                4.0 / M_PI, 1e-3);
}

class Windows : public ::testing::TestWithParam<WindowKind>
{
};

TEST_P(Windows, ShapeBasics)
{
    const auto w = makeWindow(GetParam(), 256);
    ASSERT_EQ(w.size(), 256u);
    // Symmetric.
    for (std::size_t i = 0; i < w.size() / 2; ++i)
        EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-9);
    // Bounded.
    for (double v : w)
        EXPECT_LE(v, 1.0 + 1e-9);
    EXPECT_GT(coherentGain(w), 0.0);
    EXPECT_GE(noiseBandwidthBins(w), 1.0 - 1e-9);
}

TEST_P(Windows, SingleElement)
{
    const auto w = makeWindow(GetParam(), 1);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_DOUBLE_EQ(w[0], 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, Windows,
    ::testing::Values(WindowKind::Rectangular, WindowKind::Hann,
                      WindowKind::Hamming, WindowKind::Blackman,
                      WindowKind::BlackmanHarris, WindowKind::FlatTop));

TEST(Window, KnownGains)
{
    const auto rect = makeWindow(WindowKind::Rectangular, 1024);
    EXPECT_NEAR(coherentGain(rect), 1.0, 1e-12);
    EXPECT_NEAR(noiseBandwidthBins(rect), 1.0, 1e-12);

    const auto hann = makeWindow(WindowKind::Hann, 4096);
    EXPECT_NEAR(coherentGain(hann), 0.5, 1e-3);
    EXPECT_NEAR(noiseBandwidthBins(hann), 1.5, 1e-2);
}

TEST(Window, Names)
{
    EXPECT_STREQ(windowName(WindowKind::Hann), "hann");
    EXPECT_STREQ(windowName(WindowKind::FlatTop), "flattop");
}

TEST(Psd, SinePeakAndPower)
{
    const double fs = 10000.0;
    const double f0 = 1250.0;
    const double amp = 2.0;
    std::vector<double> x(8192);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = amp * std::sin(2.0 * M_PI * f0 *
                              static_cast<double>(i) / fs);
    const auto psd = welchPsd(x, fs, 1024, WindowKind::Hann);
    const auto peak = psd.peakBin(0.0, fs / 2.0);
    EXPECT_NEAR(psd.frequency(peak), f0, 2.0 * psd.binHz);
    // Total power of a sine is amp^2/2.
    EXPECT_NEAR(psd.bandPower(f0 - 100.0, f0 + 100.0),
                amp * amp / 2.0, 0.05);
}

TEST(Psd, WhiteNoiseLevel)
{
    Rng rng(77);
    const double fs = 1000.0;
    const double sigma = 0.5;
    std::vector<double> x(65536);
    for (auto &v : x)
        v = rng.gaussian(0.0, sigma);
    const auto psd = welchPsd(x, fs, 1024);
    // Total power ~= sigma^2, spread over fs/2 of bandwidth.
    const double expected_density = sigma * sigma / (fs / 2.0);
    const auto mid = psd.nearestBin(fs / 4.0);
    double local = 0.0;
    for (std::size_t i = mid - 20; i <= mid + 20; ++i)
        local += psd.bins[i];
    local /= 41.0;
    EXPECT_NEAR(local, expected_density, 0.3 * expected_density);
}

TEST(Psd, ParsevalTotalPower)
{
    Rng rng(99);
    const double fs = 2000.0;
    std::vector<double> x(16384);
    double power = 0.0;
    for (auto &v : x) {
        v = rng.gaussian();
        power += v * v;
    }
    power /= static_cast<double>(x.size());
    const auto psd = welchPsd(x, fs, 2048);
    EXPECT_NEAR(psd.bandPower(0.0, fs / 2.0), power, 0.1 * power);
}

TEST(Psd, PeriodogramMatchesWelchForStationary)
{
    const double fs = 1000.0;
    std::vector<double> x(4096);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = std::sin(2.0 * M_PI * 125.0 *
                        static_cast<double>(i) / fs);
    const auto p = periodogram(x, fs);
    const auto w = welchPsd(x, fs, 1024);
    EXPECT_NEAR(p.bandPower(100.0, 150.0), w.bandPower(100.0, 150.0),
                0.05);
}

TEST(Psd, NearestBinClamps)
{
    PsdEstimate est;
    est.binHz = 10.0;
    est.bins.assign(11, 1.0);
    EXPECT_EQ(est.nearestBin(-50.0), 0u);
    EXPECT_EQ(est.nearestBin(1e9), 10u);
    EXPECT_EQ(est.nearestBin(34.0), 3u);
}

TEST(Psd, BandPowerPartialBins)
{
    PsdEstimate est;
    est.binHz = 1.0;
    est.bins.assign(100, 2.0); // 2 W/Hz everywhere
    EXPECT_NEAR(est.bandPower(10.0, 20.0), 20.0, 1e-9);
    EXPECT_NEAR(est.bandPower(10.25, 10.75), 1.0, 1e-9);
}

} // namespace
} // namespace savat::dsp
