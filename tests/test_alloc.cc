/**
 * @file
 * Instrumented-allocator test: the steady-state measurement loop
 * (Synthesize → Sweep → BandIntegrate via SavatMeter::measureValue
 * with a reused pipeline::MeasureScratch) must not touch the heap.
 *
 * Global operator new/delete are replaced with counting wrappers;
 * after a few warm-up repetitions grow every scratch buffer to its
 * high-water mark, further repetitions are required to perform zero
 * allocations. This pins the arena/scratch reuse contract that the
 * per-cell speedup depends on — a stray std::vector temporary in the
 * hot path fails the test immediately.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/meter.hh"
#include "pipeline/config.hh"
#include "pipeline/stages.hh"
#include "support/rng.hh"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

} // namespace

// noinline keeps the replacement pair opaque at call sites; inlined
// copies trip GCC's -Wmismatched-new-delete on the internal
// malloc/free, which is exactly the matched pair here.
#if defined(__GNUC__)
#define SAVAT_TEST_NOINLINE __attribute__((noinline))
#else
#define SAVAT_TEST_NOINLINE
#endif

SAVAT_TEST_NOINLINE void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

SAVAT_TEST_NOINLINE void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

SAVAT_TEST_NOINLINE void
operator delete(void *p) noexcept
{
    if (p) {
        g_frees.fetch_add(1, std::memory_order_relaxed);
        std::free(p);
    }
}

SAVAT_TEST_NOINLINE void
operator delete[](void *p) noexcept
{
    ::operator delete(p);
}

SAVAT_TEST_NOINLINE void
operator delete(void *p, std::size_t) noexcept
{
    ::operator delete(p);
}

SAVAT_TEST_NOINLINE void
operator delete[](void *p, std::size_t) noexcept
{
    ::operator delete(p);
}

namespace savat {
namespace {

using kernels::EventKind;

constexpr std::size_t kWarmReps = 3;
constexpr std::size_t kSteadyReps = 16;

/** Allocations made while running `reps` repetitions. */
std::uint64_t
allocationsDuring(const core::SavatMeter &meter,
                  const pipeline::PairSimulation &sim, Rng &rng,
                  pipeline::MeasureScratch &scratch, std::size_t reps)
{
    const std::uint64_t before =
        g_allocs.load(std::memory_order_relaxed);
    double sink = 0.0;
    for (std::size_t r = 0; r < reps; ++r)
        sink += meter.measureValue(sim, rng, scratch, r).savat.inJoules();
    EXPECT_TRUE(sink == sink) << "NaN SAVAT in allocation probe";
    return g_allocs.load(std::memory_order_relaxed) - before;
}

TEST(SteadyStateAllocations, EmChainRepLoopIsHeapFree)
{
    auto meter = core::SavatMeter::forMachine("core2duo");
    const auto &sim = meter.simulatePair(EventKind::ADD, EventKind::LDM);

    Rng rng(7);
    pipeline::MeasureScratch scratch;
    allocationsDuring(meter, sim, rng, scratch, kWarmReps);

    const std::uint64_t steady =
        allocationsDuring(meter, sim, rng, scratch, kSteadyReps);
    EXPECT_EQ(steady, 0u)
        << steady << " heap allocations across " << kSteadyReps
        << " steady-state EM repetitions (expected zero)";
}

TEST(SteadyStateAllocations, PowerChainRepLoopIsHeapFree)
{
    pipeline::MeasureConfig cfg;
    cfg.channel = pipeline::ChannelKind::Power;
    auto meter = core::SavatMeter::forMachine("core2duo", cfg);
    const auto &sim = meter.simulatePair(EventKind::ADD, EventKind::LDM);

    Rng rng(11);
    pipeline::MeasureScratch scratch;
    allocationsDuring(meter, sim, rng, scratch, kWarmReps);

    const std::uint64_t steady =
        allocationsDuring(meter, sim, rng, scratch, kSteadyReps);
    EXPECT_EQ(steady, 0u)
        << steady << " heap allocations across " << kSteadyReps
        << " steady-state power repetitions (expected zero)";
}

TEST(SteadyStateAllocations, CountersActuallyCount)
{
    const std::uint64_t before =
        g_allocs.load(std::memory_order_relaxed);
    auto *p = new int(42);
    const std::uint64_t after =
        g_allocs.load(std::memory_order_relaxed);
    delete p;
    EXPECT_GT(after, before)
        << "operator new instrumentation is not active";
    EXPECT_GT(g_frees.load(std::memory_order_relaxed), 0u);
}

} // namespace
} // namespace savat
