/**
 * @file
 * Unit and property tests for the event catalogue and the
 * alternation-kernel generator.
 */

#include <gtest/gtest.h>

#include <csignal>

#include "isa/assembler.hh"
#include "kernels/events.hh"
#include "kernels/generator.hh"
#include "uarch/cpu.hh"

namespace savat::kernels {
namespace {

using uarch::core2duo;
using uarch::machineById;

TEST(Events, CatalogueComplete)
{
    const auto all = allEvents();
    ASSERT_EQ(all.size(), 11u); // Figure 5: eleven events
    EXPECT_EQ(all.front(), EventKind::LDM);
    EXPECT_EQ(all.back(), EventKind::DIV);
}

TEST(Events, NamesRoundTrip)
{
    for (auto e : allEvents())
        EXPECT_EQ(eventByName(eventName(e)), e);
    EXPECT_EXIT(eventByName("FROB"), ::testing::ExitedWithCode(1),
                "unknown event");
}

TEST(Events, Predicates)
{
    EXPECT_TRUE(isLoadEvent(EventKind::LDM));
    EXPECT_TRUE(isLoadEvent(EventKind::LDL1));
    EXPECT_TRUE(isStoreEvent(EventKind::STL2));
    EXPECT_FALSE(isLoadEvent(EventKind::STM));
    EXPECT_TRUE(isMemoryEvent(EventKind::STM));
    EXPECT_FALSE(isMemoryEvent(EventKind::DIV));
    EXPECT_FALSE(isMemoryEvent(EventKind::NOI));
}

TEST(Events, Figure5Assembly)
{
    // The exact instructions of the paper's Figure 5.
    EXPECT_EQ(eventAsm(EventKind::LDM, "esi"), "mov eax,[esi]");
    EXPECT_EQ(eventAsm(EventKind::STM, "esi"),
              "mov [esi],0xFFFFFFFF");
    EXPECT_EQ(eventAsm(EventKind::ADD, "esi"), "add eax,173");
    EXPECT_EQ(eventAsm(EventKind::SUB, "esi"), "sub eax,173");
    EXPECT_EQ(eventAsm(EventKind::MUL, "esi"), "imul eax,173");
    EXPECT_EQ(eventAsm(EventKind::DIV, "esi"), "idiv eax");
    EXPECT_EQ(eventAsm(EventKind::NOI, "esi"), "");
}

TEST(Events, FootprintOrdering)
{
    const auto m = core2duo();
    const auto l1 = footprintBytes(EventKind::LDL1, m);
    const auto l2 = footprintBytes(EventKind::LDL2, m);
    const auto mem = footprintBytes(EventKind::LDM, m);
    EXPECT_LT(l1, m.l1.sizeBytes);          // fits in L1
    EXPECT_GT(l2, m.l1.sizeBytes);          // misses L1 ...
    EXPECT_LT(l2, m.l2.sizeBytes);          // ... fits in L2
    EXPECT_GT(mem, m.l2.sizeBytes);         // misses L2
    EXPECT_EQ(footprintBytes(EventKind::ADD, m), l1);
}

class FootprintsOnAllMachines
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(FootprintsOnAllMachines, CreateIntendedBehaviour)
{
    const auto m = machineById(GetParam());
    for (auto e : allEvents()) {
        const auto fp = footprintBytes(e, m);
        EXPECT_GT(fp, 0u);
        // Power of two so mask arithmetic works.
        EXPECT_EQ(fp & (fp - 1), 0u) << eventName(e);
        EXPECT_GE(fp, m.l1.lineBytes * 4u);
    }
    EXPECT_GT(footprintBytes(EventKind::STL2, m), m.l1.sizeBytes);
    EXPECT_LE(footprintBytes(EventKind::STL2, m),
              m.l2.sizeBytes / 2);
}

INSTANTIATE_TEST_SUITE_P(Machines, FootprintsOnAllMachines,
                         ::testing::Values("core2duo", "pentium3m",
                                           "turionx2"));

TEST(Generator, KernelStructure)
{
    const auto m = core2duo();
    const auto k =
        buildAlternationKernel(m, EventKind::ADD, EventKind::LDM,
                               100, 50);
    EXPECT_EQ(k.countA, 100u);
    EXPECT_EQ(k.countB, 50u);
    EXPECT_FALSE(k.program.empty());
    EXPECT_GE(k.program.labelIndex("top"), 0);
    EXPECT_GE(k.program.labelIndex("a_loop"), 0);
    EXPECT_GE(k.program.labelIndex("b_loop"), 0);
    // Source must round-trip through the assembler.
    const auto re = isa::assemble(k.source);
    EXPECT_TRUE(re.ok) << re.error;
}

TEST(Generator, BodiesIdenticalExceptTestInstruction)
{
    // The paper's key requirement: surrounding code identical.
    const auto m = core2duo();
    const auto ka =
        buildAlternationKernel(m, EventKind::ADD, EventKind::ADD, 10,
                               10);
    const auto kb =
        buildAlternationKernel(m, EventKind::SUB, EventKind::SUB, 10,
                               10);
    ASSERT_EQ(ka.program.size(), kb.program.size());
    std::size_t diff = 0;
    for (std::size_t i = 0; i < ka.program.size(); ++i) {
        if (!(ka.program.at(i) == kb.program.at(i)))
            ++diff;
    }
    EXPECT_EQ(diff, 2u); // one test instruction per half
}

TEST(Generator, PointerUpdatePresentForNonMemoryEvents)
{
    const auto m = core2duo();
    const auto k =
        buildAlternationKernel(m, EventKind::NOI, EventKind::NOI, 10,
                               10);
    // The masked pointer update (and/or on esi/edi) must be there
    // even though no memory instruction follows.
    EXPECT_NE(k.source.find("and esi"), std::string::npos);
    EXPECT_NE(k.source.find("or edi"), std::string::npos);
}

TEST(Generator, MasksMatchFootprints)
{
    const auto m = core2duo();
    const auto k =
        buildAlternationKernel(m, EventKind::LDL1, EventKind::LDM, 10,
                               10);
    EXPECT_EQ(k.maskA + 1, footprintBytes(EventKind::LDL1, m));
    EXPECT_EQ(k.maskB + 1, footprintBytes(EventKind::LDM, m));
    EXPECT_EQ(k.baseA & k.maskA, 0u); // base aligned to footprint
    EXPECT_EQ(k.baseB & k.maskB, 0u);
}

TEST(Generator, KernelSweepsArray)
{
    // Run a small kernel and verify the pointer actually walks the
    // whole footprint, line by line.
    const auto m = core2duo();
    const auto k =
        buildAlternationKernel(m, EventKind::LDL1, EventKind::NOI,
                               1024, 1024);
    uarch::NullActivitySink sink;
    uarch::SimpleCpu cpu(m, sink);
    prefillEventArray(cpu, m, EventKind::LDL1, k.baseA);

    int periods = 0;
    cpu.setMarkCallback([&](std::int64_t id, std::uint64_t,
                            std::uint64_t) {
        if (id == Marks::kPeriodStart)
            ++periods;
        return periods < 3;
    });
    cpu.run(k.program);
    // 2 periods x 1024 L1 loads: footprint is 16 KiB = 256 lines, so
    // every line is touched; reads = hits + misses covers them all.
    EXPECT_GE(cpu.l1Stats().reads(), 2000u);
    EXPECT_LE(cpu.l1Stats().readMisses, 512u); // only cold misses
}

TEST(Generator, DivKernelRunsSafely)
{
    // idiv eax paired with eax-clobbering halves must never fault.
    const auto m = core2duo();
    for (auto other : {EventKind::LDM, EventKind::SUB, EventKind::MUL,
                       EventKind::STM}) {
        const auto k = buildAlternationKernel(m, other,
                                              EventKind::DIV, 50, 50);
        uarch::NullActivitySink sink;
        uarch::SimpleCpu cpu(m, sink);
        prefillEventArray(cpu, m, other, k.baseA);
        int periods = 0;
        cpu.setMarkCallback([&](std::int64_t id, std::uint64_t,
                                std::uint64_t) {
            if (id == Marks::kPeriodStart)
                ++periods;
            return periods < 10;
        });
        const auto res = cpu.run(k.program);
        EXPECT_TRUE(res.stoppedByMark) << eventName(other);
    }
}

TEST(Generator, CalibrationKernelHaltsWithMarks)
{
    const auto m = core2duo();
    const auto prog =
        buildCalibrationKernel(m, EventKind::ADD, 100, 200);
    uarch::NullActivitySink sink;
    uarch::SimpleCpu cpu(m, sink);
    std::uint64_t begin = 0, end = 0;
    cpu.setMarkCallback([&](std::int64_t id, std::uint64_t c,
                            std::uint64_t) {
        if (id == Marks::kCalibBegin)
            begin = c;
        if (id == Marks::kCalibEnd)
            end = c;
        return true;
    });
    const auto res = cpu.run(prog);
    EXPECT_TRUE(res.halted);
    EXPECT_GT(end, begin);
}

TEST(Generator, PrefillOnlyLoads)
{
    const auto m = core2duo();
    uarch::NullActivitySink sink;
    uarch::SimpleCpu cpu(m, sink);
    prefillEventArray(cpu, m, EventKind::STM, kBaseA);
    EXPECT_EQ(cpu.memory().pageCount(), 0u);
    prefillEventArray(cpu, m, EventKind::LDL1, kBaseA);
    EXPECT_GT(cpu.memory().pageCount(), 0u);
    EXPECT_EQ(cpu.memory().readWord(kBaseA), 0x07070707u);
}

class IterationTiming : public ::testing::TestWithParam<const char *>
{
};

TEST_P(IterationTiming, OrderingMatchesMemoryHierarchy)
{
    const auto m = machineById(GetParam());
    const double add = measureIterationCycles(m, EventKind::ADD);
    const double noi = measureIterationCycles(m, EventKind::NOI);
    const double ldl1 = measureIterationCycles(m, EventKind::LDL1);
    const double ldl2 = measureIterationCycles(m, EventKind::LDL2);
    const double ldm = measureIterationCycles(m, EventKind::LDM);
    const double div = measureIterationCycles(m, EventKind::DIV);
    const double stm = measureIterationCycles(m, EventKind::STM);

    // Pipelined core: L1 hits are as cheap as arithmetic.
    EXPECT_NEAR(ldl1, add, 0.5);
    EXPECT_LT(noi, add);
    EXPECT_GT(ldl2, add + m.l2.hitLatency / 2.0);
    EXPECT_GT(ldm, ldl2 + 5.0);
    EXPECT_GT(div, add + m.lat.idiv / 2.0);
    // Stores to memory stall on write-back pressure.
    EXPECT_GT(stm, ldm);
}

INSTANTIATE_TEST_SUITE_P(Machines, IterationTiming,
                         ::testing::Values("core2duo", "pentium3m",
                                           "turionx2"));

TEST(SolveCounts, EqualDuration)
{
    const auto m = core2duo();
    const auto s = solveCounts(m, 10.0, 100.0, Frequency::khz(80.0),
                               PairingMode::EqualDuration);
    // 30000-cycle period: 15000 cycles per half.
    EXPECT_EQ(s.countA, 1500u);
    EXPECT_EQ(s.countB, 150u);
    EXPECT_NEAR(s.periodCycles(), 30000.0, 1.0);
}

TEST(SolveCounts, EqualCounts)
{
    const auto m = core2duo();
    const auto s = solveCounts(m, 10.0, 110.0, Frequency::khz(80.0),
                               PairingMode::EqualCounts);
    EXPECT_EQ(s.countA, s.countB);
    EXPECT_EQ(s.countA, 250u);
}

TEST(SolveCounts, FrequencyTooHighDies)
{
    const auto m = core2duo();
    EXPECT_EXIT(solveCounts(m, 20000.0, 20000.0,
                            Frequency::khz(80.0),
                            PairingMode::EqualDuration),
                ::testing::KilledBySignal(SIGABRT), "too high");
}

TEST(SolveCounts, MinimumOneIteration)
{
    const auto m = core2duo();
    const auto s = solveCounts(m, 14000.0, 1.0, Frequency::khz(80.0),
                               PairingMode::EqualDuration);
    EXPECT_GE(s.countA, 1u);
}

} // namespace
} // namespace savat::kernels
