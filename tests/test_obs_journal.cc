/**
 * @file
 * Tests for the crash-safe run journal and the report layer over it
 * (support/journal.hh): the headline invariant that a journaled
 * campaign produces the byte-identical golden matrix at jobs 1 and
 * 4, the JSONL round trip through the report parser (CRC per line,
 * torn-tail tolerance, interior-corruption rejection), shard
 * aggregation (two subset journals merge into the full run's
 * report), the flight-recorder dump on a fault-plan die, and the
 * health-aware ProgressMeter accounting.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hh"
#include "core/report.hh"
#include "support/journal.hh"
#include "support/obs.hh"
#include "support/progress.hh"

namespace savat {
namespace {

using kernels::EventKind;

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

core::CampaignConfig
smallConfig()
{
    core::CampaignConfig cfg;
    cfg.events = {EventKind::ADD, EventKind::LDM, EventKind::MUL};
    cfg.repetitions = 2;
    cfg.jobs = 1;
    return cfg;
}

std::size_t
countEvents(const obs::JournalReadResult &read,
            const std::string &type)
{
    std::size_t n = 0;
    for (const auto &ev : read.events)
        n += ev.type == type;
    return n;
}

// ---------------------------------------------------------------
// The headline invariant: journaling perturbs nothing. A journaled
// full campaign reproduces the golden fixture byte for byte, at
// jobs 1 and under parallel sharding.

class JournalGoldenMatrix : public ::testing::Test
{
  protected:
    static std::string
    golden()
    {
        std::ifstream in(SAVAT_SOURCE_DIR
                         "/tests/data/golden_em_core2duo.fixture",
                         std::ios::binary);
        EXPECT_TRUE(in.good());
        std::ostringstream oss;
        oss << in.rdbuf();
        return oss.str();
    }

    static void
    journaledRunMatchesGolden(std::size_t jobs)
    {
        const auto path = tempPath(
            "golden_journal_" + std::to_string(jobs) + ".jsonl");
        core::CampaignConfig cfg;
        cfg.repetitions = 2;
        cfg.jobs = jobs;
        cfg.journalPath = path;
        const auto res = core::runCampaign(cfg);

        std::ostringstream oss;
        core::printMatrixFixture(oss, res.matrix);
        EXPECT_EQ(oss.str(), golden());

        // ... and the journal itself is complete and parseable.
        const auto read = obs::readJournal(path);
        ASSERT_TRUE(read.ok) << read.error;
        EXPECT_FALSE(read.truncatedTail);
        EXPECT_EQ(countEvents(read, "run-start"), 1u);
        EXPECT_EQ(countEvents(read, "cell-done"), 121u);
        EXPECT_EQ(countEvents(read, "run-end"), 1u);
        std::remove(path.c_str());
    }
};

TEST_F(JournalGoldenMatrix, Jobs1)
{
    journaledRunMatchesGolden(1);
}

TEST_F(JournalGoldenMatrix, Jobs4)
{
    journaledRunMatchesGolden(4);
}

// ---------------------------------------------------------------
// Round trip through the report parser.

TEST(JournalRoundTrip, CampaignJournalParsesAndAggregates)
{
    const auto path = tempPath("roundtrip.jsonl");
    std::remove(path.c_str());
    auto cfg = smallConfig();
    cfg.journalPath = path;
    obs::setMetricsEnabled(true);
    const auto res = core::runCampaign(cfg);
    obs::setMetricsEnabled(false);

    const auto read = obs::readJournal(path);
    ASSERT_TRUE(read.ok) << read.error;
    EXPECT_FALSE(read.truncatedTail);

    // Event grammar: one run-start first, one run-end last, one
    // cell-start/cell-done pair per cell, seq strictly increasing.
    ASSERT_FALSE(read.events.empty());
    EXPECT_EQ(read.events.front().type, "run-start");
    EXPECT_EQ(read.events.back().type, "run-end");
    EXPECT_EQ(countEvents(read, "cell-start"), 9u);
    EXPECT_EQ(countEvents(read, "cell-done"), 9u);
    for (std::size_t i = 0; i < read.events.size(); ++i)
        EXPECT_EQ(read.events[i].seq, i);
    const auto &start = read.events.front().fields;
    EXPECT_EQ(start.stringOr("schema", ""), obs::kJournalSchema);
    EXPECT_EQ(start.stringOr("machine", ""), "core2duo");
    EXPECT_EQ(start.stringOr("machine_digest", "").size(), 16u);

    // The aggregated report reproduces the campaign's own view.
    obs::RunReport report;
    std::string error;
    ASSERT_TRUE(obs::aggregateJournals({path}, report, &error))
        << error;
    EXPECT_EQ(report.cells.size(), 9u);
    EXPECT_EQ(report.runStarts, 1u);
    EXPECT_EQ(report.runEnds, 1u);
    EXPECT_GT(report.wallSeconds, 0.0);
    for (const auto &[pair, cell] : report.cells) {
        EXPECT_EQ(cell.state, "ok") << pair;
        EXPECT_EQ(cell.attempts, 1u) << pair;
        EXPECT_EQ(cell.reps, 2.0) << pair;
        EXPECT_FALSE(cell.restored) << pair;
    }

    // The journaled per-cell mean is the deterministic matrix mean.
    const auto &events = res.matrix.events();
    for (std::size_t a = 0; a < events.size(); ++a) {
        for (std::size_t b = 0; b < events.size(); ++b) {
            const std::string key =
                std::string(kernels::eventName(events[a])) + "|" +
                kernels::eventName(events[b]);
            const auto it = report.cells.find(key);
            ASSERT_NE(it, report.cells.end()) << key;
            EXPECT_DOUBLE_EQ(it->second.savatZjMean,
                             res.matrix.mean(a, b))
                << key;
        }
    }

    // run-end embedded a metrics snapshot with stage attribution.
    bool sawStage = false;
    for (const auto &[name, h] : report.metrics.histograms)
        sawStage |= name.rfind("stage.", 0) == 0 && h.count > 0;
    EXPECT_TRUE(sawStage);
    std::remove(path.c_str());
}

TEST(JournalRoundTrip, TornTailToleratedInteriorCorruptionFatal)
{
    const auto path = tempPath("torn.jsonl");
    std::remove(path.c_str());
    auto cfg = smallConfig();
    cfg.journalPath = path;
    (void)core::runCampaign(cfg);
    const auto intact = slurp(path);

    // Tear the final line mid-write: every preceding event still
    // reads; the tail is flagged, not fatal (the crash signature).
    std::ofstream(path, std::ios::binary)
        << intact.substr(0, intact.size() - 9);
    auto read = obs::readJournal(path);
    EXPECT_TRUE(read.ok) << read.error;
    EXPECT_TRUE(read.truncatedTail);
    EXPECT_EQ(countEvents(read, "cell-done"), 9u);

    // Flip one interior byte: the line's CRC catches it and the
    // read fails hard (silent corruption must never aggregate).
    auto bad = intact;
    bad[bad.size() / 2] ^= 0x04;
    std::ofstream(path, std::ios::binary) << bad;
    read = obs::readJournal(path);
    EXPECT_FALSE(read.ok);
    EXPECT_NE(read.error.find("crc"), std::string::npos)
        << read.error;
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// Shard aggregation: journals of two subset runs merge into the
// full run's report (same identity, union of cells).

TEST(JournalReport, SubsetShardsAggregateToTheFullRun)
{
    const auto fullPath = tempPath("shard_full.jsonl");
    const auto loPath = tempPath("shard_lo.jsonl");
    const auto hiPath = tempPath("shard_hi.jsonl");
    for (const auto &p : {fullPath, loPath, hiPath})
        std::remove(p.c_str());

    auto cfg = smallConfig();
    cfg.journalPath = fullPath;
    const auto full = core::runCampaign(cfg);

    std::vector<std::pair<EventKind, EventKind>> pairs;
    for (auto a : cfg.events)
        for (auto b : cfg.events)
            pairs.emplace_back(a, b);
    auto lo = smallConfig();
    lo.journalPath = loPath;
    (void)core::runCampaignPairs(
        lo, {pairs.begin(), pairs.begin() + 4});
    auto hi = smallConfig();
    hi.journalPath = hiPath;
    (void)core::runCampaignPairs(hi, {pairs.begin() + 4, pairs.end()});

    obs::RunReport whole, sharded;
    std::string error;
    ASSERT_TRUE(obs::aggregateJournals({fullPath}, whole, &error))
        << error;
    ASSERT_TRUE(
        obs::aggregateJournals({loPath, hiPath}, sharded, &error))
        << error;

    // Same campaign identity, same cells, same deterministic means:
    // subset cells draw the very streams the full run gives them.
    EXPECT_EQ(sharded.identity, whole.identity);
    EXPECT_EQ(sharded.journalCount, 2u);
    ASSERT_EQ(sharded.cells.size(), whole.cells.size());
    for (const auto &[pair, cell] : whole.cells) {
        const auto it = sharded.cells.find(pair);
        ASSERT_NE(it, sharded.cells.end()) << pair;
        EXPECT_EQ(it->second.state, cell.state) << pair;
        EXPECT_DOUBLE_EQ(it->second.savatZjMean, cell.savatZjMean)
            << pair;
    }

    // A journal from a different campaign refuses to merge.
    const auto otherPath = tempPath("shard_other.jsonl");
    std::remove(otherPath.c_str());
    auto other = smallConfig();
    other.seed ^= 1;
    other.journalPath = otherPath;
    (void)core::runCampaign(other);
    obs::RunReport refused;
    EXPECT_FALSE(obs::aggregateJournals({fullPath, otherPath},
                                        refused, &error));
    EXPECT_NE(error.find("identity"), std::string::npos) << error;

    for (const auto &p : {fullPath, loPath, hiPath, otherPath})
        std::remove(p.c_str());

    (void)full;
}

// ---------------------------------------------------------------
// Crash path: a fault-plan die dumps the flight recorder so the
// in-flight cells are visible post mortem.

TEST(JournalCrashDeath, DieDumpsTheFlightRecorder)
{
    const auto path = tempPath("die_journal.jsonl");
    std::remove(path.c_str());
    std::remove((path + ".crash").c_str());
    auto cfg = smallConfig();
    cfg.journalPath = path;
    cfg.faultPlan = "die@1";
    EXPECT_EXIT((void)core::runCampaign(cfg),
                ::testing::ExitedWithCode(137), "dying after pair");

    // The journal survives up to the death and parses cleanly.
    const auto read = obs::readJournal(path);
    EXPECT_TRUE(read.ok) << read.error;
    EXPECT_EQ(countEvents(read, "cell-done"), 2u);

    // The crash dump replays the ring: run-start through the die.
    const auto dump = slurp(path + ".crash");
    EXPECT_NE(dump.find("flight recorder"), std::string::npos);
    EXPECT_NE(dump.find("\"event\":\"run-start\""),
              std::string::npos);
    EXPECT_NE(dump.find("\"event\":\"cell-start\""),
              std::string::npos);
    EXPECT_NE(dump.find("\"kind\":\"die\""), std::string::npos);
    EXPECT_NE(dump.find("# reason: fault-plan die"),
              std::string::npos);
    std::remove(path.c_str());
    std::remove((path + ".crash").c_str());
}

// ---------------------------------------------------------------
// Health-aware progress accounting.

TEST(ObsProgressHealth, RetriesDoNotInflateTheDenominator)
{
    std::ostringstream out;
    obs::ProgressMeter meter("t", 0.0, &out);
    obs::ProgressCounts c;
    c.total = 3;

    // Cell 0 needed three attempts: done advances once, not thrice.
    c.done = 1;
    c.retried = 1;
    meter.update(c);
    c.done = 2;
    meter.update(c);
    c.done = 3;
    c.degraded = 1;
    meter.update(c);

    const auto text = out.str();
    EXPECT_NE(text.find("3/3 (100.0%)"), std::string::npos) << text;
    EXPECT_EQ(text.find("4/3"), std::string::npos) << text;

    // The final line reports the health counts by name.
    EXPECT_NE(text.find("retried 1"), std::string::npos) << text;
    EXPECT_NE(text.find("degraded 1"), std::string::npos) << text;
    EXPECT_EQ(text.find("skipped"), std::string::npos) << text;
}

TEST(ObsProgressHealth, RestoredCellsAnchorTheEtaBaseline)
{
    std::ostringstream out;
    obs::ProgressMeter meter("t", 0.0, &out);
    obs::ProgressCounts c;
    c.total = 100;

    // 40 cells restored instantly from a checkpoint, then two
    // measured: the meter must not extrapolate the instant 40.
    c.done = 40;
    c.restored = 40;
    meter.update(c);
    c.done = 41;
    meter.update(c);
    c.done = 42;
    meter.update(c);
    c.done = 100;
    meter.update(c);

    const auto text = out.str();
    EXPECT_NE(text.find("100/100 (100.0%)"), std::string::npos)
        << text;
    EXPECT_NE(text.find("restored 40"), std::string::npos) << text;
}

TEST(ObsProgressHealth, SinkAdapterForwardsCounts)
{
    std::ostringstream out;
    obs::ProgressMeter meter("t", 0.0, &out);
    auto sink = meter.sink();
    obs::ProgressCounts c;
    c.total = 2;
    c.done = 1;
    sink(c);
    c.done = 2;
    c.skipped = 1;
    sink(c);
    const auto text = out.str();
    EXPECT_NE(text.find("2/2 (100.0%)"), std::string::npos) << text;
    EXPECT_NE(text.find("skipped 1"), std::string::npos) << text;
}

} // namespace
} // namespace savat
