/**
 * @file
 * Unit tests for the cache timing model: placement, LRU, write-back,
 * write-allocate, dirty-eviction penalties and the two-level stack.
 */

#include <gtest/gtest.h>

#include <memory>

#include "uarch/cache.hh"

namespace savat::uarch {
namespace {

constexpr CacheLevelEvents kL1Events = {
    MicroEvent::L1Read, MicroEvent::L1Write, MicroEvent::L1Fill,
    MicroEvent::L1Evict};
constexpr CacheLevelEvents kL2Events = {
    MicroEvent::L2Read, MicroEvent::L2Write, MicroEvent::L2Fill,
    MicroEvent::L2Evict};

/** Small single-level fixture over main memory. */
class SmallCache : public ::testing::Test
{
  protected:
    // 4 sets x 2 ways x 64 B lines = 512 B.
    SmallCache()
        : mem(50, 8, trace),
          cache("L1", {512, 2, 64, 3, 7}, kL1Events, mem, trace)
    {
    }

    ActivityTrace trace;
    MainMemory mem;
    Cache cache;
};

TEST(CacheGeometry, Validation)
{
    EXPECT_TRUE((CacheGeometry{512, 2, 64, 1}).valid());
    EXPECT_TRUE((CacheGeometry{32 * 1024, 8, 64, 3}).valid());
    EXPECT_FALSE((CacheGeometry{0, 2, 64, 1}).valid());
    EXPECT_FALSE((CacheGeometry{512, 0, 64, 1}).valid());
    EXPECT_FALSE((CacheGeometry{512, 2, 48, 1}).valid()); // line !pow2
    EXPECT_FALSE((CacheGeometry{500, 2, 64, 1}).valid()); // not divisible
    // 3 sets: not a power of two.
    EXPECT_FALSE((CacheGeometry{3 * 2 * 64, 2, 64, 1}).valid());
}

TEST(CacheGeometry, DerivedCounts)
{
    const CacheGeometry g{32 * 1024, 8, 64, 3};
    EXPECT_EQ(g.numLines(), 512u);
    EXPECT_EQ(g.numSets(), 64u);
}

TEST_F(SmallCache, ColdMissThenHit)
{
    const auto miss_lat = cache.read(0x1000, 0);
    EXPECT_EQ(miss_lat, 3u + 50u);
    EXPECT_EQ(cache.stats().readMisses, 1u);
    const auto hit_lat = cache.read(0x1000, 100);
    EXPECT_EQ(hit_lat, 3u);
    EXPECT_EQ(cache.stats().readHits, 1u);
    EXPECT_TRUE(cache.contains(0x1000));
}

TEST_F(SmallCache, SameLineDifferentWord)
{
    cache.read(0x1000, 0);
    EXPECT_EQ(cache.read(0x103C, 100), 3u); // same 64 B line
}

TEST_F(SmallCache, LruEviction)
{
    // Three lines mapping to the same set (set stride = 4 lines).
    const std::uint64_t a = 0 * 64;
    const std::uint64_t b = 4 * 64;
    const std::uint64_t c = 8 * 64;
    cache.read(a, 0);
    cache.read(b, 10);
    cache.read(a, 20); // refresh a
    cache.read(c, 30); // evicts b (LRU)
    EXPECT_TRUE(cache.contains(a));
    EXPECT_FALSE(cache.contains(b));
    EXPECT_TRUE(cache.contains(c));
}

TEST_F(SmallCache, WriteAllocateAndDirty)
{
    EXPECT_EQ(cache.write(0x2000, 0), 3u + 50u);
    EXPECT_EQ(cache.stats().writeMisses, 1u);
    EXPECT_TRUE(cache.isDirty(0x2000));
    EXPECT_EQ(cache.write(0x2000, 100), 3u);
    EXPECT_EQ(cache.stats().writeHits, 1u);
}

TEST_F(SmallCache, DirtyEvictionWritesBack)
{
    const std::uint64_t a = 0 * 64;
    const std::uint64_t b = 4 * 64;
    const std::uint64_t c = 8 * 64;
    cache.write(a, 0);
    cache.read(b, 10);
    cache.read(c, 20); // evicts dirty a
    EXPECT_EQ(cache.stats().writebacksOut, 1u);
    EXPECT_EQ(mem.stats().writes, 1u);
    EXPECT_FALSE(cache.contains(a));
}

TEST_F(SmallCache, DirtyEvictPenaltyCharged)
{
    const std::uint64_t a = 0 * 64;
    const std::uint64_t b = 4 * 64;
    const std::uint64_t c = 8 * 64;
    cache.write(a, 0);
    cache.write(b, 10);
    // Miss evicting dirty a: penalty 7 on top of probe + memory.
    const auto lat = cache.read(c, 20);
    EXPECT_EQ(lat, 3u + 50u + 7u);
}

TEST_F(SmallCache, CleanEvictionNoWriteback)
{
    cache.read(0 * 64, 0);
    cache.read(4 * 64, 10);
    cache.read(8 * 64, 20); // evicts clean line
    EXPECT_EQ(cache.stats().writebacksOut, 0u);
    EXPECT_EQ(mem.stats().writes, 0u);
}

TEST_F(SmallCache, FlushAll)
{
    cache.write(0x1000, 0);
    cache.flushAll();
    EXPECT_FALSE(cache.contains(0x1000));
    EXPECT_FALSE(cache.isDirty(0x1000));
}

TEST_F(SmallCache, StatsAccumulateAndClear)
{
    cache.read(0, 0);
    cache.read(0, 10);
    cache.write(64, 20);
    EXPECT_EQ(cache.stats().reads(), 2u);
    EXPECT_EQ(cache.stats().writes(), 1u);
    EXPECT_NEAR(cache.stats().missRate(), 2.0 / 3.0, 1e-12);
    cache.clearStats();
    EXPECT_EQ(cache.stats().reads(), 0u);
}

TEST_F(SmallCache, ActivityEventsEmitted)
{
    cache.read(0x1000, 0);  // miss -> fill
    cache.read(0x1000, 10); // hit -> read
    const auto counts = trace.eventCounts();
    EXPECT_EQ(counts[static_cast<std::size_t>(MicroEvent::L1Fill)], 1u);
    EXPECT_EQ(counts[static_cast<std::size_t>(MicroEvent::L1Read)], 1u);
}

/** Two-level fixture. */
class TwoLevel : public ::testing::Test
{
  protected:
    // L1: 2 sets x 2 ways (256 B); L2: 8 sets x 2 ways (1 KiB).
    TwoLevel()
        : mem(50, 8, trace),
          l2("L2", {1024, 2, 64, 5, 9}, kL2Events, mem, trace),
          l1("L1", {256, 2, 64, 2, 3}, kL1Events, l2, trace)
    {
    }

    ActivityTrace trace;
    MainMemory mem;
    Cache l2;
    Cache l1;
};

TEST_F(TwoLevel, MissFillsBothLevels)
{
    const auto lat = l1.read(0x4000, 0);
    EXPECT_EQ(lat, 2u + 5u + 50u);
    EXPECT_TRUE(l1.contains(0x4000));
    EXPECT_TRUE(l2.contains(0x4000));
}

TEST_F(TwoLevel, L2HitServicesL1Miss)
{
    l1.read(0x4000, 0);
    // Evict from tiny L1 without touching L2's set.
    l1.read(0x4000 + 2 * 64, 100);
    l1.read(0x4000 + 4 * 64, 200);
    EXPECT_FALSE(l1.contains(0x4000));
    EXPECT_TRUE(l2.contains(0x4000));
    const auto lat = l1.read(0x4000, 300);
    EXPECT_EQ(lat, 2u + 5u);
    EXPECT_EQ(mem.stats().reads, 3u); // no new memory read
}

TEST_F(TwoLevel, WritebackFromL1HitsL2)
{
    l1.write(0x4000, 0);
    // Force the dirty line out of L1.
    l1.read(0x4000 + 2 * 64, 100);
    l1.read(0x4000 + 4 * 64, 200);
    EXPECT_EQ(l2.stats().writebacksIn, 1u);
    EXPECT_TRUE(l2.isDirty(0x4000));
    // Nothing reached memory yet.
    EXPECT_EQ(mem.stats().writes, 0u);
}

TEST_F(TwoLevel, WritebackMissAllocatesInL2)
{
    // An L2 write-back for a line L2 no longer holds must allocate
    // without a memory fetch.
    l2.writeback(0x8000, 0);
    EXPECT_TRUE(l2.contains(0x8000));
    EXPECT_TRUE(l2.isDirty(0x8000));
    EXPECT_EQ(mem.stats().reads, 0u);
}

TEST_F(TwoLevel, DirtyChainReachesMemory)
{
    // Write enough distinct lines to push dirty data through both
    // levels into memory.
    for (int i = 0; i < 64; ++i)
        l1.write(0x10000ull + static_cast<std::uint64_t>(i) * 64, i * 10);
    EXPECT_GT(l2.stats().writebacksIn, 0u);
    EXPECT_GT(mem.stats().writes, 0u);
}

/** Parameterized sweep: footprint vs hit behaviour. */
struct SweepCase
{
    std::uint32_t footprintLines;
    bool expectL1Resident;
};

class SweepResidency : public ::testing::TestWithParam<SweepCase>
{
};

TEST_P(SweepResidency, SteadyStateHitRate)
{
    NullActivitySink sink;
    MainMemory mem(50, 8, sink);
    // L1: 64 sets x 8 ways x 64 B = 32 KiB (Core 2 Duo shape).
    Cache l1("L1", {32 * 1024, 8, 64, 3}, kL1Events, mem, sink);

    const auto lines = GetParam().footprintLines;
    // Two warm sweeps, then measure one. Access times must be
    // monotonic across sweeps (LRU compares them).
    std::uint64_t t = 0;
    for (int sweep = 0; sweep < 2; ++sweep)
        for (std::uint32_t i = 0; i < lines; ++i)
            l1.read(static_cast<std::uint64_t>(i) * 64, t += 4);
    l1.clearStats();
    for (std::uint32_t i = 0; i < lines; ++i)
        l1.read(static_cast<std::uint64_t>(i) * 64, t += 4);

    if (GetParam().expectL1Resident) {
        EXPECT_EQ(l1.stats().readMisses, 0u);
    } else {
        EXPECT_EQ(l1.stats().readHits, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Footprints, SweepResidency,
    ::testing::Values(SweepCase{64, true},    // 4 KiB fits
                      SweepCase{256, true},   // 16 KiB fits
                      SweepCase{512, true},   // exactly 32 KiB fits
                      SweepCase{1024, false}, // 64 KiB thrashes (LRU)
                      SweepCase{4096, false}));

} // namespace
} // namespace savat::uarch
