/**
 * @file
 * Randomized property tests: the cache against a reference model,
 * the FFT against a direct DFT, the assembler against hostile
 * input, and end-to-end invariants of the measurement pipeline.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <map>
#include <set>

#include "core/meter.hh"
#include "dsp/fft.hh"
#include "isa/assembler.hh"
#include "support/rng.hh"
#include "support/stats.hh"
#include "uarch/cache.hh"

namespace savat {
namespace {

// ------------------------------------------------------ cache vs model

/**
 * Reference cache model: a plain map from set index to an LRU-ordered
 * list of (tag, dirty) entries. Slow and obviously correct.
 */
class ReferenceCache
{
  public:
    ReferenceCache(std::uint32_t sets, std::uint32_t ways,
                   std::uint32_t line)
        : _sets(sets), _ways(ways), _line(line)
    {
    }

    struct Entry
    {
        std::uint64_t tag;
        bool dirty;
        std::uint64_t lastUse;
    };

    bool
    access(std::uint64_t addr, bool write, std::uint64_t time,
           bool &evicted_dirty)
    {
        evicted_dirty = false;
        const std::uint64_t line_addr = addr / _line;
        const std::uint64_t set = line_addr % _sets;
        const std::uint64_t tag = line_addr / _sets;
        auto &entries = _state[set];
        for (auto &e : entries) {
            if (e.tag == tag) {
                e.lastUse = time;
                e.dirty = e.dirty || write;
                return true; // hit
            }
        }
        if (entries.size() >= _ways) {
            // Evict true-LRU.
            std::size_t victim = 0;
            for (std::size_t i = 1; i < entries.size(); ++i) {
                if (entries[i].lastUse < entries[victim].lastUse)
                    victim = i;
            }
            evicted_dirty = entries[victim].dirty;
            entries.erase(entries.begin() +
                          static_cast<std::ptrdiff_t>(victim));
        }
        entries.push_back({tag, write, time});
        return false; // miss
    }

  private:
    std::uint32_t _sets, _ways, _line;
    std::map<std::uint64_t, std::vector<Entry>> _state;
};

struct CacheShape
{
    std::uint32_t size, ways, line;
};

class CacheAgainstModel : public ::testing::TestWithParam<CacheShape>
{
};

TEST_P(CacheAgainstModel, RandomAccessSequenceMatches)
{
    const auto shape = GetParam();
    uarch::NullActivitySink sink;
    uarch::MainMemory mem(50, 8, sink);
    uarch::Cache cache("L1", {shape.size, shape.ways, shape.line, 3},
                       {uarch::MicroEvent::L1Read,
                        uarch::MicroEvent::L1Write,
                        uarch::MicroEvent::L1Fill,
                        uarch::MicroEvent::L1Evict},
                       mem, sink);
    ReferenceCache model(shape.size / shape.line / shape.ways,
                         shape.ways, shape.line);

    Rng rng(shape.size ^ shape.ways);
    std::uint64_t hits = 0, model_hits = 0;
    for (std::uint64_t t = 1; t <= 20000; ++t) {
        // Addresses clustered enough to hit sometimes.
        const std::uint64_t addr =
            rng.uniformInt(8 * shape.size) & ~3ull;
        const bool write = rng.uniform() < 0.3;
        bool evicted_dirty = false;
        const bool model_hit =
            model.access(addr, write, t, evicted_dirty);
        const auto before_rh = cache.stats().readHits;
        const auto before_wh = cache.stats().writeHits;
        if (write)
            cache.write(addr, t);
        else
            cache.read(addr, t);
        const bool cache_hit =
            cache.stats().readHits + cache.stats().writeHits >
            before_rh + before_wh;
        ASSERT_EQ(cache_hit, model_hit)
            << "divergence at access " << t << " addr " << addr;
        hits += cache_hit;
        model_hits += model_hit;
    }
    EXPECT_EQ(hits, model_hits);
    EXPECT_GT(hits, 100u); // the sequence actually exercised hits
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheAgainstModel,
    ::testing::Values(CacheShape{1024, 2, 64},
                      CacheShape{4096, 4, 64},
                      CacheShape{4096, 1, 32},   // direct-mapped
                      CacheShape{8192, 8, 128},
                      CacheShape{512, 8, 64}));  // fully assoc. sets

// ------------------------------------------------------- fft vs direct

TEST(FftProperty, MatchesDirectDft)
{
    Rng rng(42);
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t n = 64;
        std::vector<dsp::Complex> x(n);
        for (auto &v : x)
            v = dsp::Complex(rng.gaussian(), rng.gaussian());
        auto fast = x;
        dsp::fft(fast);
        for (std::size_t k = 0; k < n; k += 7) {
            dsp::Complex direct(0, 0);
            for (std::size_t i = 0; i < n; ++i) {
                const double ang = -2.0 * M_PI *
                                   static_cast<double>(k * i) /
                                   static_cast<double>(n);
                direct += x[i] * dsp::Complex(std::cos(ang),
                                              std::sin(ang));
            }
            EXPECT_NEAR(std::abs(fast[k] - direct), 0.0, 1e-9);
        }
    }
}

TEST(FftProperty, SingleBinMatchesFftOnGridFrequencies)
{
    Rng rng(43);
    const std::size_t n = 256;
    std::vector<double> x(n);
    for (auto &v : x)
        v = rng.gaussian();
    std::vector<dsp::Complex> cx(n);
    for (std::size_t i = 0; i < n; ++i)
        cx[i] = dsp::Complex(x[i], 0.0);
    dsp::fft(cx);
    for (std::size_t k : {1u, 5u, 31u, 100u}) {
        const auto direct = dsp::singleBinDft(
            x, static_cast<double>(k) / static_cast<double>(n));
        EXPECT_NEAR(std::abs(direct - cx[k] /
                                          static_cast<double>(n)),
                    0.0, 1e-9);
    }
}

// --------------------------------------------------------- rng streams

TEST(RngProperty, ForksAreUncorrelated)
{
    Rng parent(7);
    auto a = parent.fork();
    auto b = parent.fork();
    std::vector<double> xs, ys;
    for (int i = 0; i < 20000; ++i) {
        xs.push_back(a.uniform());
        ys.push_back(b.uniform());
    }
    EXPECT_LT(std::abs(pearson(xs, ys)), 0.03);
}

// ---------------------------------------------------- assembler fuzzing

TEST(AssemblerFuzz, HostileInputNeverCrashes)
{
    Rng rng(1234);
    const char *fragments[] = {
        "mov",  "eax",  ",",     "[",     "]",    "173",
        "0x",   "jne",  "label", ":",     ";",    "idiv",
        "cdq",  "\t",   "  ",    "@",     "-",    "99999999999",
        "esi",  "mark", "hlt",   "bogus", "test", "0xFFFFFFFFF",
    };
    for (int trial = 0; trial < 2000; ++trial) {
        std::string src;
        const int lines = 1 + static_cast<int>(rng.uniformInt(5));
        for (int l = 0; l < lines; ++l) {
            const int tokens =
                1 + static_cast<int>(rng.uniformInt(6));
            for (int t = 0; t < tokens; ++t) {
                src += fragments[rng.uniformInt(
                    sizeof(fragments) / sizeof(fragments[0]))];
                if (rng.uniform() < 0.5)
                    src += " ";
            }
            src += "\n";
        }
        const auto res = isa::assemble(src);
        if (!res.ok) {
            EXPECT_FALSE(res.error.empty());
            EXPECT_GT(res.errorLine, 0u);
        }
    }
}

// -------------------------------------------- measurement invariants

TEST(PipelineInvariants, SavatIsSymmetricEnough)
{
    // A/B and B/A use different program layouts; the paper uses
    // their agreement as a placement-error bound. Check a couple of
    // pairs end to end.
    auto meter = core::SavatMeter::forMachine("core2duo");
    auto mean = [&meter](kernels::EventKind a, kernels::EventKind b) {
        const auto &sim = meter.simulatePair(a, b);
        Rng rng(31);
        RunningStats s;
        for (int i = 0; i < 8; ++i) {
            auto rep = rng.fork();
            s.add(meter.measure(sim, rep).savat.inZepto());
        }
        return s.mean();
    };
    using kernels::EventKind;
    const double ab = mean(EventKind::ADD, EventKind::LDL2);
    const double ba = mean(EventKind::LDL2, EventKind::ADD);
    EXPECT_NEAR(ab, ba, 0.35 * std::max(ab, ba));
}

TEST(PipelineInvariants, MoreRepetitionsTightenTheMean)
{
    auto meter = core::SavatMeter::forMachine("core2duo");
    const auto &sim = meter.simulatePair(kernels::EventKind::ADD,
                                         kernels::EventKind::LDM);
    // Standard error of the mean shrinks ~1/sqrt(n): estimate the
    // spread of 4-rep means vs 16-rep means.
    auto spread_of_means = [&](int reps) {
        RunningStats means;
        Rng rng(17);
        for (int trial = 0; trial < 12; ++trial) {
            RunningStats s;
            for (int i = 0; i < reps; ++i) {
                auto rep = rng.fork();
                s.add(meter.measure(sim, rep).savat.inZepto());
            }
            means.add(s.mean());
        }
        return means.stddev();
    };
    EXPECT_LT(spread_of_means(16), spread_of_means(2));
}

TEST(PipelineInvariants, BandPowerDominatedByTone)
{
    // For a strong pair, at least half the measured band power must
    // come from the alternation tone (not noise or interferers).
    auto meter = core::SavatMeter::forMachine("core2duo");
    const auto &sim = meter.simulatePair(kernels::EventKind::ADD,
                                         kernels::EventKind::LDM);
    Rng rng(3);
    const auto m = meter.measure(sim, rng);
    const double out_of_band =
        m.trace.bandPower(78000.0, 79000.0) +
        m.trace.bandPower(81000.0, 82000.0);
    EXPECT_GT(m.bandPowerW, 5.0 * out_of_band);
}

} // namespace
} // namespace savat
