/**
 * @file
 * Kernel code-generation contract tests: the exact shape of the
 * generated Figure-4 assembly (a golden snapshot for the quickstart
 * configuration), disassembly/assembly round-trips for every
 * generated kernel, and the spectrum report renderer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hh"
#include "isa/assembler.hh"
#include "kernels/generator.hh"
#include "kernels/sequence.hh"
#include "spectrum/analyzer.hh"

namespace savat {
namespace {

using kernels::EventKind;

TEST(KernelGolden, AddLdmKernelSource)
{
    // The quickstart kernel, line by line. This pins down the exact
    // Figure-4 structure: prologue, period mark, A burst with the
    // masked pointer update, half mark, B burst, back edge.
    const auto k = kernels::buildAlternationKernel(
        uarch::core2duo(), EventKind::ADD, EventKind::LDM, 100, 50);
    const char *expected =
        "; SAVAT alternation kernel: A=ADD B=LDM machine=core2duo\n"
        "    mov esi,0x10000000\n"
        "    mov edi,0x30000000\n"
        "    mov eax,7\n"
        "    mov edx,0\n"
        "top:\n"
        "    mark 1\n"
        "    mov ecx,100\n"
        "a_loop:\n"
        "    mov ebx,esi\n"
        "    add ebx,64\n"
        "    and ebx,0x3FFF\n"
        "    and esi,0xFFFFC000\n"
        "    or esi,ebx\n"
        "    cdq\n"
        "    add eax,173\n"
        "    dec ecx\n"
        "    jne a_loop\n"
        "    mark 2\n"
        "    mov ecx,50\n"
        "b_loop:\n"
        "    mov ebx,edi\n"
        "    add ebx,64\n"
        "    and ebx,0xFFFFFF\n"
        "    and edi,0xFF000000\n"
        "    or edi,ebx\n"
        "    cdq\n"
        "    mov eax,[edi]\n"
        "    dec ecx\n"
        "    jne b_loop\n"
        "    jmp top\n";
    EXPECT_EQ(k.source, expected);
}

TEST(KernelGolden, BranchSlotShape)
{
    const auto k = kernels::buildAlternationKernel(
        uarch::core2duo(), EventKind::BRH, EventKind::BRM, 10, 10);
    // Unique labels per half, identical instruction mix.
    EXPECT_NE(k.source.find("jne bp_a_loop"), std::string::npos);
    EXPECT_NE(k.source.find("jne bp_b_loop"), std::string::npos);
    EXPECT_NE(k.source.find("test ebx,0"), std::string::npos);
    EXPECT_NE(k.source.find("test ebx,64"), std::string::npos);
}

/**
 * Round trip: disassembling an assembled kernel and re-assembling
 * the result must reproduce the same instruction stream (branch
 * targets are rendered as @index, so compare via re-rendering).
 */
class KernelRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(KernelRoundTrip, SourceReassemblesIdentically)
{
    const auto a = static_cast<EventKind>(std::get<0>(GetParam()));
    const auto b = static_cast<EventKind>(std::get<1>(GetParam()));
    const auto k = kernels::buildAlternationKernel(
        uarch::pentium3m(), a, b, 25, 37);
    const auto again = isa::assemble(k.source);
    ASSERT_TRUE(again.ok) << again.error;
    ASSERT_EQ(again.program.size(), k.program.size());
    for (std::size_t i = 0; i < k.program.size(); ++i) {
        EXPECT_EQ(again.program.at(i), k.program.at(i))
            << "instruction " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    PairGrid, KernelRoundTrip,
    ::testing::Combine(::testing::Values(0, 3, 6, 9, 10, 12),
                       ::testing::Values(1, 4, 7, 10, 11)));

TEST(KernelGolden, SequenceKernelRoundTrips)
{
    const auto k = kernels::buildSequenceKernel(
        uarch::turionx2(), {EventKind::LDM, EventKind::DIV},
        {EventKind::BRM, EventKind::ADD}, 11, 13);
    const auto again = isa::assemble(k.source);
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_EQ(again.program.size(), k.program.size());
}

TEST(SpectrumReport, RendersBandAndBars)
{
    spectrum::Trace trace;
    trace.startHz = 78000.0;
    trace.binHz = 1.0;
    trace.psd.assign(4001, 1e-17);
    trace.psd[2000] = 5e-14;
    std::ostringstream oss;
    core::printSpectrum(oss, trace, 79000.0, 81000.0);
    const auto out = oss.str();
    EXPECT_NE(out.find("band power"), std::string::npos);
    // The in-band marker and the peak bar appear.
    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find("####"), std::string::npos);
    // One line per displayed bin bucket.
    EXPECT_GT(std::count(out.begin(), out.end(), '\n'), 40);
}

} // namespace
} // namespace savat
