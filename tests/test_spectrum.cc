/**
 * @file
 * Unit tests for the spectrum-analyzer model.
 */

#include <gtest/gtest.h>

#include "spectrum/analyzer.hh"

namespace savat::spectrum {
namespace {

em::NarrowbandSpectrum
flatIncident(double psd, double start = 78000.0, std::size_t n = 4001)
{
    em::NarrowbandSpectrum s;
    s.startHz = start;
    s.binHz = 1.0;
    s.psd.assign(n, psd);
    return s;
}

SweepConfig
defaultSweep()
{
    SweepConfig cfg;
    cfg.center = Frequency::khz(80.0);
    cfg.spanHz = 4000.0;
    cfg.rbwHz = 1.0;
    cfg.noiseFloorWPerHz = 5e-18;
    return cfg;
}

TEST(Trace, BandPowerIntegration)
{
    Trace t;
    t.startHz = 0.0;
    t.binHz = 2.0;
    t.psd.assign(50, 3.0);
    EXPECT_NEAR(t.bandPower(10.0, 20.0), 30.0, 1e-9);
}

TEST(Trace, PeakSearch)
{
    Trace t;
    t.startHz = 100.0;
    t.binHz = 1.0;
    t.psd.assign(100, 1.0);
    t.psd[40] = 9.0;
    EXPECT_DOUBLE_EQ(t.peakFrequency(100.0, 199.0), 140.0);
    EXPECT_DOUBLE_EQ(t.peakPsd(100.0, 199.0), 9.0);
    EXPECT_DOUBLE_EQ(t.peakPsd(150.0, 199.0), 1.0);
}

TEST(Analyzer, ConfigValidation)
{
    SweepConfig bad = defaultSweep();
    bad.rbwHz = 0.0;
    EXPECT_EXIT(SpectrumAnalyzer{bad},
                ::testing::KilledBySignal(SIGABRT), "RBW");
}

TEST(Analyzer, FlatPsdPreserved)
{
    SpectrumAnalyzer analyzer(defaultSweep());
    const auto incident = flatIncident(1e-15);
    Rng rng(1);
    const auto trace = analyzer.measure(incident, rng);
    // Mean displayed level should track the incident level (noise
    // floor is 1000x below).
    double mean = 0.0;
    for (double v : trace.psd)
        mean += v;
    mean /= static_cast<double>(trace.size());
    EXPECT_NEAR(mean, 1e-15, 0.05e-15);
}

TEST(Analyzer, NoiseFloorLevel)
{
    SpectrumAnalyzer analyzer(defaultSweep());
    const auto incident = flatIncident(0.0);
    Rng rng(2);
    const auto trace = analyzer.measure(incident, rng);
    double mean = 0.0;
    for (double v : trace.psd)
        mean += v;
    mean /= static_cast<double>(trace.size());
    // Exponential noise around the configured DANL.
    EXPECT_NEAR(mean, 5e-18, 1e-18);
}

TEST(Analyzer, TonePowerConservedThroughRbw)
{
    SpectrumAnalyzer analyzer(defaultSweep());
    auto incident = flatIncident(0.0);
    incident.psd[incident.binFor(80000.0)] = 2e-13; // 2e-13 W tone
    Rng rng(3);
    const auto trace = analyzer.measure(incident, rng);
    const double band = trace.bandPower(79900.0, 80100.0);
    EXPECT_NEAR(band, 2e-13, 0.1e-13);
}

TEST(Analyzer, WideRbwSpreadsTone)
{
    auto cfg = defaultSweep();
    cfg.rbwHz = 30.0;
    SpectrumAnalyzer analyzer(cfg);
    auto incident = flatIncident(0.0);
    incident.psd[incident.binFor(80000.0)] = 1e-13;
    Rng rng(4);
    const auto trace = analyzer.measure(incident, rng);
    // The displayed peak is lower and wider than with 1 Hz RBW but
    // the integrated power stays put.
    const double band = trace.bandPower(79500.0, 80500.0);
    EXPECT_NEAR(band, 1e-13, 0.15e-13);
    const auto peak = trace.peakPsd(79900.0, 80100.0);
    EXPECT_LT(peak, 1e-13);
    EXPECT_GT(trace.peakPsd(80010.0, 80040.0), 1e-16);
}

TEST(Analyzer, TraceCoversSpan)
{
    SpectrumAnalyzer analyzer(defaultSweep());
    const auto incident = flatIncident(1e-17);
    Rng rng(5);
    const auto trace = analyzer.measure(incident, rng);
    EXPECT_NEAR(trace.startHz, 78000.0, 1e-9);
    EXPECT_NEAR(trace.frequency(trace.size() - 1), 82000.0, 1.0);
}

} // namespace
} // namespace savat::spectrum
