/**
 * @file
 * Tests for the naive-methodology baseline (Section III's argument).
 */

#include <gtest/gtest.h>

#include "core/naive.hh"
#include "em/emission.hh"
#include "uarch/machine.hh"

namespace savat::core {
namespace {

using kernels::EventKind;

NaiveConfig
noiseless()
{
    NaiveConfig cfg;
    cfg.noiseFraction = 0.0;
    cfg.alignmentJitterSamples = 0;
    return cfg;
}

TEST(Naive, NoiselessRecoversTruthExactly)
{
    const auto m = uarch::core2duo();
    const auto p = em::emissionProfileFor("core2duo");
    Rng rng(1);
    const auto res = runNaiveComparison(m, p, EventKind::ADD,
                                        EventKind::LDM, noiseless(),
                                        4, rng);
    EXPECT_GT(res.trueDifference, 0.0);
    EXPECT_NEAR(res.meanRelativeError, 0.0, 1e-12);
    EXPECT_NEAR(res.estimates.mean, res.trueDifference,
                1e-12 * res.trueDifference);
}

TEST(Naive, IdenticalInstructionsHaveZeroTruth)
{
    const auto m = uarch::core2duo();
    const auto p = em::emissionProfileFor("core2duo");
    Rng rng(2);
    const auto res = runNaiveComparison(m, p, EventKind::ADD,
                                        EventKind::ADD, noiseless(),
                                        2, rng);
    EXPECT_NEAR(res.trueDifference, 0.0, 1e-15);
}

TEST(Naive, NoiseSwampsSimilarInstructions)
{
    // The paper's point: with realistic noise the estimate of a
    // small difference is dominated by measurement error. ADD and
    // SUB produce identical modeled activity (true difference zero),
    // yet the noisy estimate reports a large bogus difference.
    const auto m = uarch::core2duo();
    const auto p = em::emissionProfileFor("core2duo");
    NaiveConfig cfg; // 0.5 % noise, 1-sample jitter
    Rng rng(3);
    const auto res = runNaiveComparison(m, p, EventKind::ADD,
                                        EventKind::SUB, cfg, 20, rng);
    EXPECT_NEAR(res.trueDifference, 0.0, 1e-15);
    EXPECT_GT(res.estimates.mean, 0.0);
}

TEST(Naive, ErrorGrowsWithNoise)
{
    const auto m = uarch::core2duo();
    const auto p = em::emissionProfileFor("core2duo");
    NaiveConfig lo;
    lo.noiseFraction = 0.001;
    lo.alignmentJitterSamples = 0;
    NaiveConfig hi;
    hi.noiseFraction = 0.02;
    hi.alignmentJitterSamples = 0;
    Rng rng1(4), rng2(4);
    const auto res_lo = runNaiveComparison(
        m, p, EventKind::ADD, EventKind::DIV, lo, 20, rng1);
    const auto res_hi = runNaiveComparison(
        m, p, EventKind::ADD, EventKind::DIV, hi, 20, rng2);
    EXPECT_GT(res_hi.meanRelativeError, res_lo.meanRelativeError);
}

TEST(Naive, EstimatesArePositive)
{
    const auto m = uarch::core2duo();
    const auto p = em::emissionProfileFor("core2duo");
    NaiveConfig cfg;
    Rng rng(5);
    const auto res = runNaiveComparison(m, p, EventKind::ADD,
                                        EventKind::LDM, cfg, 10, rng);
    EXPECT_GT(res.estimates.min, 0.0);
    EXPECT_EQ(res.estimates.count, 10u);
}

TEST(Naive, AlternationMethodologyWinsOnRepeatability)
{
    // Head-to-head: the naive relative error for ADD/DIV versus the
    // ~5 % repeatability the alternation methodology achieves.
    const auto m = uarch::core2duo();
    const auto p = em::emissionProfileFor("core2duo");
    NaiveConfig cfg;
    Rng rng(6);
    const auto res = runNaiveComparison(m, p, EventKind::ADD,
                                        EventKind::DIV, cfg, 20, rng);
    EXPECT_GT(res.meanRelativeError, 0.5);
    // The alternation methodology's repeatability is ~5 %: the naive
    // estimate is at least an order of magnitude worse.
    EXPECT_GT(res.meanRelativeError, 10.0 * 0.05);
}

} // namespace
} // namespace savat::core
