/**
 * @file
 * Unit tests for the ISA model and assembler.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/instruction.hh"

namespace savat::isa {
namespace {

TEST(RegNames, AllRegistersNamed)
{
    EXPECT_STREQ(regName(Reg::Eax), "eax");
    EXPECT_STREQ(regName(Reg::Esp), "esp");
    for (std::size_t i = 0; i < kNumRegs; ++i)
        EXPECT_NE(regName(static_cast<Reg>(i)), nullptr);
}

TEST(ParseReg, ValidAndInvalid)
{
    EXPECT_EQ(parseReg("eax"), Reg::Eax);
    EXPECT_EQ(parseReg("ESI"), Reg::Esi);
    EXPECT_FALSE(parseReg("rax").has_value());
    EXPECT_FALSE(parseReg("").has_value());
}

TEST(Operand, Rendering)
{
    EXPECT_EQ(Operand::regDirect(Reg::Ecx).toString(), "ecx");
    EXPECT_EQ(Operand::immediate(173).toString(), "173");
    EXPECT_EQ(Operand::immediate(-5).toString(), "-5");
    EXPECT_EQ(Operand::immediate(0xFFFFFFFFll).toString(),
              "0xFFFFFFFF");
    EXPECT_EQ(Operand::memIndirect(Reg::Esi).toString(), "[esi]");
    EXPECT_EQ(Operand::none().toString(), "");
}

TEST(Instruction, Predicates)
{
    Instruction load;
    load.op = Opcode::Mov;
    load.dst = Operand::regDirect(Reg::Eax);
    load.src = Operand::memIndirect(Reg::Esi);
    EXPECT_TRUE(load.isLoad());
    EXPECT_FALSE(load.isStore());
    EXPECT_FALSE(load.isBranch());

    Instruction store;
    store.op = Opcode::Mov;
    store.dst = Operand::memIndirect(Reg::Esi);
    store.src = Operand::immediate(1);
    EXPECT_TRUE(store.isStore());

    Instruction jmp;
    jmp.op = Opcode::Jmp;
    jmp.target = 3;
    EXPECT_TRUE(jmp.isBranch());
}

TEST(Assembler, SimpleProgram)
{
    const auto res = assemble("mov eax,7\nadd eax,173\nhlt\n");
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(res.program.size(), 3u);
    EXPECT_EQ(res.program.at(0).op, Opcode::Mov);
    EXPECT_EQ(res.program.at(1).op, Opcode::Add);
    EXPECT_EQ(res.program.at(1).src.imm, 173);
    EXPECT_EQ(res.program.at(2).op, Opcode::Hlt);
}

TEST(Assembler, CommentsAndBlanks)
{
    const auto res = assemble(
        "; full line comment\n"
        "\n"
        "   mov eax,1 ; trailing comment\n"
        "\t\n"
        "hlt\n");
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.program.size(), 2u);
}

TEST(Assembler, MemoryOperands)
{
    const auto res = assemble(
        "mov eax,[esi]\n"
        "mov [edi],0xFFFFFFFF\n"
        "mov [esi],ebx\n");
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.program.at(0).isLoad());
    EXPECT_TRUE(res.program.at(1).isStore());
    EXPECT_EQ(res.program.at(1).src.imm, 0xFFFFFFFFll);
    EXPECT_TRUE(res.program.at(2).isStore());
    EXPECT_EQ(res.program.at(2).src.reg, Reg::Ebx);
}

TEST(Assembler, LabelsAndBranches)
{
    const auto res = assemble(
        "top:\n"
        "    dec ecx\n"
        "    jne top\n"
        "    jmp done\n"
        "    nop\n"
        "done: hlt\n");
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.program.at(1).target, 0);
    EXPECT_EQ(res.program.at(2).target, 4); // forward reference
    EXPECT_EQ(res.program.labelIndex("top"), 0);
    EXPECT_EQ(res.program.labelIndex("done"), 4);
    EXPECT_EQ(res.program.labelIndex("missing"), -1);
}

TEST(Assembler, LabelOnSameLineAsInstruction)
{
    const auto res = assemble("loop: add eax,1\njne loop\n");
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.program.at(1).target, 0);
}

TEST(Assembler, SingleOperandForms)
{
    const auto res = assemble(
        "idiv eax\n"
        "inc ecx\n"
        "dec edx\n"
        "cdq\n"
        "nop\n"
        "mark 2\n");
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.program.at(0).op, Opcode::Idiv);
    EXPECT_EQ(res.program.at(5).op, Opcode::Mark);
    EXPECT_EQ(res.program.at(5).dst.imm, 2);
}

TEST(Assembler, HexImmediates)
{
    const auto res = assemble("and esi,0xFF000000\n");
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.program.at(0).src.imm, 0xFF000000ll);
}

struct BadSource
{
    const char *source;
    const char *why;
};

class AssemblerErrors : public ::testing::TestWithParam<BadSource>
{
};

TEST_P(AssemblerErrors, Rejected)
{
    const auto res = assemble(GetParam().source);
    EXPECT_FALSE(res.ok) << GetParam().why;
    EXPECT_FALSE(res.error.empty());
    EXPECT_GT(res.errorLine, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AssemblerErrors,
    ::testing::Values(
        BadSource{"bogus eax,1\n", "unknown mnemonic"},
        BadSource{"mov eax\n", "missing operand"},
        BadSource{"mov eax,ebx,ecx\n", "too many operands"},
        BadSource{"mov [esi],[edi]\n", "memory-to-memory"},
        BadSource{"mov 5,eax\n", "immediate destination"},
        BadSource{"add eax,[esi]\n", "memory on non-mov"},
        BadSource{"jne\n", "branch without target"},
        BadSource{"jne nowhere\n", "undefined label"},
        BadSource{"x: nop\nx: nop\n", "duplicate label"},
        BadSource{"idiv 5\n", "idiv immediate"},
        BadSource{"cdq eax\n", "cdq with operand"},
        BadSource{"mark eax\n", "mark with register"},
        BadSource{"mov eax,[zzz]\n", "bad base register"},
        BadSource{"mov eax,[esi\n", "unterminated memory operand"},
        BadSource{"bad label: nop\n", "label with space"}));

TEST(Assembler, ErrorLineNumber)
{
    const auto res = assemble("nop\nnop\nbogus x\n");
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.errorLine, 3u);
}

TEST(Program, Disassemble)
{
    const auto res = assemble(
        "start: mov eax,7\n"
        "imul eax,173\n"
        "jne start\n"
        "hlt\n");
    ASSERT_TRUE(res.ok);
    const auto text = res.program.disassemble();
    EXPECT_NE(text.find("start:"), std::string::npos);
    EXPECT_NE(text.find("mov eax,7"), std::string::npos);
    EXPECT_NE(text.find("imul eax,173"), std::string::npos);
    EXPECT_NE(text.find("@0"), std::string::npos);
}

TEST(Program, AppendAndAccess)
{
    Program p("test");
    Instruction nop;
    nop.op = Opcode::Nop;
    EXPECT_EQ(p.append(nop), 0u);
    EXPECT_EQ(p.append(nop), 1u);
    EXPECT_EQ(p.size(), 2u);
    EXPECT_EQ(p.name(), "test");
    EXPECT_FALSE(p.empty());
}

TEST(Assembler, RoundTripThroughDisassembly)
{
    // Every instruction's toString must itself be parseable (modulo
    // branch targets, which render as @index).
    const auto res = assemble(
        "mov eax,7\n"
        "add eax,173\n"
        "sub ebx,5\n"
        "and esi,0xFF\n"
        "or edi,ebx\n"
        "xor ecx,ecx\n"
        "imul eax,173\n"
        "idiv eax\n"
        "cdq\n"
        "inc ecx\n"
        "dec ecx\n"
        "cmp ecx,1\n"
        "test eax,eax\n"
        "nop\n"
        "hlt\n");
    ASSERT_TRUE(res.ok) << res.error;
    for (const auto &inst : res.program.instructions()) {
        const auto again = assemble(inst.toString());
        ASSERT_TRUE(again.ok)
            << inst.toString() << ": " << again.error;
        ASSERT_EQ(again.program.size(), 1u);
        EXPECT_EQ(again.program.at(0), inst);
    }
}

} // namespace
} // namespace savat::isa
