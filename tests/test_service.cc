/**
 * @file
 * Tests for the crash-isolated worker pool (service/pool.hh) and its
 * savat-worker-wire-v1 frame protocol (support/wire.hh): frame
 * round-trips survive byte-at-a-time delivery, corruption poisons
 * the stream permanently, a torn frame is distinguishable at EOF; a
 * worker SIGKILLed mid-cell is restarted and the cell recovers, an
 * always-crashing cell is quarantined after its budget instead of
 * wedging the run, frozen workers die by heartbeat timeout and slow
 * cells by deadline; and the headline invariant — a process-isolated
 * campaign reproduces the golden fixture byte for byte at workers 1
 * and 4, including across an injected worker death.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hh"
#include "core/report.hh"
#include "pipeline/replay.hh"
#include "service/pool.hh"
#include "support/wire.hh"

namespace savat {
namespace {

using kernels::EventKind;
using support::Frame;
using support::FrameType;
using support::WireReader;
using support::WireStatus;

// ---------------------------------------------------------------
// Wire protocol.

TEST(ServiceWire, PayloadWordsRoundTripBitExact)
{
    std::string payload;
    support::appendU64(payload, 0);
    support::appendU64(payload, 0xDEADBEEFCAFEF00Dull);
    support::appendF64(payload, -0.0);
    support::appendF64(payload, 6.62607015e-34);

    std::size_t off = 0;
    std::uint64_t a = 1, b = 0;
    double x = 0.0, y = 0.0;
    ASSERT_TRUE(support::readU64(payload, off, a));
    ASSERT_TRUE(support::readU64(payload, off, b));
    ASSERT_TRUE(support::readF64(payload, off, x));
    ASSERT_TRUE(support::readF64(payload, off, y));
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 0xDEADBEEFCAFEF00Dull);
    EXPECT_EQ(x, 0.0);
    EXPECT_TRUE(std::signbit(x));
    EXPECT_EQ(y, 6.62607015e-34);
    EXPECT_EQ(off, payload.size());

    // A short payload fails without advancing the cursor.
    std::uint64_t extra = 7;
    ASSERT_FALSE(support::readU64(payload, off, extra));
    EXPECT_EQ(extra, 7u);
    EXPECT_EQ(off, payload.size());
}

TEST(ServiceWire, FramesSurviveByteAtATimeDelivery)
{
    // Frames with empty, textual and binary (NUL-bearing) payloads.
    const std::vector<Frame> sent = {
        {FrameType::Shutdown, ""},
        {FrameType::CellRetry, std::string("err\0bin", 7)},
        {FrameType::CellDone, std::string(4096, 'x')},
    };
    std::string bytes;
    for (const auto &f : sent)
        bytes += support::encodeFrame(f);

    WireReader reader;
    std::vector<Frame> got;
    for (const char c : bytes) {
        reader.feed(&c, 1);
        Frame f;
        std::string error;
        const WireStatus st = reader.next(f, &error);
        ASSERT_NE(st, WireStatus::Corrupt) << error;
        if (st == WireStatus::Frame)
            got.push_back(std::move(f));
    }
    ASSERT_EQ(got.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
        EXPECT_EQ(got[i].type, sent[i].type);
        EXPECT_EQ(got[i].payload, sent[i].payload);
    }
    EXPECT_EQ(reader.pendingBytes(), 0u);
}

TEST(ServiceWire, TornFrameIsVisibleAsPendingBytes)
{
    const std::string bytes = support::encodeFrame(
        {FrameType::CellDone, "partial result"});
    WireReader reader;
    reader.feed(bytes.data(), bytes.size() - 1);
    Frame f;
    EXPECT_EQ(reader.next(f), WireStatus::NeedMore);
    // The supervisor's "worker died mid-send" signal: EOF with a
    // partial frame still buffered.
    EXPECT_GT(reader.pendingBytes(), 0u);

    reader.feed(bytes.data() + bytes.size() - 1, 1);
    ASSERT_EQ(reader.next(f), WireStatus::Frame);
    EXPECT_EQ(f.payload, "partial result");
    EXPECT_EQ(reader.pendingBytes(), 0u);
}

TEST(ServiceWire, CorruptionIsPermanent)
{
    std::string bytes = support::encodeFrame(
        {FrameType::Heartbeat, "abcdefgh"});
    bytes.back() ^= 0x01; // flip one payload bit -> CRC mismatch

    WireReader reader;
    reader.feed(bytes.data(), bytes.size());
    Frame f;
    std::string error;
    EXPECT_EQ(reader.next(f, &error), WireStatus::Corrupt);
    EXPECT_FALSE(error.empty());

    // Even a pristine frame cannot revive a poisoned stream.
    const std::string clean =
        support::encodeFrame({FrameType::Shutdown, ""});
    reader.feed(clean.data(), clean.size());
    EXPECT_EQ(reader.next(f), WireStatus::Corrupt);
}

TEST(ServiceWire, BadMagicAndOversizedLengthAreCorrupt)
{
    {
        std::string bytes = support::encodeFrame(
            {FrameType::Measure, "zz"});
        bytes[0] = 'X'; // clobber the magic
        WireReader reader;
        reader.feed(bytes.data(), bytes.size());
        Frame f;
        EXPECT_EQ(reader.next(f), WireStatus::Corrupt);
    }
    {
        // A length field past kMaxFramePayload must be rejected from
        // the header alone -- no gigabyte of buffering required.
        std::string bytes = support::encodeFrame(
            {FrameType::Measure, "zz"});
        bytes[5] = '\xFF';
        bytes[6] = '\xFF';
        bytes[7] = '\xFF';
        bytes[8] = '\x7F';
        WireReader reader;
        reader.feed(bytes.data(), bytes.size());
        Frame f;
        EXPECT_EQ(reader.next(f), WireStatus::Corrupt);
    }
}

// ---------------------------------------------------------------
// The pool itself, driven directly with synthetic cell functions.
// Cells run in forked children, so std::_Exit / raise() here kill a
// worker, not the test binary.

struct PoolRun
{
    service::PoolStats stats;
    std::map<std::size_t, std::string> payloads;
    std::map<std::size_t, std::size_t> quarantined; // cell -> crashes
    std::string lastQuarantineReason;
    std::size_t workerDeaths = 0;
};

PoolRun
drive(const service::PoolConfig &config, std::size_t cells,
      const service::WorkerFactory &factory)
{
    PoolRun run;
    std::vector<std::size_t> ids(cells);
    for (std::size_t i = 0; i < cells; ++i)
        ids[i] = i;
    service::PoolCallbacks cb;
    cb.onCellDone = [&](std::size_t cell, double, double,
                        const std::string &payload) {
        run.payloads[cell] = payload;
    };
    cb.onQuarantine = [&](std::size_t cell, std::size_t crashes,
                          const std::string &reason) {
        run.quarantined[cell] = crashes;
        run.lastQuarantineReason = reason;
    };
    cb.onWorkerEvent = [&](std::size_t, std::int64_t,
                           service::WorkerEvent event,
                           const std::string &) {
        run.workerDeaths += event == service::WorkerEvent::Died;
    };
    run.stats = service::runPool(config, ids, factory, cb);
    return run;
}

std::string
cellPayload(std::size_t cell)
{
    return "cell-" + std::to_string(cell) + "-result";
}

TEST(ServicePool, CompletesEveryCellAcrossWorkers)
{
    service::PoolConfig config;
    config.workers = 3;
    const auto run = drive(config, 8, []() -> service::CellFn {
        return [](service::WorkerContext &, std::size_t cell,
                  std::size_t) { return cellPayload(cell); };
    });
    EXPECT_EQ(run.stats.dispatched, 8u);
    EXPECT_EQ(run.stats.completed, 8u);
    EXPECT_EQ(run.stats.deaths, 0u);
    EXPECT_EQ(run.stats.quarantined, 0u);
    ASSERT_EQ(run.payloads.size(), 8u);
    for (std::size_t c = 0; c < 8; ++c)
        EXPECT_EQ(run.payloads.at(c), cellPayload(c));
}

TEST(ServicePool, KilledWorkerIsRestartedAndCellRecovers)
{
    service::PoolConfig config;
    // One worker, so finishing the queue *requires* a restart (a
    // surviving sibling would otherwise drain it first -- respawns
    // are lazy and never fork workers the run no longer needs).
    config.workers = 1;
    config.restart.backoffSeconds = 0.01;
    const auto run = drive(config, 6, []() -> service::CellFn {
        return [](service::WorkerContext &, std::size_t cell,
                  std::size_t dispatchAttempt) {
            // Cell 3's first dispatch dies the way `kill -9` would;
            // the replacement worker must complete it.
            if (cell == 3 && dispatchAttempt == 0)
                std::_Exit(137);
            return cellPayload(cell);
        };
    });
    EXPECT_EQ(run.stats.completed, 6u);
    EXPECT_EQ(run.stats.deaths, 1u);
    EXPECT_GE(run.stats.restarts, 1u);
    EXPECT_EQ(run.stats.quarantined, 0u);
    EXPECT_EQ(run.workerDeaths, 1u);
    EXPECT_EQ(run.payloads.at(3), cellPayload(3));
}

TEST(ServicePool, AlwaysCrashingCellIsQuarantined)
{
    service::PoolConfig config;
    config.workers = 2;
    config.restart.maxAttempts = 2; // the per-cell crash budget
    config.restart.backoffSeconds = 0.01;
    const auto run = drive(config, 4, []() -> service::CellFn {
        return [](service::WorkerContext &, std::size_t cell,
                  std::size_t) {
            if (cell == 1)
                std::_Exit(42); // poisoned on every dispatch
            return cellPayload(cell);
        };
    });
    EXPECT_EQ(run.stats.quarantined, 1u);
    EXPECT_EQ(run.stats.completed, 3u);
    EXPECT_EQ(run.stats.deaths, 2u);
    ASSERT_EQ(run.quarantined.count(1), 1u);
    EXPECT_EQ(run.quarantined.at(1), 2u);
    EXPECT_NE(run.lastQuarantineReason.find("42"),
              std::string::npos)
        << run.lastQuarantineReason;
    // The poisoned cell cost itself, nothing else.
    EXPECT_EQ(run.payloads.count(1), 0u);
    EXPECT_EQ(run.payloads.size(), 3u);
}

TEST(ServicePool, FrozenWorkerDiesByHeartbeatTimeout)
{
    service::PoolConfig config;
    config.workers = 1;
    config.heartbeatSeconds = 0.05;
    config.heartbeatTimeoutSeconds = 1.5;
    config.restart.backoffSeconds = 0.01;
    const auto run = drive(config, 2, []() -> service::CellFn {
        return [](service::WorkerContext &, std::size_t cell,
                  std::size_t dispatchAttempt) {
            // SIGSTOP freezes the whole process including its
            // heartbeat thread -- exactly the hang class heartbeats
            // exist to catch. The retry dispatch completes normally.
            if (cell == 0 && dispatchAttempt == 0)
                ::raise(SIGSTOP);
            return cellPayload(cell);
        };
    });
    EXPECT_EQ(run.stats.completed, 2u);
    EXPECT_GE(run.stats.deaths, 1u);
    EXPECT_EQ(run.stats.quarantined, 0u);
    EXPECT_EQ(run.payloads.at(0), cellPayload(0));
}

TEST(ServicePool, SlowCellDiesByDeadline)
{
    service::PoolConfig config;
    config.workers = 1;
    config.cellDeadlineSeconds = 1.0;
    config.restart.backoffSeconds = 0.01;
    const auto run = drive(config, 2, []() -> service::CellFn {
        return [](service::WorkerContext &, std::size_t cell,
                  std::size_t dispatchAttempt) {
            // Heartbeats keep flowing (the heartbeat thread is
            // alive), so only the per-cell deadline can catch this.
            if (cell == 1 && dispatchAttempt == 0)
                std::this_thread::sleep_for(
                    std::chrono::seconds(30));
            return cellPayload(cell);
        };
    });
    EXPECT_EQ(run.stats.completed, 2u);
    EXPECT_GE(run.stats.deaths, 1u);
    EXPECT_EQ(run.stats.quarantined, 0u);
    EXPECT_EQ(run.payloads.at(1), cellPayload(1));
}

// ---------------------------------------------------------------
// Campaign-level integration: die faults route through workers.

TEST(ServiceCampaignProcs, DieFaultRecoversByteIdentical)
{
    core::CampaignConfig base;
    base.events = {EventKind::ADD, EventKind::LDM, EventKind::MUL};
    base.repetitions = 2;
    base.isolate = core::IsolateMode::Procs;
    base.workers = 1;
    const auto clean = core::runCampaign(base);

    auto faulted = base;
    faulted.workers = 2;
    faulted.faultPlan = "die@4";
    faulted.retry.backoffSeconds = 0.01;
    const auto recovered = core::runCampaign(faulted);

    std::ostringstream a, b;
    core::printMatrixFixture(a, clean.matrix);
    core::printMatrixFixture(b, recovered.matrix);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_EQ(recovered.degradedCells(), 0u);
    for (const auto &h : recovered.health)
        EXPECT_EQ(h.state, pipeline::CellState::Measured);
}

TEST(ServiceCampaignProcs, AlwaysDyingCellIsQuarantinedDegraded)
{
    core::CampaignConfig cfg;
    cfg.events = {EventKind::ADD, EventKind::LDM, EventKind::MUL};
    cfg.repetitions = 2;
    cfg.isolate = core::IsolateMode::Procs;
    cfg.workers = 2;
    cfg.faultPlan = "die@4:always";
    cfg.retry.maxAttempts = 2;
    cfg.retry.backoffSeconds = 0.01;
    const auto res = core::runCampaign(cfg);

    EXPECT_EQ(res.degradedCells(), 1u);
    ASSERT_EQ(res.health.size(), 9u);
    EXPECT_EQ(res.health[4].state, pipeline::CellState::Degraded);
    EXPECT_NE(res.health[4].lastError.find("worker lost"),
              std::string::npos)
        << res.health[4].lastError;
    // Quarantine cost one cell: every other pair measured clean.
    for (std::size_t p = 0; p < res.health.size(); ++p) {
        if (p == 4)
            continue;
        EXPECT_EQ(res.health[p].state, pipeline::CellState::Measured)
            << "pair " << p;
    }
}

// ---------------------------------------------------------------
// The headline invariant: process isolation perturbs nothing. The
// full campaign under forked workers reproduces the golden fixture
// byte for byte, at one worker and under parallel sharding.

class ServiceGoldenCampaign : public ::testing::Test
{
  protected:
    static std::string
    golden()
    {
        std::ifstream in(SAVAT_SOURCE_DIR
                         "/tests/data/golden_em_core2duo.fixture",
                         std::ios::binary);
        EXPECT_TRUE(in.good());
        std::ostringstream oss;
        oss << in.rdbuf();
        return oss.str();
    }

    static void
    procsRunMatchesGolden(std::size_t workers)
    {
        core::CampaignConfig cfg;
        cfg.repetitions = 2;
        cfg.isolate = core::IsolateMode::Procs;
        cfg.workers = workers;
        const auto res = core::runCampaign(cfg);

        std::ostringstream oss;
        core::printMatrixFixture(oss, res.matrix);
        EXPECT_EQ(oss.str(), golden());
        EXPECT_EQ(res.degradedCells(), 0u);
    }
};

TEST_F(ServiceGoldenCampaign, Workers1)
{
    procsRunMatchesGolden(1);
}

TEST_F(ServiceGoldenCampaign, Workers4)
{
    procsRunMatchesGolden(4);
}

} // namespace
} // namespace savat
