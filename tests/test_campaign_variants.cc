/**
 * @file
 * Campaign-level tests across configuration variants: the other two
 * machines, the Figure-4 equal-count policy, the power side channel,
 * other distances and alternation frequencies — the combinations a
 * downstream user will actually run.
 */

#include <gtest/gtest.h>

#include "core/campaign.hh"
#include "core/reference.hh"

namespace savat::core {
namespace {

using kernels::EventKind;

CampaignConfig
base(const std::string &machine)
{
    CampaignConfig cfg;
    cfg.machineId = machine;
    cfg.events = {EventKind::ADD, EventKind::LDL2, EventKind::LDM,
                  EventKind::DIV};
    cfg.repetitions = 4;
    cfg.seed = 2024;
    return cfg;
}

double
cell(const CampaignResult &r, EventKind a, EventKind b)
{
    return r.matrix.mean(r.matrix.indexOf(a), r.matrix.indexOf(b));
}

class MachineCampaign : public ::testing::TestWithParam<const char *>
{
};

TEST_P(MachineCampaign, CoreOrderingsHoldOnEveryMachine)
{
    const auto res = runCampaign(base(GetParam()));
    // Off-chip and L2 accesses beat the floor everywhere.
    EXPECT_GT(cell(res, EventKind::ADD, EventKind::LDM),
              3.0 * cell(res, EventKind::ADD, EventKind::ADD));
    EXPECT_GT(cell(res, EventKind::ADD, EventKind::LDL2),
              2.0 * cell(res, EventKind::ADD, EventKind::ADD));
    // DIV is above the floor on every machine.
    EXPECT_GT(cell(res, EventKind::ADD, EventKind::DIV),
              1.2 * cell(res, EventKind::ADD, EventKind::ADD));
    // Diagonals stay below their rows' off-chip cells.
    EXPECT_LT(cell(res, EventKind::LDL2, EventKind::LDL2),
              cell(res, EventKind::LDL2, EventKind::LDM));
}

TEST_P(MachineCampaign, RepeatabilityIsPaperLike)
{
    const auto res = runCampaign(base(GetParam()));
    EXPECT_LT(res.matrix.meanCoefficientOfVariation(), 0.2);
}

INSTANTIATE_TEST_SUITE_P(Machines, MachineCampaign,
                         ::testing::Values("core2duo", "pentium3m",
                                           "turionx2"));

TEST(MachineDifferences, DividerGenerations)
{
    // Section V: on the Pentium 3 M the ADD/DIV SAVAT is an order
    // of magnitude above ADD/MUL; on the Turion it rivals off-chip
    // accesses; the Core 2's divider was tamed.
    auto cfg3 = base("pentium3m");
    cfg3.events.push_back(EventKind::MUL);
    const auto p3m = runCampaign(cfg3);
    EXPECT_GT(cell(p3m, EventKind::ADD, EventKind::DIV),
              5.0 * cell(p3m, EventKind::ADD, EventKind::MUL));

    const auto turion = runCampaign(base("turionx2"));
    EXPECT_GT(cell(turion, EventKind::ADD, EventKind::DIV),
              0.7 * cell(turion, EventKind::ADD, EventKind::LDM));

    const auto core2 = runCampaign(base("core2duo"));
    EXPECT_LT(cell(core2, EventKind::ADD, EventKind::DIV),
              0.5 * cell(core2, EventKind::ADD, EventKind::LDM));
}

TEST(CampaignVariants, EqualCountsPolicy)
{
    auto cfg = base("core2duo");
    cfg.meter.pairing = kernels::PairingMode::EqualCounts;
    const auto res = runCampaign(cfg);
    // Orderings survive the Figure-4 verbatim policy.
    EXPECT_GT(cell(res, EventKind::ADD, EventKind::LDM),
              2.0 * cell(res, EventKind::ADD, EventKind::ADD));
    const auto &sim = res.simulation(
        res.matrix.indexOf(EventKind::ADD),
        res.matrix.indexOf(EventKind::LDM));
    EXPECT_EQ(sim.counts.countA, sim.counts.countB);
}

TEST(CampaignVariants, PowerSideChannelCampaign)
{
    auto cfg = base("core2duo");
    cfg.meter.channel = SideChannel::Power;
    const auto res = runCampaign(cfg);
    // The rail hands over more raw energy than the 10 cm antenna.
    auto em_cfg = base("core2duo");
    const auto em = runCampaign(em_cfg);
    EXPECT_GT(cell(res, EventKind::ADD, EventKind::LDM),
              cell(em, EventKind::ADD, EventKind::LDM));
    // And the structure is still informative.
    EXPECT_GT(cell(res, EventKind::ADD, EventKind::LDM),
              2.0 * cell(res, EventKind::ADD, EventKind::ADD));
}

TEST(CampaignVariants, OtherAlternationFrequency)
{
    auto cfg = base("core2duo");
    cfg.meter.alternation = Frequency::khz(40.0);
    const auto res = runCampaign(cfg);
    const auto &sim = res.simulation(
        res.matrix.indexOf(EventKind::ADD),
        res.matrix.indexOf(EventKind::LDM));
    EXPECT_NEAR(sim.actualFrequency.inKhz(), 40.0, 0.2);
    // Per-pair energy is frequency-invariant (Section III).
    const auto ref = runCampaign(base("core2duo"));
    EXPECT_NEAR(cell(res, EventKind::ADD, EventKind::LDM),
                cell(ref, EventKind::ADD, EventKind::LDM),
                0.4 * cell(ref, EventKind::ADD, EventKind::LDM));
}

TEST(CampaignVariants, IntermediateDistanceInterpolates)
{
    // 25 cm sits between the calibrated 10 cm and 50 cm anchors.
    auto near_cfg = base("core2duo");
    auto mid_cfg = base("core2duo");
    mid_cfg.meter.distance = Distance::centimeters(25.0);
    auto far_cfg = base("core2duo");
    far_cfg.meter.distance = Distance::centimeters(50.0);
    const double near_v =
        cell(runCampaign(near_cfg), EventKind::ADD, EventKind::LDM);
    const double mid_v =
        cell(runCampaign(mid_cfg), EventKind::ADD, EventKind::LDM);
    const double far_v =
        cell(runCampaign(far_cfg), EventKind::ADD, EventKind::LDM);
    EXPECT_GT(near_v, mid_v);
    EXPECT_GT(mid_v, far_v);
}

TEST(CampaignVariants, ParallelMatrixIsBitIdenticalToSerial)
{
    // The tentpole guarantee: the jobs knob changes wall-clock only.
    auto serial_cfg = base("core2duo");
    serial_cfg.jobs = 1;
    auto parallel_cfg = base("core2duo");
    parallel_cfg.jobs = 4;
    const auto serial = runCampaign(serial_cfg);
    const auto parallel = runCampaign(parallel_cfg);

    ASSERT_EQ(serial.matrix.size(), parallel.matrix.size());
    for (std::size_t a = 0; a < serial.matrix.size(); ++a) {
        for (std::size_t b = 0; b < serial.matrix.size(); ++b) {
            const auto &sc = serial.matrix.samples(a, b);
            const auto &pc = parallel.matrix.samples(a, b);
            ASSERT_EQ(sc.size(), pc.size());
            for (std::size_t r = 0; r < sc.size(); ++r) {
                // Bit-exact, not approximately equal.
                EXPECT_EQ(sc[r], pc[r])
                    << "cell " << a << "," << b << " rep " << r;
            }
            const auto &ss = serial.simulation(a, b);
            const auto &ps = parallel.simulation(a, b);
            EXPECT_EQ(ss.counts.countA, ps.counts.countA);
            EXPECT_EQ(ss.counts.countB, ps.counts.countB);
            EXPECT_EQ(ss.actualFrequency.inHz(),
                      ps.actualFrequency.inHz());
        }
    }
}

TEST(CampaignVariants, OversubscribedJobsUseRepetitionParallelism)
{
    // Two pairs, eight workers: the leftover budget parallelizes
    // each cell's repetition loop. Values must still match jobs=1.
    auto cfg = base("core2duo");
    cfg.repetitions = 6;
    const std::vector<std::pair<EventKind, EventKind>> pairs = {
        {EventKind::ADD, EventKind::LDM},
        {EventKind::ADD, EventKind::DIV},
    };
    auto serial_cfg = cfg;
    serial_cfg.jobs = 1;
    cfg.jobs = 8;
    const auto serial = runCampaignPairs(serial_cfg, pairs);
    const auto wide = runCampaignPairs(cfg, pairs);
    for (const auto &[a, b] : pairs) {
        const auto ia = serial.matrix.indexOf(a);
        const auto ib = serial.matrix.indexOf(b);
        const auto &sc = serial.matrix.samples(ia, ib);
        const auto &pc = wide.matrix.samples(ia, ib);
        ASSERT_EQ(sc.size(), pc.size());
        for (std::size_t r = 0; r < sc.size(); ++r)
            EXPECT_EQ(sc[r], pc[r]);
    }
}

TEST(CampaignVariants, ProgressCountsMonotonically)
{
    auto cfg = base("core2duo");
    cfg.jobs = 4;
    std::vector<std::size_t> seen;
    runCampaign(cfg, [&](std::size_t done, std::size_t total) {
        EXPECT_EQ(total, cfg.events.size() * cfg.events.size());
        seen.push_back(done);
    });
    ASSERT_EQ(seen.size(), cfg.events.size() * cfg.events.size());
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], i + 1);
}

TEST(CampaignVariants, PairsOutsideMatrixAreSkippedNotFatal)
{
    auto cfg = base("core2duo");
    cfg.events = {EventKind::ADD, EventKind::LDM};
    const std::vector<std::pair<EventKind, EventKind>> pairs = {
        {EventKind::ADD, EventKind::LDM},
        {EventKind::ADD, EventKind::LDL2}, // LDL2 not in the matrix
    };
    const auto res = runCampaignPairs(cfg, pairs);
    const auto ia = res.matrix.indexOf(EventKind::ADD);
    const auto ib = res.matrix.indexOf(EventKind::LDM);
    EXPECT_EQ(res.matrix.samples(ia, ib).size(), cfg.repetitions);
    // The skipped pair left no samples anywhere else.
    EXPECT_TRUE(res.matrix.samples(ia, ia).empty());
}

TEST(CampaignVariants, TracesKeptOnlyOnRequest)
{
    auto cfg = base("core2duo");
    cfg.events = {EventKind::ADD, EventKind::LDM};
    cfg.repetitions = 2;
    const auto lean = runCampaign(cfg);
    EXPECT_TRUE(lean.traces.empty());

    cfg.keepTraces = true;
    const auto kept = runCampaign(cfg);
    ASSERT_EQ(kept.traces.size(), 4u); // 2x2 pairs, request order
    for (const auto &reps : kept.traces) {
        ASSERT_EQ(reps.size(), cfg.repetitions);
        for (const auto &trace : reps)
            EXPECT_FALSE(trace.psd.empty());
    }
}

TEST(CampaignVariants, ScalarTimingModelStillMeasures)
{
    // The substrate ablation path: a scalar core changes values but
    // the pipeline still produces a valid measurement.
    auto machine = uarch::core2duo();
    machine.timing = uarch::TimingModel::Scalar;
    em::ReceivedSignalSynthesizer synth(
        em::emissionProfileFor("core2duo"), em::DistanceModel(),
        em::LoopAntenna(), em::EnvironmentConfig());
    SavatMeter meter(std::move(machine), std::move(synth), {});
    const auto &sim = meter.simulatePair(EventKind::ADD,
                                         EventKind::LDM);
    EXPECT_NEAR(sim.actualFrequency.inKhz(), 80.0, 0.4);
    Rng rng(5);
    EXPECT_GT(meter.measure(sim, rng).savat.inZepto(), 0.0);
}

} // namespace
} // namespace savat::core
