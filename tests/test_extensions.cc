/**
 * @file
 * Tests for the paper's future-work extensions implemented in
 * libsavat: instruction-sequence SAVAT (Section III "combination"),
 * branch-predictor events (Section VII), and the power side channel
 * (Section VII).
 */

#include <gtest/gtest.h>

#include "core/meter.hh"
#include "isa/assembler.hh"
#include "kernels/sequence.hh"
#include "support/stats.hh"
#include "uarch/cpu.hh"

namespace savat {
namespace {

using kernels::EventKind;
using kernels::EventSequence;

// ------------------------------------------------------------ sequences

TEST(Sequences, NameFormatting)
{
    EXPECT_EQ(kernels::sequenceName({EventKind::ADD}), "ADD");
    EXPECT_EQ(kernels::sequenceName(
                  {EventKind::ADD, EventKind::LDM, EventKind::DIV}),
              "ADD+LDM+DIV");
    EXPECT_EQ(kernels::sequenceName({}), "EMPTY");
}

TEST(Sequences, FootprintIsMaxOfMembers)
{
    const auto m = uarch::core2duo();
    EXPECT_EQ(kernels::sequenceFootprintBytes(
                  {EventKind::ADD, EventKind::LDM}, m),
              kernels::footprintBytes(EventKind::LDM, m));
    EXPECT_EQ(kernels::sequenceFootprintBytes({EventKind::ADD}, m),
              kernels::footprintBytes(EventKind::ADD, m));
}

TEST(Sequences, KernelAssembles)
{
    const auto m = uarch::core2duo();
    const auto k = kernels::buildSequenceKernel(
        m, {EventKind::ADD, EventKind::MUL},
        {EventKind::LDL2, EventKind::DIV}, 50, 40);
    EXPECT_FALSE(k.program.empty());
    const auto re = isa::assemble(k.source);
    EXPECT_TRUE(re.ok) << re.error;
}

TEST(Sequences, IterationTimeIsSuperlinear)
{
    // Two DIVs cost about twice one DIV; two ADDs cost about one
    // extra cycle.
    const auto m = uarch::core2duo();
    const double one_div =
        kernels::measureSequenceIterationCycles(m, {EventKind::DIV});
    const double two_div = kernels::measureSequenceIterationCycles(
        m, {EventKind::DIV, EventKind::DIV});
    EXPECT_NEAR(two_div - one_div, m.lat.idiv, 2.0);

    const double one_add =
        kernels::measureSequenceIterationCycles(m, {EventKind::ADD});
    const double two_add = kernels::measureSequenceIterationCycles(
        m, {EventKind::ADD, EventKind::ADD});
    EXPECT_NEAR(two_add - one_add, 1.0, 0.5);
}

TEST(Sequences, SingleEventSequenceMatchesSingleKernel)
{
    // A one-element sequence must behave like the plain kernel.
    const auto m = uarch::core2duo();
    const double seq_cpi = kernels::measureSequenceIterationCycles(
        m, {EventKind::LDL2});
    const double single_cpi =
        kernels::measureIterationCycles(m, EventKind::LDL2);
    EXPECT_NEAR(seq_cpi, single_cpi, 0.5);
}

/** All two-event combinations must run without faulting. */
class SequencePairs
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(SequencePairs, TwoEventSequencesRunSafely)
{
    const auto e1 = static_cast<EventKind>(std::get<0>(GetParam()));
    const auto e2 = static_cast<EventKind>(std::get<1>(GetParam()));
    const auto m = uarch::core2duo();
    const double cpi =
        kernels::measureSequenceIterationCycles(m, {e1, e2});
    EXPECT_GT(cpi, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SequencePairs,
    ::testing::Combine(::testing::Range(0, 11),
                       ::testing::Range(0, 11)));

TEST(Sequences, MeterMeasuresSequencePair)
{
    auto meter = core::SavatMeter::forMachine("core2duo");
    const auto &sim = meter.simulateSequencePair(
        {EventKind::ADD, EventKind::ADD},
        {EventKind::LDL2, EventKind::LDL2});
    EXPECT_NEAR(sim.actualFrequency.inKhz(), 80.0, 0.4);
    Rng rng(5);
    const auto meas = meter.measure(sim, rng);
    EXPECT_GT(meas.savat.inZepto(), 0.0);
}

TEST(Sequences, SequenceCacheWorks)
{
    auto meter = core::SavatMeter::forMachine("core2duo");
    const auto &s1 = meter.simulateSequencePair({EventKind::ADD},
                                                {EventKind::DIV});
    const auto &s2 = meter.simulateSequencePair({EventKind::ADD},
                                                {EventKind::DIV});
    EXPECT_EQ(&s1, &s2);
}

TEST(Sequences, HeterogeneousSequenceSuperposesChannels)
{
    // A sequence combining an off-chip load and a divide must light
    // up BOTH emitter channels -- the paper's "combination" signal
    // is the superposition of the members' signals.
    auto meter = core::SavatMeter::forMachine("core2duo");
    const auto &sim = meter.simulateSequencePair(
        {EventKind::NOI}, {EventKind::LDM, EventKind::DIV});
    const auto amp = [&](em::Channel c) {
        return std::abs(sim.amplitude[static_cast<std::size_t>(c)]);
    };
    EXPECT_GT(amp(em::Channel::Bus), 0.05);
    EXPECT_GT(amp(em::Channel::Div), 0.05);
}

TEST(Sequences, RepeatedDivRaisesDividerDuty)
{
    // Two back-to-back divides keep the divider busy a larger
    // fraction of the iteration than one.
    auto meter = core::SavatMeter::forMachine("core2duo");
    const auto &one = meter.simulateSequencePair({EventKind::NOI},
                                                 {EventKind::DIV});
    const auto &two = meter.simulateSequencePair(
        {EventKind::NOI}, {EventKind::DIV, EventKind::DIV});
    const auto div_idx = static_cast<std::size_t>(em::Channel::Div);
    EXPECT_GT(two.meanB[div_idx], one.meanB[div_idx]);
}

TEST(Sequences, RepeatedLoadHitsInL1)
{
    // Within one slot both loads use the same pointer: the second
    // access hits L1, so a doubled LDL2 sequence does NOT double the
    // L2 traffic. This is a documented semantic of sequence slots.
    auto meter = core::SavatMeter::forMachine("core2duo");
    const auto &sim = meter.simulateSequencePair(
        {EventKind::NOI}, {EventKind::LDL2, EventKind::LDL2});
    EXPECT_GT(sim.l1.readHits, 100u);
    EXPECT_NEAR(static_cast<double>(sim.l1.readHits),
                static_cast<double>(sim.l1.readMisses), 64.0);
}

// -------------------------------------------------------------- branches

TEST(BranchPredictor, LoopBranchesPredictWell)
{
    uarch::NullActivitySink sink;
    uarch::SimpleCpu cpu(uarch::core2duo(), sink);
    const auto prog = isa::assembleOrDie(
        "mov ecx,1000\nloop: dec ecx\njne loop\nhlt\n", "loop");
    cpu.run(prog);
    EXPECT_EQ(cpu.branchStats().conditional, 1000u);
    // Only the warm-up and the final fall-through miss.
    EXPECT_LE(cpu.branchStats().mispredicts, 3u);
}

TEST(BranchPredictor, AlternatingPatternDefeatsBimodal)
{
    uarch::NullActivitySink sink;
    uarch::SimpleCpu cpu(uarch::core2duo(), sink);
    // xor 1 toggles the flag-driving value every iteration.
    const auto prog = isa::assembleOrDie(
        "mov ecx,1000\nmov ebx,0\n"
        "loop: xor ebx,1\n"
        "test ebx,1\n"
        "je skip\n"
        "nop\n"
        "skip: dec ecx\n"
        "jne loop\nhlt\n",
        "alt");
    cpu.run(prog);
    // The je alternates taken/not-taken: high misprediction rate.
    EXPECT_GT(cpu.branchStats().mispredictRate(), 0.3);
}

TEST(BranchPredictor, MispredictionCostsCycles)
{
    uarch::NullActivitySink sink;
    const auto m = uarch::core2duo();
    const double brh =
        kernels::measureIterationCycles(m, EventKind::BRH);
    const double brm =
        kernels::measureIterationCycles(m, EventKind::BRM);
    // BRM's alternating condition mispredicts about half the time
    // on a bimodal predictor; each one costs lat.branchMispredict.
    EXPECT_GT(brm, brh + 0.35 * m.lat.branchMispredict);
}

TEST(BranchPredictor, MispredictEventsEmitted)
{
    uarch::ActivityTrace trace;
    uarch::SimpleCpu cpu(uarch::core2duo(), trace);
    const auto k = kernels::buildAlternationKernel(
        uarch::core2duo(), EventKind::BRH, EventKind::BRM, 100, 100);
    int periods = 0;
    cpu.setMarkCallback([&](std::int64_t id, std::uint64_t,
                            std::uint64_t) {
        if (id == kernels::Marks::kPeriodStart)
            ++periods;
        return periods < 4;
    });
    cpu.run(k.program);
    const auto counts = trace.eventCounts();
    EXPECT_GT(counts[static_cast<std::size_t>(
                  uarch::MicroEvent::BpMispredict)],
              100u);
}

TEST(BranchPredictor, ScalarModelHasNoPredictor)
{
    auto cfg = uarch::core2duo();
    cfg.timing = uarch::TimingModel::Scalar;
    uarch::NullActivitySink sink;
    uarch::SimpleCpu cpu(cfg, sink);
    const auto prog = isa::assembleOrDie(
        "mov ecx,100\nloop: dec ecx\njne loop\nhlt\n", "loop");
    cpu.run(prog);
    EXPECT_EQ(cpu.branchStats().conditional, 0u);
}

TEST(BranchEvents, ExtendedCatalogue)
{
    EXPECT_EQ(kernels::allEvents().size(), 11u);
    EXPECT_EQ(kernels::extendedEvents().size(), 15u);
    EXPECT_TRUE(kernels::isBranchEvent(EventKind::BRH));
    EXPECT_TRUE(kernels::isBranchEvent(EventKind::BRM));
    EXPECT_FALSE(kernels::isBranchEvent(EventKind::DIV));
    EXPECT_EQ(kernels::eventByName("BRM"), EventKind::BRM);
    EXPECT_TRUE(kernels::isTransientEvent(EventKind::TLD));
    EXPECT_TRUE(kernels::isTransientEvent(EventKind::TLF));
    EXPECT_FALSE(kernels::isTransientEvent(EventKind::BRM));
    EXPECT_EQ(kernels::eventByName("TLD"), EventKind::TLD);
}

TEST(BranchEvents, SlotsShareTheInstructionMix)
{
    // BRH and BRM slots must differ only in the tested bit.
    const auto brh = kernels::eventAsm(EventKind::BRH, "esi", "x");
    const auto brm = kernels::eventAsm(EventKind::BRM, "esi", "x");
    EXPECT_NE(brh.find("test ebx,0"), std::string::npos);
    EXPECT_NE(brm.find("test ebx,64"), std::string::npos);
    EXPECT_EQ(std::count(brh.begin(), brh.end(), '\n'),
              std::count(brm.begin(), brm.end(), '\n'));
}

TEST(BranchEvents, MeterDistinguishesBrhFromBrm)
{
    auto meter = core::SavatMeter::forMachine("core2duo");
    auto mean = [&meter](EventKind a, EventKind b) {
        const auto &sim = meter.simulatePair(a, b);
        Rng rng(13);
        RunningStats s;
        for (int i = 0; i < 8; ++i) {
            auto rep = rng.fork();
            s.add(meter.measure(sim, rep).savat.inZepto());
        }
        return s.mean();
    };
    const double pair = mean(EventKind::BRH, EventKind::BRM);
    const double floor = mean(EventKind::BRH, EventKind::BRH);
    EXPECT_GT(pair, 1.3 * floor);
}

// ----------------------------------------------------------- power rail

TEST(PowerChannel, CurrentWeightsPopulated)
{
    const auto p = em::emissionProfileFor("core2duo");
    for (std::size_t c = 0; c < em::kNumChannels; ++c)
        EXPECT_GT(p.currentWeight[c], 0.0);
}

TEST(PowerChannel, CoherentSummation)
{
    const auto profile = em::emissionProfileFor("core2duo");
    em::ReceivedSignalSynthesizer synth(profile, em::DistanceModel(),
                                        em::LoopAntenna(),
                                        em::EnvironmentConfig());
    em::ChannelAmplitudes amps{};
    amps[static_cast<std::size_t>(em::Channel::Bus)] = 1.0;
    amps[static_cast<std::size_t>(em::Channel::L2)] = 1.0;
    const em::EnvironmentDraw env{0.0, 1.0};
    const double both = synth.powerRailTonePower(amps, env);
    em::ChannelAmplitudes bus_only{};
    bus_only[static_cast<std::size_t>(em::Channel::Bus)] = 1.0;
    const double bus = synth.powerRailTonePower(bus_only, env);
    // Same-sign coherent currents add in amplitude: more than the
    // power sum.
    EXPECT_GT(both, 2.0 * bus * 0.9);
}

TEST(PowerChannel, MeterMeasuresPowerSideChannel)
{
    core::MeterConfig cfg;
    cfg.channel = core::SideChannel::Power;
    auto meter = core::SavatMeter::forMachine("core2duo", cfg);
    auto mean = [&meter](EventKind a, EventKind b) {
        const auto &sim = meter.simulatePair(a, b);
        Rng rng(21);
        RunningStats s;
        for (int i = 0; i < 6; ++i) {
            auto rep = rng.fork();
            s.add(meter.measure(sim, rep).savat.inZepto());
        }
        return s.mean();
    };
    const double off = mean(EventKind::ADD, EventKind::LDM);
    const double same = mean(EventKind::ADD, EventKind::SUB);
    EXPECT_GT(off, 2.0 * same);
}

TEST(PowerChannel, PowerBeatsEmInRawSignal)
{
    // A direct supply tap hands the attacker more energy than a
    // 10 cm antenna (which is why the paper calls power attacks
    // easy to mount but easy to detect).
    core::MeterConfig power_cfg;
    power_cfg.channel = core::SideChannel::Power;
    auto power = core::SavatMeter::forMachine("core2duo", power_cfg);
    auto em_meter = core::SavatMeter::forMachine("core2duo");

    auto mean = [](core::SavatMeter &m, EventKind a, EventKind b) {
        const auto &sim = m.simulatePair(a, b);
        Rng rng(22);
        RunningStats s;
        for (int i = 0; i < 6; ++i) {
            auto rep = rng.fork();
            s.add(m.measure(sim, rep).savat.inZepto());
        }
        return s.mean();
    };
    EXPECT_GT(mean(power, EventKind::ADD, EventKind::LDM),
              mean(em_meter, EventKind::ADD, EventKind::LDM));
}

TEST(PowerChannel, RailSeesCurrentNotFields)
{
    // The rail sums all currents coherently, so a component's draw
    // can be offset by the pipeline idling while it works. Three
    // robust consequences on the Core 2 model:
    //   1. off-chip activity dominates the rail (DRAM/bus current
    //      has no on-chip offset),
    //   2. the divider still shows (long unpipelined burn),
    //   3. L2 *hits* nearly vanish -- their array current is offset
    //      by the stalled core, even though their EM field is one of
    //      the loudest signals at the antenna.
    core::MeterConfig power_cfg;
    power_cfg.channel = core::SideChannel::Power;
    auto power = core::SavatMeter::forMachine("core2duo", power_cfg);
    auto em_meter = core::SavatMeter::forMachine("core2duo");
    auto mean = [](core::SavatMeter &m, EventKind a, EventKind b) {
        const auto &sim = m.simulatePair(a, b);
        Rng rng(23);
        RunningStats s;
        for (int i = 0; i < 6; ++i) {
            auto rep = rng.fork();
            s.add(m.measure(sim, rep).savat.inZepto());
        }
        return s.mean();
    };
    const double rail_floor =
        mean(power, EventKind::ADD, EventKind::ADD);
    EXPECT_GT(mean(power, EventKind::ADD, EventKind::LDM),
              4.0 * rail_floor);
    EXPECT_GT(mean(power, EventKind::ADD, EventKind::DIV),
              1.5 * rail_floor);
    // L2 hits: near the rail floor, yet far above the EM floor.
    EXPECT_LT(mean(power, EventKind::ADD, EventKind::LDL2),
              1.5 * rail_floor);
    EXPECT_GT(mean(em_meter, EventKind::ADD, EventKind::LDL2),
              4.0 * mean(em_meter, EventKind::ADD, EventKind::ADD));
}

} // namespace
} // namespace savat
