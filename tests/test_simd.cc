/**
 * @file
 * Tests for the runtime-dispatched SIMD kernel layer.
 *
 * Two layers of guarantees:
 *  - kernel level: every dispatch level produces BIT-IDENTICAL
 *    output for every kernel (the fixed-shape reduction-tree
 *    contract of DESIGN.md §5h), and the kernels are numerically
 *    correct against naive references;
 *  - campaign level: the full EM campaign matrix is byte-identical
 *    to the checked-in golden fixture under every available level
 *    (the dispatch-matrix gate).
 */

#include <gtest/gtest.h>

#include "core/campaign.hh"
#include "core/report.hh"
#include "dsp/fft.hh"
#include "dsp/simd.hh"
#include "support/arena.hh"
#include "support/rng.hh"

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

using namespace savat;
using dsp::simd::Level;

namespace {

std::vector<Level>
availableLevels()
{
    std::vector<Level> out;
    for (Level l : {Level::Scalar, Level::Sse2, Level::Avx2})
        if (dsp::simd::supported(l))
            out.push_back(l);
    return out;
}

/** RAII: force a level, restore the default on scope exit. */
class ForcedLevel
{
  public:
    explicit ForcedLevel(Level l) : _saved(dsp::simd::active())
    {
        dsp::simd::forceLevel(l);
    }
    ~ForcedLevel() { dsp::simd::forceLevel(_saved); }

  private:
    Level _saved;
};

std::vector<double>
randomVector(std::size_t n, std::uint64_t seed, double lo = -2.0,
             double hi = 2.0)
{
    Rng rng(seed);
    std::vector<double> v(n);
    for (auto &x : v)
        x = rng.uniform(lo, hi);
    return v;
}

} // namespace

TEST(Simd, ActiveLevelIsSupported)
{
    EXPECT_TRUE(dsp::simd::supported(dsp::simd::active()));
    EXPECT_TRUE(dsp::simd::supported(Level::Scalar));
}

TEST(Simd, NegLogMatchesLibm)
{
    Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
        double u = rng.uniform();
        if (u <= 0.0)
            continue;
        const double got = dsp::simd::negLog(u);
        const double want = -std::log(u);
        EXPECT_NEAR(got, want, 4e-16 * (1.0 + std::abs(want)))
            << "u=" << u;
    }
    // Extremes of the rng.uniform() support.
    EXPECT_NEAR(dsp::simd::negLog(0x1.0p-53), 53.0 * std::log(2.0),
                1e-13);
    EXPECT_NEAR(dsp::simd::negLog(1.0), 0.0, 1e-300);
}

TEST(Simd, SumMatchesReductionTreeShape)
{
    // The contract is the fixed 4-lane strided tree, not naive
    // left-to-right summation: verify against an explicit model.
    for (std::size_t n : {0u, 1u, 3u, 4u, 7u, 33u, 1000u}) {
        const auto x = randomVector(n, 11 + n);
        double lane[4] = {0, 0, 0, 0};
        for (std::size_t i = 0; i < n; ++i)
            lane[i % 4] += x[i];
        const double want = (lane[0] + lane[1]) + (lane[2] + lane[3]);
        EXPECT_EQ(dsp::simd::kernels().sum(x.data(), n), want)
            << "n=" << n;
    }
}

TEST(Simd, KernelsBitExactAcrossLevels)
{
    const auto levels = availableLevels();
    if (levels.size() < 2)
        GTEST_SKIP() << "only one dispatch level available";

    const std::size_t n = 1027; // odd tail on purpose
    const auto x = randomVector(n, 1);
    const auto w = randomVector(n, 2, 0.0, 1.0);
    const auto u = randomVector(n, 3, 1e-12, 1.0);
    std::vector<dsp::Complex> cbuf(n);
    for (std::size_t i = 0; i < n; ++i)
        cbuf[i] = dsp::Complex(x[i], w[i]);
    // A power-of-two complex array for the FFT stage kernel.
    const std::size_t fn = 256;
    std::vector<dsp::Complex> fdata(fn), twiddle(fn / 2);
    for (std::size_t i = 0; i < fn; ++i)
        fdata[i] = dsp::Complex(x[i], w[i]);
    for (std::size_t k = 0; k < fn / 2; ++k) {
        const double ang =
            -2.0 * M_PI * static_cast<double>(k) / fn;
        twiddle[k] = dsp::Complex(std::cos(ang), std::sin(ang));
    }

    struct Snapshot {
        double sum, sumSq;
        std::vector<double> axpy, nlog, psd;
        std::vector<dsp::Complex> winc, fft;
        dsp::Complex dft;
    };
    auto runAll = [&](Level l) {
        ForcedLevel forced(l);
        const auto &k = dsp::simd::kernels();
        Snapshot s;
        s.sum = k.sum(x.data(), n);
        s.sumSq = k.sumSquares(x.data(), n);
        s.axpy = w;
        k.axpy(1.7, x.data(), s.axpy.data(), n);
        s.nlog = w;
        k.negLogAccum(0.3, u.data(), s.nlog.data(), n);
        s.winc.resize(n);
        k.windowComplex(x.data(), w.data(), s.winc.data(), n);
        s.psd = w;
        k.accumPsd(cbuf.data(), 0.25, s.psd.data(), n);
        s.fft = fdata;
        for (std::size_t len = 2; len <= fn; len <<= 1)
            k.fftStage(s.fft.data(), twiddle.data(), fn, len);
        s.dft = k.toneDft(x.data(), n, dsp::Complex(0.9999, 0.0141));
        return s;
    };

    const auto ref = runAll(levels[0]);
    for (std::size_t li = 1; li < levels.size(); ++li) {
        const auto got = runAll(levels[li]);
        const char *name = dsp::simd::levelName(levels[li]);
        EXPECT_EQ(std::memcmp(&ref.sum, &got.sum, sizeof(double)), 0)
            << name;
        EXPECT_EQ(
            std::memcmp(&ref.sumSq, &got.sumSq, sizeof(double)), 0)
            << name;
        EXPECT_EQ(std::memcmp(ref.axpy.data(), got.axpy.data(),
                              n * sizeof(double)),
                  0)
            << name << " axpy";
        EXPECT_EQ(std::memcmp(ref.nlog.data(), got.nlog.data(),
                              n * sizeof(double)),
                  0)
            << name << " negLogAccum";
        EXPECT_EQ(std::memcmp(ref.winc.data(), got.winc.data(),
                              n * sizeof(dsp::Complex)),
                  0)
            << name << " windowComplex";
        EXPECT_EQ(std::memcmp(ref.psd.data(), got.psd.data(),
                              n * sizeof(double)),
                  0)
            << name << " accumPsd";
        EXPECT_EQ(std::memcmp(ref.fft.data(), got.fft.data(),
                              fn * sizeof(dsp::Complex)),
                  0)
            << name << " fftStage";
        EXPECT_EQ(std::memcmp(&ref.dft, &got.dft,
                              sizeof(dsp::Complex)),
                  0)
            << name << " toneDft";
    }
}

TEST(Simd, ToneDftMatchesNaiveDft)
{
    const std::size_t n = 9000;
    const auto x = randomVector(n, 5);
    const double freq = 0.0123;
    const dsp::Complex step(std::cos(-2.0 * M_PI * freq),
                            std::sin(-2.0 * M_PI * freq));
    const auto got = dsp::simd::kernels().toneDft(x.data(), n, step);
    dsp::Complex want(0.0, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double ang =
            -2.0 * M_PI * freq * static_cast<double>(i);
        want += x[i] * dsp::Complex(std::cos(ang), std::sin(ang));
    }
    EXPECT_NEAR(std::abs(got - want), 0.0, 1e-6 * n);
}

TEST(Arena, ResetReusesHighWaterPage)
{
    support::Arena arena(1024);
    // Outgrow the first page so reset() has to coalesce.
    for (int rep = 0; rep < 3; ++rep) {
        double *a = arena.alloc<double>(1000);
        double *b = arena.alloc<double>(5000);
        a[0] = 1.0;
        b[4999] = 2.0;
        EXPECT_GE(arena.used(), 6000 * sizeof(double));
        arena.reset();
        EXPECT_EQ(arena.used(), 0u);
    }
    const std::size_t cap = arena.capacity();
    // Steady state: same demand fits the coalesced page, capacity
    // must not grow again.
    for (int rep = 0; rep < 5; ++rep) {
        arena.alloc<double>(1000);
        arena.alloc<double>(5000);
        arena.reset();
    }
    EXPECT_EQ(arena.capacity(), cap);
}

TEST(Arena, AlignmentRespected)
{
    support::Arena arena;
    arena.alloc<char>(3);
    auto *d = arena.alloc<double>(4);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double),
              0u);
    auto *c = arena.allocate(1, 64);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
}

/**
 * The dispatch-matrix gate: the full EM campaign matrix must be
 * byte-identical to the checked-in golden fixture under every
 * dispatch level this machine supports (scripts/check.sh re-runs
 * the same matrix through savat_cli across SAVAT_SIMD values).
 */
TEST(SimdDispatchMatrix, GoldenFixtureByteIdentityPerLevel)
{
    std::ifstream in(SAVAT_SOURCE_DIR
                     "/tests/data/golden_em_core2duo.fixture");
    ASSERT_TRUE(in) << "golden fixture missing";
    std::ostringstream want;
    want << in.rdbuf();

    for (Level l : availableLevels()) {
        ForcedLevel forced(l);
        core::CampaignConfig cfg;
        cfg.repetitions = 2;
        cfg.jobs = 1;
        const auto res = core::runCampaign(cfg);
        std::ostringstream got;
        core::printMatrixFixture(got, res.matrix);
        EXPECT_EQ(got.str(), want.str())
            << "matrix diverges under SAVAT_SIMD="
            << dsp::simd::levelName(l);
    }
}
