/**
 * @file
 * Tests for the detection-theory module and the profile-file parser.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/assessment.hh"
#include "core/detection.hh"

namespace savat::core {
namespace {

using kernels::EventKind;

// ------------------------------------------------------------ detection

TEST(Detection, NormalCdfKnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.0), 0.841345, 1e-5);
    EXPECT_NEAR(normalCdf(-1.96), 0.025, 1e-3);
    EXPECT_NEAR(normalQ(1.6449), 0.05, 1e-4);
}

TEST(Detection, QInverseRoundTrip)
{
    for (double p : {0.4, 0.25, 0.1, 0.05, 0.01, 1e-3, 1e-6}) {
        const double x = normalQInverse(p);
        EXPECT_NEAR(normalQ(x), p, 1e-6 + 1e-3 * p) << "p=" << p;
    }
}

TEST(Detection, DPrimeScalesWithSqrtUses)
{
    const double one = dPrime(2.0, 1.0, 1.0);
    EXPECT_NEAR(one, 2.0, 1e-12);
    EXPECT_NEAR(dPrime(2.0, 1.0, 4.0), 2.0 * one, 1e-12);
    EXPECT_NEAR(dPrime(2.0, 1.0, 100.0), 10.0 * one, 1e-12);
    EXPECT_DOUBLE_EQ(dPrime(0.0, 1.0, 100.0), 0.0);
    EXPECT_DOUBLE_EQ(dPrime(-1.0, 1.0, 100.0), 0.0);
}

TEST(Detection, ErrorProbabilityEndpoints)
{
    EXPECT_NEAR(errorProbability(0.0), 0.5, 1e-12); // coin flip
    EXPECT_LT(errorProbability(6.0), 2e-3);
    EXPECT_GT(errorProbability(1.0), errorProbability(2.0));
}

TEST(Detection, RocAreaEndpoints)
{
    EXPECT_NEAR(rocArea(0.0), 0.5, 1e-12);
    EXPECT_GT(rocArea(3.0), 0.98);
    EXPECT_LT(rocArea(3.0), 1.0 + 1e-12);
}

TEST(Detection, UsesForErrorConsistent)
{
    // Round trip: with that many uses, the error meets the target.
    const double uses = usesForError(1.5, 1.0, 0.01);
    const double d = dPrime(1.5, 1.0, uses);
    EXPECT_NEAR(errorProbability(d), 0.01, 1e-4);
    // Weak signals need quadratically more uses.
    EXPECT_NEAR(usesForError(0.75, 1.0, 0.01), 4.0 * uses, 1e-6);
    EXPECT_TRUE(std::isinf(usesForError(0.0, 1.0, 0.01)));
}

TEST(Detection, PaperScaleSanity)
{
    // An ADD/LDM-scale difference (net ~4 zJ against a ~0.65 zJ
    // floor) is decidable from a handful of uses; an ADD/MUL-scale
    // one (net ~0.05 zJ) needs tens of thousands.
    EXPECT_LT(usesForError(4.0, 0.65, 1e-3), 2.0);
    EXPECT_GT(usesForError(0.05, 0.65, 1e-3), 5000.0);
}

TEST(Detection, AssessmentUsesErrorRate)
{
    AssessmentReport r;
    r.totalPerUseZj = 2048.0; // 1 zJ per bit
    r.floorZj = 0.5;
    const double uses = r.usesForErrorRate(0.01, 2048.0);
    const double d = dPrime(1.0, 0.5, uses);
    EXPECT_NEAR(errorProbability(d), 0.01, 1e-4);
    AssessmentReport silent;
    silent.totalPerUseZj = 0.0;
    silent.floorZj = 0.5;
    EXPECT_TRUE(std::isinf(silent.usesForErrorRate()));
}

// --------------------------------------------------------- profile files

TEST(ProfileParser, ParsesWellFormedFile)
{
    std::istringstream in(
        "# comment\n"
        "program rsa-2048\n"
        "\n"
        "site \"table lookups\" LDL2 LDL1 512\n"
        "site \"conditional multiply\" MUL NOI 4096\n"
        "site \"branch on key bit\" BRM BRH 1\n");
    const auto res = parseProgramProfile(in);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.profile.name, "rsa-2048");
    ASSERT_EQ(res.profile.sites.size(), 3u);
    EXPECT_EQ(res.profile.sites[0].label, "table lookups");
    EXPECT_EQ(res.profile.sites[0].executed, EventKind::LDL2);
    EXPECT_EQ(res.profile.sites[0].alternative, EventKind::LDL1);
    EXPECT_EQ(res.profile.sites[0].instancesPerUse, 512u);
    EXPECT_EQ(res.profile.sites[2].executed, EventKind::BRM);
}

struct BadProfile
{
    const char *text;
    const char *why;
};

class ProfileParserErrors
    : public ::testing::TestWithParam<BadProfile>
{
};

TEST_P(ProfileParserErrors, Rejected)
{
    std::istringstream in(GetParam().text);
    const auto res = parseProgramProfile(in);
    EXPECT_FALSE(res.ok) << GetParam().why;
    EXPECT_FALSE(res.error.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ProfileParserErrors,
    ::testing::Values(
        BadProfile{"site \"x\" ADD NOI 5\n", "missing program line"},
        BadProfile{"program p\n", "no sites"},
        BadProfile{"program\nsite \"x\" ADD NOI 5\n",
                   "program without name"},
        BadProfile{"program p\nsite x ADD NOI 5\n",
                   "unquoted label"},
        BadProfile{"program p\nsite \"x ADD NOI 5\n",
                   "unterminated label"},
        BadProfile{"program p\nsite \"x\" FROB NOI 5\n",
                   "unknown executed event"},
        BadProfile{"program p\nsite \"x\" ADD FROB 5\n",
                   "unknown alternative event"},
        BadProfile{"program p\nsite \"x\" ADD NOI zero\n",
                   "non-numeric count"},
        BadProfile{"program p\nsite \"x\" ADD NOI -3\n",
                   "negative count"},
        BadProfile{"program p\nsite \"x\" ADD NOI\n",
                   "missing count"},
        BadProfile{"program p\nbogus line\n", "unknown directive"}));

TEST(ProfileParser, ReportsErrorLine)
{
    std::istringstream in("program p\n# ok\nsite \"x\" ADD NOI 0\n");
    const auto res = parseProgramProfile(in);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.errorLine, 3u);
}

} // namespace
} // namespace savat::core
