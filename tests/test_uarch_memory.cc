/**
 * @file
 * Unit tests for the sparse functional memory and the main-memory
 * timing model.
 */

#include <gtest/gtest.h>

#include "uarch/memory.hh"

namespace savat::uarch {
namespace {

TEST(SparseMemory, DefaultZero)
{
    SparseMemory mem;
    EXPECT_EQ(mem.readByte(0x12345), 0);
    EXPECT_EQ(mem.readWord(0xFFFFFFF0ull), 0u);
}

TEST(SparseMemory, ByteRoundTrip)
{
    SparseMemory mem;
    mem.writeByte(100, 0xAB);
    EXPECT_EQ(mem.readByte(100), 0xAB);
    EXPECT_EQ(mem.readByte(101), 0);
}

TEST(SparseMemory, WordLittleEndian)
{
    SparseMemory mem;
    mem.writeWord(0x1000, 0x11223344u);
    EXPECT_EQ(mem.readByte(0x1000), 0x44);
    EXPECT_EQ(mem.readByte(0x1001), 0x33);
    EXPECT_EQ(mem.readByte(0x1002), 0x22);
    EXPECT_EQ(mem.readByte(0x1003), 0x11);
    EXPECT_EQ(mem.readWord(0x1000), 0x11223344u);
}

TEST(SparseMemory, WordAcrossPageBoundary)
{
    SparseMemory mem;
    const std::uint64_t addr = SparseMemory::kPageBytes - 2;
    mem.writeWord(addr, 0xDEADBEEFu);
    EXPECT_EQ(mem.readWord(addr), 0xDEADBEEFu);
    EXPECT_GE(mem.pageCount(), 2u);
}

TEST(SparseMemory, PagesOnDemand)
{
    SparseMemory mem;
    EXPECT_EQ(mem.pageCount(), 0u);
    mem.writeByte(0, 1);
    EXPECT_EQ(mem.pageCount(), 1u);
    mem.writeByte(10 * SparseMemory::kPageBytes, 1);
    EXPECT_EQ(mem.pageCount(), 2u);
}

TEST(MainMemory, ReadLatencyAndEvents)
{
    ActivityTrace trace;
    MainMemory mem(60, 16, trace);
    EXPECT_EQ(mem.read(0x1000, 100), 60u);
    EXPECT_EQ(mem.stats().reads, 1u);
    const auto counts = trace.eventCounts();
    EXPECT_EQ(counts[static_cast<std::size_t>(MicroEvent::DramRead)],
              1u);
    EXPECT_EQ(counts[static_cast<std::size_t>(MicroEvent::BusRead)],
              1u);
}

TEST(MainMemory, BurstTiming)
{
    ActivityTrace trace;
    MainMemory mem(60, 16, trace);
    mem.read(0, 100);
    // The bus burst ends when the data arrives (cycle 160).
    bool found = false;
    for (const auto &e : trace.events()) {
        if (e.ev == MicroEvent::BusRead) {
            EXPECT_EQ(e.start, 144u);
            EXPECT_EQ(e.duration, 16u);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(MainMemory, WritebackNonBlocking)
{
    ActivityTrace trace;
    MainMemory mem(60, 16, trace);
    mem.writeback(0x2000, 50);
    EXPECT_EQ(mem.stats().writes, 1u);
    const auto counts = trace.eventCounts();
    EXPECT_EQ(counts[static_cast<std::size_t>(MicroEvent::BusWrite)],
              1u);
    EXPECT_EQ(counts[static_cast<std::size_t>(MicroEvent::DramWrite)],
              1u);
}

TEST(MainMemory, ClearStats)
{
    NullActivitySink sink;
    MainMemory mem(10, 4, sink);
    mem.read(0, 0);
    mem.clearStats();
    EXPECT_EQ(mem.stats().reads, 0u);
}

} // namespace
} // namespace savat::uarch
