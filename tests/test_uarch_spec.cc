/**
 * @file
 * Tests for the speculation frontier and the software timing channel:
 * wrong-path cache fills surviving the architectural squash, window
 * bounds and fences, honest branch-predictor statistics, timing-
 * channel campaign determinism, and the spec-off golden gate.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/campaign.hh"
#include "core/report.hh"
#include "isa/assembler.hh"
#include "uarch/cpu.hh"

namespace savat::uarch {
namespace {

using isa::Reg;

/** A Core 2 Duo shaped CPU with a configurable speculation window. */
class UarchSpec : public ::testing::Test
{
  protected:
    RunResult
    runAsm(const std::string &src, std::uint32_t window)
    {
        auto config = core2duo();
        config.spec.window = window;
        cpu = std::make_unique<SimpleCpu>(config, trace);
        program = isa::assembleOrDie(src, "test");
        return cpu->run(program);
    }

    ActivityTrace trace;
    std::unique_ptr<SimpleCpu> cpu;
    isa::Program program;
};

/**
 * The Spectre-v1 shape: the predictor starts weakly taken, so the
 * first not-taken conditional mispredicts and the wrong path runs the
 * branch target's load. The fill must outlive the squash while the
 * architectural register state must not.
 */
constexpr const char *kWrongPathLoad = "mov esi,0x5000\n"
                                       "mov eax,5\n"
                                       "cmp eax,5\n"
                                       "jne wrong\n"
                                       "hlt\n"
                                       "wrong:\n"
                                       "mov eax,[esi]\n"
                                       "hlt\n";

TEST_F(UarchSpec, TransientFillPersistsAfterSquash)
{
    runAsm(kWrongPathLoad, 8);
    EXPECT_EQ(cpu->specStats().squashes, 1u);
    EXPECT_GE(cpu->specStats().wrongPathInsts, 1u);
    EXPECT_EQ(cpu->specStats().transientFills, 1u);
    EXPECT_EQ(cpu->specStats().fencesHit, 0u);
    // The microarchitectural side effect survives the squash...
    EXPECT_TRUE(cpu->l1().contains(0x5000));
    // ...and the wrong path's activity is tagged as transient.
    EXPECT_GT(trace.originCount(EventOrigin::Transient), 0u);
    // The architectural state does not: eax keeps its retired value.
    EXPECT_EQ(cpu->reg(Reg::Eax), 5u);
}

TEST_F(UarchSpec, NoSpeculationNoTransientState)
{
    runAsm(kWrongPathLoad, 0);
    // The mispredict still happens and still costs cycles...
    EXPECT_EQ(cpu->branchStats().mispredicts, 1u);
    // ...but with the frontier off nothing transient exists.
    EXPECT_EQ(cpu->specStats().squashes, 0u);
    EXPECT_EQ(cpu->specStats().transientFills, 0u);
    EXPECT_FALSE(cpu->l1().contains(0x5000));
    EXPECT_EQ(trace.originCount(EventOrigin::Transient), 0u);
}

TEST_F(UarchSpec, LfenceStopsWrongPath)
{
    runAsm("mov esi,0x5000\n"
           "mov eax,5\n"
           "cmp eax,5\n"
           "jne wrong\n"
           "hlt\n"
           "wrong:\n"
           "lfence\n"
           "mov eax,[esi]\n"
           "hlt\n",
           8);
    EXPECT_EQ(cpu->specStats().squashes, 1u);
    EXPECT_EQ(cpu->specStats().fencesHit, 1u);
    // The fence kills the window before the load issues.
    EXPECT_EQ(cpu->specStats().transientFills, 0u);
    EXPECT_FALSE(cpu->l1().contains(0x5000));
}

TEST_F(UarchSpec, WindowBoundExhaustsWrongPath)
{
    runAsm("mov eax,5\n"
           "cmp eax,5\n"
           "jne wrong\n"
           "hlt\n"
           "wrong:\n"
           "add ebx,1\n"
           "add ebx,1\n"
           "add ebx,1\n"
           "add ebx,1\n"
           "hlt\n",
           2);
    EXPECT_EQ(cpu->specStats().squashes, 1u);
    EXPECT_EQ(cpu->specStats().wrongPathInsts, 2u);
    EXPECT_EQ(cpu->specStats().windowExhausted, 1u);
    // Squashed: the shadow ebx increments never retire.
    EXPECT_EQ(cpu->reg(Reg::Ebx), 0u);
}

/**
 * Regression for the silent "perfectly predicted" jmp special case:
 * unconditional branches must appear in the front-end-visible branch
 * count so mispredictRate() has an honest denominator.
 */
TEST_F(UarchSpec, JmpCountsInBranchStats)
{
    runAsm("mov eax,5\n"
           "cmp eax,5\n"
           "jne wrong\n"
           "jmp done\n"
           "wrong:\n"
           "hlt\n"
           "done:\n"
           "hlt\n",
           0);
    const auto &bp = cpu->branchStats();
    EXPECT_EQ(bp.conditional, 1u);
    EXPECT_EQ(bp.unconditional, 1u);
    EXPECT_EQ(bp.mispredicts, 1u);
    EXPECT_EQ(bp.branches(), 2u);
    // One mispredict over two front-end branches, not over one.
    EXPECT_DOUBLE_EQ(bp.mispredictRate(), 0.5);
}

/** Timing-channel campaigns over the transient pair. */
class TimingChainCampaign : public ::testing::Test
{
  protected:
    static core::CampaignResult
    runTiming(std::size_t jobs)
    {
        core::CampaignConfig cfg;
        cfg.events = {kernels::eventByName("TLD"),
                      kernels::eventByName("TLF")};
        cfg.repetitions = 2;
        cfg.jobs = jobs;
        cfg.meter.channel = pipeline::ChannelKind::Timing;
        cfg.meter.specWindow = 32;
        return core::runCampaign(cfg);
    }

    static std::string
    fixture(const core::CampaignResult &res)
    {
        std::ostringstream oss;
        core::printMatrixFixture(oss, res.matrix);
        return oss.str();
    }
};

TEST_F(TimingChainCampaign, JobsDeterministicAndNonzero)
{
    const auto serial = runTiming(1);
    const auto parallel = runTiming(4);
    EXPECT_EQ(fixture(serial), fixture(parallel));

    // The unfenced/fenced pair separates cleanly from the diagonal
    // floor: TLD leaves wrong-path fills the probe sees, TLF does not.
    const double ab = serial.matrix.mean(0, 1);
    const double floor =
        std::max(serial.matrix.mean(0, 0), serial.matrix.mean(1, 1));
    EXPECT_GT(ab, 0.0);
    EXPECT_GT(ab, 2.0 * floor);
}

/**
 * The hard gate of the speculation refactor: with speculation off
 * (every default config), the staged core must reproduce the EM
 * campaign byte-for-byte against the checked-in golden fixture.
 */
class GoldenSpecOff : public ::testing::Test
{
  protected:
    static std::string
    golden()
    {
        std::ifstream in(SAVAT_SOURCE_DIR
                         "/tests/data/golden_em_core2duo.fixture",
                         std::ios::binary);
        EXPECT_TRUE(in.good());
        std::ostringstream oss;
        oss << in.rdbuf();
        return oss.str();
    }

    static std::string
    fixtureFor(std::size_t jobs)
    {
        core::CampaignConfig cfg;
        cfg.repetitions = 2;
        cfg.jobs = jobs;
        const auto res = core::runCampaign(cfg);
        std::ostringstream oss;
        core::printMatrixFixture(oss, res.matrix);
        return oss.str();
    }
};

TEST_F(GoldenSpecOff, EmBitIdenticalSerial)
{
    EXPECT_EQ(fixtureFor(1), golden());
}

TEST_F(GoldenSpecOff, EmBitIdenticalParallel)
{
    EXPECT_EQ(fixtureFor(4), golden());
}

} // namespace
} // namespace savat::uarch
