/**
 * @file
 * Tests for the SVF baseline metric and the program leakage
 * assessment API.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/assessment.hh"
#include "core/svf.hh"
#include "isa/assembler.hh"

#include <sstream>
#include "support/rng.hh"

namespace savat::core {
namespace {

using kernels::EventKind;

// ------------------------------------------------------------------ svf

TEST(Svf, SimilarityCorrelationPerfect)
{
    // Two alternating phase types; observations follow exactly.
    std::vector<std::vector<double>> oracle;
    std::vector<double> observed;
    for (int i = 0; i < 10; ++i) {
        if (i % 2 == 0) {
            oracle.push_back({1.0, 0.0});
            observed.push_back(5.0);
        } else {
            oracle.push_back({0.0, 1.0});
            observed.push_back(1.0);
        }
    }
    EXPECT_NEAR(similarityCorrelation(oracle, observed), 1.0, 1e-9);
}

TEST(Svf, SimilarityCorrelationRandomIsLow)
{
    Rng rng(9);
    std::vector<std::vector<double>> oracle;
    std::vector<double> observed;
    for (int i = 0; i < 60; ++i) {
        oracle.push_back({rng.uniform(), rng.uniform()});
        observed.push_back(rng.uniform());
    }
    EXPECT_LT(std::abs(similarityCorrelation(oracle, observed)),
              0.25);
}

TEST(Svf, PhasedWorkloadAssembles)
{
    const auto m = uarch::core2duo();
    const auto prog = buildPhasedWorkload(m, 200);
    EXPECT_FALSE(prog.empty());
    EXPECT_GE(prog.labelIndex("compute"), 0);
    EXPECT_GE(prog.labelIndex("mem_phase"), 0);
}

TEST(Svf, PhasedWorkloadLeaksAtCloseRange)
{
    const auto m = uarch::core2duo();
    const auto profile = em::emissionProfileFor("core2duo");
    const auto prog = buildPhasedWorkload(m, 200);
    SvfConfig cfg;
    cfg.windows = 32;
    cfg.windowCycles = 2000;
    const auto res = computeSvf(m, profile, em::DistanceModel(), prog,
                                cfg);
    EXPECT_EQ(res.windows, 32u);
    // Phase structure shows through -- but note the calibrated
    // machine makes L2 and off-chip phases nearly equal in total
    // power (ADD/LDL2 ~ ADD/LDM in the paper!), so a scalar power
    // trace cannot separate them and SVF stays well below 1. That
    // attribution blindness is the paper's critique of SVF.
    EXPECT_GT(res.svf, 0.15)
        << "phases should show through at 10 cm";
    EXPECT_LE(res.svf, 1.0);
}

TEST(Svf, DistanceDegradesSvf)
{
    const auto m = uarch::core2duo();
    const auto profile = em::emissionProfileFor("core2duo");
    const auto prog = buildPhasedWorkload(m, 200);
    SvfConfig near_cfg;
    near_cfg.windows = 32;
    near_cfg.observationNoise = 0.5;
    SvfConfig far_cfg = near_cfg;
    far_cfg.distance = Distance::meters(5.0);
    const auto near_res = computeSvf(m, profile, em::DistanceModel(),
                                     prog, near_cfg);
    const auto far_res = computeSvf(m, profile, em::DistanceModel(),
                                    prog, far_cfg);
    EXPECT_GT(near_res.svf, far_res.svf);
}

TEST(Svf, NoiseDegradesSvf)
{
    const auto m = uarch::core2duo();
    const auto profile = em::emissionProfileFor("core2duo");
    const auto prog = buildPhasedWorkload(m, 200);
    SvfConfig quiet;
    quiet.windows = 32;
    quiet.observationNoise = 0.01;
    SvfConfig noisy = quiet;
    noisy.observationNoise = 3.0;
    const auto q = computeSvf(m, profile, em::DistanceModel(), prog,
                              quiet);
    const auto n = computeSvf(m, profile, em::DistanceModel(), prog,
                              noisy);
    EXPECT_GT(q.svf, n.svf);
}

TEST(Svf, UniformWorkloadHasNoPhases)
{
    // A single-phase program gives the attacker nothing to
    // correlate: SVF collapses.
    const auto m = uarch::core2duo();
    const auto profile = em::emissionProfileFor("core2duo");
    const auto prog = isa::assembleOrDie(
        "mov eax,7\ntop: imul eax,173\nadd eax,5\njmp top\n",
        "uniform");
    SvfConfig cfg;
    cfg.windows = 32;
    const auto res = computeSvf(m, profile, em::DistanceModel(), prog,
                                cfg);
    EXPECT_LT(std::abs(res.svf), 0.4);
}

// ----------------------------------------------------------- assessment

TEST(Assessment, NetSavatSubtractsFloor)
{
    auto meter = SavatMeter::forMachine("core2duo");
    const double net =
        netSavatZj(meter, EventKind::ADD, EventKind::SUB);
    EXPECT_NEAR(net, 0.0, 0.15); // identical instructions
    const double loud =
        netSavatZj(meter, EventKind::ADD, EventKind::LDM);
    EXPECT_GT(loud, 2.0);
}

TEST(Assessment, RanksSitesByContribution)
{
    auto meter = SavatMeter::forMachine("core2duo");
    ProgramProfile profile;
    profile.name = "demo";
    profile.sites = {
        {"quiet arithmetic", EventKind::ADD, EventKind::SUB, 1000},
        {"secret-indexed table", EventKind::LDL2, EventKind::LDL1,
         64},
        {"conditional divide", EventKind::DIV, EventKind::NOI, 4},
    };
    const auto report = assessProgram(meter, profile);
    ASSERT_EQ(report.sites.size(), 3u);
    // The table lookups dominate despite fewer instances.
    EXPECT_EQ(report.sites.front().site.label,
              "secret-indexed table");
    EXPECT_GT(report.sites.front().share, 0.5);
    EXPECT_GT(report.totalPerUseZj, 0.0);
    double share_sum = 0.0;
    for (const auto &s : report.sites)
        share_sum += s.share;
    EXPECT_NEAR(share_sum, 1.0, 1e-9);
}

TEST(Assessment, ConstantTimeProgramLeaksNothing)
{
    auto meter = SavatMeter::forMachine("core2duo");
    ProgramProfile profile;
    profile.name = "constant-time";
    profile.sites = {
        {"balanced multiply", EventKind::MUL, EventKind::MUL, 4096},
        {"balanced adds", EventKind::ADD, EventKind::ADD, 8192},
    };
    const auto report = assessProgram(meter, profile);
    EXPECT_NEAR(report.totalPerUseZj, 0.0, 1e-9);
    EXPECT_TRUE(std::isinf(report.usesForMargin()));
}

TEST(Assessment, UsesForMarginScales)
{
    AssessmentReport r;
    r.totalPerUseZj = 100.0;
    r.floorZj = 0.5;
    EXPECT_NEAR(r.usesForMargin(10.0, 2048.0),
                10.0 * 0.5 * 2048.0 / 100.0, 1e-9);
    // Louder programs need fewer observations.
    AssessmentReport loud = r;
    loud.totalPerUseZj = 1000.0;
    EXPECT_LT(loud.usesForMargin(), r.usesForMargin());
}

TEST(Assessment, PrintedReportContainsSites)
{
    auto meter = SavatMeter::forMachine("core2duo");
    ProgramProfile profile;
    profile.name = "printable";
    profile.sites = {
        {"divide", EventKind::DIV, EventKind::NOI, 2},
    };
    const auto report = assessProgram(meter, profile);
    std::ostringstream oss;
    printAssessment(oss, report);
    EXPECT_NE(oss.str().find("printable"), std::string::npos);
    EXPECT_NE(oss.str().find("divide"), std::string::npos);
    EXPECT_NE(oss.str().find("DIV vs NOI"), std::string::npos);
}

} // namespace
} // namespace savat::core
