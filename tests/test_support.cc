/**
 * @file
 * Unit tests for the support module: units, RNG, statistics, strings
 * and table rendering.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "support/rng.hh"
#include "support/stats.hh"
#include "support/strings.hh"
#include "support/table.hh"
#include "support/units.hh"

namespace savat {
namespace {

// --------------------------------------------------------------- units

TEST(Units, FrequencyConversions)
{
    const auto f = Frequency::khz(80.0);
    EXPECT_DOUBLE_EQ(f.inHz(), 80000.0);
    EXPECT_DOUBLE_EQ(f.inKhz(), 80.0);
    EXPECT_DOUBLE_EQ(f.inMhz(), 0.08);
    EXPECT_DOUBLE_EQ(Frequency::ghz(2.4).inHz(), 2.4e9);
    EXPECT_DOUBLE_EQ(f.periodSeconds(), 1.0 / 80000.0);
}

TEST(Units, DurationConversions)
{
    EXPECT_DOUBLE_EQ(Duration::millis(2.0).inSeconds(), 0.002);
    EXPECT_DOUBLE_EQ(Duration::micros(5.0).inNanos(), 5000.0);
    EXPECT_DOUBLE_EQ(Duration::nanos(1.0).inSeconds(), 1e-9);
}

TEST(Units, PowerDbm)
{
    EXPECT_NEAR(Power::milliwatts(1.0).inDbm(), 0.0, 1e-12);
    EXPECT_NEAR(Power::fromDbm(30.0).inWatts(), 1.0, 1e-12);
    EXPECT_NEAR(Power::fromDbm(-30.0).inWatts(), 1e-6, 1e-18);
}

TEST(Units, EnergyZepto)
{
    const auto e = Energy::zepto(4.2);
    EXPECT_NEAR(e.inJoules(), 4.2e-21, 1e-30);
    EXPECT_NEAR(e.inZepto(), 4.2, 1e-12);
    EXPECT_NEAR(Energy::femto(1.0).inZepto(), 1e6, 1e-3);
}

TEST(Units, ArithmeticAndComparison)
{
    const auto a = Frequency::khz(10.0);
    const auto b = Frequency::khz(30.0);
    EXPECT_DOUBLE_EQ((a + b).inKhz(), 40.0);
    EXPECT_DOUBLE_EQ((b - a).inKhz(), 20.0);
    EXPECT_DOUBLE_EQ((a * 3.0).inKhz(), 30.0);
    EXPECT_DOUBLE_EQ((b / 3.0).inKhz(), 10.0);
    EXPECT_DOUBLE_EQ(b / a, 3.0);
    EXPECT_LT(a, b);
    EXPECT_EQ(a, Frequency::hz(10000.0));
}

TEST(Units, PowerTimesDurationIsEnergy)
{
    const Energy e = Power::watts(2.0) * Duration::seconds(3.0);
    EXPECT_DOUBLE_EQ(e.inJoules(), 6.0);
    const Power p = Energy::joules(6.0) / Duration::seconds(3.0);
    EXPECT_DOUBLE_EQ(p.inWatts(), 2.0);
}

TEST(Units, WavelengthAndDb)
{
    EXPECT_NEAR(wavelength(Frequency::mhz(300.0)).inMeters(), 1.0,
                1e-3);
    EXPECT_NEAR(toDb(100.0), 20.0, 1e-12);
    EXPECT_NEAR(fromDb(-3.0), 0.501187, 1e-5);
}

// ----------------------------------------------------------------- rng

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMoments)
{
    Rng rng(99);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.uniform());
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
    EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(123);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.gaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.02);
    EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(5);
    RunningStats s;
    for (int i = 0; i < 50000; ++i)
        s.add(rng.gaussian(10.0, 2.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, ForkIndependence)
{
    Rng parent(42);
    Rng child = parent.fork();
    // Child stream should not simply mirror the parent's.
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (parent.next() == child.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

// --------------------------------------------------------------- stats

TEST(Stats, RunningBasic)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, RunningEmptyAndSingle)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, CoefficientOfVariation)
{
    RunningStats s;
    s.add(10.0);
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.coefficientOfVariation(), 0.0);
    s.add(13.0);
    EXPECT_GT(s.coefficientOfVariation(), 0.0);
}

TEST(Stats, Median)
{
    EXPECT_DOUBLE_EQ(median({}), 0.0);
    EXPECT_DOUBLE_EQ(median({5.0}), 5.0);
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, Summarize)
{
    const auto s = summarize({1.0, 2.0, 3.0, 4.0});
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_DOUBLE_EQ(s.median, 2.5);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Stats, PearsonPerfect)
{
    EXPECT_NEAR(pearson({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
    EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(Stats, PearsonUncorrelated)
{
    Rng rng(3);
    std::vector<double> a, b;
    for (int i = 0; i < 10000; ++i) {
        a.push_back(rng.gaussian());
        b.push_back(rng.gaussian());
    }
    EXPECT_NEAR(pearson(a, b), 0.0, 0.05);
}

TEST(Stats, PearsonDegenerate)
{
    EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {2, 3, 4}), 0.0);
    EXPECT_DOUBLE_EQ(pearson({1}, {2}), 0.0);
}

TEST(Stats, RanksWithTies)
{
    const auto r = ranks({10.0, 20.0, 20.0, 30.0});
    ASSERT_EQ(r.size(), 4u);
    EXPECT_DOUBLE_EQ(r[0], 1.0);
    EXPECT_DOUBLE_EQ(r[1], 2.5);
    EXPECT_DOUBLE_EQ(r[2], 2.5);
    EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, SpearmanMonotonic)
{
    // Any monotonic transform gives rank correlation 1.
    std::vector<double> a{1, 2, 3, 4, 5};
    std::vector<double> b{1, 4, 9, 16, 25};
    EXPECT_NEAR(spearman(a, b), 1.0, 1e-12);
    std::vector<double> c{25, 16, 9, 4, 1};
    EXPECT_NEAR(spearman(a, c), -1.0, 1e-12);
}

// ------------------------------------------------------------- strings

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  abc  "), "abc");
    EXPECT_EQ(trim("abc"), "abc");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(Strings, ToLower)
{
    EXPECT_EQ(toLower("MoV EAX"), "mov eax");
}

TEST(Strings, Split)
{
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, SplitWhitespace)
{
    const auto parts = splitWhitespace("  mov   eax,\t[esi]  ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "mov");
    EXPECT_EQ(parts[1], "eax,");
    EXPECT_EQ(parts[2], "[esi]");
    EXPECT_TRUE(splitWhitespace("   ").empty());
}

TEST(Strings, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("mov eax", "mov"));
    EXPECT_FALSE(startsWith("mov", "move"));
    EXPECT_TRUE(endsWith("a_loop", "loop"));
    EXPECT_FALSE(endsWith("x", "loop"));
}

TEST(Strings, ParseInt)
{
    long long v = 0;
    EXPECT_TRUE(parseInt("173", v));
    EXPECT_EQ(v, 173);
    EXPECT_TRUE(parseInt("-5", v));
    EXPECT_EQ(v, -5);
    EXPECT_TRUE(parseInt("0xFF", v));
    EXPECT_EQ(v, 255);
    EXPECT_TRUE(parseInt("0xFFFFFFFF", v));
    EXPECT_EQ(v, 4294967295ll);
    EXPECT_TRUE(parseInt("  42 ", v));
    EXPECT_EQ(v, 42);
    EXPECT_FALSE(parseInt("abc", v));
    EXPECT_FALSE(parseInt("", v));
    EXPECT_FALSE(parseInt("12x", v));
}

TEST(Strings, Format)
{
    EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(format("%.2f", 1.239), "1.24");
}

// --------------------------------------------------------------- table

TEST(Table, RenderAligned)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.startRow();
    t.addCell("alpha");
    t.addCell(1.5, 1);
    t.startRow();
    t.addCell("b");
    t.addCell(12.26, 1);
    std::ostringstream oss;
    t.render(oss);
    const auto out = oss.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("12.3"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, CsvEscaping)
{
    TextTable t;
    t.setHeader({"a", "b"});
    t.startRow();
    t.addCell("has,comma");
    t.addCell("has\"quote");
    std::ostringstream oss;
    t.renderCsv(oss);
    const auto out = oss.str();
    EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, Heatmap)
{
    const auto map = asciiHeatmap({"A", "B"}, {{0.0, 1.0}, {2.0, 3.0}});
    EXPECT_NE(map.find('A'), std::string::npos);
    EXPECT_NE(map.find('@'), std::string::npos); // darkest shade
    EXPECT_NE(map.find(' '), std::string::npos); // lightest shade
}

TEST(Table, HeatmapConstantMatrix)
{
    // A constant matrix must not divide by zero.
    const auto map = asciiHeatmap({"A"}, {{5.0}});
    EXPECT_FALSE(map.empty());
}

TEST(Table, BarChart)
{
    const auto chart =
        asciiBarChart({"x/y", "z/w"}, {1.0, 2.0}, 10);
    EXPECT_NE(chart.find("##########"), std::string::npos);
    EXPECT_NE(chart.find("#####"), std::string::npos);
    EXPECT_NE(chart.find("x/y"), std::string::npos);
}

TEST(Table, BarChartAllZero)
{
    const auto chart = asciiBarChart({"a"}, {0.0});
    EXPECT_NE(chart.find("0.00"), std::string::npos);
}

} // namespace
} // namespace savat
