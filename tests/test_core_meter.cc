/**
 * @file
 * Tests for the SAVAT meter: the measurement methodology end to end.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/meter.hh"
#include "support/stats.hh"

namespace savat::core {
namespace {

using kernels::EventKind;

/** Shared meter (the pair cache makes reuse cheap). */
class MeterTest : public ::testing::Test
{
  protected:
    MeterTest() : meter(SavatMeter::forMachine("core2duo")) {}

    double
    meanSavat(EventKind a, EventKind b, int reps = 6,
              std::uint64_t seed = 77)
    {
        const auto &sim = meter.simulatePair(a, b);
        Rng rng(seed);
        RunningStats stats;
        for (int i = 0; i < reps; ++i) {
            auto rep = rng.fork();
            stats.add(meter.measure(sim, rep).savat.inZepto());
        }
        return stats.mean();
    }

    SavatMeter meter;
};

TEST_F(MeterTest, HitsIntendedAlternationFrequency)
{
    // The retuning loop must land every pair within 0.5 % of 80 kHz,
    // including pairs whose halves interact in the caches.
    for (auto [a, b] : std::vector<std::pair<EventKind, EventKind>>{
             {EventKind::ADD, EventKind::ADD},
             {EventKind::ADD, EventKind::LDM},
             {EventKind::LDL1, EventKind::LDL2},
             {EventKind::STL1, EventKind::STL2},
             {EventKind::LDM, EventKind::DIV}}) {
        const auto &sim = meter.simulatePair(a, b);
        EXPECT_NEAR(sim.actualFrequency.inKhz(), 80.0, 0.4)
            << kernels::eventName(a) << "/" << kernels::eventName(b);
    }
}

TEST_F(MeterTest, EqualDurationDutyIsHalf)
{
    const auto &sim = meter.simulatePair(EventKind::ADD,
                                         EventKind::LDM);
    EXPECT_NEAR(sim.duty, 0.5, 0.05);
}

TEST_F(MeterTest, PairsPerSecondUsesLargerBurst)
{
    const auto &sim = meter.simulatePair(EventKind::ADD,
                                         EventKind::LDM);
    const auto expected =
        sim.actualFrequency.inHz() *
        static_cast<double>(std::max(sim.counts.countA,
                                     sim.counts.countB));
    EXPECT_DOUBLE_EQ(sim.pairsPerSecond, expected);
    EXPECT_GT(sim.counts.countA, sim.counts.countB);
}

TEST_F(MeterTest, CacheBehaviourMatchesEventClasses)
{
    // LDM must reach memory; LDL2 must hit in L2; LDL1 in L1.
    const auto &ldm = meter.simulatePair(EventKind::NOI,
                                         EventKind::LDM);
    EXPECT_GT(ldm.mem.reads, 100u);

    const auto &ldl2 = meter.simulatePair(EventKind::NOI,
                                          EventKind::LDL2);
    EXPECT_GT(ldl2.l2.readHits, 100u);
    EXPECT_EQ(ldl2.mem.reads, 0u);

    const auto &ldl1 = meter.simulatePair(EventKind::NOI,
                                          EventKind::LDL1);
    EXPECT_GT(ldl1.l1.readHits, 1000u);
    EXPECT_EQ(ldl1.l1.readMisses, 0u);
}

TEST_F(MeterTest, Stl2CausesWritebackTraffic)
{
    // The paper attributes STL2's elevated SAVAT to dirty
    // write-backs: every store miss must push a dirty line to L2.
    const auto &stl2 = meter.simulatePair(EventKind::NOI,
                                          EventKind::STL2);
    EXPECT_GT(stl2.l2.writebacksIn, 100u);
    EXPECT_NEAR(static_cast<double>(stl2.l2.writebacksIn),
                static_cast<double>(stl2.l1.writeMisses), 64.0);
    EXPECT_EQ(stl2.mem.writes, 0u); // stays on chip
}

TEST_F(MeterTest, ChannelAmplitudesLandOnRightChannels)
{
    const auto &sim = meter.simulatePair(EventKind::ADD,
                                         EventKind::LDL2);
    const auto amp = [&](em::Channel c) {
        return std::abs(
            sim.amplitude[static_cast<std::size_t>(c)]);
    };
    // The L2 array dominates this pair's difference.
    EXPECT_GT(amp(em::Channel::L2), 0.01);
    EXPECT_LT(amp(em::Channel::Bus), amp(em::Channel::L2) / 10.0);
    EXPECT_LT(amp(em::Channel::Div), 1e-3);
}

TEST_F(MeterTest, SameInstructionAmplitudesNearZero)
{
    const auto &sim = meter.simulatePair(EventKind::ADD,
                                         EventKind::ADD);
    for (std::size_t c = 0; c < em::kNumChannels; ++c)
        EXPECT_LT(std::abs(sim.amplitude[c]), 0.02)
            << em::channelName(em::channelAt(c));
}

TEST_F(MeterTest, MeanActivitySplitsPerHalf)
{
    const auto &sim = meter.simulatePair(EventKind::ADD,
                                         EventKind::DIV);
    const auto div_idx =
        static_cast<std::size_t>(em::Channel::Div);
    EXPECT_NEAR(sim.meanA[div_idx], 0.0, 1e-9);
    EXPECT_GT(sim.meanB[div_idx], 0.3);
}

TEST_F(MeterTest, MeasurementDeterministicPerSeed)
{
    const auto &sim = meter.simulatePair(EventKind::ADD,
                                         EventKind::LDM);
    Rng r1(5), r2(5);
    const auto m1 = meter.measure(sim, r1);
    const auto m2 = meter.measure(sim, r2);
    EXPECT_DOUBLE_EQ(m1.savat.inZepto(), m2.savat.inZepto());
    EXPECT_DOUBLE_EQ(m1.bandPowerW, m2.bandPowerW);
}

TEST_F(MeterTest, SimulationCacheReturnsSameObject)
{
    const auto &s1 = meter.simulatePair(EventKind::ADD,
                                        EventKind::SUB);
    const auto &s2 = meter.simulatePair(EventKind::ADD,
                                        EventKind::SUB);
    EXPECT_EQ(&s1, &s2);
}

TEST_F(MeterTest, OffChipBeatsOnChip)
{
    // The paper's headline: off-chip accesses vs on-chip work leak
    // far more than two on-chip instructions do.
    const double off = meanSavat(EventKind::ADD, EventKind::LDM);
    const double onchip = meanSavat(EventKind::ADD, EventKind::SUB);
    EXPECT_GT(off, 4.0 * onchip);
}

TEST_F(MeterTest, L2HitsAreAsLoudAsMisses)
{
    // "last-level-cache hits and misses have similar (high) SAVAT".
    const double l2 = meanSavat(EventKind::ADD, EventKind::LDL2);
    const double mem = meanSavat(EventKind::ADD, EventKind::LDM);
    EXPECT_GT(l2, 0.6 * mem);
    EXPECT_LT(l2, 1.6 * mem);
}

TEST_F(MeterTest, DivStandsOutAmongArithmetic)
{
    const double div = meanSavat(EventKind::ADD, EventKind::DIV);
    const double mul = meanSavat(EventKind::ADD, EventKind::MUL);
    EXPECT_GT(div, 1.3 * mul);
}

TEST_F(MeterTest, DiagonalBelowOffDiagonal)
{
    const double diag = meanSavat(EventKind::LDL2, EventKind::LDL2);
    const double off = meanSavat(EventKind::ADD, EventKind::LDL2);
    EXPECT_LT(diag, off / 3.0);
}

TEST_F(MeterTest, SavatValuesAreZeptojouleScale)
{
    const double v = meanSavat(EventKind::ADD, EventKind::LDM);
    EXPECT_GT(v, 0.1);
    EXPECT_LT(v, 100.0);
}

TEST_F(MeterTest, TraceContainsToneInBand)
{
    const auto &sim = meter.simulatePair(EventKind::ADD,
                                         EventKind::LDM);
    Rng rng(9);
    const auto m = meter.measure(sim, rng);
    // Figure 7: the tone sits within about +/-1 kHz of 80 kHz and
    // towers above the noise floor.
    EXPECT_NEAR(m.toneHz, 80000.0, 1000.0);
    const double peak = m.trace.peakPsd(79000.0, 81000.0);
    EXPECT_GT(peak, 100.0 * meter.config().noiseFloorWPerHz);
}

TEST(MeterDistance, SavatDropsWithDistance)
{
    MeterConfig near_cfg;
    near_cfg.distance = Distance::centimeters(10.0);
    auto near_meter = SavatMeter::forMachine("core2duo", near_cfg);

    MeterConfig far_cfg;
    far_cfg.distance = Distance::centimeters(50.0);
    auto far_meter = SavatMeter::forMachine("core2duo", far_cfg);

    auto mean = [](SavatMeter &m, EventKind a, EventKind b) {
        const auto &sim = m.simulatePair(a, b);
        Rng rng(3);
        RunningStats s;
        for (int i = 0; i < 6; ++i) {
            auto rep = rng.fork();
            s.add(m.measure(sim, rep).savat.inZepto());
        }
        return s.mean();
    };

    const double near_l2 =
        mean(near_meter, EventKind::ADD, EventKind::LDL2);
    const double far_l2 =
        mean(far_meter, EventKind::ADD, EventKind::LDL2);
    EXPECT_LT(far_l2, near_l2 / 3.0);

    // Off-chip survives distance much better (Figures 16-18).
    const double near_mem =
        mean(near_meter, EventKind::ADD, EventKind::LDM);
    const double far_mem =
        mean(far_meter, EventKind::ADD, EventKind::LDM);
    EXPECT_GT(far_mem / near_mem, far_l2 / near_l2);
    EXPECT_GT(far_mem, far_l2);
}

TEST(MeterModes, EqualCountsMode)
{
    MeterConfig cfg;
    cfg.pairing = kernels::PairingMode::EqualCounts;
    auto meter = SavatMeter::forMachine("core2duo", cfg);
    const auto &sim = meter.simulatePair(EventKind::ADD,
                                         EventKind::LDM);
    EXPECT_EQ(sim.counts.countA, sim.counts.countB);
    EXPECT_NEAR(sim.actualFrequency.inKhz(), 80.0, 0.4);
    // Duty reflects the speed imbalance: the LDM half dominates.
    EXPECT_LT(sim.duty, 0.35);
}

TEST(MeterModes, AlternationFrequencyFreedom)
{
    // Section III: the methodology works at any reasonable
    // alternation frequency; SAVAT is a per-pair energy, so the
    // value must be roughly frequency-independent.
    auto at_freq = [](double khz) {
        MeterConfig cfg;
        cfg.alternation = Frequency::khz(khz);
        auto meter = SavatMeter::forMachine("core2duo", cfg);
        const auto &sim = meter.simulatePair(EventKind::ADD,
                                             EventKind::LDL2);
        Rng rng(13);
        RunningStats s;
        for (int i = 0; i < 8; ++i) {
            auto rep = rng.fork();
            s.add(meter.measure(sim, rep).savat.inZepto());
        }
        return s.mean();
    };
    const double at40 = at_freq(40.0);
    const double at80 = at_freq(80.0);
    const double at160 = at_freq(160.0);
    EXPECT_NEAR(at40 / at80, 1.0, 0.35);
    EXPECT_NEAR(at160 / at80, 1.0, 0.35);
}

} // namespace
} // namespace savat::core
