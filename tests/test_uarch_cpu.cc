/**
 * @file
 * Unit tests for the timing CPU: instruction semantics, flags,
 * memory access, timing models, marks and run limits.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "uarch/cpu.hh"

namespace savat::uarch {
namespace {

using isa::Reg;

/** Fixture with a Core 2 Duo shaped CPU and a recording trace. */
class CpuTest : public ::testing::Test
{
  protected:
    CpuTest() : cpu(core2duo(), trace) {}

    RunResult
    runAsm(const std::string &src)
    {
        program = isa::assembleOrDie(src, "test");
        return cpu.run(program);
    }

    ActivityTrace trace;
    SimpleCpu cpu;
    isa::Program program;
};

TEST_F(CpuTest, MovRegImmAndRegReg)
{
    runAsm("mov eax,42\nmov ebx,eax\nhlt\n");
    EXPECT_EQ(cpu.reg(Reg::Eax), 42u);
    EXPECT_EQ(cpu.reg(Reg::Ebx), 42u);
}

TEST_F(CpuTest, Arithmetic)
{
    runAsm("mov eax,10\n"
           "add eax,5\n"
           "sub eax,3\n"
           "imul eax,4\n"
           "hlt\n");
    EXPECT_EQ(cpu.reg(Reg::Eax), 48u);
}

TEST_F(CpuTest, ArithmeticWraps)
{
    runAsm("mov eax,0xFFFFFFFF\nadd eax,2\nhlt\n");
    EXPECT_EQ(cpu.reg(Reg::Eax), 1u);
}

TEST_F(CpuTest, Logic)
{
    runAsm("mov eax,0xF0F0\n"
           "and eax,0xFF00\n"
           "or eax,0x000F\n"
           "xor eax,0x0001\n"
           "hlt\n");
    EXPECT_EQ(cpu.reg(Reg::Eax), 0xF00Eu);
}

TEST_F(CpuTest, SignedMultiply)
{
    runAsm("mov eax,0xFFFFFFFF\nimul eax,173\nhlt\n"); // -1 * 173
    EXPECT_EQ(static_cast<std::int32_t>(cpu.reg(Reg::Eax)), -173);
}

TEST_F(CpuTest, DivideSelfIsStable)
{
    // idiv eax computes eax/eax = 1 rem 0 (the DIV kernel's pattern).
    runAsm("mov eax,7\nmov edx,0\nidiv eax\nhlt\n");
    EXPECT_EQ(cpu.reg(Reg::Eax), 1u);
    EXPECT_EQ(cpu.reg(Reg::Edx), 0u);
}

TEST_F(CpuTest, DivideWithRemainder)
{
    runAsm("mov eax,17\nmov edx,0\nmov ebx,5\nidiv ebx\nhlt\n");
    EXPECT_EQ(cpu.reg(Reg::Eax), 3u);
    EXPECT_EQ(cpu.reg(Reg::Edx), 2u);
}

TEST_F(CpuTest, CdqSignExtends)
{
    runAsm("mov eax,0x80000000\ncdq\nhlt\n");
    EXPECT_EQ(cpu.reg(Reg::Edx), 0xFFFFFFFFu);
    cpu.reset();
    runAsm("mov eax,5\nmov edx,0xFFFFFFFF\ncdq\nhlt\n");
    EXPECT_EQ(cpu.reg(Reg::Edx), 0u);
}

TEST_F(CpuTest, NegativeDivideAfterCdq)
{
    // -17 / 5 truncates toward zero: -3 rem -2.
    runAsm("mov eax,0xFFFFFFEF\ncdq\nmov ebx,5\nidiv ebx\nhlt\n");
    EXPECT_EQ(static_cast<std::int32_t>(cpu.reg(Reg::Eax)), -3);
    EXPECT_EQ(static_cast<std::int32_t>(cpu.reg(Reg::Edx)), -2);
}

TEST_F(CpuTest, IncDecAndZeroFlag)
{
    runAsm("mov ecx,2\ndec ecx\nhlt\n");
    EXPECT_FALSE(cpu.zeroFlag());
    cpu.reset();
    runAsm("mov ecx,1\ndec ecx\nhlt\n");
    EXPECT_TRUE(cpu.zeroFlag());
}

TEST_F(CpuTest, CmpAndConditionalBranch)
{
    runAsm("mov ecx,3\n"
           "mov eax,0\n"
           "loop: add eax,10\n"
           "dec ecx\n"
           "jne loop\n"
           "hlt\n");
    EXPECT_EQ(cpu.reg(Reg::Eax), 30u);
}

TEST_F(CpuTest, JeBranch)
{
    runAsm("mov eax,5\n"
           "cmp eax,5\n"
           "je equal\n"
           "mov ebx,1\n"
           "hlt\n"
           "equal: mov ebx,2\n"
           "hlt\n");
    EXPECT_EQ(cpu.reg(Reg::Ebx), 2u);
}

TEST_F(CpuTest, TestSetsFlag)
{
    runAsm("mov eax,0xF0\ntest eax,0x0F\nhlt\n");
    EXPECT_TRUE(cpu.zeroFlag());
}

TEST_F(CpuTest, LoadStore)
{
    runAsm("mov esi,0x1000\n"
           "mov [esi],0xDEADBEEF\n"
           "mov eax,[esi]\n"
           "hlt\n");
    EXPECT_EQ(cpu.reg(Reg::Eax), 0xDEADBEEFu);
    EXPECT_EQ(cpu.memory().readWord(0x1000), 0xDEADBEEFu);
}

TEST_F(CpuTest, StoreRegisterOperand)
{
    runAsm("mov esi,0x2000\nmov ebx,77\nmov [esi],ebx\nhlt\n");
    EXPECT_EQ(cpu.memory().readWord(0x2000), 77u);
}

TEST_F(CpuTest, FallOffEndHalts)
{
    const auto res = runAsm("mov eax,1\n");
    EXPECT_TRUE(res.halted);
    EXPECT_EQ(res.instructions, 1u);
}

TEST_F(CpuTest, MaxInstructionLimit)
{
    program = isa::assembleOrDie("top: add eax,1\njmp top\n", "spin");
    RunLimits limits;
    limits.maxInstructions = 100;
    const auto res = cpu.run(program, limits);
    EXPECT_FALSE(res.halted);
    EXPECT_EQ(res.instructions, 100u);
}

TEST_F(CpuTest, MaxCycleLimit)
{
    program = isa::assembleOrDie("top: add eax,1\njmp top\n", "spin");
    RunLimits limits;
    limits.maxCycles = 50;
    const auto res = cpu.run(program, limits);
    EXPECT_FALSE(res.halted);
    EXPECT_GE(res.cycles, 50u);
    EXPECT_LT(res.cycles, 60u);
}

TEST_F(CpuTest, MarksReportCycleAndCanStop)
{
    std::vector<std::int64_t> ids;
    cpu.setMarkCallback([&](std::int64_t id, std::uint64_t,
                            std::uint64_t) {
        ids.push_back(id);
        return id != 3;
    });
    const auto res = runAsm(
        "mark 1\nadd eax,1\nmark 2\nmark 3\nadd eax,1\nhlt\n");
    EXPECT_TRUE(res.stoppedByMark);
    EXPECT_FALSE(res.halted);
    ASSERT_EQ(ids.size(), 3u);
    EXPECT_EQ(cpu.reg(Reg::Eax), 1u); // second add never ran
}

TEST_F(CpuTest, MarksAreFree)
{
    const auto res1 = runAsm("mark 1\nmark 2\nadd eax,1\nhlt\n");
    cpu.reset();
    const auto res2 = runAsm("add eax,1\nhlt\n");
    EXPECT_EQ(res1.cycles, res2.cycles);
}

TEST_F(CpuTest, PipelinedHidesAluLatency)
{
    // 5 ALU ops = 5 cycles on the pipelined model.
    const auto res = runAsm(
        "add eax,1\nadd eax,1\nadd eax,1\nadd eax,1\nadd eax,1\n"
        "hlt\n");
    EXPECT_EQ(res.cycles, 6u); // 5 + hlt
}

TEST_F(CpuTest, PipelinedL1HitIsSingleCycle)
{
    // Warm the line first.
    runAsm("mov esi,0x1000\nmov eax,[esi]\nhlt\n");
    const auto before = cpu.cycle();
    cpu.run(isa::assembleOrDie("mov eax,[esi]\nhlt\n", "hit"));
    EXPECT_EQ(cpu.cycle() - before, 2u); // load (1) + hlt (1)
}

TEST_F(CpuTest, DividerBlocksFully)
{
    const auto cfg = core2duo();
    runAsm("mov eax,7\nidiv eax\nhlt\n");
    // mov (1) + idiv (full latency) + hlt (1).
    EXPECT_EQ(cpu.cycle(), 2u + cfg.lat.idiv);
}

TEST_F(CpuTest, ResetClearsState)
{
    runAsm("mov eax,5\nmov esi,0x1000\nmov [esi],eax\nhlt\n");
    cpu.reset();
    EXPECT_EQ(cpu.reg(Reg::Eax), 0u);
    EXPECT_EQ(cpu.cycle(), 0u);
    EXPECT_EQ(cpu.l1Stats().writes(), 0u);
    // Functional memory intentionally survives reset.
    EXPECT_EQ(cpu.memory().readWord(0x1000), 5u);
}

TEST_F(CpuTest, ActivityEventsPerInstruction)
{
    runAsm("add eax,1\nhlt\n");
    const auto counts = trace.eventCounts();
    EXPECT_EQ(counts[static_cast<std::size_t>(MicroEvent::AluOp)], 1u);
    EXPECT_EQ(counts[static_cast<std::size_t>(MicroEvent::IFetch)],
              2u); // add + hlt
}

TEST_F(CpuTest, DivideByZeroDies)
{
    EXPECT_EXIT(
        runAsm("mov eax,1\nmov ebx,0\nmov edx,0\nidiv ebx\nhlt\n"),
        ::testing::ExitedWithCode(1), "idiv by zero");
}

TEST_F(CpuTest, DivideOverflowDies)
{
    // 2^32 / 1 does not fit in 32 bits.
    EXPECT_EXIT(
        runAsm("mov eax,0\nmov edx,1\nmov ebx,1\nidiv ebx\nhlt\n"),
        ::testing::ExitedWithCode(1), "idiv overflow");
}

TEST(CpuScalar, ScalarChargesFullLatency)
{
    auto cfg = core2duo();
    cfg.timing = TimingModel::Scalar;
    NullActivitySink sink;
    SimpleCpu cpu(cfg, sink);
    const auto prog = isa::assembleOrDie(
        "mov eax,7\nimul eax,3\nhlt\n", "scalar");
    cpu.run(prog);
    EXPECT_EQ(cpu.cycle(), cfg.lat.mov + cfg.lat.imul + 1u);
}

TEST(CpuScalar, ScalarSlowerThanPipelined)
{
    const auto prog = isa::assembleOrDie(
        "mov ecx,100\n"
        "loop: imul eax,3\ndec ecx\njne loop\nhlt\n",
        "loop");
    NullActivitySink sink;

    auto pipe_cfg = core2duo();
    SimpleCpu pipe(pipe_cfg, sink);
    pipe.run(prog);

    auto scalar_cfg = core2duo();
    scalar_cfg.timing = TimingModel::Scalar;
    SimpleCpu scalar(scalar_cfg, sink);
    scalar.run(prog);

    EXPECT_GT(scalar.cycle(), pipe.cycle());
}

TEST(MachineConfigs, CaseStudyShapes)
{
    // Figure 6 of the paper.
    const auto c2d = core2duo();
    EXPECT_EQ(c2d.l1.sizeBytes, 32u * 1024);
    EXPECT_EQ(c2d.l1.assoc, 8u);
    EXPECT_EQ(c2d.l2.sizeBytes, 4096u * 1024);
    EXPECT_EQ(c2d.l2.assoc, 16u);

    const auto p3m = pentium3m();
    EXPECT_EQ(p3m.l1.sizeBytes, 16u * 1024);
    EXPECT_EQ(p3m.l1.assoc, 4u);
    EXPECT_EQ(p3m.l2.sizeBytes, 512u * 1024);
    EXPECT_EQ(p3m.l2.assoc, 8u);

    const auto tx2 = turionx2();
    EXPECT_EQ(tx2.l1.sizeBytes, 64u * 1024);
    EXPECT_EQ(tx2.l1.assoc, 2u);
    EXPECT_EQ(tx2.l2.sizeBytes, 1024u * 1024);
    EXPECT_EQ(tx2.l2.assoc, 16u);
}

TEST(MachineConfigs, LookupById)
{
    EXPECT_EQ(machineById("core2duo").name, "Intel Core 2 Duo");
    EXPECT_EQ(caseStudyMachines().size(), 3u);
    EXPECT_EXIT(machineById("vax"), ::testing::ExitedWithCode(1),
                "unknown machine");
}

TEST(MachineConfigs, CyclesPerPeriod)
{
    const auto m = core2duo();
    EXPECT_NEAR(m.cyclesPerPeriod(Frequency::khz(80.0)), 30000.0, 1.0);
}

class AllMachines : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AllMachines, GeometriesValid)
{
    const auto m = machineById(GetParam());
    EXPECT_TRUE(m.l1.valid());
    EXPECT_TRUE(m.l2.valid());
    EXPECT_GT(m.clock.inGhz(), 0.5);
    EXPECT_GT(m.lat.idiv, m.lat.imul);
}

TEST_P(AllMachines, DivLatencyDominatesIteration)
{
    // The divider must be the slowest on-chip operation modeled.
    const auto m = machineById(GetParam());
    EXPECT_GT(m.lat.idiv, 20u);
}

INSTANTIATE_TEST_SUITE_P(Machines, AllMachines,
                         ::testing::Values("core2duo", "pentium3m",
                                           "turionx2"));

} // namespace
} // namespace savat::uarch
