/**
 * @file
 * Integration tests: campaigns across modules, reproduction checks
 * against the paper's published data, and report rendering.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/campaign.hh"
#include "core/clustering.hh"
#include "core/reference.hh"
#include "core/report.hh"

namespace savat::core {
namespace {

using kernels::EventKind;

CampaignConfig
smallConfig()
{
    CampaignConfig cfg;
    cfg.machineId = "core2duo";
    cfg.events = {EventKind::ADD, EventKind::LDL2, EventKind::LDM};
    cfg.repetitions = 4;
    cfg.seed = 99;
    return cfg;
}

TEST(Campaign, FillsEveryCell)
{
    const auto res = runCampaign(smallConfig());
    EXPECT_EQ(res.matrix.size(), 3u);
    for (std::size_t a = 0; a < 3; ++a)
        for (std::size_t b = 0; b < 3; ++b)
            EXPECT_EQ(res.matrix.samples(a, b).size(), 4u);
}

TEST(Campaign, DeterministicAcrossRuns)
{
    const auto r1 = runCampaign(smallConfig());
    const auto r2 = runCampaign(smallConfig());
    EXPECT_EQ(r1.matrix.flatMeans(), r2.matrix.flatMeans());
}

TEST(Campaign, SeedChangesValuesSlightly)
{
    auto cfg = smallConfig();
    const auto r1 = runCampaign(cfg);
    cfg.seed = 1234;
    const auto r2 = runCampaign(cfg);
    const auto f1 = r1.matrix.flatMeans();
    const auto f2 = r2.matrix.flatMeans();
    EXPECT_NE(f1, f2);
    // ... but not by much: the physics is the same.
    for (std::size_t i = 0; i < f1.size(); ++i)
        EXPECT_NEAR(f1[i], f2[i], 0.5 * std::max(f1[i], f2[i]));
}

TEST(Campaign, ProgressCallback)
{
    std::size_t calls = 0, last = 0, total = 0;
    runCampaign(smallConfig(), [&](std::size_t done, std::size_t n) {
        ++calls;
        last = done;
        total = n;
    });
    EXPECT_EQ(calls, 9u);
    EXPECT_EQ(last, 9u);
    EXPECT_EQ(total, 9u);
}

TEST(Campaign, SelectedPairsOnly)
{
    CampaignConfig cfg = smallConfig();
    const auto res = runCampaignPairs(
        cfg, {{EventKind::ADD, EventKind::LDM}});
    EXPECT_EQ(res.matrix
                  .samples(res.matrix.indexOf(EventKind::ADD),
                           res.matrix.indexOf(EventKind::LDM))
                  .size(),
              4u);
    EXPECT_TRUE(res.matrix
                    .samples(res.matrix.indexOf(EventKind::LDM),
                             res.matrix.indexOf(EventKind::ADD))
                    .empty());
}

TEST(Campaign, SimulationsRecorded)
{
    const auto res = runCampaign(smallConfig());
    const auto ia = res.matrix.indexOf(EventKind::ADD);
    const auto ib = res.matrix.indexOf(EventKind::LDM);
    const auto &sim = res.simulation(ia, ib);
    EXPECT_EQ(sim.a, EventKind::ADD);
    EXPECT_EQ(sim.b, EventKind::LDM);
    EXPECT_GT(sim.pairsPerSecond, 0.0);
}

TEST(Report, RenderersProduceOutput)
{
    const auto res = runCampaign(smallConfig());
    std::ostringstream table, heat, csv, summary;
    printMatrixTable(table, res.matrix);
    printMatrixHeatmap(heat, res.matrix);
    printMatrixCsv(csv, res.matrix);
    printCampaignSummary(summary, res);
    EXPECT_NE(table.str().find("LDM"), std::string::npos);
    EXPECT_NE(heat.str().find("ADD"), std::string::npos);
    EXPECT_NE(csv.str().find("mean_zj"), std::string::npos);
    EXPECT_NE(summary.str().find("repeatability"),
              std::string::npos);
    EXPECT_NE(summary.str().find("core2duo"), std::string::npos);
}

TEST(Report, BarsSkipUnmeasuredPairs)
{
    const auto res = runCampaign(smallConfig());
    std::ostringstream bars;
    printSelectedBars(bars, res.matrix);
    // Only ADD/LDL2 and ADD/LDM of the selected list are present
    // (ADD/ADD is in the list but also measured here).
    EXPECT_NE(bars.str().find("ADD/LDM"), std::string::npos);
    EXPECT_EQ(bars.str().find("STL2"), std::string::npos);
}

/**
 * The headline reproduction test: a full 11x11 campaign on the
 * Core 2 Duo at 10 cm must reproduce the published Figure 9 --
 * its ordering (rank correlation), its groups, its validation
 * statistics. This is the slowest test in the suite (~half a
 * minute).
 */
class Figure9Reproduction : public ::testing::Test
{
  protected:
    static const CampaignResult &
    result()
    {
        static const CampaignResult res = [] {
            CampaignConfig cfg;
            cfg.machineId = "core2duo";
            cfg.repetitions = 5;
            cfg.seed = 0x5AFA7;
            return runCampaign(cfg);
        }();
        return res;
    }
};

TEST_F(Figure9Reproduction, RankCorrelationWithPaper)
{
    const double rho =
        rankCorrelation(result().matrix, figure9Core2Duo());
    EXPECT_GT(rho, 0.85) << "simulated matrix ordering diverges "
                            "from the published Figure 9";
    const double logr =
        logCorrelation(result().matrix, figure9Core2Duo());
    EXPECT_GT(logr, 0.85);
}

TEST_F(Figure9Reproduction, DiagonalsAreRowColumnMinima)
{
    // The paper's validation, on our measurement. Near-ties among
    // floor-level cells are tolerated at 0.15 zJ, mirroring the
    // published table's own rounding ties.
    EXPECT_GE(result().matrix.diagonalMinimumCount(0.15), 8u);
    EXPECT_GE(result().matrix.diagonalMinimumCount(), 3u);
}

TEST_F(Figure9Reproduction, RepeatabilityMatchesPaper)
{
    // "the standard-deviation-to-mean ratio is 0.05 on average".
    const double cov =
        result().matrix.meanCoefficientOfVariation();
    EXPECT_GT(cov, 0.01);
    EXPECT_LT(cov, 0.20);
}

TEST_F(Figure9Reproduction, AbBaSymmetry)
{
    EXPECT_LT(result().matrix.symmetryError(), 0.25);
}

TEST_F(Figure9Reproduction, FourGroupsEmerge)
{
    const auto clusters = clusterEvents(result().matrix, 4);
    const auto &m = result().matrix;
    auto cluster_of = [&](EventKind e) {
        return clusters.assignment[m.indexOf(e)];
    };
    // Off-chip group.
    EXPECT_EQ(cluster_of(EventKind::LDM), cluster_of(EventKind::STM));
    // L2 group.
    EXPECT_EQ(cluster_of(EventKind::LDL2),
              cluster_of(EventKind::STL2));
    EXPECT_NE(cluster_of(EventKind::LDM),
              cluster_of(EventKind::LDL2));
    // Arithmetic/L1 group.
    for (auto e : {EventKind::SUB, EventKind::MUL, EventKind::NOI,
                   EventKind::LDL1, EventKind::STL1}) {
        EXPECT_EQ(cluster_of(EventKind::ADD), cluster_of(e))
            << kernels::eventName(e);
    }
    // DIV stands alone.
    EXPECT_NE(cluster_of(EventKind::DIV), cluster_of(EventKind::ADD));
    EXPECT_NE(cluster_of(EventKind::DIV), cluster_of(EventKind::LDM));
    EXPECT_NE(cluster_of(EventKind::DIV),
              cluster_of(EventKind::LDL2));
}

TEST_F(Figure9Reproduction, KeyOrderingsHold)
{
    const auto &m = result().matrix;
    auto at = [&](EventKind a, EventKind b) {
        return m.mean(m.indexOf(a), m.indexOf(b));
    };
    // Off-chip and L2 pairs dwarf arithmetic pairs.
    EXPECT_GT(at(EventKind::ADD, EventKind::LDM),
              3.0 * at(EventKind::ADD, EventKind::SUB));
    EXPECT_GT(at(EventKind::ADD, EventKind::LDL2),
              3.0 * at(EventKind::ADD, EventKind::SUB));
    // STL2 above LDL2 (write-back traffic).
    EXPECT_GT(at(EventKind::ADD, EventKind::STL2),
              1.2 * at(EventKind::ADD, EventKind::LDL2));
    // LDM vs LDL2 beats either against ADD.
    EXPECT_GT(at(EventKind::LDL2, EventKind::LDM),
              at(EventKind::ADD, EventKind::LDM));
    // DIV above the other arithmetic.
    EXPECT_GT(at(EventKind::ADD, EventKind::DIV),
              at(EventKind::ADD, EventKind::MUL));
}

TEST_F(Figure9Reproduction, SingleInstructionSavatOrdering)
{
    const auto &m = result().matrix;
    const double load = m.singleInstructionSavat(
        {EventKind::LDM, EventKind::LDL2, EventKind::LDL1});
    const double arith = m.singleInstructionSavat(
        {EventKind::ADD, EventKind::SUB, EventKind::MUL});
    EXPECT_GT(load, 3.0 * arith);
}

} // namespace
} // namespace savat::core
