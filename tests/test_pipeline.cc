/**
 * @file
 * Tests for the staged measurement pipeline and its signal chains:
 * stage units, the EM chain's golden-matrix bit-identity, the power
 * chain's jobs-independence and the record/replay round trip.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hh"
#include "core/meter.hh"
#include "core/report.hh"
#include "pipeline/chain.hh"
#include "pipeline/config.hh"
#include "pipeline/replay.hh"
#include "pipeline/stages.hh"
#include "spectrum/analyzer.hh"
#include "support/obs.hh"

namespace savat {
namespace {

using kernels::EventKind;

TEST(ChannelNames, RoundTrip)
{
    EXPECT_STREQ(pipeline::channelName(pipeline::ChannelKind::Em),
                 "em");
    EXPECT_STREQ(pipeline::channelName(pipeline::ChannelKind::Power),
                 "power");
    EXPECT_EQ(pipeline::channelByName("em"),
              pipeline::ChannelKind::Em);
    EXPECT_EQ(pipeline::channelByName("power"),
              pipeline::ChannelKind::Power);
    EXPECT_FALSE(pipeline::channelByName("acoustic").has_value());
    EXPECT_FALSE(pipeline::channelByName("").has_value());
}

TEST(MeasureConfig, ToAnalysisSettingsSlicesSharedBase)
{
    pipeline::MeasureConfig cfg;
    cfg.alternation = Frequency::khz(120.0);
    cfg.distance = Distance::centimeters(30.0);
    cfg.measurePeriods = 12;
    cfg.bandHz = 1500.0;
    cfg.spanHz = 3000.0;
    cfg.rbwHz = 2.0;

    const em::LoopAntenna antenna(2.0, Frequency::khz(20.0),
                                  Frequency::mhz(100.0));
    const auto s = pipeline::toAnalysisSettings(cfg, antenna);

    // Every shared field mirrors the pipeline configuration -- the
    // two layers share one struct, so they cannot drift.
    EXPECT_DOUBLE_EQ(s.alternation.inHz(), cfg.alternation.inHz());
    EXPECT_DOUBLE_EQ(s.distance.inMeters(), cfg.distance.inMeters());
    EXPECT_EQ(s.pairing, cfg.pairing);
    EXPECT_EQ(s.measurePeriods, cfg.measurePeriods);
    EXPECT_DOUBLE_EQ(s.bandHz, cfg.bandHz);
    EXPECT_DOUBLE_EQ(s.spanHz, cfg.spanHz);
    EXPECT_DOUBLE_EQ(s.rbwHz, cfg.rbwHz);

    // Capture-front-end facts come from the channel selection and
    // the antenna.
    EXPECT_FALSE(s.powerRail);
    EXPECT_DOUBLE_EQ(s.antennaCorner.inHz(),
                     antenna.corner().inHz());
    EXPECT_DOUBLE_EQ(s.antennaMax.inHz(),
                     antenna.maxFrequency().inHz());

    cfg.channel = pipeline::ChannelKind::Power;
    EXPECT_TRUE(pipeline::toAnalysisSettings(cfg, antenna).powerRail);
}

TEST(Stages, BurstSolveMatchesSolveCounts)
{
    const auto meter = core::SavatMeter::forMachine("core2duo");
    pipeline::KernelSpec spec;
    spec.cpiA = 1.5;
    spec.cpiB = 9.0;
    const auto counts =
        pipeline::burstSolve(meter.machine(), spec, meter.config());
    const auto expected = kernels::solveCounts(
        meter.machine(), spec.cpiA, spec.cpiB,
        meter.config().alternation, meter.config().pairing);
    EXPECT_EQ(counts.countA, expected.countA);
    EXPECT_EQ(counts.countB, expected.countB);
    EXPECT_DOUBLE_EQ(counts.cpiA, expected.cpiA);
    EXPECT_DOUBLE_EQ(counts.cpiB, expected.cpiB);
}

TEST(Stages, RunAlternationProducesMeasuredSimulation)
{
    auto meter = core::SavatMeter::forMachine("core2duo");
    const auto &sim =
        meter.simulatePair(EventKind::ADD, EventKind::LDM);
    EXPECT_TRUE(sim.measured());
    EXPECT_EQ(sim.a, EventKind::ADD);
    EXPECT_EQ(sim.b, EventKind::LDM);
    EXPECT_NEAR(sim.actualFrequency.inKhz(), 80.0, 0.4);
    EXPECT_GT(sim.pairsPerSecond, 0.0);
    EXPECT_GT(sim.periodCycles, 0.0);
}

TEST(Stages, BandIntegrateNormalizesByPairRate)
{
    spectrum::Trace t;
    t.startHz = 79000.0;
    t.binHz = 1.0;
    t.psd.assign(2001, 1e-18);
    t.psd[1000] = 1e-12; // the tone bin, at 80 kHz

    const double pps = 2.5e6;
    const auto s =
        pipeline::bandIntegrate(t, 80000.0, 1000.0, pps, 80000.0);
    EXPECT_DOUBLE_EQ(s.toneHz, 80000.0);
    EXPECT_DOUBLE_EQ(s.bandPowerW,
                     t.bandPower(79000.0, 81000.0));
    EXPECT_DOUBLE_EQ(s.savat.inJoules(), s.bandPowerW / pps);
}

TEST(Sweep, SweepIntoMatchesMeasureInto)
{
    spectrum::SweepConfig cfg;
    cfg.center = Frequency::khz(80.0);
    cfg.spanHz = 4000.0;
    cfg.rbwHz = 1.0;
    cfg.noiseFloorWPerHz = 5e-18;
    const spectrum::SpectrumAnalyzer analyzer(cfg);

    em::NarrowbandSpectrum incident;
    incident.startHz = 78000.0;
    incident.binHz = 1.0;
    incident.psd.assign(4001, 1e-16);
    incident.psd[2000] = 3e-13;

    Rng r1(7), r2(7);
    spectrum::Trace via_spectrum, via_raw;
    analyzer.measureInto(incident, r1, via_spectrum);
    analyzer.sweepInto(incident.startHz, incident.binHz,
                       incident.psd.data(), incident.size(), r2,
                       via_raw);

    // The chain-agnostic raw-array entry point is the same sweep.
    ASSERT_EQ(via_raw.size(), via_spectrum.size());
    EXPECT_DOUBLE_EQ(via_raw.startHz, via_spectrum.startHz);
    EXPECT_DOUBLE_EQ(via_raw.binHz, via_spectrum.binHz);
    for (std::size_t i = 0; i < via_raw.size(); ++i)
        ASSERT_EQ(via_raw.psd[i], via_spectrum.psd[i]) << "bin " << i;
}

TEST(MeterCounters, PairCacheHitsAreCounted)
{
    auto meter = core::SavatMeter::forMachine("core2duo");
    obs::Registry::instance().reset();
    obs::setMetricsEnabled(true);
    meter.simulatePair(EventKind::ADD, EventKind::SUB);
    meter.simulatePair(EventKind::ADD, EventKind::SUB);
    meter.simulatePair(EventKind::ADD, EventKind::SUB);
    obs::setMetricsEnabled(false);

    auto &reg = obs::Registry::instance();
    EXPECT_EQ(reg.counter("meter.pair_simulations").value(), 1u);
    EXPECT_EQ(reg.counter("meter.pair_cache_hits").value(), 2u);
    reg.reset();
}

/** The configured chain drives the meter's measurements. */
TEST(PowerChain, SelectedByConfigAndDiffersFromEm)
{
    core::MeterConfig power_cfg;
    power_cfg.channel = pipeline::ChannelKind::Power;
    auto power_meter =
        core::SavatMeter::forMachine("core2duo", power_cfg);
    auto em_meter = core::SavatMeter::forMachine("core2duo");
    EXPECT_STREQ(power_meter.chain().name(), "power");
    EXPECT_STREQ(em_meter.chain().name(), "em");

    const auto &power_sim =
        power_meter.simulatePair(EventKind::ADD, EventKind::LDM);
    const auto &em_sim =
        em_meter.simulatePair(EventKind::ADD, EventKind::LDM);

    Rng r1(21), r2(21);
    const auto pm = power_meter.measure(power_sim, r1);
    const auto em = em_meter.measure(em_sim, r2);
    EXPECT_GT(pm.savat.inZepto(), 0.0);
    EXPECT_GT(em.savat.inZepto(), 0.0);
    // Same physics in, different front ends out.
    EXPECT_NE(pm.savat.inZepto(), em.savat.inZepto());
}

TEST(PowerChain, CampaignBitIdenticalAcrossJobs)
{
    core::CampaignConfig cfg;
    cfg.events = {EventKind::ADD, EventKind::LDM, EventKind::DIV};
    cfg.repetitions = 2;
    cfg.meter.channel = pipeline::ChannelKind::Power;

    cfg.jobs = 1;
    const auto serial = core::runCampaign(cfg);
    cfg.jobs = 4;
    const auto parallel = core::runCampaign(cfg);

    ASSERT_EQ(serial.matrix.size(), parallel.matrix.size());
    for (std::size_t a = 0; a < serial.matrix.size(); ++a) {
        for (std::size_t b = 0; b < serial.matrix.size(); ++b) {
            const auto &s = serial.matrix.samples(a, b);
            const auto &p = parallel.matrix.samples(a, b);
            ASSERT_EQ(s.size(), p.size());
            for (std::size_t i = 0; i < s.size(); ++i) {
                ASSERT_EQ(s[i], p[i])
                    << "cell (" << a << ", " << b << ") rep " << i;
                EXPECT_GT(s[i], 0.0);
            }
        }
    }
}

TEST(Replay, RecordReplayRoundTrip)
{
    core::CampaignConfig cfg;
    cfg.events = {EventKind::ADD, EventKind::LDM};
    cfg.repetitions = 2;
    cfg.jobs = 1;
    cfg.keepTraces = true;
    const auto live = core::runCampaign(cfg);

    // Record, serialize, parse back: hexfloats make the round trip
    // byte-exact.
    const auto recording = core::recordCampaign(live);
    EXPECT_EQ(recording.channel, "em");
    EXPECT_EQ(recording.cells.size(), 4u);

    std::stringstream ss;
    pipeline::saveRecording(ss, recording);
    const auto parsed = pipeline::loadRecording(ss);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.recording.machineId, recording.machineId);
    EXPECT_EQ(parsed.recording.events, recording.events);

    // Replaying reproduces the live matrix bit for bit.
    const auto replayed = core::replayMatrix(parsed.recording);
    ASSERT_EQ(replayed.size(), live.matrix.size());
    for (std::size_t a = 0; a < live.matrix.size(); ++a) {
        for (std::size_t b = 0; b < live.matrix.size(); ++b) {
            const auto &l = live.matrix.samples(a, b);
            const auto &r = replayed.samples(a, b);
            ASSERT_EQ(l.size(), r.size());
            for (std::size_t i = 0; i < l.size(); ++i) {
                ASSERT_EQ(l[i], r[i])
                    << "cell (" << a << ", " << b << ") rep " << i;
            }
        }
    }
}

TEST(ReplayDeathTest, UnrecordedPairIsFatal)
{
    core::CampaignConfig cfg;
    cfg.events = {EventKind::ADD, EventKind::SUB};
    cfg.repetitions = 1;
    cfg.jobs = 1;
    cfg.keepTraces = true;
    const auto live = core::runCampaign(cfg);
    const pipeline::ReplayChain chain(core::recordCampaign(live));

    pipeline::PairSimulation sim;
    sim.a = EventKind::DIV; // never recorded
    sim.b = EventKind::ADD;
    sim.state = pipeline::CellState::Measured;
    Rng rng(1);
    pipeline::MeasureScratch scratch;
    EXPECT_EXIT(chain.measure(sim, 0, rng, scratch),
                ::testing::KilledBySignal(SIGABRT),
                "was not recorded");
}

TEST(CampaignDeathTest, UnmeasuredSimulationIsFatal)
{
    core::CampaignConfig cfg;
    cfg.events = {EventKind::ADD, EventKind::SUB, EventKind::LDM};
    cfg.repetitions = 1;
    cfg.jobs = 1;
    const auto res = core::runCampaignPairs(
        cfg, {{EventKind::ADD, EventKind::LDM}});

    // The requested pair's slot is filled...
    EXPECT_TRUE(res.simulation(0, 2).measured());
    // ...reading a skipped cell is a bug, caught loudly.
    EXPECT_EXIT(res.simulation(0, 1),
                ::testing::KilledBySignal(SIGABRT), "never measured");
}

/**
 * The headline invariant of the pipeline refactor: the EM chain
 * produces a SavatMatrix byte-identical to the pre-refactor
 * measurement path, for every jobs value. The fixture was generated
 * before the pipeline split and is never regenerated.
 */
class GoldenMatrix : public ::testing::Test
{
  protected:
    static std::string
    golden()
    {
        std::ifstream in(SAVAT_SOURCE_DIR
                         "/tests/data/golden_em_core2duo.fixture",
                         std::ios::binary);
        EXPECT_TRUE(in.good());
        std::ostringstream oss;
        oss << in.rdbuf();
        return oss.str();
    }

    static std::string
    fixtureFor(std::size_t jobs)
    {
        core::CampaignConfig cfg;
        cfg.repetitions = 2;
        cfg.jobs = jobs;
        const auto res = core::runCampaign(cfg);
        std::ostringstream oss;
        core::printMatrixFixture(oss, res.matrix);
        return oss.str();
    }
};

TEST_F(GoldenMatrix, EmChainBitIdenticalSerial)
{
    EXPECT_EQ(fixtureFor(1), golden());
}

TEST_F(GoldenMatrix, EmChainBitIdenticalParallel)
{
    EXPECT_EQ(fixtureFor(4), golden());
}

} // namespace
} // namespace savat
