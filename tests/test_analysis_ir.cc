/**
 * @file
 * Tests for savat::analysis::ir — the dataflow analyzer over
 * generated measurement kernels.
 *
 * Two pillars:
 *   1. a mutation corpus: deliberately broken kernels, each asserting
 *      the specific SAV-D0xx/SAV-P0xx diagnostic it must trigger;
 *   2. a clean sweep: every generator-emitted kernel (all event pairs
 *      on every registered machine, plus sequence kernels) must
 *      analyze with zero findings.
 * Plus unit checks of the individual passes (CFG, liveness,
 * intervals, symmetry) and a round-trip of the savat_lint JSON
 * schema.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/checker.hh"
#include "analysis/ir/analyzer.hh"
#include "analysis/jsonout.hh"
#include "isa/assembler.hh"
#include "kernels/generator.hh"
#include "kernels/sequence.hh"
#include "uarch/machine.hh"

using namespace savat;
using namespace savat::analysis;
using namespace savat::analysis::ir;
using kernels::EventKind;

namespace {

/** The baseline kernel every mutation starts from. */
kernels::AlternationKernel
baseKernel(EventKind a = EventKind::LDM, EventKind b = EventKind::NOI)
{
    return kernels::buildAlternationKernel(uarch::core2duo(), a, b, 2,
                                           3);
}

/**
 * Re-assemble a kernel whose source had `from` (its nth occurrence,
 * 0-based) replaced by `to`. Metadata (counts, bases, masks) is kept,
 * so mutations model a code generator that diverged from what it
 * claims to have generated.
 */
kernels::AlternationKernel
mutate(kernels::AlternationKernel kernel, const std::string &from,
       const std::string &to, std::size_t nth = 0)
{
    std::size_t pos = 0;
    for (std::size_t i = 0;; ++i) {
        pos = kernel.source.find(from, pos);
        if (pos == std::string::npos) {
            ADD_FAILURE() << "mutation pattern not found: " << from;
            return kernel;
        }
        if (i == nth)
            break;
        pos += from.size();
    }
    kernel.source.replace(pos, from.size(), to);
    kernel.program =
        isa::assembleOrDie(kernel.source, "mutated kernel");
    computeKernelRegions(kernel);
    return kernel;
}

/** Wrap a hand-written program (no marks, no metadata). */
kernels::AlternationKernel
kernelFromSource(const std::string &source)
{
    kernels::AlternationKernel k;
    k.source = source;
    k.program = isa::assembleOrDie(source, "hand-written");
    computeKernelRegions(k);
    return k;
}

KernelAnalysis
analyze(const kernels::AlternationKernel &k)
{
    const auto m = uarch::core2duo();
    return analyzeKernel(k, &m);
}

} // namespace

// ---------------------------------------------------------------
// Mutation corpus: each broken kernel must trip its specific id
// ---------------------------------------------------------------

TEST(MutationCorpus, OffByOneTripCountIsP001)
{
    // The generator claims countA=2 but emits a 3-trip A loop.
    const auto ka =
        analyze(mutate(baseKernel(), "mov ecx,2", "mov ecx,3"));
    EXPECT_TRUE(ka.report.has(DiagId::TripCountMismatch))
        << ka.report.errorSummary();
    EXPECT_FALSE(ka.ok());
}

TEST(MutationCorpus, L1ClaimedL2SizedFootprintIsP003)
{
    // An LDL1 half whose pointer-update masks sweep 1 MiB: the code
    // touches far more than the 16 KiB the metadata (and the cache
    // level in the event's name) claims.
    auto k = baseKernel(EventKind::LDL1, EventKind::NOI);
    k = mutate(k, "and ebx,0x3FFF", "and ebx,0xFFFFF");
    k = mutate(k, "and esi,0xFFFFC000", "and esi,0xFFF00000");
    const auto ka = analyze(k);
    EXPECT_TRUE(ka.report.has(DiagId::FootprintProofFailed))
        << ka.report.errorSummary();
    EXPECT_FALSE(ka.ok());
}

TEST(MutationCorpus, ShrunkenSweepMaskIsP003)
{
    // The inverse direction: an LDM half that only sweeps 1 MiB of
    // its claimed 16 MiB (would sit in L2, not main memory).
    auto k = baseKernel();
    k = mutate(k, "and ebx,0xFFFFFF", "and ebx,0xFFFFF");
    k = mutate(k, "and esi,0xFF000000", "and esi,0xFFF00000");
    const auto ka = analyze(k);
    EXPECT_TRUE(ka.report.has(DiagId::FootprintProofFailed))
        << ka.report.errorSummary();
}

TEST(MutationCorpus, AsymmetricPointerUpdateIsP004)
{
    // The B half strides by 128 instead of the shared line size: the
    // halves now differ outside the event-under-test slot, so the
    // A/B difference no longer isolates the event.
    const auto ka = analyze(
        mutate(baseKernel(), "add ebx,64", "add ebx,128", 1));
    EXPECT_TRUE(ka.report.has(DiagId::AsymmetricHalves))
        << ka.report.errorSummary();
    EXPECT_FALSE(ka.ok());
}

TEST(MutationCorpus, ExtraInstructionInOneHalfIsP004)
{
    const auto ka = analyze(mutate(baseKernel(), "    or edi,ebx\n",
                                   "    or edi,ebx\n"
                                   "    mov ebx,edi\n"));
    EXPECT_TRUE(ka.report.has(DiagId::AsymmetricHalves))
        << ka.report.errorSummary();
}

TEST(MutationCorpus, DroppedPointerInitIsD001)
{
    // Without the prologue's `mov edi,...` the B half reads a
    // register no path ever wrote.
    const auto ka = analyze(
        mutate(baseKernel(), "    mov edi,0x30000000\n", ""));
    EXPECT_TRUE(ka.report.has(DiagId::UninitializedRead))
        << ka.report.errorSummary();
    EXPECT_FALSE(ka.ok());
}

TEST(MutationCorpus, RemovedLoopDecrementIsP002)
{
    // Without `dec ecx` the A loop's flags come from `or esi,ebx`,
    // whose result is provably non-zero: jne is always taken and the
    // loop can never exit.
    const auto ka =
        analyze(mutate(baseKernel(), "    dec ecx\n", "", 0));
    EXPECT_TRUE(ka.report.has(DiagId::NonTerminatingLoop))
        << ka.report.errorSummary();
    EXPECT_FALSE(ka.ok());
}

TEST(MutationCorpus, InLoopDeadStoreIsD002)
{
    // ebx is rewritten by the next iteration's `mov ebx,esi` before
    // any read: a silent burst-timing perturbation.
    const auto ka = analyze(mutate(baseKernel(), "    dec ecx\n",
                                   "    mov ebx,123\n"
                                   "    dec ecx\n"));
    EXPECT_TRUE(ka.report.has(DiagId::DeadStore))
        << ka.report.errorSummary();
}

TEST(MutationCorpus, CodeAfterBackJumpIsD003)
{
    const auto ka = analyze(mutate(baseKernel(), "    jmp top\n",
                                   "    jmp top\n"
                                   "    mov ebx,1\n"
                                   "    hlt\n"));
    EXPECT_TRUE(ka.report.has(DiagId::UnreachableCode))
        << ka.report.errorSummary();
}

TEST(MutationCorpus, JumpIntoLoopBodyIsD004)
{
    // A loop entered both through its header and from outside
    // through the middle: no natural-loop analysis applies.
    const auto ka = analyze(kernelFromSource(R"(    mov ecx,4
    jmp middle
body:
    mov eax,1
middle:
    dec ecx
    jne body
    hlt
)"));
    EXPECT_TRUE(ka.report.has(DiagId::IrreducibleFlow))
        << ka.report.errorSummary();
    EXPECT_FALSE(ka.ok());
}

TEST(MutationCorpus, MissingMarksIsP004)
{
    // A kernel with no period/half marks cannot be attributed to
    // halves at all; the symmetry proof reports it, not a crash.
    const auto ka = analyze(
        mutate(baseKernel(), "    mark 1\n", "", 0));
    EXPECT_TRUE(ka.report.has(DiagId::AsymmetricHalves))
        << ka.report.errorSummary();
}

// ---------------------------------------------------------------
// Clean sweep: every shipped kernel must analyze with no findings
// ---------------------------------------------------------------

TEST(CleanSweep, AllEventPairsOnAllMachines)
{
    for (const auto &m : uarch::caseStudyMachines()) {
        const auto events = kernels::extendedEvents();
        for (std::size_t i = 0; i < events.size(); ++i) {
            for (std::size_t j = i; j < events.size(); ++j) {
                const auto kernel = kernels::buildAlternationKernel(
                    m, events[i], events[j], 2, 3);
                const auto ka = analyzeKernel(kernel, &m);
                EXPECT_TRUE(ka.ok())
                    << m.id << " "
                    << kernels::eventName(events[i]) << "/"
                    << kernels::eventName(events[j]) << ":\n"
                    << ka.report.errorSummary();
                EXPECT_EQ(ka.report.count(Severity::Warning), 0u);
            }
        }
    }
}

TEST(CleanSweep, SequenceKernelsOnAllMachines)
{
    const kernels::EventSequence a = {EventKind::ADD, EventKind::LDM,
                                      EventKind::DIV};
    const kernels::EventSequence b = {EventKind::NOI};
    for (const auto &m : uarch::caseStudyMachines()) {
        const auto kernel =
            kernels::buildSequenceKernel(m, a, b, 2, 3);
        const auto ka = analyzeKernel(kernel, &m);
        EXPECT_TRUE(ka.ok())
            << m.id << ":\n" << ka.report.errorSummary();
    }
}

// ---------------------------------------------------------------
// Pass-level unit checks on the canonical LDM/NOI kernel
// ---------------------------------------------------------------

TEST(IrPasses, CfgShapeOfAlternationKernel)
{
    const auto ka = analyze(baseKernel());
    EXPECT_FALSE(ka.cfg.irreducible);
    // Outer alternation loop plus one burst loop per half.
    ASSERT_EQ(ka.cfg.loops.size(), 3u);
    for (const auto &b : ka.cfg.blocks)
        EXPECT_TRUE(b.reachable);
    std::size_t outer = 0, inner = 0;
    for (const auto &l : ka.cfg.loops) {
        if (l.exits.empty())
            ++outer;
        else
            ++inner;
        EXPECT_EQ(l.backedges.size(), 1u);
    }
    EXPECT_EQ(outer, 1u); // jmp top: endless by design
    EXPECT_EQ(inner, 2u); // the two counted bursts
}

TEST(IrPasses, LivenessIsCleanOnGeneratedKernel)
{
    const auto ka = analyze(baseKernel());
    EXPECT_TRUE(ka.liveness.uninitReads.empty());
    EXPECT_TRUE(ka.liveness.deadStores.empty());
}

TEST(IrPasses, IntervalsProveTripCountsAndTermination)
{
    const auto ka = analyze(baseKernel());
    ASSERT_TRUE(ka.intervals.converged);
    ASSERT_EQ(ka.intervals.loops.size(), ka.cfg.loops.size());
    std::vector<std::uint64_t> trips;
    std::size_t infinite = 0;
    for (const auto &lf : ka.intervals.loops) {
        if (lf.verdict == LoopFacts::Termination::Infinite)
            ++infinite;
        else if (lf.verdict == LoopFacts::Termination::Terminates)
            trips.push_back(lf.trips);
    }
    EXPECT_EQ(infinite, 1u);
    ASSERT_EQ(trips.size(), 2u);
    EXPECT_EQ(std::min(trips[0], trips[1]), 2u); // countA
    EXPECT_EQ(std::max(trips[0], trips[1]), 3u); // countB
}

TEST(IrPasses, IntervalsBoundTheLdmSweepExactly)
{
    const auto k = baseKernel(); // A=LDM: base 0x10000000, 16 MiB
    const auto ka = analyze(k);
    bool found = false;
    for (const auto &mf : ka.intervals.mems) {
        if (mf.access != MemAccess::Load)
            continue;
        found = true;
        EXPECT_EQ(mf.addr.lo, k.baseA);
        EXPECT_EQ(mf.addr.hi, k.baseA + k.maskA);
    }
    EXPECT_TRUE(found);
}

TEST(IrPasses, SymmetryAcceptsGeneratedKernel)
{
    const auto ka = analyze(baseKernel(EventKind::DIV, EventKind::STM));
    EXPECT_TRUE(ka.symmetry.comparable);
    EXPECT_TRUE(ka.symmetry.symmetric());
}

TEST(IrPasses, DumpsMentionTheirFacts)
{
    const auto ka = analyze(baseKernel());
    EXPECT_NE(ka.cfg.dump(ka.ir).find("block"), std::string::npos);
    EXPECT_NE(ka.liveness.dump(ka.ir, ka.cfg).find("live"),
              std::string::npos);
    EXPECT_NE(ka.intervals.dump(ka.ir, ka.cfg).find("terminates"),
              std::string::npos);
}

TEST(IrPasses, AnalyzerWorksWithoutMachine)
{
    // No machine: the byte-range proof still runs, the cache-level
    // claim is skipped.
    const auto k = baseKernel();
    const auto ka = analyzeKernel(k, nullptr);
    EXPECT_TRUE(ka.ok()) << ka.report.errorSummary();
}

// ---------------------------------------------------------------
// savat_lint JSON schema round-trip
// ---------------------------------------------------------------

TEST(LintJson, RoundTripPreservesEverything)
{
    std::vector<SpecLintResult> specs;

    SpecLintResult bad;
    bad.file = "specs/bad \"quoted\".spec";
    bad.report.add(DiagId::TripCountMismatch, "pair",
                   "derived 3 trip(s), expected 2\nsecond line",
                   "hint with backslash \\ and tab \t");
    {
        Diagnostic d;
        d.id = DiagId::DeadStore;
        d.severity = Severity::Warning;
        d.field = "events";
        d.file = "specs/bad \"quoted\".spec";
        d.line = 42;
        d.message = "in-loop def never read";
        bad.report.add(std::move(d));
    }
    specs.push_back(std::move(bad));

    SpecLintResult broken;
    broken.file = "specs/unparseable.spec";
    broken.parseFailed = true;
    broken.parseError = "unknown key 'machne'";
    broken.parseErrorLine = 7;
    specs.push_back(std::move(broken));

    const auto json = lintResultsToJson(specs, 2);

    ParsedLintJson parsed;
    std::string error;
    ASSERT_TRUE(parseLintJson(json, parsed, error)) << error;
    EXPECT_EQ(parsed.schema, kLintJsonSchema);
    EXPECT_EQ(parsed.exitCode, 2);
    ASSERT_EQ(parsed.specs.size(), 2u);

    const auto &p0 = parsed.specs[0];
    EXPECT_EQ(p0.file, "specs/bad \"quoted\".spec");
    EXPECT_FALSE(p0.parseFailed);
    EXPECT_EQ(p0.errors, 1u);
    EXPECT_EQ(p0.warnings, 1u);
    ASSERT_EQ(p0.diagnostics.size(), 2u);
    EXPECT_EQ(p0.diagnostics[0].id, DiagId::TripCountMismatch);
    EXPECT_EQ(p0.diagnostics[0].severity, Severity::Error);
    EXPECT_EQ(p0.diagnostics[0].field, "pair");
    EXPECT_EQ(p0.diagnostics[0].message,
              "derived 3 trip(s), expected 2\nsecond line");
    EXPECT_EQ(p0.diagnostics[0].hint,
              "hint with backslash \\ and tab \t");
    EXPECT_EQ(p0.diagnostics[1].id, DiagId::DeadStore);
    EXPECT_EQ(p0.diagnostics[1].severity, Severity::Warning);
    EXPECT_EQ(p0.diagnostics[1].line, 42u);

    const auto &p1 = parsed.specs[1];
    EXPECT_TRUE(p1.parseFailed);
    EXPECT_EQ(p1.parseError, "unknown key 'machne'");
    EXPECT_EQ(p1.parseErrorLine, 7u);
    EXPECT_TRUE(p1.diagnostics.empty());
}

TEST(LintJson, UnknownSchemaIsRejected)
{
    ParsedLintJson parsed;
    std::string error;
    EXPECT_FALSE(parseLintJson(
        R"({"schema":"something-else","exitCode":0,"specs":[]})",
        parsed, error));
    EXPECT_FALSE(error.empty());
}

TEST(LintJson, UnknownDiagnosticIdDegradesGracefully)
{
    // A newer producer with ids this build does not know: the
    // document still parses; the id maps to NumIds.
    const std::string doc =
        R"({"schema":"savat-lint-diagnostics-v1","exitCode":1,)"
        R"("specs":[{"file":"x.spec","parseFailed":false,)"
        R"("errors":1,"warnings":0,"notes":0,"diagnostics":[)"
        R"({"id":"SAV-Z999","slug":"future","severity":"error",)"
        R"("field":"pair","file":"x.spec","line":1,)"
        R"("message":"from the future","hint":""}]}]})";
    ParsedLintJson parsed;
    std::string error;
    ASSERT_TRUE(parseLintJson(doc, parsed, error)) << error;
    ASSERT_EQ(parsed.specs.size(), 1u);
    ASSERT_EQ(parsed.specs[0].diagnostics.size(), 1u);
    EXPECT_EQ(parsed.specs[0].diagnostics[0].id, DiagId::NumIds);
    EXPECT_EQ(parsed.specs[0].diagnostics[0].message,
              "from the future");
}

// ---------------------------------------------------------------
// Checker integration: analyzer findings reach spec-level reports
// ---------------------------------------------------------------

TEST(CheckerIntegration, AnalyzerRunsUnderCheckerByDefault)
{
    // The default options analyze kernels; a clean spec must stay
    // clean through the full Checker pipeline.
    std::istringstream in(R"(campaign t
machine core2duo
events LDM NOI
repetitions 10
alternation 80 kHz
band 1000 Hz
span 2000 Hz
rbw 1 Hz
)");
    const auto res = parseCampaignSpec(in, "t.spec");
    ASSERT_TRUE(res.ok) << res.error;
    const auto report = Checker{}.check(res.spec);
    EXPECT_FALSE(report.hasErrors()) << report.errorSummary();
}

TEST(CheckerIntegration, AnalyzeKernelsCanBeDisabled)
{
    CheckerOptions opts;
    opts.analyzeKernels = false;
    std::istringstream in(R"(campaign t
machine core2duo
events ADD NOI
repetitions 10
alternation 80 kHz
band 1000 Hz
span 2000 Hz
rbw 1 Hz
)");
    const auto res = parseCampaignSpec(in, "t.spec");
    ASSERT_TRUE(res.ok) << res.error;
    const auto report = Checker{opts}.check(res.spec);
    EXPECT_FALSE(report.hasErrors()) << report.errorSummary();
}
