/**
 * @file
 * Tests for savat::resilience and its campaign integration: CRC-32
 * and hexfloat primitives, atomic file writes, deterministic retry
 * backoff and per-pair containment, the fault-plan grammar and its
 * seeded matching, checkpoint serialization and damage detection,
 * the recording CRC footer, and — the headline property — that a
 * campaign killed mid-matrix and resumed from its checkpoint
 * produces a byte-identical golden fixture at jobs 1 and 4.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostic.hh"
#include "core/campaign.hh"
#include "core/report.hh"
#include "pipeline/replay.hh"
#include "resilience/checkpoint.hh"
#include "resilience/fault.hh"
#include "resilience/retry.hh"
#include "support/crc32.hh"
#include "support/hexfloat.hh"
#include "support/io.hh"

namespace savat {
namespace {

using kernels::EventKind;

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

// ---------------------------------------------------------------
// Support primitives.

TEST(ResilienceCrc32, KnownVectorAndChaining)
{
    // The CRC-32/IEEE check value.
    EXPECT_EQ(support::crc32("123456789"), 0xCBF43926u);
    EXPECT_EQ(support::crc32(""), 0x00000000u);

    // Seed-chaining: CRC of a whole equals CRC of the tail seeded
    // with the CRC of the head (how the checkpoint identity mixes).
    const std::string text = "the quick brown fox";
    const auto whole = support::crc32(text);
    const auto head = support::crc32(text.substr(0, 7));
    EXPECT_EQ(support::crc32(text.substr(7), head), whole);

    // One-bit damage changes the sum.
    std::string bad = text;
    bad[3] ^= 0x40;
    EXPECT_NE(support::crc32(bad), whole);
}

TEST(ResilienceHexFloat, ExactRoundTrip)
{
    const double values[] = {0.0,     -0.0,   1.0 / 3.0, 6.02e23,
                             -1.5e-9, 1e-310, 42.0};
    for (double v : values) {
        std::istringstream in(support::hexFloat(v));
        double back = 0.0;
        ASSERT_TRUE(support::readHexFloat(in, back))
            << support::hexFloat(v);
        EXPECT_EQ(std::signbit(back), std::signbit(v));
        EXPECT_EQ(back, v);
    }
}

TEST(ResilienceAtomicWrite, WritesReplacesAndLeavesNoTemp)
{
    const auto path = tempPath("atomic_write.txt");
    std::string error;
    ASSERT_TRUE(support::writeFileAtomically(path, "first\n", &error))
        << error;
    EXPECT_EQ(slurp(path), "first\n");
    ASSERT_TRUE(
        support::writeFileAtomically(path, "second\n", &error))
        << error;
    EXPECT_EQ(slurp(path), "second\n");

    // The temp file must not survive a successful rename.
    std::ifstream tmp(path + ".tmp." +
                      std::to_string(::getpid()));
    EXPECT_FALSE(tmp.good());

    // An unwritable directory reports instead of crashing.
    EXPECT_FALSE(support::writeFileAtomically(
        "/nonexistent-dir/x.txt", "y", &error));
    EXPECT_FALSE(error.empty());
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// Retry policy and containment.

TEST(ResilienceRetry, BackoffDeterministicJitteredAndBounded)
{
    resilience::RetryPolicy policy;
    policy.backoffSeconds = 0.1;
    policy.multiplier = 2.0;
    policy.jitterFraction = 0.1;

    // Deterministic per (pair, attempt)...
    const double b11 = resilience::retryBackoffSeconds(policy, 1, 1);
    EXPECT_EQ(resilience::retryBackoffSeconds(policy, 1, 1), b11);
    // ...but distinct streams for other pairs/attempts.
    EXPECT_NE(resilience::retryBackoffSeconds(policy, 2, 1), b11);

    // Within the jitter envelope around base * multiplier^(n-1).
    for (std::size_t attempt = 1; attempt <= 3; ++attempt) {
        const double base =
            0.1 * std::pow(2.0, static_cast<double>(attempt - 1));
        const double b =
            resilience::retryBackoffSeconds(policy, 7, attempt);
        EXPECT_GE(b, base * 0.9);
        EXPECT_LE(b, base * 1.1);
    }

    // Worst case covers every retry of one cell.
    policy.jitterFraction = 0.0;
    EXPECT_NEAR(resilience::worstCaseBackoffSeconds(policy),
                0.1 + 0.2, 1e-12);
}

TEST(ResilienceRetry, GuardRetriesUntilSuccess)
{
    resilience::RetryPolicy policy;
    policy.maxAttempts = 5;
    std::size_t calls = 0;
    const auto outcome = resilience::guardPair(
        policy, 3, [&](std::size_t attempt, std::string &error) {
            ++calls;
            if (attempt < 2) {
                error = "transient";
                return false;
            }
            return true;
        });
    EXPECT_EQ(outcome.state, pipeline::CellState::Measured);
    EXPECT_EQ(outcome.attempts, 3u);
    EXPECT_EQ(calls, 3u);
    EXPECT_GT(outcome.backoffSeconds, 0.0);
    EXPECT_TRUE(outcome.lastError.empty());
}

TEST(ResilienceRetry, GuardExhaustionDegradesAndKeepsLastError)
{
    resilience::RetryPolicy policy;
    policy.maxAttempts = 3;
    const auto outcome = resilience::guardPair(
        policy, 0, [&](std::size_t attempt, std::string &error) {
            error = "attempt " + std::to_string(attempt) + " failed";
            return false;
        });
    EXPECT_EQ(outcome.state, pipeline::CellState::Degraded);
    EXPECT_EQ(outcome.attempts, 3u);
    EXPECT_EQ(outcome.lastError, "attempt 2 failed");

    // Exceptions are contained exactly like explicit failures.
    const auto thrown = resilience::guardPair(
        policy, 1, [&](std::size_t, std::string &) -> bool {
            throw resilience::InjectedFault("boom");
        });
    EXPECT_EQ(thrown.state, pipeline::CellState::Degraded);
    EXPECT_EQ(thrown.lastError, "boom");
}

TEST(ResilienceRetry, LintRejectsUnusablePolicies)
{
    analysis::Report report;
    resilience::RetryPolicy policy;
    policy.maxAttempts = 0;
    resilience::lintRetryPolicy(policy, 1.0, report);
    ASSERT_TRUE(report.hasErrors());
    EXPECT_EQ(report.diagnostics().front().id,
              analysis::DiagId::RetryPolicyInvalid);

    // A sane policy against a generous budget is clean.
    analysis::Report clean;
    resilience::lintRetryPolicy(resilience::RetryPolicy{}, 10.0,
                                clean);
    EXPECT_TRUE(clean.diagnostics().empty());

    // A backoff schedule dwarfing the measurement is flagged.
    analysis::Report slow;
    resilience::RetryPolicy heavy;
    heavy.backoffSeconds = 30.0;
    resilience::lintRetryPolicy(heavy, 0.001, slow);
    ASSERT_EQ(slow.count(analysis::Severity::Warning), 1u);
    EXPECT_EQ(slow.diagnostics().front().id,
              analysis::DiagId::RetryBackoffExcessive);
}

// ---------------------------------------------------------------
// Fault plans.

TEST(ResilienceFault, ParsesTheFullGrammar)
{
    resilience::FaultPlan plan;
    std::string error;
    ASSERT_TRUE(resilience::parseFaultPlan(
        "nan@5,inf@every:3,throw@rate:0.25:always,trunc@0,die@7",
        plan, &error))
        << error;
    ASSERT_EQ(plan.rules.size(), 5u);
    EXPECT_EQ(plan.rules[0].kind, resilience::FaultKind::Nan);
    EXPECT_EQ(plan.rules[0].index, 5u);
    EXPECT_EQ(plan.rules[1].target,
              resilience::FaultRule::Target::Every);
    EXPECT_EQ(plan.rules[1].period, 3u);
    EXPECT_EQ(plan.rules[2].target,
              resilience::FaultRule::Target::Rate);
    EXPECT_TRUE(plan.rules[2].always);
    EXPECT_EQ(plan.rules[3].kind,
              resilience::FaultKind::TruncateCheckpoint);
    EXPECT_EQ(plan.rules[4].kind, resilience::FaultKind::Die);

    // An empty spec is a valid empty plan.
    resilience::FaultPlan empty;
    EXPECT_TRUE(resilience::parseFaultPlan("", empty, &error));
    EXPECT_TRUE(empty.empty());

    for (const char *bad :
         {"bogus@1", "nan", "nan@", "nan@every:0", "nan@rate:1.5",
          "nan@-3", "nan@1:sometimes"}) {
        resilience::FaultPlan p;
        EXPECT_FALSE(resilience::parseFaultPlan(bad, p, &error))
            << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

TEST(ResilienceFault, MatchingIsDeterministic)
{
    resilience::FaultPlan plan;
    ASSERT_TRUE(
        resilience::parseFaultPlan("nan@every:2", plan, nullptr));
    const resilience::FaultInjector injector(plan, 42);
    for (std::size_t i = 0; i < 10; ++i) {
        const auto *fault = injector.measurementFault(i, 0);
        EXPECT_EQ(fault != nullptr, i % 2 == 0) << i;
        // Without :always the rule fires on the first attempt only,
        // so containment retries recover a clean cell.
        EXPECT_EQ(injector.measurementFault(i, 1), nullptr) << i;
    }

    // rate: matching is a pure function of (seed, index).
    resilience::FaultPlan rate;
    ASSERT_TRUE(
        resilience::parseFaultPlan("nan@rate:0.5", rate, nullptr));
    const resilience::FaultInjector ia(rate, 7), ib(rate, 7);
    std::size_t fired = 0;
    for (std::size_t i = 0; i < 200; ++i) {
        EXPECT_EQ(ia.measurementFault(i, 0) != nullptr,
                  ib.measurementFault(i, 0) != nullptr);
        fired += ia.measurementFault(i, 0) != nullptr;
    }
    EXPECT_GT(fired, 60u);
    EXPECT_LT(fired, 140u);
}

TEST(ResilienceFault, LintFlagsInvalidAndUnreachablePlans)
{
    analysis::Report report;
    resilience::lintFaultPlan("bogus@1", 121, report);
    ASSERT_TRUE(report.hasErrors());
    EXPECT_EQ(report.diagnostics().front().id,
              analysis::DiagId::FaultPlanInvalid);

    analysis::Report unreachable;
    resilience::lintFaultPlan("nan@500", 121, unreachable);
    EXPECT_FALSE(unreachable.hasErrors());
    ASSERT_EQ(unreachable.count(analysis::Severity::Warning), 1u);
    EXPECT_EQ(unreachable.diagnostics().front().id,
              analysis::DiagId::FaultPlanUnreachable);

    analysis::Report clean;
    resilience::lintFaultPlan("nan@120,die@0", 121, clean);
    EXPECT_TRUE(clean.diagnostics().empty());
}

// ---------------------------------------------------------------
// Checkpoint serialization.

core::CampaignConfig
smallConfig()
{
    core::CampaignConfig cfg;
    cfg.events = {EventKind::ADD, EventKind::LDM, EventKind::MUL};
    cfg.repetitions = 2;
    cfg.jobs = 1;
    return cfg;
}

resilience::CampaignCheckpoint
checkpointOf(const core::CampaignConfig &cfg, const std::string &path)
{
    auto withCheckpoint = cfg;
    withCheckpoint.checkpointPath = path;
    (void)core::runCampaign(withCheckpoint);
    auto parsed = resilience::loadCheckpointFile(path);
    EXPECT_TRUE(parsed.ok) << parsed.error;
    return parsed.checkpoint;
}

TEST(ResilienceCheckpoint, SaveLoadByteExactRoundTrip)
{
    const auto path = tempPath("roundtrip.ckpt");
    const auto cfg = smallConfig();
    (void)checkpointOf(cfg, path);
    const auto first = slurp(path);

    // load -> save reproduces the file byte for byte.
    std::istringstream in(first);
    const auto parsed = resilience::loadCheckpoint(in);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const auto &cp = parsed.checkpoint;
    EXPECT_EQ(cp.machineId, "core2duo");
    EXPECT_EQ(cp.repetitions, 2u);
    EXPECT_EQ(cp.events.size(), 3u);
    EXPECT_EQ(cp.cells.size(), 9u);
    for (const auto &cell : cp.cells) {
        EXPECT_EQ(cell.samples.size(), 2u);
        EXPECT_TRUE(cell.sim.measured());
    }
    std::ostringstream out;
    resilience::saveCheckpoint(out, cp);
    EXPECT_EQ(out.str(), first);
    std::remove(path.c_str());
}

TEST(ResilienceCheckpoint, RejectsDamage)
{
    const auto path = tempPath("damage.ckpt");
    (void)checkpointOf(smallConfig(), path);
    const auto good = slurp(path);
    std::remove(path.c_str());

    // One flipped byte in the payload: the CRC footer catches it.
    auto flipped = good;
    flipped[good.size() / 2] ^= 0x01;
    std::istringstream fin(flipped);
    auto res = resilience::loadCheckpoint(fin);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("crc"), std::string::npos)
        << res.error;

    // A torn write: truncated to half, byte offset reported.
    std::istringstream tin(good.substr(0, good.size() / 2));
    res = resilience::loadCheckpoint(tin);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("byte"), std::string::npos)
        << res.error;

    // Not a checkpoint at all.
    std::istringstream junk("savage-checkpoint v9\n");
    EXPECT_FALSE(resilience::loadCheckpoint(junk).ok);
    std::istringstream empty("");
    EXPECT_FALSE(resilience::loadCheckpoint(empty).ok);
}

// ---------------------------------------------------------------
// Campaign integration: containment and fault injection.

std::string
fixtureOf(const core::CampaignResult &res)
{
    std::ostringstream oss;
    core::printMatrixFixture(oss, res.matrix);
    return oss.str();
}

TEST(ResilienceCampaign, RetriesRecoverTheCleanMatrix)
{
    const auto clean = core::runCampaign(smallConfig());

    auto cfg = smallConfig();
    cfg.faultPlan = "nan@every:1";
    const auto faulted = core::runCampaign(cfg);

    // Every pair took one poisoned attempt and one clean retry; the
    // retry re-forks the repetition streams, so the matrix is the
    // one an undisturbed run produces, bit for bit.
    EXPECT_EQ(fixtureOf(faulted), fixtureOf(clean));
    EXPECT_EQ(faulted.retriedCells(), faulted.pairs.size());
    EXPECT_EQ(faulted.degradedCells(), 0u);
    for (const auto &h : faulted.health)
        EXPECT_EQ(h.attempts, 2u);
}

TEST(ResilienceCampaign, ThrowFaultsAreContained)
{
    auto cfg = smallConfig();
    cfg.faultPlan = "throw@1,inf@4";
    const auto res = core::runCampaign(cfg);
    EXPECT_EQ(fixtureOf(res), fixtureOf(core::runCampaign(smallConfig())));
    EXPECT_EQ(res.retriedCells(), 2u);
    EXPECT_EQ(res.degradedCells(), 0u);
}

TEST(ResilienceCampaign, ExhaustedRetriesDegradeNotAbort)
{
    auto cfg = smallConfig();
    cfg.faultPlan = "nan@4:always"; // the LDM/LDM diagonal cell
    const auto res = core::runCampaign(cfg);

    ASSERT_EQ(res.degradedCells(), 1u);
    const auto &h = res.health[4];
    EXPECT_EQ(h.state, pipeline::CellState::Degraded);
    EXPECT_EQ(h.attempts, cfg.retry.maxAttempts);
    EXPECT_NE(h.lastError.find("non-finite"), std::string::npos)
        << h.lastError;

    // The degraded cell contributes nothing; every other cell is
    // exactly the clean campaign's.
    const auto clean = core::runCampaign(smallConfig());
    EXPECT_TRUE(res.matrix.samples(1, 1).empty());
    for (std::size_t a = 0; a < 3; ++a) {
        for (std::size_t b = 0; b < 3; ++b) {
            if (a == 1 && b == 1)
                continue;
            EXPECT_EQ(res.matrix.samples(a, b),
                      clean.matrix.samples(a, b));
        }
    }
}

TEST(ResilienceCampaignDeath, ReadingADegradedCellPanics)
{
    auto cfg = smallConfig();
    cfg.faultPlan = "nan@4:always";
    const auto res = core::runCampaign(cfg);
    EXPECT_EXIT((void)res.simulation(1, 1),
                ::testing::KilledBySignal(SIGABRT), "degraded");
}

TEST(ResilienceCampaignDeath, DieFaultExits137AfterCheckpoint)
{
    const auto path = tempPath("die.ckpt");
    auto cfg = smallConfig();
    cfg.faultPlan = "die@4";
    cfg.checkpointPath = path;
    EXPECT_EXIT((void)core::runCampaign(cfg),
                ::testing::ExitedWithCode(137), "dying after pair");

    // The flushed checkpoint holds the five finished cells.
    const auto parsed = resilience::loadCheckpointFile(path);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.checkpoint.cells.size(), 5u);
    std::remove(path.c_str());
}

TEST(ResilienceCampaignDeath, MismatchedResumeIsFatal)
{
    const auto path = tempPath("mismatch.ckpt");
    (void)checkpointOf(smallConfig(), path);

    auto other = smallConfig();
    other.seed ^= 1; // different RNG universe: refuse to mix
    other.resumePath = path;
    EXPECT_EXIT((void)core::runCampaign(other),
                ::testing::ExitedWithCode(1), "does not match");
    std::remove(path.c_str());
}

TEST(ResilienceCampaignDeath, CorruptResumeFileIsFatal)
{
    const auto path = tempPath("corrupt.ckpt");
    (void)checkpointOf(smallConfig(), path);
    auto bytes = slurp(path);
    bytes[bytes.size() / 3] ^= 0x02;
    std::ofstream(path, std::ios::binary) << bytes;

    auto cfg = smallConfig();
    cfg.resumePath = path;
    EXPECT_EXIT((void)core::runCampaign(cfg),
                ::testing::ExitedWithCode(1), "cannot resume");
    std::remove(path.c_str());
}

TEST(ResilienceCampaign, TruncFaultTearsTheCheckpointAtomically)
{
    // trunc@0 cuts the first checkpoint write short. The torn file
    // still arrives via temp-file + rename, and the CRC gate reports
    // the damage instead of resuming from half a campaign.
    const auto path = tempPath("trunc.ckpt");
    auto cfg = smallConfig();
    cfg.faultPlan = "trunc@0";
    cfg.checkpointPath = path;
    cfg.checkpointEvery = 1000; // only the final write happens
    (void)core::runCampaign(cfg);
    const auto parsed = resilience::loadCheckpointFile(path);
    EXPECT_FALSE(parsed.ok);
    EXPECT_NE(parsed.error.find("byte"), std::string::npos)
        << parsed.error;
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// Recording CRC footer (satellite of the same hardening).

TEST(ResilienceRecording, CrcFooterGuardsTheRecording)
{
    auto cfg = smallConfig();
    cfg.keepTraces = true;
    const auto rec = core::recordCampaign(core::runCampaign(cfg));

    std::ostringstream oss;
    pipeline::saveRecording(oss, rec);
    const auto good = oss.str();
    EXPECT_NE(good.find("\ncrc32 "), std::string::npos);

    std::istringstream gin(good);
    EXPECT_TRUE(pipeline::loadRecording(gin).ok);

    auto flipped = good;
    flipped[good.size() / 2] ^= 0x01;
    std::istringstream fin(flipped);
    const auto res = pipeline::loadRecording(fin);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("crc"), std::string::npos)
        << res.error;

    // A missing footer on a v2 file reads as truncation.
    const auto cut = good.substr(0, good.rfind("crc32 "));
    std::istringstream tin(cut);
    EXPECT_FALSE(pipeline::loadRecording(tin).ok);
}

// ---------------------------------------------------------------
// The headline property: kill the campaign mid-matrix, resume from
// the checkpoint, and the fixture is byte-identical to the golden
// uninterrupted run -- serial and parallel.

class CheckpointResumeGolden : public ::testing::Test
{
  protected:
    static std::string
    golden()
    {
        std::ifstream in(SAVAT_SOURCE_DIR
                         "/tests/data/golden_em_core2duo.fixture",
                         std::ios::binary);
        EXPECT_TRUE(in.good());
        std::ostringstream oss;
        oss << in.rdbuf();
        return oss.str();
    }

    /**
     * The interrupted first run: the golden campaign's first 40
     * pairs, checkpointed. (runCampaignPairs stands in for the
     * SIGKILL: what is on disk afterwards is exactly the file a
     * die@39 run flushes -- the check.sh gate covers the literal
     * kill -9 path through the CLI.)
     */
    static void
    partialRun(const std::string &path)
    {
        core::CampaignConfig cfg;
        cfg.repetitions = 2;
        cfg.jobs = 4;
        cfg.checkpointPath = path;
        const auto events = kernels::allEvents();
        std::vector<std::pair<EventKind, EventKind>> pairs;
        for (std::size_t p = 0; p < 40; ++p)
            pairs.emplace_back(events[p / events.size()],
                               events[p % events.size()]);
        (void)core::runCampaignPairs(cfg, pairs);
    }

    static void
    resumeMatchesGolden(std::size_t jobs)
    {
        const auto path = tempPath(
            "resume_golden_" + std::to_string(jobs) + ".ckpt");
        partialRun(path);

        core::CampaignConfig cfg;
        cfg.repetitions = 2;
        cfg.jobs = jobs;
        cfg.resumePath = path;
        const auto res = core::runCampaign(cfg);
        EXPECT_EQ(res.restoredCells(), 40u);
        EXPECT_EQ(res.degradedCells(), 0u);

        std::ostringstream oss;
        core::printMatrixFixture(oss, res.matrix);
        EXPECT_EQ(oss.str(), golden());
        std::remove(path.c_str());
    }
};

TEST_F(CheckpointResumeGolden, Jobs1)
{
    resumeMatchesGolden(1);
}

TEST_F(CheckpointResumeGolden, Jobs4)
{
    resumeMatchesGolden(4);
}

} // namespace
} // namespace savat
