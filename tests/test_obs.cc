/**
 * @file
 * Tests for savat::obs — metric correctness, shard merging under
 * real parallel load, trace export well-formedness, zero-cost
 * disabled paths, and the headline guarantee: telemetry does not
 * perturb the campaign's bit-exact determinism.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hh"
#include "support/obs.hh"
#include "support/parallel.hh"
#include "support/progress.hh"

namespace savat::obs {
namespace {

/**
 * Minimal JSON validity checker (objects, arrays, strings with
 * escapes, numbers, literals). Good enough to reject anything a
 * strict parser would choke on in our exports.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : _s(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return _pos == _s.size();
    }

  private:
    bool
    value()
    {
        if (_pos >= _s.size())
            return false;
        switch (_s[_pos]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++_pos; // '{'
        skipWs();
        if (peek() == '}') {
            ++_pos;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++_pos;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++_pos;
                continue;
            }
            if (peek() == '}') {
                ++_pos;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++_pos; // '['
        skipWs();
        if (peek() == ']') {
            ++_pos;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++_pos;
                continue;
            }
            if (peek() == ']') {
                ++_pos;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++_pos;
        while (_pos < _s.size() && _s[_pos] != '"') {
            if (_s[_pos] == '\\') {
                ++_pos;
                if (_pos >= _s.size())
                    return false;
            }
            ++_pos;
        }
        if (_pos >= _s.size())
            return false;
        ++_pos; // closing quote
        return true;
    }

    bool
    number()
    {
        const std::size_t start = _pos;
        if (peek() == '-')
            ++_pos;
        while (_pos < _s.size() &&
               (std::isdigit(static_cast<unsigned char>(_s[_pos])) ||
                _s[_pos] == '.' || _s[_pos] == 'e' ||
                _s[_pos] == 'E' || _s[_pos] == '+' ||
                _s[_pos] == '-')) {
            ++_pos;
        }
        return _pos > start;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::string(word).size();
        if (_s.compare(_pos, len, word) != 0)
            return false;
        _pos += len;
        return true;
    }

    char
    peek() const
    {
        return _pos < _s.size() ? _s[_pos] : '\0';
    }

    void
    skipWs()
    {
        while (_pos < _s.size() &&
               (_s[_pos] == ' ' || _s[_pos] == '\n' ||
                _s[_pos] == '\t' || _s[_pos] == '\r')) {
            ++_pos;
        }
    }

    const std::string &_s;
    std::size_t _pos = 0;
};

/** Every test starts and ends with telemetry off and empty. */
class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setMetricsEnabled(false);
        setTraceEnabled(false);
        Registry::instance().reset();
        clearTrace();
    }

    void
    TearDown() override
    {
        setMetricsEnabled(false);
        setTraceEnabled(false);
        Registry::instance().reset();
        clearTrace();
    }
};

TEST_F(ObsTest, CounterAddsAndResets)
{
    setMetricsEnabled(true);
    auto &c = Registry::instance().counter("test.counter");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, DisabledRecordingIsANoOp)
{
    auto &c = Registry::instance().counter("test.disabled");
    auto &h = Registry::instance().histogram("test.disabled_h");
    auto &g = Registry::instance().gauge("test.disabled_g");
    ASSERT_FALSE(metricsEnabled());
    c.add(7);
    h.record(1.5);
    g.set(3.0);
    SAVAT_METRIC_COUNT("test.disabled_macro");
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.snapshot().count, 0u);
    EXPECT_EQ(g.value(), 0.0);
    setMetricsEnabled(true);
    EXPECT_EQ(
        Registry::instance().counter("test.disabled_macro").value(),
        0u);
}

TEST_F(ObsTest, MacroArgumentsNotEvaluatedWhileDisabled)
{
    int evaluations = 0;
    auto probe = [&]() {
        ++evaluations;
        return std::uint64_t{1};
    };
    SAVAT_METRIC_ADD("test.macro_args", probe());
    EXPECT_EQ(evaluations, 0);
    setMetricsEnabled(true);
    SAVAT_METRIC_ADD("test.macro_args", probe());
    EXPECT_EQ(evaluations, 1);
    EXPECT_EQ(
        Registry::instance().counter("test.macro_args").value(), 1u);
}

TEST_F(ObsTest, HistogramExactStatistics)
{
    setMetricsEnabled(true);
    auto &h = Registry::instance().histogram("test.hist");
    for (double v : {2.0, 4.0, 6.0, 8.0})
        h.record(v);
    const auto s = h.snapshot();
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.sum, 20.0);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 8.0);
    // Quantiles come from log2 buckets but are clamped to the exact
    // observed range.
    EXPECT_GE(s.p50, s.min);
    EXPECT_LE(s.p50, s.max);
    EXPECT_GE(s.p95, s.p50);
    EXPECT_LE(s.p95, s.max);
}

TEST_F(ObsTest, HistogramSingleValueQuantilesCollapse)
{
    setMetricsEnabled(true);
    auto &h = Registry::instance().histogram("test.hist_single");
    for (int i = 0; i < 100; ++i)
        h.record(3.25);
    const auto s = h.snapshot();
    EXPECT_DOUBLE_EQ(s.p50, 3.25);
    EXPECT_DOUBLE_EQ(s.p95, 3.25);
}

TEST_F(ObsTest, HistogramQuantilesAreOrderOfMagnitudeAccurate)
{
    setMetricsEnabled(true);
    auto &h = Registry::instance().histogram("test.hist_quant");
    for (int i = 1; i <= 1000; ++i)
        h.record(static_cast<double>(i));
    const auto s = h.snapshot();
    // Exact p50 = 500, p95 = 950; log2 buckets give the right
    // power of two.
    EXPECT_GE(s.p50, 250.0);
    EXPECT_LE(s.p50, 1000.0);
    EXPECT_GE(s.p95, 500.0);
    EXPECT_LE(s.p95, 1000.0);
    EXPECT_LE(s.p50, s.p95);
}

TEST_F(ObsTest, HistogramSnapshotCarriesTailQuantileAndCount)
{
    setMetricsEnabled(true);
    auto &h = Registry::instance().histogram("test.hist_tail");
    for (int i = 1; i <= 1000; ++i)
        h.record(static_cast<double>(i));
    const auto s = h.snapshot();
    EXPECT_EQ(s.count, 1000u);
    // Exact p99 = 990; log2 buckets keep it above p95 and clamped
    // to the observed maximum.
    EXPECT_GE(s.p99, s.p95);
    EXPECT_GE(s.p99, 500.0);
    EXPECT_LE(s.p99, 1000.0);
    EXPECT_LE(s.p50, s.p99);
    EXPECT_LE(s.p99, s.max);
}

TEST_F(ObsTest, JsonDumpCarriesP99AndSampleCount)
{
    setMetricsEnabled(true);
    auto &h = Registry::instance().histogram("json.p99_hist");
    for (int i = 0; i < 7; ++i)
        h.record(1.5);
    std::ostringstream os;
    Registry::instance().writeJson(os);
    const std::string text = os.str();
    EXPECT_TRUE(JsonChecker(text).valid()) << text;
    EXPECT_NE(text.find("\"p99\""), std::string::npos) << text;
    EXPECT_NE(text.find("\"count\": 7"), std::string::npos) << text;
}

TEST_F(ObsTest, PrometheusExpositionCarriesQuantilesAndCount)
{
    setMetricsEnabled(true);
    Registry::instance().counter("prom.counter").add(2);
    auto &h = Registry::instance().histogram("prom.hist");
    for (int i = 0; i < 5; ++i)
        h.record(0.25);
    std::ostringstream os;
    writePrometheusText(os, Registry::instance().snapshot());
    const std::string text = os.str();
    EXPECT_NE(text.find("savat_prom_counter 2"), std::string::npos)
        << text;
    EXPECT_NE(text.find("savat_prom_hist{quantile=\"0.99\"}"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("savat_prom_hist_count 5"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("savat_prom_hist_sum"), std::string::npos)
        << text;
}

TEST_F(ObsTest, ShardsMergeExactlyUnderParallelLoad)
{
    setMetricsEnabled(true);
    auto &c = Registry::instance().counter("test.parallel_counter");
    auto &h = Registry::instance().histogram("test.parallel_hist");
    constexpr std::size_t kN = 10000;
    support::parallelFor(
        kN,
        [&](std::size_t i) {
            c.add();
            h.record(static_cast<double>(i % 17) + 1.0);
        },
        8);
    EXPECT_EQ(c.value(), kN);
    const auto s = h.snapshot();
    EXPECT_EQ(s.count, kN);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 17.0);
}

TEST_F(ObsTest, GaugeStoresLastValue)
{
    setMetricsEnabled(true);
    auto &g = Registry::instance().gauge("test.gauge");
    g.set(4.0);
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST_F(ObsTest, ScopedTimerRecordsSeconds)
{
    setMetricsEnabled(true);
    auto &h = Registry::instance().histogram("test.timer");
    {
        ScopedTimer t(h);
    }
    const auto s = h.snapshot();
    EXPECT_EQ(s.count, 1u);
    EXPECT_GE(s.min, 0.0);
    EXPECT_LT(s.max, 60.0); // sanity: not wildly wrong
}

TEST_F(ObsTest, RegistryJsonIsWellFormed)
{
    setMetricsEnabled(true);
    Registry::instance().counter("json.counter").add(3);
    Registry::instance().gauge("json.gauge").set(1.25);
    Registry::instance().histogram("json.hist").record(0.5);
    std::ostringstream os;
    Registry::instance().writeJson(os);
    const std::string text = os.str();
    EXPECT_TRUE(JsonChecker(text).valid()) << text;
    EXPECT_NE(text.find("\"savat.metrics.v1\""), std::string::npos);
    EXPECT_NE(text.find("\"json.counter\": 3"), std::string::npos);
}

TEST_F(ObsTest, EmptyRegistryJsonIsWellFormed)
{
    std::ostringstream os;
    Registry::instance().writeJson(os);
    EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

TEST_F(ObsTest, TableOutputMentionsEveryMetric)
{
    setMetricsEnabled(true);
    Registry::instance().counter("tbl.counter").add(3);
    Registry::instance().histogram("tbl.hist").record(2.0);
    std::ostringstream os;
    Registry::instance().writeTable(os);
    EXPECT_NE(os.str().find("tbl.counter"), std::string::npos);
    EXPECT_NE(os.str().find("tbl.hist"), std::string::npos);
}

TEST_F(ObsTest, TraceSpansExportAsChromeJson)
{
    setTraceEnabled(true);
    {
        SAVAT_TRACE_SPAN("test.outer",
                         {{"label", "abc"},
                          {"n", 42},
                          {"x", 1.5},
                          {"flag", true}});
        SAVAT_TRACE_SPAN("test.inner", {});
    }
    EXPECT_EQ(traceEventCount(), 2u);
    std::ostringstream os;
    writeTraceJson(os);
    const std::string text = os.str();
    EXPECT_TRUE(JsonChecker(text).valid()) << text;
    EXPECT_NE(text.find("\"test.outer\""), std::string::npos);
    EXPECT_NE(text.find("\"test.inner\""), std::string::npos);
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"n\": 42"), std::string::npos);
    EXPECT_NE(text.find("\"label\": \"abc\""), std::string::npos);
    EXPECT_NE(text.find("\"flag\": true"), std::string::npos);

    clearTrace();
    EXPECT_EQ(traceEventCount(), 0u);
}

TEST_F(ObsTest, EmptyTraceJsonIsWellFormed)
{
    std::ostringstream os;
    writeTraceJson(os);
    EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

TEST_F(ObsTest, DisabledSpansRecordNothing)
{
    ASSERT_FALSE(traceEnabled());
    {
        SAVAT_TRACE_SPAN("test.disabled_span", {{"k", 1}});
    }
    EXPECT_EQ(traceEventCount(), 0u);
}

TEST_F(ObsTest, SpansFromWorkerThreadsAllExport)
{
    setTraceEnabled(true);
    support::parallelFor(
        32,
        [&](std::size_t i) {
            SAVAT_TRACE_SPAN("test.worker_span", {{"i", i}});
        },
        4);
    EXPECT_EQ(traceEventCount(), 32u);
    std::ostringstream os;
    writeTraceJson(os);
    EXPECT_TRUE(JsonChecker(os.str()).valid());
}

TEST_F(ObsTest, DumpMetricsNowWritesParseableFile)
{
    setMetricsEnabled(true);
    Registry::instance().counter("dump.counter").add(5);
    const std::string path =
        ::testing::TempDir() + "savat_obs_metrics.json";
    ASSERT_TRUE(dumpMetricsNow(path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_TRUE(JsonChecker(ss.str()).valid()) << ss.str();
    EXPECT_NE(ss.str().find("dump.counter"), std::string::npos);
    std::remove(path.c_str());
}

TEST_F(ObsTest, CurrentWorkerTagsOnlyTeamThreads)
{
    EXPECT_EQ(support::currentWorker(), -1);
    std::atomic<int> bad{0};
    support::runWorkers(3, [&](std::size_t w) {
        const int id = support::currentWorker();
        if (id != static_cast<int>(w))
            bad.fetch_add(1);
    });
    EXPECT_EQ(bad.load(), 0);
    // Single-worker teams run inline and stay untagged.
    support::runWorkers(1, [&](std::size_t) {
        EXPECT_EQ(support::currentWorker(), -1);
    });
    EXPECT_EQ(support::currentWorker(), -1);
}

TEST_F(ObsTest, ProgressMeterRateLimitsUpdates)
{
    std::ostringstream sink;
    ProgressMeter meter("test", 10.0, &sink);
    constexpr std::size_t kTotal = 5000;
    for (std::size_t i = 1; i <= kTotal; ++i)
        meter.update(i, kTotal);
    const std::string out = sink.str();
    std::size_t lines = 0;
    for (char ch : out) {
        if (ch == '\r')
            ++lines;
    }
    // A tight loop finishes in well under a second: the first and
    // final updates print, the flood in between is throttled away.
    EXPECT_GE(lines, 2u);
    EXPECT_LE(lines, 20u);
    EXPECT_NE(out.find("test 5000/5000 (100.0%)"),
              std::string::npos);
    EXPECT_NE(out.find(" in "), std::string::npos);
}

TEST_F(ObsTest, ProgressMeterUnthrottledPrintsEverything)
{
    std::ostringstream sink;
    ProgressMeter meter("all", 0.0, &sink);
    for (std::size_t i = 1; i <= 7; ++i)
        meter.update(i, 7);
    std::size_t lines = 0;
    for (char ch : sink.str()) {
        if (ch == '\r')
            ++lines;
    }
    EXPECT_EQ(lines, 7u);
}

TEST_F(ObsTest, CampaignStaysBitExactWithTelemetryOn)
{
    using kernels::EventKind;
    core::CampaignConfig cfg;
    cfg.machineId = "core2duo";
    cfg.events = {EventKind::ADD, EventKind::LDM};
    cfg.repetitions = 2;
    cfg.seed = 99;
    cfg.jobs = 4;

    ASSERT_FALSE(metricsEnabled());
    ASSERT_FALSE(traceEnabled());
    const auto quiet = core::runCampaign(cfg);

    setMetricsEnabled(true);
    setTraceEnabled(true);
    const auto traced = core::runCampaign(cfg);

    // Telemetry recorded real work...
    EXPECT_GT(
        Registry::instance().counter("campaign.cells").value(), 0u);
    EXPECT_GT(traceEventCount(), 0u);

    // ...and changed not a single bit of the output.
    ASSERT_EQ(quiet.matrix.size(), traced.matrix.size());
    for (std::size_t a = 0; a < quiet.matrix.size(); ++a) {
        for (std::size_t b = 0; b < quiet.matrix.size(); ++b) {
            const auto &qs = quiet.matrix.samples(a, b);
            const auto &ts = traced.matrix.samples(a, b);
            ASSERT_EQ(qs.size(), ts.size());
            for (std::size_t r = 0; r < qs.size(); ++r) {
                EXPECT_EQ(qs[r], ts[r])
                    << "cell " << a << "," << b << " rep " << r;
            }
        }
    }
}

} // namespace
} // namespace savat::obs
