/**
 * @file
 * Tests for the savat::analysis static checker: every diagnostic ID
 * fires on a deliberately broken spec, the seed configurations stay
 * diagnostic-free, and Campaign/Meter refuse error-level specs.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "analysis/checker.hh"
#include "core/campaign.hh"
#include "core/meter.hh"
#include "kernels/generator.hh"
#include "uarch/machine.hh"

using namespace savat;
using namespace savat::analysis;
using kernels::EventKind;

namespace {

CampaignSpec
parseOrDie(const std::string &text)
{
    std::istringstream in(text);
    const auto res = parseCampaignSpec(in, "test.spec");
    EXPECT_TRUE(res.ok) << "line " << res.errorLine << ": "
                        << res.error;
    return res.spec;
}

Report
checkText(const std::string &text)
{
    return Checker{}.check(parseOrDie(text));
}

/** A spec equivalent to the paper's Section V setup; must be clean. */
const char *const kValidSpec = R"(# unit-test baseline
campaign unit-test
machine core2duo
events ADD LDM
repetitions 10
alternation 80 kHz
distance 10 cm
band 1000 Hz
span 2000 Hz
rbw 1 Hz
)";

} // namespace

// ---------------------------------------------------------------
// Diagnostic / Report plumbing
// ---------------------------------------------------------------

TEST(Diagnostics, IdNamesAreUniqueAndStable)
{
    std::set<std::string> names, slugs;
    for (std::size_t i = 0; i < kNumDiagIds; ++i) {
        const auto id = static_cast<DiagId>(i);
        names.insert(diagIdName(id));
        slugs.insert(diagIdSlug(id));
    }
    EXPECT_EQ(names.size(), kNumDiagIds);
    EXPECT_EQ(slugs.size(), kNumDiagIds);
    EXPECT_STREQ(diagIdName(DiagId::BurstUnsolvable), "SAV-B001");
    EXPECT_STREQ(diagIdName(DiagId::UnknownMachine), "SAV-C001");
    EXPECT_STREQ(diagIdSlug(DiagId::BandExceedsSpan),
                 "band-exceeds-span");
}

TEST(Diagnostics, BuiltInSeverities)
{
    EXPECT_EQ(diagIdSeverity(DiagId::BurstUnsolvable), Severity::Error);
    EXPECT_EQ(diagIdSeverity(DiagId::BurstQuantized), Severity::Warning);
    EXPECT_EQ(diagIdSeverity(DiagId::DegeneratePair), Severity::Note);
    EXPECT_EQ(diagIdSeverity(DiagId::UnitMissing), Severity::Warning);
    EXPECT_EQ(diagIdSeverity(DiagId::UnitMismatch), Severity::Error);
}

TEST(Diagnostics, ReportAccounting)
{
    Report r;
    EXPECT_TRUE(r.empty());
    EXPECT_FALSE(r.hasErrors());
    r.add(DiagId::BandExceedsSpan, "band", "band outside span",
          "widen the span");
    r.add(DiagId::UnitMissing, "distance", "bare number");

    EXPECT_EQ(r.size(), 2u);
    EXPECT_EQ(r.count(Severity::Error), 1u);
    EXPECT_EQ(r.count(Severity::Warning), 1u);
    EXPECT_TRUE(r.has(DiagId::BandExceedsSpan));
    EXPECT_FALSE(r.has(DiagId::BurstUnsolvable));
    EXPECT_TRUE(r.hasErrors());

    Report other;
    other.add(DiagId::DegeneratePair, "pair", "A == A");
    r.merge(other);
    EXPECT_EQ(r.size(), 3u);
    EXPECT_EQ(r.count(Severity::Note), 1u);

    const std::string text = r.toString();
    EXPECT_NE(text.find("SAV-S001"), std::string::npos);
    EXPECT_NE(text.find("band-exceeds-span"), std::string::npos);
    EXPECT_NE(text.find("widen the span"), std::string::npos);

    const std::string errors = r.errorSummary();
    EXPECT_NE(errors.find("SAV-S001"), std::string::npos);
    EXPECT_EQ(errors.find("SAV-K004"), std::string::npos);
}

TEST(Diagnostics, ToStringCarriesLocation)
{
    Diagnostic d;
    d.id = DiagId::RbwTooCoarse;
    d.severity = Severity::Warning;
    d.message = "RBW too coarse";
    d.field = "rbw";
    d.hint = "use 1 Hz";
    d.file = "campaign.spec";
    d.line = 7;
    const std::string s = d.toString();
    EXPECT_NE(s.find("campaign.spec:7"), std::string::npos);
    EXPECT_NE(s.find("warning"), std::string::npos);
    EXPECT_NE(s.find("SAV-S002"), std::string::npos);
    EXPECT_NE(s.find("rbw"), std::string::npos);
}

// ---------------------------------------------------------------
// Spec parser
// ---------------------------------------------------------------

TEST(SpecParser, ParsesEveryField)
{
    const auto spec = parseOrDie(R"(campaign full
machine pentium3m
events ADD SUB
pair MUL DIV
repetitions 7
periods 16
alternation 40 kHz
distance 50 cm
band 500 Hz
span 1 kHz
rbw 10 Hz
pairing equal-counts
channel power
clock 1.0 GHz
l1 16 KiB
l2 1024 KiB
)");
    EXPECT_EQ(spec.name, "full");
    EXPECT_EQ(spec.machineId, "pentium3m");
    ASSERT_EQ(spec.events.size(), 2u);
    EXPECT_EQ(spec.events[0], EventKind::ADD);
    ASSERT_EQ(spec.pairs.size(), 1u);
    EXPECT_EQ(spec.pairs[0].first, EventKind::MUL);
    EXPECT_EQ(spec.pairs[0].second, EventKind::DIV);
    EXPECT_EQ(spec.repetitions, 7u);
    EXPECT_EQ(spec.settings.measurePeriods, 16u);
    EXPECT_DOUBLE_EQ(spec.settings.alternation.inHz(), 40e3);
    EXPECT_DOUBLE_EQ(spec.settings.distance.inMeters(), 0.5);
    EXPECT_DOUBLE_EQ(spec.settings.bandHz, 500.0);
    EXPECT_DOUBLE_EQ(spec.settings.spanHz, 1000.0);
    EXPECT_DOUBLE_EQ(spec.settings.rbwHz, 10.0);
    EXPECT_EQ(spec.settings.pairing, kernels::PairingMode::EqualCounts);
    EXPECT_TRUE(spec.settings.powerRail);
    ASSERT_TRUE(spec.clockOverride.has_value());
    EXPECT_DOUBLE_EQ(spec.clockOverride->inHz(), 1e9);
    ASSERT_TRUE(spec.l1SizeBytes.has_value());
    EXPECT_EQ(*spec.l1SizeBytes, 16u * 1024u);
    ASSERT_TRUE(spec.l2SizeBytes.has_value());
    EXPECT_EQ(*spec.l2SizeBytes, 1024u * 1024u);
    EXPECT_TRUE(spec.unitAudits.empty());
    EXPECT_EQ(spec.lineOf("alternation"), 7u);
    EXPECT_EQ(spec.lineOf("nonexistent"), 0u);
}

TEST(SpecParser, LineOfFallsBackInsteadOfReportingLineZero)
{
    // Fields no spec line carries verbatim — geometry of a machine
    // without overrides, per-event and per-kernel findings — must be
    // attributed to the line that configured them, never line 0.
    const auto spec = parseOrDie("campaign t\n"
                                 "machine core2duo\n"
                                 "events ADD LDM\n"
                                 "alternation 80 kHz\n");
    EXPECT_EQ(spec.lineOf("machine"), 2u);
    EXPECT_EQ(spec.lineOf("l1"), 2u);    // geometry -> machine line
    EXPECT_EQ(spec.lineOf("clock"), 2u);
    EXPECT_EQ(spec.lineOf("LDM"), 3u);   // event -> events line
    EXPECT_EQ(spec.lineOf("kernel"), 3u);
    EXPECT_EQ(spec.lineOf("alternation kernel"), 3u);
    // Pair findings beat events findings when a pair line exists.
    const auto paired = parseOrDie("machine core2duo\n"
                                   "pair LDM NOI\n");
    EXPECT_EQ(paired.lineOf("NOI"), 2u);
    // Genuinely unknown fields still report "no line".
    EXPECT_EQ(spec.lineOf("no-such-field"), 0u);
}

TEST(SpecParser, CommentsAndBlanksIgnored)
{
    const auto spec = parseOrDie("\n# full-line comment\n"
                                 "machine turionx2   # trailing\n\n");
    EXPECT_EQ(spec.machineId, "turionx2");
}

TEST(SpecParser, UnknownKeyIsHardError)
{
    std::istringstream in("machine core2duo\nfrequency 80 kHz\n");
    const auto res = parseCampaignSpec(in);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.errorLine, 2u);
    EXPECT_NE(res.error.find("unknown key"), std::string::npos);
}

TEST(SpecParser, UnknownEventIsHardError)
{
    std::istringstream in("events ADD FROB\n");
    const auto res = parseCampaignSpec(in);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("FROB"), std::string::npos);
}

TEST(SpecParser, MalformedNumberIsHardError)
{
    std::istringstream in("alternation eighty kHz\n");
    EXPECT_FALSE(parseCampaignSpec(in).ok);
}

TEST(SpecParser, BareNumberAuditedAndReadInCustomaryUnit)
{
    const auto spec = parseOrDie("distance 10\n");
    ASSERT_EQ(spec.unitAudits.size(), 1u);
    EXPECT_TRUE(spec.unitAudits[0].missing);
    EXPECT_EQ(spec.unitAudits[0].field, "distance");
    // Bare distances are read in the paper's centimeters.
    EXPECT_DOUBLE_EQ(spec.settings.distance.inMeters(), 0.1);
}

TEST(SpecParser, WrongDimensionAuditedKeepsDefault)
{
    const auto spec = parseOrDie("alternation 10 cm\n");
    ASSERT_EQ(spec.unitAudits.size(), 1u);
    EXPECT_FALSE(spec.unitAudits[0].missing);
    // The default survives so later checks stay meaningful.
    EXPECT_DOUBLE_EQ(spec.settings.alternation.inHz(), 80e3);
}

TEST(SpecParser, MachineOverridesApplied)
{
    const auto spec = parseOrDie("machine core2duo\nl2 2048 KiB\n");
    ASSERT_TRUE(spec.machineKnown());
    EXPECT_EQ(spec.machine().l2.sizeBytes, 2048u * 1024u);
}

// ---------------------------------------------------------------
// Clean configurations stay clean
// ---------------------------------------------------------------

TEST(CheckerClean, BaselineSpecHasNoFindings)
{
    const auto report = checkText(kValidSpec);
    EXPECT_TRUE(report.empty()) << report.toString();
}

TEST(CheckerClean, DefaultsCleanOnAllCaseStudyMachines)
{
    for (const auto &m : uarch::caseStudyMachines()) {
        CampaignSpec spec;
        spec.machineId = m.id;
        const auto report = Checker{}.check(spec);
        EXPECT_TRUE(report.empty())
            << m.id << ":\n" << report.toString();
    }
}

TEST(CheckerClean, ExampleSpecsLintClean)
{
    const std::string dir =
        std::string(SAVAT_SOURCE_DIR) + "/examples/specs/";
    for (const char *name :
         {"core2duo_80khz.spec", "distance_study.spec",
          "power_rail.spec"}) {
        const auto res = parseCampaignSpecFile(dir + name);
        ASSERT_TRUE(res.ok) << name << ": " << res.error;
        const auto report = Checker{}.check(res.spec);
        EXPECT_TRUE(report.empty())
            << name << ":\n" << report.toString();
    }
}

TEST(CheckerClean, GeneratedKernelsPassTheLint)
{
    const auto m = uarch::machineById("core2duo");
    for (auto a : kernels::allEvents()) {
        Report r;
        lintKernel(kernels::buildAlternationKernel(
                       m, a, EventKind::NOI, 4, 4),
                   r);
        EXPECT_TRUE(r.empty())
            << kernels::eventName(a) << ":\n" << r.toString();
    }
}

TEST(CheckerClean, CostModelTracksSimulatedCpi)
{
    const auto m = uarch::machineById("core2duo");
    for (auto e : {EventKind::ADD, EventKind::DIV, EventKind::LDL2}) {
        const double est = estimateIterationCycles(m, e);
        const double meas = kernels::measureIterationCycles(m, e);
        EXPECT_GT(est, 0.5 * meas) << kernels::eventName(e);
        EXPECT_LT(est, 2.0 * meas) << kernels::eventName(e);
    }
}

// ---------------------------------------------------------------
// One broken spec per diagnostic ID
// ---------------------------------------------------------------

TEST(CheckerFindings, B001_BurstUnsolvable)
{
    const auto r = checkText("machine core2duo\nevents ADD LDM\n"
                             "alternation 200 MHz\n");
    EXPECT_TRUE(r.has(DiagId::BurstUnsolvable)) << r.toString();
    EXPECT_TRUE(r.hasErrors());
}

TEST(CheckerFindings, B002_BurstQuantized)
{
    // 20 MHz on a 2.4 GHz clock leaves 60 cycles per half-period;
    // rounding the 21-cycle LDM burst to an integer count lands ~5 %
    // off the intended frequency.
    const auto r = checkText("machine core2duo\nevents ADD LDM\n"
                             "alternation 20 MHz\n");
    EXPECT_TRUE(r.has(DiagId::BurstQuantized)) << r.toString();
    EXPECT_FALSE(r.has(DiagId::BurstUnsolvable));
}

TEST(CheckerFindings, B003_DutySkewed)
{
    // Equal counts of ADD (~9 cycles) and the P3M's ~47-cycle DIV
    // leave the fast event a sliver of the period.
    const auto r = checkText("machine pentium3m\nevents ADD DIV\n"
                             "pairing equal-counts\n");
    EXPECT_TRUE(r.has(DiagId::DutySkewed)) << r.toString();
    EXPECT_FALSE(r.hasErrors()) << r.toString();
}

TEST(CheckerFindings, K001_InvalidOperand)
{
    isa::Program p("bad");
    isa::Instruction mem2mem;
    mem2mem.op = isa::Opcode::Mov;
    mem2mem.dst = isa::Operand::memIndirect(isa::Reg::Esi);
    mem2mem.src = isa::Operand::memIndirect(isa::Reg::Edi);
    p.append(mem2mem);

    isa::Instruction idivImm;
    idivImm.op = isa::Opcode::Idiv;
    idivImm.dst = isa::Operand::immediate(5);
    p.append(idivImm);

    isa::Instruction wildJump;
    wildJump.op = isa::Opcode::Jmp;
    wildJump.target = 99;
    p.append(wildJump);

    Report r;
    lintProgram(p, "bad", r);
    EXPECT_EQ(r.count(DiagId::InvalidOperand), 3u) << r.toString();
    EXPECT_TRUE(r.hasErrors());
}

TEST(CheckerFindings, K002_KernelStructure)
{
    // A calibration kernel is not an alternation kernel: it halts
    // and carries no period/half marks.
    const auto m = uarch::machineById("core2duo");
    kernels::AlternationKernel k;
    k.a = EventKind::ADD;
    k.b = EventKind::SUB;
    k.countA = 0;
    k.countB = 4;
    k.program = kernels::buildCalibrationKernel(m, EventKind::ADD, 2, 2);

    Report r;
    lintKernel(k, r);
    EXPECT_GE(r.count(DiagId::KernelStructure), 3u) << r.toString();
    EXPECT_TRUE(r.hasErrors());
}

TEST(CheckerFindings, K003_FootprintMismatch)
{
    // Shrinking L2 to 64 KiB keeps the geometry valid but makes the
    // LDL2 sweep (capped at L2/4 = 16 KiB) fit inside the 32 KiB L1.
    const auto r = checkText("machine core2duo\nevents LDL2 ADD\n"
                             "l2 64 KiB\n");
    EXPECT_TRUE(r.has(DiagId::FootprintMismatch)) << r.toString();
    EXPECT_TRUE(r.hasErrors());
}

TEST(CheckerFindings, K004_DegeneratePair)
{
    const auto r = checkText("machine core2duo\npair ADD ADD\n");
    EXPECT_TRUE(r.has(DiagId::DegeneratePair)) << r.toString();
    EXPECT_EQ(r.count(Severity::Note), 1u);
    EXPECT_FALSE(r.hasErrors()) << r.toString();
}

TEST(CheckerFindings, K005_InvalidGeometry)
{
    // 48 KiB with 8-way 64 B lines needs 96 sets: not a power of two.
    const auto r = checkText("machine core2duo\nl1 48 KiB\n");
    EXPECT_TRUE(r.has(DiagId::InvalidGeometry)) << r.toString();
    EXPECT_TRUE(r.hasErrors());
    // Geometry errors suppress the footprint/burst cascade.
    EXPECT_FALSE(r.has(DiagId::FootprintMismatch));
}

TEST(CheckerFindings, K005_InvertedHierarchy)
{
    const auto r = checkText("machine core2duo\nl2 16 KiB\n");
    EXPECT_TRUE(r.has(DiagId::InvalidGeometry)) << r.toString();
}

TEST(CheckerFindings, S001_BandExceedsSpan)
{
    const auto r = checkText("machine core2duo\nband 5 kHz\n");
    EXPECT_TRUE(r.has(DiagId::BandExceedsSpan)) << r.toString();
    EXPECT_TRUE(r.hasErrors());
}

TEST(CheckerFindings, S002_RbwWarningAndError)
{
    const auto warn = checkText("machine core2duo\nrbw 500 Hz\n");
    EXPECT_TRUE(warn.has(DiagId::RbwTooCoarse)) << warn.toString();
    EXPECT_FALSE(warn.hasErrors()) << warn.toString();

    // RBW at (or past) the band half-width escalates to an error.
    const auto err = checkText("machine core2duo\nrbw 1 kHz\n");
    EXPECT_TRUE(err.has(DiagId::RbwTooCoarse)) << err.toString();
    EXPECT_TRUE(err.hasErrors());
}

TEST(CheckerFindings, S003_ToneAboveNyquist)
{
    // A 100 kHz "clock" puts Nyquist at 50 kHz, below the 80 kHz
    // tone plus its span.
    const auto r = checkText("machine core2duo\nclock 100 kHz\n");
    EXPECT_TRUE(r.has(DiagId::ToneAboveNyquist)) << r.toString();
    EXPECT_TRUE(r.hasErrors());
}

TEST(CheckerFindings, S004_DistanceOutsideModel)
{
    const auto r = checkText("machine core2duo\ndistance 4 m\n");
    EXPECT_TRUE(r.has(DiagId::DistanceOutsideModel)) << r.toString();
    EXPECT_FALSE(r.hasErrors()) << r.toString();
}

TEST(CheckerFindings, S005_ToneBelowAntennaBand)
{
    const auto r = checkText("machine core2duo\nevents ADD SUB\n"
                             "alternation 5 kHz\n");
    EXPECT_TRUE(r.has(DiagId::ToneBelowAntennaBand)) << r.toString();
    EXPECT_FALSE(r.hasErrors()) << r.toString();

    // The power rail has no antenna; the same tone is fine there.
    const auto power = checkText("machine core2duo\nevents ADD SUB\n"
                                 "alternation 5 kHz\nchannel power\n");
    EXPECT_FALSE(power.has(DiagId::ToneBelowAntennaBand))
        << power.toString();
}

TEST(CheckerFindings, U001_NonpositiveQuantity)
{
    const auto r = checkText("machine core2duo\nrbw 0 Hz\n"
                             "repetitions 0\n");
    EXPECT_GE(r.count(DiagId::NonpositiveQuantity), 2u)
        << r.toString();
    EXPECT_TRUE(r.hasErrors());
}

TEST(CheckerFindings, U002_UnitMismatch)
{
    const auto r = checkText("machine core2duo\nalternation 10 cm\n");
    EXPECT_TRUE(r.has(DiagId::UnitMismatch)) << r.toString();
    EXPECT_TRUE(r.hasErrors());
}

TEST(CheckerFindings, U003_UnitMissing)
{
    const auto r = checkText("machine core2duo\nevents ADD SUB\n"
                             "distance 10\n");
    EXPECT_TRUE(r.has(DiagId::UnitMissing)) << r.toString();
    EXPECT_FALSE(r.hasErrors()) << r.toString();
}

TEST(CheckerFindings, C001_UnknownMachine)
{
    const auto r = checkText("machine pdp11\n");
    EXPECT_TRUE(r.has(DiagId::UnknownMachine)) << r.toString();
    EXPECT_TRUE(r.hasErrors());
}

TEST(CheckerFindings, FindingsCarrySpecLocation)
{
    const auto r = checkText("machine core2duo\nband 5 kHz\n");
    ASSERT_TRUE(r.has(DiagId::BandExceedsSpan));
    for (const auto &d : r.diagnostics()) {
        if (d.id != DiagId::BandExceedsSpan)
            continue;
        EXPECT_EQ(d.file, "test.spec");
        EXPECT_EQ(d.line, 2u);
        EXPECT_EQ(d.field, "band");
        EXPECT_FALSE(d.hint.empty());
    }
}

// ---------------------------------------------------------------
// Focused Checker entry points
// ---------------------------------------------------------------

TEST(CheckerApi, CheckMeasurementFlagsSettingsOnly)
{
    const auto m = uarch::machineById("core2duo");
    Checker checker;
    EXPECT_TRUE(checker.checkMeasurement(m, {}).empty());

    MeasurementSettings bad;
    bad.bandHz = 5000.0;
    const auto r = checker.checkMeasurement(m, bad);
    EXPECT_TRUE(r.has(DiagId::BandExceedsSpan));
}

TEST(CheckerApi, CheckPairFlagsPairOnly)
{
    const auto m = uarch::machineById("core2duo");
    Checker checker;
    EXPECT_TRUE(
        checker.checkPair(m, EventKind::ADD, EventKind::LDM, {})
            .empty());

    MeasurementSettings fast;
    fast.alternation = Frequency::mhz(200.0);
    const auto r =
        checker.checkPair(m, EventKind::ADD, EventKind::ADD, fast);
    EXPECT_TRUE(r.has(DiagId::BurstUnsolvable));
}

// ---------------------------------------------------------------
// Core integration: Meter and Campaign refuse error-level specs
// ---------------------------------------------------------------

TEST(CoreIntegration, MeterValidateCleanByDefault)
{
    const auto meter = core::SavatMeter::forMachine("core2duo");
    EXPECT_TRUE(meter.validate().empty());
}

TEST(CoreIntegration, MeterRefusesBandOutsideSpan)
{
    core::MeterConfig cfg;
    cfg.bandHz = 5000.0;
    EXPECT_EXIT((void)core::SavatMeter::forMachine("core2duo", cfg),
                ::testing::ExitedWithCode(1), "SAV-S001");
}

TEST(CoreIntegration, MeterRefusesUnsolvablePair)
{
    core::MeterConfig cfg;
    cfg.alternation = Frequency::mhz(200.0);
    auto meter = core::SavatMeter::forMachine("core2duo", cfg);
    EXPECT_EXIT(
        (void)meter.simulatePair(EventKind::ADD, EventKind::ADD),
        ::testing::ExitedWithCode(1), "SAV-B001");
}

TEST(CoreIntegration, CampaignRefusesZeroRepetitions)
{
    core::CampaignConfig cfg;
    cfg.repetitions = 0;
    cfg.events = {EventKind::ADD, EventKind::SUB};
    EXPECT_EXIT((void)core::runCampaign(cfg),
                ::testing::ExitedWithCode(1), "SAV-U001");
}
