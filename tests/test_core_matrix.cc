/**
 * @file
 * Unit tests for the SAVAT matrix container and its validation
 * statistics, plus the clustering and reference-data modules.
 */

#include <gtest/gtest.h>

#include <csignal>

#include "core/clustering.hh"
#include "core/matrix.hh"
#include "core/reference.hh"

namespace savat::core {
namespace {

using kernels::EventKind;

SavatMatrix
fromMeans(const std::vector<EventKind> &events,
          const std::vector<std::vector<double>> &means)
{
    SavatMatrix m(events);
    for (std::size_t a = 0; a < events.size(); ++a)
        for (std::size_t b = 0; b < events.size(); ++b)
            m.addSample(a, b, means[a][b]);
    return m;
}

/** The paper's Figure 9 as a SavatMatrix. */
SavatMatrix
figure9Matrix()
{
    const auto &ref = figure9Core2Duo();
    return fromMeans(ref.events, ref.zj);
}

TEST(Matrix, AddAndSummarize)
{
    SavatMatrix m({EventKind::ADD, EventKind::LDM});
    m.addSample(0, 1, 4.0);
    m.addSample(0, 1, 5.0);
    m.addSample(0, 1, 6.0);
    EXPECT_DOUBLE_EQ(m.mean(0, 1), 5.0);
    const auto s = m.cellSummary(0, 1);
    EXPECT_EQ(s.count, 3u);
    EXPECT_DOUBLE_EQ(s.min, 4.0);
    EXPECT_DOUBLE_EQ(s.median, 5.0);
    EXPECT_TRUE(m.samples(1, 0).empty());
}

TEST(Matrix, Labels)
{
    SavatMatrix m({EventKind::ADD, EventKind::DIV});
    const auto labels = m.labels();
    ASSERT_EQ(labels.size(), 2u);
    EXPECT_EQ(labels[0], "ADD");
    EXPECT_EQ(labels[1], "DIV");
}

TEST(Matrix, IndexOf)
{
    SavatMatrix m({EventKind::ADD, EventKind::DIV});
    EXPECT_EQ(m.indexOf(EventKind::DIV), 1u);
    EXPECT_EXIT((void)m.indexOf(EventKind::LDM),
                ::testing::ExitedWithCode(1), "not in matrix");
}

TEST(Matrix, DiagonalMinimumOnFigure9)
{
    // The paper: diagonals are their row/column minima with one
    // exception (STM/LDM). At the published 0.1 zJ rounding a few
    // more near-ties appear (e.g. ADD/NOI 0.6 vs ADD/ADD 0.7), so
    // the strict count on the rounded data is 8 of 11.
    const auto m = figure9Matrix();
    EXPECT_GE(m.diagonalMinimumCount(), 8u);
}

TEST(Matrix, DiagonalMinimumSynthetic)
{
    SavatMatrix good({EventKind::ADD, EventKind::SUB});
    good.addSample(0, 0, 0.1);
    good.addSample(0, 1, 1.0);
    good.addSample(1, 0, 1.1);
    good.addSample(1, 1, 0.2);
    EXPECT_EQ(good.diagonalMinimumCount(), 2u);
}

TEST(Matrix, SymmetryErrorZeroForSymmetric)
{
    SavatMatrix m({EventKind::ADD, EventKind::SUB});
    m.addSample(0, 0, 0.5);
    m.addSample(1, 1, 0.5);
    m.addSample(0, 1, 2.0);
    m.addSample(1, 0, 2.0);
    EXPECT_DOUBLE_EQ(m.symmetryError(), 0.0);
}

TEST(Matrix, SymmetryErrorMagnitude)
{
    SavatMatrix m({EventKind::ADD, EventKind::SUB});
    m.addSample(0, 1, 2.0);
    m.addSample(1, 0, 3.0);
    m.addSample(0, 0, 1.0);
    m.addSample(1, 1, 1.0);
    EXPECT_NEAR(m.symmetryError(), 1.0 / 2.5, 1e-12);
}

TEST(Matrix, Figure9SymmetryIsSmall)
{
    // The published matrix is nearly symmetric (that is the paper's
    // own placement-error check).
    EXPECT_LT(figure9Matrix().symmetryError(), 0.15);
}

TEST(Matrix, MeanCoefficientOfVariation)
{
    SavatMatrix m({EventKind::ADD});
    m.addSample(0, 0, 10.0);
    m.addSample(0, 0, 10.0);
    EXPECT_DOUBLE_EQ(m.meanCoefficientOfVariation(), 0.0);
    m.addSample(0, 0, 13.0);
    EXPECT_GT(m.meanCoefficientOfVariation(), 0.0);
}

TEST(Matrix, SingleInstructionSavat)
{
    // Section II's definition, evaluated on the published data:
    // the load instruction's SAVAT is the max over pairings of
    // {LDM, LDL2, LDL1}.
    const auto m = figure9Matrix();
    const double load = m.singleInstructionSavat(
        {EventKind::LDM, EventKind::LDL2, EventKind::LDL1});
    EXPECT_DOUBLE_EQ(load, 7.9); // LDM/LDL2 dominates
    const double store = m.singleInstructionSavat(
        {EventKind::STM, EventKind::STL2, EventKind::STL1});
    EXPECT_DOUBLE_EQ(store, 11.8); // STM/STL2
}

TEST(Matrix, FlatMeansRowMajor)
{
    SavatMatrix m({EventKind::ADD, EventKind::SUB});
    m.addSample(0, 0, 1.0);
    m.addSample(0, 1, 2.0);
    m.addSample(1, 0, 3.0);
    m.addSample(1, 1, 4.0);
    const auto flat = m.flatMeans();
    ASSERT_EQ(flat.size(), 4u);
    EXPECT_DOUBLE_EQ(flat[1], 2.0);
    EXPECT_DOUBLE_EQ(flat[2], 3.0);
}

// ---------------------------------------------------------- clustering

TEST(Clustering, SyntheticTwoGroups)
{
    // Two tight groups far apart.
    SavatMatrix m({EventKind::ADD, EventKind::SUB, EventKind::LDM,
                   EventKind::STM});
    const double d[4][4] = {{0.1, 0.2, 9.0, 8.0},
                            {0.2, 0.1, 9.5, 8.5},
                            {9.0, 9.5, 0.1, 0.3},
                            {8.0, 8.5, 0.3, 0.1}};
    for (int a = 0; a < 4; ++a)
        for (int b = 0; b < 4; ++b)
            m.addSample(a, b, d[a][b]);

    const auto res = clusterEvents(m, 2);
    ASSERT_EQ(res.clusters.size(), 2u);
    EXPECT_EQ(res.assignment[0], res.assignment[1]);
    EXPECT_EQ(res.assignment[2], res.assignment[3]);
    EXPECT_NE(res.assignment[0], res.assignment[2]);
    EXPECT_EQ(res.dendrogram.size(), 2u);
}

TEST(Clustering, KEqualsN)
{
    SavatMatrix m({EventKind::ADD, EventKind::SUB});
    m.addSample(0, 0, 0.0);
    m.addSample(0, 1, 1.0);
    m.addSample(1, 0, 1.0);
    m.addSample(1, 1, 0.0);
    const auto res = clusterEvents(m, 2);
    EXPECT_EQ(res.clusters.size(), 2u);
    EXPECT_TRUE(res.dendrogram.empty());
}

TEST(Clustering, KEqualsOne)
{
    const auto res = clusterEvents(figure9Matrix(), 1);
    ASSERT_EQ(res.clusters.size(), 1u);
    EXPECT_EQ(res.clusters[0].size(), 11u);
}

TEST(Clustering, Figure9RecoversPaperGroups)
{
    // Section V: four groups -- off-chip {LDM STM}, L2 {LDL2 STL2},
    // Arithmetic/L1 {ADD SUB MUL NOI LDL1 STL1}, and {DIV} alone.
    const auto res = clusterEvents(figure9Matrix(), 4);
    ASSERT_EQ(res.clusters.size(), 4u);

    const auto m = figure9Matrix();
    auto cluster_of = [&](EventKind e) {
        return res.assignment[m.indexOf(e)];
    };
    EXPECT_EQ(cluster_of(EventKind::LDM), cluster_of(EventKind::STM));
    EXPECT_EQ(cluster_of(EventKind::LDL2),
              cluster_of(EventKind::STL2));
    EXPECT_EQ(cluster_of(EventKind::ADD), cluster_of(EventKind::SUB));
    EXPECT_EQ(cluster_of(EventKind::ADD), cluster_of(EventKind::MUL));
    EXPECT_EQ(cluster_of(EventKind::ADD), cluster_of(EventKind::NOI));
    EXPECT_EQ(cluster_of(EventKind::ADD),
              cluster_of(EventKind::LDL1));
    EXPECT_EQ(cluster_of(EventKind::ADD),
              cluster_of(EventKind::STL1));
    EXPECT_NE(cluster_of(EventKind::LDM),
              cluster_of(EventKind::LDL2));
    EXPECT_NE(cluster_of(EventKind::DIV), cluster_of(EventKind::ADD));
    EXPECT_NE(cluster_of(EventKind::DIV), cluster_of(EventKind::LDM));
    EXPECT_NE(cluster_of(EventKind::DIV),
              cluster_of(EventKind::LDL2));
    // The largest cluster is the Arithmetic/L1 group.
    EXPECT_EQ(res.clusters[0].size(), 6u);
}

TEST(Clustering, DescribeClusters)
{
    const auto res = clusterEvents(figure9Matrix(), 4);
    const auto text = describeClusters(res);
    EXPECT_NE(text.find("{"), std::string::npos);
    EXPECT_NE(text.find("DIV"), std::string::npos);
}

TEST(Clustering, DistanceSymmetrized)
{
    SavatMatrix m({EventKind::ADD, EventKind::SUB});
    m.addSample(0, 0, 0.5);
    m.addSample(1, 1, 0.5);
    m.addSample(0, 1, 2.0);
    m.addSample(1, 0, 4.0);
    const auto raw = savatDistance(m, /*subtractDiagonalFloor=*/false);
    EXPECT_DOUBLE_EQ(raw[0][1], 3.0);
    EXPECT_DOUBLE_EQ(raw[1][0], 3.0);
    EXPECT_DOUBLE_EQ(raw[0][0], 0.0);
    // With floor subtraction the common diagonal pedestal drops out.
    const auto d = savatDistance(m);
    EXPECT_DOUBLE_EQ(d[0][1], 2.5);
}

TEST(Clustering, FloorSubtractionClampsAtZero)
{
    SavatMatrix m({EventKind::ADD, EventKind::SUB});
    m.addSample(0, 0, 3.0);
    m.addSample(1, 1, 3.0);
    m.addSample(0, 1, 1.0);
    m.addSample(1, 0, 1.0);
    const auto d = savatDistance(m);
    EXPECT_DOUBLE_EQ(d[0][1], 0.0);
}

// ----------------------------------------------------------- reference

TEST(Reference, MatricesWellFormed)
{
    for (const auto *ref :
         {&figure9Core2Duo(), &figure17Core2Duo50cm(),
          &figure18Core2Duo100cm()}) {
        EXPECT_EQ(ref->events.size(), 11u);
        EXPECT_EQ(ref->zj.size(), 11u);
        for (const auto &row : ref->zj) {
            EXPECT_EQ(row.size(), 11u);
            for (double v : row)
                EXPECT_GT(v, 0.0);
        }
        EXPECT_EQ(ref->machine, "core2duo");
    }
    EXPECT_DOUBLE_EQ(figure9Core2Duo().distanceCm, 10.0);
    EXPECT_DOUBLE_EQ(figure17Core2Duo50cm().distanceCm, 50.0);
}

TEST(Reference, Figure9KeyValues)
{
    const auto &ref = figure9Core2Duo();
    const auto at = [&](EventKind a, EventKind b) {
        return ref.zj[static_cast<std::size_t>(a)]
                     [static_cast<std::size_t>(b)];
    };
    EXPECT_DOUBLE_EQ(at(EventKind::ADD, EventKind::LDM), 4.2);
    EXPECT_DOUBLE_EQ(at(EventKind::LDL2, EventKind::LDM), 7.7);
    EXPECT_DOUBLE_EQ(at(EventKind::STL2, EventKind::DIV), 10.1);
    EXPECT_DOUBLE_EQ(at(EventKind::ADD, EventKind::ADD), 0.7);
}

TEST(Reference, DistanceCollapsesValues)
{
    // Figures 17/18 sit far below Figure 9 off the diagonal blocks.
    const auto &near = figure9Core2Duo();
    const auto &far = figure17Core2Duo50cm();
    const auto idx = static_cast<std::size_t>(EventKind::STL2);
    EXPECT_LT(far.zj[idx][idx + 6], near.zj[idx][idx + 6] / 4.0);
}

TEST(Reference, AnchorsPresent)
{
    EXPECT_GE(pentium3mAnchors().size(), 6u);
    EXPECT_GE(turionx2Anchors().size(), 6u);
    for (const auto &a : pentium3mAnchors())
        EXPECT_GT(a.zj, 0.0);
}

TEST(Reference, SelectedBarPairs)
{
    const auto pairs = selectedBarPairs();
    EXPECT_EQ(pairs.size(), 11u); // Figure 11 shows 11 pairings
    EXPECT_EQ(pairs.front().first, EventKind::ADD);
    EXPECT_EQ(pairs.front().second, EventKind::ADD);
}

TEST(Reference, SelfCorrelationIsPerfect)
{
    const auto m = figure9Matrix();
    EXPECT_NEAR(rankCorrelation(m, figure9Core2Duo()), 1.0, 1e-9);
    EXPECT_NEAR(logCorrelation(m, figure9Core2Duo()), 1.0, 1e-9);
}

TEST(Reference, CorrelationIgnoresEmptyCells)
{
    SavatMatrix m(kernels::allEvents());
    // Fill only one row.
    for (std::size_t b = 0; b < 11; ++b)
        m.addSample(0, b, figure9Core2Duo().zj[0][b]);
    EXPECT_NEAR(rankCorrelation(m, figure9Core2Duo()), 1.0, 1e-9);
}

} // namespace
} // namespace savat::core
