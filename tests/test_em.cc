/**
 * @file
 * Unit tests for the EM emanation model: channels, emission
 * profiles, propagation, antenna, environment and the synthesizer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <csignal>

#include "em/antenna.hh"
#include "em/channels.hh"
#include "em/emission.hh"
#include "em/environment.hh"
#include "em/narrowband.hh"
#include "em/propagation.hh"
#include "em/synth.hh"
#include "support/stats.hh"
#include "uarch/machine.hh"

namespace savat::em {
namespace {

TEST(Channels, Names)
{
    EXPECT_STREQ(channelName(Channel::Bus), "Bus");
    EXPECT_STREQ(channelName(Channel::Div), "Div");
    for (std::size_t i = 0; i < kNumChannels; ++i)
        EXPECT_NE(channelName(channelAt(i)), nullptr);
}

class Profiles : public ::testing::TestWithParam<const char *>
{
};

TEST_P(Profiles, WellFormed)
{
    const auto p = emissionProfileFor(GetParam());
    EXPECT_EQ(p.machineId, GetParam());
    for (std::size_t c = 0; c < kNumChannels; ++c) {
        EXPECT_GT(p.gain[c], 0.0) << channelName(channelAt(c));
        EXPECT_GE(p.mismatchFraction[c], 0.0);
        EXPECT_LT(p.mismatchFraction[c], 1.0);
    }
    EXPECT_GT(p.baseMismatchEnergyZj, 0.0);
    // Every event must carry a weight and route somewhere.
    for (std::size_t e = 0; e < uarch::kNumMicroEvents; ++e)
        EXPECT_GT(p.eventWeight[e], 0.0);
}

TEST_P(Profiles, OffChipLoudestOnChipQuietest)
{
    // The physical premise: long off-chip wires beat the small
    // on-chip structures at the reference distance. A bus burst
    // spans memBurst cycles while a cache-array access is one, so
    // per-event received amplitude = gain x active cycles.
    const auto p = emissionProfileFor(GetParam());
    const auto m = uarch::machineById(GetParam());
    const auto gain = [&p](Channel c) {
        return p.gain[static_cast<std::size_t>(c)];
    };
    const double bus_event = gain(Channel::Bus) * m.memBurst;
    const double div_event = gain(Channel::Div) * m.lat.idiv;
    EXPECT_GT(bus_event, gain(Channel::L2));
    EXPECT_GT(gain(Channel::L2), gain(Channel::L1));
    EXPECT_GT(gain(Channel::L1), gain(Channel::Logic));
    if (std::string(GetParam()) == "core2duo") {
        // Core 2: the divider was tamed relative to off-chip I/O.
        EXPECT_GT(bus_event, div_event);
    } else {
        // P3M/Turion: the paper finds the divider rivals (Turion)
        // or approaches (P3M) off-chip accesses.
        EXPECT_GT(div_event, 0.5 * bus_event);
    }
}

TEST_P(Profiles, ChannelWeightsMask)
{
    const auto p = emissionProfileFor(GetParam());
    const auto w = p.channelWeights(Channel::L2);
    double total = 0.0;
    for (std::size_t e = 0; e < uarch::kNumMicroEvents; ++e) {
        if (w[e] > 0.0) {
            EXPECT_EQ(p.eventChannel[e], Channel::L2);
            total += w[e];
        }
    }
    EXPECT_GT(total, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Machines, Profiles,
                         ::testing::Values("core2duo", "pentium3m",
                                           "turionx2"));

TEST(Profiles, DividerGenerations)
{
    // The paper: the P3M and Turion dividers are far louder than the
    // Core 2's (the Turion's rivals off-chip accesses).
    const auto div = [](const char *m) {
        return emissionProfileFor(m)
            .gain[static_cast<std::size_t>(Channel::Div)];
    };
    EXPECT_GT(div("pentium3m"), div("core2duo"));
    EXPECT_GT(div("turionx2"), div("pentium3m"));
}

TEST(Profiles, UnknownMachineDies)
{
    EXPECT_EXIT(emissionProfileFor("z80"),
                ::testing::ExitedWithCode(1), "no emission profile");
}

TEST(Propagation, ReferenceDistanceIsUnity)
{
    DistanceModel dm;
    for (std::size_t c = 0; c < kNumChannels; ++c) {
        EXPECT_NEAR(dm.amplitudeFactor(channelAt(c),
                                       Distance::centimeters(10.0)),
                    1.0, 1e-12);
    }
}

TEST(Propagation, MonotonicDecay)
{
    DistanceModel dm;
    for (std::size_t c = 0; c < kNumChannels; ++c) {
        double prev = 1e9;
        for (double cm : {2.0, 10.0, 25.0, 50.0, 75.0, 100.0, 200.0}) {
            const double a = dm.amplitudeFactor(
                channelAt(c), Distance::centimeters(cm));
            EXPECT_LT(a, prev) << channelName(channelAt(c)) << " @ "
                               << cm;
            prev = a;
        }
    }
}

TEST(Propagation, OffChipOutlastsOnChip)
{
    // Figures 17/18: at 50-100 cm only off-chip pairs stay visible.
    DistanceModel dm;
    for (double cm : {50.0, 100.0}) {
        const auto d = Distance::centimeters(cm);
        EXPECT_GT(dm.amplitudeFactor(Channel::Bus, d),
                  dm.amplitudeFactor(Channel::L2, d));
        EXPECT_GT(dm.amplitudeFactor(Channel::Bus, d),
                  dm.amplitudeFactor(Channel::Logic, d));
    }
}

TEST(Propagation, NearFieldExtrapolation)
{
    DistanceModel dm;
    // Halving the distance below 10 cm raises amplitude ~8x (1/r^3).
    const double a5 = dm.amplitudeFactor(Channel::L2,
                                         Distance::centimeters(5.0));
    EXPECT_NEAR(a5, 8.0, 0.01);
}

TEST(Propagation, FarFieldExtrapolation)
{
    DistanceModel dm;
    const double a1 = dm.amplitudeFactor(Channel::Bus,
                                         Distance::meters(1.0));
    const double a2 = dm.amplitudeFactor(Channel::Bus,
                                         Distance::meters(2.0));
    EXPECT_NEAR(a2, a1 / 2.0, 1e-9);
}

TEST(Propagation, SetAnchorsValidated)
{
    DistanceModel dm;
    dm.setAnchors(Channel::Bus, {1.0, 0.5, 0.4});
    EXPECT_NEAR(dm.amplitudeFactor(Channel::Bus,
                                   Distance::centimeters(50.0)),
                0.5, 1e-12);
    EXPECT_EXIT(dm.setAnchors(Channel::Bus, {0.9, 0.5, 0.4}),
                ::testing::KilledBySignal(SIGABRT), "first anchor");
    EXPECT_EXIT(dm.setAnchors(Channel::Bus, {1.0, 0.5, 0.6}),
                ::testing::KilledBySignal(SIGABRT), "non-increasing");
}

TEST(Antenna, FlatInBand)
{
    LoopAntenna ant;
    EXPECT_NEAR(ant.amplitudeResponse(Frequency::khz(80.0)),
                ant.amplitudeResponse(Frequency::khz(160.0)), 0.01);
    EXPECT_GT(ant.amplitudeResponse(Frequency::khz(80.0)), 0.99);
}

TEST(Antenna, LowFrequencyRolloff)
{
    LoopAntenna ant;
    const double at_corner =
        ant.amplitudeResponse(Frequency::khz(10.0));
    EXPECT_NEAR(at_corner, 1.0 / std::sqrt(2.0), 1e-6);
    EXPECT_LT(ant.amplitudeResponse(Frequency::khz(1.0)), 0.15);
}

TEST(Antenna, OutOfBandCollapse)
{
    LoopAntenna ant;
    EXPECT_LT(ant.amplitudeResponse(Frequency::ghz(2.0)), 0.1);
}

TEST(Narrowband, BandPowerAndPeak)
{
    NarrowbandSpectrum s;
    s.startHz = 78000.0;
    s.binHz = 1.0;
    s.psd.assign(4001, 1e-18);
    s.psd[2000] = 1e-15; // tone at 80 kHz
    EXPECT_EQ(s.binFor(80000.0), 2000u);
    const double band = s.bandPower(79000.0, 81000.0);
    EXPECT_NEAR(band, 1e-15 + 2000.0 * 1e-18, 1e-17);
    EXPECT_NEAR(s.peakPsd(79000.0, 81000.0), 1e-15, 1e-20);
}

TEST(Environment, DrawStatistics)
{
    EnvironmentConfig cfg;
    Rng rng(5);
    RunningStats offsets, gains;
    for (int i = 0; i < 2000; ++i) {
        const auto d = drawEnvironment(cfg, rng);
        offsets.add(d.freqOffsetHz);
        gains.add(d.gainFactor);
    }
    EXPECT_NEAR(offsets.mean(), 0.0, 20.0);
    EXPECT_NEAR(offsets.stddev(), cfg.freqOffsetSigmaHz, 15.0);
    EXPECT_NEAR(gains.mean(), 1.0, 0.01);
    EXPECT_GE(gains.min(), 0.5);
}

/** Synthesizer fixture with a quiet environment. */
class Synth : public ::testing::Test
{
  protected:
    static EnvironmentConfig
    quietEnv()
    {
        EnvironmentConfig env;
        env.ambientNoiseWPerHz = 0.0;
        env.interfererDensityPerKhz = 0.0;
        env.freqOffsetSigmaHz = 0.0;
        env.dispersionSigmaHz = 0.0;
        env.gainDriftSigma = 0.0;
        env.phaseJitterSigma = 0.0;
        return env;
    }

    Synth()
        : synth(emissionProfileFor("core2duo"), DistanceModel(),
                LoopAntenna(), quietEnv())
    {
    }

    ReceivedSignalSynthesizer synth;
};

TEST_F(Synth, SingleChannelTonePower)
{
    ChannelAmplitudes amps{};
    const double a = 2.0;
    amps[static_cast<std::size_t>(Channel::Bus)] = a;
    Rng rng(1);
    const EnvironmentDraw env{0.0, 1.0};
    const double p = synth.tonePower(amps, Distance::centimeters(10.0),
                                     env, rng);
    const double g = synth.profile()
                         .gain[static_cast<std::size_t>(Channel::Bus)];
    EXPECT_NEAR(p, 0.5 * (g * a) * (g * a), 1e-9 * p);
}

TEST_F(Synth, TonePowerScalesWithDistance)
{
    ChannelAmplitudes amps{};
    amps[static_cast<std::size_t>(Channel::Bus)] = 1.0;
    Rng rng(1);
    const EnvironmentDraw env{0.0, 1.0};
    const double p10 = synth.tonePower(
        amps, Distance::centimeters(10.0), env, rng);
    const double p50 = synth.tonePower(
        amps, Distance::centimeters(50.0), env, rng);
    EXPECT_NEAR(p50 / p10, 0.46 * 0.46, 1e-6);
}

TEST_F(Synth, BandPowerMatchesTonePower)
{
    ToneInput tone;
    tone.amplitude[static_cast<std::size_t>(Channel::L2)] = 1.5;
    tone.toneFrequency = Frequency::khz(80.0);
    Rng rng(3);
    const auto res = synth.synthesize(tone,
                                      Distance::centimeters(10.0),
                                      Frequency::khz(80.0), 2000.0,
                                      rng);
    EXPECT_NEAR(res.spectrum.bandPower(79000.0, 81000.0),
                res.tonePowerW, 1e-6 * res.tonePowerW);
    EXPECT_NEAR(res.realizedToneHz, 80000.0, 1e-9);
}

TEST_F(Synth, ResidualPowerAdds)
{
    ToneInput tone;
    tone.toneFrequency = Frequency::khz(80.0);
    tone.residualPowerW = 1e-13;
    Rng rng(3);
    const auto res = synth.synthesize(tone,
                                      Distance::centimeters(10.0),
                                      Frequency::khz(80.0), 2000.0,
                                      rng);
    // The antenna's power response at 80 kHz applies.
    const double ant =
        synth.antenna().powerResponse(Frequency::khz(80.0));
    EXPECT_NEAR(res.tonePowerW, 1e-13 * ant, 1e-19);
}

TEST(SynthNoisy, NoiseFloorAndInterferers)
{
    EnvironmentConfig env;
    env.ambientNoiseWPerHz = 1e-18;
    env.interfererDensityPerKhz = 2.0;
    ReceivedSignalSynthesizer synth(emissionProfileFor("core2duo"),
                                    DistanceModel(), LoopAntenna(),
                                    env);
    ToneInput tone;
    tone.toneFrequency = Frequency::khz(80.0);
    Rng rng(9);
    const auto res = synth.synthesize(tone,
                                      Distance::centimeters(10.0),
                                      Frequency::khz(80.0), 2000.0,
                                      rng);
    // Mean PSD should sit near the ambient density.
    double mean = 0.0;
    for (double v : res.spectrum.psd)
        mean += v;
    mean /= static_cast<double>(res.spectrum.size());
    EXPECT_GT(mean, 0.5e-18);
    // Interferers: at least one bin far above the floor.
    EXPECT_GT(res.spectrum.peakPsd(78000.0, 82000.0), 5e-18);
}

TEST(SynthNoisy, DispersionSpreadsTone)
{
    EnvironmentConfig env;
    env.ambientNoiseWPerHz = 0.0;
    env.interfererDensityPerKhz = 0.0;
    env.freqOffsetSigmaHz = 0.0;
    env.dispersionSigmaHz = 60.0;
    env.gainDriftSigma = 0.0;
    env.phaseJitterSigma = 0.0;
    ReceivedSignalSynthesizer synth(emissionProfileFor("core2duo"),
                                    DistanceModel(), LoopAntenna(),
                                    env);
    ToneInput tone;
    tone.toneFrequency = Frequency::khz(80.0);
    tone.residualPowerW = 1e-13;
    Rng rng(11);
    const auto res = synth.synthesize(tone,
                                      Distance::centimeters(10.0),
                                      Frequency::khz(80.0), 2000.0,
                                      rng);
    // Power is conserved but no longer confined to one bin.
    EXPECT_NEAR(res.spectrum.bandPower(79000.0, 81000.0), 1e-13,
                2e-14);
    std::size_t occupied = 0;
    for (double v : res.spectrum.psd) {
        if (v > 0.0)
            ++occupied;
    }
    EXPECT_GT(occupied, 10u);
}

} // namespace
} // namespace savat::em
