/**
 * @file
 * Tests for savat::support::parallel -- the bounded worker-team
 * primitives under the campaign engine. These check the scheduling
 * contract (every index exactly once, serial order at jobs=1),
 * exception propagation, nested use and jobs resolution; the
 * campaign-level determinism guarantees are covered in
 * test_campaign_variants.cc.
 */

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/parallel.hh"

using namespace savat;

namespace {

TEST(Parallel, CoversEveryIndexExactlyOnce)
{
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    support::parallelFor(
        n, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Parallel, JobsOneRunsSerialInOrder)
{
    std::vector<std::size_t> order;
    support::parallelFor(
        16, [&](std::size_t i) { order.push_back(i); }, 1);
    ASSERT_EQ(order.size(), 16u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Parallel, ZeroItemsIsANoop)
{
    bool called = false;
    support::parallelFor(
        0, [&](std::size_t) { called = true; }, 4);
    EXPECT_FALSE(called);
}

TEST(Parallel, PropagatesBodyException)
{
    EXPECT_THROW(
        support::parallelFor(
            64,
            [&](std::size_t i) {
                if (i == 13)
                    throw std::runtime_error("boom");
            },
            4),
        std::runtime_error);
}

TEST(Parallel, ExceptionCancelsRemainingWork)
{
    // After the throw, the cancellation flag must stop the team well
    // short of the full range.
    std::atomic<std::size_t> ran{0};
    try {
        support::parallelFor(
            1u << 20,
            [&](std::size_t i) {
                ran.fetch_add(1);
                if (i == 0)
                    throw std::runtime_error("early");
            },
            4);
        FAIL() << "expected the body exception to propagate";
    } catch (const std::runtime_error &) {
    }
    EXPECT_LT(ran.load(), (1u << 20));
}

TEST(Parallel, SerialPathPropagatesException)
{
    EXPECT_THROW(support::parallelFor(
                     4,
                     [&](std::size_t i) {
                         if (i == 2)
                             throw std::logic_error("serial boom");
                     },
                     1),
                 std::logic_error);
}

TEST(Parallel, NestedUseIsSafe)
{
    // Teams are transient (spawned per call), so an inner
    // parallelFor inside a worker cannot deadlock on a shared pool.
    constexpr std::size_t outer = 8;
    constexpr std::size_t inner = 32;
    std::vector<std::atomic<int>> hits(outer * inner);
    support::parallelFor(
        outer,
        [&](std::size_t o) {
            support::parallelFor(
                inner,
                [&](std::size_t i) {
                    hits[o * inner + i].fetch_add(1);
                },
                2);
        },
        4);
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ParallelInvokeRunsEveryTask)
{
    std::atomic<int> sum{0};
    support::parallelInvoke(
        {
            [&] { sum.fetch_add(1); },
            [&] { sum.fetch_add(10); },
            [&] { sum.fetch_add(100); },
        },
        2);
    EXPECT_EQ(sum.load(), 111);
}

TEST(Parallel, RunWorkersSingleRunsInline)
{
    const auto caller = std::this_thread::get_id();
    std::thread::id seen;
    support::runWorkers(1, [&](std::size_t worker) {
        EXPECT_EQ(worker, 0u);
        seen = std::this_thread::get_id();
    });
    EXPECT_EQ(seen, caller);
}

TEST(Parallel, RunWorkersNumbersWorkers)
{
    std::mutex mu;
    std::set<std::size_t> ids;
    support::runWorkers(4, [&](std::size_t worker) {
        const std::lock_guard<std::mutex> lock(mu);
        ids.insert(worker);
    });
    EXPECT_EQ(ids, (std::set<std::size_t>{0, 1, 2, 3}));
}

TEST(Parallel, ResolveJobsExplicitWins)
{
    ::setenv("SAVAT_JOBS", "7", 1);
    EXPECT_EQ(support::resolveJobs(3), 3u);
    ::unsetenv("SAVAT_JOBS");
}

TEST(Parallel, ResolveJobsReadsEnvironment)
{
    ::setenv("SAVAT_JOBS", "5", 1);
    EXPECT_EQ(support::resolveJobs(0), 5u);
    ::unsetenv("SAVAT_JOBS");
}

TEST(Parallel, ResolveJobsIgnoresInvalidEnvironment)
{
    ::setenv("SAVAT_JOBS", "banana", 1);
    EXPECT_EQ(support::resolveJobs(0), support::hardwareJobs());
    ::setenv("SAVAT_JOBS", "0", 1);
    EXPECT_EQ(support::resolveJobs(0), support::hardwareJobs());
    ::unsetenv("SAVAT_JOBS");
}

TEST(Parallel, ResolveJobsDefaultsToHardware)
{
    ::unsetenv("SAVAT_JOBS");
    EXPECT_EQ(support::resolveJobs(0), support::hardwareJobs());
    EXPECT_GE(support::hardwareJobs(), 1u);
}

} // namespace
