/**
 * @file
 * savat::service::WorkerPool — crash-isolated campaign sharding.
 *
 * Cells are dispatched over `savat-worker-wire-v1` pipes to forked
 * worker processes. The supervisor (single-threaded, runs on the
 * caller's thread) tracks per-worker heartbeats, enforces per-cell
 * deadlines, and restarts dead workers with seeded jittered backoff
 * (the resilience::RetryPolicy machinery from the checkpoint layer).
 * A cell that kills its worker `restart.maxAttempts` times is
 * quarantined: reported through onQuarantine and never re-dispatched,
 * so one poisoned cell costs one cell, not the campaign.
 *
 * The pool is generic — it moves opaque result payloads, not
 * campaign types. The campaign layer serializes each finished cell
 * as a one-cell resilience checkpoint (already proven byte-stable),
 * which makes process-mode results byte-identical to in-process
 * mode by construction.
 *
 * Concurrency contract: fork() is called from the supervisor thread;
 * the caller must not hold locks that the worker factory or callbacks
 * need, and in-process worker teams must not be running concurrently
 * (campaign.cc calls runPool from the main thread only). Children
 * always leave through _Exit and never run parent atexit hooks.
 */

#ifndef SAVAT_SERVICE_POOL_HH
#define SAVAT_SERVICE_POOL_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "resilience/retry.hh"

namespace savat::service {

/** Supervisor tuning knobs. */
struct PoolConfig
{
    /** Worker processes to keep alive (>= 1). */
    std::size_t workers = 1;

    /** Child heartbeat period [s]. */
    double heartbeatSeconds = 0.2;

    /**
     * Kill a worker whose last heartbeat is older than this [s].
     * Generous by default: sanitizer builds are slow and a false
     * kill costs a crash-budget charge against an innocent cell.
     */
    double heartbeatTimeoutSeconds = 30.0;

    /** Kill a worker that sits on one cell longer than this [s];
     * 0 disables the deadline. */
    double cellDeadlineSeconds = 0.0;

    /**
     * Restart/backoff policy, reusing the campaign retry machinery:
     * maxAttempts doubles as the per-cell crash budget (a cell whose
     * worker dies maxAttempts times is quarantined), and
     * backoff/jitter seed the respawn delay schedule.
     */
    resilience::RetryPolicy restart;
};

/** What the pool observed; all counts are totals for one run. */
struct PoolStats
{
    std::size_t dispatched = 0;  //!< Measure frames sent
    std::size_t completed = 0;   //!< CellDone frames accepted
    std::size_t deaths = 0;      //!< workers lost (crash/kill/timeout)
    std::size_t restarts = 0;    //!< replacement workers forked
    std::size_t quarantined = 0; //!< cells that exhausted the budget
};

/** Worker lifecycle moments surfaced to the journal. */
enum class WorkerEvent : std::uint8_t
{
    Started,   //!< worker forked (initial or replacement)
    Died,      //!< worker lost; detail describes the wait status
    Restarted, //!< replacement scheduled after a death
};

const char *workerEventName(WorkerEvent event);

/**
 * Handed to the cell function inside the worker; lets a cell report
 * non-terminal events (retries, injected faults) upstream so the
 * supervisor can journal them — children never write journals
 * themselves (single-writer discipline).
 */
class WorkerContext
{
  public:
    WorkerContext(int fd, void *writeLock, std::size_t cell)
        : _fd(fd), _writeLock(writeLock), _cell(cell)
    {
    }

    std::size_t cell() const { return _cell; }

    /** Report one failed attempt (mirrors resilience::RetryObserver). */
    void reportRetry(std::size_t attempt, double backoffSeconds,
                     const std::string &error);

    /** Report an injected fault firing (kind = fault kind name). */
    void reportFault(std::size_t attempt, const std::string &kind);

  private:
    int _fd;
    void *_writeLock; // std::mutex shared with the heartbeat thread
    std::size_t _cell;
};

/**
 * Measures one cell inside a worker process and returns the result
 * payload (opaque to the pool). Runs in the forked child: throwing
 * or crashing here charges the cell's crash budget. dispatchAttempt
 * counts prior worker deaths on this cell (0 on first dispatch).
 */
using CellFn = std::function<std::string(
    WorkerContext &ctx, std::size_t cell, std::size_t dispatchAttempt)>;

/**
 * Called once inside each freshly forked worker to build its CellFn
 * (e.g. clone the warmed prototype meter). Runs after fork, so any
 * state it captures is the child's copy-on-write snapshot.
 */
using WorkerFactory = std::function<CellFn()>;

/** Supervisor-side hooks; all run on the caller's thread. Any hook
 * may be left empty. */
struct PoolCallbacks
{
    /** Terminal success for `cell` with the child's payload and its
     * measured wall/CPU seconds. */
    std::function<void(std::size_t cell, double wallSeconds,
                       double cpuSeconds, const std::string &payload)>
        onCellDone;

    /** A cell attempt failed inside the worker and will be retried
     * in-process (relayed CellRetry frame). */
    std::function<void(std::size_t cell, std::size_t attempt,
                       double backoffSeconds, const std::string &error)>
        onCellRetry;

    /** An injected fault fired inside the worker (relayed frame). */
    std::function<void(std::size_t cell, std::size_t attempt,
                       const std::string &kind)>
        onCellFault;

    /** `cell` exhausted its crash budget; `reason` describes the
     * last death (signal/exit code). The cell is never re-dispatched. */
    std::function<void(std::size_t cell, std::size_t crashes,
                       const std::string &reason)>
        onQuarantine;

    /** Worker lifecycle: slot index, pid, event, and a detail string
     * (wait status for Died, backoff for Restarted). */
    std::function<void(std::size_t slot, std::int64_t pid,
                       WorkerEvent event, const std::string &detail)>
        onWorkerEvent;

    /** A worker died with a cell in flight — checkpoint hook so
     * progress survives a subsequent supervisor loss too. */
    std::function<void()> onWorkerLoss;
};

/**
 * Run `cells` (indices are opaque tokens, passed through to the
 * worker) to completion across forked workers. Returns once every
 * cell is either completed or quarantined. Throws std::runtime_error
 * only on unrecoverable supervisor-side failures (fork/pipe
 * exhaustion at startup).
 */
PoolStats runPool(const PoolConfig &config,
                  const std::vector<std::size_t> &cells,
                  const WorkerFactory &factory,
                  const PoolCallbacks &callbacks);

} // namespace savat::service

#endif // SAVAT_SERVICE_POOL_HH
