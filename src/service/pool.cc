#include "pool.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include "support/obs.hh"
#include "support/subprocess.hh"
#include "support/wire.hh"

namespace savat::service {
namespace {

using support::Frame;
using support::FrameType;
using support::WireReader;
using support::WireStatus;

double monotonicSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

double threadCpuSeconds()
{
    timespec ts{};
    if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return 0.0;
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Child exit codes for failures that are not crashes of the cell
/// function itself; the supervisor only sees them in describe().
enum ChildExit : int
{
    kExitOk = 0,
    kExitFactoryThrew = 21,
    kExitBadMeasureFrame = 22,
    kExitCellThrew = 23,
    kExitParentGone = 24,
};

int workerChildMain(int readFd, int writeFd, const PoolConfig &config,
                    const WorkerFactory &factory)
{
    support::resetChildSignals();
    support::dieWithParent();
    // A write racing the supervisor's death must surface as EPIPE,
    // not SIGPIPE, so the child can exit on its own terms.
    support::ignoreSigpipe();

    CellFn fn;
    try {
        fn = factory();
    } catch (...) {
        return kExitFactoryThrew;
    }

    std::mutex writeMutex;
    std::atomic<std::int64_t> currentCell{-1};
    std::mutex stopMutex;
    std::condition_variable stopCv;
    bool stop = false;

    // Heartbeats come from a dedicated thread so a long-running cell
    // still proves liveness; a frozen process (SIGSTOP, livelock)
    // freezes this thread too, which is exactly what makes the
    // supervisor's heartbeat timeout meaningful.
    std::thread heartbeat([&] {
        std::uint64_t seq = 0;
        const auto period = std::chrono::duration<double>(
            config.heartbeatSeconds > 0 ? config.heartbeatSeconds : 0.2);
        for (;;) {
            Frame beat;
            beat.type = FrameType::Heartbeat;
            support::appendU64(
                beat.payload,
                static_cast<std::uint64_t>(currentCell.load()));
            support::appendU64(beat.payload, seq++);
            {
                std::lock_guard<std::mutex> guard(writeMutex);
                if (!support::writeFrame(writeFd, beat))
                    return;
            }
            std::unique_lock<std::mutex> lock(stopMutex);
            if (stopCv.wait_for(lock, period, [&] { return stop; }))
                return;
        }
    });

    int rc = kExitOk;
    WireReader reader;
    Frame frame;
    while (support::readFrameBlocking(readFd, reader, frame)) {
        if (frame.type == FrameType::Shutdown)
            break;
        if (frame.type != FrameType::Measure)
            continue;
        std::size_t off = 0;
        std::uint64_t cell = 0;
        std::uint64_t dispatchAttempt = 0;
        if (!support::readU64(frame.payload, off, cell) ||
            !support::readU64(frame.payload, off, dispatchAttempt)) {
            rc = kExitBadMeasureFrame;
            break;
        }
        currentCell.store(static_cast<std::int64_t>(cell));
        const double wall0 = monotonicSeconds();
        const double cpu0 = threadCpuSeconds();
        WorkerContext ctx(writeFd, &writeMutex,
                          static_cast<std::size_t>(cell));
        std::string payload;
        try {
            payload = fn(ctx, static_cast<std::size_t>(cell),
                         static_cast<std::size_t>(dispatchAttempt));
        } catch (...) {
            // An exception escaping the cell function is a worker
            // crash by contract: charge the cell's crash budget.
            rc = kExitCellThrew;
            break;
        }
        Frame done;
        done.type = FrameType::CellDone;
        support::appendU64(done.payload, cell);
        support::appendF64(done.payload, monotonicSeconds() - wall0);
        support::appendF64(done.payload, threadCpuSeconds() - cpu0);
        done.payload += payload;
        currentCell.store(-1);
        std::lock_guard<std::mutex> guard(writeMutex);
        if (!support::writeFrame(writeFd, done)) {
            rc = kExitParentGone;
            break;
        }
    }

    {
        std::lock_guard<std::mutex> lock(stopMutex);
        stop = true;
    }
    stopCv.notify_all();
    heartbeat.join();
    return rc;
}

struct PendingCell
{
    std::size_t cell = 0;
    std::size_t dispatchAttempt = 0;
};

struct Slot
{
    pid_t pid = -1;
    int toChild = -1;
    int fromChild = -1;
    WireReader reader;
    bool alive = false;
    std::int64_t cell = -1; //!< in-flight cell index, -1 idle
    std::size_t dispatchAttempt = 0;
    double lastBeat = 0.0;
    double cellStart = 0.0;
    double respawnAt = 0.0;
    std::size_t spawnCount = 0;
};

class Supervisor
{
  public:
    Supervisor(const PoolConfig &config,
               const std::vector<std::size_t> &cells,
               const WorkerFactory &factory,
               const PoolCallbacks &callbacks)
        : _config(config), _factory(factory), _callbacks(callbacks)
    {
        for (std::size_t i = 0; i < cells.size(); ++i)
            _queue.push_back(PendingCell{cells[i], 0});
        _total = cells.size();
        _slots.resize(std::max<std::size_t>(
            1, std::min(config.workers > 0 ? config.workers : 1,
                        std::max<std::size_t>(1, _total))));
    }

    PoolStats run()
    {
        support::ignoreSigpipe();
        for (std::size_t i = 0; i < _slots.size(); ++i)
            if (!spawn(i))
                throw std::runtime_error(
                    "service: failed to start worker " +
                    std::to_string(i) + ": " + std::strerror(errno));
        while (finishedCells() < _total)
            step();
        shutdownWorkers();
        return _stats;
    }

  private:
    std::size_t finishedCells() const
    {
        return _stats.completed + _stats.quarantined;
    }

    std::size_t aliveCount() const
    {
        std::size_t n = 0;
        for (const Slot &slot : _slots)
            n += slot.alive ? 1 : 0;
        return n;
    }

    void publishAlive()
    {
        SAVAT_METRIC_GAUGE("service.workers_alive",
                           static_cast<double>(aliveCount()));
    }

    bool spawn(std::size_t index)
    {
        Slot &slot = _slots[index];
        support::Pipe toChild;
        support::Pipe fromChild;
        if (!toChild.open() || !fromChild.open())
            return false;

        // Collect every supervisor-side fd the child must not
        // inherit open: sibling pipes would keep a dead sibling's
        // channel half-open and mask its EOF.
        std::vector<int> closeInChild;
        for (const Slot &other : _slots) {
            if (other.toChild >= 0)
                closeInChild.push_back(other.toChild);
            if (other.fromChild >= 0)
                closeInChild.push_back(other.fromChild);
        }
        closeInChild.push_back(toChild.writeFd());
        closeInChild.push_back(fromChild.readFd());

        const int childRead = toChild.readFd();
        const int childWrite = fromChild.writeFd();
        const PoolConfig &config = _config;
        const WorkerFactory &factory = _factory;
        const pid_t pid = support::forkProcess([&]() -> int {
            for (const int fd : closeInChild)
                ::close(fd);
            return workerChildMain(childRead, childWrite, config,
                                   factory);
        });
        if (pid < 0)
            return false;

        toChild.closeRead();
        fromChild.closeWrite();
        slot.pid = pid;
        // Ownership of the surviving ends moves to the slot; its
        // close path is closeSlotFds().
        slot.toChild = toChild.releaseWrite();
        slot.fromChild = fromChild.releaseRead();
        ::fcntl(slot.fromChild, F_SETFL, O_NONBLOCK);
        slot.reader = WireReader{};
        slot.alive = true;
        slot.cell = -1;
        const double now = monotonicSeconds();
        slot.lastBeat = now;
        slot.respawnAt = 0.0;
        const WorkerEvent event = slot.spawnCount == 0
                                      ? WorkerEvent::Started
                                      : WorkerEvent::Restarted;
        slot.spawnCount++;
        if (event == WorkerEvent::Restarted) {
            _stats.restarts++;
            SAVAT_METRIC_COUNT("service.restarts");
        }
        if (_callbacks.onWorkerEvent)
            _callbacks.onWorkerEvent(index, pid, event,
                                     "pid " + std::to_string(pid));
        publishAlive();
        return true;
    }

    void closeSlotFds(Slot &slot)
    {
        if (slot.toChild >= 0) {
            ::close(slot.toChild);
            slot.toChild = -1;
        }
        if (slot.fromChild >= 0) {
            ::close(slot.fromChild);
            slot.fromChild = -1;
        }
    }

    void dispatch()
    {
        for (std::size_t i = 0; i < _slots.size() && !_queue.empty();
             ++i) {
            Slot &slot = _slots[i];
            if (!slot.alive || slot.cell >= 0)
                continue;
            const PendingCell next = _queue.front();
            _queue.pop_front();
            slot.cell = static_cast<std::int64_t>(next.cell);
            slot.dispatchAttempt = next.dispatchAttempt;
            slot.cellStart = monotonicSeconds();
            slot.lastBeat = slot.cellStart;
            Frame frame;
            frame.type = FrameType::Measure;
            support::appendU64(frame.payload, next.cell);
            support::appendU64(frame.payload, next.dispatchAttempt);
            if (!support::writeFrame(slot.toChild, frame)) {
                // Worker died between poll rounds; the death path
                // requeues the cell we just assigned.
                killAndReap(i, "write failed (worker gone)");
                continue;
            }
            _stats.dispatched++;
            SAVAT_METRIC_COUNT("service.cells_dispatched");
        }
    }

    /// Pull buffered bytes and process frames. Returns false when
    /// the worker must be treated as dead (EOF or corrupt stream).
    bool drainSlot(std::size_t index, std::string *reason)
    {
        Slot &slot = _slots[index];
        bool eof = false;
        for (;;) {
            char buf[4096];
            const ssize_t n = ::read(slot.fromChild, buf, sizeof(buf));
            if (n > 0) {
                slot.reader.feed(buf, static_cast<std::size_t>(n));
                continue;
            }
            if (n == 0) {
                eof = true;
                break;
            }
            if (errno == EINTR)
                continue;
            break; // EAGAIN: drained
        }
        Frame frame;
        std::string wireError;
        for (;;) {
            const WireStatus status = slot.reader.next(frame, &wireError);
            if (status == WireStatus::NeedMore)
                break;
            if (status == WireStatus::Corrupt) {
                if (reason)
                    *reason = "corrupt frame: " + wireError;
                return false;
            }
            if (!handleFrame(index, frame)) {
                if (reason)
                    *reason = "protocol violation (" +
                              std::string(frameTypeName(frame.type)) +
                              ")";
                return false;
            }
        }
        if (eof) {
            if (reason)
                *reason = slot.reader.pendingBytes() > 0
                              ? "pipe closed mid-frame"
                              : "pipe closed";
            return false;
        }
        return true;
    }

    bool handleFrame(std::size_t index, const Frame &frame)
    {
        Slot &slot = _slots[index];
        std::size_t off = 0;
        switch (frame.type) {
        case FrameType::Heartbeat: {
            slot.lastBeat = monotonicSeconds();
            return true;
        }
        case FrameType::CellRetry: {
            std::uint64_t cell = 0;
            std::uint64_t attempt = 0;
            double backoff = 0.0;
            if (!support::readU64(frame.payload, off, cell) ||
                !support::readU64(frame.payload, off, attempt) ||
                !support::readF64(frame.payload, off, backoff))
                return false;
            if (_callbacks.onCellRetry)
                _callbacks.onCellRetry(
                    static_cast<std::size_t>(cell),
                    static_cast<std::size_t>(attempt), backoff,
                    frame.payload.substr(off));
            return true;
        }
        case FrameType::CellFault: {
            std::uint64_t cell = 0;
            std::uint64_t attempt = 0;
            if (!support::readU64(frame.payload, off, cell) ||
                !support::readU64(frame.payload, off, attempt))
                return false;
            if (_callbacks.onCellFault)
                _callbacks.onCellFault(static_cast<std::size_t>(cell),
                                       static_cast<std::size_t>(attempt),
                                       frame.payload.substr(off));
            return true;
        }
        case FrameType::CellDone: {
            std::uint64_t cell = 0;
            double wall = 0.0;
            double cpu = 0.0;
            if (!support::readU64(frame.payload, off, cell) ||
                !support::readF64(frame.payload, off, wall) ||
                !support::readF64(frame.payload, off, cpu))
                return false;
            if (slot.cell < 0 ||
                static_cast<std::uint64_t>(slot.cell) != cell)
                return false; // result for a cell we never dispatched
            if (_callbacks.onCellDone)
                _callbacks.onCellDone(static_cast<std::size_t>(cell),
                                      wall, cpu,
                                      frame.payload.substr(off));
            slot.cell = -1;
            _stats.completed++;
            return true;
        }
        default:
            return false; // parent-bound streams carry no other types
        }
    }

    void killAndReap(std::size_t index, const std::string &why)
    {
        Slot &slot = _slots[index];
        if (!slot.alive)
            return;
        ::kill(slot.pid, SIGKILL);
        support::ExitStatus status;
        support::waitProcess(slot.pid, status, /*block=*/true);
        // The pipe may still hold complete frames written before the
        // kill (e.g. a CellDone racing a deadline) — honor them so a
        // finished cell is never re-measured or charged.
        std::string ignored;
        drainSlot(index, &ignored);
        handleDeath(index, status, why);
    }

    void handleDeath(std::size_t index, const support::ExitStatus &status,
                     const std::string &why)
    {
        Slot &slot = _slots[index];
        if (!slot.alive)
            return;
        slot.alive = false;
        closeSlotFds(slot);
        _stats.deaths++;
        SAVAT_METRIC_COUNT("service.worker_deaths");
        const std::string detail =
            why.empty() ? status.describe()
                        : why + ", " + status.describe();
        if (_callbacks.onWorkerEvent)
            _callbacks.onWorkerEvent(index, slot.pid,
                                     WorkerEvent::Died, detail);
        if (slot.cell >= 0) {
            const std::size_t cell =
                static_cast<std::size_t>(slot.cell);
            slot.cell = -1;
            const std::size_t crashes = ++_crashes[cell];
            if (_callbacks.onWorkerLoss)
                _callbacks.onWorkerLoss();
            if (crashes >=
                std::max<std::size_t>(1, _config.restart.maxAttempts)) {
                _stats.quarantined++;
                SAVAT_METRIC_COUNT("service.quarantined_cells");
                if (_callbacks.onQuarantine)
                    _callbacks.onQuarantine(cell, crashes, detail);
            } else {
                // Head of the queue: the crashed cell keeps its
                // scheduling position so recovery stays prompt.
                _queue.push_front(PendingCell{cell, crashes});
            }
        }
        publishAlive();
        if (finishedCells() >= _total)
            return; // no respawn needed; run() is about to shut down
        const double backoff = resilience::retryBackoffSeconds(
            _config.restart, index, slot.spawnCount);
        slot.respawnAt = monotonicSeconds() + backoff;
    }

    void respawnDue()
    {
        if (finishedCells() >= _total)
            return;
        const double now = monotonicSeconds();
        for (std::size_t i = 0; i < _slots.size(); ++i) {
            Slot &slot = _slots[i];
            if (slot.alive || slot.respawnAt <= 0.0 ||
                slot.respawnAt > now)
                continue;
            if (!spawn(i)) {
                // Transient fork/pipe pressure: try again shortly.
                slot.respawnAt = now + 0.25;
            }
        }
    }

    void step()
    {
        respawnDue();
        dispatch();

        std::vector<pollfd> fds;
        std::vector<std::size_t> owners;
        for (std::size_t i = 0; i < _slots.size(); ++i) {
            if (!_slots[i].alive)
                continue;
            fds.push_back(pollfd{_slots[i].fromChild, POLLIN, 0});
            owners.push_back(i);
        }
        if (fds.empty()) {
            // All workers down, waiting out respawn backoff.
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            return;
        }
        const int rc = ::poll(fds.data(),
                              static_cast<nfds_t>(fds.size()), 50);
        if (rc < 0 && errno != EINTR)
            throw std::runtime_error(std::string("service: poll: ") +
                                     std::strerror(errno));
        if (rc > 0) {
            for (std::size_t k = 0; k < fds.size(); ++k) {
                if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                    continue;
                const std::size_t i = owners[k];
                if (!_slots[i].alive)
                    continue;
                std::string reason;
                if (!drainSlot(i, &reason))
                    killAndReap(i, reason);
            }
        }

        // Reap exits the pipe did not reveal (e.g. SIGKILL from
        // outside with buffered frames already consumed).
        for (std::size_t i = 0; i < _slots.size(); ++i) {
            Slot &slot = _slots[i];
            if (!slot.alive)
                continue;
            support::ExitStatus status;
            if (support::waitProcess(slot.pid, status,
                                     /*block=*/false)) {
                std::string ignored;
                drainSlot(i, &ignored);
                handleDeath(i, status, "");
            }
        }

        // Liveness policy: heartbeat staleness and cell deadlines.
        const double now = monotonicSeconds();
        for (std::size_t i = 0; i < _slots.size(); ++i) {
            Slot &slot = _slots[i];
            if (!slot.alive)
                continue;
            if (_config.heartbeatTimeoutSeconds > 0 &&
                now - slot.lastBeat > _config.heartbeatTimeoutSeconds) {
                killAndReap(i, "heartbeat timeout");
                continue;
            }
            if (_config.cellDeadlineSeconds > 0 && slot.cell >= 0 &&
                now - slot.cellStart > _config.cellDeadlineSeconds) {
                killAndReap(i, "cell deadline exceeded");
            }
        }
    }

    void shutdownWorkers()
    {
        for (Slot &slot : _slots) {
            if (!slot.alive)
                continue;
            Frame bye;
            bye.type = FrameType::Shutdown;
            support::writeFrame(slot.toChild, bye);
            if (slot.toChild >= 0) {
                ::close(slot.toChild);
                slot.toChild = -1;
            }
        }
        const double deadline = monotonicSeconds() + 5.0;
        for (std::size_t i = 0; i < _slots.size(); ++i) {
            Slot &slot = _slots[i];
            if (!slot.alive)
                continue;
            support::ExitStatus status;
            while (!support::waitProcess(slot.pid, status,
                                         /*block=*/false)) {
                if (monotonicSeconds() > deadline) {
                    ::kill(slot.pid, SIGKILL);
                    support::waitProcess(slot.pid, status,
                                         /*block=*/true);
                    break;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
            }
            slot.alive = false;
            closeSlotFds(slot);
        }
        publishAlive();
    }

    PoolConfig _config;
    const WorkerFactory &_factory;
    const PoolCallbacks &_callbacks;
    std::vector<Slot> _slots;
    std::deque<PendingCell> _queue;
    std::unordered_map<std::size_t, std::size_t> _crashes;
    std::size_t _total = 0;
    PoolStats _stats;
};

} // namespace

const char *workerEventName(WorkerEvent event)
{
    switch (event) {
    case WorkerEvent::Started:
        return "worker-started";
    case WorkerEvent::Died:
        return "worker-died";
    case WorkerEvent::Restarted:
        return "worker-restarted";
    }
    return "unknown";
}

void WorkerContext::reportRetry(std::size_t attempt,
                                double backoffSeconds,
                                const std::string &error)
{
    Frame frame;
    frame.type = FrameType::CellRetry;
    support::appendU64(frame.payload, _cell);
    support::appendU64(frame.payload, attempt);
    support::appendF64(frame.payload, backoffSeconds);
    frame.payload += error;
    std::lock_guard<std::mutex> guard(
        *static_cast<std::mutex *>(_writeLock));
    support::writeFrame(_fd, frame);
}

void WorkerContext::reportFault(std::size_t attempt,
                                const std::string &kind)
{
    Frame frame;
    frame.type = FrameType::CellFault;
    support::appendU64(frame.payload, _cell);
    support::appendU64(frame.payload, attempt);
    frame.payload += kind;
    std::lock_guard<std::mutex> guard(
        *static_cast<std::mutex *>(_writeLock));
    support::writeFrame(_fd, frame);
}

PoolStats runPool(const PoolConfig &config,
                  const std::vector<std::size_t> &cells,
                  const WorkerFactory &factory,
                  const PoolCallbacks &callbacks)
{
    if (cells.empty())
        return PoolStats{};
    Supervisor supervisor(config, cells, factory, callbacks);
    return supervisor.run();
}

} // namespace savat::service
