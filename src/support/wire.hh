/**
 * @file
 * savat-worker-wire-v1: the length-prefixed, CRC-guarded frame
 * protocol between a campaign supervisor and its forked worker
 * processes (savat::service::WorkerPool).
 *
 * A frame is a fixed little-endian header followed by the payload:
 *
 *   u32 magic      0x31575653 ("SVW1")
 *   u8  type       FrameType
 *   u32 length     payload bytes (<= kMaxFramePayload)
 *   u32 crc        CRC-32 over type, length and the payload bytes
 *   ... payload
 *
 * The CRC covers the header's type/length fields as well as the
 * payload, so a bit flip anywhere in the frame is detected, and a
 * frame torn by a worker dying mid-write is distinguishable from
 * "more bytes still in flight" only at EOF — which is exactly the
 * distinction the supervisor needs (a closed pipe with a partial
 * frame means the worker died mid-send and the in-flight cell must
 * be re-dispatched).
 *
 * Payloads are packed with the appendU64/appendF64 helpers (64-bit
 * little-endian words; doubles travel as their IEEE-754 bit
 * patterns, so samples survive the pipe bit-exactly). Frame grammar
 * (supervisor <-> worker):
 *
 *   Measure    u64 cell, u64 dispatchAttempt        parent -> child
 *   Shutdown   (empty)                              parent -> child
 *   Heartbeat  i64 cell (-1 idle), u64 seq          child -> parent
 *   CellRetry  u64 cell, u64 attempt, f64 backoff,
 *              error text                           child -> parent
 *   CellFault  u64 cell, u64 attempt, kind text     child -> parent
 *   CellDone   u64 cell, f64 wall_s, f64 cpu_s,
 *              one-cell checkpoint text             child -> parent
 */

#ifndef SAVAT_SUPPORT_WIRE_HH
#define SAVAT_SUPPORT_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace savat::support {

/** Wire schema identifier (journaled in proc-mode run-start). */
inline constexpr const char *kWireSchema = "savat-worker-wire-v1";

/** Hard payload cap: a length field past this is corruption. */
inline constexpr std::size_t kMaxFramePayload = 1u << 30;

/** Frame types; values are wire-stable. */
enum class FrameType : std::uint8_t
{
    Measure = 1,   //!< parent -> child: measure one cell
    Shutdown = 2,  //!< parent -> child: drain and exit
    Heartbeat = 3, //!< child -> parent: liveness tick
    CellRetry = 4, //!< child -> parent: one failed attempt
    CellFault = 5, //!< child -> parent: injected fault fired
    CellDone = 6,  //!< child -> parent: terminal cell result
};

/** Stable lower-case name for logs and journals. */
const char *frameTypeName(FrameType type);

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Heartbeat;
    std::string payload;
};

/** Append a 64-bit word, little-endian. */
void appendU64(std::string &out, std::uint64_t v);

/** Append a double as its IEEE-754 bit pattern (bit-exact). */
void appendF64(std::string &out, double v);

/**
 * Cursor-based payload reader; each read*() advances `offset` and
 * returns false on a short payload (leaving outputs untouched).
 */
bool readU64(const std::string &payload, std::size_t &offset,
             std::uint64_t &out);
bool readF64(const std::string &payload, std::size_t &offset,
             double &out);

/** Serialize one frame (header + payload) to bytes. */
std::string encodeFrame(const Frame &frame);

/**
 * Write a frame to `fd` with a retry loop (EINTR-safe). Returns
 * false once any write fails — e.g. EPIPE after the peer died; the
 * caller must have SIGPIPE ignored.
 */
bool writeFrame(int fd, const Frame &frame);

/** Decoder outcome for one attempt to pull a frame off the buffer. */
enum class WireStatus : std::uint8_t
{
    Frame,    //!< a complete, CRC-clean frame was produced
    NeedMore, //!< buffer holds only a prefix; feed more bytes
    Corrupt,  //!< bad magic / oversized length / CRC mismatch
};

/**
 * Incremental frame decoder over a byte stream. feed() appends raw
 * pipe bytes; next() pulls complete frames out. A Corrupt result
 * poisons the stream permanently — after corruption, resynchronizing
 * with a byte-oriented peer is hopeless and the worker must be
 * treated as compromised.
 */
class WireReader
{
  public:
    void feed(const char *data, std::size_t size);

    /**
     * Decode the next frame. On Corrupt, `error` (when non-null)
     * describes the damage and every further call returns Corrupt.
     */
    WireStatus next(Frame &out, std::string *error = nullptr);

    /** Undecoded bytes currently buffered (a partial frame at EOF
     * means the peer died mid-send). */
    std::size_t pendingBytes() const { return _buf.size() - _pos; }

  private:
    std::string _buf;
    std::size_t _pos = 0;
    bool _corrupt = false;
    std::string _corruptError;
};

/**
 * Blocking read loop for the single-threaded worker side: pull
 * bytes from `fd` until one frame completes. Returns false on EOF,
 * read error, or corruption (workers treat all three as "parent is
 * gone; exit").
 */
bool readFrameBlocking(int fd, WireReader &reader, Frame &out,
                       std::string *error = nullptr);

} // namespace savat::support

#endif // SAVAT_SUPPORT_WIRE_HH
