/**
 * @file
 * savat::obs — low-overhead observability for the measurement
 * pipeline: a metrics registry, scoped tracing spans and a
 * structured export layer.
 *
 * The paper's methodology is itself a measurement instrument, so the
 * pipeline that simulates it gets one too. Three pieces:
 *
 *  - **Metrics registry.** Named monotonic counters, gauges and
 *    histogram/timer statistics (count/sum/min/mean/p50/p95/p99/max).
 *    Every metric is sharded across a fixed set of cache-line-padded
 *    atomic slots indexed by a per-thread shard id, so the campaign
 *    hot paths record with one relaxed atomic op and never take a
 *    lock; shards are merged only when a snapshot is read.
 *  - **Tracing spans.** `SAVAT_TRACE_SPAN("campaign.cell", ...)`
 *    opens an RAII span buffered in a per-thread event list and
 *    exportable as Chrome/Perfetto `trace_event` JSON
 *    (chrome://tracing or https://ui.perfetto.dev load it directly).
 *  - **Export layer.** The registry dumps as JSON (machine-readable)
 *    or a text table (human-readable); dumps can run on demand or be
 *    scheduled for process exit (`SAVAT_METRICS`/`SAVAT_TRACE`
 *    environment variables, the CLI's `--metrics`/`--trace`).
 *
 * Telemetry is opt-in and off by default. When disabled, every
 * record path reduces to one relaxed atomic-bool load (the macros
 * below also skip argument evaluation), no allocation happens, and
 * nothing is buffered. Enabled or not, telemetry never touches an
 * RNG stream, so campaign outputs stay bit-identical — the
 * determinism guarantee of DESIGN.md §5c extends to traced runs
 * (proved by tests/test_obs.cc).
 *
 * Defining SAVAT_OBS_DISABLE compiles the recording macros out
 * entirely for builds that must not carry the guard loads.
 */

#ifndef SAVAT_SUPPORT_OBS_HH
#define SAVAT_SUPPORT_OBS_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace savat::obs {

/** Shards per metric; per-thread shard ids round-robin over these. */
constexpr std::size_t kShards = 16;

/** Log2-spaced histogram buckets (bucket 0 holds v <= 0). */
constexpr std::size_t kHistogramBuckets = 64;

namespace detail {

extern std::atomic<bool> g_metrics_enabled;
extern std::atomic<bool> g_trace_enabled;

/** Stable per-thread shard slot in [0, kShards). */
std::size_t shardIndex();

/** Nanoseconds since the process-wide trace epoch (steady clock). */
std::uint64_t nowNs();

} // namespace detail

/** Whether metric recording is on (one relaxed load). */
inline bool
metricsEnabled()
{
    return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/** Whether span tracing is on (one relaxed load). */
inline bool
traceEnabled()
{
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

void setMetricsEnabled(bool on);
void setTraceEnabled(bool on);

/**
 * Monotonic counter, sharded for lock-free concurrent increments.
 * add() is a no-op while metrics are disabled.
 */
class Counter
{
  public:
    Counter() = default;
    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    void
    add(std::uint64_t n = 1)
    {
        if (!metricsEnabled())
            return;
        _shards[detail::shardIndex()].v.fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Merged total over all shards. */
    std::uint64_t value() const;

    void reset();

  private:
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> v{0};
    };
    std::array<Shard, kShards> _shards{};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    Gauge() = default;
    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    void
    set(double v)
    {
        if (!metricsEnabled())
            return;
        _v.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return _v.load(std::memory_order_relaxed);
    }

    void reset() { _v.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> _v{0.0};
};

/** Merged histogram statistics at snapshot time. */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0; //!< bucket-resolution estimate (log2 buckets)
    double p95 = 0.0; //!< bucket-resolution estimate (log2 buckets)
    double p99 = 0.0; //!< bucket-resolution estimate (log2 buckets)
};

/**
 * A point-in-time copy of every metric: the currency of the export
 * layer. Registry::snapshot() produces one from the live registry;
 * the journal's `run-end` event embeds one; the report layer parses
 * and merges them. All the writers below consume snapshots, so the
 * same code renders live and journaled metrics.
 */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /**
     * Fold `other` in: counters add, gauges keep the larger value
     * (the campaign gauges are high-water marks and job knobs, where
     * max is the honest merge), histograms merge count/sum/min/max
     * exactly and average the quantile estimates weighted by count
     * (the underlying buckets are not serialized).
     */
    void merge(const MetricsSnapshot &other);
};

/** Render a snapshot as the savat.metrics.v1 JSON document. */
void writeMetricsJson(std::ostream &os, const MetricsSnapshot &snap);

/** Render a snapshot as an aligned, human-readable table. */
void writeMetricsTable(std::ostream &os, const MetricsSnapshot &snap);

/**
 * Render a snapshot in the Prometheus text exposition format
 * (version 0.0.4): counters and gauges map directly, histograms
 * export as summaries (quantile labels 0.5/0.95/0.99 plus _sum and
 * _count) with _min/_max companion gauges. Metric names are
 * prefixed `savat_` and sanitized ('.' and '-' become '_').
 */
void writePrometheusText(std::ostream &os,
                         const MetricsSnapshot &snap);

/**
 * Value-distribution metric: exact count/sum/min/max/mean plus
 * bucket-resolution p50/p95/p99 from log2-spaced buckets. record() is
 * lock-free (relaxed atomic adds and CAS min/max on this thread's
 * shard) and a no-op while metrics are disabled. Timer histograms
 * record seconds by convention (name them *_seconds).
 */
class Histogram
{
  public:
    Histogram() = default;
    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    void record(double v);
    HistogramSnapshot snapshot() const;
    void reset();

  private:
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> count{0};
        std::atomic<double> sum{0.0};
        std::atomic<double> minv{
            std::numeric_limits<double>::infinity()};
        std::atomic<double> maxv{
            -std::numeric_limits<double>::infinity()};
        std::array<std::atomic<std::uint64_t>, kHistogramBuckets>
            buckets{};
    };
    std::array<Shard, kShards> _shards{};
};

/**
 * RAII wall-clock timer feeding a histogram in seconds. Captures the
 * start time only when metrics are enabled at construction.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &h)
    {
        if (metricsEnabled()) {
            _h = &h;
            _start = std::chrono::steady_clock::now();
        }
    }

    ~ScopedTimer()
    {
        if (_h) {
            const std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - _start;
            _h->record(dt.count());
        }
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Histogram *_h = nullptr;
    std::chrono::steady_clock::time_point _start;
};

/**
 * The process-wide metric registry. Lookup by name takes a mutex
 * (call sites cache the returned reference — see the macros below);
 * the returned references stay valid for the process lifetime.
 * reset() zeroes values but never invalidates handles.
 */
class Registry
{
  public:
    static Registry &instance();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Point-in-time copy of every metric. */
    MetricsSnapshot snapshot() const;

    /** Merged snapshot as JSON ({counters, gauges, histograms}). */
    void writeJson(std::ostream &os) const;

    /** Merged snapshot as an aligned, human-readable table. */
    void writeTable(std::ostream &os) const;

    /** Zero every metric (handles stay valid). */
    void reset();

  private:
    Registry() = default;

    mutable std::mutex _mu;
    std::map<std::string, std::unique_ptr<Counter>> _counters;
    std::map<std::string, std::unique_ptr<Gauge>> _gauges;
    std::map<std::string, std::unique_ptr<Histogram>> _histograms;
};

/** One trace-span argument value; numbers export unquoted. */
struct TraceValue
{
    std::string text;
    bool quoted = true;

    TraceValue(const char *s) : text(s) {}
    TraceValue(std::string s) : text(std::move(s)) {}
    TraceValue(bool b) : text(b ? "true" : "false"), quoted(false) {}
    TraceValue(double v);

    template <typename T,
              std::enable_if_t<std::is_integral_v<T> &&
                                   !std::is_same_v<T, bool>,
                               int> = 0>
    TraceValue(T v) : text(std::to_string(v)), quoted(false)
    {
    }
};

using TraceArg = std::pair<std::string, TraceValue>;
using TraceArgs = std::vector<TraceArg>;

/**
 * A scoped trace span. Default-constructed spans are inert; open()
 * stamps the start time and the destructor (or close()) appends one
 * complete event to the calling thread's buffer. Spans must close on
 * the thread that opened them. Prefer the SAVAT_TRACE_SPAN macro,
 * which skips argument construction while tracing is off.
 */
class TraceSpan
{
  public:
    TraceSpan() = default;
    ~TraceSpan() { close(); }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    void open(std::string name, TraceArgs args = {});
    void close();

  private:
    bool _open = false;
    std::string _name;
    TraceArgs _args;
    std::uint64_t _startNs = 0;
};

/**
 * Drain every thread's buffered span into a Chrome/Perfetto
 * trace_event JSON document ({"traceEvents": [...]}). Threads still
 * inside an open span contribute it on their next close; call this
 * after joining workers for a complete picture.
 */
void writeTraceJson(std::ostream &os);

/** Drop all buffered trace events. */
void clearTrace();

/** Buffered (closed) trace events so far, over all threads. */
std::size_t traceEventCount();

/**
 * Write the registry to `path` now: "-" streams JSON to stdout, a
 * path ending in ".txt" gets the text table, anything else gets
 * JSON. Returns false (with a warning) when the file cannot be
 * written.
 */
bool dumpMetricsNow(const std::string &path);

/** Write the buffered trace to `path` ("-" = stdout) now. */
bool dumpTraceNow(const std::string &path);

/**
 * Schedule a metrics dump to `path` at process exit (repeated calls
 * replace the path; empty cancels). Registers one atexit handler.
 */
void requestMetricsDump(const std::string &path);

/** Schedule a trace dump to `path` at process exit. */
void requestTraceDump(const std::string &path);

/**
 * Honor SAVAT_METRICS=<path|-> and SAVAT_TRACE=<path>: each enables
 * its subsystem and schedules the exit dump. Call once at startup.
 */
void configureFromEnvironment();

} // namespace savat::obs

#define SAVAT_OBS_CONCAT_2(a, b) a##b
#define SAVAT_OBS_CONCAT(a, b) SAVAT_OBS_CONCAT_2(a, b)

#ifndef SAVAT_OBS_DISABLE

/**
 * Add `n` to the named counter. The registry lookup runs once per
 * call site; while metrics are off the cost is one relaxed load and
 * `n` is not evaluated.
 */
#define SAVAT_METRIC_ADD(name, n)                                         \
    do {                                                                  \
        if (::savat::obs::metricsEnabled()) {                             \
            static ::savat::obs::Counter &SAVAT_OBS_CONCAT(               \
                savat_obs_c_, __LINE__) =                                 \
                ::savat::obs::Registry::instance().counter(name);         \
            SAVAT_OBS_CONCAT(savat_obs_c_, __LINE__).add(n);              \
        }                                                                 \
    } while (0)

/** Increment the named counter by one. */
#define SAVAT_METRIC_COUNT(name) SAVAT_METRIC_ADD(name, 1)

/** Record `v` into the named histogram. */
#define SAVAT_METRIC_RECORD(name, v)                                      \
    do {                                                                  \
        if (::savat::obs::metricsEnabled()) {                             \
            static ::savat::obs::Histogram &SAVAT_OBS_CONCAT(             \
                savat_obs_h_, __LINE__) =                                 \
                ::savat::obs::Registry::instance().histogram(name);       \
            SAVAT_OBS_CONCAT(savat_obs_h_, __LINE__).record(v);           \
        }                                                                 \
    } while (0)

/** Set the named gauge to `v`. */
#define SAVAT_METRIC_GAUGE(name, v)                                       \
    do {                                                                  \
        if (::savat::obs::metricsEnabled()) {                             \
            static ::savat::obs::Gauge &SAVAT_OBS_CONCAT(                 \
                savat_obs_g_, __LINE__) =                                 \
                ::savat::obs::Registry::instance().gauge(name);           \
            SAVAT_OBS_CONCAT(savat_obs_g_, __LINE__).set(v);              \
        }                                                                 \
    } while (0)

/**
 * Time the enclosing scope into the named histogram (seconds).
 * Declares a local; one use per line.
 */
#define SAVAT_METRIC_TIMER(name)                                          \
    static ::savat::obs::Histogram &SAVAT_OBS_CONCAT(savat_obs_th_,       \
                                                     __LINE__) =          \
        ::savat::obs::Registry::instance().histogram(name);               \
    ::savat::obs::ScopedTimer SAVAT_OBS_CONCAT(savat_obs_t_, __LINE__)(   \
        SAVAT_OBS_CONCAT(savat_obs_th_, __LINE__))

/**
 * Open a trace span covering the rest of the enclosing scope:
 * SAVAT_TRACE_SPAN("campaign.cell", {{"a", nameA}, {"b", nameB}}).
 * Argument expressions are only evaluated while tracing is on.
 * Expands to two statements — use inside a braced scope.
 */
#define SAVAT_TRACE_SPAN(...)                                             \
    ::savat::obs::TraceSpan SAVAT_OBS_CONCAT(savat_obs_span_, __LINE__);  \
    if (::savat::obs::traceEnabled())                                     \
    SAVAT_OBS_CONCAT(savat_obs_span_, __LINE__).open(__VA_ARGS__)

#else // SAVAT_OBS_DISABLE

#define SAVAT_METRIC_ADD(name, n) ((void)0)
#define SAVAT_METRIC_COUNT(name) ((void)0)
#define SAVAT_METRIC_RECORD(name, v) ((void)0)
#define SAVAT_METRIC_GAUGE(name, v) ((void)0)
#define SAVAT_METRIC_TIMER(name) ((void)0)
#define SAVAT_TRACE_SPAN(...) ((void)0)

#endif // SAVAT_OBS_DISABLE

#endif // SAVAT_SUPPORT_OBS_HH
