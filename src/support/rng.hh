/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * libsavat needs reproducible randomness: a measurement campaign seeded
 * with the same seed must produce bit-identical results on every
 * platform. std::mt19937 distributions are not portable across
 * standard-library implementations, so we implement xoshiro256** plus
 * our own uniform/normal transforms.
 */

#ifndef SAVAT_SUPPORT_RNG_HH
#define SAVAT_SUPPORT_RNG_HH

#include <cstdint>

namespace savat {

/**
 * xoshiro256** pseudo-random generator (Blackman & Vigna).
 *
 * Fast, high-quality, 256-bit state. Seeded through splitmix64 so any
 * 64-bit seed (including 0) produces a well-mixed state.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal deviate (Box-Muller, cached pair). */
    double gaussian();

    /** Normal deviate with the given mean and standard deviation. */
    double gaussian(double mean, double sigma);

    /**
     * Fork a statistically independent child generator.
     *
     * Used to give each repetition / each subsystem its own stream so
     * adding random draws in one place does not perturb another.
     */
    Rng fork();

  private:
    std::uint64_t _state[4];
    bool _hasSpare = false;
    double _spare = 0.0;
};

} // namespace savat

#endif // SAVAT_SUPPORT_RNG_HH
