#include "support/obs.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <ostream>

#include "support/io.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace savat::obs {

namespace detail {

std::atomic<bool> g_metrics_enabled{false};
std::atomic<bool> g_trace_enabled{false};

std::size_t
shardIndex()
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t idx =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return idx;
}

std::uint64_t
nowNs()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

} // namespace detail

void
setMetricsEnabled(bool on)
{
    detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

void
setTraceEnabled(bool on)
{
    detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

namespace {

void
atomicAdd(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v,
                                    std::memory_order_relaxed)) {
    }
}

void
atomicMin(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (v < cur && !a.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
}

void
atomicMax(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (v > cur && !a.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
}

/**
 * Log2 bucket index: bucket 0 holds v <= 0 (and NaN); buckets 1..63
 * cover 2^-33 .. 2^30 with one power of two each, clamped at both
 * ends. Fine enough for nanosecond-to-kilosecond timers and for the
 * integer size distributions the pipeline records.
 */
std::size_t
bucketFor(double v)
{
    if (!(v > 0.0))
        return 0;
    const int idx = std::ilogb(v) + 34;
    return static_cast<std::size_t>(std::clamp(
        idx, 1, static_cast<int>(kHistogramBuckets) - 1));
}

/** Geometric midpoint of a bucket (inverse of bucketFor). */
double
bucketValue(std::size_t idx)
{
    return std::ldexp(1.5, static_cast<int>(idx) - 34);
}

} // namespace

std::uint64_t
Counter::value() const
{
    std::uint64_t total = 0;
    for (const auto &s : _shards)
        total += s.v.load(std::memory_order_relaxed);
    return total;
}

void
Counter::reset()
{
    for (auto &s : _shards)
        s.v.store(0, std::memory_order_relaxed);
}

void
Histogram::record(double v)
{
    if (!metricsEnabled())
        return;
    Shard &s = _shards[detail::shardIndex()];
    s.count.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(s.sum, v);
    atomicMin(s.minv, v);
    atomicMax(s.maxv, v);
    s.buckets[bucketFor(v)].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot out;
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    for (const auto &s : _shards) {
        out.count += s.count.load(std::memory_order_relaxed);
        out.sum += s.sum.load(std::memory_order_relaxed);
        mn = std::min(mn, s.minv.load(std::memory_order_relaxed));
        mx = std::max(mx, s.maxv.load(std::memory_order_relaxed));
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
            buckets[b] +=
                s.buckets[b].load(std::memory_order_relaxed);
        }
    }
    if (out.count == 0)
        return out;
    out.min = mn;
    out.max = mx;
    out.mean = out.sum / static_cast<double>(out.count);

    auto quantile = [&](double q) {
        const auto target = static_cast<std::uint64_t>(std::max(
            1.0,
            std::ceil(q * static_cast<double>(out.count))));
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
            cum += buckets[b];
            if (cum >= target) {
                const double v = b == 0 ? mn : bucketValue(b);
                return std::clamp(v, mn, mx);
            }
        }
        return mx;
    };
    out.p50 = quantile(0.50);
    out.p95 = quantile(0.95);
    out.p99 = quantile(0.99);
    return out;
}

void
Histogram::reset()
{
    for (auto &s : _shards) {
        s.count.store(0, std::memory_order_relaxed);
        s.sum.store(0.0, std::memory_order_relaxed);
        s.minv.store(std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
        s.maxv.store(-std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
        for (auto &b : s.buckets)
            b.store(0, std::memory_order_relaxed);
    }
}

Registry &
Registry::instance()
{
    // Leaked on purpose: metrics may be recorded and dumped from
    // atexit handlers, after function-local statics are destroyed.
    static Registry *reg = new Registry();
    return *reg;
}

Counter &
Registry::counter(const std::string &name)
{
    const std::lock_guard<std::mutex> lock(_mu);
    auto &slot = _counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    const std::lock_guard<std::mutex> lock(_mu);
    auto &slot = _gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    const std::lock_guard<std::mutex> lock(_mu);
    auto &slot = _histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

void
Registry::reset()
{
    const std::lock_guard<std::mutex> lock(_mu);
    for (auto &[name, c] : _counters)
        c->reset();
    for (auto &[name, g] : _gauges)
        g->reset();
    for (auto &[name, h] : _histograms)
        h->reset();
}

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

/** JSON-safe double: finite values via %.9g, the rest as 0. */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    return format("%.9g", v);
}

} // namespace

MetricsSnapshot
Registry::snapshot() const
{
    const std::lock_guard<std::mutex> lock(_mu);
    MetricsSnapshot snap;
    for (const auto &[name, c] : _counters)
        snap.counters[name] = c->value();
    for (const auto &[name, g] : _gauges)
        snap.gauges[name] = g->value();
    for (const auto &[name, h] : _histograms)
        snap.histograms[name] = h->snapshot();
    return snap;
}

void
MetricsSnapshot::merge(const MetricsSnapshot &other)
{
    for (const auto &[name, v] : other.counters)
        counters[name] += v;
    for (const auto &[name, v] : other.gauges) {
        auto [it, fresh] = gauges.emplace(name, v);
        if (!fresh)
            it->second = std::max(it->second, v);
    }
    for (const auto &[name, h] : other.histograms) {
        auto [it, fresh] = histograms.emplace(name, h);
        if (fresh || h.count == 0)
            continue;
        HistogramSnapshot &mine = it->second;
        if (mine.count == 0) {
            mine = h;
            continue;
        }
        const double wa = static_cast<double>(mine.count);
        const double wb = static_cast<double>(h.count);
        // Buckets are not serialized, so quantiles merge as a
        // count-weighted average — an estimate, kept honest by the
        // exact count/sum/min/max alongside it.
        mine.p50 = (mine.p50 * wa + h.p50 * wb) / (wa + wb);
        mine.p95 = (mine.p95 * wa + h.p95 * wb) / (wa + wb);
        mine.p99 = (mine.p99 * wa + h.p99 * wb) / (wa + wb);
        mine.count += h.count;
        mine.sum += h.sum;
        mine.min = std::min(mine.min, h.min);
        mine.max = std::max(mine.max, h.max);
        mine.mean = mine.sum / static_cast<double>(mine.count);
    }
}

void
writeMetricsJson(std::ostream &os, const MetricsSnapshot &snap)
{
    os << "{\n  \"schema\": \"savat.metrics.v1\",\n";
    os << "  \"counters\": {";
    const char *sep = "";
    for (const auto &[name, v] : snap.counters) {
        os << sep << "\n    \"" << jsonEscape(name) << "\": " << v;
        sep = ",";
    }
    os << (*sep ? "\n  " : "") << "},\n";

    os << "  \"gauges\": {";
    sep = "";
    for (const auto &[name, v] : snap.gauges) {
        os << sep << "\n    \"" << jsonEscape(name)
           << "\": " << jsonNumber(v);
        sep = ",";
    }
    os << (*sep ? "\n  " : "") << "},\n";

    os << "  \"histograms\": {";
    sep = "";
    for (const auto &[name, s] : snap.histograms) {
        os << sep << "\n    \"" << jsonEscape(name) << "\": {"
           << "\"count\": " << s.count
           << ", \"sum\": " << jsonNumber(s.sum)
           << ", \"min\": " << jsonNumber(s.min)
           << ", \"mean\": " << jsonNumber(s.mean)
           << ", \"p50\": " << jsonNumber(s.p50)
           << ", \"p95\": " << jsonNumber(s.p95)
           << ", \"p99\": " << jsonNumber(s.p99)
           << ", \"max\": " << jsonNumber(s.max) << "}";
        sep = ",";
    }
    os << (*sep ? "\n  " : "") << "}\n}\n";
}

void
writeMetricsTable(std::ostream &os, const MetricsSnapshot &snap)
{
    if (!snap.counters.empty()) {
        os << "counters\n";
        for (const auto &[name, v] : snap.counters) {
            os << format("  %-36s %14llu\n", name.c_str(),
                         static_cast<unsigned long long>(v));
        }
    }
    if (!snap.gauges.empty()) {
        os << "gauges\n";
        for (const auto &[name, v] : snap.gauges)
            os << format("  %-36s %14.6g\n", name.c_str(), v);
    }
    if (!snap.histograms.empty()) {
        os << format(
            "%-38s %10s %11s %11s %11s %11s %11s %11s\n",
            "histograms", "count", "min", "mean", "p50", "p95",
            "p99", "max");
        for (const auto &[name, s] : snap.histograms) {
            os << format("  %-36s %10llu %11.4g %11.4g %11.4g "
                         "%11.4g %11.4g %11.4g\n",
                         name.c_str(),
                         static_cast<unsigned long long>(s.count),
                         s.min, s.mean, s.p50, s.p95, s.p99, s.max);
        }
    }
}

namespace {

/** Prometheus metric name: savat_ prefix, [a-zA-Z0-9_:] body. */
std::string
promName(const std::string &name)
{
    std::string out = "savat_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

} // namespace

void
writePrometheusText(std::ostream &os, const MetricsSnapshot &snap)
{
    for (const auto &[name, v] : snap.counters) {
        const std::string p = promName(name);
        os << "# TYPE " << p << " counter\n"
           << p << " " << v << "\n";
    }
    for (const auto &[name, v] : snap.gauges) {
        const std::string p = promName(name);
        os << "# TYPE " << p << " gauge\n"
           << p << " " << jsonNumber(v) << "\n";
    }
    for (const auto &[name, s] : snap.histograms) {
        const std::string p = promName(name);
        os << "# TYPE " << p << " summary\n"
           << p << "{quantile=\"0.5\"} " << jsonNumber(s.p50)
           << "\n"
           << p << "{quantile=\"0.95\"} " << jsonNumber(s.p95)
           << "\n"
           << p << "{quantile=\"0.99\"} " << jsonNumber(s.p99)
           << "\n"
           << p << "_sum " << jsonNumber(s.sum) << "\n"
           << p << "_count " << s.count << "\n";
        os << "# TYPE " << p << "_min gauge\n"
           << p << "_min " << jsonNumber(s.min) << "\n";
        os << "# TYPE " << p << "_max gauge\n"
           << p << "_max " << jsonNumber(s.max) << "\n";
    }
}

void
Registry::writeJson(std::ostream &os) const
{
    writeMetricsJson(os, snapshot());
}

void
Registry::writeTable(std::ostream &os) const
{
    writeMetricsTable(os, snapshot());
}

TraceValue::TraceValue(double v)
{
    if (std::isfinite(v)) {
        text = format("%.9g", v);
        quoted = false;
    } else {
        // "inf"/"nan" are not valid JSON numbers; quote them.
        text = format("%g", v);
        quoted = true;
    }
}

namespace {

struct TraceEvent
{
    std::string name;
    TraceArgs args;
    std::uint64_t startNs = 0;
    std::uint64_t durNs = 0;
    std::uint32_t tid = 0;
};

/**
 * Per-thread span buffer. The owning thread appends under the
 * buffer's own mutex (uncontended on the hot path); the exporter
 * takes the same mutex to drain. Buffers outlive their thread via
 * shared ownership with the global list.
 */
struct TraceBuffer
{
    std::mutex mu;
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
};

struct TraceState
{
    std::mutex mu;
    std::vector<std::shared_ptr<TraceBuffer>> buffers;
    std::atomic<std::uint32_t> nextTid{1};
};

TraceState &
traceState()
{
    // Leaked for the same atexit-ordering reason as the Registry.
    static TraceState *state = new TraceState();
    return *state;
}

TraceBuffer &
threadBuffer()
{
    thread_local const std::shared_ptr<TraceBuffer> buf = [] {
        auto b = std::make_shared<TraceBuffer>();
        auto &st = traceState();
        b->tid = st.nextTid.fetch_add(1, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(st.mu);
        st.buffers.push_back(b);
        return b;
    }();
    return *buf;
}

} // namespace

void
TraceSpan::open(std::string name, TraceArgs args)
{
    if (!traceEnabled() || _open)
        return;
    _name = std::move(name);
    _args = std::move(args);
    _startNs = detail::nowNs();
    _open = true;
}

void
TraceSpan::close()
{
    if (!_open)
        return;
    _open = false;
    const std::uint64_t end = detail::nowNs();
    TraceBuffer &buf = threadBuffer();
    TraceEvent ev;
    ev.name = std::move(_name);
    ev.args = std::move(_args);
    ev.startNs = _startNs;
    ev.durNs = end - _startNs;
    ev.tid = buf.tid;
    const std::lock_guard<std::mutex> lock(buf.mu);
    buf.events.push_back(std::move(ev));
}

namespace {

std::vector<TraceEvent>
collectTraceEvents(bool drain)
{
    std::vector<std::shared_ptr<TraceBuffer>> buffers;
    {
        auto &st = traceState();
        const std::lock_guard<std::mutex> lock(st.mu);
        buffers = st.buffers;
    }
    std::vector<TraceEvent> all;
    for (const auto &buf : buffers) {
        const std::lock_guard<std::mutex> lock(buf->mu);
        all.insert(all.end(), buf->events.begin(),
                   buf->events.end());
        if (drain)
            buf->events.clear();
    }
    std::sort(all.begin(), all.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  return a.startNs != b.startNs
                             ? a.startNs < b.startNs
                             : a.tid < b.tid;
              });
    return all;
}

} // namespace

void
writeTraceJson(std::ostream &os)
{
    const auto events = collectTraceEvents(false);
    os << "{\"traceEvents\": [";
    const char *sep = "";
    for (const auto &ev : events) {
        os << sep << "\n  {\"name\": \"" << jsonEscape(ev.name)
           << "\", \"cat\": \"savat\", \"ph\": \"X\""
           << format(", \"ts\": %.3f, \"dur\": %.3f",
                     static_cast<double>(ev.startNs) / 1000.0,
                     static_cast<double>(ev.durNs) / 1000.0)
           << ", \"pid\": 1, \"tid\": " << ev.tid;
        if (!ev.args.empty()) {
            os << ", \"args\": {";
            const char *asep = "";
            for (const auto &[key, value] : ev.args) {
                os << asep << "\"" << jsonEscape(key) << "\": ";
                if (value.quoted)
                    os << "\"" << jsonEscape(value.text) << "\"";
                else
                    os << value.text;
                asep = ", ";
            }
            os << "}";
        }
        os << "}";
        sep = ",";
    }
    os << (*sep ? "\n" : "")
       << "], \"displayTimeUnit\": \"ms\"}\n";
}

void
clearTrace()
{
    collectTraceEvents(true);
}

std::size_t
traceEventCount()
{
    return collectTraceEvents(false).size();
}

namespace {

std::mutex g_dump_mu;
std::string g_metrics_path;
std::string g_trace_path;
bool g_atexit_registered = false;

void
dumpAtExit()
{
    std::string metrics, trace;
    {
        const std::lock_guard<std::mutex> lock(g_dump_mu);
        metrics = g_metrics_path;
        trace = g_trace_path;
    }
    if (!metrics.empty())
        dumpMetricsNow(metrics);
    if (!trace.empty())
        dumpTraceNow(trace);
}

/** Caller must hold g_dump_mu. */
void
ensureAtExitLocked()
{
    if (!g_atexit_registered) {
        g_atexit_registered = true;
        std::atexit(dumpAtExit);
    }
}

} // namespace

bool
dumpMetricsNow(const std::string &path)
{
    if (path == "-") {
        Registry::instance().writeJson(std::cout);
        return true;
    }
    std::string error;
    const bool ok = support::writeFileAtomically(
        path,
        [&](std::ostream &out) {
            if (endsWith(path, ".txt"))
                Registry::instance().writeTable(out);
            else
                Registry::instance().writeJson(out);
        },
        &error);
    if (!ok)
        SAVAT_WARN("cannot write metrics to ", path, ": ", error);
    return ok;
}

bool
dumpTraceNow(const std::string &path)
{
    if (path == "-") {
        writeTraceJson(std::cout);
        return true;
    }
    std::string error;
    const bool ok = support::writeFileAtomically(
        path, [](std::ostream &out) { writeTraceJson(out); }, &error);
    if (!ok)
        SAVAT_WARN("cannot write trace to ", path, ": ", error);
    return ok;
}

void
requestMetricsDump(const std::string &path)
{
    const std::lock_guard<std::mutex> lock(g_dump_mu);
    g_metrics_path = path;
    if (!path.empty())
        ensureAtExitLocked();
}

void
requestTraceDump(const std::string &path)
{
    const std::lock_guard<std::mutex> lock(g_dump_mu);
    g_trace_path = path;
    if (!path.empty())
        ensureAtExitLocked();
}

void
configureFromEnvironment()
{
    if (const char *m = std::getenv("SAVAT_METRICS"); m && *m) {
        setMetricsEnabled(true);
        requestMetricsDump(m);
    }
    if (const char *t = std::getenv("SAVAT_TRACE"); t && *t) {
        setTraceEnabled(true);
        requestTraceDump(t);
    }
}

} // namespace savat::obs
