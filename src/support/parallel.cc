#include "support/parallel.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "support/logging.hh"
#include "support/obs.hh"
#include "support/strings.hh"

namespace savat::support {

namespace {
thread_local int tl_worker = -1;
} // namespace

std::size_t
hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

int
currentWorker()
{
    return tl_worker;
}

std::size_t
resolveJobs(std::size_t jobs)
{
    if (jobs > 0)
        return jobs;
    if (const char *env = std::getenv("SAVAT_JOBS")) {
        long long v = 0;
        if (parseInt(env, v) && v >= 1)
            return static_cast<std::size_t>(v);
        SAVAT_WARN("ignoring SAVAT_JOBS='", env,
                   "' (want a positive integer)");
    }
    return hardwareJobs();
}

void
runWorkers(std::size_t workers,
           const std::function<void(std::size_t)> &worker)
{
    if (workers <= 1) {
        worker(0);
        return;
    }

    SAVAT_METRIC_COUNT("parallel.teams");
    SAVAT_METRIC_RECORD("parallel.team_size",
                        static_cast<double>(workers));

    std::mutex mutex;
    std::exception_ptr first;
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
            tl_worker = static_cast<int>(w);
            SAVAT_METRIC_TIMER("parallel.worker_busy_seconds");
            try {
                worker(w);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(mutex);
                if (!first)
                    first = std::current_exception();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    if (first)
        std::rethrow_exception(first);
}

void
parallelFor(std::size_t n,
            const std::function<void(std::size_t)> &body,
            std::size_t jobs)
{
    if (n == 0)
        return;
    const std::size_t workers = std::min(resolveJobs(jobs), n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        SAVAT_METRIC_ADD("parallel.tasks", n);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancelled{false};
    std::vector<std::size_t> perWorker(workers, 0);
    runWorkers(workers, [&](std::size_t w) {
        std::size_t mine = 0;
        for (std::size_t i = next.fetch_add(1);
             i < n && !cancelled.load(std::memory_order_relaxed);
             i = next.fetch_add(1)) {
            try {
                body(i);
            } catch (...) {
                cancelled.store(true, std::memory_order_relaxed);
                perWorker[w] = mine;
                throw;
            }
            ++mine;
        }
        perWorker[w] = mine;
        SAVAT_METRIC_ADD("parallel.tasks", mine);
        SAVAT_METRIC_RECORD("parallel.tasks_per_worker",
                            static_cast<double>(mine));
    });
    // Queue imbalance of this invocation: how unevenly the shared
    // counter handed indices to the team.
    if (obs::metricsEnabled()) {
        const auto [mn, mx] =
            std::minmax_element(perWorker.begin(), perWorker.end());
        SAVAT_METRIC_RECORD("parallel.imbalance_tasks",
                            static_cast<double>(*mx - *mn));
    }
}

void
parallelInvoke(const std::vector<std::function<void()>> &tasks,
               std::size_t jobs)
{
    parallelFor(
        tasks.size(), [&](std::size_t i) { tasks[i](); }, jobs);
}

} // namespace savat::support
