#include "support/parallel.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "support/logging.hh"
#include "support/strings.hh"

namespace savat::support {

std::size_t
hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t
resolveJobs(std::size_t jobs)
{
    if (jobs > 0)
        return jobs;
    if (const char *env = std::getenv("SAVAT_JOBS")) {
        long long v = 0;
        if (parseInt(env, v) && v >= 1)
            return static_cast<std::size_t>(v);
        SAVAT_WARN("ignoring SAVAT_JOBS='", env,
                   "' (want a positive integer)");
    }
    return hardwareJobs();
}

void
runWorkers(std::size_t workers,
           const std::function<void(std::size_t)> &worker)
{
    if (workers <= 1) {
        worker(0);
        return;
    }

    std::mutex mutex;
    std::exception_ptr first;
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
            try {
                worker(w);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(mutex);
                if (!first)
                    first = std::current_exception();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    if (first)
        std::rethrow_exception(first);
}

void
parallelFor(std::size_t n,
            const std::function<void(std::size_t)> &body,
            std::size_t jobs)
{
    if (n == 0)
        return;
    const std::size_t workers = std::min(resolveJobs(jobs), n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancelled{false};
    runWorkers(workers, [&](std::size_t) {
        for (std::size_t i = next.fetch_add(1);
             i < n && !cancelled.load(std::memory_order_relaxed);
             i = next.fetch_add(1)) {
            try {
                body(i);
            } catch (...) {
                cancelled.store(true, std::memory_order_relaxed);
                throw;
            }
        }
    });
}

void
parallelInvoke(const std::vector<std::function<void()>> &tasks,
               std::size_t jobs)
{
    parallelFor(
        tasks.size(), [&](std::size_t i) { tasks[i](); }, jobs);
}

} // namespace savat::support
