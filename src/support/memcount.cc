#include "support/memcount.hh"

#include <cstdlib>
#include <new>

// Sanitizer runtimes provide their own operator new (with redzones
// and interception); replacing it underneath them breaks both, so
// the counting pair is compiled out and the API degrades to zero.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SAVAT_MEMCOUNT_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SAVAT_MEMCOUNT_DISABLED 1
#endif
#endif

namespace savat::support {

namespace {

// Zero-initialized (no guard, no dynamic init): safe to touch from
// the very first allocation in the process and from any thread.
thread_local std::uint64_t t_allocs = 0;

} // namespace

std::uint64_t
threadAllocCount()
{
    return t_allocs;
}

bool
allocCounterActive()
{
#ifdef SAVAT_MEMCOUNT_DISABLED
    return false;
#else
    return true;
#endif
}

} // namespace savat::support

#ifndef SAVAT_MEMCOUNT_DISABLED

// noinline keeps the replacement pair opaque at call sites; inlined
// copies trip GCC's -Wmismatched-new-delete on the internal
// malloc/free, which is exactly the matched pair here. weak lets a
// binary with its own strong replacement (tests/test_alloc.cc) win
// the link instead of colliding.
#if defined(__GNUC__)
#define SAVAT_MEMCOUNT_DEF __attribute__((weak, noinline))
#else
#define SAVAT_MEMCOUNT_DEF
#endif

SAVAT_MEMCOUNT_DEF void *
operator new(std::size_t size)
{
    ++savat::support::t_allocs;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

SAVAT_MEMCOUNT_DEF void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

SAVAT_MEMCOUNT_DEF void
operator delete(void *p) noexcept
{
    if (p)
        std::free(p);
}

SAVAT_MEMCOUNT_DEF void
operator delete[](void *p) noexcept
{
    ::operator delete(p);
}

SAVAT_MEMCOUNT_DEF void
operator delete(void *p, std::size_t) noexcept
{
    ::operator delete(p);
}

SAVAT_MEMCOUNT_DEF void
operator delete[](void *p, std::size_t) noexcept
{
    ::operator delete(p);
}

#endif // !SAVAT_MEMCOUNT_DISABLED
