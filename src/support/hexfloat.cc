#include "support/hexfloat.hh"

#include <cstdio>
#include <cstdlib>

namespace savat::support {

void
printHexFloat(std::ostream &os, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", v);
    os << buf;
}

std::string
hexFloat(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
}

bool
readHexFloat(std::istream &in, double &out)
{
    std::string tok;
    if (!(in >> tok))
        return false;
    char *end = nullptr;
    out = std::strtod(tok.c_str(), &end);
    return end != tok.c_str() && *end == '\0';
}

} // namespace savat::support
