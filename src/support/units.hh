/**
 * @file
 * Strong unit types used throughout libsavat.
 *
 * All quantities are stored in SI base units (hertz, seconds, watts,
 * joules, meters) inside a thin value wrapper. The wrappers prevent
 * the classic "is this zJ or J, Hz or kHz?" confusion without
 * imposing any runtime cost.
 */

#ifndef SAVAT_SUPPORT_UNITS_HH
#define SAVAT_SUPPORT_UNITS_HH

#include <cmath>
#include <compare>
#include <cstdint>

namespace savat {

/**
 * CRTP base for a double-valued strong unit type.
 *
 * Provides value access, comparisons, and the linear-space arithmetic
 * that makes sense for all physical scalars (add/subtract same unit,
 * scale by dimensionless factors).
 */
template <typename Derived>
class UnitBase
{
  public:
    constexpr UnitBase() : _value(0.0) {}
    explicit constexpr UnitBase(double v) : _value(v) {}

    /** Raw value in the SI base unit of the derived type. */
    constexpr double value() const { return _value; }

    constexpr auto operator<=>(const UnitBase &) const = default;

    constexpr Derived
    operator+(const Derived &o) const
    {
        return Derived(_value + o.value());
    }

    constexpr Derived
    operator-(const Derived &o) const
    {
        return Derived(_value - o.value());
    }

    constexpr Derived operator*(double s) const { return Derived(_value * s); }
    constexpr Derived operator/(double s) const { return Derived(_value / s); }

    /** Ratio of two like-dimensioned quantities is dimensionless. */
    constexpr double operator/(const Derived &o) const
    {
        return _value / o.value();
    }

    Derived &
    operator+=(const Derived &o)
    {
        _value += o.value();
        return static_cast<Derived &>(*this);
    }

    Derived &
    operator-=(const Derived &o)
    {
        _value -= o.value();
        return static_cast<Derived &>(*this);
    }

  protected:
    double _value;
};

/** Frequency in hertz. */
class Frequency : public UnitBase<Frequency>
{
  public:
    using UnitBase::UnitBase;

    static constexpr Frequency hz(double v) { return Frequency(v); }
    static constexpr Frequency khz(double v) { return Frequency(v * 1e3); }
    static constexpr Frequency mhz(double v) { return Frequency(v * 1e6); }
    static constexpr Frequency ghz(double v) { return Frequency(v * 1e9); }

    constexpr double inHz() const { return _value; }
    constexpr double inKhz() const { return _value / 1e3; }
    constexpr double inMhz() const { return _value / 1e6; }
    constexpr double inGhz() const { return _value / 1e9; }

    /** Period of one cycle at this frequency. */
    constexpr double periodSeconds() const { return 1.0 / _value; }
};

/** Time duration in seconds. */
class Duration : public UnitBase<Duration>
{
  public:
    using UnitBase::UnitBase;

    static constexpr Duration seconds(double v) { return Duration(v); }
    static constexpr Duration millis(double v) { return Duration(v * 1e-3); }
    static constexpr Duration micros(double v) { return Duration(v * 1e-6); }
    static constexpr Duration nanos(double v) { return Duration(v * 1e-9); }

    constexpr double inSeconds() const { return _value; }
    constexpr double inMillis() const { return _value / 1e-3; }
    constexpr double inMicros() const { return _value / 1e-6; }
    constexpr double inNanos() const { return _value / 1e-9; }
};

/** Power in watts. */
class Power : public UnitBase<Power>
{
  public:
    using UnitBase::UnitBase;

    static constexpr Power watts(double v) { return Power(v); }
    static constexpr Power milliwatts(double v) { return Power(v * 1e-3); }

    /** Convert a dBm level into linear watts. */
    static Power
    fromDbm(double dbm)
    {
        return Power(1e-3 * std::pow(10.0, dbm / 10.0));
    }

    constexpr double inWatts() const { return _value; }

    /** Level in dBm; returns -infinity for non-positive power. */
    double
    inDbm() const
    {
        return 10.0 * std::log10(_value / 1e-3);
    }
};

/** Energy in joules. SAVAT values live in zeptojoules (1 zJ = 1e-21 J). */
class Energy : public UnitBase<Energy>
{
  public:
    using UnitBase::UnitBase;

    static constexpr Energy joules(double v) { return Energy(v); }
    static constexpr Energy zepto(double v) { return Energy(v * 1e-21); }
    static constexpr Energy femto(double v) { return Energy(v * 1e-15); }
    static constexpr Energy pico(double v) { return Energy(v * 1e-12); }

    constexpr double inJoules() const { return _value; }
    constexpr double inZepto() const { return _value / 1e-21; }
    constexpr double inFemto() const { return _value / 1e-15; }
};

/** Distance in meters. */
class Distance : public UnitBase<Distance>
{
  public:
    using UnitBase::UnitBase;

    static constexpr Distance meters(double v) { return Distance(v); }
    static constexpr Distance centimeters(double v)
    {
        return Distance(v * 1e-2);
    }

    constexpr double inMeters() const { return _value; }
    constexpr double inCentimeters() const { return _value / 1e-2; }
};

/** Energy accumulated over a duration at the given average power. */
constexpr Energy
operator*(const Power &p, const Duration &t)
{
    return Energy(p.value() * t.value());
}

/** Power corresponding to the given energy spread over a duration. */
constexpr Power
operator/(const Energy &e, const Duration &t)
{
    return Power(e.value() / t.value());
}

/** Speed of light in vacuum [m/s]. */
inline constexpr double kSpeedOfLight = 299792458.0;

/** Boltzmann constant [J/K]. */
inline constexpr double kBoltzmann = 1.380649e-23;

/** Free-space wavelength at the given frequency. */
inline Distance
wavelength(Frequency f)
{
    return Distance(kSpeedOfLight / f.inHz());
}

/** Convert a linear power ratio to decibels. */
inline double
toDb(double ratio)
{
    return 10.0 * std::log10(ratio);
}

/** Convert decibels to a linear power ratio. */
inline double
fromDb(double db)
{
    return std::pow(10.0, db / 10.0);
}

} // namespace savat

#endif // SAVAT_SUPPORT_UNITS_HH
