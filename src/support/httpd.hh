/**
 * @file
 * Minimal blocking HTTP/1.1 listener for metrics exposition.
 *
 * `savat_cli campaign --serve` and `savat_cli report --serve`
 * expose the metrics registry (live) or an aggregated report
 * (static) in the Prometheus text format so a scrape target can
 * watch a long campaign. The server is deliberately tiny: IPv4
 * loopback only, one blocking accept loop, GET only, every response
 * closes the connection. It is an operator convenience, not a
 * production server — nothing else in the pipeline depends on it.
 *
 * Port 0 binds an ephemeral port; port() reports the real one so
 * scripts (scripts/check.sh) can scrape without racing. stop() is
 * thread-safe and unblocks a serve() loop in another thread by
 * closing the listening socket.
 */

#ifndef SAVAT_SUPPORT_HTTPD_HH
#define SAVAT_SUPPORT_HTTPD_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace savat::support {

class HttpServer
{
  public:
    /**
     * Produce the response for a GET of `path`; set `contentType`
     * and `body`, return true. Returning false sends 404.
     */
    using Handler = std::function<bool(const std::string &path,
                                       std::string &contentType,
                                       std::string &body)>;

    HttpServer() = default;
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Bind 127.0.0.1:`port` (0 = ephemeral) and listen. */
    bool start(std::uint16_t port, Handler handler,
               std::string *error = nullptr);

    /** The bound port, valid after start(). */
    int port() const { return _port; }

    /** Accept and answer one connection; false once stopped. */
    bool serveOne();

    /** Blocking accept loop until stop(). */
    void serve();

    /** Close the listener; unblocks serve() from any thread. */
    void stop();

  private:
    Handler _handler;
    std::atomic<int> _fd{-1};
    int _port = 0;
};

} // namespace savat::support

#endif // SAVAT_SUPPORT_HTTPD_HH
