/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
 *
 * Used as the integrity footer of every on-disk artifact the
 * resilience layer must be able to trust after a crash: campaign
 * checkpoints and trace recordings carry a trailing CRC over their
 * payload bytes so truncated or bit-flipped files are rejected with
 * a diagnostic instead of being silently mis-parsed.
 */

#ifndef SAVAT_SUPPORT_CRC32_HH
#define SAVAT_SUPPORT_CRC32_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace savat::support {

/**
 * CRC-32 of a byte range. `seed` is the running value of a previous
 * call (0 to start), so long payloads can be folded incrementally.
 */
std::uint32_t crc32(const void *data, std::size_t size,
                    std::uint32_t seed = 0);

/** Convenience overload for in-memory payloads. */
inline std::uint32_t
crc32(std::string_view s, std::uint32_t seed = 0)
{
    return crc32(s.data(), s.size(), seed);
}

} // namespace savat::support

#endif // SAVAT_SUPPORT_CRC32_HH
