#include "support/strings.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace savat {

std::string
trim(std::string_view s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (auto &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view s)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        std::size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

bool
parseInt(std::string_view s, long long &out)
{
    std::string t = trim(s);
    if (t.empty())
        return false;
    char *end = nullptr;
    const int base =
        (startsWith(toLower(t), "0x") || startsWith(toLower(t), "-0x"))
            ? 16
            : 10;
    errno = 0;
    const long long v = std::strtoll(t.c_str(), &end, base);
    if (errno != 0 || end == t.c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (n < 0) {
        va_end(args_copy);
        return {};
    }
    std::string out(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

} // namespace savat
