/**
 * @file
 * Per-stage resource attribution for the measurement pipeline.
 *
 * The SignalChain implementations decompose one cell measurement
 * into named stages (solve the burst layout, build kernels, simulate
 * them, extract the channel, synthesize/sweep/band-integrate the
 * trace). This module tags each stage invocation with the worker
 * that ran it and feeds the sharded obs registry:
 *
 *  - `stage.<chain>.<stage>.<worker>.wall_seconds`  (histogram)
 *  - `stage.<chain>.<stage>.<worker>.alloc_count`   (counter,
 *    heap allocations observed via support::threadAllocCount())
 *  - `stage.<chain>.arena_high_water_bytes.<worker>` (gauge,
 *    driven from the chain when the scratch arena grows)
 *
 * where `<worker>` is `main` on the serial path or `w<N>` for the
 * campaign's worker teams. The report layer aggregates these into
 * the per-stage attribution table, and check.sh asserts the stage
 * wall-time sum explains the run wall clock.
 *
 * StageScope is a no-op (one relaxed load, nothing captured) while
 * metrics are disabled, so the zero-allocation contract of the
 * steady-state rep loop is untouched — pinned by tests/test_alloc.cc.
 */

#ifndef SAVAT_SUPPORT_STAGEPROF_HH
#define SAVAT_SUPPORT_STAGEPROF_HH

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace savat::obs {

/** Pipeline stages that receive attribution. */
enum class Stage : std::uint8_t
{
    BurstSolve,
    KernelBuild,
    KernelAnalyze,
    Simulate,
    ChannelExtract,
    Synthesize,
    Sweep,
    BandIntegrate,
    kCount,
};

/** Which chain a stage ran under (tags the metric name). */
enum class StageChain : std::uint8_t
{
    Em,
    Power,
    Replay,
    Timing,
    kCount,
};

/** Stable lowercase stage name ("burst_solve", ...). */
const char *stageName(Stage s);

/** Stable lowercase chain name ("em", "power", "replay", "timing"). */
const char *stageChainName(StageChain c);

/**
 * Identify the calling thread as campaign worker `id` (0-based) for
 * stage attribution; -1 restores the default `main` tag. The
 * parallel engine brackets each worker's run with this.
 */
void setCurrentWorker(int id);

/** The calling thread's worker id, or -1 outside a worker. */
int currentWorker();

/**
 * RAII attribution scope around one stage invocation: records wall
 * time into the stage histogram and the heap-allocation delta into
 * the stage counter, both tagged by chain and worker. Inert while
 * metrics are disabled.
 */
class StageScope
{
  public:
    StageScope(StageChain chain, Stage stage);
    ~StageScope();

    StageScope(const StageScope &) = delete;
    StageScope &operator=(const StageScope &) = delete;

  private:
    bool _active = false;
    StageChain _chain = StageChain::Em;
    Stage _stage = Stage::BurstSolve;
    std::uint64_t _allocs0 = 0;
    std::chrono::steady_clock::time_point _start;
};

/**
 * Report the scratch arena's current capacity for `chain` on this
 * worker; keeps the per-worker high-water gauge. No-op while
 * metrics are disabled.
 */
void noteArenaHighWater(StageChain chain, std::size_t bytes);

} // namespace savat::obs

#endif // SAVAT_SUPPORT_STAGEPROF_HH
