/**
 * @file
 * Library-level heap-allocation counter for stage attribution.
 *
 * PR 7's zero-allocation contract is pinned by tests/test_alloc.cc,
 * which replaces global operator new/delete inside the test binary.
 * The stage profiler (support/stageprof.hh) wants the same signal in
 * *every* binary — "how many heap allocations did this stage
 * perform on this thread" — without breaking that test or fighting
 * sanitizer runtimes. So memcount.cc defines a counting operator
 * new/delete pair marked __attribute__((weak)):
 *
 *  - in ordinary binaries the weak pair is linked (stageprof pulls
 *    this TU in) and threadAllocCount() ticks per allocation;
 *  - in test_alloc the test's strong definitions win the link and
 *    threadAllocCount() simply stays zero — allocation deltas
 *    degrade to 0, nothing double-counts;
 *  - under ASan/TSan the replacement is compiled out entirely (the
 *    sanitizer runtimes intercept operator new themselves) and
 *    allocCounterActive() reports false.
 *
 * The counter is a zero-initialized thread_local (no dynamic init,
 * no guard variable), so the per-allocation overhead is one
 * increment and counting is safe from any thread at any time.
 */

#ifndef SAVAT_SUPPORT_MEMCOUNT_HH
#define SAVAT_SUPPORT_MEMCOUNT_HH

#include <cstdint>

namespace savat::support {

/**
 * Heap allocations observed on the calling thread since it started.
 * Monotonic; subtract two readings to attribute a scope. Always 0
 * when the counting allocator is not active in this binary.
 */
std::uint64_t threadAllocCount();

/** Whether this binary carries the counting operator new. */
bool allocCounterActive();

} // namespace savat::support

#endif // SAVAT_SUPPORT_MEMCOUNT_HH
