#include "support/stats.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/logging.hh"

namespace savat {

void
RunningStats::add(double x)
{
    if (_n == 0) {
        _min = x;
        _max = x;
    } else {
        _min = std::min(_min, x);
        _max = std::max(_max, x);
    }
    ++_n;
    const double delta = x - _mean;
    _mean += delta / static_cast<double>(_n);
    _m2 += delta * (x - _mean);
}

double
RunningStats::variance() const
{
    if (_n < 2)
        return 0.0;
    return _m2 / static_cast<double>(_n - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::coefficientOfVariation() const
{
    if (_mean == 0.0)
        return 0.0;
    return stddev() / _mean;
}

Summary
summarize(const std::vector<double> &xs)
{
    Summary s;
    s.count = xs.size();
    if (xs.empty())
        return s;
    RunningStats rs;
    for (double x : xs)
        rs.add(x);
    s.mean = rs.mean();
    s.stddev = rs.stddev();
    s.min = rs.min();
    s.max = rs.max();
    s.median = median(xs);
    return s;
}

double
median(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const std::size_t n = xs.size();
    if (n % 2 == 1)
        return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double
pearson(const std::vector<double> &a, const std::vector<double> &b)
{
    SAVAT_ASSERT(a.size() == b.size(), "pearson: size mismatch");
    const std::size_t n = a.size();
    if (n < 2)
        return 0.0;
    const double ma =
        std::accumulate(a.begin(), a.end(), 0.0) / static_cast<double>(n);
    const double mb =
        std::accumulate(b.begin(), b.end(), 0.0) / static_cast<double>(n);
    double sab = 0.0, saa = 0.0, sbb = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double da = a[i] - ma;
        const double db = b[i] - mb;
        sab += da * db;
        saa += da * da;
        sbb += db * db;
    }
    if (saa == 0.0 || sbb == 0.0)
        return 0.0;
    return sab / std::sqrt(saa * sbb);
}

std::vector<double>
ranks(const std::vector<double> &xs)
{
    const std::size_t n = xs.size();
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t i, std::size_t j) { return xs[i] < xs[j]; });

    std::vector<double> out(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && xs[idx[j + 1]] == xs[idx[i]])
            ++j;
        // Average rank for the tie group [i, j]; ranks are 1-based.
        const double r = 0.5 * (static_cast<double>(i + 1) +
                                static_cast<double>(j + 1));
        for (std::size_t k = i; k <= j; ++k)
            out[idx[k]] = r;
        i = j + 1;
    }
    return out;
}

double
spearman(const std::vector<double> &a, const std::vector<double> &b)
{
    SAVAT_ASSERT(a.size() == b.size(), "spearman: size mismatch");
    return pearson(ranks(a), ranks(b));
}

} // namespace savat
