#include "support/journal.hh"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ostream>

#include "support/crc32.hh"
#include "support/strings.hh"
#include "support/table.hh"

#ifndef SAVAT_GIT_DESCRIBE
#define SAVAT_GIT_DESCRIBE "unknown"
#endif

namespace savat::obs {

const char *
buildDescribe()
{
    return SAVAT_GIT_DESCRIBE;
}

namespace {

using support::json::Value;

/**
 * The flight recorder: a lock-free ring of the most recent
 * formatted journal lines plus the crash-dump target path. All
 * plain arrays in static storage so the signal handler can walk it
 * without allocation or locks; a torn slot in a crash dump is
 * acceptable (the CRC on each line exposes it).
 */
constexpr std::size_t kSlotBytes = 768;

struct FlightRecorder
{
    std::atomic<bool> armed{false};
    std::atomic<std::uint64_t> next{0};
    char crashPath[512] = {};
    char slots[kFlightRecorderSlots][kSlotBytes] = {};
};

FlightRecorder g_recorder;

/** write(2) a whole buffer; async-signal-safe. */
void
rawWrite(int fd, const char *data, std::size_t size)
{
    std::size_t off = 0;
    while (off < size) {
        const ssize_t n = ::write(fd, data + off, size - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        off += static_cast<std::size_t>(n);
    }
}

/**
 * Dump the ring (oldest first) to the crash path. Uses only
 * async-signal-safe calls so the signal handler may run it; the
 * synchronous dumpCrash() path reuses it too.
 */
void
dumpFlightRecorder(const char *reason)
{
    if (!g_recorder.armed.load(std::memory_order_relaxed))
        return;
    const int fd =
        ::open(g_recorder.crashPath,
               O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd < 0)
        return;
    static const char header[] =
        "# savat flight recorder dump — last journal events before "
        "death\n";
    rawWrite(fd, header, sizeof(header) - 1);
    const std::uint64_t end =
        g_recorder.next.load(std::memory_order_relaxed);
    for (std::uint64_t i = 0; i < kFlightRecorderSlots; ++i) {
        const std::uint64_t idx =
            (end + i) % kFlightRecorderSlots;
        const char *slot = g_recorder.slots[idx];
        const std::size_t len = ::strnlen(slot, kSlotBytes);
        if (len == 0)
            continue;
        rawWrite(fd, slot, len);
        rawWrite(fd, "\n", 1);
    }
    static const char tail[] = "# reason: ";
    rawWrite(fd, tail, sizeof(tail) - 1);
    rawWrite(fd, reason, ::strnlen(reason, 256));
    rawWrite(fd, "\n", 1);
    ::close(fd);
}

extern "C" void
savatCrashHandler(int sig)
{
    char reason[32] = "signal ";
    std::size_t n = 7;
    // Async-signal-safe decimal formatting of the signal number.
    char digits[8];
    int d = 0;
    int v = sig;
    do {
        digits[d++] = static_cast<char>('0' + v % 10);
        v /= 10;
    } while (v > 0 && d < 8);
    while (d > 0 && n < sizeof(reason) - 1)
        reason[n++] = digits[--d];
    reason[n] = '\0';
    dumpFlightRecorder(reason);
    ::signal(sig, SIG_DFL);
    ::raise(sig);
}

void
installCrashHandlers()
{
    static const bool installed = [] {
        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_handler = savatCrashHandler;
        ::sigemptyset(&sa.sa_mask);
        for (int sig :
             {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT})
            ::sigaction(sig, &sa, nullptr);
        return true;
    }();
    (void)installed;
}

void
recordFlightLine(const std::string &line)
{
    const std::uint64_t idx =
        g_recorder.next.fetch_add(1, std::memory_order_relaxed) %
        kFlightRecorderSlots;
    const std::size_t n =
        std::min(line.size(), kSlotBytes - 1);
    std::memcpy(g_recorder.slots[idx], line.data(), n);
    g_recorder.slots[idx][n] = '\0';
}

} // namespace

Journal::~Journal()
{
    close();
}

bool
Journal::open(const std::string &path, std::string *error)
{
    const std::lock_guard<std::mutex> lock(_mu);
    if (!_file.open(path, error))
        return false;
    _path = path;
    _seq = 0;
    _t0 = std::chrono::steady_clock::now();
    const std::string crash = path + ".crash";
    std::snprintf(g_recorder.crashPath,
                  sizeof(g_recorder.crashPath), "%s",
                  crash.c_str());
    g_recorder.next.store(0, std::memory_order_relaxed);
    for (auto &slot : g_recorder.slots)
        slot[0] = '\0';
    g_recorder.armed.store(true, std::memory_order_relaxed);
    installCrashHandlers();
    return true;
}

void
Journal::emit(const std::string &type, Value fields)
{
    const std::lock_guard<std::mutex> lock(_mu);
    if (!_file.isOpen())
        return;
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - _t0;
    Value ev = Value::object();
    ev.set("event", type);
    ev.set("seq", static_cast<double>(_seq++));
    ev.set("t", std::round(dt.count() * 1e6) / 1e6);
    for (const auto &[key, member] : fields.members())
        ev.set(key, member);
    std::string text = ev.serialize();
    // The CRC covers the line with the crc member spliced out:
    // readers strip `,"crc":"…"` back off and re-checksum.
    const std::uint32_t crc = support::crc32(text);
    text.pop_back(); // '}'
    text += format(",\"crc\":\"%08x\"}", crc);
    _file.writeLine(text);
    recordFlightLine(text);
}

void
Journal::dumpCrash(const std::string &reason)
{
    dumpFlightRecorder(reason.c_str());
}

void
Journal::close()
{
    const std::lock_guard<std::mutex> lock(_mu);
    if (_file.isOpen()) {
        _file.close();
        g_recorder.armed.store(false,
                               std::memory_order_relaxed);
    }
}

JournalReadResult
readJournal(const std::string &path)
{
    JournalReadResult res;
    std::string content;
    if (!support::readFileToString(path, content, &res.error))
        return res;

    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < content.size()) {
        std::size_t end = content.find('\n', start);
        if (end == std::string::npos)
            end = content.size();
        if (end > start)
            lines.emplace_back(content.substr(start, end - start));
        start = end + 1;
    }

    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &line = lines[i];
        const bool last = i + 1 == lines.size();
        auto failLine = [&](const std::string &what) {
            if (last) {
                // A torn final line is the expected signature of a
                // crash mid-write; everything before it is good.
                res.truncatedTail = true;
                return true;
            }
            res.error = format("%s:%zu: %s", path.c_str(), i + 1,
                               what.c_str());
            return false;
        };

        const std::size_t crcPos = line.rfind(",\"crc\":\"");
        // `,"crc":"XXXXXXXX"}` is exactly 18 bytes at line end.
        if (crcPos == std::string::npos ||
            crcPos + 18 != line.size()) {
            if (failLine("missing crc member"))
                break;
            return res;
        }
        std::uint32_t stored = 0;
        if (std::sscanf(line.c_str() + crcPos + 8, "%8x",
                        &stored) != 1) {
            if (failLine("malformed crc member"))
                break;
            return res;
        }
        const std::uint32_t actual =
            support::crc32(line.substr(0, crcPos) + "}");
        if (actual != stored) {
            if (failLine(format("crc mismatch (stored %08x, "
                                "computed %08x)",
                                stored, actual)))
                break;
            return res;
        }

        auto parsed = support::json::parse(line);
        if (!parsed.ok || !parsed.value.isObject()) {
            if (failLine("bad JSON: " + parsed.error))
                break;
            return res;
        }
        JournalEvent ev;
        ev.type = parsed.value.stringOr("event", "");
        ev.seq = static_cast<std::uint64_t>(
            parsed.value.numberOr("seq", 0.0));
        ev.t = parsed.value.numberOr("t", 0.0);
        ev.fields = std::move(parsed.value);
        if (ev.type.empty()) {
            if (failLine("event member missing"))
                break;
            return res;
        }
        res.events.push_back(std::move(ev));
    }
    res.ok = true;
    return res;
}

namespace {

Value
histogramToJson(const HistogramSnapshot &s)
{
    Value h = Value::object();
    h.set("count", static_cast<double>(s.count));
    h.set("sum", s.sum);
    h.set("min", s.min);
    h.set("mean", s.mean);
    h.set("p50", s.p50);
    h.set("p95", s.p95);
    h.set("p99", s.p99);
    h.set("max", s.max);
    return h;
}

HistogramSnapshot
histogramFromJson(const Value &v)
{
    HistogramSnapshot s;
    s.count = static_cast<std::uint64_t>(v.numberOr("count", 0.0));
    s.sum = v.numberOr("sum", 0.0);
    s.min = v.numberOr("min", 0.0);
    s.mean = v.numberOr("mean", 0.0);
    s.p50 = v.numberOr("p50", 0.0);
    s.p95 = v.numberOr("p95", 0.0);
    s.p99 = v.numberOr("p99", 0.0);
    s.max = v.numberOr("max", 0.0);
    return s;
}

Value
metricsToJson(const MetricsSnapshot &snap)
{
    Value counters = Value::object();
    for (const auto &[name, v] : snap.counters)
        counters.set(name, static_cast<double>(v));
    Value gauges = Value::object();
    for (const auto &[name, v] : snap.gauges)
        gauges.set(name, v);
    Value histograms = Value::object();
    for (const auto &[name, h] : snap.histograms)
        histograms.set(name, histogramToJson(h));
    Value out = Value::object();
    out.set("counters", std::move(counters));
    out.set("gauges", std::move(gauges));
    out.set("histograms", std::move(histograms));
    return out;
}

MetricsSnapshot
metricsFromJson(const Value &v)
{
    MetricsSnapshot snap;
    if (const Value *c = v.find("counters")) {
        for (const auto &[name, member] : c->members())
            snap.counters[name] = static_cast<std::uint64_t>(
                member.asNumber(0.0));
    }
    if (const Value *g = v.find("gauges")) {
        for (const auto &[name, member] : g->members())
            snap.gauges[name] = member.asNumber(0.0);
    }
    if (const Value *h = v.find("histograms")) {
        for (const auto &[name, member] : h->members())
            snap.histograms[name] = histogramFromJson(member);
    }
    return snap;
}

/** Split a metric name on '.' for stage.<chain>.<stage>.<w>... */
std::vector<std::string>
splitDots(const std::string &name)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t dot = name.find('.', start);
        if (dot == std::string::npos) {
            parts.push_back(name.substr(start));
            return parts;
        }
        parts.push_back(name.substr(start, dot - start));
        start = dot + 1;
    }
}

/** One aggregated (chain, stage) attribution row. */
struct StageRow
{
    std::string chain;
    std::string stage;
    std::uint64_t calls = 0;
    double wallSeconds = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    std::uint64_t allocs = 0;
};

std::vector<StageRow>
stageRows(const MetricsSnapshot &metrics)
{
    std::map<std::pair<std::string, std::string>, StageRow> rows;
    for (const auto &[name, h] : metrics.histograms) {
        const auto parts = splitDots(name);
        if (parts.size() != 5 || parts[0] != "stage" ||
            parts[4] != "wall_seconds")
            continue;
        StageRow &row = rows[{parts[1], parts[2]}];
        row.chain = parts[1];
        row.stage = parts[2];
        // Quantiles merge as a count-weighted mean over workers.
        const double total =
            static_cast<double>(row.calls + h.count);
        if (h.count > 0 && total > 0) {
            const double wb =
                static_cast<double>(h.count) / total;
            row.p95 = row.p95 * (1.0 - wb) + h.p95 * wb;
            row.p99 = row.p99 * (1.0 - wb) + h.p99 * wb;
        }
        row.calls += h.count;
        row.wallSeconds += h.sum;
    }
    for (const auto &[name, v] : metrics.counters) {
        const auto parts = splitDots(name);
        if (parts.size() != 5 || parts[0] != "stage" ||
            parts[4] != "alloc_count")
            continue;
        auto it = rows.find({parts[1], parts[2]});
        if (it != rows.end())
            it->second.allocs += v;
    }
    std::vector<StageRow> out;
    out.reserve(rows.size());
    for (auto &[key, row] : rows)
        out.push_back(std::move(row));
    std::sort(out.begin(), out.end(),
              [](const StageRow &a, const StageRow &b) {
                  return a.wallSeconds != b.wallSeconds
                             ? a.wallSeconds > b.wallSeconds
                             : a.stage < b.stage;
              });
    return out;
}

/** Max arena high-water per chain over all workers. */
std::map<std::string, double>
arenaHighWater(const MetricsSnapshot &metrics)
{
    std::map<std::string, double> out;
    for (const auto &[name, v] : metrics.gauges) {
        const auto parts = splitDots(name);
        if (parts.size() != 4 || parts[0] != "stage" ||
            parts[2] != "arena_high_water_bytes")
            continue;
        auto [it, fresh] = out.emplace(parts[1], v);
        if (!fresh)
            it->second = std::max(it->second, v);
    }
    return out;
}

double
counterOr(const MetricsSnapshot &metrics, const std::string &name)
{
    const auto it = metrics.counters.find(name);
    return it == metrics.counters.end()
               ? 0.0
               : static_cast<double>(it->second);
}

/** Total stage-attributed wall plus the calibration warm-up. */
void
coverage(const RunReport &report, double &stageWall,
         double &calibrateWall)
{
    stageWall = 0.0;
    for (const auto &row : stageRows(report.metrics))
        stageWall += row.wallSeconds;
    calibrateWall = 0.0;
    const auto it = report.metrics.histograms.find(
        "campaign.calibrate_seconds");
    if (it != report.metrics.histograms.end())
        calibrateWall = it->second.sum;
}

} // namespace

bool
aggregateJournals(const std::vector<std::string> &paths,
                  RunReport &out, std::string *error)
{
    out = RunReport{};
    for (const auto &path : paths) {
        const JournalReadResult res = readJournal(path);
        if (!res.ok) {
            if (error)
                *error = res.error;
            return false;
        }
        ++out.journalCount;
        out.eventCount += res.events.size();
        out.truncatedTail |= res.truncatedTail;
        for (const auto &ev : res.events) {
            const Value &f = ev.fields;
            if (ev.type == "run-start") {
                const std::string identity =
                    f.stringOr("identity", "");
                if (out.identity.empty()) {
                    out.identity = identity;
                } else if (identity != out.identity) {
                    if (error)
                        *error = format(
                            "%s: campaign identity %s does not "
                            "match %s — not shards of one run",
                            path.c_str(), identity.c_str(),
                            out.identity.c_str());
                    return false;
                }
                ++out.runStarts;
                out.machine = f.stringOr("machine", out.machine);
                out.machineDigest = f.stringOr(
                    "machine_digest", out.machineDigest);
                out.channel = f.stringOr("channel", out.channel);
                out.simd = f.stringOr("simd", out.simd);
                out.build = f.stringOr("build", out.build);
                out.faultPlan =
                    f.stringOr("fault_plan", out.faultPlan);
                out.seed = f.numberOr("seed", out.seed);
                out.jobs = f.numberOr("jobs", out.jobs);
                out.reps = f.numberOr("reps", out.reps);
            } else if (ev.type == "cell-retry") {
                ++out.retries;
            } else if (ev.type == "fault-injected") {
                ++out.faultsInjected;
            } else if (ev.type == "checkpoint-written") {
                ++out.checkpointsWritten;
            } else if (ev.type == "worker-started" ||
                       ev.type == "worker-died" ||
                       ev.type == "worker-restarted") {
                if (ev.type == "worker-started")
                    ++out.workerStarts;
                else if (ev.type == "worker-died")
                    ++out.workerDeaths;
                else
                    ++out.workerRestarts;
                WorkerEventRecord rec;
                rec.t = ev.t;
                rec.type = ev.type;
                rec.slot = static_cast<std::uint64_t>(
                    f.numberOr("slot", 0.0));
                rec.pid = f.numberOr("pid", 0.0);
                rec.detail = f.stringOr("detail", "");
                out.workerEvents.push_back(std::move(rec));
            } else if (ev.type == "cell-quarantined") {
                ++out.quarantinedCells;
                WorkerEventRecord rec;
                rec.t = ev.t;
                rec.type = ev.type;
                rec.detail = format(
                    "%s after %.0f crashes: %s",
                    f.stringOr("pair", "?").c_str(),
                    f.numberOr("crashes", 0.0),
                    f.stringOr("reason", "").c_str());
                out.workerEvents.push_back(std::move(rec));
            } else if (ev.type == "cell-done") {
                CellRecord rec;
                rec.pair = f.stringOr("pair", "");
                rec.a = f.stringOr("a", "");
                rec.b = f.stringOr("b", "");
                rec.state = f.stringOr("state", "ok");
                rec.attempts = static_cast<std::uint64_t>(
                    f.numberOr("attempts", 1.0));
                rec.backoffSeconds = f.numberOr("backoff_s", 0.0);
                rec.wallSeconds = f.numberOr("wall_s", 0.0);
                rec.cpuSeconds = f.numberOr("cpu_s", 0.0);
                rec.reps = f.numberOr("reps", 0.0);
                rec.savatZjMean =
                    f.numberOr("savat_zj_mean", 0.0);
                rec.restored = f.boolOr("restored", false);
                rec.error = f.stringOr("error", "");
                // Speculation attribution (absent in v1 journals;
                // numberOr keeps those readable with zero counts).
                rec.bpConditional = f.numberOr("bp_conditional", 0.0);
                rec.bpUnconditional =
                    f.numberOr("bp_unconditional", 0.0);
                rec.bpMispredicts = f.numberOr("bp_mispredicts", 0.0);
                rec.specSquashes = f.numberOr("spec_squashes", 0.0);
                rec.specWrongPath =
                    f.numberOr("spec_wrong_path", 0.0);
                rec.specTransientFills =
                    f.numberOr("spec_transient_fills", 0.0);
                rec.specWindowExhausted =
                    f.numberOr("spec_window_exhausted", 0.0);
                rec.specFences = f.numberOr("spec_fences", 0.0);
                rec.probeMeanA = f.numberOr("probe_mean_a", 0.0);
                rec.probeMeanB = f.numberOr("probe_mean_b", 0.0);
                if (!rec.pair.empty())
                    out.cells[rec.pair] = std::move(rec);
            } else if (ev.type == "run-end") {
                ++out.runEnds;
                out.wallSeconds = std::max(
                    out.wallSeconds, f.numberOr("wall_s", 0.0));
                if (const Value *m = f.find("metrics"))
                    out.metrics.merge(metricsFromJson(*m));
            }
        }
    }
    if (out.runStarts == 0) {
        if (error)
            *error = "no run-start event found in any journal";
        return false;
    }
    return true;
}

support::json::Value
metricsSnapshotToJson(const MetricsSnapshot &snap)
{
    return metricsToJson(snap);
}

void
writeReportTables(std::ostream &os, const RunReport &report)
{
    os << format("campaign %s on %s (digest %s), channel %s\n",
                 report.identity.c_str(), report.machine.c_str(),
                 report.machineDigest.c_str(),
                 report.channel.c_str());
    os << format(
        "  build %s, simd %s, seed 0x%llx, jobs %g, reps %g\n",
        report.build.c_str(), report.simd.c_str(),
        static_cast<unsigned long long>(report.seed), report.jobs,
        report.reps);
    os << format("  %zu journal(s), %zu events, run wall %.3f s%s\n",
                 report.journalCount, report.eventCount,
                 report.wallSeconds,
                 report.truncatedTail
                     ? " [truncated tail: crashed mid-write]"
                     : "");
    if (!report.faultPlan.empty())
        os << format("  fault plan: %s\n",
                     report.faultPlan.c_str());

    std::size_t ok = 0, degraded = 0, failed = 0, skipped = 0,
                restored = 0;
    for (const auto &[pair, cell] : report.cells) {
        if (cell.state == "ok")
            ++ok;
        else if (cell.state == "degraded")
            ++degraded;
        else if (cell.state == "skipped")
            ++skipped;
        else
            ++failed;
        if (cell.restored)
            ++restored;
    }
    os << format("  cells %zu (ok %zu, degraded %zu, failed %zu, "
                 "skipped %zu, restored %zu); retries %zu, faults "
                 "%zu, checkpoints %zu\n",
                 report.cells.size(), ok, degraded, failed,
                 skipped, restored, report.retries,
                 report.faultsInjected,
                 report.checkpointsWritten);
    if (report.workerStarts > 0 || report.workerDeaths > 0 ||
        report.quarantinedCells > 0)
        os << format("  service: %zu worker(s) started, %zu "
                     "death(s), %zu restart(s), %zu cell(s) "
                     "quarantined\n",
                     report.workerStarts, report.workerDeaths,
                     report.workerRestarts,
                     report.quarantinedCells);

    // Worker lifecycle (process-isolated campaigns only): every
    // spawn/death/restart/quarantine, in journal order, so a
    // degraded run's crash story reads straight off the report.
    if (!report.workerEvents.empty()) {
        os << "\nworker events\n";
        TextTable t;
        t.setHeader({"t_s", "event", "slot", "pid", "detail"});
        for (const auto &ev : report.workerEvents) {
            t.startRow();
            t.addCell(ev.t, 3);
            t.addCell(ev.type);
            t.addCell(ev.type == "cell-quarantined"
                          ? std::string()
                          : format("%llu",
                                   static_cast<unsigned long long>(
                                       ev.slot)));
            t.addCell(ev.pid > 0.0 ? format("%.0f", ev.pid)
                                   : std::string());
            t.addCell(ev.detail);
        }
        t.render(os);
    }

    const auto rows = stageRows(report.metrics);
    if (!rows.empty()) {
        double stageWall = 0.0, calibrateWall = 0.0;
        coverage(report, stageWall, calibrateWall);
        const double runWall =
            report.wallSeconds > 0.0 ? report.wallSeconds
                                     : stageWall + calibrateWall;
        os << "\nstage attribution\n";
        TextTable t;
        t.setHeader({"chain", "stage", "calls", "wall_s",
                     "mean_ms", "p95_ms", "p99_ms", "allocs",
                     "share"});
        for (const auto &row : rows) {
            t.startRow();
            t.addCell(row.chain);
            t.addCell(row.stage);
            t.addCell(static_cast<long long>(row.calls));
            t.addCell(row.wallSeconds, 4);
            t.addCell(row.calls > 0
                          ? 1e3 * row.wallSeconds /
                                static_cast<double>(row.calls)
                          : 0.0,
                      4);
            t.addCell(1e3 * row.p95, 4);
            t.addCell(1e3 * row.p99, 4);
            t.addCell(static_cast<long long>(row.allocs));
            t.addCell(format("%.1f%%", 100.0 * row.wallSeconds /
                                           std::max(runWall,
                                                    1e-12)));
        }
        t.render(os);
        os << format("stage coverage: %.3f s attributed + %.3f s "
                     "calibration of %.3f s run wall (%.1f%%)\n",
                     stageWall, calibrateWall, runWall,
                     100.0 * (stageWall + calibrateWall) /
                         std::max(runWall, 1e-12));
    }

    const auto arena = arenaHighWater(report.metrics);
    if (!arena.empty()) {
        os << "\narena high water\n";
        for (const auto &[chain, bytes] : arena)
            os << format("  %-8s %12.0f bytes\n", chain.c_str(),
                         bytes);
    }

    struct CachePair
    {
        const char *label;
        const char *hits;
        const char *misses;
    };
    static const CachePair kCaches[] = {
        {"cpi calibration", "meter.cpi_cache_hits",
         "meter.cpi_calibrations"},
        {"pair simulation", "meter.pair_cache_hits",
         "meter.pair_simulations"},
        {"fft plan", "fft.plan_cache_hits",
         "fft.plan_cache_misses"},
    };
    bool cacheHeader = false;
    for (const auto &cache : kCaches) {
        const double hits = counterOr(report.metrics, cache.hits);
        const double misses =
            counterOr(report.metrics, cache.misses);
        if (hits + misses <= 0.0)
            continue;
        if (!cacheHeader) {
            os << "\ncache hit rates\n";
            cacheHeader = true;
        }
        os << format("  %-16s %8.0f hits %8.0f misses (%.1f%%)\n",
                     cache.label, hits, misses,
                     100.0 * hits / (hits + misses));
    }

    if (!report.cells.empty()) {
        os << "\ncells\n";
        TextTable t;
        t.setHeader({"pair", "state", "attempts", "wall_ms",
                     "cpu_ms", "reps", "savat_zj_mean", "flags"});
        for (const auto &[pair, cell] : report.cells) {
            t.startRow();
            t.addCell(pair);
            t.addCell(cell.state);
            t.addCell(static_cast<long long>(cell.attempts));
            t.addCell(1e3 * cell.wallSeconds, 3);
            t.addCell(1e3 * cell.cpuSeconds, 3);
            t.addCell(static_cast<long long>(cell.reps));
            t.addCell(format("%.6g", cell.savatZjMean));
            t.addCell(cell.restored ? "restored" : "");
        }
        t.render(os);
    }

    // Per-cell speculation attribution: shown only when some cell
    // actually speculated (or carried a timing-probe readout), so
    // in-order analog campaigns keep their familiar report.
    bool anySpec = false;
    for (const auto &[pair, cell] : report.cells) {
        if (cell.speculated()) {
            anySpec = true;
            break;
        }
    }
    if (anySpec) {
        os << "\nspeculation attribution\n";
        TextTable t;
        t.setHeader({"pair", "branches", "mispredicts", "squashes",
                     "wrong_path", "transient_fills", "fences",
                     "probe_delta"});
        for (const auto &[pair, cell] : report.cells) {
            if (!cell.speculated())
                continue;
            t.startRow();
            t.addCell(pair);
            t.addCell(static_cast<long long>(
                cell.bpConditional + cell.bpUnconditional));
            t.addCell(
                static_cast<long long>(cell.bpMispredicts));
            t.addCell(static_cast<long long>(cell.specSquashes));
            t.addCell(
                static_cast<long long>(cell.specWrongPath));
            t.addCell(static_cast<long long>(
                cell.specTransientFills));
            t.addCell(static_cast<long long>(cell.specFences));
            t.addCell(format("%.4g", cell.probeMeanA -
                                         cell.probeMeanB));
        }
        t.render(os);
    }
}

void
writeReportJson(std::ostream &os, const RunReport &report)
{
    Value root = Value::object();
    root.set("schema", kReportSchema);
    root.set("identity", report.identity);
    Value machine = Value::object();
    machine.set("id", report.machine);
    machine.set("digest", report.machineDigest);
    root.set("machine", std::move(machine));
    root.set("channel", report.channel);
    root.set("simd", report.simd);
    root.set("build", report.build);
    root.set("seed", report.seed);
    root.set("jobs", report.jobs);
    root.set("reps", report.reps);
    root.set("journals",
             static_cast<double>(report.journalCount));
    root.set("events", static_cast<double>(report.eventCount));
    root.set("truncated_tail", report.truncatedTail);
    root.set("wall_seconds", report.wallSeconds);
    if (!report.faultPlan.empty())
        root.set("fault_plan", report.faultPlan);

    std::size_t ok = 0, degraded = 0, failed = 0, skipped = 0,
                restored = 0;
    Value cells = Value::array();
    for (const auto &[pair, cell] : report.cells) {
        if (cell.state == "ok")
            ++ok;
        else if (cell.state == "degraded")
            ++degraded;
        else if (cell.state == "skipped")
            ++skipped;
        else
            ++failed;
        if (cell.restored)
            ++restored;
        Value c = Value::object();
        c.set("pair", pair);
        c.set("a", cell.a);
        c.set("b", cell.b);
        c.set("state", cell.state);
        c.set("attempts", static_cast<double>(cell.attempts));
        c.set("wall_s", cell.wallSeconds);
        c.set("cpu_s", cell.cpuSeconds);
        c.set("reps", cell.reps);
        c.set("savat_zj_mean", cell.savatZjMean);
        c.set("restored", cell.restored);
        c.set("bp_conditional", cell.bpConditional);
        c.set("bp_unconditional", cell.bpUnconditional);
        c.set("bp_mispredicts", cell.bpMispredicts);
        c.set("spec_squashes", cell.specSquashes);
        c.set("spec_wrong_path", cell.specWrongPath);
        c.set("spec_transient_fills", cell.specTransientFills);
        c.set("spec_window_exhausted", cell.specWindowExhausted);
        c.set("spec_fences", cell.specFences);
        c.set("probe_mean_a", cell.probeMeanA);
        c.set("probe_mean_b", cell.probeMeanB);
        if (!cell.error.empty())
            c.set("error", cell.error);
        cells.push(std::move(c));
    }
    Value totals = Value::object();
    totals.set("cells", static_cast<double>(report.cells.size()));
    totals.set("ok", static_cast<double>(ok));
    totals.set("degraded", static_cast<double>(degraded));
    totals.set("failed", static_cast<double>(failed));
    totals.set("skipped", static_cast<double>(skipped));
    totals.set("restored", static_cast<double>(restored));
    totals.set("retries", static_cast<double>(report.retries));
    totals.set("faults_injected",
               static_cast<double>(report.faultsInjected));
    totals.set("checkpoints_written",
               static_cast<double>(report.checkpointsWritten));
    totals.set("worker_starts",
               static_cast<double>(report.workerStarts));
    totals.set("worker_deaths",
               static_cast<double>(report.workerDeaths));
    totals.set("worker_restarts",
               static_cast<double>(report.workerRestarts));
    totals.set("quarantined_cells",
               static_cast<double>(report.quarantinedCells));
    root.set("totals", std::move(totals));
    root.set("cells", std::move(cells));

    if (!report.workerEvents.empty()) {
        Value events = Value::array();
        for (const auto &ev : report.workerEvents) {
            Value e = Value::object();
            e.set("t", ev.t);
            e.set("event", ev.type);
            e.set("slot", static_cast<double>(ev.slot));
            e.set("pid", ev.pid);
            e.set("detail", ev.detail);
            events.push(std::move(e));
        }
        root.set("worker_events", std::move(events));
    }

    Value stages = Value::array();
    double stageWall = 0.0, calibrateWall = 0.0;
    coverage(report, stageWall, calibrateWall);
    for (const auto &row : stageRows(report.metrics)) {
        Value s = Value::object();
        s.set("chain", row.chain);
        s.set("stage", row.stage);
        s.set("calls", static_cast<double>(row.calls));
        s.set("wall_s", row.wallSeconds);
        s.set("p95_s", row.p95);
        s.set("p99_s", row.p99);
        s.set("allocs", static_cast<double>(row.allocs));
        stages.push(std::move(s));
    }
    root.set("stages", std::move(stages));
    Value cov = Value::object();
    cov.set("stage_wall_s", stageWall);
    cov.set("calibrate_wall_s", calibrateWall);
    cov.set("run_wall_s", report.wallSeconds);
    cov.set("share",
            report.wallSeconds > 0.0
                ? (stageWall + calibrateWall) / report.wallSeconds
                : 0.0);
    root.set("coverage", std::move(cov));

    Value arena = Value::object();
    for (const auto &[chain, bytes] :
         arenaHighWater(report.metrics))
        arena.set(chain, bytes);
    root.set("arena_high_water_bytes", std::move(arena));

    root.set("metrics", metricsToJson(report.metrics));
    os << root.serialize() << "\n";
}

} // namespace savat::obs
