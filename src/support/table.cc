#include "support/table.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "support/logging.hh"
#include "support/strings.hh"

namespace savat {

void
TextTable::setHeader(std::vector<std::string> header)
{
    _header = std::move(header);
}

void
TextTable::startRow()
{
    _rows.emplace_back();
}

void
TextTable::addCell(std::string cell)
{
    SAVAT_ASSERT(!_rows.empty(), "addCell before startRow");
    _rows.back().push_back(std::move(cell));
}

void
TextTable::addCell(double value, int precision)
{
    addCell(format("%.*f", precision, value));
}

void
TextTable::addCell(long long value)
{
    addCell(format("%lld", value));
}

namespace {

bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    std::strtod(s.c_str(), &end);
    return end != s.c_str() && *end == '\0';
}

} // namespace

void
TextTable::render(std::ostream &os) const
{
    std::size_t ncols = _header.size();
    for (const auto &row : _rows)
        ncols = std::max(ncols, row.size());

    std::vector<std::size_t> widths(ncols, 0);
    for (std::size_t c = 0; c < _header.size(); ++c)
        widths[c] = _header[c].size();
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < ncols; ++c) {
            const std::string cell = c < row.size() ? row[c] : "";
            const bool right = looksNumeric(cell);
            const auto pad = widths[c] - cell.size();
            if (c)
                os << "  ";
            if (right)
                os << std::string(pad, ' ') << cell;
            else
                os << cell << std::string(pad, ' ');
        }
        os << '\n';
    };

    if (!_header.empty()) {
        emit_row(_header);
        std::size_t total = 0;
        for (std::size_t c = 0; c < ncols; ++c)
            total += widths[c] + (c ? 2 : 0);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &row : _rows)
        emit_row(row);
}

void
TextTable::renderCsv(std::ostream &os) const
{
    auto escape = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char c : s) {
            if (c == '"')
                out += "\"\"";
            else
                out += c;
        }
        out += '"';
        return out;
    };
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << escape(row[c]);
        }
        os << '\n';
    };
    if (!_header.empty())
        emit_row(_header);
    for (const auto &row : _rows)
        emit_row(row);
}

std::string
asciiHeatmap(const std::vector<std::string> &labels,
             const std::vector<std::vector<double>> &values)
{
    SAVAT_ASSERT(labels.size() == values.size(), "heatmap shape mismatch");
    // Light -> dark ramp, like the paper's white-to-black shading.
    static const char *ramp = " .:-=+*#%@";
    const int nshades = 10;

    double lo = 0.0, hi = 0.0;
    bool first = true;
    for (const auto &row : values) {
        for (double v : row) {
            if (first) {
                lo = hi = v;
                first = false;
            }
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
    }
    const double span = (hi > lo) ? (hi - lo) : 1.0;

    std::size_t lw = 0;
    for (const auto &l : labels)
        lw = std::max(lw, l.size());

    std::ostringstream oss;
    oss << std::string(lw + 2, ' ');
    for (const auto &l : labels)
        oss << format("%5s", l.substr(0, 5).c_str());
    oss << '\n';
    for (std::size_t r = 0; r < values.size(); ++r) {
        oss << format("%-*s  ", static_cast<int>(lw), labels[r].c_str());
        SAVAT_ASSERT(values[r].size() == labels.size(),
                     "heatmap row width mismatch");
        for (double v : values[r]) {
            int shade = static_cast<int>(
                std::floor((v - lo) / span * (nshades - 1) + 0.5));
            shade = std::clamp(shade, 0, nshades - 1);
            const char ch = ramp[shade];
            oss << "  " << ch << ch << ' ';
        }
        oss << '\n';
    }
    return oss.str();
}

std::string
asciiBarChart(const std::vector<std::string> &labels,
              const std::vector<double> &values, int width)
{
    SAVAT_ASSERT(labels.size() == values.size(), "bar chart shape mismatch");
    double hi = 0.0;
    for (double v : values)
        hi = std::max(hi, v);
    if (hi <= 0.0)
        hi = 1.0;

    std::size_t lw = 0;
    for (const auto &l : labels)
        lw = std::max(lw, l.size());

    std::ostringstream oss;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        const int n = static_cast<int>(
            std::lround(values[i] / hi * static_cast<double>(width)));
        oss << format("%-*s |", static_cast<int>(lw), labels[i].c_str())
            << std::string(static_cast<std::size_t>(std::max(n, 0)), '#')
            << format(" %.2f", values[i]) << '\n';
    }
    return oss.str();
}

} // namespace savat
