/**
 * @file
 * C99 hexfloat ("%a") serialization helpers.
 *
 * Every artifact that must round-trip bit-exactly — trace
 * recordings, campaign checkpoints, matrix fixtures — stores its
 * doubles as hexfloats. istream's operator>> does not accept the
 * "%a" form, so the readers here tokenize and strtod instead.
 */

#ifndef SAVAT_SUPPORT_HEXFLOAT_HH
#define SAVAT_SUPPORT_HEXFLOAT_HH

#include <istream>
#include <ostream>
#include <string>

namespace savat::support {

/** Print one double as a C99 "%a" hexfloat token. */
void printHexFloat(std::ostream &os, double v);

/** The "%a" rendering as a string. */
std::string hexFloat(double v);

/**
 * Read one whitespace-delimited numeric token, accepting hexfloats
 * as well as plain decimals. Returns false at end of stream or on a
 * malformed token.
 */
bool readHexFloat(std::istream &in, double &out);

} // namespace savat::support

#endif // SAVAT_SUPPORT_HEXFLOAT_HH
