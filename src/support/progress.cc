#include "support/progress.hh"

#include <cstdio>
#include <ostream>

#include "support/strings.hh"

namespace savat::obs {

ProgressMeter::ProgressMeter(std::string label,
                             double maxUpdatesPerSecond,
                             std::ostream *sink)
    : _label(std::move(label)), _sink(sink)
{
    if (maxUpdatesPerSecond > 0.0) {
        _minInterval =
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    1.0 / maxUpdatesPerSecond));
    } else {
        _minInterval = std::chrono::steady_clock::duration::zero();
    }
}

void
ProgressMeter::update(std::size_t done, std::size_t total)
{
    ProgressCounts counts;
    {
        const std::lock_guard<std::mutex> lock(_mu);
        counts = _counts; // keep health counts a sink() reported
    }
    counts.done = done;
    counts.total = total;
    update(counts);
}

void
ProgressMeter::update(const ProgressCounts &counts)
{
    const auto now = std::chrono::steady_clock::now();
    const std::lock_guard<std::mutex> lock(_mu);
    if (_finished)
        return;
    const bool first = !_started;
    if (first) {
        _started = true;
        _start = now;
        // Work completed before this session (checkpoint restore)
        // costs no session time; the ETA rate starts here.
        _baseDone = counts.done;
    }
    _counts = counts;
    const std::size_t done = counts.done;
    const std::size_t total = counts.total;
    const bool final = total > 0 && done >= total;
    if (!first && !final && now - _last < _minInterval)
        return;
    _last = now;

    const double elapsed =
        std::chrono::duration<double>(now - _start).count();
    const double pct =
        total > 0 ? 100.0 * static_cast<double>(done) /
                        static_cast<double>(total)
                  : 0.0;
    std::string line = format("\r%s %zu/%zu (%.1f%%)",
                              _label.c_str(), done, total, pct);
    if (final) {
        line += format(" in %.1fs", elapsed);
        std::string health;
        const auto append = [&health](const char *name,
                                      std::size_t n) {
            if (n == 0)
                return;
            if (!health.empty())
                health += ", ";
            health += format("%s %zu", name, n);
        };
        append("retried", counts.retried);
        append("degraded", counts.degraded);
        append("skipped", counts.skipped);
        append("restored", counts.restored);
        if (!health.empty())
            line += " [" + health + "]";
        line += "\n";
        _finished = true;
    } else if (done > _baseDone && elapsed > 0.0) {
        // Rate over cells completed *this session*: restored cells
        // are excluded and a retried cell still counts once.
        const double rate =
            static_cast<double>(done - _baseDone) / elapsed;
        const double eta =
            static_cast<double>(total - done) / rate;
        line += format(" ETA %.1fs", eta);
    }
    emit(line);
}

ProgressFn
ProgressMeter::callback()
{
    return [this](std::size_t done, std::size_t total) {
        update(done, total);
    };
}

ProgressSink
ProgressMeter::sink()
{
    return [this](const ProgressCounts &counts) {
        update(counts);
    };
}

void
ProgressMeter::emit(const std::string &line)
{
    if (_sink) {
        *_sink << line;
        _sink->flush();
    } else {
        std::fputs(line.c_str(), stderr);
        std::fflush(stderr);
    }
}

} // namespace savat::obs
