#include "support/progress.hh"

#include <cstdio>
#include <ostream>

#include "support/strings.hh"

namespace savat::obs {

ProgressMeter::ProgressMeter(std::string label,
                             double maxUpdatesPerSecond,
                             std::ostream *sink)
    : _label(std::move(label)), _sink(sink)
{
    if (maxUpdatesPerSecond > 0.0) {
        _minInterval =
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    1.0 / maxUpdatesPerSecond));
    } else {
        _minInterval = std::chrono::steady_clock::duration::zero();
    }
}

void
ProgressMeter::update(std::size_t done, std::size_t total)
{
    const auto now = std::chrono::steady_clock::now();
    const std::lock_guard<std::mutex> lock(_mu);
    if (_finished)
        return;
    const bool first = !_started;
    if (first) {
        _started = true;
        _start = now;
    }
    const bool final = total > 0 && done >= total;
    if (!first && !final && now - _last < _minInterval)
        return;
    _last = now;

    const double elapsed =
        std::chrono::duration<double>(now - _start).count();
    const double pct =
        total > 0 ? 100.0 * static_cast<double>(done) /
                        static_cast<double>(total)
                  : 0.0;
    std::string line = format("\r%s %zu/%zu (%.1f%%)",
                              _label.c_str(), done, total, pct);
    if (final) {
        line += format(" in %.1fs\n", elapsed);
        _finished = true;
    } else if (done > 0 && elapsed > 0.0) {
        const double eta = elapsed *
                           static_cast<double>(total - done) /
                           static_cast<double>(done);
        line += format(" ETA %.1fs", eta);
    }
    emit(line);
}

ProgressFn
ProgressMeter::callback()
{
    return [this](std::size_t done, std::size_t total) {
        update(done, total);
    };
}

void
ProgressMeter::emit(const std::string &line)
{
    if (_sink) {
        *_sink << line;
        _sink->flush();
    } else {
        std::fputs(line.c_str(), stderr);
        std::fflush(stderr);
    }
}

} // namespace savat::obs
