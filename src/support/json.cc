#include "support/json.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "support/strings.hh"

namespace savat::support::json {

Value
Value::array()
{
    Value v;
    v._kind = Kind::Array;
    return v;
}

Value
Value::object()
{
    Value v;
    v._kind = Kind::Object;
    return v;
}

bool
Value::asBool(bool fallback) const
{
    return _kind == Kind::Bool ? _bool : fallback;
}

double
Value::asNumber(double fallback) const
{
    return _kind == Kind::Number ? _number : fallback;
}

const std::string &
Value::asString() const
{
    static const std::string empty;
    return _kind == Kind::String ? _string : empty;
}

void
Value::push(Value v)
{
    _kind = Kind::Array;
    _elements.push_back(std::move(v));
}

void
Value::set(std::string key, Value v)
{
    _kind = Kind::Object;
    _members.emplace_back(std::move(key), std::move(v));
}

const Value *
Value::find(const std::string &key) const
{
    for (const auto &[k, v] : _members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

double
Value::numberOr(const std::string &key, double fallback) const
{
    const Value *v = find(key);
    return v ? v->asNumber(fallback) : fallback;
}

std::string
Value::stringOr(const std::string &key,
                const std::string &fallback) const
{
    const Value *v = find(key);
    return v && v->isString() ? v->asString() : fallback;
}

bool
Value::boolOr(const std::string &key, bool fallback) const
{
    const Value *v = find(key);
    return v ? v->asBool(fallback) : fallback;
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

std::string
numberText(double v)
{
    if (!std::isfinite(v))
        return "0";
    // %.17g round-trips every double; trim to the short form when
    // the value is integral and small enough to print exactly.
    if (v == std::floor(v) && std::fabs(v) < 1e15)
        return format("%.0f", v);
    return format("%.17g", v);
}

namespace {

void
serializeInto(const Value &v, std::string &out)
{
    switch (v.kind()) {
      case Value::Kind::Null:
        out += "null";
        return;
      case Value::Kind::Bool:
        out += v.asBool() ? "true" : "false";
        return;
      case Value::Kind::Number:
        out += numberText(v.asNumber());
        return;
      case Value::Kind::String:
        out += '"';
        out += escape(v.asString());
        out += '"';
        return;
      case Value::Kind::Array: {
        out += '[';
        const char *sep = "";
        for (const auto &e : v.elements()) {
            out += sep;
            serializeInto(e, out);
            sep = ",";
        }
        out += ']';
        return;
      }
      case Value::Kind::Object: {
        out += '{';
        const char *sep = "";
        for (const auto &[key, member] : v.members()) {
            out += sep;
            out += '"';
            out += escape(key);
            out += "\":";
            serializeInto(member, out);
            sep = ",";
        }
        out += '}';
        return;
      }
    }
}

/** Recursive-descent parser over the whole document string. */
struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    explicit Parser(const std::string &t) : text(t) {}

    bool
    fail(const std::string &what)
    {
        if (error.empty())
            error = format("%s at byte %zu", what.c_str(), pos);
        return false;
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text.compare(pos, n, word) != 0)
            return fail(format("expected '%s'", word));
        pos += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                return fail("dangling escape");
            const char esc = text[pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // The journals only ever emit control characters
                // this way; encode as UTF-8 for completeness.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out +=
                        static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out +=
                        static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(Value &out)
    {
        skipSpace();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            out = Value::object();
            skipSpace();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            while (true) {
                skipSpace();
                std::string key;
                if (!parseString(key))
                    return false;
                skipSpace();
                if (pos >= text.size() || text[pos] != ':')
                    return fail("expected ':'");
                ++pos;
                Value member;
                if (!parseValue(member))
                    return false;
                out.set(std::move(key), std::move(member));
                skipSpace();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < text.size() && text[pos] == '}') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out = Value::array();
            skipSpace();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            while (true) {
                Value element;
                if (!parseValue(element))
                    return false;
                out.push(std::move(element));
                skipSpace();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < text.size() && text[pos] == ']') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Value(std::move(s));
            return true;
        }
        if (c == 't') {
            if (!literal("true"))
                return false;
            out = Value(true);
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return false;
            out = Value(false);
            return true;
        }
        if (c == 'n') {
            if (!literal("null"))
                return false;
            out = Value();
            return true;
        }
        char *end = nullptr;
        const double v = std::strtod(text.c_str() + pos, &end);
        if (end == text.c_str() + pos)
            return fail("expected value");
        pos = static_cast<std::size_t>(end - text.c_str());
        out = Value(v);
        return true;
    }
};

} // namespace

std::string
Value::serialize() const
{
    std::string out;
    serializeInto(*this, out);
    return out;
}

ParseResult
parse(const std::string &text)
{
    ParseResult res;
    Parser p(text);
    if (!p.parseValue(res.value)) {
        res.error = p.error;
        return res;
    }
    p.skipSpace();
    if (p.pos != text.size()) {
        res.error =
            format("trailing garbage at byte %zu", p.pos);
        return res;
    }
    res.ok = true;
    return res;
}

} // namespace savat::support::json
