/**
 * @file
 * Plain-text table and CSV writers for benchmark/report output.
 *
 * The benchmark binaries print the same row/column structures the
 * paper's tables and figures report; this module handles alignment,
 * number formatting and CSV escaping.
 */

#ifndef SAVAT_SUPPORT_TABLE_HH
#define SAVAT_SUPPORT_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace savat {

/**
 * A rectangular table of string cells with a header row.
 *
 * Cells are added row by row; render() right-aligns numeric-looking
 * cells and left-aligns text for readable console output.
 */
class TextTable
{
  public:
    /** Set the column headers (also fixes the column count). */
    void setHeader(std::vector<std::string> header);

    /** Begin a new row. */
    void startRow();

    /** Append a string cell to the current row. */
    void addCell(std::string cell);

    /** Append a formatted floating-point cell. */
    void addCell(double value, int precision = 2);

    /** Append an integer cell. */
    void addCell(long long value);

    /** Number of data rows. */
    std::size_t rowCount() const { return _rows.size(); }

    /** Render with aligned columns to the stream. */
    void render(std::ostream &os) const;

    /** Render as RFC-4180 CSV (quoting cells that need it). */
    void renderCsv(std::ostream &os) const;

  private:
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

/**
 * Render a matrix of values as an ASCII grayscale map, mimicking the
 * paper's Figure 10/12/14/17/18 visualizations: white (small) through
 * black (large), using a character ramp.
 */
std::string asciiHeatmap(const std::vector<std::string> &labels,
                         const std::vector<std::vector<double>> &values);

/**
 * Render a labelled horizontal bar chart, mimicking the paper's
 * Figure 11/13/15/16 bar charts.
 */
std::string asciiBarChart(const std::vector<std::string> &labels,
                          const std::vector<double> &values,
                          int width = 50);

} // namespace savat

#endif // SAVAT_SUPPORT_TABLE_HH
