#include "support/arena.hh"

#include <cstdlib>
#include <new>

namespace savat::support {

namespace {

constexpr std::size_t
alignUp(std::size_t v, std::size_t align)
{
    return (v + align - 1) & ~(align - 1);
}

} // namespace

Arena::Arena(std::size_t firstPageBytes)
    : _firstPageBytes(firstPageBytes ? firstPageBytes
                                     : kDefaultPageBytes)
{
}

Arena::~Arena()
{
    Page *p = _head;
    while (p != nullptr) {
        Page *next = p->next;
        ::operator delete(p);
        p = next;
    }
}

Arena::Page *
Arena::newPage(std::size_t payloadBytes)
{
    const std::size_t header = alignUp(sizeof(Page), alignof(std::max_align_t));
    auto *raw = static_cast<std::uint8_t *>(
        ::operator new(header + payloadBytes));
    auto *page = new (raw) Page{nullptr, payloadBytes};
    _capacity += payloadBytes;
    _cursor = raw + header;
    _limit = _cursor + payloadBytes;
    return page;
}

void *
Arena::allocate(std::size_t bytes, std::size_t align)
{
    if (bytes == 0)
        bytes = 1;
    auto addr = reinterpret_cast<std::uintptr_t>(_cursor);
    const std::size_t pad =
        _head ? alignUp(addr, align) - addr : 0;
    if (_head == nullptr || _cursor + pad + bytes > _limit) {
        // Grow geometrically so a rep that outgrows the initial page
        // settles after O(log) page allocations; reset() then fuses
        // the pages so the steady state is a single page.
        std::size_t want = _capacity ? _capacity : _firstPageBytes;
        if (want < bytes + align)
            want = bytes + align;
        Page *page = newPage(want);
        page->next = _head;
        _head = page;
        addr = reinterpret_cast<std::uintptr_t>(_cursor);
        _cursor += alignUp(addr, align) - addr;
    } else {
        _cursor += pad;
    }
    void *out = _cursor;
    _cursor += bytes;
    _used += bytes;
    return out;
}

void
Arena::reset()
{
    _used = 0;
    if (_head == nullptr)
        return;
    if (_head->next != nullptr) {
        // Coalesce: replace the page chain with one page covering
        // the whole high-water footprint.
        const std::size_t total = _capacity;
        Page *p = _head;
        while (p != nullptr) {
            Page *next = p->next;
            ::operator delete(p);
            p = next;
        }
        _capacity = 0;
        _head = newPage(total);
        return;
    }
    const std::size_t header = alignUp(sizeof(Page), alignof(std::max_align_t));
    _cursor = reinterpret_cast<std::uint8_t *>(_head) + header;
    _limit = _cursor + _head->size;
}

} // namespace savat::support
