#include "support/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "support/obs.hh"
#include "support/parallel.hh"

namespace savat {

namespace {

LogLevel global_level = LogLevel::Warn;

/** Serializes stderr output so parallel workers cannot interleave
 * partial lines. */
std::mutex io_mutex;

/**
 * Compose the whole line up front (worker-tagged inside parallel
 * regions) and emit it with a single guarded write.
 */
void
writeLine(const char *prefix, const std::string &msg)
{
    std::string line(prefix);
    const int worker = support::currentWorker();
    if (worker >= 0) {
        line += "[w";
        line += std::to_string(worker);
        line += "] ";
    }
    line += msg;
    line += '\n';
    const std::lock_guard<std::mutex> lock(io_mutex);
    std::fputs(line.c_str(), stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    global_level = level;
}

LogLevel
logLevel()
{
    return global_level;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    writeLine("panic: ",
              msg + " (" + file + ":" + std::to_string(line) + ")");
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    writeLine("fatal: ",
              msg + " (" + file + ":" + std::to_string(line) + ")");
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    SAVAT_METRIC_COUNT("log.warnings");
    if (global_level >= LogLevel::Warn)
        writeLine("warn: ", msg);
}

void
informImpl(const std::string &msg)
{
    SAVAT_METRIC_COUNT("log.informs");
    if (global_level >= LogLevel::Info)
        writeLine("info: ", msg);
}

} // namespace detail

} // namespace savat
