/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant
 * violations (bugs in libsavat itself), fatal() for unrecoverable
 * user errors (bad configuration, impossible parameters), warn() and
 * inform() for non-fatal status messages.
 */

#ifndef SAVAT_SUPPORT_LOGGING_HH
#define SAVAT_SUPPORT_LOGGING_HH

#include <sstream>
#include <string>

namespace savat {

/** Verbosity levels for the global logger. */
enum class LogLevel {
    Silent,  //!< suppress inform() and warn()
    Warn,    //!< show warn() only
    Info     //!< show warn() and inform()
};

/** Set the global verbosity. Thread-unsafe by design (set at startup). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/**
 * Report an internal invariant violation and abort.
 * Use only for conditions that indicate a bug in libsavat.
 */
#define SAVAT_PANIC(...)                                                  \
    ::savat::detail::panicImpl(__FILE__, __LINE__,                        \
                               ::savat::detail::concat(__VA_ARGS__))

/**
 * Report an unrecoverable user error (bad config, invalid argument)
 * and exit with status 1.
 */
#define SAVAT_FATAL(...)                                                  \
    ::savat::detail::fatalImpl(__FILE__, __LINE__,                        \
                               ::savat::detail::concat(__VA_ARGS__))

/** Warn about suspicious but survivable conditions. */
#define SAVAT_WARN(...)                                                   \
    ::savat::detail::warnImpl(::savat::detail::concat(__VA_ARGS__))

/** Informational status message. */
#define SAVAT_INFORM(...)                                                 \
    ::savat::detail::informImpl(::savat::detail::concat(__VA_ARGS__))

/** Panic unless the given condition holds. */
#define SAVAT_ASSERT(cond, ...)                                           \
    do {                                                                  \
        if (!(cond)) {                                                    \
            SAVAT_PANIC("assertion failed: " #cond " ", __VA_ARGS__);     \
        }                                                                 \
    } while (0)

} // namespace savat

#endif // SAVAT_SUPPORT_LOGGING_HH
