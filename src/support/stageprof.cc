#include "support/stageprof.hh"

#include <array>
#include <string>

#include "support/memcount.hh"
#include "support/obs.hh"
#include "support/strings.hh"

namespace savat::obs {

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::BurstSolve: return "burst_solve";
      case Stage::KernelBuild: return "kernel_build";
      case Stage::KernelAnalyze: return "kernel_analyze";
      case Stage::Simulate: return "simulate";
      case Stage::ChannelExtract: return "channel_extract";
      case Stage::Synthesize: return "synthesize";
      case Stage::Sweep: return "sweep";
      case Stage::BandIntegrate: return "band_integrate";
      case Stage::kCount: break;
    }
    return "unknown";
}

const char *
stageChainName(StageChain c)
{
    switch (c) {
      case StageChain::Em: return "em";
      case StageChain::Power: return "power";
      case StageChain::Replay: return "replay";
      case StageChain::Timing: return "timing";
      case StageChain::kCount: break;
    }
    return "unknown";
}

namespace {

constexpr std::size_t kChains =
    static_cast<std::size_t>(StageChain::kCount);
constexpr std::size_t kStages =
    static_cast<std::size_t>(Stage::kCount);

thread_local int t_worker = -1;

/** Cached registry handles for one (chain, stage) on one thread. */
struct StageSlot
{
    Histogram *wall = nullptr;
    Counter *allocs = nullptr;
};

/**
 * Per-thread handle cache. Registry lookups take a mutex, so a
 * worker resolves each (chain, stage) name once per worker-id
 * assignment and then records lock-free. Invalidated when the
 * worker tag changes (the names embed the tag).
 */
struct StageSlots
{
    int worker = -2; // never matches an assigned id
    std::array<std::array<StageSlot, kStages>, kChains> slots{};
    std::array<Gauge *, kChains> arenaGauge{};
    std::array<std::size_t, kChains> arenaSeen{};
};

std::string
workerTag()
{
    return t_worker < 0 ? std::string("main")
                        : format("w%d", t_worker);
}

StageSlots &
threadSlots()
{
    thread_local StageSlots slots;
    if (slots.worker != t_worker) {
        slots = StageSlots{};
        slots.worker = t_worker;
    }
    return slots;
}

StageSlot &
resolveSlot(StageChain chain, Stage stage)
{
    StageSlots &all = threadSlots();
    StageSlot &slot =
        all.slots[static_cast<std::size_t>(chain)]
                 [static_cast<std::size_t>(stage)];
    if (!slot.wall) {
        const std::string base =
            format("stage.%s.%s.%s", stageChainName(chain),
                   stageName(stage), workerTag().c_str());
        auto &reg = Registry::instance();
        slot.wall = &reg.histogram(base + ".wall_seconds");
        slot.allocs = &reg.counter(base + ".alloc_count");
    }
    return slot;
}

} // namespace

void
setCurrentWorker(int id)
{
    t_worker = id < 0 ? -1 : id;
}

int
currentWorker()
{
    return t_worker;
}

StageScope::StageScope(StageChain chain, Stage stage)
{
    if (!metricsEnabled())
        return;
    _active = true;
    _chain = chain;
    _stage = stage;
    _allocs0 = support::threadAllocCount();
    _start = std::chrono::steady_clock::now();
}

StageScope::~StageScope()
{
    if (!_active)
        return;
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - _start;
    const std::uint64_t allocs =
        support::threadAllocCount() - _allocs0;
    StageSlot &slot = resolveSlot(_chain, _stage);
    slot.wall->record(dt.count());
    if (allocs > 0)
        slot.allocs->add(allocs);
}

void
noteArenaHighWater(StageChain chain, std::size_t bytes)
{
    if (!metricsEnabled())
        return;
    StageSlots &all = threadSlots();
    const auto ci = static_cast<std::size_t>(chain);
    if (bytes <= all.arenaSeen[ci])
        return;
    all.arenaSeen[ci] = bytes;
    if (!all.arenaGauge[ci]) {
        all.arenaGauge[ci] = &Registry::instance().gauge(
            format("stage.%s.arena_high_water_bytes.%s",
                   stageChainName(chain), workerTag().c_str()));
    }
    all.arenaGauge[ci]->set(static_cast<double>(bytes));
}

} // namespace savat::obs
