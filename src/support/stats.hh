/**
 * @file
 * Descriptive statistics used for campaign post-processing.
 */

#ifndef SAVAT_SUPPORT_STATS_HH
#define SAVAT_SUPPORT_STATS_HH

#include <cstddef>
#include <vector>

namespace savat {

/**
 * Single-pass accumulator for mean/variance (Welford's algorithm).
 *
 * Numerically stable even for long accumulations of near-equal
 * values, which is exactly the shape of the 10-repetition SAVAT sets.
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples seen so far. */
    std::size_t count() const { return _n; }

    /** Sample mean; 0 when empty. */
    double mean() const { return _mean; }

    /** Unbiased sample variance; 0 with fewer than two samples. */
    double variance() const;

    /** Unbiased sample standard deviation. */
    double stddev() const;

    /** Smallest sample seen; undefined when empty. */
    double min() const { return _min; }

    /** Largest sample seen; undefined when empty. */
    double max() const { return _max; }

    /**
     * Coefficient of variation (stddev / mean).
     *
     * The paper reports this as ~0.05 for its ten-measurement SAVAT
     * sets; we use the same statistic for the repeatability check.
     */
    double coefficientOfVariation() const;

  private:
    std::size_t _n = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/** Summary of a sample vector. */
struct Summary
{
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double median = 0.0;
};

/** Compute a Summary of the given samples (copy is sorted internally). */
Summary summarize(const std::vector<double> &xs);

/** Median of the samples; 0 when empty. */
double median(std::vector<double> xs);

/** Pearson linear correlation coefficient of two equal-length vectors. */
double pearson(const std::vector<double> &a, const std::vector<double> &b);

/**
 * Spearman rank correlation of two equal-length vectors.
 *
 * Used to compare the *ordering* of simulated SAVAT matrices with the
 * paper's published matrices: absolute zJ values depend on calibration
 * but the ranking of pairs should reproduce.
 */
double spearman(const std::vector<double> &a, const std::vector<double> &b);

/** Fractional ranks (average rank for ties), 1-based. */
std::vector<double> ranks(const std::vector<double> &xs);

} // namespace savat

#endif // SAVAT_SUPPORT_STATS_HH
