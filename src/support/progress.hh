/**
 * @file
 * Rate-limited progress reporting for long-running passes.
 *
 * Campaigns invoke their progress callback once per finished cell;
 * with parallel workers that floods stderr with one line per cell.
 * ProgressMeter wraps the (done, total) callback contract with a
 * wall-clock rate limit (~10 updates/sec by default), a percentage
 * and an ETA estimate, always printing the first and final updates.
 */

#ifndef SAVAT_SUPPORT_PROGRESS_HH
#define SAVAT_SUPPORT_PROGRESS_HH

#include <chrono>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>

namespace savat::obs {

/**
 * (done, total) progress callback shared by campaign, SVF and other
 * long-running passes. Under parallel execution it is invoked from
 * worker threads, serialized by the caller, with a monotonically
 * increasing done count.
 */
using ProgressFn = std::function<void(std::size_t, std::size_t)>;

/**
 * Extended progress state for callers that track cell health. done
 * counts *cells that reached a terminal state* — a retried cell is
 * still one cell, so retries never inflate the ETA denominator;
 * they are reported in their own counter. restored counts cells
 * resumed from a checkpoint (completed before this session).
 */
struct ProgressCounts
{
    std::size_t done = 0;
    std::size_t total = 0;
    std::size_t retried = 0;   //!< cells that needed >1 attempt
    std::size_t degraded = 0;  //!< cells kept with reduced quality
    std::size_t skipped = 0;   //!< cells abandoned after retries
    std::size_t restored = 0;  //!< cells restored from checkpoint
};

/** Health-aware progress callback (campaign engine). */
using ProgressSink = std::function<void(const ProgressCounts &)>;

/**
 * Throttled progress printer. Thread-safe: update() may be called
 * from any thread (campaign progress callbacks already serialize,
 * but the meter does not rely on it).
 *
 * The ETA is computed from the in-session completion rate: the
 * first update's done count becomes the baseline, so cells restored
 * from a checkpoint (instant) do not skew the estimate for the
 * cells that remain, and retried cells count once.
 */
class ProgressMeter
{
  public:
    /**
     * @param label   Prefix for every line (e.g. "campaign").
     * @param maxUpdatesPerSecond  Print rate cap; <= 0 disables
     *                throttling. First and final updates always
     *                print.
     * @param sink    Output stream; nullptr means stderr.
     */
    explicit ProgressMeter(std::string label,
                           double maxUpdatesPerSecond = 10.0,
                           std::ostream *sink = nullptr);

    /** Report progress; prints when the rate limit allows. */
    void update(std::size_t done, std::size_t total);

    /** Health-aware variant; the final line reports the nonzero
     * retry/degraded/skipped/restored counts. */
    void update(const ProgressCounts &counts);

    /** Adapter: a ProgressFn bound to this meter (which must
     * outlive the returned callback). */
    ProgressFn callback();

    /** Adapter: a ProgressSink bound to this meter. */
    ProgressSink sink();

  private:
    void emit(const std::string &line);

    std::string _label;
    std::chrono::steady_clock::duration _minInterval;
    std::ostream *_sink;

    std::mutex _mu;
    std::chrono::steady_clock::time_point _start;
    std::chrono::steady_clock::time_point _last;
    ProgressCounts _counts;
    std::size_t _baseDone = 0;
    bool _started = false;
    bool _finished = false;
};

} // namespace savat::obs

#endif // SAVAT_SUPPORT_PROGRESS_HH
