/**
 * @file
 * Rate-limited progress reporting for long-running passes.
 *
 * Campaigns invoke their progress callback once per finished cell;
 * with parallel workers that floods stderr with one line per cell.
 * ProgressMeter wraps the (done, total) callback contract with a
 * wall-clock rate limit (~10 updates/sec by default), a percentage
 * and an ETA estimate, always printing the first and final updates.
 */

#ifndef SAVAT_SUPPORT_PROGRESS_HH
#define SAVAT_SUPPORT_PROGRESS_HH

#include <chrono>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>

namespace savat::obs {

/**
 * (done, total) progress callback shared by campaign, SVF and other
 * long-running passes. Under parallel execution it is invoked from
 * worker threads, serialized by the caller, with a monotonically
 * increasing done count.
 */
using ProgressFn = std::function<void(std::size_t, std::size_t)>;

/**
 * Throttled progress printer. Thread-safe: update() may be called
 * from any thread (campaign progress callbacks already serialize,
 * but the meter does not rely on it).
 */
class ProgressMeter
{
  public:
    /**
     * @param label   Prefix for every line (e.g. "campaign").
     * @param maxUpdatesPerSecond  Print rate cap; <= 0 disables
     *                throttling. First and final updates always
     *                print.
     * @param sink    Output stream; nullptr means stderr.
     */
    explicit ProgressMeter(std::string label,
                           double maxUpdatesPerSecond = 10.0,
                           std::ostream *sink = nullptr);

    /** Report progress; prints when the rate limit allows. */
    void update(std::size_t done, std::size_t total);

    /** Adapter: a ProgressFn bound to this meter (which must
     * outlive the returned callback). */
    ProgressFn callback();

  private:
    void emit(const std::string &line);

    std::string _label;
    std::chrono::steady_clock::duration _minInterval;
    std::ostream *_sink;

    std::mutex _mu;
    std::chrono::steady_clock::time_point _start;
    std::chrono::steady_clock::time_point _last;
    bool _started = false;
    bool _finished = false;
};

} // namespace savat::obs

#endif // SAVAT_SUPPORT_PROGRESS_HH
