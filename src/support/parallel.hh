/**
 * @file
 * Deterministic data parallelism for the measurement campaigns.
 *
 * A campaign is embarrassingly parallel: every matrix cell owns an
 * independent, deterministically seeded RNG stream, so the work can
 * be sharded across threads with bit-identical results. This module
 * supplies the minimal machinery for that: a bounded team of
 * transient worker threads (no shared global pool, so nested use
 * can never deadlock), an index-sharded parallel-for with exception
 * propagation, and the job-count policy (explicit knob, SAVAT_JOBS
 * environment override, hardware concurrency fallback).
 *
 * jobs == 1 always short-circuits to the plain serial loop on the
 * calling thread; callers rely on that for the serial reference
 * path parallel runs are validated against.
 */

#ifndef SAVAT_SUPPORT_PARALLEL_HH
#define SAVAT_SUPPORT_PARALLEL_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace savat::support {

/** Hardware thread count (>= 1 even when unknown). */
std::size_t hardwareJobs();

/**
 * Worker index of the calling thread inside the runWorkers team it
 * was spawned for, or -1 on threads that are not spawned team
 * members (the main thread, including when it runs a single-worker
 * team inline). The logging layer uses this to tag messages emitted
 * from parallel regions.
 */
int currentWorker();

/**
 * Resolve a jobs knob: a positive value wins verbatim; 0 means
 * "auto" -- the SAVAT_JOBS environment variable when set to a
 * positive integer, otherwise hardwareJobs().
 */
std::size_t resolveJobs(std::size_t jobs);

/**
 * Run `worker(workerIndex)` on `workers` threads and join them all.
 *
 * workers <= 1 calls worker(0) inline on the calling thread. When a
 * worker throws, every thread is still joined and the first
 * exception (in completion order) is rethrown to the caller.
 * Workers own their thread-local state (each campaign worker owns
 * its meter); sharding is the caller's business.
 */
void runWorkers(std::size_t workers,
                const std::function<void(std::size_t)> &worker);

/**
 * Execute body(i) for every i in [0, n), sharded over
 * min(resolveJobs(jobs), n) workers pulling indices from a shared
 * atomic counter.
 *
 * An exception in any body cancels the remaining un-started
 * iterations and is rethrown to the caller after all workers have
 * joined. With one worker the loop runs serially in index order on
 * the calling thread. Safe to nest: every invocation uses its own
 * transient worker team.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &body,
                 std::size_t jobs = 0);

/** Run independent tasks concurrently (parallelFor over the list). */
void parallelInvoke(const std::vector<std::function<void()>> &tasks,
                    std::size_t jobs = 0);

} // namespace savat::support

#endif // SAVAT_SUPPORT_PARALLEL_HH
