/**
 * @file
 * Crash-safe structured run journal and the report layer over it.
 *
 * A campaign is a long-running measurement: hours of cells, retries,
 * fault injections and checkpoints. The journal records that run as
 * an append-only JSONL stream — one self-describing event object per
 * line, each line carrying its own CRC32 — so that after a crash,
 * an OOM kill, or a fault-plan `die`, every completed line is still
 * readable and the torn line (if any) is detectable. Event grammar
 * (schema `savat-run-journal-v1`):
 *
 *   run-start          campaign identity hash, machine id + config
 *                      digest, channel, events, reps, seed, jobs,
 *                      SIMD level, build (git describe), fault plan,
 *                      checkpoint/resume provenance
 *   cell-start         pair about to be measured
 *   cell-retry         one failed attempt (error, backoff)
 *   fault-injected     an injected measurement fault fired
 *   cell-done          terminal cell record: state, attempts, wall
 *                      and thread-CPU seconds, restored-from-
 *                      checkpoint flag, deterministic metric value
 *   checkpoint-written checkpoint ordinal and cell count
 *   worker-started     `--isolate procs`: supervisor spawned a worker
 *   worker-died        a worker process exited or was killed
 *   worker-restarted   a replacement worker took over the slot
 *   cell-quarantined   a cell exhausted its crash budget (Degraded)
 *   run-end            totals plus an embedded metrics snapshot
 *
 * Every event carries `event`, `seq` (per-journal sequence number),
 * `t` (seconds since journal open) and a trailing `crc` member:
 * CRC32 over the line text with the crc member spliced out.
 *
 * The journal also keeps an in-memory **flight recorder**: a ring of
 * the last kFlightRecorderSlots formatted lines. On SIGSEGV/SIGBUS/
 * SIGILL/SIGFPE/SIGABRT a handler dumps the ring to `<path>.crash`
 * using only async-signal-safe write(2) calls, then re-raises; the
 * fault injector's `die` path calls dumpCrash() synchronously before
 * _Exit. The dump shows exactly which cells were in flight.
 *
 * The report layer (aggregateJournals + writers) parses one or more
 * journals — e.g. the shards of a resumed run — and merges them into
 * a RunReport: per-cell records (last terminal record wins), stage
 * attribution from the embedded metrics snapshot, and run totals.
 *
 * Journal writes happen only on the cell boundary (under the
 * campaign's progress lock), never inside the rep loop, and never
 * touch an RNG stream: journaled campaigns stay bit-identical to
 * silent ones (proved by tests/test_obs_journal.cc).
 */

#ifndef SAVAT_SUPPORT_JOURNAL_HH
#define SAVAT_SUPPORT_JOURNAL_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "support/io.hh"
#include "support/json.hh"
#include "support/obs.hh"

namespace savat::obs {

/** Journal schema identifier written into every run-start event. */
inline constexpr const char *kJournalSchema = "savat-run-journal-v1";

/** Report schema identifier for `savat_cli report --format=json`. */
inline constexpr const char *kReportSchema = "savat-run-report-v1";

/** Lines retained by the in-memory flight recorder. */
inline constexpr std::size_t kFlightRecorderSlots = 64;

/** Build provenance (git describe at configure time). */
const char *buildDescribe();

/**
 * Append-only JSONL event writer. One instance per run; emit() is
 * thread-safe (events from worker threads serialize under an
 * internal mutex, though the campaign already emits under its
 * progress lock). Opening a journal installs the crash handlers.
 */
class Journal
{
  public:
    Journal() = default;
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /** Open (append) and arm the flight recorder. */
    bool open(const std::string &path,
              std::string *error = nullptr);

    bool isOpen() const { return _file.isOpen(); }
    const std::string &path() const { return _path; }

    /**
     * Append one event: `fields` (an object) is spliced after the
     * standard event/seq/t members, then the CRC is appended.
     */
    void emit(const std::string &type,
              support::json::Value fields);

    /**
     * Synchronously dump the flight recorder to `<path>.crash`
     * with a trailing reason line — the non-signal crash path
     * (fault-plan `die` calls this right before _Exit).
     */
    void dumpCrash(const std::string &reason);

    void close();

  private:
    std::mutex _mu;
    support::AppendFile _file;
    std::string _path;
    std::uint64_t _seq = 0;
    std::chrono::steady_clock::time_point _t0;
};

/** One parsed journal event. */
struct JournalEvent
{
    std::string type;
    std::uint64_t seq = 0;
    double t = 0.0;                //!< seconds since journal open
    support::json::Value fields;   //!< the full event object
};

/** Outcome of reading one journal file. */
struct JournalReadResult
{
    std::vector<JournalEvent> events;
    bool ok = false;
    bool truncatedTail = false; //!< final line torn by a crash
    std::string error;
};

/**
 * Parse a journal: every line must parse as JSON and pass its CRC.
 * A bad *final* line is reported as truncatedTail (expected after a
 * crash); a bad interior line fails the read.
 */
JournalReadResult readJournal(const std::string &path);

/** Terminal per-cell record aggregated from a journal. */
struct CellRecord
{
    std::string pair;  //!< "A|B" display name
    std::string a, b;
    std::string state; //!< ok|degraded|failed|skipped
    std::uint64_t attempts = 0;
    double backoffSeconds = 0.0;
    double wallSeconds = 0.0;
    double cpuSeconds = 0.0;
    double reps = 0.0;
    double savatZjMean = 0.0; //!< deterministic; equal across runs
    bool restored = false;
    std::string error;

    /** Branch-predictor traffic over the measured window. */
    double bpConditional = 0.0;
    double bpUnconditional = 0.0;
    double bpMispredicts = 0.0;

    /** Wrong-path speculation side effects (zero on in-order runs). */
    double specSquashes = 0.0;
    double specWrongPath = 0.0;
    double specTransientFills = 0.0;
    double specWindowExhausted = 0.0;
    double specFences = 0.0;

    /** Timing-channel probe readout (zero on analog channels). */
    double probeMeanA = 0.0;
    double probeMeanB = 0.0;

    /** Any speculation or probe activity worth reporting? */
    bool speculated() const
    {
        return specSquashes > 0.0 || specTransientFills > 0.0 ||
               probeMeanA != 0.0 || probeMeanB != 0.0;
    }
};

/**
 * One worker-lifecycle record from a process-isolated campaign
 * (`--isolate procs`): spawn, death, restart or quarantine, in
 * journal order.
 */
struct WorkerEventRecord
{
    double t = 0.0;     //!< seconds since journal open
    std::string type;   //!< worker-started|worker-died|...
    std::uint64_t slot = 0; //!< supervisor worker slot
    double pid = 0.0;       //!< worker pid (0 for cell events)
    std::string detail;     //!< exit status / quarantine reason
};

/** Aggregation of one or more journals of the same campaign. */
struct RunReport
{
    std::string identity;      //!< campaign identity hash
    std::string machine;
    std::string machineDigest;
    std::string channel;
    std::string simd;
    std::string build;
    std::string faultPlan;
    double seed = 0.0;
    double jobs = 0.0;
    double reps = 0.0;
    std::size_t journalCount = 0;
    std::size_t eventCount = 0;
    std::size_t runStarts = 0;
    std::size_t runEnds = 0;
    bool truncatedTail = false;
    double wallSeconds = 0.0; //!< max run-end wall over journals
    std::size_t retries = 0;
    std::size_t faultsInjected = 0;
    std::size_t checkpointsWritten = 0;

    /** Process-isolation lifecycle (zero in thread-mode runs). */
    std::size_t workerStarts = 0;
    std::size_t workerDeaths = 0;
    std::size_t workerRestarts = 0;
    std::size_t quarantinedCells = 0;
    std::vector<WorkerEventRecord> workerEvents;

    std::map<std::string, CellRecord> cells; //!< keyed by pair
    MetricsSnapshot metrics; //!< merged run-end snapshots
};

/**
 * Read and merge `paths` into one report. Journals of different
 * campaign identities are refused (they are not shards of one run).
 * Returns false with `error` on unreadable/corrupt journals.
 */
bool aggregateJournals(const std::vector<std::string> &paths,
                       RunReport &out,
                       std::string *error = nullptr);

/**
 * Convert a metrics snapshot to a JSON value — the campaign embeds
 * one into the run-end event; aggregateJournals parses it back.
 */
support::json::Value
metricsSnapshotToJson(const MetricsSnapshot &snap);

/** Human-readable report: run summary + attribution tables. */
void writeReportTables(std::ostream &os, const RunReport &report);

/** Machine-readable report (schema savat-run-report-v1). */
void writeReportJson(std::ostream &os, const RunReport &report);

} // namespace savat::obs

#endif // SAVAT_SUPPORT_JOURNAL_HH
