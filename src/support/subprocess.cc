#include "subprocess.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

namespace savat::support {

Pipe::Pipe(Pipe &&other) noexcept
    : _read(other._read), _write(other._write)
{
    other._read = -1;
    other._write = -1;
}

Pipe &Pipe::operator=(Pipe &&other) noexcept
{
    if (this != &other) {
        closeBoth();
        _read = other._read;
        _write = other._write;
        other._read = -1;
        other._write = -1;
    }
    return *this;
}

bool Pipe::open()
{
    closeBoth();
    int fds[2] = {-1, -1};
#ifdef __linux__
    if (::pipe2(fds, O_CLOEXEC) != 0)
        return false;
#else
    if (::pipe(fds) != 0)
        return false;
    ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
#endif
    _read = fds[0];
    _write = fds[1];
    return true;
}

void Pipe::closeRead()
{
    if (_read >= 0) {
        ::close(_read);
        _read = -1;
    }
}

void Pipe::closeWrite()
{
    if (_write >= 0) {
        ::close(_write);
        _write = -1;
    }
}

void Pipe::closeBoth()
{
    closeRead();
    closeWrite();
}

int Pipe::releaseRead()
{
    const int fd = _read;
    _read = -1;
    return fd;
}

int Pipe::releaseWrite()
{
    const int fd = _write;
    _write = -1;
    return fd;
}

std::string ExitStatus::describe() const
{
    if (exited)
        return "exit " + std::to_string(code);
    if (signaled) {
        std::string s = "signal " + std::to_string(signal);
        if (const char *name = ::strsignal(signal)) {
            s += " (";
            s += name;
            s += ")";
        }
        return s;
    }
    return "unknown";
}

pid_t forkProcess(const std::function<int()> &childMain)
{
    const pid_t pid = ::fork();
    if (pid == 0) {
        // _Exit skips atexit handlers: the child inherited the
        // parent's registered metrics/trace dumps and must not run
        // them against copy-on-write state.
        ::_Exit(childMain());
    }
    return pid;
}

bool waitProcess(pid_t pid, ExitStatus &status, bool block)
{
    int raw = 0;
    for (;;) {
        const pid_t r = ::waitpid(pid, &raw, block ? 0 : WNOHANG);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            // ECHILD: already reaped elsewhere; report as unknown.
            status = ExitStatus{};
            return true;
        }
        if (r == 0)
            return false;
        break;
    }
    status = ExitStatus{};
    if (WIFEXITED(raw)) {
        status.exited = true;
        status.code = WEXITSTATUS(raw);
    } else if (WIFSIGNALED(raw)) {
        status.signaled = true;
        status.signal = WTERMSIG(raw);
    }
    return true;
}

void resetChildSignals()
{
    const int signals[] = {SIGSEGV, SIGABRT, SIGBUS,  SIGFPE, SIGILL,
                           SIGINT,  SIGTERM, SIGPIPE, SIGHUP, SIGQUIT};
    for (const int sig : signals)
        ::signal(sig, SIG_DFL);
    sigset_t none;
    sigemptyset(&none);
    ::sigprocmask(SIG_SETMASK, &none, nullptr);
}

void ignoreSigpipe()
{
    ::signal(SIGPIPE, SIG_IGN);
}

void dieWithParent()
{
#ifdef __linux__
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    // If the parent already died between fork and prctl, leave now.
    if (::getppid() == 1)
        ::_Exit(1);
#endif
}

} // namespace savat::support
