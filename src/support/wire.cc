#include "wire.hh"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "crc32.hh"

namespace savat::support {
namespace {

constexpr std::uint32_t kMagic = 0x31575653u; // "SVW1" little-endian

constexpr std::size_t kHeaderBytes = 4 + 1 + 4 + 4;

void appendU32(std::string &out, std::uint32_t v)
{
    out.push_back(static_cast<char>(v & 0xFFu));
    out.push_back(static_cast<char>((v >> 8) & 0xFFu));
    out.push_back(static_cast<char>((v >> 16) & 0xFFu));
    out.push_back(static_cast<char>((v >> 24) & 0xFFu));
}

std::uint32_t peekU32(const char *p)
{
    const auto *u = reinterpret_cast<const unsigned char *>(p);
    return static_cast<std::uint32_t>(u[0]) |
           (static_cast<std::uint32_t>(u[1]) << 8) |
           (static_cast<std::uint32_t>(u[2]) << 16) |
           (static_cast<std::uint32_t>(u[3]) << 24);
}

bool validFrameType(std::uint8_t raw)
{
    return raw >= static_cast<std::uint8_t>(FrameType::Measure) &&
           raw <= static_cast<std::uint8_t>(FrameType::CellDone);
}

/// CRC over the mutable header fields plus the payload, so a
/// corrupted type or length is caught even when the payload is empty.
std::uint32_t frameCrc(FrameType type, const std::string &payload)
{
    std::string head;
    head.push_back(static_cast<char>(type));
    appendU32(head, static_cast<std::uint32_t>(payload.size()));
    std::uint32_t crc = crc32(head.data(), head.size());
    return crc32(payload.data(), payload.size(), crc);
}

} // namespace

const char *frameTypeName(FrameType type)
{
    switch (type) {
    case FrameType::Measure:
        return "measure";
    case FrameType::Shutdown:
        return "shutdown";
    case FrameType::Heartbeat:
        return "heartbeat";
    case FrameType::CellRetry:
        return "cell-retry";
    case FrameType::CellFault:
        return "cell-fault";
    case FrameType::CellDone:
        return "cell-done";
    }
    return "unknown";
}

void appendU64(std::string &out, std::uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<char>((v >> shift) & 0xFFu));
}

void appendF64(std::string &out, double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    appendU64(out, bits);
}

bool readU64(const std::string &payload, std::size_t &offset,
             std::uint64_t &out)
{
    if (offset + 8 > payload.size())
        return false;
    const auto *u =
        reinterpret_cast<const unsigned char *>(payload.data() + offset);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | u[i];
    out = v;
    offset += 8;
    return true;
}

bool readF64(const std::string &payload, std::size_t &offset,
             double &out)
{
    std::uint64_t bits = 0;
    if (!readU64(payload, offset, bits))
        return false;
    std::memcpy(&out, &bits, sizeof(out));
    return true;
}

std::string encodeFrame(const Frame &frame)
{
    std::string out;
    out.reserve(kHeaderBytes + frame.payload.size());
    appendU32(out, kMagic);
    out.push_back(static_cast<char>(frame.type));
    appendU32(out, static_cast<std::uint32_t>(frame.payload.size()));
    appendU32(out, frameCrc(frame.type, frame.payload));
    out += frame.payload;
    return out;
}

bool writeFrame(int fd, const Frame &frame)
{
    const std::string bytes = encodeFrame(frame);
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

void WireReader::feed(const char *data, std::size_t size)
{
    // Compact once the consumed prefix dominates, so a long-lived
    // reader does not grow without bound.
    if (_pos > 4096 && _pos * 2 > _buf.size()) {
        _buf.erase(0, _pos);
        _pos = 0;
    }
    _buf.append(data, size);
}

WireStatus WireReader::next(Frame &out, std::string *error)
{
    if (_corrupt) {
        if (error)
            *error = _corruptError;
        return WireStatus::Corrupt;
    }
    const std::size_t avail = _buf.size() - _pos;
    if (avail < kHeaderBytes)
        return WireStatus::NeedMore;
    const char *head = _buf.data() + _pos;
    const std::uint32_t magic = peekU32(head);
    const std::uint8_t rawType = static_cast<std::uint8_t>(head[4]);
    const std::uint32_t length = peekU32(head + 5);
    const std::uint32_t crc = peekU32(head + 9);
    if (magic != kMagic) {
        _corrupt = true;
        _corruptError = "bad frame magic";
    } else if (!validFrameType(rawType)) {
        _corrupt = true;
        _corruptError = "unknown frame type " + std::to_string(rawType);
    } else if (length > kMaxFramePayload) {
        _corrupt = true;
        _corruptError =
            "frame length " + std::to_string(length) + " exceeds cap";
    }
    if (_corrupt) {
        if (error)
            *error = _corruptError;
        return WireStatus::Corrupt;
    }
    if (avail < kHeaderBytes + length)
        return WireStatus::NeedMore;
    const FrameType type = static_cast<FrameType>(rawType);
    std::string payload(_buf.data() + _pos + kHeaderBytes, length);
    if (frameCrc(type, payload) != crc) {
        _corrupt = true;
        _corruptError = std::string("frame crc mismatch (") +
                        frameTypeName(type) + ")";
        if (error)
            *error = _corruptError;
        return WireStatus::Corrupt;
    }
    _pos += kHeaderBytes + length;
    out.type = type;
    out.payload = std::move(payload);
    return WireStatus::Frame;
}

bool readFrameBlocking(int fd, WireReader &reader, Frame &out,
                       std::string *error)
{
    for (;;) {
        const WireStatus status = reader.next(out, error);
        if (status == WireStatus::Frame)
            return true;
        if (status == WireStatus::Corrupt)
            return false;
        char buf[4096];
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = std::string("read: ") + std::strerror(errno);
            return false;
        }
        if (n == 0) {
            if (error)
                *error = reader.pendingBytes() > 0
                             ? "eof mid-frame"
                             : "eof";
            return false;
        }
        reader.feed(buf, static_cast<std::size_t>(n));
    }
}

} // namespace savat::support
