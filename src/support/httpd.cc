#include "support/httpd.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/strings.hh"

namespace savat::support {

HttpServer::~HttpServer()
{
    stop();
}

bool
HttpServer::start(std::uint16_t port, Handler handler,
                  std::string *error)
{
    stop();
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("socket: ") +
                     std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        if (error)
            *error = format("bind 127.0.0.1:%u: %s",
                            static_cast<unsigned>(port),
                            std::strerror(errno));
        ::close(fd);
        return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0) {
        if (error)
            *error = std::string("getsockname: ") +
                     std::strerror(errno);
        ::close(fd);
        return false;
    }
    if (::listen(fd, 16) != 0) {
        if (error)
            *error = std::string("listen: ") +
                     std::strerror(errno);
        ::close(fd);
        return false;
    }
    _handler = std::move(handler);
    _port = static_cast<int>(ntohs(addr.sin_port));
    _fd.store(fd, std::memory_order_release);
    return true;
}

bool
HttpServer::serveOne()
{
    const int fd = _fd.load(std::memory_order_acquire);
    if (fd < 0)
        return false;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
        // stop() closed the listener out from under accept(), or a
        // transient accept failure; retry only on the latter.
        return errno == EINTR &&
               _fd.load(std::memory_order_acquire) >= 0;
    }

    // Read until the end of the request headers (bounded: this is
    // a GET-only metrics endpoint, not a general server).
    std::string request;
    char buf[2048];
    while (request.size() < 16 * 1024 &&
           request.find("\r\n\r\n") == std::string::npos) {
        const ssize_t n = ::read(conn, buf, sizeof(buf));
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            break;
        }
        request.append(buf, static_cast<std::size_t>(n));
    }

    std::string status = "405 Method Not Allowed";
    std::string contentType = "text/plain; charset=utf-8";
    std::string body = "method not allowed\n";
    if (request.rfind("GET ", 0) == 0) {
        const std::size_t pathEnd = request.find(' ', 4);
        std::string path = pathEnd == std::string::npos
                               ? std::string("/")
                               : request.substr(4, pathEnd - 4);
        const std::size_t query = path.find('?');
        if (query != std::string::npos)
            path.resize(query);
        std::string okBody, okType;
        if (_handler && _handler(path, okType, okBody)) {
            status = "200 OK";
            contentType = okType;
            body = std::move(okBody);
        } else {
            status = "404 Not Found";
            body = "not found\n";
        }
    }

    std::string response =
        "HTTP/1.1 " + status + "\r\n" +
        "Content-Type: " + contentType + "\r\n" +
        format("Content-Length: %zu\r\n", body.size()) +
        "Connection: close\r\n\r\n" + body;
    std::size_t off = 0;
    while (off < response.size()) {
        const ssize_t n = ::write(conn, response.data() + off,
                                  response.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        off += static_cast<std::size_t>(n);
    }
    ::close(conn);
    return true;
}

void
HttpServer::serve()
{
    while (serveOne()) {
    }
}

void
HttpServer::stop()
{
    const int fd = _fd.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
}

} // namespace savat::support
