/**
 * @file
 * Thin fork/pipe/waitpid primitives for the process-isolated worker
 * pool (savat::service). Kept deliberately small: the pool owns all
 * policy (heartbeats, deadlines, restarts); this layer only makes
 * the POSIX plumbing hard to misuse — children always leave via
 * _Exit so they never run the parent's atexit hooks (metrics dumps,
 * stream flushes) against inherited state.
 */

#ifndef SAVAT_SUPPORT_SUBPROCESS_HH
#define SAVAT_SUPPORT_SUBPROCESS_HH

#include <functional>
#include <string>

#include <sys/types.h>

namespace savat::support {

/**
 * An anonymous pipe; both ends start owned. close*() is idempotent
 * and the destructor releases whatever is still open.
 */
class Pipe
{
  public:
    Pipe() = default;
    ~Pipe() { closeBoth(); }
    Pipe(const Pipe &) = delete;
    Pipe &operator=(const Pipe &) = delete;
    Pipe(Pipe &&other) noexcept;
    Pipe &operator=(Pipe &&other) noexcept;

    /** Create the pipe (close-on-exec). False + errno on failure. */
    bool open();

    int readFd() const { return _read; }
    int writeFd() const { return _write; }

    void closeRead();
    void closeWrite();
    void closeBoth();

    /** Drop ownership of one end (e.g. after handing it to a slot
     * table that outlives this object); returns the fd. */
    int releaseRead();
    int releaseWrite();

  private:
    int _read = -1;
    int _write = -1;
};

/** Decoded wait(2) status with a human-readable crash description. */
struct ExitStatus
{
    bool exited = false;   //!< normal termination (code valid)
    int code = 0;          //!< exit code when `exited`
    bool signaled = false; //!< killed by signal (signal valid)
    int signal = 0;        //!< terminating signal when `signaled`

    /** "exit 3", "signal 9 (Killed)", or "unknown". */
    std::string describe() const;
};

/**
 * Fork and run `childMain` in the child; the child terminates via
 * _Exit(childMain()) and never returns to the caller. Returns the
 * child pid in the parent, or -1 with errno on fork failure.
 */
pid_t forkProcess(const std::function<int()> &childMain);

/**
 * Reap `pid`. With block=false uses WNOHANG and returns false while
 * the child is still running; true fills `status` once reaped.
 */
bool waitProcess(pid_t pid, ExitStatus &status, bool block);

/**
 * Restore default dispositions for the signals the parent may have
 * customized (crash handlers, SIGINT) and unblock everything — call
 * first thing in a forked child so inherited handlers never run
 * against the parent's (now copy-on-write) state.
 */
void resetChildSignals();

/**
 * Ignore SIGPIPE process-wide so a write to a dead worker surfaces
 * as EPIPE from write(2) instead of killing the supervisor.
 */
void ignoreSigpipe();

/**
 * Linux only: arrange for the calling process to receive SIGKILL
 * when its parent dies, so orphaned workers cannot outlive a
 * crashed supervisor. No-op elsewhere.
 */
void dieWithParent();

} // namespace savat::support

#endif // SAVAT_SUPPORT_SUBPROCESS_HH
