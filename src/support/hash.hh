/**
 * @file
 * Hash helpers for the unordered containers on the hot paths.
 */

#ifndef SAVAT_SUPPORT_HASH_HH
#define SAVAT_SUPPORT_HASH_HH

#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>

namespace savat::support {

/** Boost-style combiner: mixes v into seed. */
inline std::size_t
hashCombine(std::size_t seed, std::size_t v)
{
    return seed ^ (v + 0x9E3779B97F4A7C15ull + (seed << 6) +
                   (seed >> 2));
}

/**
 * Hash for std::pair keys (the standard library provides none), so
 * pair-keyed caches can use std::unordered_map instead of the
 * log-time std::map. Enums hash through their underlying integer.
 */
struct PairHash
{
    template <class A, class B>
    std::size_t
    operator()(const std::pair<A, B> &p) const
    {
        return hashCombine(hashOne(p.first), hashOne(p.second));
    }

  private:
    template <class T>
    static std::size_t
    hashOne(const T &v)
    {
        if constexpr (std::is_enum_v<T>) {
            using U = std::underlying_type_t<T>;
            return std::hash<U>()(static_cast<U>(v));
        } else {
            return std::hash<T>()(v);
        }
    }
};

} // namespace savat::support

#endif // SAVAT_SUPPORT_HASH_HH
