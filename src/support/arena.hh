/**
 * @file
 * Monotonic bump arena with a reusable high-water-mark pool.
 *
 * The measurement rep loop allocates the same set of scratch buffers
 * (synthesis bins, staged RNG draws, FFT workspaces) thousands of
 * times per campaign cell. A per-rep Arena turns all of those into
 * pointer bumps: allocation is monotonic within a rep, and reset()
 * between reps recycles the arena's pages instead of returning them
 * to the heap. After the first rep has established the high-water
 * mark the arena never touches the global allocator again, which is
 * what lets tests/test_alloc.cc pin the steady-state rep loop at
 * zero heap allocations.
 *
 * Only trivially-destructible payloads are supported (the arena
 * never runs destructors); alloc<T>() enforces this at compile time.
 */

#ifndef SAVAT_SUPPORT_ARENA_HH
#define SAVAT_SUPPORT_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace savat::support {

class Arena
{
  public:
    /** Default size of the first page (grows geometrically). */
    static constexpr std::size_t kDefaultPageBytes = 64 * 1024;

    explicit Arena(std::size_t firstPageBytes = kDefaultPageBytes);
    ~Arena();

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Raw bump allocation; align must be a power of two. */
    void *allocate(std::size_t bytes, std::size_t align);

    /** Typed allocation of n default-initialized (raw) elements. */
    template <typename T>
    T *
    alloc(std::size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "Arena never runs destructors");
        return static_cast<T *>(allocate(n * sizeof(T), alignof(T)));
    }

    /**
     * Recycle every page for the next rep. Pages are kept, so once
     * the arena has grown to the rep's high-water mark subsequent
     * reps allocate nothing from the heap. When the rep needed more
     * than one page the pages are coalesced into a single page of
     * the combined size, so the steady state is one page and one
     * bump pointer.
     */
    void reset();

    /** Bytes handed out since the last reset(). */
    std::size_t used() const { return _used; }

    /** Total bytes of pages owned (the high-water capacity). */
    std::size_t capacity() const { return _capacity; }

  private:
    struct Page {
        Page *next;
        std::size_t size; // payload bytes following the header
    };

    Page *newPage(std::size_t payloadBytes);

    Page *_head = nullptr;      // current page being bumped
    std::uint8_t *_cursor = nullptr;
    std::uint8_t *_limit = nullptr;
    std::size_t _used = 0;
    std::size_t _capacity = 0;
    std::size_t _firstPageBytes;
};

} // namespace savat::support

#endif // SAVAT_SUPPORT_ARENA_HH
