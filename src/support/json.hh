/**
 * @file
 * Minimal JSON document model for the observability tooling.
 *
 * The run journal (support/journal.hh) streams one JSON object per
 * line and the report layer has to read those lines back — including
 * journals written by older builds — without growing a third-party
 * dependency. This module supplies just enough: an ordered object
 * model (insertion order is preserved so journal lines round-trip
 * byte-for-byte minus whitespace), a recursive-descent parser, and a
 * compact single-line serializer.
 *
 * Numbers are stored as doubles (plenty for counters, timings and
 * sequence numbers; 64-bit hashes travel as hex strings). This is a
 * tool-path module — nothing on the measurement hot path parses or
 * prints JSON.
 */

#ifndef SAVAT_SUPPORT_JSON_HH
#define SAVAT_SUPPORT_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace savat::support::json {

/** One JSON value; objects keep member insertion order. */
class Value
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    using Member = std::pair<std::string, Value>;

    Value() = default;
    Value(bool b) : _kind(Kind::Bool), _bool(b) {}
    Value(double v) : _kind(Kind::Number), _number(v) {}
    Value(int v) : Value(static_cast<double>(v)) {}
    Value(std::size_t v) : Value(static_cast<double>(v)) {}
    Value(const char *s) : _kind(Kind::String), _string(s) {}
    Value(std::string s) : _kind(Kind::String), _string(std::move(s))
    {
    }

    static Value array();
    static Value object();

    Kind kind() const { return _kind; }
    bool isNull() const { return _kind == Kind::Null; }
    bool isBool() const { return _kind == Kind::Bool; }
    bool isNumber() const { return _kind == Kind::Number; }
    bool isString() const { return _kind == Kind::String; }
    bool isArray() const { return _kind == Kind::Array; }
    bool isObject() const { return _kind == Kind::Object; }

    /** Typed accessors; defaults cover the wrong-kind case. */
    bool asBool(bool fallback = false) const;
    double asNumber(double fallback = 0.0) const;
    const std::string &asString() const;

    /** Array elements (empty for non-arrays). */
    const std::vector<Value> &elements() const { return _elements; }
    void push(Value v);

    /** Object members in insertion order (empty for non-objects). */
    const std::vector<Member> &members() const { return _members; }

    /** Append a member (no duplicate check; journals never repeat). */
    void set(std::string key, Value v);

    /** First member with this key, or nullptr. */
    const Value *find(const std::string &key) const;

    /** Member lookup with typed fallbacks for absent keys. */
    double numberOr(const std::string &key, double fallback) const;
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;
    bool boolOr(const std::string &key, bool fallback) const;

    /** Compact single-line serialization (no trailing newline). */
    std::string serialize() const;

  private:
    Kind _kind = Kind::Null;
    bool _bool = false;
    double _number = 0.0;
    std::string _string;
    std::vector<Value> _elements;
    std::vector<Member> _members;
};

/** Outcome of parsing one document. */
struct ParseResult
{
    Value value;
    bool ok = false;
    std::string error; //!< includes the byte offset of the failure
};

/** Parse one JSON document (trailing whitespace allowed). */
ParseResult parse(const std::string &text);

/** Escape a string for embedding between JSON quotes. */
std::string escape(const std::string &s);

/** JSON-safe number text: finite via %.17g, NaN/Inf as 0. */
std::string numberText(double v);

} // namespace savat::support::json

#endif // SAVAT_SUPPORT_JSON_HH
