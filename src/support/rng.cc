#include "support/rng.hh"

#include <cmath>

#include "support/logging.hh"

namespace savat {

namespace {

/** splitmix64 step, used for seeding. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &w : _state)
        w = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
    const std::uint64_t t = _state[1] << 17;

    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    SAVAT_ASSERT(n > 0, "uniformInt needs a positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = n * ((~0ull) / n);
    std::uint64_t x;
    do {
        x = next();
    } while (x >= limit);
    return x % n;
}

double
Rng::gaussian()
{
    if (_hasSpare) {
        _hasSpare = false;
        return _spare;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    _spare = mag * std::sin(2.0 * M_PI * u2);
    _hasSpare = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xD1B54A32D192ED03ull);
}

} // namespace savat
