/**
 * @file
 * Crash-safe file output.
 *
 * Long campaigns write artifacts a crash must never corrupt:
 * checkpoints, trace recordings, CSV/fixture dumps, telemetry
 * exports. writeFileAtomically() routes them all through the same
 * temp-file + rename idiom — the content is streamed into a
 * sibling temporary file and atomically renamed over the target, so
 * a reader (or a resumed campaign) only ever sees either the old
 * complete file or the new complete file, never a torn write.
 */

#ifndef SAVAT_SUPPORT_IO_HH
#define SAVAT_SUPPORT_IO_HH

#include <functional>
#include <ostream>
#include <string>

namespace savat::support {

/**
 * Write `content` to `path` via a temporary file in the same
 * directory plus an atomic rename. On failure the temporary file is
 * removed, the target is left untouched, and (when `error` is
 * non-null) a description is stored.
 */
bool writeFileAtomically(const std::string &path,
                         const std::string &content,
                         std::string *error = nullptr);

/**
 * Streaming variant: `writer` produces the content into an ostream
 * backed by the temporary file.
 */
bool writeFileAtomically(
    const std::string &path,
    const std::function<void(std::ostream &)> &writer,
    std::string *error = nullptr);

/**
 * Slurp a file into a string. Returns false (with `error` filled)
 * when the file cannot be opened or read.
 */
bool readFileToString(const std::string &path, std::string &out,
                      std::string *error = nullptr);

/**
 * Append-only line writer over a raw file descriptor, for streaming
 * logs (the run journal) where atomic-rename semantics are wrong:
 * the file must grow line by line and survive a crash mid-run with
 * every completed line intact. Opens with O_APPEND and writes each
 * line with a single ::write() loop plus trailing newline, so lines
 * from one writer never interleave mid-line and a torn final line
 * can only be the one in flight at the moment of death.
 */
class AppendFile
{
  public:
    AppendFile() = default;
    ~AppendFile();

    AppendFile(const AppendFile &) = delete;
    AppendFile &operator=(const AppendFile &) = delete;

    /** Open (create 0644, append). False + `error` on failure. */
    bool open(const std::string &path,
              std::string *error = nullptr);

    /** Write `line` plus '\n'. False once any write fails. */
    bool writeLine(const std::string &line);

    bool isOpen() const { return _fd >= 0; }

    /** Raw descriptor (-1 when closed); async-signal-safe to use. */
    int fd() const { return _fd; }

    void close();

  private:
    int _fd = -1;
};

} // namespace savat::support

#endif // SAVAT_SUPPORT_IO_HH
