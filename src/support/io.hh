/**
 * @file
 * Crash-safe file output.
 *
 * Long campaigns write artifacts a crash must never corrupt:
 * checkpoints, trace recordings, CSV/fixture dumps, telemetry
 * exports. writeFileAtomically() routes them all through the same
 * temp-file + rename idiom — the content is streamed into a
 * sibling temporary file and atomically renamed over the target, so
 * a reader (or a resumed campaign) only ever sees either the old
 * complete file or the new complete file, never a torn write.
 */

#ifndef SAVAT_SUPPORT_IO_HH
#define SAVAT_SUPPORT_IO_HH

#include <functional>
#include <ostream>
#include <string>

namespace savat::support {

/**
 * Write `content` to `path` via a temporary file in the same
 * directory plus an atomic rename. On failure the temporary file is
 * removed, the target is left untouched, and (when `error` is
 * non-null) a description is stored.
 */
bool writeFileAtomically(const std::string &path,
                         const std::string &content,
                         std::string *error = nullptr);

/**
 * Streaming variant: `writer` produces the content into an ostream
 * backed by the temporary file.
 */
bool writeFileAtomically(
    const std::string &path,
    const std::function<void(std::ostream &)> &writer,
    std::string *error = nullptr);

/**
 * Slurp a file into a string. Returns false (with `error` filled)
 * when the file cannot be opened or read.
 */
bool readFileToString(const std::string &path, std::string &out,
                      std::string *error = nullptr);

} // namespace savat::support

#endif // SAVAT_SUPPORT_IO_HH
