/**
 * @file
 * Small string helpers shared by the assembler and report writers.
 */

#ifndef SAVAT_SUPPORT_STRINGS_HH
#define SAVAT_SUPPORT_STRINGS_HH

#include <string>
#include <string_view>
#include <vector>

namespace savat {

/** Strip leading and trailing whitespace. */
std::string trim(std::string_view s);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/** Split on a single character delimiter; keeps empty fields. */
std::vector<std::string> split(std::string_view s, char delim);

/** Split on arbitrary whitespace runs; drops empty fields. */
std::vector<std::string> splitWhitespace(std::string_view s);

/** True if s starts with the given prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** True if s ends with the given suffix. */
bool endsWith(std::string_view s, std::string_view suffix);

/**
 * Parse a signed integer literal, accepting decimal and 0x-prefixed
 * hexadecimal. Returns false on malformed input.
 */
bool parseInt(std::string_view s, long long &out);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace savat

#endif // SAVAT_SUPPORT_STRINGS_HH
