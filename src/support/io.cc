#include "support/io.hh"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/strings.hh"

namespace savat::support {

namespace {

/**
 * Temporary sibling of `path`, unique per process so concurrent
 * writers of different targets never collide. Same directory as the
 * target, so the rename stays within one filesystem.
 */
std::string
tempPathFor(const std::string &path)
{
    static const int pid = []() {
        return static_cast<int>(::getpid());
    }();
    return path + format(".tmp.%d", pid);
}

} // namespace

bool
writeFileAtomically(const std::string &path,
                    const std::function<void(std::ostream &)> &writer,
                    std::string *error)
{
    const std::string tmp = tempPathFor(path);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            if (error)
                *error = "cannot open " + tmp + " for writing";
            return false;
        }
        writer(out);
        out.flush();
        if (!out) {
            if (error)
                *error = "write to " + tmp + " failed";
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (error)
            *error = "cannot rename " + tmp + " to " + path;
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
writeFileAtomically(const std::string &path, const std::string &content,
                    std::string *error)
{
    return writeFileAtomically(
        path, [&](std::ostream &os) { os.write(content.data(),
                                               static_cast<std::streamsize>(
                                                   content.size())); },
        error);
}

bool
readFileToString(const std::string &path, std::string &out,
                 std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    std::ostringstream oss;
    oss << in.rdbuf();
    if (in.bad()) {
        if (error)
            *error = "read from " + path + " failed";
        return false;
    }
    out = oss.str();
    return true;
}

} // namespace savat::support
