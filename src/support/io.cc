#include "support/io.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "support/strings.hh"

namespace savat::support {

namespace {

/**
 * Temporary sibling of `path`, unique per process so concurrent
 * writers of different targets never collide. Same directory as the
 * target, so the rename stays within one filesystem.
 */
std::string
tempPathFor(const std::string &path)
{
    static const int pid = []() {
        return static_cast<int>(::getpid());
    }();
    return path + format(".tmp.%d", pid);
}

} // namespace

bool
writeFileAtomically(const std::string &path,
                    const std::function<void(std::ostream &)> &writer,
                    std::string *error)
{
    const std::string tmp = tempPathFor(path);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            if (error)
                *error = "cannot open " + tmp + " for writing";
            return false;
        }
        writer(out);
        out.flush();
        if (!out) {
            if (error)
                *error = "write to " + tmp + " failed";
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (error)
            *error = "cannot rename " + tmp + " to " + path;
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
writeFileAtomically(const std::string &path, const std::string &content,
                    std::string *error)
{
    return writeFileAtomically(
        path, [&](std::ostream &os) { os.write(content.data(),
                                               static_cast<std::streamsize>(
                                                   content.size())); },
        error);
}

bool
readFileToString(const std::string &path, std::string &out,
                 std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    std::ostringstream oss;
    oss << in.rdbuf();
    if (in.bad()) {
        if (error)
            *error = "read from " + path + " failed";
        return false;
    }
    out = oss.str();
    return true;
}

AppendFile::~AppendFile()
{
    close();
}

bool
AppendFile::open(const std::string &path, std::string *error)
{
    close();
    _fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (_fd < 0) {
        if (error)
            *error = "cannot open " + path + ": " +
                     std::strerror(errno);
        return false;
    }
    return true;
}

bool
AppendFile::writeLine(const std::string &line)
{
    if (_fd < 0)
        return false;
    std::string buf = line;
    buf += '\n';
    std::size_t off = 0;
    while (off < buf.size()) {
        const ssize_t n =
            ::write(_fd, buf.data() + off, buf.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

void
AppendFile::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
}

} // namespace savat::support
