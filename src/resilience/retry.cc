#include "resilience/retry.hh"

#include <cmath>
#include <exception>

#include "support/logging.hh"
#include "support/obs.hh"
#include "support/rng.hh"
#include "support/strings.hh"

namespace savat::resilience {

double
retryBackoffSeconds(const RetryPolicy &policy, std::size_t pair,
                    std::size_t attempt)
{
    if (attempt == 0)
        return 0.0;
    double base = policy.backoffSeconds;
    for (std::size_t i = 1; i < attempt; ++i)
        base *= policy.multiplier;
    // The jitter stream is keyed on (pair, attempt) alone, so the
    // schedule is identical whichever worker thread runs the retry.
    Rng rng(policy.seed ^
            (0x9E3779B97F4A7C15ull * (pair * 131 + attempt + 1)));
    const double jitter =
        rng.uniform(-policy.jitterFraction, policy.jitterFraction);
    return base * (1.0 + jitter);
}

double
worstCaseBackoffSeconds(const RetryPolicy &policy)
{
    double total = 0.0;
    double base = policy.backoffSeconds;
    for (std::size_t a = 1; a + 1 <= policy.maxAttempts; ++a) {
        total += base * (1.0 + policy.jitterFraction);
        base *= policy.multiplier;
    }
    return total;
}

bool
allFinite(const pipeline::PairSimulation &sim)
{
    if (!std::isfinite(sim.actualFrequency.inHz()) ||
        !std::isfinite(sim.duty) ||
        !std::isfinite(sim.periodCycles) ||
        !std::isfinite(sim.pairsPerSecond))
        return false;
    for (std::size_t c = 0; c < em::kNumChannels; ++c) {
        if (!std::isfinite(sim.amplitude[c].real()) ||
            !std::isfinite(sim.amplitude[c].imag()) ||
            !std::isfinite(sim.meanA[c]) ||
            !std::isfinite(sim.meanB[c]))
            return false;
    }
    return true;
}

GuardOutcome
guardPair(const RetryPolicy &policy, std::size_t pair,
          const AttemptFn &attempt, const RetryObserver &onRetry)
{
    GuardOutcome out;
    const std::size_t attempts =
        policy.maxAttempts > 0 ? policy.maxAttempts : 1;
    for (std::size_t a = 0; a < attempts; ++a) {
        out.backoffSeconds += retryBackoffSeconds(policy, pair, a);
        out.attempts = a + 1;
        std::string error;
        bool clean = false;
        try {
            clean = attempt(a, error);
        } catch (const std::exception &e) {
            error = e.what();
        } catch (...) {
            error = "unknown exception";
        }
        if (clean) {
            out.state = pipeline::CellState::Measured;
            out.lastError.clear();
            if (a > 0)
                SAVAT_INFORM("pair ", pair, " recovered on attempt ",
                             a + 1, " after ",
                             format("%.3f", out.backoffSeconds),
                             " s virtual backoff");
            return out;
        }
        out.lastError =
            error.empty() ? "attempt failed" : std::move(error);
        SAVAT_METRIC_COUNT("resilience.retries");
        SAVAT_WARN("pair ", pair, " attempt ", a + 1, "/", attempts,
                   " failed: ", out.lastError);
        if (onRetry)
            onRetry(a + 1, out.lastError, out.backoffSeconds);
    }
    out.state = pipeline::CellState::Degraded;
    SAVAT_METRIC_COUNT("resilience.degraded_cells");
    SAVAT_WARN("pair ", pair, " degraded after ", attempts,
               " attempts: ", out.lastError);
    return out;
}

void
lintRetryPolicy(const RetryPolicy &policy,
                double pairMeasurementBudgetSeconds,
                analysis::Report &report)
{
    using analysis::DiagId;

    if (policy.maxAttempts == 0)
        report.add(DiagId::RetryPolicyInvalid, "retry-attempts",
                   "retry policy allows zero attempts; no cell "
                   "could ever be measured",
                   "set retry-attempts to at least 1");
    if (!(policy.backoffSeconds >= 0.0) ||
        !std::isfinite(policy.backoffSeconds))
        report.add(DiagId::RetryPolicyInvalid, "retry-backoff",
                   format("retry backoff %g s is not a finite "
                          "non-negative duration",
                          policy.backoffSeconds),
                   "use a small positive backoff such as 50 ms");
    if (!(policy.multiplier >= 1.0) ||
        !std::isfinite(policy.multiplier))
        report.add(DiagId::RetryPolicyInvalid, "retry-backoff",
                   format("backoff multiplier %g must be a finite "
                          "value >= 1",
                          policy.multiplier),
                   "use an exponential multiplier such as 2");
    if (!(policy.jitterFraction >= 0.0 &&
          policy.jitterFraction <= 1.0))
        report.add(DiagId::RetryPolicyInvalid, "retry-backoff",
                   format("jitter fraction %g outside [0, 1]",
                          policy.jitterFraction),
                   "use a fraction such as 0.1");

    if (report.has(DiagId::RetryPolicyInvalid))
        return;

    const double worst = worstCaseBackoffSeconds(policy);
    if (pairMeasurementBudgetSeconds > 0.0 &&
        worst > 10.0 * pairMeasurementBudgetSeconds)
        report.add(DiagId::RetryBackoffExcessive, "retry-backoff",
                   format("worst-case backoff %.3f s is more than "
                          "10x the %.3f s pair measurement budget",
                          worst, pairMeasurementBudgetSeconds),
                   "lower retry-backoff or retry-attempts so waits "
                   "stay comparable to the measurement itself");
}

} // namespace savat::resilience
