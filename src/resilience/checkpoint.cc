#include "resilience/checkpoint.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/campaign.hh"
#include "pipeline/config.hh"
#include "support/crc32.hh"
#include "support/hexfloat.hh"
#include "support/io.hh"
#include "support/strings.hh"

namespace savat::resilience {

using kernels::EventKind;
using support::printHexFloat;
using support::readHexFloat;

namespace {

// v2 added the per-cell bp/spec/probe records (speculation refactor);
// the strict parser rejects unknown record keys, so the version must
// move with the grammar.
constexpr const char *kMagic = "savat-campaign-checkpoint";
constexpr const char *kVersion = "v2";

/** Non-fatal event-name lookup (the parser reports, never aborts). */
bool
eventNamed(const std::string &name, EventKind &out)
{
    for (auto e : kernels::extendedEvents()) {
        if (name == kernels::eventName(e)) {
            out = e;
            return true;
        }
    }
    return false;
}

void
printDoubles(std::ostream &os, const char *key,
             std::initializer_list<double> values)
{
    os << key;
    for (double v : values) {
        os << ' ';
        printHexFloat(os, v);
    }
    os << '\n';
}

void
printCellBody(std::ostream &os, const CampaignCheckpoint::Cell &cell)
{
    const auto &sim = cell.sim;
    os << "sim " << sim.counts.countA << ' ' << sim.counts.countB;
    for (double v :
         {sim.counts.cpiA, sim.counts.cpiB,
          sim.actualFrequency.inHz(), sim.duty, sim.periodCycles,
          sim.pairsPerSecond}) {
        os << ' ';
        printHexFloat(os, v);
    }
    os << '\n';
    os << "amp";
    for (const auto &c : sim.amplitude) {
        os << ' ';
        printHexFloat(os, c.real());
        os << ' ';
        printHexFloat(os, c.imag());
    }
    os << '\n';
    printDoubles(os, "meana",
                 {sim.meanA[0], sim.meanA[1], sim.meanA[2],
                  sim.meanA[3], sim.meanA[4], sim.meanA[5],
                  sim.meanA[6], sim.meanA[7]});
    printDoubles(os, "meanb",
                 {sim.meanB[0], sim.meanB[1], sim.meanB[2],
                  sim.meanB[3], sim.meanB[4], sim.meanB[5],
                  sim.meanB[6], sim.meanB[7]});
    const std::pair<const char *, const uarch::CacheStats *>
        caches[] = {{"l1", &sim.l1}, {"l2", &sim.l2}};
    for (const auto &[name, cache] : caches) {
        os << name << ' ' << cache->readHits << ' '
           << cache->readMisses << ' ' << cache->writeHits << ' '
           << cache->writeMisses << ' ' << cache->writebacksIn << ' '
           << cache->writebacksOut << '\n';
    }
    os << "mem " << sim.mem.reads << ' ' << sim.mem.writes << '\n';
    os << "bp " << sim.bp.conditional << ' ' << sim.bp.unconditional
       << ' ' << sim.bp.mispredicts << '\n';
    os << "spec " << sim.spec.squashes << ' '
       << sim.spec.wrongPathInsts << ' ' << sim.spec.transientFills
       << ' ' << sim.spec.windowExhausted << ' '
       << sim.spec.fencesHit << '\n';
    os << "probe ";
    printHexFloat(os, sim.probeMeanA);
    os << ' ';
    printHexFloat(os, sim.probeMeanB);
    os << '\n';
    os << "samples";
    for (double v : cell.samples) {
        os << ' ';
        printHexFloat(os, v);
    }
    os << '\n';
    for (const auto &trace : cell.traces) {
        os << "trace ";
        printHexFloat(os, trace.startHz);
        os << ' ';
        printHexFloat(os, trace.binHz);
        os << ' ' << trace.psd.size();
        for (double v : trace.psd) {
            os << ' ';
            printHexFloat(os, v);
        }
        os << '\n';
    }
}

void
printBody(std::ostream &os, const CampaignCheckpoint &cp)
{
    os << kMagic << ' ' << kVersion << '\n';
    os << "identity " << cp.identity << '\n';
    os << "machine " << cp.machineId << '\n';
    os << "reps " << cp.repetitions << '\n';
    os << "keeptraces " << (cp.keepTraces ? 1 : 0) << '\n';
    os << "events";
    for (auto e : cp.events)
        os << ' ' << kernels::eventName(e);
    os << '\n';
    for (const auto &cell : cp.cells) {
        os << "cell " << kernels::eventName(cell.a) << ' '
           << kernels::eventName(cell.b) << ' '
           << pipeline::cellStateName(cell.sim.state) << ' '
           << cell.attempts << ' ';
        printHexFloat(os, cell.backoffSeconds);
        os << ' ' << cell.samples.size() << ' '
           << cell.traces.size() << '\n';
        if (!cell.lastError.empty())
            os << "error " << cell.lastError << '\n';
        printCellBody(os, cell);
    }
    os << "end\n";
}

} // namespace

std::string
hashCampaignIdentity(const core::CampaignConfig &config)
{
    std::ostringstream canon;
    const auto &m = config.meter;
    canon << config.machineId << '|'
          << pipeline::channelName(m.channel) << '|';
    for (double v :
         {m.alternation.inHz(), m.distance.inMeters(), m.bandHz,
          m.spanHz, m.rbwHz, m.noiseFloorWPerHz,
          m.power.noiseFloorWPerHz, m.power.residualCoupling,
          m.timing.noiseFloorWPerHz, m.timing.wattsPerCycleSq,
          m.timing.jitterRel}) {
        printHexFloat(canon, v);
        canon << '|';
    }
    canon << static_cast<int>(m.pairing) << '|' << m.measurePeriods
          << '|' << m.specWindow << '|';
    for (auto e : config.events)
        canon << kernels::eventName(e) << ',';
    canon << '|' << config.repetitions << '|' << config.seed << '|'
          << (config.keepTraces ? 1 : 0);

    const std::string s = canon.str();
    // Two independent CRC passes give a 64-bit identity; collisions
    // across *differing* configs of the same repo are what matters,
    // not cryptographic strength.
    return format("%08x%08x", support::crc32(s),
                  support::crc32(s, 0x5AFA7u));
}

void
saveCheckpoint(std::ostream &os, const CampaignCheckpoint &cp)
{
    std::ostringstream body;
    printBody(body, cp);
    const std::string text = body.str();
    os << text << format("crc32 %08x\n", support::crc32(text));
}

CheckpointParseResult
loadCheckpoint(std::istream &stream)
{
    CheckpointParseResult res;

    std::string content;
    {
        std::ostringstream oss;
        oss << stream.rdbuf();
        content = oss.str();
    }
    res.bytes = content.size();

    std::istringstream in(content);
    auto fail = [&res, &in](const std::string &msg) {
        res.ok = false;
        const auto pos = in.tellg();
        res.error =
            pos < 0 ? msg
                    : msg + format(" (near byte %lld of %zu)",
                                   static_cast<long long>(pos),
                                   res.bytes);
        return res;
    };

    std::string magic, version;
    if (!(in >> magic >> version) || magic != kMagic)
        return fail("not a savat campaign checkpoint");
    if (version != kVersion)
        return fail("unsupported checkpoint version " + version);

    // CRC first: a checkpoint is rewritten many times per campaign,
    // so truncation/corruption must be caught before any record is
    // trusted.
    const std::size_t footer = content.rfind("crc32 ");
    if (footer == std::string::npos ||
        content.find('\n', footer) != content.size() - 1)
        return fail("missing crc32 footer (file truncated?)");
    unsigned long stored = 0;
    if (std::sscanf(content.c_str() + footer, "crc32 %8lx",
                    &stored) != 1)
        return fail(
            format("malformed crc32 footer at byte %zu", footer));
    const std::uint32_t actual =
        support::crc32(content.data(), footer);
    if (actual != static_cast<std::uint32_t>(stored))
        return fail(format("crc32 mismatch over bytes 0..%zu: "
                           "stored %08lx, computed %08x "
                           "(file corrupted or truncated)",
                           footer, stored, actual));
    content.resize(footer);
    in.str(content);
    in.clear();
    in >> magic >> version; // re-skip the header line

    auto &cp = res.checkpoint;
    std::string key;
    bool saw_end = false;
    while (in >> key) {
        if (key == "identity") {
            if (!(in >> cp.identity))
                return fail("identity: missing hash");
        } else if (key == "machine") {
            if (!(in >> cp.machineId))
                return fail("machine: missing id");
        } else if (key == "reps") {
            if (!(in >> cp.repetitions))
                return fail("reps: missing count");
        } else if (key == "keeptraces") {
            int flag = 0;
            if (!(in >> flag))
                return fail("keeptraces: missing flag");
            cp.keepTraces = flag != 0;
        } else if (key == "events") {
            std::string line;
            std::getline(in, line);
            std::istringstream toks(line);
            std::string name;
            while (toks >> name) {
                EventKind e;
                if (!eventNamed(name, e))
                    return fail("events: unknown event " + name);
                cp.events.push_back(e);
            }
        } else if (key == "cell") {
            CampaignCheckpoint::Cell cell;
            std::string na, nb, state;
            std::size_t nsamples = 0, ntraces = 0;
            if (!(in >> na >> nb >> state >> cell.attempts) ||
                !readHexFloat(in, cell.backoffSeconds) ||
                !(in >> nsamples >> ntraces))
                return fail("cell: malformed header");
            if (!eventNamed(na, cell.a) || !eventNamed(nb, cell.b))
                return fail("cell: unknown event " + na + "/" + nb);
            if (!pipeline::cellStateByName(state, cell.sim.state))
                return fail("cell: unknown state " + state);
            cell.sim.a = cell.a;
            cell.sim.b = cell.b;

            std::string sub;
            if (!(in >> sub))
                return fail("cell: truncated record");
            if (sub == "error") {
                std::string line;
                std::getline(in, line);
                cell.lastError = trim(line);
                if (!(in >> sub))
                    return fail("cell: truncated record");
            }

            auto &sim = cell.sim;
            double freqHz = 0.0;
            if (sub != "sim" ||
                !(in >> sim.counts.countA >> sim.counts.countB) ||
                !readHexFloat(in, sim.counts.cpiA) ||
                !readHexFloat(in, sim.counts.cpiB) ||
                !readHexFloat(in, freqHz) ||
                !readHexFloat(in, sim.duty) ||
                !readHexFloat(in, sim.periodCycles) ||
                !readHexFloat(in, sim.pairsPerSecond))
                return fail("cell: malformed sim record");
            sim.actualFrequency = Frequency::hz(freqHz);

            if (!(in >> sub) || sub != "amp")
                return fail("cell: expected amp record");
            for (auto &c : sim.amplitude) {
                double re = 0.0, im = 0.0;
                if (!readHexFloat(in, re) || !readHexFloat(in, im))
                    return fail("cell: malformed amp record");
                c = {re, im};
            }
            const std::pair<const char *, std::array<double, 8> *>
                means[] = {{"meana", &sim.meanA},
                           {"meanb", &sim.meanB}};
            for (const auto &[name, mean] : means) {
                if (!(in >> sub) || sub != name)
                    return fail(std::string("cell: expected ") +
                                name + " record");
                for (double &v : *mean)
                    if (!readHexFloat(in, v))
                        return fail(std::string("cell: malformed ") +
                                    name + " record");
            }
            const std::pair<const char *, uarch::CacheStats *>
                caches[] = {{"l1", &sim.l1}, {"l2", &sim.l2}};
            for (const auto &[name, cache] : caches) {
                if (!(in >> sub) || sub != name ||
                    !(in >> cache->readHits >> cache->readMisses >>
                      cache->writeHits >> cache->writeMisses >>
                      cache->writebacksIn >> cache->writebacksOut))
                    return fail(std::string("cell: malformed ") +
                                name + " record");
            }
            if (!(in >> sub) || sub != "mem" ||
                !(in >> sim.mem.reads >> sim.mem.writes))
                return fail("cell: malformed mem record");
            if (!(in >> sub) || sub != "bp" ||
                !(in >> sim.bp.conditional >>
                  sim.bp.unconditional >> sim.bp.mispredicts))
                return fail("cell: malformed bp record");
            if (!(in >> sub) || sub != "spec" ||
                !(in >> sim.spec.squashes >>
                  sim.spec.wrongPathInsts >>
                  sim.spec.transientFills >>
                  sim.spec.windowExhausted >> sim.spec.fencesHit))
                return fail("cell: malformed spec record");
            if (!(in >> sub) || sub != "probe" ||
                !readHexFloat(in, sim.probeMeanA) ||
                !readHexFloat(in, sim.probeMeanB))
                return fail("cell: malformed probe record");

            if (!(in >> sub) || sub != "samples")
                return fail("cell: expected samples record");
            cell.samples.resize(nsamples);
            for (double &v : cell.samples)
                if (!readHexFloat(in, v))
                    return fail("cell: truncated samples");

            cell.traces.reserve(ntraces);
            for (std::size_t t = 0; t < ntraces; ++t) {
                spectrum::Trace trace;
                std::size_t bins = 0;
                if (!(in >> sub) || sub != "trace")
                    return fail("cell: expected trace record");
                if (!readHexFloat(in, trace.startHz) ||
                    !readHexFloat(in, trace.binHz) || !(in >> bins))
                    return fail("trace: malformed header");
                trace.psd.resize(bins);
                for (double &v : trace.psd)
                    if (!readHexFloat(in, v))
                        return fail("trace: truncated PSD");
                cell.traces.push_back(std::move(trace));
            }
            cp.cells.push_back(std::move(cell));
        } else if (key == "end") {
            saw_end = true;
            break;
        } else {
            return fail("unknown record '" + key + "'");
        }
    }
    if (!saw_end)
        return fail("truncated checkpoint (missing end marker)");
    res.ok = true;
    return res;
}

CheckpointParseResult
loadCheckpointFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        CheckpointParseResult res;
        res.error = "cannot open " + path;
        return res;
    }
    return loadCheckpoint(in);
}

bool
writeCheckpointFile(const std::string &path,
                    const CampaignCheckpoint &cp, bool truncate,
                    std::string *error)
{
    std::ostringstream oss;
    saveCheckpoint(oss, cp);
    std::string text = oss.str();
    if (truncate)
        text.resize(text.size() / 2);
    return support::writeFileAtomically(path, text, error);
}

} // namespace savat::resilience
