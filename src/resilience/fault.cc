#include "resilience/fault.hh"

#include <cstdlib>

#include "support/strings.hh"

namespace savat::resilience {

namespace {

/** splitmix64 finalizer: one well-mixed word per (seed, ordinal). */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

bool
faultKindByName(const std::string &name, FaultKind &out)
{
    if (name == "nan")
        out = FaultKind::Nan;
    else if (name == "inf")
        out = FaultKind::Inf;
    else if (name == "throw")
        out = FaultKind::Throw;
    else if (name == "trunc")
        out = FaultKind::TruncateCheckpoint;
    else if (name == "die")
        out = FaultKind::Die;
    else
        return false;
    return true;
}

/** Strict non-negative integer parse ("" and trailing junk fail). */
bool
parseIndex(const std::string &tok, std::size_t &out)
{
    // strtoull silently wraps negatives, so gate on a leading digit.
    if (tok.empty() || tok[0] < '0' || tok[0] > '9')
        return false;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0')
        return false;
    out = static_cast<std::size_t>(v);
    return true;
}

bool
parseRule(const std::string &text, FaultRule &rule,
          std::string &error)
{
    const std::size_t at = text.find('@');
    if (at == std::string::npos) {
        error = "rule '" + text + "' is missing '@<target>'";
        return false;
    }
    if (!faultKindByName(text.substr(0, at), rule.kind)) {
        error = "unknown fault kind '" + text.substr(0, at) +
                "' (expected nan|inf|throw|trunc|die)";
        return false;
    }

    std::string target = text.substr(at + 1);
    const std::size_t alwaysAt = target.rfind(":always");
    if (alwaysAt != std::string::npos &&
        alwaysAt + 7 == target.size()) {
        rule.always = true;
        target.resize(alwaysAt);
    }

    if (target.rfind("every:", 0) == 0) {
        rule.target = FaultRule::Target::Every;
        if (!parseIndex(target.substr(6), rule.period) ||
            rule.period == 0) {
            error = "bad period in '" + text +
                    "' (expected every:<K> with K >= 1)";
            return false;
        }
    } else if (target.rfind("rate:", 0) == 0) {
        rule.target = FaultRule::Target::Rate;
        char *end = nullptr;
        const std::string frac = target.substr(5);
        rule.rate = std::strtod(frac.c_str(), &end);
        if (frac.empty() || end == frac.c_str() || *end != '\0' ||
            !(rule.rate >= 0.0 && rule.rate <= 1.0)) {
            error = "bad rate in '" + text +
                    "' (expected rate:<P> with P in [0, 1])";
            return false;
        }
    } else {
        rule.target = FaultRule::Target::Index;
        if (!parseIndex(target, rule.index)) {
            error = "bad target in '" + text +
                    "' (expected an index, every:<K>, or rate:<P>)";
            return false;
        }
    }
    return true;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Nan: return "nan";
      case FaultKind::Inf: return "inf";
      case FaultKind::Throw: return "throw";
      case FaultKind::TruncateCheckpoint: return "trunc";
      case FaultKind::Die: return "die";
    }
    return "unknown";
}

bool
FaultRule::matches(std::size_t i, std::uint64_t seed) const
{
    switch (target) {
      case Target::Index:
        return i == index;
      case Target::Every:
        return i % period == 0;
      case Target::Rate: {
        // Seeded hash of the ordinal: the same (plan, seed,
        // ordinal) fires identically at any jobs value.
        const double u =
            static_cast<double>(mix(seed ^ (i + 1)) >> 11) *
            0x1.0p-53;
        return u < rate;
      }
    }
    return false;
}

bool
parseFaultPlan(const std::string &spec, FaultPlan &out,
               std::string *error)
{
    out = FaultPlan{};
    out.text = spec;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string tok =
            trim(spec.substr(start, comma - start));
        start = comma + 1;
        if (tok.empty())
            continue;
        FaultRule rule;
        std::string ruleError;
        if (!parseRule(tok, rule, ruleError)) {
            if (error)
                *error = ruleError;
            out = FaultPlan{};
            return false;
        }
        out.rules.push_back(rule);
    }
    return true;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : _plan(std::move(plan)), _seed(seed)
{
}

const FaultRule *
FaultInjector::measurementFault(std::size_t pair,
                                std::size_t attempt) const
{
    for (const auto &rule : _plan.rules) {
        if (rule.kind != FaultKind::Nan &&
            rule.kind != FaultKind::Inf &&
            rule.kind != FaultKind::Throw)
            continue;
        if (attempt > 0 && !rule.always)
            continue;
        if (rule.matches(pair, _seed))
            return &rule;
    }
    return nullptr;
}

bool
FaultInjector::dieAfterPair(std::size_t pair) const
{
    return dieRule(pair) != nullptr;
}

const FaultRule *
FaultInjector::dieRule(std::size_t pair) const
{
    for (const auto &rule : _plan.rules)
        if (rule.kind == FaultKind::Die && rule.matches(pair, _seed))
            return &rule;
    return nullptr;
}

bool
FaultInjector::truncateCheckpointWrite(std::size_t ordinal) const
{
    for (const auto &rule : _plan.rules)
        if (rule.kind == FaultKind::TruncateCheckpoint &&
            rule.matches(ordinal, _seed))
            return true;
    return false;
}

void
lintFaultPlan(const std::string &spec, std::size_t pairCount,
              analysis::Report &report)
{
    using analysis::DiagId;

    FaultPlan plan;
    std::string error;
    if (!parseFaultPlan(spec, plan, &error)) {
        report.add(DiagId::FaultPlanInvalid, "fault-plan", error,
                   "see the <kind>@<target>[:always] grammar in "
                   "resilience/fault.hh");
        return;
    }
    for (const auto &rule : plan.rules) {
        if (rule.target == FaultRule::Target::Index &&
            rule.kind != FaultKind::TruncateCheckpoint &&
            pairCount > 0 && rule.index >= pairCount)
            report.add(
                DiagId::FaultPlanUnreachable, "fault-plan",
                format("rule %s@%zu targets a pair beyond the "
                       "campaign's %zu pairs and will never fire",
                       faultKindName(rule.kind), rule.index,
                       pairCount),
                "target an index inside the campaign or drop the "
                "rule");
        if (rule.target == FaultRule::Target::Rate &&
            rule.rate == 0.0)
            report.add(DiagId::FaultPlanUnreachable, "fault-plan",
                       format("rule %s@rate:0 can never fire",
                              faultKindName(rule.kind)),
                       "use a positive rate or drop the rule");
    }
}

} // namespace savat::resilience
