/**
 * @file
 * Per-pair fault containment for long campaigns.
 *
 * An 11x11 campaign spends many core-hours; one pair whose signal
 * chain throws or emits a non-finite SAVAT value must not abort the
 * other 120 cells. PairGuard wraps the measurement of one cell: it
 * catches exceptions and NaN/Inf outputs, retries under a
 * deterministic RetryPolicy, and on exhaustion reports the cell as
 * CellState::Degraded so the campaign completes with the failure
 * recorded instead of the matrix lost.
 *
 * Backoff is *virtual time*: the simulated bench has no transient
 * bench noise to wait out, so the guard never sleeps. It computes
 * the seeded, jittered backoff schedule a real bench would follow
 * and reports the accumulated virtual seconds through savat::obs —
 * deterministic per (pair, attempt) and independent of how worker
 * threads are scheduled.
 */

#ifndef SAVAT_RESILIENCE_RETRY_HH
#define SAVAT_RESILIENCE_RETRY_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "analysis/diagnostic.hh"
#include "pipeline/stages.hh"

namespace savat::resilience {

/** Deterministic bounded-retry schedule for one campaign. */
struct RetryPolicy
{
    /** Total tries per cell (first attempt included). */
    std::size_t maxAttempts = 3;

    /** Virtual backoff before the second attempt [s]. */
    double backoffSeconds = 0.05;

    /** Growth factor per subsequent attempt. */
    double multiplier = 2.0;

    /** +/- fractional jitter applied to each backoff. */
    double jitterFraction = 0.1;

    /** Seed of the jitter stream (independent of measurement RNG). */
    std::uint64_t seed = 0x5AFA7u;
};

/**
 * The virtual backoff before attempt `attempt` (1-based; attempt 0
 * is the initial try and has no backoff) of pair `pair`, jittered
 * deterministically from the policy seed.
 */
double retryBackoffSeconds(const RetryPolicy &policy,
                           std::size_t pair, std::size_t attempt);

/** Total virtual backoff if every retry of one cell is consumed. */
double worstCaseBackoffSeconds(const RetryPolicy &policy);

/** True when every element of `sim` and `samples` is finite. */
bool allFinite(const pipeline::PairSimulation &sim);

/** Outcome of guarding one cell. */
struct GuardOutcome
{
    pipeline::CellState state = pipeline::CellState::Skipped;

    /** Attempts actually consumed (1 = clean first try). */
    std::size_t attempts = 0;

    /** Accumulated virtual backoff [s]. */
    double backoffSeconds = 0.0;

    /** Last failure description; empty when the cell came up clean. */
    std::string lastError;
};

/**
 * One measurement attempt. `attempt` is 0-based. Returns true when
 * the attempt produced a clean (finite, exception-free) cell; on
 * false, `error` describes what went wrong. Throwing is equivalent
 * to returning false with the exception text as the error.
 */
using AttemptFn =
    std::function<bool(std::size_t attempt, std::string &error)>;

/**
 * Observer invoked after each *failed* attempt, before the next one
 * runs: `attempt` is 1-based, `error` is the failure description
 * and `backoffSeconds` the virtual backoff accumulated so far. The
 * campaign journals cell-retry events through it; it must not throw.
 */
using RetryObserver = std::function<void(
    std::size_t attempt, const std::string &error,
    double backoffSeconds)>;

/**
 * Run `attempt` under the policy: retry failed attempts with
 * virtual-time backoff until one succeeds or maxAttempts is
 * exhausted, then report Measured or Degraded. Emits
 * resilience.retries / resilience.degraded_cells metrics and
 * notifies `onRetry` (when set) after each failed attempt.
 */
GuardOutcome guardPair(const RetryPolicy &policy, std::size_t pair,
                       const AttemptFn &attempt,
                       const RetryObserver &onRetry = nullptr);

/**
 * SAV-1801/SAV-1802: reject unusable retry policies (zero attempts,
 * negative or non-finite backoff parameters, jitter outside [0, 1])
 * and flag schedules whose worst-case backoff dwarfs the pair
 * measurement budget.
 */
void lintRetryPolicy(const RetryPolicy &policy,
                     double pairMeasurementBudgetSeconds,
                     analysis::Report &report);

} // namespace savat::resilience

#endif // SAVAT_RESILIENCE_RETRY_HH
