/**
 * @file
 * Campaign checkpoint/resume.
 *
 * A full pairwise campaign is hours of bench time; losing it to a
 * crash at pair 117 of 121 is the failure mode the paper's authors
 * scheduled their measurement days around. CampaignRunner
 * periodically serializes every completed cell — the deterministic
 * PairSimulation, the per-repetition SAVAT samples, and (for
 * keepTraces campaigns) the analyzer displays — to a versioned,
 * CRC-32-guarded, hexfloat checkpoint written with an atomic
 * temp-file + rename, so the file on disk is always a valid prefix
 * of the campaign.
 *
 * Cells are keyed by their (A, B) event names, not by request
 * index, and the identity hash deliberately excludes the pair list:
 * a checkpoint taken while measuring any subset of a campaign's
 * pairs is a valid warm start for any other subset of the same
 * campaign. Restored cells are not re-measured; the remainder draws
 * from the same per-cell RNG streams it always had, so a resumed
 * matrix is byte-identical to an uninterrupted run.
 */

#ifndef SAVAT_RESILIENCE_CHECKPOINT_HH
#define SAVAT_RESILIENCE_CHECKPOINT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "pipeline/stages.hh"
#include "spectrum/analyzer.hh"

namespace savat::core {
struct CampaignConfig;
}

namespace savat::resilience {

/** Everything a campaign needs to warm-start one cell. */
struct CampaignCheckpoint
{
    /** Identity hash of the producing campaign's configuration. */
    std::string identity;

    std::string machineId;
    std::vector<kernels::EventKind> events;
    std::size_t repetitions = 0;
    bool keepTraces = false;

    struct Cell
    {
        kernels::EventKind a = kernels::EventKind::NOI;
        kernels::EventKind b = kernels::EventKind::NOI;

        pipeline::PairSimulation sim;

        /** Per-repetition SAVAT samples [zJ], in repetition order. */
        std::vector<double> samples;

        /** keepTraces campaigns only: one display per repetition. */
        std::vector<spectrum::Trace> traces;

        /** Containment bookkeeping (see resilience/retry.hh). */
        std::size_t attempts = 1;
        double backoffSeconds = 0.0;
        std::string lastError;
    };
    std::vector<Cell> cells;
};

/**
 * Identity of a campaign for resume compatibility: machine, channel,
 * meter settings, event set, repetitions, seed and keepTraces — but
 * NOT the pair list, so checkpoints transfer between subsets of the
 * same campaign. Stable 16-hex-digit string.
 */
std::string
hashCampaignIdentity(const core::CampaignConfig &config);

/** Serialize (hexfloat + CRC-32 footer, byte-exact round trip). */
void saveCheckpoint(std::ostream &os, const CampaignCheckpoint &cp);

/** Outcome of parsing a checkpoint. */
struct CheckpointParseResult
{
    CampaignCheckpoint checkpoint;
    bool ok = false;
    std::string error;
    std::size_t bytes = 0; //!< total size of the parsed input
};

/**
 * Parse a checkpoint, verifying the CRC-32 footer first; failures
 * carry the byte offset where the damage was detected.
 */
CheckpointParseResult loadCheckpoint(std::istream &in);
CheckpointParseResult loadCheckpointFile(const std::string &path);

/**
 * Write the checkpoint to `path` atomically (temp file + rename).
 * `truncate` is the fault-injection hook: when set, only the first
 * half of the serialized bytes is written — still through the
 * atomic path, so the corruption the loader must catch is a torn
 * payload, not a torn rename. Returns false on I/O failure.
 */
bool writeCheckpointFile(const std::string &path,
                         const CampaignCheckpoint &cp,
                         bool truncate = false,
                         std::string *error = nullptr);

} // namespace savat::resilience

#endif // SAVAT_RESILIENCE_CHECKPOINT_HH
