/**
 * @file
 * Deterministic fault injection for exercising the containment and
 * checkpoint machinery.
 *
 * A fault plan is a comma-separated list of rules:
 *
 *   <kind>@<target>[:always]
 *
 *   kind    nan | inf | throw | trunc | die
 *   target  a pair index `7`, `every:K` (each K-th pair),
 *           or `rate:P` (seeded pseudo-random fraction P of pairs)
 *
 * nan/inf poison the cell's first SAVAT sample; throw raises an
 * InjectedFault from the measurement; trunc truncates the next
 * checkpoint write (target counts checkpoint writes, not pairs);
 * die exits the process with status 137 after the target pair
 * completes, simulating `kill -9` mid-campaign. nan/inf/throw fire
 * on the first attempt only, so containment retries recover a clean
 * cell — append `:always` to fail every attempt and force the cell
 * Degraded.
 *
 * Under `--isolate procs` the die rule is routed through the worker
 * process instead of the campaign: the worker measuring the targeted
 * cell _Exits(137) before reporting its result, so the supervisor
 * observes a crashed worker, charges the cell's crash budget, and
 * re-dispatches the cell to a replacement. Without `:always` the
 * rule fires only on the cell's first dispatch, so the campaign
 * recovers and completes byte-identically; with `:always` every
 * dispatch dies and the cell is quarantined as Degraded once the
 * budget (retry.maxAttempts worker deaths) is exhausted.
 *
 * Rule matching is a pure function of (plan, seed, indices): a plan
 * replayed against the same campaign injects the same faults
 * regardless of jobs or thread schedule.
 */

#ifndef SAVAT_RESILIENCE_FAULT_HH
#define SAVAT_RESILIENCE_FAULT_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/diagnostic.hh"

namespace savat::resilience {

/** What a fault rule does when it fires. */
enum class FaultKind : std::uint8_t
{
    Nan,                //!< poison a SAVAT sample with quiet NaN
    Inf,                //!< poison a SAVAT sample with +infinity
    Throw,              //!< throw InjectedFault from the measurement
    TruncateCheckpoint, //!< cut the targeted checkpoint write short
    Die,                //!< _Exit(137) after the targeted pair
};

/** Stable lower-case name ("nan", "inf", ...). */
const char *faultKindName(FaultKind kind);

/** Where a rule fires. */
struct FaultRule
{
    FaultKind kind = FaultKind::Nan;

    enum class Target : std::uint8_t
    {
        Index, //!< exactly pair/write ordinal `index`
        Every, //!< every `period`-th ordinal (0, period, 2*period..)
        Rate,  //!< seeded pseudo-random fraction `rate` of ordinals
    };
    Target target = Target::Index;

    std::size_t index = 0;
    std::size_t period = 1;
    double rate = 0.0;

    /** Fire on every containment attempt, not just the first. */
    bool always = false;

    /** True when this rule fires at ordinal `i` under `seed`. */
    bool matches(std::size_t i, std::uint64_t seed) const;
};

/** A parsed fault plan. */
struct FaultPlan
{
    std::vector<FaultRule> rules;
    std::string text; //!< the spec the plan was parsed from

    bool empty() const { return rules.empty(); }
};

/**
 * Parse the `<kind>@<target>[:always],...` grammar. Returns false
 * (with `error` describing the offending rule) on malformed input;
 * an empty spec parses to an empty plan.
 */
bool parseFaultPlan(const std::string &spec, FaultPlan &out,
                    std::string *error = nullptr);

/** Thrown by injected `throw` faults. */
struct InjectedFault : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * Evaluates a FaultPlan during a campaign. Stateless with respect
 * to pair queries (safe from any worker thread); checkpoint-write
 * ordinals are counted by the caller.
 */
class FaultInjector
{
  public:
    FaultInjector() = default;
    FaultInjector(FaultPlan plan, std::uint64_t seed);

    bool enabled() const { return !_plan.empty(); }

    /**
     * The measurement fault (Nan/Inf/Throw) to inject into attempt
     * `attempt` of pair `pair`, or nullptr when none fires. First
     * match wins; rules without `:always` fire only on attempt 0.
     */
    const FaultRule *measurementFault(std::size_t pair,
                                      std::size_t attempt) const;

    /** True when a `die` rule targets pair `pair`. */
    bool dieAfterPair(std::size_t pair) const;

    /**
     * The `die` rule targeting pair `pair`, or nullptr. Process-
     * isolated campaigns route die through the worker: the worker
     * _Exits before reporting the cell, so the supervisor sees a
     * crashed worker instead of a dead campaign. There `always`
     * decides whether the re-dispatched cell dies again (forcing
     * quarantine) or recovers on the replacement worker.
     */
    const FaultRule *dieRule(std::size_t pair) const;

    /** True when checkpoint write number `ordinal` is truncated. */
    bool truncateCheckpointWrite(std::size_t ordinal) const;

  private:
    FaultPlan _plan;
    std::uint64_t _seed = 0;
};

/**
 * SAV-1803/SAV-1804: reject plans that do not parse and warn about
 * rules that cannot fire on a campaign of `pairCount` pairs.
 */
void lintFaultPlan(const std::string &spec, std::size_t pairCount,
                   analysis::Report &report);

} // namespace savat::resilience

#endif // SAVAT_RESILIENCE_FAULT_HH
