/**
 * @file
 * Instruction clustering with SAVAT as the distance metric.
 *
 * Section III of the paper proposes clustering instruction opcodes
 * using SAVAT as a distance to tame the O(N^2) measurement cost of
 * large instruction sets; Section V observes four natural groups in
 * the Core 2 Duo matrix (off-chip accesses, L2 hits,
 * arithmetic + L1, and DIV alone). This module implements
 * agglomerative average-linkage clustering over a symmetrized SAVAT
 * matrix and reproduces that grouping.
 */

#ifndef SAVAT_CORE_CLUSTERING_HH
#define SAVAT_CORE_CLUSTERING_HH

#include <string>
#include <vector>

#include "core/matrix.hh"

namespace savat::core {

/** One merge step of the agglomerative clustering. */
struct MergeStep
{
    std::size_t left;    //!< cluster id merged from
    std::size_t right;   //!< cluster id merged from
    std::size_t merged;  //!< new cluster id
    double distance;     //!< linkage distance at the merge
};

/** Clustering outputs. */
struct ClusteringResult
{
    /** events()[i] belongs to clusters[assignment[i]]. */
    std::vector<std::size_t> assignment;

    /** Clusters as event lists, largest first. */
    std::vector<std::vector<kernels::EventKind>> clusters;

    /** Full dendrogram (merge history). */
    std::vector<MergeStep> dendrogram;
};

/**
 * Symmetrize a SAVAT matrix into a distance matrix:
 * d(a,b) = (savat(a,b) + savat(b,a)) / 2, d(a,a) = 0.
 *
 * When subtractDiagonalFloor is set (the default), each pair's
 * measurement floor -- the mean of the two events' A/A diagonals,
 * i.e. the residual signal present even for identical instructions
 * -- is subtracted (clamped at zero). This removes the noise
 * pedestal so the clustering sees only genuine signal differences;
 * without it, loud events (off-chip accesses) carry a large
 * diagonal that inflates their mutual distance artificially.
 */
std::vector<std::vector<double>>
savatDistance(const SavatMatrix &matrix,
              bool subtractDiagonalFloor = true);

/**
 * Agglomerative average-linkage clustering cut at k clusters.
 *
 * @param matrix SAVAT matrix (means are used).
 * @param k      Number of clusters to return (1 <= k <= N).
 */
ClusteringResult clusterEvents(const SavatMatrix &matrix, std::size_t k);

/** Render cluster membership as text ("{LDM STM} {LDL2 STL2} ..."). */
std::string describeClusters(const ClusteringResult &result);

} // namespace savat::core

#endif // SAVAT_CORE_CLUSTERING_HH
