#include "core/matrix.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace savat::core {

using kernels::EventKind;

SavatMatrix::SavatMatrix(std::vector<EventKind> events)
    : _events(std::move(events))
{
    SAVAT_ASSERT(!_events.empty(), "empty event list");
    _cells.assign(_events.size(),
                  std::vector<std::vector<double>>(_events.size()));
}

std::vector<std::string>
SavatMatrix::labels() const
{
    std::vector<std::string> out;
    out.reserve(_events.size());
    for (auto e : _events)
        out.emplace_back(kernels::eventName(e));
    return out;
}

void
SavatMatrix::addSample(std::size_t a, std::size_t b, double zj)
{
    SAVAT_ASSERT(a < size() && b < size(), "cell out of range");
    _cells[a][b].push_back(zj);
}

const std::vector<double> &
SavatMatrix::samples(std::size_t a, std::size_t b) const
{
    SAVAT_ASSERT(a < size() && b < size(), "cell out of range");
    return _cells[a][b];
}

double
SavatMatrix::mean(std::size_t a, std::size_t b) const
{
    return cellSummary(a, b).mean;
}

Summary
SavatMatrix::cellSummary(std::size_t a, std::size_t b) const
{
    return summarize(samples(a, b));
}

std::vector<std::vector<double>>
SavatMatrix::means() const
{
    std::vector<std::vector<double>> out(size(),
                                         std::vector<double>(size(), 0.0));
    for (std::size_t a = 0; a < size(); ++a)
        for (std::size_t b = 0; b < size(); ++b)
            out[a][b] = mean(a, b);
    return out;
}

std::vector<double>
SavatMatrix::flatMeans() const
{
    std::vector<double> out;
    out.reserve(size() * size());
    for (std::size_t a = 0; a < size(); ++a)
        for (std::size_t b = 0; b < size(); ++b)
            out.push_back(mean(a, b));
    return out;
}

double
SavatMatrix::meanCoefficientOfVariation() const
{
    double total = 0.0;
    std::size_t n = 0;
    for (std::size_t a = 0; a < size(); ++a) {
        for (std::size_t b = 0; b < size(); ++b) {
            const auto s = cellSummary(a, b);
            if (s.count >= 2 && s.mean > 0.0) {
                total += s.stddev / s.mean;
                ++n;
            }
        }
    }
    return n ? total / static_cast<double>(n) : 0.0;
}

std::size_t
SavatMatrix::diagonalMinimumCount(double tolerance) const
{
    const auto m = means();
    std::size_t count = 0;
    for (std::size_t d = 0; d < size(); ++d) {
        bool is_min = true;
        for (std::size_t k = 0; k < size(); ++k) {
            if (k == d)
                continue;
            if (m[d][k] + tolerance < m[d][d] ||
                m[k][d] + tolerance < m[d][d]) {
                is_min = false;
                break;
            }
        }
        if (is_min)
            ++count;
    }
    return count;
}

double
SavatMatrix::symmetryError() const
{
    const auto m = means();
    double total = 0.0;
    std::size_t n = 0;
    for (std::size_t a = 0; a < size(); ++a) {
        for (std::size_t b = a + 1; b < size(); ++b) {
            const double avg = 0.5 * (m[a][b] + m[b][a]);
            if (avg > 0.0) {
                total += std::abs(m[a][b] - m[b][a]) / avg;
                ++n;
            }
        }
    }
    return n ? total / static_cast<double>(n) : 0.0;
}

double
SavatMatrix::singleInstructionSavat(
    const std::vector<EventKind> &group) const
{
    SAVAT_ASSERT(!group.empty(), "empty instruction group");
    double best = 0.0;
    for (auto a : group) {
        for (auto b : group) {
            best = std::max(best, mean(indexOf(a), indexOf(b)));
        }
    }
    return best;
}

std::size_t
SavatMatrix::indexOf(EventKind e) const
{
    const auto idx = tryIndexOf(e);
    if (idx < 0)
        SAVAT_FATAL("event ", kernels::eventName(e), " not in matrix");
    return static_cast<std::size_t>(idx);
}

std::int64_t
SavatMatrix::tryIndexOf(EventKind e) const
{
    for (std::size_t i = 0; i < _events.size(); ++i) {
        if (_events[i] == e)
            return static_cast<std::int64_t>(i);
    }
    return -1;
}

} // namespace savat::core
