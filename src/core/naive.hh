/**
 * @file
 * The naive SAVAT measurement methodology (the paper's Figure 2),
 * implemented as a baseline.
 *
 * Record the side-channel signal around a single execution of
 * instruction A, record it again for B, align the two captures and
 * integrate the area between the curves. Section III argues this
 * fails in practice: the one-instruction difference is far below
 * instrument noise, the subtraction of two large nearly-equal
 * signals amplifies relative error, and sample-grid misalignment
 * adds more. This module reproduces that argument quantitatively so
 * the alternation methodology's advantage can be benchmarked.
 */

#ifndef SAVAT_CORE_NAIVE_HH
#define SAVAT_CORE_NAIVE_HH

#include "em/emission.hh"
#include "kernels/events.hh"
#include "pipeline/frontend.hh"
#include "support/rng.hh"
#include "support/stats.hh"
#include "uarch/machine.hh"

namespace savat::core {

/** Oscilloscope and capture parameters for the naive measurement. */
struct NaiveConfig
{
    /** Real-time sampling rate (a top-end scope: 40 GS/s). */
    double scopeSamplesPerSecond = 40e9;

    /** Additive noise, as a fraction of the signal's range (the
     * paper's example uses 0.5 %). */
    double noiseFraction = 0.005;

    /** Worst-case misalignment between the two captures, in scope
     * samples. */
    int alignmentJitterSamples = 1;

    /** Surrounding (identical) instructions before and after the
     * instruction under test. */
    std::size_t contextInstructions = 40;

    /**
     * Common-mode background signal level (scaled signal units):
     * the probe sees the whole die -- clock trees, other cores,
     * refresh -- which dwarfs any single instruction's
     * contribution. The measurement noise is proportional to the
     * full signal range, so this is what makes the naive approach
     * hopeless for small differences.
     */
    double backgroundAmplitude = 40.0;

    /**
     * Worker threads for the trial loop (0 = auto, see
     * support::resolveJobs). Each trial draws from its own stream
     * forked in trial order, so results are identical for every
     * jobs value.
     */
    std::size_t jobs = 0;

    /**
     * Side channel the scope probes: the per-channel coupling comes
     * from the same front-end definition the signal chains use (see
     * pipeline::channelCoupling).
     */
    pipeline::ChannelKind channel = pipeline::ChannelKind::Em;
};

/** Outcome of a naive-methodology experiment. */
struct NaiveResult
{
    /** Noise-free, perfectly aligned area between the curves
     * (arbitrary signal units x seconds). */
    double trueDifference = 0.0;

    /** Distribution of the noisy estimates across trials. */
    Summary estimates;

    /** Mean of |estimate - truth| / truth across trials. */
    double meanRelativeError = 0.0;
};

/**
 * Run the naive measurement `trials` times for the (a, b) pair.
 *
 * The same emission profile used by the alternation methodology
 * weighs the simulated activity into a scope-visible signal, so the
 * two methodologies are compared on identical physics.
 */
NaiveResult runNaiveComparison(const uarch::MachineConfig &machine,
                               const em::EmissionProfile &profile,
                               kernels::EventKind a, kernels::EventKind b,
                               const NaiveConfig &config,
                               std::size_t trials, Rng &rng);

} // namespace savat::core

#endif // SAVAT_CORE_NAIVE_HH
