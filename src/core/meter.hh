/**
 * @file
 * The SAVAT meter: the paper's measurement methodology, end to end.
 *
 * The meter is a facade over the staged measurement pipeline
 * (pipeline/stages.hh): for a pair of instruction/events (A, B) it
 *  1. runs the deterministic front half — BurstSolve, KernelBuild,
 *     Simulate (with the retune loop) and ChannelExtract — caching
 *     the resulting PairSimulation per pair,
 *  2. hands each measurement repetition to the configured
 *     SignalChain (pipeline/chain.hh): Synthesize, Sweep and
 *     BandIntegrate with fresh environmental randomness, matching
 *     the paper's ten-repetition campaigns.
 *
 * The chain is selected by MeterConfig::channel: the EM antenna
 * chain (the paper's case study) or the supply-current chain
 * (Section VII). Recorded campaigns can also be re-integrated
 * offline through pipeline::ReplayChain via setChain().
 */

#ifndef SAVAT_CORE_METER_HH
#define SAVAT_CORE_METER_HH

#include <memory>
#include <unordered_map>
#include <utility>

#include "analysis/checker.hh"
#include "em/synth.hh"
#include "kernels/generator.hh"
#include "kernels/sequence.hh"
#include "pipeline/chain.hh"
#include "pipeline/config.hh"
#include "pipeline/stages.hh"
#include "spectrum/analyzer.hh"
#include "support/hash.hh"
#include "support/rng.hh"
#include "support/units.hh"
#include "uarch/cpu.hh"

namespace savat::core {

/** Which physical side channel the meter measures. */
using SideChannel = pipeline::ChannelKind;

/** Measurement parameters shared by a campaign. */
using MeterConfig = pipeline::MeasureConfig;

/** The analysis-layer view of a meter configuration. */
using pipeline::toAnalysisSettings;

/** Deterministic per-pair simulation products (environment-free). */
using PairSimulation = pipeline::PairSimulation;

/** One measurement repetition's outputs. */
using Measurement = pipeline::Measurement;

/** The aggregate outputs of one repetition (no trace retained). */
using SavatSample = pipeline::SavatSample;

/** The meter. */
class SavatMeter
{
  public:
    /**
     * @param machine Machine to measure.
     * @param synth   Emission/propagation/antenna/environment chain
     *                (must match the machine).
     * @param config  Measurement parameters.
     *
     * The configuration is statically validated on construction;
     * error-level diagnostics (see analysis::Checker) are fatal.
     */
    SavatMeter(uarch::MachineConfig machine,
               em::ReceivedSignalSynthesizer synth, MeterConfig config);

    /**
     * Static validation of this meter's configuration: the
     * machine-geometry and spectral passes of analysis::Checker.
     * Construction already refuses error-level findings; this
     * exposes the full report (warnings and notes included).
     */
    analysis::Report validate() const;

    /** Convenience: build the full chain for a case-study machine. */
    static SavatMeter forMachine(const std::string &machineId,
                                 MeterConfig config = {});

    /**
     * Run the deterministic part of a pair measurement (kernel
     * construction, simulation, spectral extraction). Results are
     * cached per (a, b).
     */
    const PairSimulation &simulatePair(kernels::EventKind a,
                                       kernels::EventKind b);

    /**
     * Sequence variant (Section III "combination"): the A and B
     * slots each hold a short instruction sequence. Results are
     * cached per (sequenceName(a), sequenceName(b)).
     */
    const PairSimulation &
    simulateSequencePair(const kernels::EventSequence &a,
                         const kernels::EventSequence &b);

    /**
     * One measurement repetition: synthesize the received spectrum
     * with fresh environmental randomness and integrate the band.
     */
    Measurement measure(const PairSimulation &sim, Rng &rng,
                        std::size_t repetition = 0) const;

    /**
     * The same repetition without retaining the analyzer display:
     * the sweep, synthesis and staging buffers live in the
     * caller-owned scratch (reused across calls, so a steady-state
     * campaign repetition allocates nothing). Draws the identical
     * random sequence as measure(), so both paths produce
     * bit-identical SAVAT values.
     *
     * The repetition index is forwarded to the signal chain;
     * physical chains ignore it (their randomness comes from rng),
     * the replay chain uses it to select the recorded trace.
     *
     * Thread-safe for concurrent calls on one meter as long as each
     * caller passes its own rng and scratch (the per-pair caches
     * are only touched by the non-const simulate* members).
     */
    SavatSample measureValue(const PairSimulation &sim, Rng &rng,
                             pipeline::MeasureScratch &scratch,
                             std::size_t repetition = 0) const;

    /** Convenience: simulate (cached) + one repetition. */
    Measurement measurePair(kernels::EventKind a, kernels::EventKind b,
                            Rng &rng);

    /** Steady-state cycles/iteration of an event's half (cached). */
    double iterationCycles(kernels::EventKind e);

    const uarch::MachineConfig &machine() const { return _machine; }
    const MeterConfig &config() const { return _config; }
    const em::ReceivedSignalSynthesizer &synth() const { return _synth; }

    /** The signal chain measurements run through. */
    const pipeline::SignalChain &chain() const { return *_chain; }

    /**
     * Swap the signal chain (e.g. for a pipeline::ReplayChain). The
     * chain must be non-null; it is shared, so meter copies remain
     * cheap.
     */
    void setChain(std::shared_ptr<const pipeline::SignalChain> chain);

  private:
    uarch::MachineConfig _machine;
    em::ReceivedSignalSynthesizer _synth;
    MeterConfig _config;
    std::shared_ptr<const pipeline::SignalChain> _chain;

    std::unordered_map<kernels::EventKind, double> _cpiCache;
    std::unordered_map<
        std::pair<kernels::EventKind, kernels::EventKind>,
        PairSimulation, support::PairHash>
        _pairCache;
    std::unordered_map<std::pair<std::string, std::string>,
                       PairSimulation, support::PairHash>
        _sequenceCache;

    PairSimulation runPairSimulation(kernels::EventKind a,
                                     kernels::EventKind b);
};

} // namespace savat::core

#endif // SAVAT_CORE_METER_HH
