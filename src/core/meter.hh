/**
 * @file
 * The SAVAT meter: the paper's measurement methodology, end to end.
 *
 * For a pair of instruction/events (A, B) the meter
 *  1. measures each event's steady-state iteration time and solves
 *     for the burst lengths that hit the intended alternation
 *     frequency (Section III),
 *  2. builds and runs the A/B alternation kernel on the simulated
 *     machine, capturing the micro-architectural activity trace over
 *     several alternation periods after a cache warm-up,
 *  3. extracts each emission channel's complex amplitude at the
 *     alternation frequency,
 *  4. synthesizes the received spectrum at the antenna (distance,
 *     environment, instrument) and integrates the power in the
 *     +/- 1 kHz band around the intended alternation frequency,
 *  5. divides by the number of A/B pairs executed per second,
 *     yielding the per-pair signal energy: the SAVAT value.
 *
 * Steps 1-3 are deterministic per pair and cached; step 4-5 are
 * repeated per measurement repetition with fresh environmental
 * randomness, matching the paper's ten-repetition campaigns.
 */

#ifndef SAVAT_CORE_METER_HH
#define SAVAT_CORE_METER_HH

#include <array>
#include <functional>
#include <map>

#include "analysis/checker.hh"
#include "em/synth.hh"
#include "kernels/generator.hh"
#include "kernels/sequence.hh"
#include "spectrum/analyzer.hh"
#include "support/rng.hh"
#include "support/units.hh"
#include "uarch/cpu.hh"

namespace savat::core {

/** Which physical side channel the meter measures. */
enum class SideChannel {
    Em,   //!< EM emanations via the loop antenna (the paper's case)
    Power //!< supply-current measurement (Section VII future work)
};

/** Measurement parameters shared by a campaign. */
struct MeterConfig
{
    /** Intended alternation frequency (the paper uses 80 kHz). */
    Frequency alternation = Frequency::khz(80.0);

    /** Antenna distance (the paper uses 10/50/100 cm). */
    Distance distance = Distance::centimeters(10.0);

    /** Burst-length selection policy. */
    kernels::PairingMode pairing = kernels::PairingMode::EqualDuration;

    /** Alternation periods captured for spectral analysis. */
    std::size_t measurePeriods = 8;

    /** Half-width of the measured band around the intended
     * frequency (the paper integrates +/- 1 kHz). */
    double bandHz = 1000.0;

    /** Half-width of the synthesized spectral window. */
    double spanHz = 2000.0;

    /** Spectrum analyzer sweep settings. */
    double rbwHz = 1.0;
    double noiseFloorWPerHz = 5.0e-18;

    /** Side channel under measurement. */
    SideChannel sideChannel = SideChannel::Em;

    /** Noise floor of the power-measurement front end [W/Hz]. */
    double powerNoiseFloorWPerHz = 2.0e-16;
};

/**
 * The analysis-layer view of a meter configuration (the static
 * checker lives below core, so it defines its own mirror struct).
 * The antenna supplies the rated-band limits the spectral checks
 * need.
 */
analysis::MeasurementSettings
toAnalysisSettings(const MeterConfig &config,
                   const em::LoopAntenna &antenna);

/** Deterministic per-pair simulation products (environment-free). */
struct PairSimulation
{
    kernels::EventKind a = kernels::EventKind::NOI;
    kernels::EventKind b = kernels::EventKind::NOI;

    kernels::CountSolution counts;

    /** Realized alternation frequency of the generated kernel. */
    Frequency actualFrequency;

    /** Fraction of the period spent in the A burst. */
    double duty = 0.5;

    /** Average period length in cycles. */
    double periodCycles = 0.0;

    /**
     * A/B pairs per second: the intended alternation frequency times
     * the burst length (the larger one when the two bursts differ).
     * SAVAT divides measured band power by this rate.
     */
    double pairsPerSecond = 0.0;

    /** Per-channel complex amplitude at the alternation frequency. */
    em::ChannelAmplitudes amplitude{};

    /** Per-channel mean activity of each half (au/cycle). */
    std::array<double, em::kNumChannels> meanA{};
    std::array<double, em::kNumChannels> meanB{};

    /** Memory-system statistics over the measured window. */
    uarch::CacheStats l1;
    uarch::CacheStats l2;
    uarch::MainMemoryStats mem;
};

/** One measurement repetition's outputs. */
struct Measurement
{
    Energy savat;              //!< the SAVAT value
    double bandPowerW = 0.0;   //!< integrated band power
    double toneHz = 0.0;       //!< realized tone frequency
    spectrum::Trace trace;     //!< the analyzer display
};

/** The aggregate outputs of one repetition (no trace retained). */
struct SavatSample
{
    Energy savat;
    double bandPowerW = 0.0;
    double toneHz = 0.0;
};

/** The meter. */
class SavatMeter
{
  public:
    /**
     * @param machine Machine to measure.
     * @param synth   Emission/propagation/antenna/environment chain
     *                (must match the machine).
     * @param config  Measurement parameters.
     *
     * The configuration is statically validated on construction;
     * error-level diagnostics (see analysis::Checker) are fatal.
     */
    SavatMeter(uarch::MachineConfig machine,
               em::ReceivedSignalSynthesizer synth, MeterConfig config);

    /**
     * Static validation of this meter's configuration: the
     * machine-geometry and spectral passes of analysis::Checker.
     * Construction already refuses error-level findings; this
     * exposes the full report (warnings and notes included).
     */
    analysis::Report validate() const;

    /** Convenience: build the full chain for a case-study machine. */
    static SavatMeter forMachine(const std::string &machineId,
                                 MeterConfig config = {});

    /**
     * Run the deterministic part of a pair measurement (kernel
     * construction, simulation, spectral extraction). Results are
     * cached per (a, b).
     */
    const PairSimulation &simulatePair(kernels::EventKind a,
                                       kernels::EventKind b);

    /**
     * Sequence variant (Section III "combination"): the A and B
     * slots each hold a short instruction sequence. Results are
     * cached per (sequenceName(a), sequenceName(b)).
     */
    const PairSimulation &
    simulateSequencePair(const kernels::EventSequence &a,
                         const kernels::EventSequence &b);

    /**
     * One measurement repetition: synthesize the received spectrum
     * with fresh environmental randomness and integrate the band.
     */
    Measurement measure(const PairSimulation &sim, Rng &rng) const;

    /**
     * The same repetition without retaining the analyzer display:
     * the sweep is written into the caller-owned scratch trace
     * (reused across calls, so a campaign repetition allocates
     * nothing). Draws the identical random sequence as measure(),
     * so both paths produce bit-identical SAVAT values.
     *
     * Thread-safe for concurrent calls on one meter as long as each
     * caller passes its own rng and scratch (the per-pair caches
     * are only touched by the non-const simulate* members).
     */
    SavatSample measureValue(const PairSimulation &sim, Rng &rng,
                             spectrum::Trace &scratch) const;

    /** Convenience: simulate (cached) + one repetition. */
    Measurement measurePair(kernels::EventKind a, kernels::EventKind b,
                            Rng &rng);

    /** Steady-state cycles/iteration of an event's half (cached). */
    double iterationCycles(kernels::EventKind e);

    const uarch::MachineConfig &machine() const { return _machine; }
    const MeterConfig &config() const { return _config; }
    const em::ReceivedSignalSynthesizer &synth() const { return _synth; }

  private:
    uarch::MachineConfig _machine;
    em::ReceivedSignalSynthesizer _synth;
    MeterConfig _config;

    std::map<kernels::EventKind, double> _cpiCache;
    std::map<std::pair<kernels::EventKind, kernels::EventKind>,
             PairSimulation>
        _pairCache;
    std::map<std::pair<std::string, std::string>, PairSimulation>
        _sequenceCache;

    /** Everything runAlternation needs to know about one kernel. */
    struct AlternationSpec
    {
        std::function<kernels::AlternationKernel(
            std::uint64_t countA, std::uint64_t countB)>
            build;
        double cpiA = 0.0;
        double cpiB = 0.0;
        std::uint64_t footprintA = 0;
        std::uint64_t footprintB = 0;
        bool prefillA = false; //!< half A loads data
        bool prefillB = false;
        kernels::EventKind labelA = kernels::EventKind::NOI;
        kernels::EventKind labelB = kernels::EventKind::NOI;
    };

    PairSimulation runAlternation(const AlternationSpec &spec);
    PairSimulation runPairSimulation(kernels::EventKind a,
                                     kernels::EventKind b);
};

} // namespace savat::core

#endif // SAVAT_CORE_METER_HH
