#include "core/campaign.hh"

#include <atomic>
#include <mutex>

#include "analysis/checker.hh"
#include "support/logging.hh"
#include "support/obs.hh"
#include "support/parallel.hh"

namespace savat::core {

using kernels::EventKind;

namespace {

std::vector<EventKind>
effectiveEvents(const CampaignConfig &config)
{
    return config.events.empty() ? kernels::allEvents() : config.events;
}

/** Deterministic per-cell RNG stream. */
Rng
cellRng(const CampaignConfig &config, std::size_t a, std::size_t b)
{
    const std::uint64_t mix =
        config.seed ^ (0x9E3779B97F4A7C15ull * (a * 131 + b + 1));
    return Rng(mix);
}

/**
 * Everything one worker produces for one pair. Outcomes are merged
 * into the result serially, in request order, so the assembled
 * matrix is byte-for-byte the serial loop's output regardless of
 * which worker measured which pair.
 */
struct PairOutcome
{
    std::int64_t ia = -1;
    std::int64_t ib = -1;
    PairSimulation sim;
    std::vector<double> samples;
    std::vector<spectrum::Trace> traces;
};

/**
 * Measure one cell on this worker's meter: the cached deterministic
 * simulation once, then `repetitions` measurement draws. Repetition
 * streams are forked from the cell stream up front, in repetition
 * order -- exactly what the serial loop does -- so spreading the
 * draws over `innerJobs` workers cannot perturb any stream.
 */
void
measureCell(SavatMeter &meter, const CampaignConfig &config,
            PairOutcome &slot, EventKind a, EventKind b,
            std::size_t innerJobs, spectrum::Trace &scratch)
{
    const auto &sim = meter.simulatePair(a, b);
    slot.sim = sim;

    const std::size_t reps = config.repetitions;
    slot.samples.resize(reps);
    if (config.keepTraces)
        slot.traces.resize(reps);

    Rng rng = cellRng(config, static_cast<std::size_t>(slot.ia),
                      static_cast<std::size_t>(slot.ib));
    std::vector<Rng> repRngs;
    repRngs.reserve(reps);
    for (std::size_t rep = 0; rep < reps; ++rep)
        repRngs.push_back(rng.fork());

    std::atomic<std::size_t> nextRep{0};
    support::runWorkers(
        std::min<std::size_t>(innerJobs, reps ? reps : 1),
        [&](std::size_t worker) {
            spectrum::Trace local;
            spectrum::Trace &buf = worker == 0 ? scratch : local;
            for (std::size_t rep = nextRep.fetch_add(1); rep < reps;
                 rep = nextRep.fetch_add(1)) {
                Rng rep_rng = repRngs[rep];
                const auto m =
                    meter.measureValue(sim, rep_rng, buf, rep);
                slot.samples[rep] = m.savat.inZepto();
                if (config.keepTraces)
                    slot.traces[rep] = buf;
            }
        });
}

} // namespace

CampaignResult
runCampaign(const CampaignConfig &config, const ProgressFn &progress)
{
    const auto events = effectiveEvents(config);
    std::vector<std::pair<EventKind, EventKind>> pairs;
    pairs.reserve(events.size() * events.size());
    for (auto a : events)
        for (auto b : events)
            pairs.emplace_back(a, b);
    return runCampaignPairs(config, pairs, progress);
}

CampaignResult
runCampaignPairs(
    const CampaignConfig &config,
    const std::vector<std::pair<EventKind, EventKind>> &pairs,
    const ProgressFn &progress)
{
    const auto events = effectiveEvents(config);

    SAVAT_TRACE_SPAN("campaign.run",
                     {{"machine", config.machineId},
                      {"pairs", pairs.size()},
                      {"reps", config.repetitions}});
    SAVAT_METRIC_TIMER("campaign.run_seconds");

    // Static validation of the whole campaign before any simulation
    // burns time; every error-level diagnostic is fatal here.
    analysis::CampaignSpec spec;
    spec.name = "campaign(" + config.machineId + ")";
    spec.machineId = config.machineId;
    spec.events = events;
    spec.pairs = pairs;
    spec.repetitions = config.repetitions;
    spec.settings = toAnalysisSettings(config.meter, em::LoopAntenna());
    const auto report = analysis::Checker().check(spec);
    if (report.hasErrors()) {
        SAVAT_FATAL("invalid campaign configuration:\n",
                    report.errorSummary());
    }

    CampaignResult result{config, SavatMatrix(events), {}, {}, {}};
    result.config.events = events;
    result.simulations.resize(events.size() * events.size());
    result.pairs = pairs;

    const std::size_t npairs = pairs.size();
    if (npairs == 0)
        return result;

    // Shard pairs across workers; when the pair list is shorter
    // than the worker budget (bar-chart subsets on a big machine),
    // spend the leftover inside each cell's repetition loop.
    const std::size_t requested = support::resolveJobs(config.jobs);
    const std::size_t outerJobs =
        std::max<std::size_t>(1, std::min(requested, npairs));
    const std::size_t innerJobs =
        std::max<std::size_t>(1, requested / outerJobs);

    std::vector<PairOutcome> outcomes(npairs);
    std::atomic<std::size_t> nextPair{0};
    std::mutex progressMutex;
    std::size_t completed = 0;

    SAVAT_METRIC_GAUGE("campaign.jobs",
                       static_cast<double>(requested));
    SAVAT_METRIC_GAUGE("campaign.inner_jobs",
                       static_cast<double>(innerJobs));

    // One prototype meter calibrates each event's steady-state CPI
    // up front (a deterministic per-event simulation); workers copy
    // the warmed cache instead of recalibrating it once per worker.
    auto prototype =
        SavatMeter::forMachine(config.machineId, config.meter);
    {
        SAVAT_TRACE_SPAN("campaign.calibrate",
                         {{"events", events.size()}});
        SAVAT_METRIC_TIMER("campaign.calibrate_seconds");
        for (auto e : events)
            prototype.iterationCycles(e);
    }

    support::runWorkers(outerJobs, [&](std::size_t) {
        // Worker-owned meter: the pair caches stay thread-local so
        // the hot path takes no locks. The caches hold deterministic
        // values, so per-worker ownership does not affect output.
        auto meter = prototype;
        spectrum::Trace scratch;
        for (std::size_t p = nextPair.fetch_add(1); p < npairs;
             p = nextPair.fetch_add(1)) {
            auto &slot = outcomes[p];
            const auto &[a, b] = pairs[p];
            slot.ia = result.matrix.tryIndexOf(a);
            slot.ib = result.matrix.tryIndexOf(b);
            if (slot.ia < 0 || slot.ib < 0) {
                SAVAT_METRIC_COUNT("campaign.pairs_skipped");
                SAVAT_WARN("skipping pair ", kernels::eventName(a),
                           "/", kernels::eventName(b),
                           ": event not in the campaign matrix");
            } else {
                SAVAT_TRACE_SPAN("campaign.cell",
                                 {{"a", kernels::eventName(a)},
                                  {"b", kernels::eventName(b)},
                                  {"reps", config.repetitions}});
                SAVAT_METRIC_TIMER("campaign.cell_seconds");
                measureCell(meter, config, slot, a, b, innerJobs,
                            scratch);
                SAVAT_METRIC_COUNT("campaign.cells");
                SAVAT_METRIC_ADD("campaign.reps",
                                 config.repetitions);
            }
            if (progress) {
                const std::lock_guard<std::mutex> lock(progressMutex);
                progress(++completed, npairs);
            }
        }
    });

    // Serial merge in request order: samples land in each cell in
    // exactly the order the serial loop would have appended them.
    SAVAT_TRACE_SPAN("campaign.merge", {{"pairs", npairs}});
    if (config.keepTraces)
        result.traces.resize(npairs);
    for (std::size_t p = 0; p < npairs; ++p) {
        auto &slot = outcomes[p];
        if (slot.ia < 0 || slot.ib < 0)
            continue;
        const auto ia = static_cast<std::size_t>(slot.ia);
        const auto ib = static_cast<std::size_t>(slot.ib);
        for (double zj : slot.samples)
            result.matrix.addSample(ia, ib, zj);
        result.simulations[ia * events.size() + ib] =
            std::move(slot.sim);
        if (config.keepTraces)
            result.traces[p] = std::move(slot.traces);
    }
    return result;
}

pipeline::TraceRecording
recordCampaign(const CampaignResult &result)
{
    SAVAT_ASSERT(result.config.keepTraces,
                 "recordCampaign needs a keepTraces campaign");
    SAVAT_ASSERT(result.traces.size() == result.pairs.size(),
                 "trace/pair bookkeeping mismatch");

    pipeline::TraceRecording rec;
    rec.machineId = result.config.machineId;
    rec.events = result.matrix.events();
    rec.alternationHz = result.config.meter.alternation.inHz();
    rec.bandHz = result.config.meter.bandHz;
    rec.channel = pipeline::channelName(result.config.meter.channel);

    for (std::size_t p = 0; p < result.pairs.size(); ++p) {
        const auto &[a, b] = result.pairs[p];
        const auto ia = result.matrix.tryIndexOf(a);
        const auto ib = result.matrix.tryIndexOf(b);
        if (ia < 0 || ib < 0)
            continue; // skipped with a warning during the run
        pipeline::TraceRecording::Cell cell;
        cell.a = a;
        cell.b = b;
        cell.pairsPerSecond =
            result.simulation(static_cast<std::size_t>(ia),
                              static_cast<std::size_t>(ib))
                .pairsPerSecond;
        cell.traces = result.traces[p];
        rec.cells.push_back(std::move(cell));
    }
    return rec;
}

SavatMatrix
replayMatrix(const pipeline::TraceRecording &recording)
{
    SavatMatrix matrix(recording.events);
    for (const auto &cell : pipeline::replayAll(recording)) {
        const auto ia = matrix.indexOf(cell.a);
        const auto ib = matrix.indexOf(cell.b);
        for (const auto &s : cell.samples)
            matrix.addSample(ia, ib, s.savat.inZepto());
    }
    return matrix;
}

} // namespace savat::core
