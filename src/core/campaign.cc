#include "core/campaign.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <ctime>
#include <limits>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "analysis/checker.hh"
#include "dsp/simd.hh"
#include "resilience/checkpoint.hh"
#include "resilience/fault.hh"
#include "service/pool.hh"
#include "support/hash.hh"
#include "support/journal.hh"
#include "support/logging.hh"
#include "support/stageprof.hh"
#include "support/strings.hh"
#include "support/obs.hh"
#include "support/parallel.hh"
#include "uarch/machine.hh"

namespace savat::core {

using kernels::EventKind;

namespace {

std::vector<EventKind>
effectiveEvents(const CampaignConfig &config)
{
    return config.events.empty() ? kernels::allEvents() : config.events;
}

/** Deterministic per-cell RNG stream. */
Rng
cellRng(const CampaignConfig &config, std::size_t a, std::size_t b)
{
    const std::uint64_t mix =
        config.seed ^ (0x9E3779B97F4A7C15ull * (a * 131 + b + 1));
    return Rng(mix);
}

/** CPU seconds consumed so far by the calling thread. */
double
threadCpuSeconds()
{
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return 0.0;
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

/** Journal state name of one terminal cell record. */
const char *
journalStateName(pipeline::CellState state)
{
    switch (state) {
      case pipeline::CellState::Measured: return "ok";
      case pipeline::CellState::Degraded: return "degraded";
      case pipeline::CellState::Skipped: return "skipped";
    }
    return "failed";
}

/** Deterministic mean of a cell's SAVAT samples [zJ]. */
double
savatMeanZj(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : samples)
        sum += v;
    return sum / static_cast<double>(samples.size());
}

/** "A|B" journal key of one pair (CellRecord::pair). */
std::string
pairKey(EventKind a, EventKind b)
{
    return std::string(kernels::eventName(a)) + "|" +
           kernels::eventName(b);
}

/**
 * Per-cell speculation attribution in the cell-done record: branch
 * predictor traffic, wrong-path side effects and (timing channel)
 * the attacker's probe readout, all over the measured window. The
 * report layer aggregates these into the per-cell speculation table.
 */
void
setSpeculationFields(support::json::Value &f,
                     const PairSimulation &sim)
{
    namespace json = support::json;
    auto count = [&f](const char *key, std::uint64_t v) {
        f.set(key, json::Value(static_cast<double>(v)));
    };
    count("bp_conditional", sim.bp.conditional);
    count("bp_unconditional", sim.bp.unconditional);
    count("bp_mispredicts", sim.bp.mispredicts);
    count("spec_squashes", sim.spec.squashes);
    count("spec_wrong_path", sim.spec.wrongPathInsts);
    count("spec_transient_fills", sim.spec.transientFills);
    count("spec_window_exhausted", sim.spec.windowExhausted);
    count("spec_fences", sim.spec.fencesHit);
    f.set("probe_mean_a", sim.probeMeanA);
    f.set("probe_mean_b", sim.probeMeanB);
}

/**
 * Everything one worker produces for one pair. Outcomes are merged
 * into the result serially, in request order, so the assembled
 * matrix is byte-for-byte the serial loop's output regardless of
 * which worker measured which pair.
 */
struct PairOutcome
{
    std::int64_t ia = -1;
    std::int64_t ib = -1;
    PairSimulation sim;
    std::vector<double> samples;
    std::vector<spectrum::Trace> traces;
};

/**
 * Measure one cell on this worker's meter: the cached deterministic
 * simulation once, then `repetitions` measurement draws. Repetition
 * streams are forked from the cell stream up front, in repetition
 * order -- exactly what the serial loop does -- so spreading the
 * draws over `innerJobs` workers cannot perturb any stream.
 */
void
measureCell(SavatMeter &meter, const CampaignConfig &config,
            PairOutcome &slot, EventKind a, EventKind b,
            std::size_t innerJobs, pipeline::MeasureScratch &scratch)
{
    const auto &sim = meter.simulatePair(a, b);
    slot.sim = sim;

    const std::size_t reps = config.repetitions;
    slot.samples.resize(reps);
    if (config.keepTraces)
        slot.traces.resize(reps);

    Rng rng = cellRng(config, static_cast<std::size_t>(slot.ia),
                      static_cast<std::size_t>(slot.ib));
    std::vector<Rng> repRngs;
    repRngs.reserve(reps);
    for (std::size_t rep = 0; rep < reps; ++rep)
        repRngs.push_back(rng.fork());

    // Inner repetition workers attribute their stages to the outer
    // campaign worker that owns this cell.
    const int wtag = obs::currentWorker();
    std::atomic<std::size_t> nextRep{0};
    support::runWorkers(
        std::min<std::size_t>(innerJobs, reps ? reps : 1),
        [&](std::size_t worker) {
            obs::setCurrentWorker(wtag);
            pipeline::MeasureScratch local;
            pipeline::MeasureScratch &buf =
                worker == 0 ? scratch : local;
            for (std::size_t rep = nextRep.fetch_add(1); rep < reps;
                 rep = nextRep.fetch_add(1)) {
                Rng rep_rng = repRngs[rep];
                const auto m =
                    meter.measureValue(sim, rep_rng, buf, rep);
                slot.samples[rep] = m.savat.inZepto();
                if (config.keepTraces)
                    slot.traces[rep] = buf.trace;
            }
        });
}

/**
 * One cell's guarded measurement: containment retries around
 * measureCell with deterministic fault injection (nan/inf poison,
 * throw) and finiteness checks. Shared verbatim between the
 * in-process worker path and the forked-worker cell function, so
 * both substrates produce identical samples and identical health
 * verdicts. `onFault(kind, attempt)` fires when an injected fault
 * does; callers journal it (threads) or relay it upstream (procs).
 */
resilience::GuardOutcome
runGuardedCell(SavatMeter &meter, const CampaignConfig &config,
               const resilience::FaultInjector &injector,
               std::size_t p, EventKind a, EventKind b,
               std::size_t innerJobs,
               pipeline::MeasureScratch &scratch, PairOutcome &slot,
               const std::function<void(resilience::FaultKind,
                                        std::size_t)> &onFault,
               const resilience::RetryObserver &onRetry)
{
    const auto outcome = resilience::guardPair(
        config.retry, p,
        [&](std::size_t attempt, std::string &error) {
            const auto *fault = injector.measurementFault(p, attempt);
            if (fault &&
                fault->kind == resilience::FaultKind::Throw) {
                SAVAT_METRIC_COUNT("resilience.faults_injected");
                if (onFault)
                    onFault(fault->kind, attempt);
                throw resilience::InjectedFault(
                    format("injected fault: throw at pair "
                           "%zu attempt %zu",
                           p, attempt));
            }
            measureCell(meter, config, slot, a, b, innerJobs,
                        scratch);
            if (fault && !slot.samples.empty()) {
                SAVAT_METRIC_COUNT("resilience.faults_injected");
                if (onFault)
                    onFault(fault->kind, attempt);
                slot.samples[0] =
                    fault->kind == resilience::FaultKind::Nan
                        ? std::numeric_limits<double>::quiet_NaN()
                        : std::numeric_limits<double>::infinity();
            }
            if (!resilience::allFinite(slot.sim)) {
                error = "non-finite simulation products";
                return false;
            }
            for (std::size_t r = 0; r < slot.samples.size(); ++r) {
                if (!std::isfinite(slot.samples[r])) {
                    error = format("non-finite SAVAT sample in "
                                   "repetition %zu",
                                   r);
                    return false;
                }
            }
            return true;
        },
        onRetry);
    if (outcome.state == pipeline::CellState::Degraded) {
        // Keep the labels honest even when the failure struck
        // before the simulation filled the slot.
        slot.sim.a = a;
        slot.sim.b = b;
        slot.sim.state = pipeline::CellState::Degraded;
    }
    return outcome;
}

} // namespace

const char *
isolateModeName(IsolateMode mode)
{
    switch (mode) {
      case IsolateMode::Threads: return "threads";
      case IsolateMode::Procs: return "procs";
    }
    return "unknown";
}

CampaignResult
runCampaign(const CampaignConfig &config, const ProgressFn &progress,
            const obs::ProgressSink &sink)
{
    const auto events = effectiveEvents(config);
    std::vector<std::pair<EventKind, EventKind>> pairs;
    pairs.reserve(events.size() * events.size());
    for (auto a : events)
        for (auto b : events)
            pairs.emplace_back(a, b);
    return runCampaignPairs(config, pairs, progress, sink);
}

CampaignResult
runCampaignPairs(
    const CampaignConfig &config,
    const std::vector<std::pair<EventKind, EventKind>> &pairs,
    const ProgressFn &progress, const obs::ProgressSink &sink)
{
    const auto events = effectiveEvents(config);

    const auto runStart = std::chrono::steady_clock::now();

    SAVAT_TRACE_SPAN("campaign.run",
                     {{"machine", config.machineId},
                      {"pairs", pairs.size()},
                      {"reps", config.repetitions}});
    SAVAT_METRIC_TIMER("campaign.run_seconds");

    const std::string faultPlanText = [&config]() -> std::string {
        if (!config.faultPlan.empty())
            return config.faultPlan;
        const char *env = std::getenv("SAVAT_FAULT_PLAN");
        return env ? env : "";
    }();

    // Static validation of the whole campaign before any simulation
    // burns time; every error-level diagnostic is fatal here. The
    // resilience lint (retry policy, fault plan) rides the same
    // fail-fast gate.
    analysis::CampaignSpec spec;
    spec.name = "campaign(" + config.machineId + ")";
    spec.machineId = config.machineId;
    spec.events = events;
    spec.pairs = pairs;
    spec.repetitions = config.repetitions;
    spec.settings = toAnalysisSettings(config.meter, em::LoopAntenna());
    auto report = analysis::Checker().check(spec);
    const double pairBudgetSeconds =
        config.meter.alternation.inHz() > 0.0
            ? static_cast<double>(config.repetitions) *
                  static_cast<double>(config.meter.measurePeriods) /
                  config.meter.alternation.inHz()
            : 0.0;
    resilience::lintRetryPolicy(config.retry, pairBudgetSeconds,
                                report);
    if (!faultPlanText.empty())
        resilience::lintFaultPlan(faultPlanText, pairs.size(),
                                  report);
    if (report.hasErrors()) {
        SAVAT_FATAL("invalid campaign configuration:\n",
                    report.errorSummary());
    }

    resilience::FaultPlan faultPlan;
    resilience::parseFaultPlan(faultPlanText,
                               faultPlan); // lint vetted the text
    const resilience::FaultInjector injector(faultPlan, config.seed);
    if (injector.enabled())
        SAVAT_WARN("fault injection enabled: ", faultPlanText);

    CampaignResult result{config, SavatMatrix(events),
                          {},     {},
                          {},     {}};
    result.config.events = events;
    result.simulations.resize(events.size() * events.size());
    result.pairs = pairs;
    result.health.resize(pairs.size());

    const std::size_t npairs = pairs.size();
    if (npairs == 0)
        return result;

    // Shard pairs across workers; when the pair list is shorter
    // than the worker budget (bar-chart subsets on a big machine),
    // spend the leftover inside each cell's repetition loop.
    const std::size_t requested = support::resolveJobs(config.jobs);
    const std::size_t outerJobs =
        std::max<std::size_t>(1, std::min(requested, npairs));
    const std::size_t innerJobs =
        std::max<std::size_t>(1, requested / outerJobs);

    std::vector<PairOutcome> outcomes(npairs);
    std::vector<char> done(npairs, 0);
    std::atomic<std::size_t> nextPair{0};
    std::mutex progressMutex;
    std::size_t completed = 0;
    std::size_t checkpointWrites = 0;

    SAVAT_METRIC_GAUGE("campaign.jobs",
                       static_cast<double>(requested));
    SAVAT_METRIC_GAUGE("campaign.inner_jobs",
                       static_cast<double>(innerJobs));

    const std::string identity =
        resilience::hashCampaignIdentity(result.config);

    // The run journal streams one CRC-guarded JSONL event per cell
    // boundary (support/journal.hh). It never draws from an RNG
    // stream, so the matrix stays bit-identical with it on or off.
    obs::Journal journal;
    if (!config.journalPath.empty()) {
        std::string jerr;
        if (!journal.open(config.journalPath, &jerr))
            SAVAT_FATAL("cannot open run journal ",
                        config.journalPath, ": ", jerr);
        namespace json = support::json;
        json::Value f = json::Value::object();
        f.set("schema", obs::kJournalSchema);
        f.set("identity", identity);
        f.set("machine", config.machineId);
        f.set("machine_digest",
              format("%016llx",
                     static_cast<unsigned long long>(
                         uarch::configDigest(
                             uarch::machineById(config.machineId)))));
        f.set("channel",
              pipeline::channelName(config.meter.channel));
        f.set("speculation_window",
              static_cast<double>(config.meter.specWindow));
        json::Value evs = json::Value::array();
        for (auto e : events)
            evs.push(json::Value(kernels::eventName(e)));
        f.set("events", std::move(evs));
        f.set("pairs", pairs.size());
        f.set("reps", config.repetitions);
        f.set("seed", static_cast<double>(config.seed));
        f.set("jobs", requested);
        f.set("jobs_requested", config.jobs);
        f.set("isolate", isolateModeName(config.isolate));
        if (config.isolate == IsolateMode::Procs)
            f.set("workers", config.workers > 0 ? config.workers
                                                : requested);
        f.set("simd", dsp::simd::levelName(dsp::simd::active()));
        f.set("build", obs::buildDescribe());
        if (!faultPlanText.empty())
            f.set("fault_plan", faultPlanText);
        if (!config.checkpointPath.empty())
            f.set("checkpoint", config.checkpointPath);
        if (!config.resumePath.empty())
            f.set("resume", config.resumePath);
        journal.emit("run-start", std::move(f));
    }

    // Health-aware progress state, maintained under progressMutex
    // alongside `completed` and fed to the sink after every cell.
    obs::ProgressCounts counts;
    counts.total = npairs;

    /**
     * Serialize every finished cell to the checkpoint file. Caller
     * holds progressMutex (done[] and the health slots of finished
     * pairs are written under the same mutex), so the snapshot is
     * consistent even while other workers measure.
     */
    const auto writeCheckpointLocked = [&]() {
        if (config.checkpointPath.empty())
            return;
        resilience::CampaignCheckpoint cp;
        cp.identity = identity;
        cp.machineId = config.machineId;
        cp.events = events;
        cp.repetitions = config.repetitions;
        cp.keepTraces = config.keepTraces;
        for (std::size_t p = 0; p < npairs; ++p) {
            const auto &slot = outcomes[p];
            if (!done[p] || slot.ia < 0 || slot.ib < 0)
                continue;
            resilience::CampaignCheckpoint::Cell cell;
            cell.a = pairs[p].first;
            cell.b = pairs[p].second;
            cell.sim = slot.sim;
            cell.samples = slot.samples;
            cell.traces = slot.traces;
            const auto &h = result.health[p];
            cell.attempts = h.attempts;
            cell.backoffSeconds = h.backoffSeconds;
            cell.lastError = h.lastError;
            cp.cells.push_back(std::move(cell));
        }
        const bool truncate =
            injector.truncateCheckpointWrite(checkpointWrites);
        ++checkpointWrites;
        std::string error;
        if (!resilience::writeCheckpointFile(
                config.checkpointPath, cp, truncate, &error)) {
            SAVAT_WARN("checkpoint write failed: ", error);
            return;
        }
        SAVAT_METRIC_COUNT("resilience.checkpoint_writes");
        if (truncate)
            SAVAT_WARN("fault injection truncated checkpoint "
                       "write ",
                       checkpointWrites - 1);
        if (journal.isOpen()) {
            namespace json = support::json;
            json::Value f = json::Value::object();
            f.set("path", config.checkpointPath);
            f.set("ordinal", checkpointWrites - 1);
            f.set("cells", cp.cells.size());
            if (truncate)
                f.set("truncated", true);
            journal.emit("checkpoint-written", std::move(f));
        }
    };

    // Warm start: restore completed cells from the resume
    // checkpoint. Cells are matched by (A, B) event names, so a
    // checkpoint taken over any pair subset of this campaign is a
    // valid prefix; degraded or partially written cells are simply
    // re-measured.
    if (!config.resumePath.empty()) {
        const auto parsed =
            resilience::loadCheckpointFile(config.resumePath);
        if (!parsed.ok)
            SAVAT_FATAL("cannot resume from ", config.resumePath,
                        ": ", parsed.error);
        const auto &cp = parsed.checkpoint;
        if (cp.identity != identity)
            SAVAT_FATAL(
                "checkpoint ", config.resumePath, " (identity ",
                cp.identity, ", machine ", cp.machineId,
                ") does not match this campaign (identity ",
                identity, ", machine ", config.machineId,
                "): machine, channel, meter settings, events, "
                "repetitions and seed must all be identical to "
                "resume");
        std::unordered_map<
            std::pair<EventKind, EventKind>,
            const resilience::CampaignCheckpoint::Cell *,
            support::PairHash>
            index;
        for (const auto &cell : cp.cells)
            index.emplace(std::make_pair(cell.a, cell.b), &cell);
        std::size_t restored = 0;
        for (std::size_t p = 0; p < npairs; ++p) {
            const auto it = index.find(pairs[p]);
            if (it == index.end())
                continue;
            const auto &cell = *it->second;
            if (!cell.sim.measured() ||
                cell.samples.size() != config.repetitions)
                continue;
            if (config.keepTraces &&
                cell.traces.size() != config.repetitions)
                continue; // keepTraces needs every display
            auto &slot = outcomes[p];
            slot.ia = result.matrix.tryIndexOf(cell.a);
            slot.ib = result.matrix.tryIndexOf(cell.b);
            if (slot.ia < 0 || slot.ib < 0)
                continue;
            slot.sim = cell.sim;
            slot.samples = cell.samples;
            if (config.keepTraces)
                slot.traces = cell.traces;
            auto &h = result.health[p];
            h.state = pipeline::CellState::Measured;
            h.attempts = cell.attempts;
            h.backoffSeconds = cell.backoffSeconds;
            h.restored = true;
            h.lastError = cell.lastError;
            done[p] = 1;
            ++restored;
            if (journal.isOpen()) {
                namespace json = support::json;
                json::Value f = json::Value::object();
                f.set("pair", pairKey(cell.a, cell.b));
                f.set("a", kernels::eventName(cell.a));
                f.set("b", kernels::eventName(cell.b));
                f.set("state", journalStateName(h.state));
                f.set("attempts", h.attempts);
                f.set("backoff_s", h.backoffSeconds);
                f.set("wall_s", 0.0);
                f.set("cpu_s", 0.0);
                f.set("reps", slot.samples.size());
                f.set("savat_zj_mean", savatMeanZj(slot.samples));
                setSpeculationFields(f, slot.sim);
                f.set("restored", true);
                journal.emit("cell-done", std::move(f));
            }
        }
        completed = restored;
        counts.done = restored;
        counts.restored = restored;
        SAVAT_METRIC_ADD("resilience.cells_restored", restored);
        SAVAT_INFORM("resumed ", restored, " of ", npairs,
                     " pairs from ", config.resumePath);
        if (restored > 0) {
            if (progress)
                progress(completed, npairs);
            if (sink)
                sink(counts);
        }
    }

    // One prototype meter calibrates each event's steady-state CPI
    // up front (a deterministic per-event simulation); workers copy
    // the warmed cache instead of recalibrating it once per worker.
    auto prototype =
        SavatMeter::forMachine(config.machineId, config.meter);
    {
        SAVAT_TRACE_SPAN("campaign.calibrate",
                         {{"events", events.size()}});
        SAVAT_METRIC_TIMER("campaign.calibrate_seconds");
        for (auto e : events)
            prototype.iterationCycles(e);
    }

    /**
     * Process isolation: cells run in forked workers supervised by
     * savat::service::WorkerPool. The parent stays the only journal
     * and checkpoint writer; workers relay retries and injected
     * faults upstream as wire frames, and ship each finished cell
     * back as a one-cell checkpoint — the same lossless hexfloat
     * encoding resume uses — so proc-mode matrices are
     * byte-identical to thread-mode ones by construction. A worker
     * death charges the in-flight cell's crash budget
     * (retry.maxAttempts worker deaths); exhausting it quarantines
     * the cell as Degraded and the campaign still completes.
     */
    const auto runCellsInWorkerProcs = [&]() {
        const auto finishCell = [&](std::size_t p, double wall,
                                    double cpu) {
            const auto &[a, b] = pairs[p];
            const auto &health = result.health[p];
            const auto &slot = outcomes[p];
            done[p] = 1;
            ++completed;
            counts.done = completed;
            if (slot.ia < 0 || slot.ib < 0)
                ++counts.skipped;
            else {
                if (health.attempts > 1)
                    ++counts.retried;
                if (health.state == pipeline::CellState::Degraded)
                    ++counts.degraded;
            }
            if (journal.isOpen()) {
                namespace json = support::json;
                json::Value f = json::Value::object();
                f.set("pair", pairKey(a, b));
                f.set("a", kernels::eventName(a));
                f.set("b", kernels::eventName(b));
                f.set("state", journalStateName(health.state));
                f.set("attempts", health.attempts);
                f.set("backoff_s", health.backoffSeconds);
                f.set("wall_s", wall);
                f.set("cpu_s", cpu);
                f.set("reps", slot.samples.size());
                f.set("savat_zj_mean",
                      health.state == pipeline::CellState::Measured
                          ? savatMeanZj(slot.samples)
                          : 0.0);
                setSpeculationFields(f, slot.sim);
                if (!health.lastError.empty())
                    f.set("error", health.lastError);
                journal.emit("cell-done", std::move(f));
            }
            if (progress)
                progress(completed, npairs);
            if (sink)
                sink(counts);
            if (!config.checkpointPath.empty() &&
                config.checkpointEvery > 0 &&
                completed % config.checkpointEvery == 0)
                writeCheckpointLocked();
        };

        // Pairs outside the event matrix never reach a worker.
        std::vector<std::size_t> pending;
        pending.reserve(npairs);
        for (std::size_t p = 0; p < npairs; ++p) {
            if (done[p])
                continue;
            const auto &[a, b] = pairs[p];
            auto &slot = outcomes[p];
            slot.ia = result.matrix.tryIndexOf(a);
            slot.ib = result.matrix.tryIndexOf(b);
            if (slot.ia < 0 || slot.ib < 0) {
                SAVAT_METRIC_COUNT("campaign.pairs_skipped");
                SAVAT_WARN("skipping pair ", kernels::eventName(a),
                           "/", kernels::eventName(b),
                           ": event not in the campaign matrix");
                finishCell(p, 0.0, 0.0);
                continue;
            }
            pending.push_back(p);
        }
        if (pending.empty())
            return;

        service::PoolConfig pool;
        pool.workers =
            config.workers > 0 ? config.workers : requested;
        pool.cellDeadlineSeconds = config.cellDeadlineSeconds;
        pool.restart = config.retry;

        service::PoolCallbacks cb;
        cb.onCellDone = [&](std::size_t p, double wall, double cpu,
                            const std::string &payload) {
            auto &slot = outcomes[p];
            auto &health = result.health[p];
            const auto &[a, b] = pairs[p];
            std::istringstream is(payload);
            auto parsed = resilience::loadCheckpoint(is);
            if (!parsed.ok || parsed.checkpoint.cells.size() != 1) {
                // Unreachable under a CRC-clean wire; degrade the
                // cell honestly instead of aborting the campaign.
                health.state = pipeline::CellState::Degraded;
                health.attempts = config.retry.maxAttempts;
                health.lastError =
                    "unreadable worker payload: " +
                    (parsed.ok ? std::string("cell count mismatch")
                               : parsed.error);
                slot.sim.a = a;
                slot.sim.b = b;
                slot.sim.state = pipeline::CellState::Degraded;
            } else {
                auto &cell = parsed.checkpoint.cells.front();
                slot.sim = std::move(cell.sim);
                slot.samples = std::move(cell.samples);
                if (config.keepTraces)
                    slot.traces = std::move(cell.traces);
                health.state = slot.sim.state;
                health.attempts = cell.attempts;
                health.backoffSeconds = cell.backoffSeconds;
                health.lastError = cell.lastError;
            }
            SAVAT_METRIC_COUNT("campaign.cells");
            SAVAT_METRIC_ADD("campaign.reps", config.repetitions);
            finishCell(p, wall, cpu);
        };
        cb.onCellRetry = [&](std::size_t p, std::size_t attempt,
                             double backoffSeconds,
                             const std::string &error) {
            if (!journal.isOpen())
                return;
            namespace json = support::json;
            json::Value f = json::Value::object();
            f.set("pair", pairKey(pairs[p].first, pairs[p].second));
            f.set("attempt", attempt);
            f.set("error", error);
            f.set("backoff_s", backoffSeconds);
            journal.emit("cell-retry", std::move(f));
        };
        cb.onCellFault = [&](std::size_t p, std::size_t attempt,
                             const std::string &kind) {
            if (!journal.isOpen())
                return;
            namespace json = support::json;
            json::Value f = json::Value::object();
            f.set("pair", pairKey(pairs[p].first, pairs[p].second));
            f.set("kind", kind);
            f.set("attempt", attempt);
            journal.emit("fault-injected", std::move(f));
        };
        cb.onQuarantine = [&](std::size_t p, std::size_t crashes,
                              const std::string &reason) {
            const auto &[a, b] = pairs[p];
            auto &slot = outcomes[p];
            auto &health = result.health[p];
            health.state = pipeline::CellState::Degraded;
            health.attempts = crashes;
            health.lastError = "worker lost: " + reason;
            slot.sim.a = a;
            slot.sim.b = b;
            slot.sim.state = pipeline::CellState::Degraded;
            SAVAT_WARN("quarantined pair ", kernels::eventName(a),
                       "/", kernels::eventName(b), " after ",
                       crashes, " worker deaths (", reason, ")");
            if (journal.isOpen()) {
                namespace json = support::json;
                json::Value f = json::Value::object();
                f.set("pair", pairKey(a, b));
                f.set("crashes", crashes);
                f.set("reason", reason);
                journal.emit("cell-quarantined", std::move(f));
            }
            finishCell(p, 0.0, 0.0);
        };
        cb.onWorkerEvent = [&](std::size_t wslot, std::int64_t pid,
                               service::WorkerEvent event,
                               const std::string &detail) {
            if (event == service::WorkerEvent::Died)
                SAVAT_WARN("worker ", wslot, " died: ", detail);
            if (!journal.isOpen())
                return;
            namespace json = support::json;
            json::Value f = json::Value::object();
            f.set("slot", wslot);
            f.set("pid", static_cast<double>(pid));
            f.set("detail", detail);
            journal.emit(service::workerEventName(event),
                         std::move(f));
        };
        cb.onWorkerLoss = [&]() {
            // Keep crash survivability transitive: progress made
            // before a worker died is durable even if the
            // supervisor is lost next.
            if (!config.checkpointPath.empty())
                writeCheckpointLocked();
        };

        service::WorkerFactory factory = [&]() -> service::CellFn {
            // Runs once inside each freshly forked worker: the
            // child builds its meter from the parent's warmed
            // prototype (a copy-on-write snapshot, so calibration
            // never repeats).
            auto meter = std::make_shared<SavatMeter>(prototype);
            auto scratch =
                std::make_shared<pipeline::MeasureScratch>();
            return [&, meter, scratch](
                       service::WorkerContext &ctx, std::size_t p,
                       std::size_t dispatchAttempt) -> std::string {
                const auto &[a, b] = pairs[p];
                PairOutcome slot;
                slot.ia = result.matrix.tryIndexOf(a);
                slot.ib = result.matrix.tryIndexOf(b);
                const auto outcome = runGuardedCell(
                    *meter, config, injector, p, a, b,
                    /*innerJobs=*/1, *scratch, slot,
                    [&ctx](resilience::FaultKind kind,
                           std::size_t attempt) {
                        ctx.reportFault(
                            attempt + 1,
                            resilience::faultKindName(kind));
                    },
                    [&ctx](std::size_t attempt,
                           const std::string &error,
                           double backoffSeconds) {
                        ctx.reportRetry(attempt, backoffSeconds,
                                        error);
                    });
                // Die faults route through the worker here: exit
                // before reporting the cell so the supervisor sees
                // a crashed worker holding it. Non-`:always` rules
                // fire on the first dispatch only, so the
                // re-dispatched cell recovers on the replacement
                // worker.
                if (const auto *rule = injector.dieRule(p)) {
                    if (dispatchAttempt == 0 || rule->always) {
                        ctx.reportFault(dispatchAttempt + 1, "die");
                        SAVAT_WARN("injected fault: worker dying "
                                   "on pair ",
                                   p);
                        std::_Exit(137);
                    }
                }
                resilience::CampaignCheckpoint cp;
                cp.identity = identity;
                cp.machineId = config.machineId;
                cp.events = events;
                cp.repetitions = config.repetitions;
                cp.keepTraces = config.keepTraces;
                resilience::CampaignCheckpoint::Cell cell;
                cell.a = a;
                cell.b = b;
                cell.sim = slot.sim;
                cell.samples = slot.samples;
                cell.traces = slot.traces;
                cell.attempts = outcome.attempts;
                cell.backoffSeconds = outcome.backoffSeconds;
                cell.lastError = outcome.lastError;
                cp.cells.push_back(std::move(cell));
                std::ostringstream os;
                resilience::saveCheckpoint(os, cp);
                return os.str();
            };
        };

        service::runPool(pool, pending, factory, cb);
    };

    if (config.isolate == IsolateMode::Procs)
        runCellsInWorkerProcs();
    else
        support::runWorkers(outerJobs, [&](std::size_t) {
            // Worker-owned meter: the pair caches stay thread-local so
            // the hot path takes no locks. The caches hold deterministic
            // values, so per-worker ownership does not affect output.
            obs::setCurrentWorker(support::currentWorker());
            auto meter = prototype;
            pipeline::MeasureScratch scratch;
            for (std::size_t p = nextPair.fetch_add(1); p < npairs;
                 p = nextPair.fetch_add(1)) {
                auto &slot = outcomes[p];
                if (done[p])
                    continue; // restored from the resume checkpoint
                const auto &[a, b] = pairs[p];
                slot.ia = result.matrix.tryIndexOf(a);
                slot.ib = result.matrix.tryIndexOf(b);
                auto &health = result.health[p];
                double cellWall = 0.0;
                double cellCpu = 0.0;
                if (slot.ia < 0 || slot.ib < 0) {
                    SAVAT_METRIC_COUNT("campaign.pairs_skipped");
                    SAVAT_WARN("skipping pair ", kernels::eventName(a),
                               "/", kernels::eventName(b),
                               ": event not in the campaign matrix");
                } else {
                    if (journal.isOpen()) {
                        namespace json = support::json;
                        json::Value f = json::Value::object();
                        f.set("pair", pairKey(a, b));
                        f.set("a", kernels::eventName(a));
                        f.set("b", kernels::eventName(b));
                        f.set("index", p);
                        f.set("worker", obs::currentWorker());
                        journal.emit("cell-start", std::move(f));
                    }
                    const auto cellStart =
                        std::chrono::steady_clock::now();
                    const double cpu0 = threadCpuSeconds();
                    SAVAT_TRACE_SPAN("campaign.cell",
                                     {{"a", kernels::eventName(a)},
                                      {"b", kernels::eventName(b)},
                                      {"reps", config.repetitions}});
                    SAVAT_METRIC_TIMER("campaign.cell_seconds");
                    // Containment: exceptions and non-finite outputs
                    // degrade this cell after bounded retries instead
                    // of aborting the campaign. measureCell re-forks
                    // its repetition streams from the cell stream on
                    // every attempt, so a retry that succeeds produces
                    // exactly the samples an undisturbed run would.
                    const auto outcome = runGuardedCell(
                        meter, config, injector, p, a, b, innerJobs,
                        scratch, slot,
                        [&](resilience::FaultKind kind,
                            std::size_t attempt) {
                            if (!journal.isOpen())
                                return;
                            namespace json = support::json;
                            json::Value f = json::Value::object();
                            f.set("pair", pairKey(a, b));
                            f.set("kind",
                                  resilience::faultKindName(kind));
                            f.set("attempt", attempt + 1);
                            journal.emit("fault-injected",
                                         std::move(f));
                        },
                        [&](std::size_t attempt,
                            const std::string &error,
                            double backoffSeconds) {
                            if (!journal.isOpen())
                                return;
                            namespace json = support::json;
                            json::Value f = json::Value::object();
                            f.set("pair", pairKey(a, b));
                            f.set("attempt", attempt);
                            f.set("error", error);
                            f.set("backoff_s", backoffSeconds);
                            journal.emit("cell-retry", std::move(f));
                        });
                    cellWall = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   cellStart)
                                   .count();
                    cellCpu = threadCpuSeconds() - cpu0;
                    health.state = outcome.state;
                    health.attempts = outcome.attempts;
                    health.backoffSeconds = outcome.backoffSeconds;
                    health.lastError = outcome.lastError;
                    SAVAT_METRIC_COUNT("campaign.cells");
                    SAVAT_METRIC_ADD("campaign.reps",
                                     config.repetitions);
                }
                {
                    const std::lock_guard<std::mutex> lock(
                        progressMutex);
                    done[p] = 1;
                    ++completed;
                    counts.done = completed;
                    if (slot.ia < 0 || slot.ib < 0)
                        ++counts.skipped;
                    else {
                        if (health.attempts > 1)
                            ++counts.retried;
                        if (health.state ==
                            pipeline::CellState::Degraded)
                            ++counts.degraded;
                    }
                    if (journal.isOpen()) {
                        namespace json = support::json;
                        json::Value f = json::Value::object();
                        f.set("pair", pairKey(a, b));
                        f.set("a", kernels::eventName(a));
                        f.set("b", kernels::eventName(b));
                        f.set("state",
                              journalStateName(health.state));
                        f.set("attempts", health.attempts);
                        f.set("backoff_s", health.backoffSeconds);
                        f.set("wall_s", cellWall);
                        f.set("cpu_s", cellCpu);
                        f.set("reps", slot.samples.size());
                        f.set("savat_zj_mean",
                              health.state ==
                                      pipeline::CellState::Measured
                                  ? savatMeanZj(slot.samples)
                                  : 0.0);
                        setSpeculationFields(f, slot.sim);
                        if (!health.lastError.empty())
                            f.set("error", health.lastError);
                        journal.emit("cell-done", std::move(f));
                    }
                    if (progress)
                        progress(completed, npairs);
                    if (sink)
                        sink(counts);
                    if (!config.checkpointPath.empty() &&
                        config.checkpointEvery > 0 &&
                        completed % config.checkpointEvery == 0)
                        writeCheckpointLocked();
                    if (injector.dieAfterPair(p)) {
                        // Flush first so the next run can resume, then
                        // die without unwinding -- the faithful analog
                        // of a kill -9 mid-campaign.
                        writeCheckpointLocked();
                        if (journal.isOpen()) {
                            namespace json = support::json;
                            json::Value f = json::Value::object();
                            f.set("pair", pairKey(a, b));
                            f.set("kind", "die");
                            journal.emit("fault-injected",
                                         std::move(f));
                            journal.dumpCrash("fault-plan die");
                        }
                        SAVAT_WARN("injected fault: dying after pair ",
                                   p);
                        std::_Exit(137);
                    }
                }
            }
        });

    // Final checkpoint: a finished campaign's file restores every
    // cell, so resuming it is a no-op re-merge. Written before the
    // merge below moves the outcomes out.
    if (!config.checkpointPath.empty()) {
        const std::lock_guard<std::mutex> lock(progressMutex);
        writeCheckpointLocked();
    }

    // Serial merge in request order: samples land in each cell in
    // exactly the order the serial loop would have appended them.
    // Degraded cells keep their failure record in simulations[] and
    // health[] but contribute nothing to the matrix.
    SAVAT_TRACE_SPAN("campaign.merge", {{"pairs", npairs}});
    if (config.keepTraces)
        result.traces.resize(npairs);
    for (std::size_t p = 0; p < npairs; ++p) {
        auto &slot = outcomes[p];
        if (slot.ia < 0 || slot.ib < 0)
            continue;
        const auto ia = static_cast<std::size_t>(slot.ia);
        const auto ib = static_cast<std::size_t>(slot.ib);
        if (!slot.sim.measured()) {
            result.simulations[ia * events.size() + ib] =
                std::move(slot.sim);
            continue;
        }
        for (double zj : slot.samples)
            result.matrix.addSample(ia, ib, zj);
        result.simulations[ia * events.size() + ib] =
            std::move(slot.sim);
        if (config.keepTraces)
            result.traces[p] = std::move(slot.traces);
    }

    if (journal.isOpen()) {
        namespace json = support::json;
        json::Value f = json::Value::object();
        f.set("wall_s", std::chrono::duration<double>(
                            std::chrono::steady_clock::now() -
                            runStart)
                            .count());
        f.set("cells", completed);
        f.set("retried", counts.retried);
        f.set("degraded", counts.degraded);
        f.set("skipped", counts.skipped);
        f.set("restored", counts.restored);
        if (obs::metricsEnabled())
            f.set("metrics",
                  obs::metricsSnapshotToJson(
                      obs::Registry::instance().snapshot()));
        journal.emit("run-end", std::move(f));
        journal.close();
    }
    return result;
}

pipeline::TraceRecording
recordCampaign(const CampaignResult &result)
{
    SAVAT_ASSERT(result.config.keepTraces,
                 "recordCampaign needs a keepTraces campaign");
    SAVAT_ASSERT(result.traces.size() == result.pairs.size(),
                 "trace/pair bookkeeping mismatch");

    pipeline::TraceRecording rec;
    rec.machineId = result.config.machineId;
    rec.events = result.matrix.events();
    rec.alternationHz = result.config.meter.alternation.inHz();
    rec.bandHz = result.config.meter.bandHz;
    rec.channel = pipeline::channelName(result.config.meter.channel);

    for (std::size_t p = 0; p < result.pairs.size(); ++p) {
        const auto &[a, b] = result.pairs[p];
        const auto ia = result.matrix.tryIndexOf(a);
        const auto ib = result.matrix.tryIndexOf(b);
        if (ia < 0 || ib < 0)
            continue; // skipped with a warning during the run
        const auto &sim = result.simulations
            [static_cast<std::size_t>(ia) * result.matrix.size() +
             static_cast<std::size_t>(ib)];
        if (!sim.measured()) {
            // A degraded cell has no trustworthy displays; the
            // recording simply omits it, mirroring the matrix.
            SAVAT_WARN("recording omits ", cellStateName(sim.state),
                       " pair ", kernels::eventName(a), "/",
                       kernels::eventName(b));
            continue;
        }
        pipeline::TraceRecording::Cell cell;
        cell.a = a;
        cell.b = b;
        cell.pairsPerSecond = sim.pairsPerSecond;
        cell.traces = result.traces[p];
        rec.cells.push_back(std::move(cell));
    }
    return rec;
}

SavatMatrix
replayMatrix(const pipeline::TraceRecording &recording)
{
    SavatMatrix matrix(recording.events);
    for (const auto &cell : pipeline::replayAll(recording)) {
        const auto ia = matrix.indexOf(cell.a);
        const auto ib = matrix.indexOf(cell.b);
        for (const auto &s : cell.samples)
            matrix.addSample(ia, ib, s.savat.inZepto());
    }
    return matrix;
}

} // namespace savat::core
