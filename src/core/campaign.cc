#include "core/campaign.hh"

#include "analysis/checker.hh"
#include "support/logging.hh"

namespace savat::core {

using kernels::EventKind;

namespace {

std::vector<EventKind>
effectiveEvents(const CampaignConfig &config)
{
    return config.events.empty() ? kernels::allEvents() : config.events;
}

/** Deterministic per-cell RNG stream. */
Rng
cellRng(const CampaignConfig &config, std::size_t a, std::size_t b)
{
    const std::uint64_t mix =
        config.seed ^ (0x9E3779B97F4A7C15ull * (a * 131 + b + 1));
    return Rng(mix);
}

} // namespace

CampaignResult
runCampaign(const CampaignConfig &config, const ProgressFn &progress)
{
    const auto events = effectiveEvents(config);
    std::vector<std::pair<EventKind, EventKind>> pairs;
    pairs.reserve(events.size() * events.size());
    for (auto a : events)
        for (auto b : events)
            pairs.emplace_back(a, b);
    return runCampaignPairs(config, pairs, progress);
}

CampaignResult
runCampaignPairs(
    const CampaignConfig &config,
    const std::vector<std::pair<EventKind, EventKind>> &pairs,
    const ProgressFn &progress)
{
    const auto events = effectiveEvents(config);

    // Static validation of the whole campaign before any simulation
    // burns time; every error-level diagnostic is fatal here.
    analysis::CampaignSpec spec;
    spec.name = "campaign(" + config.machineId + ")";
    spec.machineId = config.machineId;
    spec.events = events;
    spec.pairs = pairs;
    spec.repetitions = config.repetitions;
    spec.settings = toAnalysisSettings(config.meter, em::LoopAntenna());
    const auto report = analysis::Checker().check(spec);
    if (report.hasErrors()) {
        SAVAT_FATAL("invalid campaign configuration:\n",
                    report.errorSummary());
    }

    CampaignResult result{config, SavatMatrix(events), {}};
    result.config.events = events;
    result.simulations.resize(events.size() * events.size());

    auto meter = SavatMeter::forMachine(config.machineId, config.meter);

    std::size_t done = 0;
    for (const auto &[a, b] : pairs) {
        const std::size_t ia = result.matrix.indexOf(a);
        const std::size_t ib = result.matrix.indexOf(b);
        const auto &sim = meter.simulatePair(a, b);
        result.simulations[ia * events.size() + ib] = sim;

        Rng rng = cellRng(config, ia, ib);
        for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
            auto rep_rng = rng.fork();
            const auto m = meter.measure(sim, rep_rng);
            result.matrix.addSample(ia, ib, m.savat.inZepto());
        }
        ++done;
        if (progress)
            progress(done, pairs.size());
    }
    return result;
}

} // namespace savat::core
