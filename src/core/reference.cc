#include "core/reference.hh"

#include <cmath>

#include "support/logging.hh"
#include "support/stats.hh"

namespace savat::core {

using kernels::EventKind;

namespace {

std::vector<EventKind>
paperOrder()
{
    return kernels::allEvents();
}

ReferenceMatrix
makeMatrix(const char *figure, const char *machine, double distance_cm,
           std::initializer_list<std::initializer_list<double>> rows)
{
    ReferenceMatrix m;
    m.figure = figure;
    m.machine = machine;
    m.distanceCm = distance_cm;
    m.events = paperOrder();
    for (const auto &row : rows)
        m.zj.emplace_back(row);
    SAVAT_ASSERT(m.zj.size() == m.events.size(),
                 "reference matrix row count");
    for (const auto &row : m.zj) {
        SAVAT_ASSERT(row.size() == m.events.size(),
                     "reference matrix column count");
    }
    return m;
}

} // namespace

const ReferenceMatrix &
figure9Core2Duo()
{
    // Rows are the A instruction, columns the B instruction, in the
    // order LDM STM LDL2 STL2 LDL1 STL1 NOI ADD SUB MUL DIV.
    static const ReferenceMatrix m = makeMatrix(
        "Figure 9", "core2duo", 10.0,
        {
            {1.8, 2.4, 7.9, 11.5, 4.6, 4.4, 4.3, 4.2, 4.4, 4.2, 5.1},
            {2.3, 2.4, 8.8, 11.8, 4.3, 4.2, 3.8, 3.9, 3.9, 4.3, 4.2},
            {7.7, 7.7, 0.6, 0.8, 3.9, 3.5, 4.3, 3.6, 4.8, 3.8, 6.2},
            {11.5, 10.6, 0.8, 0.7, 5.1, 6.1, 6.1, 6.1, 6.1, 6.2, 10.1},
            {4.4, 4.2, 3.3, 5.8, 0.7, 0.6, 0.7, 0.7, 0.7, 0.7, 1.3},
            {4.5, 4.2, 3.8, 4.9, 0.7, 0.6, 0.7, 0.6, 0.6, 0.6, 1.2},
            {4.1, 3.8, 4.1, 6.4, 0.7, 0.7, 0.6, 0.6, 0.7, 0.6, 1.0},
            {4.2, 4.1, 4.1, 7.0, 0.7, 0.7, 0.6, 0.7, 0.6, 0.6, 1.0},
            {4.4, 4.0, 3.8, 7.3, 0.7, 0.6, 0.7, 0.6, 0.6, 0.6, 1.1},
            {4.4, 3.9, 3.7, 5.7, 0.7, 0.7, 0.6, 0.6, 0.6, 0.6, 1.1},
            {5.0, 4.6, 6.9, 9.3, 1.3, 1.2, 1.0, 1.1, 1.1, 1.1, 0.8},
        });
    return m;
}

const ReferenceMatrix &
figure17Core2Duo50cm()
{
    static const ReferenceMatrix m = makeMatrix(
        "Figure 17", "core2duo", 50.0,
        {
            {1.7, 1.9, 1.3, 1.3, 1.2, 1.2, 1.2, 1.2, 1.2, 1.2, 1.3},
            {2.0, 2.2, 1.5, 1.6, 1.4, 1.4, 1.4, 1.4, 1.4, 1.4, 1.5},
            {1.2, 1.5, 0.6, 0.6, 0.7, 0.7, 0.6, 0.7, 0.7, 0.7, 0.8},
            {1.3, 1.6, 0.6, 0.6, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.9},
            {1.2, 1.4, 0.6, 0.7, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7},
            {1.2, 1.4, 0.7, 0.7, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7},
            {1.2, 1.4, 0.7, 0.7, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7},
            {1.2, 1.4, 0.7, 0.7, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7},
            {1.2, 1.4, 0.7, 0.7, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7},
            {1.2, 1.4, 0.6, 0.7, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7},
            {1.3, 1.5, 0.8, 0.9, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.8},
        });
    return m;
}

const ReferenceMatrix &
figure18Core2Duo100cm()
{
    static const ReferenceMatrix m = makeMatrix(
        "Figure 18", "core2duo", 100.0,
        {
            {1.7, 1.9, 1.2, 1.2, 1.2, 1.1, 1.1, 1.1, 1.2, 1.1, 1.3},
            {2.0, 2.2, 1.4, 1.4, 1.4, 1.4, 1.4, 1.4, 1.4, 1.4, 1.5},
            {1.2, 1.4, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7},
            {1.2, 1.4, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7},
            {1.2, 1.4, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7},
            {1.2, 1.4, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7},
            {1.2, 1.4, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7},
            {1.2, 1.4, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7},
            {1.2, 1.4, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7},
            {1.2, 1.4, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7},
            {1.3, 1.5, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.8},
        });
    return m;
}

std::vector<ReferenceAnchor>
pentium3mAnchors()
{
    // Prose-corroborated values: off-chip accesses dominate, LDM
    // louder than STM, DIV an order of magnitude above ADD/MUL.
    return {
        {EventKind::ADD, EventKind::LDM, 26.5},
        {EventKind::ADD, EventKind::STM, 11.3},
        {EventKind::ADD, EventKind::LDL2, 3.4},
        {EventKind::ADD, EventKind::STL2, 6.4},
        {EventKind::ADD, EventKind::DIV, 10.0},
        {EventKind::ADD, EventKind::MUL, 0.9},
        {EventKind::ADD, EventKind::ADD, 0.9},
        {EventKind::DIV, EventKind::DIV, 1.9},
    };
}

std::vector<ReferenceAnchor>
turionx2Anchors()
{
    // "Very similar results ... except that the DIV instruction here
    // has even higher SAVAT values - they rival those of off-chip
    // memory accesses."
    return {
        {EventKind::ADD, EventKind::LDM, 14.3},
        {EventKind::ADD, EventKind::STM, 3.5},
        {EventKind::ADD, EventKind::LDL2, 6.9},
        {EventKind::ADD, EventKind::DIV, 13.4},
        {EventKind::ADD, EventKind::MUL, 0.9},
        {EventKind::ADD, EventKind::ADD, 0.9},
        {EventKind::DIV, EventKind::DIV, 4.3},
    };
}

std::vector<std::pair<EventKind, EventKind>>
selectedBarPairs()
{
    // The pairings of Figures 11/13/15/16, in display order.
    return {
        {EventKind::ADD, EventKind::ADD},
        {EventKind::ADD, EventKind::MUL},
        {EventKind::ADD, EventKind::LDL1},
        {EventKind::ADD, EventKind::DIV},
        {EventKind::ADD, EventKind::LDL2},
        {EventKind::ADD, EventKind::LDM},
        {EventKind::LDL1, EventKind::LDL2},
        {EventKind::LDL2, EventKind::LDM},
        {EventKind::STL1, EventKind::STL2},
        {EventKind::STL2, EventKind::STM},
        {EventKind::STL2, EventKind::DIV},
    };
}

namespace {

/** Flatten reference and simulated means over matching cells. */
void
flatten(const SavatMatrix &sim, const ReferenceMatrix &ref,
        std::vector<double> &s, std::vector<double> &r)
{
    for (std::size_t a = 0; a < ref.events.size(); ++a) {
        for (std::size_t b = 0; b < ref.events.size(); ++b) {
            const auto ia = sim.indexOf(ref.events[a]);
            const auto ib = sim.indexOf(ref.events[b]);
            if (sim.samples(ia, ib).empty())
                continue;
            s.push_back(sim.mean(ia, ib));
            r.push_back(ref.zj[a][b]);
        }
    }
}

} // namespace

double
rankCorrelation(const SavatMatrix &sim, const ReferenceMatrix &ref)
{
    std::vector<double> s, r;
    flatten(sim, ref, s, r);
    return spearman(s, r);
}

double
logCorrelation(const SavatMatrix &sim, const ReferenceMatrix &ref)
{
    std::vector<double> s, r;
    flatten(sim, ref, s, r);
    for (auto &v : s)
        v = std::log(std::max(v, 1e-3));
    for (auto &v : r)
        v = std::log(std::max(v, 1e-3));
    return pearson(s, r);
}

} // namespace savat::core
