/**
 * @file
 * Report rendering: the same rows/figures the paper prints.
 */

#ifndef SAVAT_CORE_REPORT_HH
#define SAVAT_CORE_REPORT_HH

#include <ostream>
#include <string>

#include "core/campaign.hh"
#include "core/matrix.hh"
#include "spectrum/analyzer.hh"

namespace savat::core {

/** Figure-9-style value table (zJ, one decimal). */
void printMatrixTable(std::ostream &os, const SavatMatrix &matrix);

/** Figure-10-style grayscale visualization (ASCII ramp). */
void printMatrixHeatmap(std::ostream &os, const SavatMatrix &matrix);

/** Figure-11-style bar chart over the selected pairings. */
void printSelectedBars(std::ostream &os, const SavatMatrix &matrix);

/** CSV dump of the matrix means (with stddev columns). */
void printMatrixCsv(std::ostream &os, const SavatMatrix &matrix);

/**
 * Regression-fixture dump: every cell's raw samples as C99 hexfloats
 * (%a), so bit-identical campaigns produce byte-identical output.
 * The golden-matrix test and check.sh compare against a checked-in
 * fixture in this format.
 */
void printMatrixFixture(std::ostream &os, const SavatMatrix &matrix);

/**
 * Campaign summary: validation statistics (diagonal-minimum count,
 * repeatability, symmetry) plus per-pair timing diagnostics.
 */
void printCampaignSummary(std::ostream &os, const CampaignResult &result);

/**
 * Figure-7/8-style spectrum listing: PSD versus frequency around the
 * alternation band, in fixed-width columns (and a crude ASCII plot).
 */
void printSpectrum(std::ostream &os, const spectrum::Trace &trace,
                   double bandLoHz, double bandHiHz);

} // namespace savat::core

#endif // SAVAT_CORE_REPORT_HH
