#include "core/meter.hh"

#include <cmath>

#include "dsp/fft.hh"
#include "support/logging.hh"
#include "support/obs.hh"

namespace savat::core {

using kernels::EventKind;
using kernels::Marks;

namespace {

/** ActivitySink that records only while enabled. */
class GatedTrace : public uarch::ActivitySink
{
  public:
    void
    record(uarch::MicroEvent ev, std::uint64_t start,
           std::uint32_t duration) override
    {
        if (enabled)
            trace.record(ev, start, duration);
    }

    bool enabled = false;
    uarch::ActivityTrace trace;
};

} // namespace

analysis::MeasurementSettings
toAnalysisSettings(const MeterConfig &config,
                   const em::LoopAntenna &antenna)
{
    analysis::MeasurementSettings s;
    s.alternation = config.alternation;
    s.distance = config.distance;
    s.pairing = config.pairing;
    s.measurePeriods = config.measurePeriods;
    s.bandHz = config.bandHz;
    s.spanHz = config.spanHz;
    s.rbwHz = config.rbwHz;
    s.powerRail = config.sideChannel == SideChannel::Power;
    s.antennaCorner = antenna.corner();
    s.antennaMax = antenna.maxFrequency();
    return s;
}

SavatMeter::SavatMeter(uarch::MachineConfig machine,
                       em::ReceivedSignalSynthesizer synth,
                       MeterConfig config)
    : _machine(std::move(machine)),
      _synth(std::move(synth)),
      _config(config)
{
    const auto report = validate();
    if (report.hasErrors()) {
        SAVAT_FATAL("invalid measurement configuration:\n",
                    report.errorSummary());
    }
}

analysis::Report
SavatMeter::validate() const
{
    return analysis::Checker().checkMeasurement(
        _machine, toAnalysisSettings(_config, _synth.antenna()));
}

SavatMeter
SavatMeter::forMachine(const std::string &machineId, MeterConfig config)
{
    auto machine = uarch::machineById(machineId);
    em::ReceivedSignalSynthesizer synth(
        em::emissionProfileFor(machineId), em::DistanceModel(),
        em::LoopAntenna(), em::EnvironmentConfig());
    return SavatMeter(std::move(machine), std::move(synth), config);
}

double
SavatMeter::iterationCycles(EventKind e)
{
    auto it = _cpiCache.find(e);
    if (it != _cpiCache.end()) {
        SAVAT_METRIC_COUNT("meter.cpi_cache_hits");
        return it->second;
    }
    SAVAT_TRACE_SPAN("meter.calibrate_cpi",
                     {{"event", kernels::eventName(e)}});
    SAVAT_METRIC_TIMER("meter.cpi_calibration_seconds");
    SAVAT_METRIC_COUNT("meter.cpi_calibrations");
    const double cpi = kernels::measureIterationCycles(_machine, e);
    _cpiCache.emplace(e, cpi);
    return cpi;
}

const PairSimulation &
SavatMeter::simulatePair(EventKind a, EventKind b)
{
    const auto key = std::make_pair(a, b);
    auto it = _pairCache.find(key);
    if (it != _pairCache.end()) {
        SAVAT_METRIC_COUNT("meter.pair_cache_hits");
        return it->second;
    }
    SAVAT_TRACE_SPAN("meter.simulate_pair",
                     {{"a", kernels::eventName(a)},
                      {"b", kernels::eventName(b)}});
    SAVAT_METRIC_TIMER("meter.simulate_seconds");
    SAVAT_METRIC_COUNT("meter.pair_simulations");
    const auto report = analysis::Checker().checkPair(
        _machine, a, b,
        toAnalysisSettings(_config, _synth.antenna()));
    if (report.hasErrors()) {
        SAVAT_FATAL("refusing to measure ", kernels::eventName(a),
                    "/", kernels::eventName(b), ":\n",
                    report.errorSummary());
    }
    auto sim = runPairSimulation(a, b);
    return _pairCache.emplace(key, std::move(sim)).first->second;
}

PairSimulation
SavatMeter::runPairSimulation(EventKind a, EventKind b)
{
    AlternationSpec spec;
    spec.build = [this, a, b](std::uint64_t ca, std::uint64_t cb) {
        return kernels::buildAlternationKernel(_machine, a, b, ca,
                                               cb);
    };
    spec.cpiA = iterationCycles(a);
    spec.cpiB = iterationCycles(b);
    spec.footprintA = kernels::footprintBytes(a, _machine);
    spec.footprintB = kernels::footprintBytes(b, _machine);
    spec.prefillA = kernels::isLoadEvent(a);
    spec.prefillB = kernels::isLoadEvent(b);
    spec.labelA = a;
    spec.labelB = b;
    return runAlternation(spec);
}

const PairSimulation &
SavatMeter::simulateSequencePair(const kernels::EventSequence &a,
                                 const kernels::EventSequence &b)
{
    const auto key = std::make_pair(kernels::sequenceName(a),
                                    kernels::sequenceName(b));
    auto it = _sequenceCache.find(key);
    if (it != _sequenceCache.end())
        return it->second;

    auto any_load = [](const kernels::EventSequence &seq) {
        for (auto e : seq) {
            if (kernels::isLoadEvent(e))
                return true;
        }
        return false;
    };

    AlternationSpec spec;
    spec.build = [this, a, b](std::uint64_t ca, std::uint64_t cb) {
        return kernels::buildSequenceKernel(_machine, a, b, ca, cb);
    };
    spec.cpiA = kernels::measureSequenceIterationCycles(_machine, a);
    spec.cpiB = kernels::measureSequenceIterationCycles(_machine, b);
    spec.footprintA = kernels::sequenceFootprintBytes(a, _machine);
    spec.footprintB = kernels::sequenceFootprintBytes(b, _machine);
    spec.prefillA = any_load(a);
    spec.prefillB = any_load(b);
    spec.labelA = a.empty() ? EventKind::NOI : a.front();
    spec.labelB = b.empty() ? EventKind::NOI : b.front();
    auto sim = runAlternation(spec);
    return _sequenceCache.emplace(key, std::move(sim)).first->second;
}

PairSimulation
SavatMeter::runAlternation(const AlternationSpec &spec)
{
    PairSimulation sim;
    sim.a = spec.labelA;
    sim.b = spec.labelB;

    // 1. Initial burst lengths from each half's standalone iteration
    // time. The halves can interact once combined (e.g. an L2-sized
    // sweep evicts the other half's L1-resident array), so the
    // realized frequency is re-measured on the full kernel and the
    // counts retuned until the tone lands on the intended frequency
    // -- the same centering a bench engineer performs on the
    // analyzer display.
    sim.counts = kernels::solveCounts(_machine, spec.cpiA, spec.cpiB,
                                      _config.alternation,
                                      _config.pairing);

    const double target_period =
        _machine.cyclesPerPeriod(_config.alternation);
    const std::size_t measured = _config.measurePeriods;
    SAVAT_ASSERT(measured >= 2, "need at least two measured periods");

    GatedTrace sink;
    std::vector<std::uint64_t> period_starts;
    std::vector<std::uint64_t> half_marks;
    uarch::CacheStats l1_stats, l2_stats;
    uarch::MainMemoryStats mem_stats;

    auto diff_cache = [](const uarch::CacheStats &now,
                         const uarch::CacheStats &then) {
        uarch::CacheStats d;
        d.readHits = now.readHits - then.readHits;
        d.readMisses = now.readMisses - then.readMisses;
        d.writeHits = now.writeHits - then.writeHits;
        d.writeMisses = now.writeMisses - then.writeMisses;
        d.writebacksIn = now.writebacksIn - then.writebacksIn;
        d.writebacksOut = now.writebacksOut - then.writebacksOut;
        return d;
    };

    // Run the kernel with the current counts; fills the trace and
    // the mark vectors, returns the realized period in cycles.
    auto run_once = [&]() {
        auto kernel = spec.build(sim.counts.countA, sim.counts.countB);

        sink.enabled = false;
        sink.trace.clear();
        period_starts.clear();
        half_marks.clear();

        uarch::SimpleCpu cpu(_machine, sink);
        auto prefill = [&cpu](std::uint64_t base, std::uint64_t bytes) {
            for (std::uint64_t off = 0; off < bytes; off += 4)
                cpu.memory().writeWord(base + off, 0x07070707u);
        };
        if (spec.prefillA)
            prefill(kernel.baseA, spec.footprintA);
        if (spec.prefillB)
            prefill(kernel.baseB, spec.footprintB);

        // Warm-up periods: enough to sweep cache-resident footprints
        // twice; off-chip sweeps need the L2 completely full
        // (dirty-eviction pressure is part of steady state).
        auto warm_periods_for = [&](std::uint64_t fp,
                                    std::uint64_t count) {
            const std::uint64_t lines =
                fp > _machine.l2.sizeBytes
                    ? _machine.l2.sizeBytes * 3 / 5 /
                          _machine.l1.lineBytes * 2
                    : fp / _machine.l1.lineBytes;
            return std::uint64_t{2} + (2 * lines + count - 1) / count;
        };
        const std::uint64_t warmup = std::max(
            warm_periods_for(spec.footprintA, sim.counts.countA),
            warm_periods_for(spec.footprintB, sim.counts.countB));

        std::uint64_t periods_seen = 0;
        uarch::CacheStats l1_at_enable, l2_at_enable;
        uarch::MainMemoryStats mem_at_enable;
        cpu.setMarkCallback([&](std::int64_t id, std::uint64_t cycle,
                                std::uint64_t) {
            if (id == Marks::kPeriodStart) {
                ++periods_seen;
                if (periods_seen == warmup + 1) {
                    sink.enabled = true;
                    l1_at_enable = cpu.l1Stats();
                    l2_at_enable = cpu.l2Stats();
                    mem_at_enable = cpu.memStats();
                }
                if (periods_seen > warmup)
                    period_starts.push_back(cycle);
                if (periods_seen == warmup + measured + 1) {
                    sink.enabled = false;
                    return false; // stop the run
                }
            } else if (id == Marks::kHalfBoundary) {
                if (periods_seen > warmup &&
                    periods_seen <= warmup + measured) {
                    half_marks.push_back(cycle);
                }
            }
            return true;
        });

        const auto res = cpu.run(kernel.program);
        SAVAT_ASSERT(res.stoppedByMark,
                     "alternation kernel ended unexpectedly");
        SAVAT_ASSERT(period_starts.size() == measured + 1 &&
                         half_marks.size() == measured,
                     "mark bookkeeping mismatch");
        // Memory-system statistics over the measured window only
        // (cold-start warm-up excluded).
        l1_stats = diff_cache(cpu.l1Stats(), l1_at_enable);
        l2_stats = diff_cache(cpu.l2Stats(), l2_at_enable);
        mem_stats.reads = cpu.memStats().reads - mem_at_enable.reads;
        mem_stats.writes =
            cpu.memStats().writes - mem_at_enable.writes;
        return static_cast<double>(period_starts.back() -
                                   period_starts.front()) /
               static_cast<double>(measured);
    };

    double period = run_once();
    for (int iter = 0; iter < 5; ++iter) {
        const double error =
            std::abs(period - target_period) / target_period;
        if (error < 0.003)
            break;
        // Retune from the measured per-half durations.
        double a_cyc = 0.0, b_cyc = 0.0;
        for (std::size_t i = 0; i < measured; ++i) {
            a_cyc += static_cast<double>(half_marks[i] -
                                         period_starts[i]);
            b_cyc += static_cast<double>(period_starts[i + 1] -
                                         half_marks[i]);
        }
        const double eff_cpi_a =
            a_cyc / static_cast<double>(measured * sim.counts.countA);
        const double eff_cpi_b =
            b_cyc / static_cast<double>(measured * sim.counts.countB);
        const auto retuned = kernels::solveCounts(
            _machine, eff_cpi_a, eff_cpi_b, _config.alternation,
            _config.pairing);
        if (retuned.countA == sim.counts.countA &&
            retuned.countB == sim.counts.countB) {
            break;
        }
        sim.counts.countA = retuned.countA;
        sim.counts.countB = retuned.countB;
        sim.counts.cpiA = eff_cpi_a;
        sim.counts.cpiB = eff_cpi_b;
        period = run_once();
    }

    const std::uint64_t begin = period_starts.front();
    const std::uint64_t end = period_starts.back();
    sim.periodCycles = period;
    sim.actualFrequency =
        Frequency(_machine.clock.inHz() / sim.periodCycles);

    // Duty cycle: fraction of each period spent in the A burst.
    double a_cycles = 0.0;
    for (std::size_t i = 0; i < measured; ++i) {
        a_cycles +=
            static_cast<double>(half_marks[i] - period_starts[i]);
    }
    sim.duty = a_cycles / static_cast<double>(end - begin);

    // 3. Per-channel spectral extraction at the alternation
    // frequency (normalized: one alternation cycle per period).
    const double norm_freq = 1.0 / sim.periodCycles;
    const auto &profile = _synth.profile();
    for (std::size_t c = 0; c < em::kNumChannels; ++c) {
        const auto ch = em::channelAt(c);
        const auto weights = profile.channelWeights(ch);
        const auto wave =
            sink.trace.weightedWaveform(weights, begin, end);
        // Peak amplitude of the fundamental = 2 * |DFT coefficient|.
        sim.amplitude[c] = 2.0 * dsp::singleBinDft(wave, norm_freq);

        // Per-half mean activity (for the mismatch model).
        double mean_a = 0.0, mean_b = 0.0, ta = 0.0, tb = 0.0;
        for (std::size_t i = 0; i < measured; ++i) {
            const double la = static_cast<double>(half_marks[i] -
                                                  period_starts[i]);
            const double lb = static_cast<double>(period_starts[i + 1] -
                                                  half_marks[i]);
            mean_a += sink.trace.weightedMeanRate(
                          weights, period_starts[i], half_marks[i]) *
                      la;
            mean_b += sink.trace.weightedMeanRate(
                          weights, half_marks[i],
                          period_starts[i + 1]) *
                      lb;
            ta += la;
            tb += lb;
        }
        sim.meanA[c] = ta > 0.0 ? mean_a / ta : 0.0;
        sim.meanB[c] = tb > 0.0 ? mean_b / tb : 0.0;
    }

    // 4. Pair rate for normalization: realized frequency times the
    // burst length (the larger burst when the two differ; equal to
    // the paper's count * f for equal-count kernels).
    sim.pairsPerSecond =
        sim.actualFrequency.inHz() *
        static_cast<double>(
            std::max(sim.counts.countA, sim.counts.countB));

    sim.l1 = l1_stats;
    sim.l2 = l2_stats;
    sim.mem = mem_stats;
    return sim;
}

namespace {

/** FNV-1a over strings and integers, for per-cell mismatch seeds. */
std::uint64_t
cellHash(const std::string &machine, EventKind a, EventKind b,
         std::size_t channel)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001B3ull;
    };
    for (char ch : machine)
        mix(static_cast<std::uint64_t>(ch));
    mix(static_cast<std::uint64_t>(a) + 17);
    mix(static_cast<std::uint64_t>(b) + 31);
    mix(channel + 101);
    return h;
}

} // namespace

Measurement
SavatMeter::measure(const PairSimulation &sim, Rng &rng) const
{
    Measurement m;
    const auto sample = measureValue(sim, rng, m.trace);
    m.savat = sample.savat;
    m.bandPowerW = sample.bandPowerW;
    m.toneHz = sample.toneHz;
    return m;
}

SavatSample
SavatMeter::measureValue(const PairSimulation &sim, Rng &rng,
                         spectrum::Trace &scratch) const
{
    const auto &profile = _synth.profile();

    // Residual mismatch of the two structurally identical halves:
    // the ptr1 and ptr2 sweeps touch different arrays (different
    // DRAM rows, cache sets, alignment), so each channel's activity
    // level differs slightly -- SYSTEMATICALLY, the same way on
    // every repetition of the same pair. The deterministic per-cell
    // magnitude/phase below reproduces the paper's repeatable A/A
    // diagonals; a small per-repetition factor models day-to-day
    // variation.
    em::ChannelAmplitudes residual{};
    const double duty_factor =
        (2.0 / M_PI) * std::sin(M_PI * sim.duty);
    for (std::size_t c = 0; c < em::kNumChannels; ++c) {
        const double frac = profile.mismatchFraction[c];
        if (frac == 0.0)
            continue;
        Rng cell(cellHash(_machine.id, sim.a, sim.b, c));
        const double u = cell.uniform(0.7, 1.3);
        const double rep_factor = 1.0 + rng.gaussian(0.0, 0.10);
        residual[c] = duty_factor * frac * u * rep_factor * 0.5 *
                      (sim.meanA[c] + sim.meanB[c]);
    }

    double base_zj = rng.gaussian(profile.baseMismatchEnergyZj,
                                  profile.baseMismatchSpreadZj);
    base_zj = std::max(base_zj, 0.05);

    const bool power_rail =
        _config.sideChannel == SideChannel::Power;

    em::ToneInput tone;
    tone.amplitude = sim.amplitude;
    tone.residualAmplitude = residual;
    tone.powerRail = power_rail;
    tone.toneFrequency = sim.actualFrequency;
    // The power rail couples the loop-body residual more strongly
    // (everything draws from it).
    tone.residualPowerW = Energy::zepto(base_zj).inJoules() *
                          sim.pairsPerSecond *
                          (power_rail ? 8.0 : 1.0);

    const auto synth_res = _synth.synthesize(
        tone, _config.distance, _config.alternation, _config.spanHz,
        rng);

    spectrum::SweepConfig sweep;
    sweep.center = _config.alternation;
    sweep.spanHz = 2.0 * _config.spanHz;
    sweep.rbwHz = _config.rbwHz;
    sweep.noiseFloorWPerHz = power_rail
                                 ? _config.powerNoiseFloorWPerHz
                                 : _config.noiseFloorWPerHz;
    spectrum::SpectrumAnalyzer analyzer(sweep);

    SavatSample m;
    analyzer.measureInto(synth_res.spectrum, rng, scratch);
    SAVAT_METRIC_COUNT("meter.measurements");
    SAVAT_METRIC_ADD("meter.sweep_bins", scratch.psd.size());
    const double f0 = _config.alternation.inHz();
    m.bandPowerW =
        scratch.bandPower(f0 - _config.bandHz, f0 + _config.bandHz);
    m.toneHz = synth_res.realizedToneHz;
    m.savat = Energy(m.bandPowerW / sim.pairsPerSecond);
    return m;
}

Measurement
SavatMeter::measurePair(EventKind a, EventKind b, Rng &rng)
{
    return measure(simulatePair(a, b), rng);
}

} // namespace savat::core
