#include "core/meter.hh"

#include "support/logging.hh"
#include "support/obs.hh"

namespace savat::core {

using kernels::EventKind;

SavatMeter::SavatMeter(uarch::MachineConfig machine,
                       em::ReceivedSignalSynthesizer synth,
                       MeterConfig config)
    : _machine(std::move(machine)),
      _synth(std::move(synth)),
      _config(config)
{
    // The speculation window is measurement configuration (the
    // attack under study), applied to the target before anything
    // keys off the machine: configDigest() mixes spec.window, so
    // CPI calibrations of speculating and in-order variants of the
    // same machine never share a cache entry.
    if (_config.specWindow)
        _machine.spec.window = _config.specWindow;
    const auto report = validate();
    if (report.hasErrors()) {
        SAVAT_FATAL("invalid measurement configuration:\n",
                    report.errorSummary());
    }
    _chain = pipeline::makeSignalChain(_machine.id, _synth, _config);
}

analysis::Report
SavatMeter::validate() const
{
    return analysis::Checker().checkMeasurement(
        _machine, toAnalysisSettings(_config, _synth.antenna()));
}

SavatMeter
SavatMeter::forMachine(const std::string &machineId, MeterConfig config)
{
    auto machine = uarch::machineById(machineId);
    em::ReceivedSignalSynthesizer synth(
        em::emissionProfileFor(machineId), em::DistanceModel(),
        em::LoopAntenna(), em::EnvironmentConfig());
    return SavatMeter(std::move(machine), std::move(synth), config);
}

void
SavatMeter::setChain(std::shared_ptr<const pipeline::SignalChain> chain)
{
    SAVAT_ASSERT(chain != nullptr, "null signal chain");
    _chain = std::move(chain);
}

double
SavatMeter::iterationCycles(EventKind e)
{
    auto it = _cpiCache.find(e);
    if (it != _cpiCache.end()) {
        SAVAT_METRIC_COUNT("meter.cpi_cache_hits");
        return it->second;
    }
    SAVAT_TRACE_SPAN("meter.calibrate_cpi",
                     {{"event", kernels::eventName(e)}});
    SAVAT_METRIC_TIMER("meter.cpi_calibration_seconds");
    SAVAT_METRIC_COUNT("meter.cpi_calibrations");
    const double cpi = kernels::measureIterationCycles(_machine, e);
    _cpiCache.emplace(e, cpi);
    return cpi;
}

const PairSimulation &
SavatMeter::simulatePair(EventKind a, EventKind b)
{
    const auto key = std::make_pair(a, b);
    auto it = _pairCache.find(key);
    if (it != _pairCache.end()) {
        SAVAT_METRIC_COUNT("meter.pair_cache_hits");
        return it->second;
    }
    SAVAT_TRACE_SPAN("meter.simulate_pair",
                     {{"a", kernels::eventName(a)},
                      {"b", kernels::eventName(b)}});
    SAVAT_METRIC_TIMER("meter.simulate_seconds");
    SAVAT_METRIC_COUNT("meter.pair_simulations");
    const auto report = analysis::Checker().checkPair(
        _machine, a, b,
        toAnalysisSettings(_config, _synth.antenna()));
    if (report.hasErrors()) {
        SAVAT_FATAL("refusing to measure ", kernels::eventName(a),
                    "/", kernels::eventName(b), ":\n",
                    report.errorSummary());
    }
    auto sim = runPairSimulation(a, b);
    return _pairCache.emplace(key, std::move(sim)).first->second;
}

PairSimulation
SavatMeter::runPairSimulation(EventKind a, EventKind b)
{
    pipeline::KernelSpec spec;
    spec.build = [this, a, b](std::uint64_t ca, std::uint64_t cb) {
        return kernels::buildAlternationKernel(_machine, a, b, ca,
                                               cb);
    };
    spec.cpiA = iterationCycles(a);
    spec.cpiB = iterationCycles(b);
    spec.footprintA = kernels::footprintBytes(a, _machine);
    spec.footprintB = kernels::footprintBytes(b, _machine);
    spec.prefillA = kernels::isLoadEvent(a) ||
                    kernels::isTransientEvent(a);
    spec.prefillB = kernels::isLoadEvent(b) ||
                    kernels::isTransientEvent(b);
    spec.labelA = a;
    spec.labelB = b;
    return pipeline::runAlternation(_machine, _synth.profile(), spec,
                                    _config);
}

const PairSimulation &
SavatMeter::simulateSequencePair(const kernels::EventSequence &a,
                                 const kernels::EventSequence &b)
{
    const auto key = std::make_pair(kernels::sequenceName(a),
                                    kernels::sequenceName(b));
    auto it = _sequenceCache.find(key);
    if (it != _sequenceCache.end()) {
        SAVAT_METRIC_COUNT("meter.sequence_cache_hits");
        return it->second;
    }
    SAVAT_METRIC_COUNT("meter.sequence_simulations");

    auto any_load = [](const kernels::EventSequence &seq) {
        for (auto e : seq) {
            if (kernels::isLoadEvent(e) ||
                kernels::isTransientEvent(e)) {
                return true;
            }
        }
        return false;
    };

    pipeline::KernelSpec spec;
    spec.build = [this, a, b](std::uint64_t ca, std::uint64_t cb) {
        return kernels::buildSequenceKernel(_machine, a, b, ca, cb);
    };
    spec.cpiA = kernels::measureSequenceIterationCycles(_machine, a);
    spec.cpiB = kernels::measureSequenceIterationCycles(_machine, b);
    spec.footprintA = kernels::sequenceFootprintBytes(a, _machine);
    spec.footprintB = kernels::sequenceFootprintBytes(b, _machine);
    spec.prefillA = any_load(a);
    spec.prefillB = any_load(b);
    spec.labelA = a.empty() ? EventKind::NOI : a.front();
    spec.labelB = b.empty() ? EventKind::NOI : b.front();
    auto sim = pipeline::runAlternation(_machine, _synth.profile(),
                                        spec, _config);
    return _sequenceCache.emplace(key, std::move(sim)).first->second;
}

Measurement
SavatMeter::measure(const PairSimulation &sim, Rng &rng,
                    std::size_t repetition) const
{
    Measurement m;
    pipeline::MeasureScratch scratch;
    const auto sample = measureValue(sim, rng, scratch, repetition);
    m.trace = std::move(scratch.trace);
    m.savat = sample.savat;
    m.bandPowerW = sample.bandPowerW;
    m.toneHz = sample.toneHz;
    return m;
}

SavatSample
SavatMeter::measureValue(const PairSimulation &sim, Rng &rng,
                         pipeline::MeasureScratch &scratch,
                         std::size_t repetition) const
{
    SAVAT_ASSERT(sim.measured(), "unmeasured pair simulation");
    const auto m = _chain->measure(sim, repetition, rng, scratch);
    SAVAT_METRIC_COUNT("meter.measurements");
    SAVAT_METRIC_ADD("meter.sweep_bins", scratch.trace.psd.size());
    return m;
}

Measurement
SavatMeter::measurePair(EventKind a, EventKind b, Rng &rng)
{
    return measure(simulatePair(a, b), rng);
}

} // namespace savat::core
