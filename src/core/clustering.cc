#include "core/clustering.hh"

#include <algorithm>
#include <limits>

#include "support/logging.hh"

namespace savat::core {

std::vector<std::vector<double>>
savatDistance(const SavatMatrix &matrix, bool subtractDiagonalFloor)
{
    const std::size_t n = matrix.size();
    const auto m = matrix.means();
    std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = 0; b < n; ++b) {
            if (a == b)
                continue;
            double v = 0.5 * (m[a][b] + m[b][a]);
            if (subtractDiagonalFloor)
                v = std::max(0.0, v - 0.5 * (m[a][a] + m[b][b]));
            d[a][b] = v;
        }
    }
    return d;
}

ClusteringResult
clusterEvents(const SavatMatrix &matrix, std::size_t k)
{
    const std::size_t n = matrix.size();
    SAVAT_ASSERT(k >= 1 && k <= n, "bad cluster count k=", k);
    const auto dist = savatDistance(matrix);

    // Active clusters as member lists; cluster ids grow as we merge.
    struct Cluster
    {
        std::vector<std::size_t> members;
        bool active = true;
    };
    std::vector<Cluster> clusters(n);
    for (std::size_t i = 0; i < n; ++i)
        clusters[i].members = {i};

    // Average linkage between two member lists.
    auto linkage = [&dist](const Cluster &x, const Cluster &y) {
        double total = 0.0;
        for (auto a : x.members)
            for (auto b : y.members)
                total += dist[a][b];
        return total / (static_cast<double>(x.members.size()) *
                        static_cast<double>(y.members.size()));
    };

    ClusteringResult result;
    std::size_t active = n;
    while (active > k) {
        double best = std::numeric_limits<double>::infinity();
        std::size_t bi = 0, bj = 0;
        for (std::size_t i = 0; i < clusters.size(); ++i) {
            if (!clusters[i].active)
                continue;
            for (std::size_t j = i + 1; j < clusters.size(); ++j) {
                if (!clusters[j].active)
                    continue;
                const double d = linkage(clusters[i], clusters[j]);
                if (d < best) {
                    best = d;
                    bi = i;
                    bj = j;
                }
            }
        }
        Cluster merged;
        merged.members = clusters[bi].members;
        merged.members.insert(merged.members.end(),
                              clusters[bj].members.begin(),
                              clusters[bj].members.end());
        clusters[bi].active = false;
        clusters[bj].active = false;
        clusters.push_back(std::move(merged));
        result.dendrogram.push_back(
            {bi, bj, clusters.size() - 1, best});
        --active;
    }

    // Collect the surviving clusters, largest first.
    std::vector<const Cluster *> final_clusters;
    for (const auto &c : clusters) {
        if (c.active)
            final_clusters.push_back(&c);
    }
    std::sort(final_clusters.begin(), final_clusters.end(),
              [](const Cluster *x, const Cluster *y) {
                  return x->members.size() > y->members.size();
              });

    result.assignment.assign(n, 0);
    for (std::size_t ci = 0; ci < final_clusters.size(); ++ci) {
        std::vector<kernels::EventKind> evs;
        for (auto m : final_clusters[ci]->members) {
            result.assignment[m] = ci;
            evs.push_back(matrix.events()[m]);
        }
        std::sort(evs.begin(), evs.end());
        result.clusters.push_back(std::move(evs));
    }
    return result;
}

std::string
describeClusters(const ClusteringResult &result)
{
    std::string out;
    for (const auto &cluster : result.clusters) {
        out += "{";
        for (std::size_t i = 0; i < cluster.size(); ++i) {
            if (i)
                out += " ";
            out += kernels::eventName(cluster[i]);
        }
        out += "} ";
    }
    if (!out.empty())
        out.pop_back();
    return out;
}

} // namespace savat::core
