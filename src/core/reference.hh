/**
 * @file
 * Reference data from the paper, used only for comparison: tests and
 * EXPERIMENTS.md check that the simulated matrices reproduce the
 * published orderings and magnitudes, never the other way around.
 *
 * The Core 2 Duo matrices (Figures 9, 17 and 18) are embedded in
 * full. The Pentium 3 M and Turion X2 tables did not survive the
 * source's OCR reliably, so for those machines we embed only anchor
 * values that are corroborated by the paper's prose (e.g. "the
 * ADD/DIV SAVAT is an order of magnitude higher than the ADD/MUL
 * SAVAT").
 */

#ifndef SAVAT_CORE_REFERENCE_HH
#define SAVAT_CORE_REFERENCE_HH

#include <string>
#include <vector>

#include "core/matrix.hh"
#include "kernels/events.hh"

namespace savat::core {

/** A reference matrix (means only) with its provenance. */
struct ReferenceMatrix
{
    std::string figure;   //!< e.g. "Figure 9"
    std::string machine;  //!< machine id
    double distanceCm;    //!< antenna distance
    std::vector<kernels::EventKind> events;
    std::vector<std::vector<double>> zj; //!< row = A, col = B
};

/** Figure 9: Core 2 Duo, 10 cm, 80 kHz. */
const ReferenceMatrix &figure9Core2Duo();

/** Figure 17: Core 2 Duo, 50 cm. */
const ReferenceMatrix &figure17Core2Duo50cm();

/** Figure 18: Core 2 Duo, 100 cm. */
const ReferenceMatrix &figure18Core2Duo100cm();

/** One anchor value with provenance. */
struct ReferenceAnchor
{
    kernels::EventKind a;
    kernels::EventKind b;
    double zj;
};

/** Prose-corroborated anchors for the Pentium 3 M (10 cm). */
std::vector<ReferenceAnchor> pentium3mAnchors();

/** Prose-corroborated anchors for the Turion X2 (10 cm). */
std::vector<ReferenceAnchor> turionx2Anchors();

/**
 * The selected instruction pairings of the paper's bar charts
 * (Figures 11, 13, 15, 16), in display order.
 */
std::vector<std::pair<kernels::EventKind, kernels::EventKind>>
selectedBarPairs();

/**
 * Spearman rank correlation between a simulated matrix's means and a
 * reference matrix (cells matched by event pair).
 */
double rankCorrelation(const SavatMatrix &sim,
                       const ReferenceMatrix &ref);

/**
 * Pearson correlation between log-SAVAT values of a simulated matrix
 * and a reference (log compresses the dynamic range so the big
 * off-chip cells do not dominate).
 */
double logCorrelation(const SavatMatrix &sim, const ReferenceMatrix &ref);

} // namespace savat::core

#endif // SAVAT_CORE_REFERENCE_HH
