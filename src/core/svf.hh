/**
 * @file
 * Side-channel Vulnerability Factor (SVF) — the prior-art metric the
 * paper positions SAVAT against (Demme et al., ISCA 2012).
 *
 * SVF measures how strongly an attacker's side-channel observations
 * correlate with the victim's actual execution patterns: split the
 * execution into windows, build the pairwise similarity matrix of
 * the ground-truth activity ("oracle") and of the attacker's
 * observations, and report the Pearson correlation between the two
 * matrices' entries. An SVF near 1 means execution phases show
 * through the side channel clearly.
 *
 * The paper's critique (Sections I/VI) is that SVF grades the whole
 * system/application but cannot attribute leakage to instructions or
 * components. Implementing it on the same simulated physics lets the
 * benchmarks demonstrate that contrast directly: SVF says *that* the
 * system leaks, the SAVAT matrix says *what* leaks.
 */

#ifndef SAVAT_CORE_SVF_HH
#define SAVAT_CORE_SVF_HH

#include <cstdint>
#include <string>
#include <vector>

#include "em/synth.hh"
#include "isa/instruction.hh"
#include "pipeline/frontend.hh"
#include "support/progress.hh"
#include "support/rng.hh"
#include "support/units.hh"
#include "uarch/machine.hh"

namespace savat::core {

/** SVF computation parameters. */
struct SvfConfig
{
    /** Window length over which activity is aggregated (cycles). */
    std::uint64_t windowCycles = 2000;

    /** Number of windows to correlate. */
    std::size_t windows = 64;

    /** Antenna distance for the attacker's observation. */
    Distance distance = Distance::centimeters(10.0);

    /**
     * Attacker measurement noise, as a fraction of the mean window
     * power the attacker would see at the 10 cm reference distance.
     * Absolute (distance-independent): backing away from the device
     * buries the signal under it.
     */
    double observationNoise = 0.1;

    /** Randomness seed for the observation noise. */
    std::uint64_t seed = 0xC0FFEE;

    /**
     * Worker threads for the per-window census/power pass (0 =
     * auto, see support::resolveJobs). The observation noise is
     * drawn serially in window order afterwards, so the SVF is
     * identical for every jobs value.
     */
    std::size_t jobs = 0;

    /**
     * Side channel the attacker observes through. The EM channel
     * applies the distance model; the power channel is distance-free
     * (see pipeline::channelCoupling).
     */
    pipeline::ChannelKind channel = pipeline::ChannelKind::Em;
};

/** SVF computation outputs. */
struct SvfResult
{
    /** The Side-channel Vulnerability Factor, in [-1, 1]. */
    double svf = 0.0;

    /** Windows actually used (execution may end early). */
    std::size_t windows = 0;

    /** Per-window oracle activity vectors (for diagnostics). */
    std::vector<std::vector<double>> oracle;

    /** Per-window attacker observations (signal power). */
    std::vector<double> observed;
};

/**
 * Compute the SVF of a program on a machine as seen through the EM
 * side channel at the given distance.
 *
 * The oracle pattern of each window is its micro-event census (what
 * the processor actually did); the attacker's observation is the
 * emission-weighted, distance-attenuated signal power in the window
 * plus measurement noise.
 *
 * The optional progress callback reports (windows done, windows
 * total) under a mutex with a monotonic done count, exactly like
 * the campaign's.
 */
SvfResult computeSvf(const uarch::MachineConfig &machine,
                     const em::EmissionProfile &profile,
                     const em::DistanceModel &distances,
                     const isa::Program &program,
                     const SvfConfig &config,
                     const obs::ProgressFn &progress = {});

/**
 * A phased demo workload for SVF studies: loops that cycle through
 * compute-heavy, L2-resident and off-chip phases (the "program phase
 * transitions" SVF was designed to expose).
 *
 * @param iterationsPerPhase Loop iterations in each phase burst.
 */
isa::Program buildPhasedWorkload(const uarch::MachineConfig &machine,
                                 std::uint64_t iterationsPerPhase);

/**
 * Pairwise-similarity correlation helper (exposed for testing):
 * Pearson correlation between the upper triangles of the two
 * similarity matrices induced by the oracle vectors (cosine
 * similarity) and the observations (negative absolute difference).
 */
double similarityCorrelation(
    const std::vector<std::vector<double>> &oracle,
    const std::vector<double> &observed);

} // namespace savat::core

#endif // SAVAT_CORE_SVF_HH
