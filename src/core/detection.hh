/**
 * @file
 * Attacker-success estimation from SAVAT values.
 *
 * Section III frames the attack model: a single-instruction
 * difference leaks a tiny energy, but attackers accumulate it by
 * repetition (the same secret reused) and combination (sequences of
 * differing instructions). This module turns a SAVAT value into the
 * standard detection-theoretic quantities for an energy detector:
 * the sensitivity index d', the decision error probability, the ROC
 * area, and the number of repetitions needed for a target error
 * rate — the paper's "huge SAVAT values enable attacks even when
 * sensitive data creates a seemingly small difference" made
 * quantitative.
 *
 * Model: each observed use contributes signal energy E_s (the
 * floor-subtracted SAVAT times the number of differing instances)
 * on top of a fluctuating background with energy scale E_n (the A/A
 * residual). After n independent uses the two hypotheses are
 * Gaussians separated by n*E_s with standard deviation
 * sqrt(n)*E_n, giving d' = sqrt(n) * E_s / E_n.
 */

#ifndef SAVAT_CORE_DETECTION_HH
#define SAVAT_CORE_DETECTION_HH

#include <cstddef>

namespace savat::core {

/**
 * Sensitivity index of the A-vs-B decision after n observed uses.
 *
 * @param signalZj Per-use signal energy (floor-subtracted SAVAT x
 *                 instances), zJ.
 * @param noiseZj  Per-use background energy scale (the A/A floor),
 *                 zJ. Must be positive.
 * @param uses     Number of independent uses observed.
 */
double dPrime(double signalZj, double noiseZj, double uses);

/**
 * Probability that a maximum-likelihood decision between the two
 * equally likely hypotheses errs: Q(d'/2).
 */
double errorProbability(double d_prime);

/** Area under the ROC curve: Phi(d'/sqrt(2)). */
double rocArea(double d_prime);

/**
 * Uses required for the decision error to fall below `targetError`
 * (0 < targetError < 0.5). Returns +infinity when signalZj <= 0.
 */
double usesForError(double signalZj, double noiseZj,
                    double targetError);

/** Standard normal CDF. */
double normalCdf(double x);

/** Upper-tail probability Q(x) = 1 - Phi(x). */
double normalQ(double x);

/**
 * Inverse of Q for 0 < p < 0.5, solved by bisection (absolute error
 * below 1e-12 over the supported range).
 */
double normalQInverse(double p);

} // namespace savat::core

#endif // SAVAT_CORE_DETECTION_HH
