#include "core/detection.hh"

#include <cmath>
#include <limits>

#include "support/logging.hh"

namespace savat::core {

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double
normalQ(double x)
{
    return 0.5 * std::erfc(x / std::sqrt(2.0));
}

double
normalQInverse(double p)
{
    SAVAT_ASSERT(p > 0.0 && p < 0.5, "normalQInverse needs 0<p<0.5");
    // Q is strictly decreasing on [0, inf); bisect. Q(40) underflows
    // any representable p, so [0, 40] brackets every target.
    double lo = 0.0, hi = 40.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (normalQ(mid) > p)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

double
dPrime(double signalZj, double noiseZj, double uses)
{
    SAVAT_ASSERT(noiseZj > 0.0, "non-positive noise energy");
    SAVAT_ASSERT(uses >= 0.0, "negative use count");
    if (signalZj <= 0.0)
        return 0.0;
    return std::sqrt(uses) * signalZj / noiseZj;
}

double
errorProbability(double d_prime)
{
    return normalQ(d_prime / 2.0);
}

double
rocArea(double d_prime)
{
    return normalCdf(d_prime / std::sqrt(2.0));
}

double
usesForError(double signalZj, double noiseZj, double targetError)
{
    SAVAT_ASSERT(noiseZj > 0.0, "non-positive noise energy");
    SAVAT_ASSERT(targetError > 0.0 && targetError < 0.5,
                 "target error must be in (0, 0.5)");
    if (signalZj <= 0.0)
        return std::numeric_limits<double>::infinity();
    const double needed_dprime = 2.0 * normalQInverse(targetError);
    const double root = needed_dprime * noiseZj / signalZj;
    return root * root;
}

} // namespace savat::core
