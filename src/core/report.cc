#include "core/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/reference.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace savat::core {

void
printMatrixTable(std::ostream &os, const SavatMatrix &matrix)
{
    TextTable table;
    auto header = matrix.labels();
    header.insert(header.begin(), "A\\B");
    table.setHeader(header);
    const auto m = matrix.means();
    for (std::size_t a = 0; a < matrix.size(); ++a) {
        table.startRow();
        table.addCell(matrix.labels()[a]);
        for (std::size_t b = 0; b < matrix.size(); ++b)
            table.addCell(m[a][b], 1);
    }
    table.render(os);
}

void
printMatrixHeatmap(std::ostream &os, const SavatMatrix &matrix)
{
    os << asciiHeatmap(matrix.labels(), matrix.means());
}

void
printSelectedBars(std::ostream &os, const SavatMatrix &matrix)
{
    std::vector<std::string> labels;
    std::vector<double> values;
    for (const auto &[a, b] : selectedBarPairs()) {
        const auto ia_t = matrix.tryIndexOf(a);
        const auto ib_t = matrix.tryIndexOf(b);
        if (ia_t < 0 || ib_t < 0)
            continue;
        const auto ia = static_cast<std::size_t>(ia_t);
        const auto ib = static_cast<std::size_t>(ib_t);
        if (matrix.samples(ia, ib).empty())
            continue;
        labels.push_back(std::string(kernels::eventName(a)) + "/" +
                         kernels::eventName(b));
        values.push_back(matrix.mean(ia, ib));
    }
    os << asciiBarChart(labels, values);
}

void
printMatrixCsv(std::ostream &os, const SavatMatrix &matrix)
{
    TextTable table;
    table.setHeader({"a", "b", "mean_zj", "stddev_zj", "min_zj",
                     "max_zj", "samples"});
    for (std::size_t a = 0; a < matrix.size(); ++a) {
        for (std::size_t b = 0; b < matrix.size(); ++b) {
            const auto s = matrix.cellSummary(a, b);
            if (s.count == 0)
                continue;
            table.startRow();
            table.addCell(matrix.labels()[a]);
            table.addCell(matrix.labels()[b]);
            table.addCell(s.mean, 3);
            table.addCell(s.stddev, 3);
            table.addCell(s.min, 3);
            table.addCell(s.max, 3);
            table.addCell(static_cast<long long>(s.count));
        }
    }
    table.renderCsv(os);
}

void
printMatrixFixture(std::ostream &os, const SavatMatrix &m)
{
    os << "savat-matrix-fixture v1\n";
    os << "events";
    for (auto e : m.events())
        os << ' ' << kernels::eventName(e);
    os << '\n';
    char buf[64];
    const auto &events = m.events();
    for (std::size_t a = 0; a < m.size(); ++a) {
        for (std::size_t b = 0; b < m.size(); ++b) {
            const auto &s = m.samples(a, b);
            if (s.empty())
                continue;
            os << "cell " << kernels::eventName(events[a]) << ' '
               << kernels::eventName(events[b]);
            for (double v : s) {
                std::snprintf(buf, sizeof buf, " %a", v);
                os << buf;
            }
            os << '\n';
        }
    }
}

void
printCampaignSummary(std::ostream &os, const CampaignResult &result)
{
    const auto &matrix = result.matrix;
    os << "machine: " << result.config.machineId
       << "  distance: "
       << format("%.0f cm",
                 result.config.meter.distance.inCentimeters())
       << "  alternation: "
       << format("%.0f kHz",
                 result.config.meter.alternation.inKhz())
       << "  repetitions: " << result.config.repetitions << "\n";
    os << format("diagonal-minimum cells: %zu of %zu\n",
                 matrix.diagonalMinimumCount(), matrix.size());
    os << format("mean std/mean (repeatability): %.3f\n",
                 matrix.meanCoefficientOfVariation());
    os << format("A/B vs B/A mean asymmetry: %.3f\n",
                 matrix.symmetryError());

    // Containment/resume health: silent only when nothing happened,
    // so a clean campaign's report is unchanged.
    if (result.restoredCells() > 0 || result.retriedCells() > 0 ||
        result.degradedCells() > 0)
        os << format("resilience: %zu restored, %zu retried, "
                     "%zu degraded of %zu pairs\n",
                     result.restoredCells(), result.retriedCells(),
                     result.degradedCells(), result.pairs.size());
    for (std::size_t p = 0; p < result.health.size(); ++p) {
        const auto &h = result.health[p];
        if (h.state != pipeline::CellState::Degraded)
            continue;
        const auto &[a, b] = result.pairs[p];
        os << format("degraded %s/%s after %zu attempts: %s\n",
                     kernels::eventName(a), kernels::eventName(b),
                     h.attempts, h.lastError.c_str());
    }

    TextTable table;
    table.setHeader({"pair", "cpiA", "cpiB", "countA", "countB",
                     "f_alt[kHz]", "pairs/s", "SAVAT[zJ]"});
    for (std::size_t a = 0; a < matrix.size(); ++a) {
        for (std::size_t b = 0; b < matrix.size(); ++b) {
            if (matrix.samples(a, b).empty())
                continue;
            const auto &sim = result.simulation(a, b);
            table.startRow();
            table.addCell(matrix.labels()[a] + "/" +
                          matrix.labels()[b]);
            table.addCell(sim.counts.cpiA, 1);
            table.addCell(sim.counts.cpiB, 1);
            table.addCell(static_cast<long long>(sim.counts.countA));
            table.addCell(static_cast<long long>(sim.counts.countB));
            table.addCell(sim.actualFrequency.inKhz(), 2);
            table.addCell(sim.pairsPerSecond, 0);
            table.addCell(matrix.mean(a, b), 2);
        }
    }
    table.render(os);
}

void
printSpectrum(std::ostream &os, const spectrum::Trace &trace,
              double bandLoHz, double bandHiHz)
{
    // Down-sample the display to ~80 rows; show dBm/Hz bars.
    const std::size_t rows = 80;
    const std::size_t stride =
        std::max<std::size_t>(1, trace.size() / rows);

    double peak = 0.0;
    for (double v : trace.psd)
        peak = std::max(peak, v);
    const double floor_psd = 1e-19;

    os << format("band power [%.0f, %.0f] Hz: %.3e W\n", bandLoHz,
                 bandHiHz, trace.bandPower(bandLoHz, bandHiHz));
    for (std::size_t i = 0; i + stride <= trace.size(); i += stride) {
        double v = 0.0;
        for (std::size_t k = 0; k < stride; ++k)
            v = std::max(v, trace.psd[i + k]);
        const double f = trace.frequency(i + stride / 2);
        const double db =
            10.0 * std::log10(std::max(v, floor_psd) / floor_psd);
        const double db_max =
            10.0 * std::log10(std::max(peak, floor_psd) / floor_psd);
        const int n = static_cast<int>(
            std::lround(db / std::max(db_max, 1.0) * 60.0));
        const bool in_band = f >= bandLoHz && f <= bandHiHz;
        os << format("%9.1f Hz %10.3e W/Hz %c|", f, v,
                     in_band ? '*' : ' ')
           << std::string(static_cast<std::size_t>(std::max(n, 0)), '#')
           << "\n";
    }
}

} // namespace savat::core
