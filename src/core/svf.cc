#include "core/svf.hh"

#include <cmath>
#include <mutex>
#include <sstream>

#include "isa/assembler.hh"
#include "support/logging.hh"
#include "support/obs.hh"
#include "support/parallel.hh"
#include "support/stats.hh"
#include "support/strings.hh"
#include "uarch/cpu.hh"

namespace savat::core {

namespace {

/** Cosine similarity between two activity vectors. */
double
cosine(const std::vector<double> &a, const std::vector<double> &b)
{
    SAVAT_ASSERT(a.size() == b.size(), "cosine: size mismatch");
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        dot += a[i] * b[i];
        na += a[i] * a[i];
        nb += b[i] * b[i];
    }
    if (na == 0.0 || nb == 0.0)
        return 0.0;
    return dot / std::sqrt(na * nb);
}

} // namespace

double
similarityCorrelation(const std::vector<std::vector<double>> &oracle,
                      const std::vector<double> &observed)
{
    SAVAT_ASSERT(oracle.size() == observed.size(),
                 "window count mismatch");
    const std::size_t n = oracle.size();
    std::vector<double> sim_oracle, sim_observed;
    sim_oracle.reserve(n * (n - 1) / 2);
    sim_observed.reserve(n * (n - 1) / 2);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            sim_oracle.push_back(cosine(oracle[i], oracle[j]));
            sim_observed.push_back(
                -std::abs(observed[i] - observed[j]));
        }
    }
    return pearson(sim_oracle, sim_observed);
}

SvfResult
computeSvf(const uarch::MachineConfig &machine,
           const em::EmissionProfile &profile,
           const em::DistanceModel &distances,
           const isa::Program &program, const SvfConfig &config,
           const obs::ProgressFn &progress)
{
    SAVAT_ASSERT(config.windows >= 4, "need at least four windows");
    SAVAT_ASSERT(config.windowCycles >= 16, "windows too short");

    SAVAT_TRACE_SPAN("svf.compute",
                     {{"windows", config.windows},
                      {"window_cycles", config.windowCycles}});
    SAVAT_METRIC_TIMER("svf.compute_seconds");

    // Run the program long enough to cover the requested windows.
    uarch::ActivityTrace trace;
    uarch::SimpleCpu cpu(machine, trace);
    uarch::RunLimits limits;
    limits.maxCycles = config.windowCycles * config.windows + 1;
    cpu.run(program, limits);

    const std::uint64_t total = cpu.cycle();
    const std::size_t usable = std::min<std::size_t>(
        config.windows,
        static_cast<std::size_t>(total / config.windowCycles));
    SAVAT_ASSERT(usable >= 4, "program too short for SVF windows");

    // Attacker-visible per-cycle signal: emission weights x the
    // observed channel's coupling x (EM only) distance attenuation,
    // summed over channels. A second weight set at the 10 cm
    // reference fixes the (absolute) measurement-noise scale; the
    // power channel is distance-free, so both sets coincide there.
    const auto base =
        pipeline::observationWeights(config.channel, profile, 1.0);
    const bool em_channel =
        config.channel == pipeline::ChannelKind::Em;
    std::array<double, uarch::kNumMicroEvents> weights{};
    std::array<double, uarch::kNumMicroEvents> ref_weights{};
    const auto ref_distance = Distance::centimeters(10.0);
    for (std::size_t ev = 0; ev < uarch::kNumMicroEvents; ++ev) {
        const auto ch = profile.eventChannel[ev];
        weights[ev] =
            em_channel
                ? base[ev] *
                      distances.amplitudeFactor(ch, config.distance)
                : base[ev];
        ref_weights[ev] =
            em_channel
                ? base[ev] * distances.amplitudeFactor(ch, ref_distance)
                : base[ev];
    }

    SvfResult res;
    res.windows = usable;
    Rng rng(config.seed);

    const auto full_wave = trace.weightedWaveform(
        weights, 0, config.windowCycles * usable);

    // Mean power the attacker would see at the reference distance:
    // the absolute noise scale.
    const auto ref_wave = trace.weightedWaveform(
        ref_weights, 0, config.windowCycles * usable);
    double ref_power = 0.0;
    for (double v : ref_wave)
        ref_power += v * v;
    ref_power /= static_cast<double>(ref_wave.size());

    SAVAT_METRIC_ADD("svf.windows", usable);

    // Census and signal power are deterministic per window, so the
    // window loop shards freely across workers. Progress is counted
    // monotonically under a mutex, like the campaign's.
    res.oracle.resize(usable);
    res.observed.resize(usable);
    std::mutex progress_mutex;
    std::size_t completed = 0;
    {
        SAVAT_TRACE_SPAN("svf.windows", {{"usable", usable}});
        SAVAT_METRIC_TIMER("svf.window_pass_seconds");
        support::parallelFor(
            usable,
            [&](std::size_t w) {
                const std::uint64_t begin = w * config.windowCycles;
                const std::uint64_t end =
                    begin + config.windowCycles;

                // Oracle: the window's micro-event census.
                std::vector<double> census(uarch::kNumMicroEvents,
                                           0.0);
                for (std::size_t ev = 0;
                     ev < uarch::kNumMicroEvents; ++ev) {
                    census[ev] = trace.meanRate(
                        static_cast<uarch::MicroEvent>(ev), begin,
                        end);
                }
                res.oracle[w] = std::move(census);

                // Attacker: window signal power (noise added
                // below).
                double power = 0.0;
                for (std::uint64_t c = begin; c < end; ++c)
                    power += full_wave[c] * full_wave[c];
                res.observed[w] =
                    power / static_cast<double>(config.windowCycles);

                if (progress) {
                    const std::lock_guard<std::mutex> lock(
                        progress_mutex);
                    progress(++completed, usable);
                }
            },
            config.jobs);
    }

    // Measurement noise, drawn serially in window order so the SVF
    // does not depend on the jobs value.
    for (std::size_t w = 0; w < usable; ++w) {
        res.observed[w] +=
            rng.gaussian(0.0, config.observationNoise * ref_power);
    }

    res.svf = similarityCorrelation(res.oracle, res.observed);
    return res;
}

isa::Program
buildPhasedWorkload(const uarch::MachineConfig &machine,
                    std::uint64_t iterationsPerPhase)
{
    SAVAT_ASSERT(iterationsPerPhase >= 1, "empty phases");
    const std::uint64_t l1_mask = machine.l1.sizeBytes / 2 - 1;
    const std::uint64_t l2_mask =
        std::min<std::uint64_t>(4 * machine.l1.sizeBytes,
                                machine.l2.sizeBytes / 4) -
        1;
    const std::uint64_t mem_mask = 4ull * machine.l2.sizeBytes - 1;

    std::ostringstream oss;
    oss << "; SVF phased workload: compute / L2 / memory phases\n";
    oss << "    mov esi,0x10000000\n";
    oss << "    mov eax,7\n";
    oss << "    mov edx,0\n";
    oss << "top:\n";

    auto sweep_phase = [&](const char *label, std::uint64_t mask,
                           bool memory) {
        oss << "    mov ecx," << iterationsPerPhase << "\n";
        oss << label << ":\n";
        oss << "    mov ebx,esi\n";
        oss << "    add ebx," << machine.l1.lineBytes << "\n";
        oss << format("    and ebx,0x%llX\n",
                      static_cast<unsigned long long>(mask));
        oss << "    and esi,0xF0000000\n";
        oss << "    or esi,ebx\n";
        if (memory)
            oss << "    mov eax,[esi]\n";
        else
            oss << "    imul eax,173\n";
        oss << "    dec ecx\n";
        oss << "    jne " << label << "\n";
    };

    sweep_phase("compute", l1_mask, false);
    sweep_phase("l2_phase", l2_mask, true);
    sweep_phase("mem_phase", mem_mask, true);
    oss << "    jmp top\n";
    return isa::assembleOrDie(oss.str(), "svf_phased");
}

} // namespace savat::core
