/**
 * @file
 * Program leakage assessment: the programmer-facing use the paper's
 * introduction promises — "programmers ... can use SAVAT to guide
 * code changes to avoid using 'loud' activity when operating on
 * sensitive data".
 *
 * A ProgramProfile describes the secret-dependent instruction-level
 * differences a piece of code creates (site by site: what executes
 * when the secret bit is 1 versus 0, and how many instances per
 * use). assessProgram weighs every site with measured SAVAT values,
 * subtracts the same-instruction measurement floor, and returns the
 * sites ranked by their contribution — the worklist a developer
 * would fix first.
 */

#ifndef SAVAT_CORE_ASSESSMENT_HH
#define SAVAT_CORE_ASSESSMENT_HH

#include <istream>
#include <string>
#include <vector>

#include "core/meter.hh"

namespace savat::core {

/** One secret-dependent difference site in a program. */
struct CodeSite
{
    /** Human-readable location ("bignum multiply", "table lookup"). */
    std::string label;

    /** What executes when the secret selects this path. */
    kernels::EventKind executed = kernels::EventKind::NOI;

    /** What executes on the other path. */
    kernels::EventKind alternative = kernels::EventKind::NOI;

    /** Instances of this difference per use of the secret. */
    std::size_t instancesPerUse = 1;
};

/** A program's secret-dependent behaviour, site by site. */
struct ProgramProfile
{
    std::string name;
    std::vector<CodeSite> sites;
};

/** Assessment of one site. */
struct SiteAssessment
{
    CodeSite site;

    /** Floor-subtracted SAVAT per instance (zJ). */
    double perInstanceZj = 0.0;

    /** Total signal energy per secret use (zJ). */
    double perUseZj = 0.0;

    /** Share of the program's total leakage (0..1). */
    double share = 0.0;
};

/** Assessment of a whole program. */
struct AssessmentReport
{
    std::string program;

    /** Total attacker-visible energy per secret use (zJ). */
    double totalPerUseZj = 0.0;

    /** Sites, loudest first. */
    std::vector<SiteAssessment> sites;

    /** Residual same-instruction energy (the measurement floor). */
    double floorZj = 0.0;

    /**
     * Secret uses an attacker must observe for the accumulated
     * signal to exceed the floor by the given margin, assuming the
     * paper's repetition accumulation. Returns +infinity when the
     * program leaks nothing above the floor.
     */
    double usesForMargin(double margin = 10.0,
                         double bitsPerUse = 2048.0) const;

    /**
     * Detection-theoretic version (see core/detection.hh): uses an
     * attacker needs to decide one secret bit with the given error
     * probability, treating the per-bit signal as
     * totalPerUseZj / bitsPerUse against the floor energy.
     */
    double usesForErrorRate(double targetError = 1e-3,
                            double bitsPerUse = 2048.0) const;
};

/**
 * Mean pairwise SAVAT over `reps` repetitions (zJ).
 */
double meanSavatZj(SavatMeter &meter, kernels::EventKind a,
                   kernels::EventKind b, int reps = 6,
                   std::uint64_t seed = 0x5EED);

/**
 * Floor-subtracted ("net") SAVAT: the pairwise value minus the mean
 * of the two same-instruction diagonals, clamped at zero. This is
 * the genuine per-difference signal, with the environmental residual
 * removed.
 */
double netSavatZj(SavatMeter &meter, kernels::EventKind a,
                  kernels::EventKind b, int reps = 6,
                  std::uint64_t seed = 0x5EED);

/** Assess a program profile with the given meter. */
AssessmentReport assessProgram(SavatMeter &meter,
                               const ProgramProfile &profile,
                               int reps = 6);

/** Result of parsing a profile file. */
struct ProfileParseResult
{
    ProgramProfile profile;
    bool ok = false;
    std::string error;
    std::size_t errorLine = 0;
};

/**
 * Parse a ProgramProfile from its text format:
 *
 *     # comment
 *     program rsa-2048
 *     site "secret-indexed lookups" LDL2 LDL1 512
 *     site "conditional multiply"   MUL  NOI  4096
 *
 * Event names are those of kernels::eventName (extension events
 * included). Labels are double-quoted; counts are positive.
 */
ProfileParseResult parseProgramProfile(std::istream &in);

/** Render the report as a fixed-width table. */
void printAssessment(std::ostream &os, const AssessmentReport &report);

} // namespace savat::core

#endif // SAVAT_CORE_ASSESSMENT_HH
