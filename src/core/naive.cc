#include "core/naive.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "isa/assembler.hh"
#include "kernels/generator.hh"
#include "support/logging.hh"
#include "support/obs.hh"
#include "support/parallel.hh"
#include "uarch/cpu.hh"

namespace savat::core {

using kernels::EventKind;

namespace {

/**
 * Build the single-shot program: identical context around one test
 * instruction.
 */
isa::Program
buildSingleShot(EventKind e, std::size_t context)
{
    std::ostringstream oss;
    oss << "; naive single-shot capture: " << kernels::eventName(e)
        << "\n";
    oss << "    mov esi,0x10000000\n";
    oss << "    mov eax,7\n";
    oss << "    mov edx,0\n";
    auto filler = [&oss](std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) {
            switch (i % 4) {
              case 0: oss << "    add ebx,13\n"; break;
              case 1: oss << "    mov ecx,ebx\n"; break;
              case 2: oss << "    xor ecx,173\n"; break;
              default: oss << "    sub ebx,5\n"; break;
            }
        }
    };
    filler(context);
    oss << "    cdq\n";
    const std::string test = kernels::eventAsm(e, "esi");
    if (!test.empty())
        oss << "    " << test << "\n";
    filler(context);
    oss << "    hlt\n";
    return isa::assembleOrDie(oss.str(), std::string("naive_") +
                                             kernels::eventName(e));
}

/**
 * Simulate one single-shot run and return the scope-rate samples of
 * the total emission-weighted activity.
 */
std::vector<double>
captureSignal(const uarch::MachineConfig &machine,
              const em::EmissionProfile &profile, EventKind e,
              const NaiveConfig &config)
{
    uarch::ActivityTrace trace;
    uarch::SimpleCpu cpu(machine, trace);
    // Make loads hit valid data.
    cpu.memory().writeWord(0x10000000ull, 0x07070707u);

    const auto program = buildSingleShot(e, config.contextInstructions);
    const auto res = cpu.run(program);
    SAVAT_ASSERT(res.halted, "single-shot program did not halt");

    // Total scope-visible signal: all channels weighted by the
    // configured side channel's coupling (close-range probe, no
    // distance attenuation).
    const auto weights =
        pipeline::observationWeights(config.channel, profile, 1e6);
    auto wave = trace.weightedWaveform(weights, 0, cpu.cycle());
    for (auto &v : wave)
        v += config.backgroundAmplitude;

    // Resample to the scope rate with linear interpolation.
    const double samples_per_cycle =
        config.scopeSamplesPerSecond / machine.clock.inHz();
    const std::size_t nsamples = static_cast<std::size_t>(
        std::floor(static_cast<double>(wave.size() - 1) *
                   samples_per_cycle));
    std::vector<double> out(nsamples, 0.0);
    for (std::size_t i = 0; i < nsamples; ++i) {
        const double t = static_cast<double>(i) / samples_per_cycle;
        const auto lo = static_cast<std::size_t>(std::floor(t));
        const double frac = t - static_cast<double>(lo);
        const double a = wave[lo];
        const double b = lo + 1 < wave.size() ? wave[lo + 1] : a;
        out[i] = a + frac * (b - a);
    }
    return out;
}

/** Area between two sample vectors (per-sample dt applied). */
double
areaBetween(const std::vector<double> &a, const std::vector<double> &b,
            double dt, std::ptrdiff_t shift_b)
{
    const std::size_t n = std::min(a.size(), b.size());
    double area = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::ptrdiff_t j =
            static_cast<std::ptrdiff_t>(i) + shift_b;
        const double bv =
            (j >= 0 && j < static_cast<std::ptrdiff_t>(b.size()))
                ? b[static_cast<std::size_t>(j)]
                : 0.0;
        area += std::abs(a[i] - bv) * dt;
    }
    return area;
}

} // namespace

NaiveResult
runNaiveComparison(const uarch::MachineConfig &machine,
                   const em::EmissionProfile &profile, EventKind a,
                   EventKind b, const NaiveConfig &config,
                   std::size_t trials, Rng &rng)
{
    SAVAT_ASSERT(trials >= 1, "need at least one trial");

    SAVAT_TRACE_SPAN("naive.compare",
                     {{"a", kernels::eventName(a)},
                      {"b", kernels::eventName(b)},
                      {"trials", trials}});
    SAVAT_METRIC_TIMER("naive.compare_seconds");
    SAVAT_METRIC_ADD("naive.trials", trials);

    const auto sig_a = captureSignal(machine, profile, a, config);
    const auto sig_b = captureSignal(machine, profile, b, config);
    const double dt = 1.0 / config.scopeSamplesPerSecond;

    NaiveResult result;
    result.trueDifference = areaBetween(sig_a, sig_b, dt, 0);

    // Noise amplitude proportional to the overall signal magnitude
    // (the paper: "the measurement error ... is proportional to the
    // signal's overall value"), which the common-mode background
    // dominates.
    double hi = 0.0;
    for (double v : sig_a)
        hi = std::max(hi, std::abs(v));
    for (double v : sig_b)
        hi = std::max(hi, std::abs(v));
    const double sigma = config.noiseFraction * hi;

    // Each trial owns a stream forked from the caller's rng in
    // trial order, so the trial loop parallelizes with results
    // identical to the serial run at any jobs value.
    std::vector<Rng> trial_rngs;
    trial_rngs.reserve(trials);
    for (std::size_t t = 0; t < trials; ++t)
        trial_rngs.push_back(rng.fork());

    std::vector<double> estimates(trials, 0.0);
    support::parallelFor(
        trials,
        [&](std::size_t t) {
            Rng trial_rng = trial_rngs[t];
            std::vector<double> na = sig_a;
            std::vector<double> nb = sig_b;
            for (auto &v : na)
                v += trial_rng.gaussian(0.0, sigma);
            for (auto &v : nb)
                v += trial_rng.gaussian(0.0, sigma);
            const int jitter_range =
                2 * config.alignmentJitterSamples + 1;
            const std::ptrdiff_t shift =
                static_cast<std::ptrdiff_t>(trial_rng.uniformInt(
                    static_cast<std::uint64_t>(jitter_range))) -
                config.alignmentJitterSamples;
            estimates[t] = areaBetween(na, nb, dt, shift);
        },
        config.jobs);

    double err_total = 0.0;
    if (result.trueDifference > 0.0) {
        for (double est : estimates) {
            err_total += std::abs(est - result.trueDifference) /
                         result.trueDifference;
        }
    }
    result.estimates = summarize(estimates);
    result.meanRelativeError =
        err_total / static_cast<double>(trials);
    return result;
}

} // namespace savat::core
