#include "core/assessment.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "core/detection.hh"
#include "support/stats.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace savat::core {

double
meanSavatZj(SavatMeter &meter, kernels::EventKind a,
            kernels::EventKind b, int reps, std::uint64_t seed)
{
    const auto &sim = meter.simulatePair(a, b);
    Rng rng(seed);
    RunningStats s;
    for (int i = 0; i < reps; ++i) {
        auto rep = rng.fork();
        s.add(meter.measure(sim, rep).savat.inZepto());
    }
    return s.mean();
}

double
netSavatZj(SavatMeter &meter, kernels::EventKind a,
           kernels::EventKind b, int reps, std::uint64_t seed)
{
    const double raw = meanSavatZj(meter, a, b, reps, seed);
    const double floor =
        0.5 * (meanSavatZj(meter, a, a, reps, seed) +
               meanSavatZj(meter, b, b, reps, seed));
    return std::max(0.0, raw - floor);
}

double
AssessmentReport::usesForMargin(double margin,
                                double bitsPerUse) const
{
    if (totalPerUseZj <= 0.0)
        return std::numeric_limits<double>::infinity();
    return margin * floorZj * bitsPerUse / totalPerUseZj;
}

double
AssessmentReport::usesForErrorRate(double targetError,
                                   double bitsPerUse) const
{
    if (floorZj <= 0.0)
        return std::numeric_limits<double>::infinity();
    return usesForError(totalPerUseZj / bitsPerUse, floorZj,
                        targetError);
}

AssessmentReport
assessProgram(SavatMeter &meter, const ProgramProfile &profile,
              int reps)
{
    AssessmentReport report;
    report.program = profile.name;
    report.floorZj =
        meanSavatZj(meter, kernels::EventKind::NOI,
                    kernels::EventKind::NOI, reps);

    for (const auto &site : profile.sites) {
        SiteAssessment sa;
        sa.site = site;
        sa.perInstanceZj =
            netSavatZj(meter, site.executed, site.alternative, reps);
        sa.perUseZj = sa.perInstanceZj *
                      static_cast<double>(site.instancesPerUse);
        report.totalPerUseZj += sa.perUseZj;
        report.sites.push_back(std::move(sa));
    }

    for (auto &sa : report.sites) {
        sa.share = report.totalPerUseZj > 0.0
                       ? sa.perUseZj / report.totalPerUseZj
                       : 0.0;
    }
    std::sort(report.sites.begin(), report.sites.end(),
              [](const SiteAssessment &x, const SiteAssessment &y) {
                  return x.perUseZj > y.perUseZj;
              });
    return report;
}

ProfileParseResult
parseProgramProfile(std::istream &in)
{
    ProfileParseResult res;
    auto fail = [&res](std::size_t line, const std::string &msg) {
        res.ok = false;
        res.error = msg;
        res.errorLine = line;
        return res;
    };

    std::string text;
    std::size_t line_no = 0;
    bool have_name = false;
    while (std::getline(in, text)) {
        ++line_no;
        const std::string line = trim(text);
        if (line.empty() || line.front() == '#')
            continue;
        if (startsWith(line, "program")) {
            const auto name = trim(line.substr(7));
            if (name.empty())
                return fail(line_no, "program needs a name");
            res.profile.name = name;
            have_name = true;
            continue;
        }
        if (startsWith(line, "site")) {
            const auto rest = trim(line.substr(4));
            if (rest.empty() || rest.front() != '"')
                return fail(line_no, "site needs a quoted label");
            const auto close = rest.find('"', 1);
            if (close == std::string::npos)
                return fail(line_no, "unterminated site label");
            CodeSite site;
            site.label = rest.substr(1, close - 1);
            const auto fields =
                splitWhitespace(rest.substr(close + 1));
            if (fields.size() != 3)
                return fail(line_no,
                            "site needs: \"label\" EXEC ALT count");
            bool known = false;
            for (auto e : kernels::extendedEvents()) {
                if (fields[0] == kernels::eventName(e)) {
                    site.executed = e;
                    known = true;
                }
            }
            if (!known)
                return fail(line_no,
                            "unknown event: " + fields[0]);
            known = false;
            for (auto e : kernels::extendedEvents()) {
                if (fields[1] == kernels::eventName(e)) {
                    site.alternative = e;
                    known = true;
                }
            }
            if (!known)
                return fail(line_no,
                            "unknown event: " + fields[1]);
            long long count = 0;
            if (!parseInt(fields[2], count) || count <= 0)
                return fail(line_no,
                            "bad instance count: " + fields[2]);
            site.instancesPerUse = static_cast<std::size_t>(count);
            res.profile.sites.push_back(std::move(site));
            continue;
        }
        return fail(line_no, "unrecognized directive: " + line);
    }
    if (!have_name)
        return fail(line_no, "missing 'program <name>' line");
    if (res.profile.sites.empty())
        return fail(line_no, "profile has no sites");
    res.ok = true;
    return res;
}

void
printAssessment(std::ostream &os, const AssessmentReport &report)
{
    os << "leakage assessment: " << report.program << "\n";
    os << format("measurement floor: %.2f zJ\n", report.floorZj);
    TextTable t;
    t.setHeader({"site", "difference", "instances",
                 "per-instance [zJ]", "per-use [zJ]", "share"});
    for (const auto &sa : report.sites) {
        t.startRow();
        t.addCell(sa.site.label);
        t.addCell(std::string(kernels::eventName(sa.site.executed)) +
                  " vs " + kernels::eventName(sa.site.alternative));
        t.addCell(static_cast<long long>(sa.site.instancesPerUse));
        t.addCell(sa.perInstanceZj, 3);
        t.addCell(sa.perUseZj, 1);
        t.addCell(format("%.0f%%", sa.share * 100.0));
    }
    t.render(os);
    os << format("total per secret use: %.1f zJ\n",
                 report.totalPerUseZj);
}

} // namespace savat::core
