/**
 * @file
 * The pairwise SAVAT matrix and its validation statistics.
 */

#ifndef SAVAT_CORE_MATRIX_HH
#define SAVAT_CORE_MATRIX_HH

#include <string>
#include <vector>

#include "kernels/events.hh"
#include "support/stats.hh"

namespace savat::core {

/**
 * An N x N matrix of SAVAT measurements (zJ), with the raw
 * per-repetition samples kept for repeatability statistics. Row =
 * event A, column = event B, as in the paper's Figure 9.
 */
class SavatMatrix
{
  public:
    explicit SavatMatrix(std::vector<kernels::EventKind> events);

    std::size_t size() const { return _events.size(); }
    const std::vector<kernels::EventKind> &events() const
    {
        return _events;
    }

    /** Row/column labels. */
    std::vector<std::string> labels() const;

    /** Append one repetition's value (zJ) for the (a, b) cell. */
    void addSample(std::size_t a, std::size_t b, double zj);

    /** All samples of a cell. */
    const std::vector<double> &samples(std::size_t a,
                                       std::size_t b) const;

    /** Mean of a cell's samples (zJ). */
    double mean(std::size_t a, std::size_t b) const;

    /** Summary statistics of a cell. */
    Summary cellSummary(std::size_t a, std::size_t b) const;

    /** Matrix of cell means. */
    std::vector<std::vector<double>> means() const;

    /** Means flattened row-major (for correlation tests). */
    std::vector<double> flatMeans() const;

    /**
     * Average coefficient of variation across cells: the paper
     * reports ~0.05 for its ten-repetition campaigns.
     */
    double meanCoefficientOfVariation() const;

    /**
     * Number of diagonal cells that are the minimum of both their
     * row and their column (the paper's validation: all but one).
     *
     * @param tolerance Slack in zJ: a diagonal still counts when an
     *        off-diagonal entry undercuts it by no more than this
     *        (the published matrix itself has 0.1 zJ rounding ties).
     */
    std::size_t diagonalMinimumCount(double tolerance = 0.0) const;

    /**
     * Mean relative difference |savat(a,b) - savat(b,a)| /
     * ((savat(a,b) + savat(b,a)) / 2) over off-diagonal pairs: the
     * paper uses A/B-vs-B/A agreement to bound the measurement error
     * from instruction placement.
     */
    double symmetryError() const;

    /**
     * Single-instruction SAVAT of an instruction class: the maximum
     * over pairwise SAVATs whose both events use the same instruction
     * (Section II). E.g. for loads: max over pairs of
     * {LDM, LDL2, LDL1}.
     */
    double singleInstructionSavat(
        const std::vector<kernels::EventKind> &group) const;

    /** Index of an event in this matrix; fatal if absent. */
    std::size_t indexOf(kernels::EventKind e) const;

    /** Index of an event, or -1 when the event is not present. */
    std::int64_t tryIndexOf(kernels::EventKind e) const;

  private:
    std::vector<kernels::EventKind> _events;
    std::vector<std::vector<std::vector<double>>> _cells;
};

} // namespace savat::core

#endif // SAVAT_CORE_MATRIX_HH
