/**
 * @file
 * Measurement campaigns: the paper's 11-by-11, ten-repetition
 * pairwise SAVAT sweeps.
 *
 * Campaigns execute in parallel: pairs are sharded across a bounded
 * worker team (support::parallel), each worker owning its own
 * SavatMeter so the per-pair simulation caches stay thread-local.
 * Every matrix cell draws from its own deterministically seeded RNG
 * stream and repetition streams are forked per cell exactly as in
 * the serial loop, so the resulting SavatMatrix is bit-identical
 * for every jobs value -- the same property the paper's Section V
 * repeatability analysis relies on.
 */

#ifndef SAVAT_CORE_CAMPAIGN_HH
#define SAVAT_CORE_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/matrix.hh"
#include "core/meter.hh"
#include "pipeline/replay.hh"
#include "resilience/retry.hh"
#include "support/logging.hh"
#include "support/progress.hh"

namespace savat::core {

/** How campaign cells are sharded across the machine. */
enum class IsolateMode : std::uint8_t
{
    /** In-process worker threads (support::parallel). Fastest; a
     * crash in any cell takes the whole campaign down. */
    Threads,

    /**
     * Forked worker processes supervised over savat-worker-wire-v1
     * pipes (savat::service::WorkerPool): dead workers are restarted
     * with backoff, cells that keep killing their worker are
     * quarantined as Degraded, and the campaign always completes.
     * Results are byte-identical to thread mode.
     */
    Procs,
};

const char *isolateModeName(IsolateMode mode);

/** Campaign parameters. */
struct CampaignConfig
{
    std::string machineId = "core2duo";

    /** Events to pair (defaults to all eleven of Figure 5). */
    std::vector<kernels::EventKind> events;

    /** Repetitions per cell (the paper uses 10, spread over days). */
    std::size_t repetitions = 10;

    /** Meter settings (frequency, distance, band...). */
    MeterConfig meter;

    /** Base seed; each repetition forks its own stream. */
    std::uint64_t seed = 0x5AFA7u;

    /**
     * Worker threads for pair-level parallelism. 0 means auto: the
     * SAVAT_JOBS environment variable when set, otherwise the
     * hardware thread count. When fewer pairs than workers are
     * requested, leftover workers parallelize the repetition loops
     * inside each cell. Results are bit-identical for every value.
     */
    std::size_t jobs = 0;

    /**
     * Retain each repetition's spectrum-analyzer display in
     * CampaignResult::traces. Off by default: campaigns consume
     * only the aggregates, and a full 11x11 run would otherwise
     * hold pairs x repetitions multi-thousand-bin sweeps.
     */
    bool keepTraces = false;

    /**
     * Per-pair containment (see resilience/retry.hh): failed or
     * non-finite cells are retried up to retry.maxAttempts times
     * and then marked Degraded instead of aborting the campaign.
     */
    resilience::RetryPolicy retry;

    /**
     * Deterministic fault-injection plan (resilience/fault.hh
     * grammar). Empty means the SAVAT_FAULT_PLAN environment
     * variable, and failing that, no injection.
     */
    std::string faultPlan;

    /**
     * When non-empty, periodically write a resumable checkpoint of
     * every completed cell here (atomic temp-file + rename; see
     * resilience/checkpoint.hh).
     */
    std::string checkpointPath;

    /** Completed pairs between checkpoint writes. */
    std::size_t checkpointEvery = 10;

    /**
     * When non-empty, warm-start from this checkpoint: cells it
     * carries are restored instead of re-measured. The checkpoint's
     * campaign identity (machine, meter, events, seed...) must
     * match; a mismatch is fatal.
     */
    std::string resumePath;

    /** Cell execution substrate (threads in-process, or supervised
     * worker processes). See IsolateMode. */
    IsolateMode isolate = IsolateMode::Threads;

    /**
     * IsolateMode::Procs only: worker processes to keep alive. 0
     * means the resolved `jobs` value. Byte-identical for every
     * count, exactly like `jobs`.
     */
    std::size_t workers = 0;

    /**
     * IsolateMode::Procs only: kill (and charge the crash budget
     * of) any cell still running after this many wall seconds; 0
     * disables the deadline.
     */
    double cellDeadlineSeconds = 0.0;

    /**
     * When non-empty, stream a crash-safe structured run journal
     * (savat-run-journal-v1 JSONL; see support/journal.hh) here:
     * run-start identity/provenance, one cell-start/cell-done pair
     * per cell, cell-retry and fault-injected records, checkpoint
     * writes and a run-end summary with the metrics snapshot. The
     * journal never touches any RNG stream, so the matrix stays
     * bit-identical with journaling on or off.
     */
    std::string journalPath;
};

/**
 * Progress callback: (pairs done, pairs total). Under parallel
 * execution it is invoked from worker threads, serialized by a
 * mutex, with a monotonically increasing done count. Shared with the
 * other long-running passes (see support/progress.hh;
 * obs::ProgressMeter is a ready-made rate-limited printer).
 */
using ProgressFn = obs::ProgressFn;

/** Campaign outputs. */
struct CampaignResult
{
    CampaignConfig config;
    SavatMatrix matrix;

    /**
     * Per-pair deterministic simulation info. Indexing contract:
     * always sized matrix.size()^2 and laid out row-major over the
     * campaign's event set -- slot a * matrix.size() + b holds the
     * pair (events[a], events[b]). Pairs never measured (campaigns
     * over a pair subset) leave their slot CellState::Skipped, and
     * pairs whose containment retries all failed are left
     * CellState::Degraded; reading either through simulation() is
     * fatal. Pairs whose events are not in the event set are skipped
     * with a warning rather than written out of contract.
     */
    std::vector<PairSimulation> simulations;

    /**
     * CampaignConfig::keepTraces only: traces[p][r] is repetition
     * r's analyzer display for the p-th requested pair, in request
     * order. Empty when keepTraces is off.
     */
    std::vector<std::vector<spectrum::Trace>> traces;

    /** The requested pairs, in request order (traces[p] indexing). */
    std::vector<std::pair<kernels::EventKind, kernels::EventKind>>
        pairs;

    /** Containment outcome of one requested pair. */
    struct CellHealth
    {
        pipeline::CellState state = pipeline::CellState::Skipped;

        /** Measurement attempts consumed (0 = restored/skipped). */
        std::size_t attempts = 0;

        /** Accumulated virtual retry backoff [s]. */
        double backoffSeconds = 0.0;

        /** Warm-started from a checkpoint, not measured here. */
        bool restored = false;

        /** Last failure description; empty for clean cells. */
        std::string lastError;
    };

    /** health[p] describes the p-th requested pair. */
    std::vector<CellHealth> health;

    /** Requested pairs whose every containment attempt failed. */
    std::size_t
    degradedCells() const
    {
        std::size_t n = 0;
        for (const auto &h : health)
            n += h.state == pipeline::CellState::Degraded;
        return n;
    }

    /** Requested pairs that needed more than one attempt. */
    std::size_t
    retriedCells() const
    {
        std::size_t n = 0;
        for (const auto &h : health)
            n += h.attempts > 1;
        return n;
    }

    /** Requested pairs restored from a resume checkpoint. */
    std::size_t
    restoredCells() const
    {
        std::size_t n = 0;
        for (const auto &h : health)
            n += h.restored;
        return n;
    }

    const PairSimulation &
    simulation(std::size_t a, std::size_t b) const
    {
        SAVAT_ASSERT(a < matrix.size() && b < matrix.size(),
                     "simulation(", a, ", ", b,
                     ") outside the ", matrix.size(), "x",
                     matrix.size(), " campaign matrix");
        const auto &sim = simulations[a * matrix.size() + b];
        SAVAT_ASSERT(sim.state != pipeline::CellState::Degraded,
                     "simulation(", a, ", ", b,
                     ") is degraded: every measurement attempt "
                     "failed; its products are unreliable");
        SAVAT_ASSERT(sim.measured(), "simulation(", a, ", ", b,
                     ") was never measured in this campaign");
        return sim;
    }
};

/**
 * Run a full pairwise campaign: every (A, B) combination, measured
 * `repetitions` times with fresh environmental randomness. `sink`,
 * when set, additionally receives the full health breakdown
 * (retried/degraded/skipped/restored) after every completed cell;
 * it is invoked under the same serialization as `progress`.
 */
CampaignResult runCampaign(const CampaignConfig &config,
                           const ProgressFn &progress = {},
                           const obs::ProgressSink &sink = {});

/**
 * Run only the selected pairs (used by the bar-chart figures);
 * other cells stay empty. Pairs whose events are missing from the
 * campaign's event set are skipped with a warning.
 */
CampaignResult runCampaignPairs(
    const CampaignConfig &config,
    const std::vector<std::pair<kernels::EventKind,
                                kernels::EventKind>> &pairs,
    const ProgressFn &progress = {},
    const obs::ProgressSink &sink = {});

/**
 * Package a keepTraces campaign for offline re-analysis: every
 * measured cell's recorded analyzer displays plus the pair rate the
 * replay needs to re-normalize. Fatal when the campaign was run
 * without keepTraces.
 */
pipeline::TraceRecording recordCampaign(const CampaignResult &result);

/**
 * Re-integrate a recording into a SavatMatrix (the ReplayChain's
 * BandIntegrate over every recorded cell). A record/replay round
 * trip of the same campaign reproduces the live matrix bit for bit.
 */
SavatMatrix replayMatrix(const pipeline::TraceRecording &recording);

} // namespace savat::core

#endif // SAVAT_CORE_CAMPAIGN_HH
