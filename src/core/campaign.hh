/**
 * @file
 * Measurement campaigns: the paper's 11-by-11, ten-repetition
 * pairwise SAVAT sweeps.
 */

#ifndef SAVAT_CORE_CAMPAIGN_HH
#define SAVAT_CORE_CAMPAIGN_HH

#include <functional>
#include <string>
#include <vector>

#include "core/matrix.hh"
#include "core/meter.hh"

namespace savat::core {

/** Campaign parameters. */
struct CampaignConfig
{
    std::string machineId = "core2duo";

    /** Events to pair (defaults to all eleven of Figure 5). */
    std::vector<kernels::EventKind> events;

    /** Repetitions per cell (the paper uses 10, spread over days). */
    std::size_t repetitions = 10;

    /** Meter settings (frequency, distance, band...). */
    MeterConfig meter;

    /** Base seed; each repetition forks its own stream. */
    std::uint64_t seed = 0x5AFA7u;
};

/** Progress callback: (pairs done, pairs total). */
using ProgressFn = std::function<void(std::size_t, std::size_t)>;

/** Campaign outputs. */
struct CampaignResult
{
    CampaignConfig config;
    SavatMatrix matrix;

    /** Per-pair deterministic simulation info (row-major). */
    std::vector<PairSimulation> simulations;

    const PairSimulation &
    simulation(std::size_t a, std::size_t b) const
    {
        return simulations[a * matrix.size() + b];
    }
};

/**
 * Run a full pairwise campaign: every (A, B) combination, measured
 * `repetitions` times with fresh environmental randomness.
 */
CampaignResult runCampaign(const CampaignConfig &config,
                           const ProgressFn &progress = {});

/**
 * Run only the selected pairs (used by the bar-chart figures);
 * other cells stay empty.
 */
CampaignResult runCampaignPairs(
    const CampaignConfig &config,
    const std::vector<std::pair<kernels::EventKind,
                                kernels::EventKind>> &pairs,
    const ProgressFn &progress = {});

} // namespace savat::core

#endif // SAVAT_CORE_CAMPAIGN_HH
