#include "spectrum/analyzer.hh"

#include <algorithm>
#include <cmath>

#include "dsp/simd.hh"
#include "support/arena.hh"
#include "support/logging.hh"
#include "support/obs.hh"

namespace savat::spectrum {

namespace {

/**
 * Bin index range [first, last] that can overlap [lo_hz, hi_hz],
 * padded by one bin so boundary rounding can never drop a
 * contributing bin; the per-bin overlap test stays the authority.
 */
std::pair<std::size_t, std::size_t>
clampedBinRange(double startHz, double binHz, std::size_t nbins,
                double lo_hz, double hi_hz)
{
    if (binHz <= 0.0 || nbins == 0)
        return {0, nbins ? nbins - 1 : 0};
    const double lo_idx =
        std::floor((lo_hz - startHz) / binHz - 0.5) - 1.0;
    const double hi_idx =
        std::ceil((hi_hz - startHz) / binHz + 0.5) + 1.0;
    const auto first = static_cast<std::size_t>(
        std::clamp(lo_idx, 0.0, static_cast<double>(nbins - 1)));
    const auto last = static_cast<std::size_t>(
        std::clamp(hi_idx, 0.0, static_cast<double>(nbins - 1)));
    return {first, last};
}

} // namespace

double
Trace::bandPower(double lo_hz, double hi_hz) const
{
    SAVAT_ASSERT(hi_hz >= lo_hz, "inverted band");
    SAVAT_METRIC_COUNT("spectrum.band_integrations");
    if (psd.empty())
        return 0.0;
    const auto [first, last] =
        clampedBinRange(startHz, binHz, psd.size(), lo_hz, hi_hz);

    // Partial edge bins integrate their exact overlap; the interior
    // run of fully-covered bins goes through the lane-strided sum
    // kernel (bit-exact across dispatch levels) times the bin width.
    double power = 0.0;
    std::size_t i = first;
    for (; i <= last; ++i) {
        const double lo = frequency(i) - 0.5 * binHz;
        const double hi = frequency(i) + 0.5 * binHz;
        if (lo >= lo_hz && hi <= hi_hz)
            break; // start of the fully-covered run
        const double olo = std::max(lo, lo_hz);
        const double ohi = std::min(hi, hi_hz);
        if (ohi > olo)
            power += psd[i] * (ohi - olo);
    }
    std::size_t fullEnd = i;
    while (fullEnd <= last) {
        const double lo = frequency(fullEnd) - 0.5 * binHz;
        const double hi = frequency(fullEnd) + 0.5 * binHz;
        if (!(lo >= lo_hz && hi <= hi_hz))
            break;
        ++fullEnd;
    }
    if (fullEnd > i)
        power += dsp::simd::kernels().sum(psd.data() + i,
                                          fullEnd - i) *
                 binHz;
    for (i = fullEnd; i <= last && i < psd.size(); ++i) {
        const double lo = frequency(i) - 0.5 * binHz;
        const double hi = frequency(i) + 0.5 * binHz;
        const double olo = std::max(lo, lo_hz);
        const double ohi = std::min(hi, hi_hz);
        if (ohi > olo)
            power += psd[i] * (ohi - olo);
    }
    return power;
}

double
Trace::peakFrequency(double lo_hz, double hi_hz) const
{
    double best_f = lo_hz;
    double best_v = -1.0;
    if (psd.empty())
        return best_f;
    const auto [first, last] =
        clampedBinRange(startHz, binHz, psd.size(), lo_hz, hi_hz);
    for (std::size_t i = first; i <= last; ++i) {
        const double f = frequency(i);
        if (f < lo_hz || f > hi_hz)
            continue;
        if (psd[i] > best_v) {
            best_v = psd[i];
            best_f = f;
        }
    }
    return best_f;
}

double
Trace::peakPsd(double lo_hz, double hi_hz) const
{
    double best_v = 0.0;
    if (psd.empty())
        return best_v;
    const auto [first, last] =
        clampedBinRange(startHz, binHz, psd.size(), lo_hz, hi_hz);
    for (std::size_t i = first; i <= last; ++i) {
        const double f = frequency(i);
        if (f >= lo_hz && f <= hi_hz)
            best_v = std::max(best_v, psd[i]);
    }
    return best_v;
}

SpectrumAnalyzer::SpectrumAnalyzer(const SweepConfig &config)
    : _config(config)
{
    SAVAT_ASSERT(_config.rbwHz > 0.0, "non-positive RBW");
    SAVAT_ASSERT(_config.spanHz > 0.0, "non-positive span");
    SAVAT_ASSERT(_config.center.inHz() > _config.spanHz / 2.0,
                 "sweep extends below DC");
}

Trace
SpectrumAnalyzer::measure(const em::NarrowbandSpectrum &incident,
                          Rng &rng) const
{
    Trace out;
    measureInto(incident, rng, out);
    return out;
}

void
SpectrumAnalyzer::measureInto(const em::NarrowbandSpectrum &incident,
                              Rng &rng, Trace &out,
                              support::Arena *arena) const
{
    sweepInto(incident.startHz, incident.binHz, incident.psd.data(),
              incident.size(), rng, out, arena);
}

void
SpectrumAnalyzer::sweepInto(double startHz, double binHz,
                            const double *psd, std::size_t bins,
                            Rng &rng, Trace &out,
                            support::Arena *arena) const
{
    SAVAT_ASSERT(binHz > 0.0, "non-positive incident bin width");
    out.binHz = binHz;
    out.startHz = _config.center.inHz() - _config.spanHz / 2.0;
    const std::size_t nbins = static_cast<std::size_t>(
        std::lround(_config.spanHz / out.binHz)) + 1;
    out.psd.assign(nbins, 0.0);

    SAVAT_METRIC_COUNT("spectrum.sweeps");
    SAVAT_METRIC_ADD("spectrum.bins_swept", nbins);

    // Gaussian RBW filter: each displayed bin integrates the
    // incident PSD weighted by the RBW shape centered on the bin.
    // sigma chosen so the -3 dB width equals the RBW.
    const double sigma = _config.rbwHz / 2.3548;
    const int reach = std::max(
        1, static_cast<int>(std::ceil(3.0 * sigma / binHz)));
    const double rbwFactor =
        _config.rbwHz >= binHz ? 1.0 : _config.rbwHz / binHz;

    // Aligned-grid fast path: when display and incident grids are
    // the same grid (the campaign default: both start at f0 - span/2
    // with 1 Hz bins), the filter collapses to 2*reach + 1 fixed
    // taps applied as one axpy pass per tap -- vectorized across
    // bins, bit-exact across dispatch levels, and identical for any
    // --jobs value since the alignment decision depends only on the
    // sweep geometry.
    const bool aligned =
        bins == nbins && out.startHz == startHz && out.binHz == binHz;
    if (aligned) {
        const auto &kern = dsp::simd::kernels();
        const std::size_t r = static_cast<std::size_t>(reach);
        double tapsLocal[33];
        std::vector<double> tapsBig;
        double *taps = tapsLocal;
        if (2 * r + 1 > 33) {
            tapsBig.resize(2 * r + 1);
            taps = tapsBig.data();
        }
        double wsumFull = 0.0;
        for (int k = -reach; k <= reach; ++k) {
            const double df = static_cast<double>(k) * binHz;
            taps[k + reach] =
                std::exp(-0.5 * (df / sigma) * (df / sigma));
            wsumFull += taps[k + reach];
        }

        // Edge bins: partial tap windows, scalar, in tap order.
        auto edgeBin = [&](std::size_t i) {
            double acc = 0.0;
            double wsum = 0.0;
            for (int k = -reach; k <= reach; ++k) {
                const std::ptrdiff_t j =
                    static_cast<std::ptrdiff_t>(i) + k;
                if (j < 0 || j >= static_cast<std::ptrdiff_t>(bins))
                    continue;
                acc += taps[k + reach] *
                       psd[static_cast<std::size_t>(j)];
                wsum += taps[k + reach];
            }
            if (wsum > 0.0)
                out.psd[i] = acc / wsum * rbwFactor;
        };
        const std::size_t lastEdge = std::min(nbins, r);
        for (std::size_t i = 0; i < lastEdge; ++i)
            edgeBin(i);
        if (nbins > 2 * r) {
            // Interior: one axpy pass per tap, in tap order, so the
            // per-bin accumulation order matches the scalar filter.
            const std::size_t len = nbins - 2 * r;
            for (int k = -reach; k <= reach; ++k)
                kern.axpy(taps[k + reach],
                          psd + static_cast<std::size_t>(
                                    static_cast<std::ptrdiff_t>(r) + k),
                          out.psd.data() + r, len);
            for (std::size_t i = r; i < nbins - r; ++i)
                out.psd[i] = out.psd[i] / wsumFull * rbwFactor;
            for (std::size_t i = nbins - r; i < nbins; ++i)
                edgeBin(i);
        } else {
            for (std::size_t i = lastEdge; i < nbins; ++i)
                edgeBin(i);
        }

        // Instrument noise: the uniforms are staged in bin order
        // (preserving the RNG stream), then transformed through the
        // vectorized -log kernel.
        double *ubuf;
        std::vector<double> fallback;
        if (arena != nullptr) {
            ubuf = arena->alloc<double>(nbins);
        } else {
            fallback.resize(nbins);
            ubuf = fallback.data();
        }
        for (std::size_t i = 0; i < nbins; ++i) {
            double u;
            do {
                u = rng.uniform();
            } while (u <= 0.0);
            ubuf[i] = u;
        }
        kern.negLogAccum(_config.noiseFloorWPerHz, ubuf,
                         out.psd.data(), nbins);
        return;
    }

    // Legacy path for arbitrary incident grids: per-bin Gaussian
    // window around the nearest incident bin.
    const double end_hz =
        bins == 0 ? startHz
                  : startHz + static_cast<double>(bins - 1) * binHz;

    for (std::size_t i = 0; i < nbins; ++i) {
        const double f = out.frequency(i);
        if (bins > 0 && f >= startHz - 1.0 && f <= end_hz + 1.0) {
            const double idx = (f - startHz) / binHz;
            const double clamped = std::clamp(
                idx, 0.0, static_cast<double>(bins - 1));
            const std::ptrdiff_t center =
                static_cast<std::ptrdiff_t>(std::lround(clamped));
            double acc = 0.0;
            double wsum = 0.0;
            for (int k = -reach; k <= reach; ++k) {
                const std::ptrdiff_t j = center + k;
                if (j < 0 ||
                    j >= static_cast<std::ptrdiff_t>(bins)) {
                    continue;
                }
                const double df =
                    startHz + static_cast<double>(j) * binHz - f;
                const double w =
                    std::exp(-0.5 * (df / sigma) * (df / sigma));
                acc += w * psd[static_cast<std::size_t>(j)];
                wsum += w;
            }
            if (wsum > 0.0)
                out.psd[i] = acc / wsum * rbwFactor;
        }
        // Instrument noise: exponentially distributed around the
        // configured displayed-average-noise-level.
        double u;
        do {
            u = rng.uniform();
        } while (u <= 0.0);
        out.psd[i] += _config.noiseFloorWPerHz * -std::log(u);
    }
}

} // namespace savat::spectrum
