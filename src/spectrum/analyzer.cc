#include "spectrum/analyzer.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"
#include "support/obs.hh"

namespace savat::spectrum {

double
Trace::bandPower(double lo_hz, double hi_hz) const
{
    SAVAT_ASSERT(hi_hz >= lo_hz, "inverted band");
    SAVAT_METRIC_COUNT("spectrum.band_integrations");
    double power = 0.0;
    for (std::size_t i = 0; i < psd.size(); ++i) {
        const double lo = frequency(i) - 0.5 * binHz;
        const double hi = frequency(i) + 0.5 * binHz;
        const double olo = std::max(lo, lo_hz);
        const double ohi = std::min(hi, hi_hz);
        if (ohi > olo)
            power += psd[i] * (ohi - olo);
    }
    return power;
}

double
Trace::peakFrequency(double lo_hz, double hi_hz) const
{
    double best_f = lo_hz;
    double best_v = -1.0;
    for (std::size_t i = 0; i < psd.size(); ++i) {
        const double f = frequency(i);
        if (f < lo_hz || f > hi_hz)
            continue;
        if (psd[i] > best_v) {
            best_v = psd[i];
            best_f = f;
        }
    }
    return best_f;
}

double
Trace::peakPsd(double lo_hz, double hi_hz) const
{
    double best_v = 0.0;
    for (std::size_t i = 0; i < psd.size(); ++i) {
        const double f = frequency(i);
        if (f >= lo_hz && f <= hi_hz)
            best_v = std::max(best_v, psd[i]);
    }
    return best_v;
}

SpectrumAnalyzer::SpectrumAnalyzer(const SweepConfig &config)
    : _config(config)
{
    SAVAT_ASSERT(_config.rbwHz > 0.0, "non-positive RBW");
    SAVAT_ASSERT(_config.spanHz > 0.0, "non-positive span");
    SAVAT_ASSERT(_config.center.inHz() > _config.spanHz / 2.0,
                 "sweep extends below DC");
}

Trace
SpectrumAnalyzer::measure(const em::NarrowbandSpectrum &incident,
                          Rng &rng) const
{
    Trace out;
    measureInto(incident, rng, out);
    return out;
}

void
SpectrumAnalyzer::measureInto(const em::NarrowbandSpectrum &incident,
                              Rng &rng, Trace &out) const
{
    sweepInto(incident.startHz, incident.binHz, incident.psd.data(),
              incident.size(), rng, out);
}

void
SpectrumAnalyzer::sweepInto(double startHz, double binHz,
                            const double *psd, std::size_t bins,
                            Rng &rng, Trace &out) const
{
    SAVAT_ASSERT(binHz > 0.0, "non-positive incident bin width");
    out.binHz = binHz;
    out.startHz = _config.center.inHz() - _config.spanHz / 2.0;
    const std::size_t nbins = static_cast<std::size_t>(
        std::lround(_config.spanHz / out.binHz)) + 1;
    out.psd.assign(nbins, 0.0);

    SAVAT_METRIC_COUNT("spectrum.sweeps");
    SAVAT_METRIC_ADD("spectrum.bins_swept", nbins);

    const double end_hz =
        bins == 0 ? startHz
                  : startHz + static_cast<double>(bins - 1) * binHz;

    // Gaussian RBW filter: each displayed bin integrates the
    // incident PSD weighted by the RBW shape centered on the bin.
    // sigma chosen so the -3 dB width equals the RBW.
    const double sigma = _config.rbwHz / 2.3548;
    const int reach = std::max(
        1, static_cast<int>(std::ceil(3.0 * sigma / binHz)));

    for (std::size_t i = 0; i < nbins; ++i) {
        const double f = out.frequency(i);
        if (bins > 0 && f >= startHz - 1.0 && f <= end_hz + 1.0) {
            const double idx = (f - startHz) / binHz;
            const double clamped = std::clamp(
                idx, 0.0, static_cast<double>(bins - 1));
            const std::ptrdiff_t center =
                static_cast<std::ptrdiff_t>(std::lround(clamped));
            double acc = 0.0;
            double wsum = 0.0;
            for (int k = -reach; k <= reach; ++k) {
                const std::ptrdiff_t j = center + k;
                if (j < 0 ||
                    j >= static_cast<std::ptrdiff_t>(bins)) {
                    continue;
                }
                const double df =
                    startHz + static_cast<double>(j) * binHz - f;
                const double w =
                    std::exp(-0.5 * (df / sigma) * (df / sigma));
                acc += w * psd[static_cast<std::size_t>(j)];
                wsum += w;
            }
            if (wsum > 0.0)
                out.psd[i] = acc / wsum *
                    (_config.rbwHz >= binHz
                         ? 1.0
                         : _config.rbwHz / binHz);
        }
        // Instrument noise: exponentially distributed around the
        // configured displayed-average-noise-level.
        double u;
        do {
            u = rng.uniform();
        } while (u <= 0.0);
        out.psd[i] += _config.noiseFloorWPerHz * -std::log(u);
    }
}

} // namespace savat::spectrum
