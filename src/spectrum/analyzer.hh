/**
 * @file
 * Spectrum analyzer model (Agilent MXA N9020A class).
 *
 * The instrument's job in the paper's methodology is narrowband
 * power measurement: sweep a window around the alternation
 * frequency at 1 Hz resolution bandwidth and integrate the received
 * power in a +/- 1 kHz band. The model applies an RBW filter (a
 * Gaussian, like the analog/digital RBW filters in real analyzers),
 * adds the instrument's displayed-average-noise-level floor, and
 * exposes trace, marker and band-power operations.
 */

#ifndef SAVAT_SPECTRUM_ANALYZER_HH
#define SAVAT_SPECTRUM_ANALYZER_HH

#include <vector>

#include "em/narrowband.hh"
#include "support/rng.hh"
#include "support/units.hh"

namespace savat::support {
class Arena;
} // namespace savat::support

namespace savat::spectrum {

/** Sweep configuration. */
struct SweepConfig
{
    Frequency center;             //!< window center
    double spanHz = 4000.0;       //!< full span of the sweep
    double rbwHz = 1.0;           //!< resolution bandwidth
    /** Instrument noise floor (DANL) [W/Hz]. Figure 8 shows
     * ~6e-18 W/Hz total; the instrument contributes most of it. */
    double noiseFloorWPerHz = 5.0e-18;
};

/** A captured trace: PSD per display bin. */
struct Trace
{
    double startHz = 0.0;
    double binHz = 1.0;
    std::vector<double> psd; //!< displayed PSD [W/Hz]

    std::size_t size() const { return psd.size(); }

    double frequency(std::size_t i) const
    {
        return startHz + static_cast<double>(i) * binHz;
    }

    /** Integrated band power in [lo, hi] (W). */
    double bandPower(double lo_hz, double hi_hz) const;

    /** Frequency of the largest bin in [lo, hi]. */
    double peakFrequency(double lo_hz, double hi_hz) const;

    /** Largest PSD in [lo, hi]. */
    double peakPsd(double lo_hz, double hi_hz) const;
};

/** The analyzer front-end. */
class SpectrumAnalyzer
{
  public:
    explicit SpectrumAnalyzer(const SweepConfig &config);

    /**
     * Measure an incident spectrum: apply the RBW filter, add the
     * instrument floor (random per bin around the configured DANL)
     * and return the displayed trace.
     */
    Trace measure(const em::NarrowbandSpectrum &incident, Rng &rng) const;

    /**
     * Same measurement written into a caller-owned trace, reusing
     * its bin storage. Campaign repetition loops call this with a
     * per-worker scratch trace so a sweep costs no allocation. The
     * optional arena provides the noise-staging scratch buffer; when
     * absent a local buffer is allocated.
     */
    void measureInto(const em::NarrowbandSpectrum &incident, Rng &rng,
                     Trace &out,
                     support::Arena *arena = nullptr) const;

    /**
     * Chain-agnostic sweep entry point: identical to measureInto()
     * but over a raw PSD array, so signal chains that do not build a
     * NarrowbandSpectrum (e.g. replayed captures) can drive the same
     * RBW filter and instrument-floor model.
     *
     * @param startHz Frequency of incident bin 0.
     * @param binHz   Incident bin width (> 0).
     * @param psd     Incident PSD [W/Hz], one value per bin.
     * @param bins    Number of incident bins.
     */
    void sweepInto(double startHz, double binHz, const double *psd,
                   std::size_t bins, Rng &rng, Trace &out,
                   support::Arena *arena = nullptr) const;

    const SweepConfig &config() const { return _config; }

  private:
    SweepConfig _config;
};

} // namespace savat::spectrum

#endif // SAVAT_SPECTRUM_ANALYZER_HH
