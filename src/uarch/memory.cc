#include "uarch/memory.hh"

#include <algorithm>
#include <array>
#include <cstring>

#include "support/logging.hh"

namespace savat::uarch {

std::uint8_t *
SparseMemory::pageFor(std::uint64_t addr) const
{
    const std::uint64_t page = addr / kPageBytes;
    if (page == _lastPage)
        return _lastData;
    auto it = _pages.find(page);
    if (it == _pages.end()) {
        auto mem = std::make_unique<std::uint8_t[]>(kPageBytes);
        std::memset(mem.get(), 0, kPageBytes);
        it = _pages.emplace(page, std::move(mem)).first;
    }
    _lastPage = page;
    _lastData = it->second.get();
    return _lastData;
}

std::uint8_t
SparseMemory::readByte(std::uint64_t addr) const
{
    return pageFor(addr)[addr % kPageBytes];
}

void
SparseMemory::writeByte(std::uint64_t addr, std::uint8_t value)
{
    pageFor(addr)[addr % kPageBytes] = value;
}

namespace {

/** The word's little-endian byte image (the layout readWord /
 * writeWord define, independent of the host byte order). */
inline std::array<std::uint8_t, 4>
wordBytes(std::uint32_t value)
{
    return {static_cast<std::uint8_t>(value),
            static_cast<std::uint8_t>(value >> 8),
            static_cast<std::uint8_t>(value >> 16),
            static_cast<std::uint8_t>(value >> 24)};
}

} // namespace

std::uint32_t
SparseMemory::readWord(std::uint64_t addr) const
{
    const std::uint64_t off = addr % kPageBytes;
    if (off + 4 <= kPageBytes) {
        const std::uint8_t *p = pageFor(addr) + off;
        return static_cast<std::uint32_t>(p[0]) |
               (static_cast<std::uint32_t>(p[1]) << 8) |
               (static_cast<std::uint32_t>(p[2]) << 16) |
               (static_cast<std::uint32_t>(p[3]) << 24);
    }
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | readByte(addr + static_cast<std::uint64_t>(i));
    return v;
}

void
SparseMemory::writeWord(std::uint64_t addr, std::uint32_t value)
{
    const std::uint64_t off = addr % kPageBytes;
    if (off + 4 <= kPageBytes) {
        const auto bytes = wordBytes(value);
        std::memcpy(pageFor(addr) + off, bytes.data(), 4);
        return;
    }
    for (int i = 0; i < 4; ++i) {
        writeByte(addr + static_cast<std::uint64_t>(i),
                  static_cast<std::uint8_t>(value >> (8 * i)));
    }
}

void
SparseMemory::fillWords(std::uint64_t addr, std::uint32_t value,
                        std::uint64_t count)
{
    const auto bytes = wordBytes(value);
    while (count > 0) {
        const std::uint64_t off = addr % kPageBytes;
        const std::uint64_t fit = (kPageBytes - off) / 4;
        if (fit == 0) {
            // Word straddles the page boundary.
            writeWord(addr, value);
            addr += 4;
            --count;
            continue;
        }
        std::uint8_t *p = pageFor(addr) + off;
        const std::uint64_t here = std::min(count, fit);
        for (std::uint64_t w = 0; w < here; ++w)
            std::memcpy(p + 4 * w, bytes.data(), 4);
        addr += 4 * here;
        count -= here;
    }
}

MainMemory::MainMemory(std::uint32_t latency, std::uint32_t burstCycles,
                       ActivitySink &sink)
    : _latency(latency), _burstCycles(burstCycles), _sink(sink)
{
    SAVAT_ASSERT(latency >= 1 && burstCycles >= 1,
                 "degenerate memory timing");
}

std::uint32_t
MainMemory::read(std::uint64_t, std::uint64_t cycle)
{
    ++_stats.reads;
    // DRAM array activity during the access, then the burst back over
    // the off-chip bus ending when the data arrives.
    _sink.record(MicroEvent::DramRead, cycle, _latency);
    const std::uint64_t burst_start =
        cycle + (_latency > _burstCycles ? _latency - _burstCycles : 0);
    _sink.record(MicroEvent::BusRead, burst_start, _burstCycles);
    return _latency;
}

void
MainMemory::writeback(std::uint64_t, std::uint64_t cycle)
{
    ++_stats.writes;
    _sink.record(MicroEvent::BusWrite, cycle, _burstCycles);
    _sink.record(MicroEvent::DramWrite, cycle + _burstCycles,
                 _burstCycles);
}

} // namespace savat::uarch
