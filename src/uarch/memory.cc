#include "uarch/memory.hh"

#include <cstring>

#include "support/logging.hh"

namespace savat::uarch {

std::uint8_t *
SparseMemory::pageFor(std::uint64_t addr) const
{
    const std::uint64_t page = addr / kPageBytes;
    auto it = _pages.find(page);
    if (it == _pages.end()) {
        auto mem = std::make_unique<std::uint8_t[]>(kPageBytes);
        std::memset(mem.get(), 0, kPageBytes);
        it = _pages.emplace(page, std::move(mem)).first;
    }
    return it->second.get();
}

std::uint8_t
SparseMemory::readByte(std::uint64_t addr) const
{
    return pageFor(addr)[addr % kPageBytes];
}

void
SparseMemory::writeByte(std::uint64_t addr, std::uint8_t value)
{
    pageFor(addr)[addr % kPageBytes] = value;
}

std::uint32_t
SparseMemory::readWord(std::uint64_t addr) const
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | readByte(addr + static_cast<std::uint64_t>(i));
    return v;
}

void
SparseMemory::writeWord(std::uint64_t addr, std::uint32_t value)
{
    for (int i = 0; i < 4; ++i) {
        writeByte(addr + static_cast<std::uint64_t>(i),
                  static_cast<std::uint8_t>(value >> (8 * i)));
    }
}

MainMemory::MainMemory(std::uint32_t latency, std::uint32_t burstCycles,
                       ActivitySink &sink)
    : _latency(latency), _burstCycles(burstCycles), _sink(sink)
{
    SAVAT_ASSERT(latency >= 1 && burstCycles >= 1,
                 "degenerate memory timing");
}

std::uint32_t
MainMemory::read(std::uint64_t, std::uint64_t cycle)
{
    ++_stats.reads;
    // DRAM array activity during the access, then the burst back over
    // the off-chip bus ending when the data arrives.
    _sink.record(MicroEvent::DramRead, cycle, _latency);
    const std::uint64_t burst_start =
        cycle + (_latency > _burstCycles ? _latency - _burstCycles : 0);
    _sink.record(MicroEvent::BusRead, burst_start, _burstCycles);
    return _latency;
}

void
MainMemory::writeback(std::uint64_t, std::uint64_t cycle)
{
    ++_stats.writes;
    _sink.record(MicroEvent::BusWrite, cycle, _burstCycles);
    _sink.record(MicroEvent::DramWrite, cycle + _burstCycles,
                 _burstCycles);
}

} // namespace savat::uarch
