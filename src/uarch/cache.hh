/**
 * @file
 * Set-associative write-back, write-allocate cache timing model.
 *
 * This is the substrate the paper's LDL1/LDL2/LDM/STL1/STL2/STM event
 * classes are defined against: a load sweeping an array that fits in
 * L1 produces pure L1 hits, one that fits only in L2 produces L1
 * misses serviced by L2, and so on. Dirty-line write-backs are
 * modeled explicitly because the paper attributes the elevated STL2
 * SAVAT to the extra L2 traffic they cause.
 */

#ifndef SAVAT_UARCH_CACHE_HH
#define SAVAT_UARCH_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "uarch/activity.hh"
#include "uarch/memory.hh"

namespace savat::uarch {

/** Size/shape/latency of one cache level. */
struct CacheGeometry
{
    std::uint32_t sizeBytes = 0;
    std::uint32_t assoc = 0;
    std::uint32_t lineBytes = 0;
    /** Access (hit) latency in cycles. */
    std::uint32_t hitLatency = 1;
    /**
     * Extra stall charged to a demand miss that must first write
     * back a dirty victim (write-back buffer pressure). 0 = free.
     */
    std::uint32_t dirtyEvictPenalty = 0;

    std::uint32_t numLines() const { return sizeBytes / lineBytes; }
    std::uint32_t numSets() const { return numLines() / assoc; }

    /** Validate shape (power-of-two sets/lines, divisibility). */
    bool valid() const;
};

/** Per-cache event statistics. */
struct CacheStats
{
    std::uint64_t readHits = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeHits = 0;
    std::uint64_t writeMisses = 0;
    std::uint64_t writebacksIn = 0;  //!< write-backs received from above
    std::uint64_t writebacksOut = 0; //!< dirty evictions sent below

    std::uint64_t reads() const { return readHits + readMisses; }
    std::uint64_t writes() const { return writeHits + writeMisses; }

    double
    missRate() const
    {
        const auto total = reads() + writes();
        if (total == 0)
            return 0.0;
        return static_cast<double>(readMisses + writeMisses) /
               static_cast<double>(total);
    }
};

/** MicroEvents a cache level reports (differs per level). */
struct CacheLevelEvents
{
    MicroEvent read;
    MicroEvent write;
    MicroEvent fill;
    MicroEvent evict;
};

/**
 * One cache level. LRU replacement, write-back, write-allocate.
 * Timing is blocking for demand accesses; write-backs travel through
 * buffered, non-blocking paths.
 */
class Cache : public MemLevel
{
  public:
    /**
     * @param name   Diagnostic name ("L1", "L2").
     * @param geom   Geometry and latency.
     * @param events Event codes this level reports.
     * @param next   Next level (closer to memory).
     * @param sink   Receiver for activity events.
     */
    Cache(std::string name, const CacheGeometry &geom,
          const CacheLevelEvents &events, MemLevel &next,
          ActivitySink &sink);

    /** Demand load. Returns total latency in cycles. */
    std::uint32_t read(std::uint64_t addr, std::uint64_t cycle) override;

    /** Dirty-line write-back arriving from the level above. */
    void writeback(std::uint64_t addr, std::uint64_t cycle) override;

    /** Demand store (write-allocate). Returns total latency. */
    std::uint32_t write(std::uint64_t addr, std::uint64_t cycle);

    /** True if the line containing addr is currently resident. */
    bool contains(std::uint64_t addr) const;

    /**
     * Prime+probe support: demand-read one address per way of `set`
     * inside the attacker array at `base` (way-major layout, one
     * line per set per way) and return the summed latency — the
     * software attacker's per-set probe time. The reads run through
     * the normal demand path, so they re-prime the set as a side
     * effect, exactly like a real prime+probe sweep.
     */
    std::uint32_t probeSet(std::uint32_t set, std::uint64_t base,
                           std::uint64_t cycle);

    /**
     * Full prime/probe sweep: probeSet() over every set of the
     * cache, returning the total latency in cycles. Callers that
     * only want to prime discard the result.
     */
    std::uint64_t probeSweep(std::uint64_t base, std::uint64_t cycle);

    /** True if the line containing addr is resident and dirty. */
    bool isDirty(std::uint64_t addr) const;

    /** Invalidate all lines (drops dirty data; test helper). */
    void flushAll();

    const CacheStats &stats() const { return _stats; }
    void clearStats() { _stats = {}; }

    const std::string &name() const { return _name; }
    const CacheGeometry &geometry() const { return _geom; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::string _name;
    CacheGeometry _geom;
    CacheLevelEvents _events;
    MemLevel &_next;
    ActivitySink &_sink;
    CacheStats _stats;
    std::vector<Line> _lines; // numSets * assoc, set-major

    std::uint64_t lineAddr(std::uint64_t addr) const;
    std::uint32_t setIndex(std::uint64_t addr) const;
    std::uint64_t tagOf(std::uint64_t addr) const;

    /** Find the way holding addr in its set; -1 when absent. */
    int findWay(std::uint64_t addr) const;

    /**
     * Choose a victim way in addr's set (invalid first, else LRU),
     * writing back its dirty contents if necessary.
     *
     * @param way_out Receives the victim way.
     * @return Stall penalty (cycles): dirtyEvictPenalty when a dirty
     *         victim had to be written back, else 0.
     */
    std::uint32_t evictFor(std::uint64_t addr, std::uint64_t cycle,
                           std::uint32_t &way_out);

    /**
     * Bring the line containing addr into the cache (running the
     * eviction and the fill), returning the added latency.
     *
     * @param cycle   Time the fill begins (tag probe done).
     * @param request Time of the demand access: used as the LRU
     *                stamp so replacement follows request order.
     */
    std::uint32_t fillLine(std::uint64_t addr, std::uint64_t cycle,
                           std::uint64_t request, bool dirty);

    Line &lineAt(std::uint32_t set, std::uint32_t way);
    const Line &lineAt(std::uint32_t set, std::uint32_t way) const;
};

} // namespace savat::uarch

#endif // SAVAT_UARCH_CACHE_HH
