/**
 * @file
 * Machine configurations for the three laptops in the paper's case
 * study (Figure 6), plus the timing parameters of the modeled cores.
 */

#ifndef SAVAT_UARCH_MACHINE_HH
#define SAVAT_UARCH_MACHINE_HH

#include <string>
#include <vector>

#include "support/units.hh"
#include "uarch/cache.hh"

namespace savat::uarch {

/**
 * Core timing style.
 *
 * Pipelined models the case-study machines: simple ALU/MUL/branch
 * work is hidden by issue bandwidth (1 instruction/cycle), loads and
 * stores expose only the latency beyond an L1 hit, and the iterative
 * divider blocks for its full latency. Scalar is a non-pipelined
 * in-order model (every instruction charged its full latency) used in
 * substrate-sensitivity ablations.
 */
enum class TimingModel { Pipelined, Scalar };

/** Per-opcode-class execution latencies (cycles). */
struct OpLatencies
{
    std::uint32_t alu = 1;       //!< add/sub/and/or/xor/cmp/test/inc/dec
    std::uint32_t mov = 1;       //!< register/immediate moves
    std::uint32_t imul = 3;      //!< integer multiply
    std::uint32_t idiv = 22;     //!< integer divide (iterative)
    std::uint32_t branch = 1;    //!< not-taken branch
    std::uint32_t branchTaken = 2; //!< taken branch (redirect penalty)
    std::uint32_t nop = 1;
    std::uint32_t agu = 1;       //!< address generation for mem ops
    /** Pipeline flush cost of a branch misprediction (pipelined
     * timing model only; the scalar model has no predictor). */
    std::uint32_t branchMispredict = 12;
};

/**
 * Speculation frontier of the pipelined core.
 *
 * When the window is nonzero, a branch misprediction fetches and
 * executes up to `window` wrong-path instructions before the
 * architectural squash. Wrong-path loads go through the real cache
 * hierarchy — their line fills and evictions persist after the
 * squash (the Spectre-v1 mechanism) — while wrong-path stores are
 * buffered and dropped. The default window of 0 disables the
 * frontier entirely: the core is then the classic in-order model,
 * byte-identical to the pre-speculation simulator.
 */
struct SpeculationConfig
{
    /** Wrong-path instructions per misprediction; 0 disables. */
    std::uint32_t window = 0;

    bool enabled() const { return window > 0; }
};

/** Complete description of a simulated machine. */
struct MachineConfig
{
    std::string id;    //!< short identifier ("core2duo")
    std::string name;  //!< display name ("Intel Core 2 Duo")

    Frequency clock;   //!< core clock

    CacheGeometry l1;  //!< L1 data cache
    CacheGeometry l2;  //!< unified L2 cache

    std::uint32_t memLatency = 200;  //!< off-chip access latency (cycles)
    std::uint32_t memBurst = 16;     //!< bus burst occupancy (cycles)

    OpLatencies lat;
    TimingModel timing = TimingModel::Pipelined;
    SpeculationConfig spec; //!< speculation frontier (off by default)

    /** Cycles per intended alternation period at the given frequency. */
    double
    cyclesPerPeriod(Frequency alternation) const
    {
        return clock.inHz() / alternation.inHz();
    }
};

/** Intel Core 2 Duo laptop: 32 KB 8-way L1, 4096 KB 16-way L2. */
MachineConfig core2duo();

/** Intel Pentium 3 M laptop: 16 KB 4-way L1, 512 KB 8-way L2. */
MachineConfig pentium3m();

/** AMD Turion X2 laptop: 64 KB 2-way L1, 1024 KB 16-way L2. */
MachineConfig turionx2();

/** All three case-study machines. */
std::vector<MachineConfig> caseStudyMachines();

/** Look up a machine by id; fatal on unknown id. */
MachineConfig machineById(const std::string &id);

/**
 * FNV-1a digest over every timing-relevant field of a machine
 * config (id, clock, cache geometries, memory and op latencies,
 * timing model). Two configs with equal digests are
 * indistinguishable to the simulator. The CPI calibration cache
 * keys on it, and the run journal records it so a report can tell
 * whether two runs simulated the same machine even when both were
 * labelled, say, "core2duo".
 */
std::uint64_t configDigest(const MachineConfig &m);

} // namespace savat::uarch

#endif // SAVAT_UARCH_MACHINE_HH
