/**
 * @file
 * In-order timing CPU executing the modeled x86 subset.
 *
 * Modeled after gem5's "simple CPU" philosophy: one instruction at a
 * time, charged its full execution latency, with blocking memory
 * accesses through the two-level cache hierarchy. Every instruction
 * reports its energy-relevant activity (fetch, ALU/MUL/DIV use, AGU,
 * cache and bus events) to an ActivitySink.
 */

#ifndef SAVAT_UARCH_CPU_HH
#define SAVAT_UARCH_CPU_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>

#include "isa/instruction.hh"
#include "uarch/cache.hh"
#include "uarch/machine.hh"
#include "uarch/memory.hh"

namespace savat::uarch {

/** Limits for one CPU run. */
struct RunLimits
{
    std::uint64_t maxInstructions = ~0ull;
    std::uint64_t maxCycles = ~0ull;
};

/** Branch predictor statistics. */
struct BranchStats
{
    std::uint64_t conditional = 0;   //!< conditional branches retired
    std::uint64_t unconditional = 0; //!< unconditional (jmp) branches
    std::uint64_t mispredicts = 0;   //!< bimodal mispredictions

    /** All front-end-visible branches (the honest denominator). */
    std::uint64_t branches() const { return conditional + unconditional; }

    double
    mispredictRate() const
    {
        const std::uint64_t total = branches();
        return total ? static_cast<double>(mispredicts) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * Wrong-path (speculative) execution statistics.
 *
 * Populated only on the pipelined core with a nonzero speculation
 * window (MachineConfig::spec). Every mispredicted conditional branch
 * opens one wrong-path window; the window's instructions execute
 * against shadow state, are squashed architecturally, and leave only
 * cache side effects behind — the signal the software timing channel
 * measures.
 */
struct SpecStats
{
    std::uint64_t squashes = 0;        //!< wrong-path windows squashed
    std::uint64_t wrongPathInsts = 0;  //!< transient instructions run
    std::uint64_t transientFills = 0;  //!< cache fills left by wrong path
    std::uint64_t windowExhausted = 0; //!< windows that hit the bound
    std::uint64_t fencesHit = 0;       //!< windows stopped by lfence
};

/**
 * Outcome of the execute stage for one instruction.
 *
 * `latency` is charged at retire; 0 means the instruction is free and
 * emission-silent (mark). A mispredicted conditional branch also
 * reports where the front end had speculatively fetched so the
 * speculation frontier can run the wrong path before the squash.
 */
struct ExecResult
{
    std::uint32_t latency = 0;
    bool mispredicted = false;     //!< conditional branch mispredicted
    std::uint64_t wrongPathPc = 0; //!< first wrong-path instruction
};

/** Outcome of one CPU run. */
struct RunResult
{
    std::uint64_t instructions = 0; //!< instructions retired this run
    std::uint64_t cycles = 0;       //!< cycles consumed this run
    bool halted = false;            //!< program executed hlt
    bool stoppedByMark = false;     //!< mark callback requested a stop
};

/**
 * Callback invoked on each `mark` pseudo-instruction.
 *
 * The kernel generator plants marks at period and half-period
 * boundaries; the measurement driver uses them to delimit warm-up and
 * capture windows. Returning false stops execution (reported through
 * RunResult::stoppedByMark).
 *
 * @param id    The mark's immediate operand.
 * @param cycle Cycle count at which the mark retired.
 * @param insts Total instructions retired so far.
 */
using MarkCallback =
    std::function<bool(std::int64_t id, std::uint64_t cycle,
                       std::uint64_t insts)>;

/**
 * The simulated core plus its private memory system.
 *
 * State (registers, caches, cycle counter) persists across run()
 * calls so a warm-up run can be followed by a measured run.
 */
class SimpleCpu
{
  public:
    SimpleCpu(const MachineConfig &config, ActivitySink &sink);

    /** Execute the program from instruction 0 under the limits. */
    RunResult run(const isa::Program &program, RunLimits limits = {});

    /** Register file access (for tests and kernel setup). */
    std::uint32_t reg(isa::Reg r) const;
    void setReg(isa::Reg r, std::uint32_t value);

    /** Zero flag (set by arithmetic and compare instructions). */
    bool zeroFlag() const { return _zf; }

    /** Carry flag (set by add/sub/cmp; cleared by logic ops). */
    bool carryFlag() const { return _cf; }

    /** Functional memory image. */
    SparseMemory &memory() { return _memory; }
    const SparseMemory &memory() const { return _memory; }

    /** Cycle counter (monotonic across runs). */
    std::uint64_t cycle() const { return _cycle; }

    /** Total instructions retired across runs. */
    std::uint64_t instructionsRetired() const { return _instsRetired; }

    const CacheStats &l1Stats() const { return _l1->stats(); }
    const CacheStats &l2Stats() const { return _l2->stats(); }
    const MainMemoryStats &memStats() const { return _mem->stats(); }
    const BranchStats &branchStats() const { return _branchStats; }
    const SpecStats &specStats() const { return _specStats; }

    /** L1 cache (prime+probe readout and residency checks). */
    Cache &l1() { return *_l1; }
    const Cache &l1() const { return *_l1; }

    /** Reset registers, flags, caches, cycle count (not memory). */
    void reset();

    void setMarkCallback(MarkCallback cb) { _markCb = std::move(cb); }

    const MachineConfig &config() const { return _config; }

  private:
    MachineConfig _config;
    ActivitySink &_sink;

    SparseMemory _memory;
    std::unique_ptr<MainMemory> _mem;
    std::unique_ptr<Cache> _l2;
    std::unique_ptr<Cache> _l1;

    std::array<std::uint32_t, isa::kNumRegs> _regs{};
    bool _zf = false;
    bool _cf = false;
    std::uint64_t _cycle = 0;
    std::uint64_t _instsRetired = 0;
    MarkCallback _markCb;

    /**
     * Bimodal branch predictor: 2-bit saturating counters indexed by
     * the branch's program-counter value. Used only by the pipelined
     * timing model; mispredictions cost lat.branchMispredict cycles
     * and emit BpMispredict activity (the refetch burst).
     */
    static constexpr std::size_t kBpEntries = 1024;
    std::array<std::uint8_t, kBpEntries> _bpTable{};
    BranchStats _branchStats;
    SpecStats _specStats;

    /**
     * Predict the branch's direction, train the counter on the real
     * outcome and update the predictor statistics. Returns the
     * predicted direction (true = taken) — the caller decides what a
     * mispredict costs and where the wrong path starts.
     */
    bool predictBranch(std::uint64_t pc, bool taken);

    /** Execute stage: one instruction's architectural effects. */
    ExecResult execute(const isa::Instruction &inst, std::uint64_t &pc,
                       bool &halted, bool &stop);

    /**
     * Speculation frontier: execute up to spec.window wrong-path
     * instructions starting at `pc` against shadow register state.
     * Activity is tagged EventOrigin::Transient; cache fills persist
     * past the squash; stores, cycles and architectural state do not.
     */
    void speculate(const isa::Instruction *code, std::uint64_t code_size,
                   std::uint64_t pc);

    std::uint32_t readOperand(const isa::Operand &op) const;
    void setZf(std::uint32_t result) { _zf = (result == 0); }
};

} // namespace savat::uarch

#endif // SAVAT_UARCH_CPU_HH
