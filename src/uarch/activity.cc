#include "uarch/activity.hh"

#include <algorithm>

#include "support/logging.hh"

namespace savat::uarch {

const char *
microEventName(MicroEvent ev)
{
    switch (ev) {
      case MicroEvent::IFetch: return "IFetch";
      case MicroEvent::PipelineCycle: return "PipelineCycle";
      case MicroEvent::AluOp: return "AluOp";
      case MicroEvent::MulOp: return "MulOp";
      case MicroEvent::DivCycle: return "DivCycle";
      case MicroEvent::AguOp: return "AguOp";
      case MicroEvent::L1Read: return "L1Read";
      case MicroEvent::L1Write: return "L1Write";
      case MicroEvent::L1Fill: return "L1Fill";
      case MicroEvent::L1Evict: return "L1Evict";
      case MicroEvent::L2Read: return "L2Read";
      case MicroEvent::L2Write: return "L2Write";
      case MicroEvent::L2Fill: return "L2Fill";
      case MicroEvent::L2Evict: return "L2Evict";
      case MicroEvent::BusRead: return "BusRead";
      case MicroEvent::BusWrite: return "BusWrite";
      case MicroEvent::DramRead: return "DramRead";
      case MicroEvent::DramWrite: return "DramWrite";
      case MicroEvent::BpMispredict: return "BpMispredict";
      default: SAVAT_PANIC("bad MicroEvent");
    }
}

const char *
eventOriginName(EventOrigin origin)
{
    switch (origin) {
      case EventOrigin::Retired: return "retired";
      case EventOrigin::Transient: return "transient";
    }
    SAVAT_PANIC("bad EventOrigin");
}

void
ActivityTrace::recordImpl(MicroEvent ev, std::uint64_t start,
                          std::uint32_t duration, EventOrigin origin)
{
    SAVAT_ASSERT(duration >= 1, "zero-duration activity event");
    _events.push_back({ev, origin, duration, start});
}

void
ActivityTrace::clear()
{
    _events.clear();
}

std::array<std::uint64_t, kNumMicroEvents>
ActivityTrace::eventCounts() const
{
    std::array<std::uint64_t, kNumMicroEvents> counts{};
    for (const auto &e : _events)
        ++counts[static_cast<std::size_t>(e.ev)];
    return counts;
}

std::uint64_t
ActivityTrace::originCount(EventOrigin origin) const
{
    std::uint64_t n = 0;
    for (const auto &e : _events) {
        if (e.origin == origin)
            ++n;
    }
    return n;
}

double
ActivityTrace::meanRate(MicroEvent ev, std::uint64_t begin,
                        std::uint64_t end) const
{
    SAVAT_ASSERT(end > begin, "empty window");
    double total = 0.0;
    for (const auto &e : _events) {
        if (e.ev != ev)
            continue;
        const std::uint64_t s = e.start;
        const std::uint64_t t = e.start + e.duration;
        const std::uint64_t lo = std::max(s, begin);
        const std::uint64_t hi = std::min(t, end);
        if (hi > lo) {
            total += static_cast<double>(hi - lo) /
                     static_cast<double>(e.duration);
        }
    }
    return total / static_cast<double>(end - begin);
}

double
ActivityTrace::weightedMeanRate(
    const std::array<double, kNumMicroEvents> &weights,
    std::uint64_t begin, std::uint64_t end) const
{
    SAVAT_ASSERT(end > begin, "empty window");
    double total = 0.0;
    for (const auto &e : _events) {
        const double w = weights[static_cast<std::size_t>(e.ev)];
        if (w == 0.0)
            continue;
        const std::uint64_t s = e.start;
        const std::uint64_t t = e.start + e.duration;
        const std::uint64_t lo = std::max(s, begin);
        const std::uint64_t hi = std::min(t, end);
        if (hi > lo)
            total += w * static_cast<double>(hi - lo);
    }
    return total / static_cast<double>(end - begin);
}

std::vector<double>
ActivityTrace::waveform(MicroEvent ev, std::uint64_t begin,
                        std::uint64_t end) const
{
    std::array<double, kNumMicroEvents> weights{};
    weights[static_cast<std::size_t>(ev)] = 1.0;
    return weightedWaveform(weights, begin, end);
}

std::vector<double>
ActivityTrace::weightedWaveform(
    const std::array<double, kNumMicroEvents> &weights, std::uint64_t begin,
    std::uint64_t end) const
{
    std::vector<double> out;
    weightedWaveformInto(weights, begin, end, out);
    return out;
}

void
ActivityTrace::weightedWaveformInto(
    const std::array<double, kNumMicroEvents> &weights,
    std::uint64_t begin, std::uint64_t end,
    std::vector<double> &out) const
{
    SAVAT_ASSERT(end > begin, "empty window");
    const std::size_t n = static_cast<std::size_t>(end - begin);
    // Difference array with one sentinel slot for events ending at
    // the window edge; the prefix sum turns edge pairs into the
    // dense per-cycle activity.
    out.assign(n + 1, 0.0);
    for (const auto &e : _events) {
        const double w = weights[static_cast<std::size_t>(e.ev)];
        if (w == 0.0)
            continue;
        const std::uint64_t s = e.start;
        const std::uint64_t t = e.start + e.duration;
        const std::uint64_t lo = std::max(s, begin);
        const std::uint64_t hi = std::min(t, end);
        if (hi > lo) {
            out[static_cast<std::size_t>(lo - begin)] += w;
            out[static_cast<std::size_t>(hi - begin)] -= w;
        }
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        acc += out[i];
        out[i] = acc;
    }
    out.resize(n);
}

} // namespace savat::uarch
