#include "uarch/cpu.hh"

#include "support/logging.hh"

namespace savat::uarch {

using isa::Instruction;
using isa::Opcode;
using isa::Operand;
using isa::Reg;

SimpleCpu::SimpleCpu(const MachineConfig &config, ActivitySink &sink)
    : _config(config), _sink(sink)
{
    _mem = std::make_unique<MainMemory>(_config.memLatency,
                                        _config.memBurst, _sink);
    const CacheLevelEvents l2_events = {
        MicroEvent::L2Read, MicroEvent::L2Write, MicroEvent::L2Fill,
        MicroEvent::L2Evict};
    _l2 = std::make_unique<Cache>("L2", _config.l2, l2_events, *_mem,
                                  _sink);
    const CacheLevelEvents l1_events = {
        MicroEvent::L1Read, MicroEvent::L1Write, MicroEvent::L1Fill,
        MicroEvent::L1Evict};
    _l1 = std::make_unique<Cache>("L1", _config.l1, l1_events, *_l2,
                                  _sink);
    _bpTable.fill(2); // weakly taken
}

bool
SimpleCpu::predictBranch(std::uint64_t pc, bool taken)
{
    std::uint8_t &counter = _bpTable[pc % kBpEntries];
    const bool predicted_taken = counter >= 2;
    if (taken) {
        if (counter < 3)
            ++counter;
    } else {
        if (counter > 0)
            --counter;
    }
    ++_branchStats.conditional;
    const bool correct = predicted_taken == taken;
    if (!correct)
        ++_branchStats.mispredicts;
    return correct;
}

std::uint32_t
SimpleCpu::reg(Reg r) const
{
    return _regs[static_cast<std::size_t>(r)];
}

void
SimpleCpu::setReg(Reg r, std::uint32_t value)
{
    _regs[static_cast<std::size_t>(r)] = value;
}

void
SimpleCpu::reset()
{
    _regs.fill(0);
    _zf = false;
    _cycle = 0;
    _instsRetired = 0;
    _bpTable.fill(2); // weakly taken
    _branchStats = {};
    _l1->flushAll();
    _l2->flushAll();
    _l1->clearStats();
    _l2->clearStats();
    _mem->clearStats();
}

std::uint32_t
SimpleCpu::readOperand(const Operand &op) const
{
    switch (op.kind) {
      case Operand::Kind::Reg:
        return reg(op.reg);
      case Operand::Kind::Imm:
        return static_cast<std::uint32_t>(op.imm);
      default:
        SAVAT_PANIC("readOperand on non-value operand");
    }
}

RunResult
SimpleCpu::run(const isa::Program &program, RunLimits limits)
{
    RunResult res;
    std::uint64_t pc = 0;
    bool halted = false;
    bool stop = false;

    // The dispatch loop reads straight from the instruction array;
    // hoisting the base pointer and size out of the loop removes a
    // bounds-checked accessor call per retired instruction.
    const Instruction *code = program.instructions().data();
    const std::uint64_t code_size = program.size();

    while (!halted && !stop && res.instructions < limits.maxInstructions &&
           res.cycles < limits.maxCycles) {
        if (pc >= code_size) {
            // Falling off the end behaves like hlt.
            halted = true;
            break;
        }
        const Instruction &inst = code[pc];
        const std::uint32_t latency = execute(inst, pc, halted, stop);
        if (latency > 0) {
            _sink.record(MicroEvent::IFetch, _cycle, 1);
            _sink.record(MicroEvent::PipelineCycle, _cycle, latency);
            _cycle += latency;
            res.cycles += latency;
            ++res.instructions;
            ++_instsRetired;
        }
    }
    res.halted = halted;
    res.stoppedByMark = stop;
    return res;
}

std::uint32_t
SimpleCpu::execute(const Instruction &inst, std::uint64_t &pc,
                   bool &halted, bool &stop)
{
    const OpLatencies &lat = _config.lat;
    const bool pipe = _config.timing == TimingModel::Pipelined;
    std::uint64_t next_pc = pc + 1;
    std::uint32_t latency = lat.alu;

    switch (inst.op) {
      case Opcode::Mov: {
        if (inst.src.isMem()) {
            // Load.
            const std::uint64_t addr = reg(inst.src.reg);
            _sink.record(MicroEvent::AguOp, _cycle, 1);
            const std::uint32_t mem_lat = _l1->read(addr, _cycle + lat.agu);
            setReg(inst.dst.reg, _memory.readWord(addr));
            // A pipelined core hides an L1 hit behind issue bandwidth
            // and exposes only the added miss latency.
            latency = pipe
                          ? 1 + (mem_lat - std::min(mem_lat,
                                                    _config.l1.hitLatency))
                          : lat.agu + mem_lat;
        } else if (inst.dst.isMem()) {
            // Store.
            const std::uint64_t addr = reg(inst.dst.reg);
            _sink.record(MicroEvent::AguOp, _cycle, 1);
            const std::uint32_t mem_lat =
                _l1->write(addr, _cycle + lat.agu);
            _memory.writeWord(addr, readOperand(inst.src));
            latency = pipe
                          ? 1 + (mem_lat - std::min(mem_lat,
                                                    _config.l1.hitLatency))
                          : lat.agu + mem_lat;
        } else {
            setReg(inst.dst.reg, readOperand(inst.src));
            latency = pipe ? 1 : lat.mov;
            _sink.record(MicroEvent::AluOp, _cycle, 1);
        }
        break;
      }
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor: {
        const std::uint32_t a = reg(inst.dst.reg);
        const std::uint32_t b = readOperand(inst.src);
        std::uint32_t r = 0;
        switch (inst.op) {
          case Opcode::Add: r = a + b; break;
          case Opcode::Sub: r = a - b; break;
          case Opcode::And: r = a & b; break;
          case Opcode::Or: r = a | b; break;
          case Opcode::Xor: r = a ^ b; break;
          default: SAVAT_PANIC("unreachable");
        }
        setReg(inst.dst.reg, r);
        setZf(r);
        latency = pipe ? 1 : lat.alu;
        _sink.record(MicroEvent::AluOp, _cycle, 1);
        break;
      }
      case Opcode::Imul: {
        const std::int64_t a =
            static_cast<std::int32_t>(reg(inst.dst.reg));
        const std::int64_t b =
            static_cast<std::int32_t>(readOperand(inst.src));
        const std::uint32_t r = static_cast<std::uint32_t>(a * b);
        setReg(inst.dst.reg, r);
        setZf(r);
        // The multiplier is pipelined: unit throughput, but its array
        // switches for the full latency.
        latency = pipe ? 1 : lat.imul;
        _sink.record(MicroEvent::MulOp, _cycle, lat.imul);
        break;
      }
      case Opcode::Idiv: {
        const std::int64_t dividend =
            (static_cast<std::int64_t>(reg(Reg::Edx)) << 32) |
            static_cast<std::int64_t>(reg(Reg::Eax));
        const std::int32_t divisor =
            static_cast<std::int32_t>(readOperand(inst.dst));
        if (divisor == 0)
            SAVAT_FATAL("idiv by zero at pc=", pc);
        const std::int64_t q = dividend / divisor;
        const std::int64_t rem = dividend % divisor;
        if (q < INT32_MIN || q > INT32_MAX)
            SAVAT_FATAL("idiv overflow at pc=", pc);
        setReg(Reg::Eax, static_cast<std::uint32_t>(q));
        setReg(Reg::Edx, static_cast<std::uint32_t>(rem));
        latency = lat.idiv;
        _sink.record(MicroEvent::DivCycle, _cycle, lat.idiv);
        break;
      }
      case Opcode::Cdq: {
        const bool neg =
            (static_cast<std::int32_t>(reg(Reg::Eax)) < 0);
        setReg(Reg::Edx, neg ? 0xFFFFFFFFu : 0u);
        latency = pipe ? 1 : lat.mov;
        _sink.record(MicroEvent::AluOp, _cycle, 1);
        break;
      }
      case Opcode::Inc:
      case Opcode::Dec: {
        const std::uint32_t r = inst.op == Opcode::Inc
                                    ? reg(inst.dst.reg) + 1
                                    : reg(inst.dst.reg) - 1;
        setReg(inst.dst.reg, r);
        setZf(r);
        latency = pipe ? 1 : lat.alu;
        _sink.record(MicroEvent::AluOp, _cycle, 1);
        break;
      }
      case Opcode::Cmp: {
        const std::uint32_t r =
            reg(inst.dst.reg) - readOperand(inst.src);
        setZf(r);
        latency = pipe ? 1 : lat.alu;
        _sink.record(MicroEvent::AluOp, _cycle, 1);
        break;
      }
      case Opcode::Test: {
        const std::uint32_t r =
            reg(inst.dst.reg) & readOperand(inst.src);
        setZf(r);
        latency = pipe ? 1 : lat.alu;
        _sink.record(MicroEvent::AluOp, _cycle, 1);
        break;
      }
      case Opcode::Jmp:
        next_pc = static_cast<std::uint64_t>(inst.target);
        // Loop branches are perfectly predicted on the pipelined core.
        latency = pipe ? 1 : lat.branchTaken;
        _sink.record(MicroEvent::AluOp, _cycle, 1);
        break;
      case Opcode::Je:
      case Opcode::Jne: {
        const bool taken =
            (inst.op == Opcode::Je) ? _zf : !_zf;
        if (taken)
            next_pc = static_cast<std::uint64_t>(inst.target);
        if (pipe) {
            // Bimodal predictor: correct predictions are free
            // (1-cycle issue); mispredictions flush the pipeline.
            const bool correct = predictBranch(pc, taken);
            if (correct) {
                latency = 1;
            } else {
                latency = 1 + lat.branchMispredict;
                _sink.record(MicroEvent::BpMispredict, _cycle,
                             lat.branchMispredict);
            }
        } else {
            latency = taken ? lat.branchTaken : lat.branch;
        }
        _sink.record(MicroEvent::AluOp, _cycle, 1);
        break;
      }
      case Opcode::Nop:
        latency = pipe ? 1 : lat.nop;
        break;
      case Opcode::Hlt:
        halted = true;
        latency = 1;
        break;
      case Opcode::Mark:
        // Pure simulator hook: free and emission-silent.
        if (_markCb &&
            !_markCb(inst.dst.imm, _cycle, _instsRetired)) {
            stop = true;
        }
        pc = next_pc;
        return 0;
      default:
        SAVAT_PANIC("unhandled opcode in execute");
    }

    pc = next_pc;
    return latency;
}

} // namespace savat::uarch
