#include "uarch/cpu.hh"

#include "support/logging.hh"

namespace savat::uarch {

using isa::Instruction;
using isa::Opcode;
using isa::Operand;
using isa::Reg;

SimpleCpu::SimpleCpu(const MachineConfig &config, ActivitySink &sink)
    : _config(config), _sink(sink)
{
    _mem = std::make_unique<MainMemory>(_config.memLatency,
                                        _config.memBurst, _sink);
    const CacheLevelEvents l2_events = {
        MicroEvent::L2Read, MicroEvent::L2Write, MicroEvent::L2Fill,
        MicroEvent::L2Evict};
    _l2 = std::make_unique<Cache>("L2", _config.l2, l2_events, *_mem,
                                  _sink);
    const CacheLevelEvents l1_events = {
        MicroEvent::L1Read, MicroEvent::L1Write, MicroEvent::L1Fill,
        MicroEvent::L1Evict};
    _l1 = std::make_unique<Cache>("L1", _config.l1, l1_events, *_l2,
                                  _sink);
    _bpTable.fill(2); // weakly taken
}

bool
SimpleCpu::predictBranch(std::uint64_t pc, bool taken)
{
    std::uint8_t &counter = _bpTable[pc % kBpEntries];
    const bool predicted_taken = counter >= 2;
    if (taken) {
        if (counter < 3)
            ++counter;
    } else {
        if (counter > 0)
            --counter;
    }
    ++_branchStats.conditional;
    if (predicted_taken != taken)
        ++_branchStats.mispredicts;
    return predicted_taken;
}

std::uint32_t
SimpleCpu::reg(Reg r) const
{
    return _regs[static_cast<std::size_t>(r)];
}

void
SimpleCpu::setReg(Reg r, std::uint32_t value)
{
    _regs[static_cast<std::size_t>(r)] = value;
}

void
SimpleCpu::reset()
{
    _regs.fill(0);
    _zf = false;
    _cf = false;
    _cycle = 0;
    _instsRetired = 0;
    _bpTable.fill(2); // weakly taken
    _branchStats = {};
    _specStats = {};
    _l1->flushAll();
    _l2->flushAll();
    _l1->clearStats();
    _l2->clearStats();
    _mem->clearStats();
}

std::uint32_t
SimpleCpu::readOperand(const Operand &op) const
{
    switch (op.kind) {
      case Operand::Kind::Reg:
        return reg(op.reg);
      case Operand::Kind::Imm:
        return static_cast<std::uint32_t>(op.imm);
      default:
        SAVAT_PANIC("readOperand on non-value operand");
    }
}

RunResult
SimpleCpu::run(const isa::Program &program, RunLimits limits)
{
    RunResult res;
    std::uint64_t pc = 0;
    bool halted = false;
    bool stop = false;

    // The dispatch loop reads straight from the instruction array;
    // hoisting the base pointer and size out of the loop removes a
    // bounds-checked accessor call per retired instruction.
    const Instruction *code = program.instructions().data();
    const std::uint64_t code_size = program.size();
    const bool spec_on = _config.timing == TimingModel::Pipelined &&
                         _config.spec.enabled();

    while (!halted && !stop && res.instructions < limits.maxInstructions &&
           res.cycles < limits.maxCycles) {
        if (pc >= code_size) {
            // Falling off the end behaves like hlt.
            halted = true;
            break;
        }
        // Execute stage: architectural effects plus the op-specific
        // activity events, all stamped at the current cycle.
        const Instruction &inst = code[pc];
        const ExecResult ex = execute(inst, pc, halted, stop);
        if (ex.latency == 0)
            continue; // mark: free and emission-silent

        // Speculation frontier: on a mispredict the front end has
        // already fetched down the predicted path, so the wrong-path
        // window runs before the branch retires. Its activity carries
        // EventOrigin::Transient and its cache fills persist, but no
        // cycles or architectural state are charged — the squash cost
        // is the mispredict penalty already inside ex.latency.
        if (ex.mispredicted && spec_on)
            speculate(code, code_size, ex.wrongPathPc);

        // Retire stage. The record order — op events, then IFetch,
        // then PipelineCycle, all at the pre-retire cycle — is a
        // byte-level contract with the golden EM fixtures; do not
        // reorder.
        _sink.record(MicroEvent::IFetch, _cycle, 1);
        _sink.record(MicroEvent::PipelineCycle, _cycle, ex.latency);
        _cycle += ex.latency;
        res.cycles += ex.latency;
        ++res.instructions;
        ++_instsRetired;
    }
    res.halted = halted;
    res.stoppedByMark = stop;
    return res;
}

ExecResult
SimpleCpu::execute(const Instruction &inst, std::uint64_t &pc,
                   bool &halted, bool &stop)
{
    const OpLatencies &lat = _config.lat;
    const bool pipe = _config.timing == TimingModel::Pipelined;
    std::uint64_t next_pc = pc + 1;
    ExecResult res;
    std::uint32_t &latency = res.latency;
    latency = lat.alu;

    switch (inst.op) {
      case Opcode::Mov: {
        if (inst.src.isMem()) {
            // Load.
            const std::uint64_t addr = reg(inst.src.reg);
            _sink.record(MicroEvent::AguOp, _cycle, 1);
            const std::uint32_t mem_lat = _l1->read(addr, _cycle + lat.agu);
            setReg(inst.dst.reg, _memory.readWord(addr));
            // A pipelined core hides an L1 hit behind issue bandwidth
            // and exposes only the added miss latency.
            latency = pipe
                          ? 1 + (mem_lat - std::min(mem_lat,
                                                    _config.l1.hitLatency))
                          : lat.agu + mem_lat;
        } else if (inst.dst.isMem()) {
            // Store.
            const std::uint64_t addr = reg(inst.dst.reg);
            _sink.record(MicroEvent::AguOp, _cycle, 1);
            const std::uint32_t mem_lat =
                _l1->write(addr, _cycle + lat.agu);
            _memory.writeWord(addr, readOperand(inst.src));
            latency = pipe
                          ? 1 + (mem_lat - std::min(mem_lat,
                                                    _config.l1.hitLatency))
                          : lat.agu + mem_lat;
        } else {
            setReg(inst.dst.reg, readOperand(inst.src));
            latency = pipe ? 1 : lat.mov;
            _sink.record(MicroEvent::AluOp, _cycle, 1);
        }
        break;
      }
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor: {
        const std::uint32_t a = reg(inst.dst.reg);
        const std::uint32_t b = readOperand(inst.src);
        std::uint32_t r = 0;
        switch (inst.op) {
          case Opcode::Add: r = a + b; _cf = r < a; break;
          case Opcode::Sub: r = a - b; _cf = b > a; break;
          case Opcode::And: r = a & b; _cf = false; break;
          case Opcode::Or: r = a | b; _cf = false; break;
          case Opcode::Xor: r = a ^ b; _cf = false; break;
          default: SAVAT_PANIC("unreachable");
        }
        setReg(inst.dst.reg, r);
        setZf(r);
        latency = pipe ? 1 : lat.alu;
        _sink.record(MicroEvent::AluOp, _cycle, 1);
        break;
      }
      case Opcode::Imul: {
        const std::int64_t a =
            static_cast<std::int32_t>(reg(inst.dst.reg));
        const std::int64_t b =
            static_cast<std::int32_t>(readOperand(inst.src));
        const std::uint32_t r = static_cast<std::uint32_t>(a * b);
        setReg(inst.dst.reg, r);
        setZf(r);
        // The multiplier is pipelined: unit throughput, but its array
        // switches for the full latency.
        latency = pipe ? 1 : lat.imul;
        _sink.record(MicroEvent::MulOp, _cycle, lat.imul);
        break;
      }
      case Opcode::Idiv: {
        const std::int64_t dividend =
            (static_cast<std::int64_t>(reg(Reg::Edx)) << 32) |
            static_cast<std::int64_t>(reg(Reg::Eax));
        const std::int32_t divisor =
            static_cast<std::int32_t>(readOperand(inst.dst));
        if (divisor == 0)
            SAVAT_FATAL("idiv by zero at pc=", pc);
        const std::int64_t q = dividend / divisor;
        const std::int64_t rem = dividend % divisor;
        if (q < INT32_MIN || q > INT32_MAX)
            SAVAT_FATAL("idiv overflow at pc=", pc);
        setReg(Reg::Eax, static_cast<std::uint32_t>(q));
        setReg(Reg::Edx, static_cast<std::uint32_t>(rem));
        latency = lat.idiv;
        _sink.record(MicroEvent::DivCycle, _cycle, lat.idiv);
        break;
      }
      case Opcode::Cdq: {
        const bool neg =
            (static_cast<std::int32_t>(reg(Reg::Eax)) < 0);
        setReg(Reg::Edx, neg ? 0xFFFFFFFFu : 0u);
        latency = pipe ? 1 : lat.mov;
        _sink.record(MicroEvent::AluOp, _cycle, 1);
        break;
      }
      case Opcode::Inc:
      case Opcode::Dec: {
        // inc/dec set ZF but preserve CF (x86): loop counters must
        // not clobber a pending bounds-check comparison.
        const std::uint32_t r = inst.op == Opcode::Inc
                                    ? reg(inst.dst.reg) + 1
                                    : reg(inst.dst.reg) - 1;
        setReg(inst.dst.reg, r);
        setZf(r);
        latency = pipe ? 1 : lat.alu;
        _sink.record(MicroEvent::AluOp, _cycle, 1);
        break;
      }
      case Opcode::Cmp: {
        const std::uint32_t a = reg(inst.dst.reg);
        const std::uint32_t b = readOperand(inst.src);
        setZf(a - b);
        _cf = b > a;
        latency = pipe ? 1 : lat.alu;
        _sink.record(MicroEvent::AluOp, _cycle, 1);
        break;
      }
      case Opcode::Test: {
        const std::uint32_t r =
            reg(inst.dst.reg) & readOperand(inst.src);
        setZf(r);
        _cf = false;
        latency = pipe ? 1 : lat.alu;
        _sink.record(MicroEvent::AluOp, _cycle, 1);
        break;
      }
      case Opcode::Jmp:
        next_pc = static_cast<std::uint64_t>(inst.target);
        if (pipe) {
            // The front end resolves unconditional targets in decode,
            // so jmp never mispredicts — but it is still a
            // predictor-visible branch and belongs in the rate's
            // denominator.
            ++_branchStats.unconditional;
            latency = 1;
        } else {
            latency = lat.branchTaken;
        }
        _sink.record(MicroEvent::AluOp, _cycle, 1);
        break;
      case Opcode::Je:
      case Opcode::Jne:
      case Opcode::Jae:
      case Opcode::Jb: {
        bool taken = false;
        switch (inst.op) {
          case Opcode::Je: taken = _zf; break;
          case Opcode::Jne: taken = !_zf; break;
          case Opcode::Jae: taken = !_cf; break;
          default: taken = _cf; break;
        }
        if (taken)
            next_pc = static_cast<std::uint64_t>(inst.target);
        if (pipe) {
            // Bimodal predictor: correct predictions are free
            // (1-cycle issue); mispredictions flush the pipeline.
            const bool predicted = predictBranch(pc, taken);
            if (predicted == taken) {
                latency = 1;
            } else {
                latency = 1 + lat.branchMispredict;
                _sink.record(MicroEvent::BpMispredict, _cycle,
                             lat.branchMispredict);
                // The wrong path follows the *predicted* direction.
                res.mispredicted = true;
                res.wrongPathPc =
                    predicted ? static_cast<std::uint64_t>(inst.target)
                              : pc + 1;
            }
        } else {
            latency = taken ? lat.branchTaken : lat.branch;
        }
        _sink.record(MicroEvent::AluOp, _cycle, 1);
        break;
      }
      case Opcode::Lfence:
        // Architecturally a cheap drain; its real job is stopping
        // wrong-path execution (see speculate()).
        latency = pipe ? 1 : lat.nop;
        break;
      case Opcode::Nop:
        latency = pipe ? 1 : lat.nop;
        break;
      case Opcode::Hlt:
        halted = true;
        latency = 1;
        break;
      case Opcode::Mark:
        // Pure simulator hook: free and emission-silent.
        if (_markCb &&
            !_markCb(inst.dst.imm, _cycle, _instsRetired)) {
            stop = true;
        }
        pc = next_pc;
        return {};
      default:
        SAVAT_PANIC("unhandled opcode in execute");
    }

    pc = next_pc;
    return res;
}

void
SimpleCpu::speculate(const Instruction *code, std::uint64_t code_size,
                     std::uint64_t pc)
{
    const OpLatencies &lat = _config.lat;
    ++_specStats.squashes;
    _sink.setOrigin(EventOrigin::Transient);

    // Shadow architectural state: wrong-path results are computed for
    // real so transient loads dereference real addresses, but the
    // shadow is dropped at the squash — only cache state survives.
    // Flags written on the wrong path are dead (any branch ends the
    // window before it could read them), so they are not tracked.
    std::array<std::uint32_t, isa::kNumRegs> regs = _regs;
    auto rd = [&](const Operand &op) {
        return op.isImm() ? static_cast<std::uint32_t>(op.imm)
                          : regs[static_cast<std::size_t>(op.reg)];
    };
    auto wr = [&](Reg r, std::uint32_t v) {
        regs[static_cast<std::size_t>(r)] = v;
    };

    std::uint32_t executed = 0;
    bool stopped = false;
    while (!stopped && executed < _config.spec.window &&
           pc < code_size) {
        const Instruction &inst = code[pc];

        // Frontier terminators. A further branch stalls the window
        // (the model speculates through one unresolved branch at a
        // time); hlt and mark are simulator control points; division
        // may fault on garbage wrong-path operands.
        if (inst.isBranch() || inst.op == Opcode::Hlt ||
            inst.op == Opcode::Mark || inst.op == Opcode::Idiv) {
            stopped = true;
            break;
        }
        if (inst.op == Opcode::Lfence) {
            ++_specStats.fencesHit;
            stopped = true;
            break;
        }

        switch (inst.op) {
          case Opcode::Mov:
            if (inst.src.isMem()) {
                // Transient load: the demand access is real, so the
                // fill it triggers persists after the squash — the
                // Spectre-v1 leak this model exists to expose.
                const std::uint64_t addr =
                    regs[static_cast<std::size_t>(inst.src.reg)];
                _sink.record(MicroEvent::AguOp, _cycle, 1);
                const std::uint32_t mem_lat =
                    _l1->read(addr, _cycle + lat.agu);
                if (mem_lat > _config.l1.hitLatency)
                    ++_specStats.transientFills;
                wr(inst.dst.reg, _memory.readWord(addr));
            } else if (inst.dst.isMem()) {
                // Wrong-path stores never drain: the store buffer is
                // squashed with the window. Only the address
                // generation is visible.
                _sink.record(MicroEvent::AguOp, _cycle, 1);
            } else {
                wr(inst.dst.reg, rd(inst.src));
                _sink.record(MicroEvent::AluOp, _cycle, 1);
            }
            break;
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor: {
            const std::uint32_t a =
                regs[static_cast<std::size_t>(inst.dst.reg)];
            const std::uint32_t b = rd(inst.src);
            std::uint32_t r = 0;
            switch (inst.op) {
              case Opcode::Add: r = a + b; break;
              case Opcode::Sub: r = a - b; break;
              case Opcode::And: r = a & b; break;
              case Opcode::Or: r = a | b; break;
              case Opcode::Xor: r = a ^ b; break;
              default: SAVAT_PANIC("unreachable");
            }
            wr(inst.dst.reg, r);
            _sink.record(MicroEvent::AluOp, _cycle, 1);
            break;
          }
          case Opcode::Imul: {
            const std::int64_t a = static_cast<std::int32_t>(
                regs[static_cast<std::size_t>(inst.dst.reg)]);
            const std::int64_t b =
                static_cast<std::int32_t>(rd(inst.src));
            wr(inst.dst.reg, static_cast<std::uint32_t>(a * b));
            _sink.record(MicroEvent::MulOp, _cycle, lat.imul);
            break;
          }
          case Opcode::Cdq: {
            const bool neg =
                (static_cast<std::int32_t>(
                     regs[static_cast<std::size_t>(Reg::Eax)]) < 0);
            wr(Reg::Edx, neg ? 0xFFFFFFFFu : 0u);
            _sink.record(MicroEvent::AluOp, _cycle, 1);
            break;
          }
          case Opcode::Inc:
          case Opcode::Dec: {
            const std::uint32_t v =
                regs[static_cast<std::size_t>(inst.dst.reg)];
            wr(inst.dst.reg, inst.op == Opcode::Inc ? v + 1 : v - 1);
            _sink.record(MicroEvent::AluOp, _cycle, 1);
            break;
          }
          case Opcode::Cmp:
          case Opcode::Test:
            // Flag results are dead on the wrong path, but the ALU
            // still switches.
            _sink.record(MicroEvent::AluOp, _cycle, 1);
            break;
          case Opcode::Nop:
            break;
          default:
            SAVAT_PANIC("unhandled opcode in speculate");
        }

        ++executed;
        ++_specStats.wrongPathInsts;
        ++pc;
    }
    if (!stopped && executed == _config.spec.window)
        ++_specStats.windowExhausted;

    _sink.setOrigin(EventOrigin::Retired);
}

} // namespace savat::uarch
