/**
 * @file
 * Micro-architectural activity events and traces.
 *
 * The timing CPU and cache hierarchy report every energy-relevant
 * action (an ALU operation, an L2 array read, an off-chip burst...)
 * as a MicroEvent with a start cycle and a duration. The EM model
 * later maps events onto physical emitter channels; keeping the trace
 * at event granularity leaves that mapping configurable.
 */

#ifndef SAVAT_UARCH_ACTIVITY_HH
#define SAVAT_UARCH_ACTIVITY_HH

#include <array>
#include <cstdint>
#include <vector>

namespace savat::uarch {

/** Energy-relevant micro-architectural events. */
enum class MicroEvent : std::uint8_t {
    IFetch,        //!< instruction fetch/decode
    PipelineCycle, //!< baseline pipeline/clock activity per busy cycle
    AluOp,         //!< simple integer ALU operation
    MulOp,         //!< integer multiply
    DivCycle,      //!< one active cycle of the (iterative) divider
    AguOp,         //!< address generation for a memory access
    L1Read,        //!< L1 data array read (hit or fill probe)
    L1Write,       //!< L1 data array write (store hit)
    L1Fill,        //!< line fill written into L1
    L1Evict,       //!< dirty line read out of L1 for write-back
    L2Read,        //!< L2 data array read (demand hit)
    L2Write,       //!< L2 data array write (write-back from L1)
    L2Fill,        //!< line fill written into L2
    L2Evict,       //!< dirty line read out of L2 for write-back
    BusRead,       //!< off-chip bus burst, memory -> chip
    BusWrite,      //!< off-chip bus burst, chip -> memory
    DramRead,      //!< DRAM array read access
    DramWrite,     //!< DRAM array write access
    BpMispredict,  //!< branch misprediction: pipeline flush/refetch
    NumEvents
};

/** Number of distinct MicroEvent kinds. */
inline constexpr std::size_t kNumMicroEvents =
    static_cast<std::size_t>(MicroEvent::NumEvents);

/** Short name of a MicroEvent ("L2Read", ...). */
const char *microEventName(MicroEvent ev);

/**
 * Whether an event came from the retired (architectural) instruction
 * stream or from wrong-path execution inside the speculation frontier.
 * Transient events switch real logic — they are energy- and
 * cache-state-relevant — but belong to instructions that are
 * architecturally squashed.
 */
enum class EventOrigin : std::uint8_t {
    Retired,  //!< architecturally committed activity
    Transient //!< wrong-path activity, squashed after the window
};

/** Short name of an EventOrigin ("retired" | "transient"). */
const char *eventOriginName(EventOrigin origin);

/**
 * Receiver of activity events.
 *
 * The enabled flag gates delivery BEFORE the virtual dispatch: the
 * simulator's per-event hot path pays one inline branch while the
 * sink is disabled (cache warm-up, functional-only runs) instead of
 * a virtual call per event.
 */
class ActivitySink
{
  public:
    explicit ActivitySink(bool enabled = true) : _enabled(enabled) {}
    virtual ~ActivitySink() = default;

    /**
     * Record one event (delivered only while enabled).
     *
     * @param ev       Event kind.
     * @param start    Cycle at which the activity begins.
     * @param duration Number of cycles the activity spans (>= 1).
     *                 The event contributes one unit of activity on
     *                 EVERY cycle of its duration (a divider that
     *                 iterates for 39 cycles switches 39 cycles'
     *                 worth of logic, not one).
     *
     * The event is tagged with the sink's current origin: the CPU
     * flips the origin to Transient around wrong-path windows, so
     * every producer (caches, memory, the core itself) labels its
     * events retired-vs-speculative without threading an argument
     * through the whole memory hierarchy.
     */
    void record(MicroEvent ev, std::uint64_t start,
                std::uint32_t duration)
    {
        if (_enabled)
            recordImpl(ev, start, duration, _origin);
    }

    bool enabled() const { return _enabled; }
    void setEnabled(bool on) { _enabled = on; }

    /** Origin applied to subsequently recorded events. */
    EventOrigin origin() const { return _origin; }
    void setOrigin(EventOrigin origin) { _origin = origin; }

  protected:
    /** Delivery of one event while enabled. */
    virtual void recordImpl(MicroEvent ev, std::uint64_t start,
                            std::uint32_t duration,
                            EventOrigin origin) = 0;

  private:
    bool _enabled;
    EventOrigin _origin = EventOrigin::Retired;
};

/** ActivitySink that discards everything (for functional-only runs).
 * Constructed disabled, so recording costs one predictable branch. */
class NullActivitySink : public ActivitySink
{
  public:
    NullActivitySink() : ActivitySink(false) {}

  protected:
    void recordImpl(MicroEvent, std::uint64_t, std::uint32_t,
                    EventOrigin) override
    {
    }
};

/** One recorded event. */
struct ActivityEvent
{
    MicroEvent ev;
    EventOrigin origin = EventOrigin::Retired;
    std::uint32_t duration;
    std::uint64_t start;
};

/**
 * In-memory activity trace.
 *
 * Stores the raw event list plus helpers to compute the aggregates
 * the SAVAT pipeline needs: per-event counts, duration-weighted mean
 * activity rates over cycle windows, and dense per-cycle waveforms
 * for spectral analysis.
 */
class ActivityTrace : public ActivitySink
{
  public:
    /** Drop all recorded events. */
    void clear();

    std::size_t size() const { return _events.size(); }
    const std::vector<ActivityEvent> &events() const { return _events; }

    /** Number of events of each kind (duration-independent). */
    std::array<std::uint64_t, kNumMicroEvents> eventCounts() const;

    /** Number of recorded events with the given origin. */
    std::uint64_t originCount(EventOrigin origin) const;

    /**
     * Mean activity of one event kind over the half-open cycle window
     * [begin, end): total (fractional) units of activity that land in
     * the window, divided by the window length.
     */
    double meanRate(MicroEvent ev, std::uint64_t begin,
                    std::uint64_t end) const;

    /**
     * Weighted mean activity over [begin, end): like meanRate but
     * summing weights[ev] * activity(ev) across all event kinds.
     */
    double
    weightedMeanRate(const std::array<double, kNumMicroEvents> &weights,
                     std::uint64_t begin, std::uint64_t end) const;

    /**
     * Dense per-cycle waveform of one event kind over [begin, end).
     * Element i is the activity landing in cycle begin + i.
     */
    std::vector<double> waveform(MicroEvent ev, std::uint64_t begin,
                                 std::uint64_t end) const;

    /**
     * Weighted sum of per-event waveforms: the per-cycle waveform of
     * sum_ev weights[ev] * activity(ev) over [begin, end).
     */
    std::vector<double>
    weightedWaveform(const std::array<double, kNumMicroEvents> &weights,
                     std::uint64_t begin, std::uint64_t end) const;

    /**
     * weightedWaveform() into a caller-owned buffer (resized to the
     * window length), so repeated extractions over the same trace
     * reuse one allocation. Built as a difference array followed by
     * a prefix sum: O(events + window) instead of O(total event
     * durations).
     */
    void weightedWaveformInto(
        const std::array<double, kNumMicroEvents> &weights,
        std::uint64_t begin, std::uint64_t end,
        std::vector<double> &out) const;

  protected:
    void recordImpl(MicroEvent ev, std::uint64_t start,
                    std::uint32_t duration,
                    EventOrigin origin) override;

  private:
    std::vector<ActivityEvent> _events;
};

} // namespace savat::uarch

#endif // SAVAT_UARCH_ACTIVITY_HH
