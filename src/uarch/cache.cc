#include "uarch/cache.hh"

#include "support/logging.hh"

namespace savat::uarch {

namespace {

bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

bool
CacheGeometry::valid() const
{
    if (sizeBytes == 0 || assoc == 0 || lineBytes == 0)
        return false;
    if (!isPowerOfTwo(lineBytes))
        return false;
    if (sizeBytes % (static_cast<std::uint64_t>(lineBytes) * assoc) != 0)
        return false;
    return isPowerOfTwo(numSets());
}

Cache::Cache(std::string name, const CacheGeometry &geom,
             const CacheLevelEvents &events, MemLevel &next,
             ActivitySink &sink)
    : _name(std::move(name)),
      _geom(geom),
      _events(events),
      _next(next),
      _sink(sink)
{
    if (!_geom.valid()) {
        SAVAT_FATAL("invalid cache geometry for ", _name, ": size=",
                    _geom.sizeBytes, " assoc=", _geom.assoc,
                    " line=", _geom.lineBytes);
    }
    _lines.resize(static_cast<std::size_t>(_geom.numSets()) * _geom.assoc);
}

std::uint64_t
Cache::lineAddr(std::uint64_t addr) const
{
    return addr / _geom.lineBytes;
}

std::uint32_t
Cache::setIndex(std::uint64_t addr) const
{
    return static_cast<std::uint32_t>(lineAddr(addr) % _geom.numSets());
}

std::uint64_t
Cache::tagOf(std::uint64_t addr) const
{
    return lineAddr(addr) / _geom.numSets();
}

Cache::Line &
Cache::lineAt(std::uint32_t set, std::uint32_t way)
{
    return _lines[static_cast<std::size_t>(set) * _geom.assoc + way];
}

const Cache::Line &
Cache::lineAt(std::uint32_t set, std::uint32_t way) const
{
    return _lines[static_cast<std::size_t>(set) * _geom.assoc + way];
}

int
Cache::findWay(std::uint64_t addr) const
{
    const auto set = setIndex(addr);
    const auto tag = tagOf(addr);
    for (std::uint32_t w = 0; w < _geom.assoc; ++w) {
        const Line &line = lineAt(set, w);
        if (line.valid && line.tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

bool
Cache::contains(std::uint64_t addr) const
{
    return findWay(addr) >= 0;
}

bool
Cache::isDirty(std::uint64_t addr) const
{
    const int w = findWay(addr);
    if (w < 0)
        return false;
    return lineAt(setIndex(addr), static_cast<std::uint32_t>(w)).dirty;
}

void
Cache::flushAll()
{
    for (auto &line : _lines) {
        line.valid = false;
        line.dirty = false;
    }
}

std::uint32_t
Cache::evictFor(std::uint64_t addr, std::uint64_t cycle,
                std::uint32_t &way_out)
{
    const auto set = setIndex(addr);
    std::uint32_t victim = 0;
    std::uint64_t oldest = ~0ull;
    for (std::uint32_t w = 0; w < _geom.assoc; ++w) {
        const Line &line = lineAt(set, w);
        if (!line.valid) {
            way_out = w;
            return 0;
        }
        if (line.lastUse < oldest) {
            oldest = line.lastUse;
            victim = w;
        }
    }
    Line &line = lineAt(set, victim);
    std::uint32_t penalty = 0;
    if (line.dirty) {
        // Read the dirty data out of the array and push it down.
        _sink.record(_events.evict, cycle, 1);
        const std::uint64_t victim_addr =
            (line.tag * _geom.numSets() + set) *
            static_cast<std::uint64_t>(_geom.lineBytes);
        ++_stats.writebacksOut;
        _next.writeback(victim_addr, cycle);
        line.dirty = false;
        penalty = _geom.dirtyEvictPenalty;
    }
    line.valid = false;
    way_out = victim;
    return penalty;
}

std::uint32_t
Cache::fillLine(std::uint64_t addr, std::uint64_t cycle,
                std::uint64_t request, bool dirty)
{
    std::uint32_t way = 0;
    const std::uint32_t penalty = evictFor(addr, cycle, way);
    const std::uint32_t next_lat =
        _next.read(addr, cycle + penalty) + penalty;
    Line &line = lineAt(setIndex(addr), way);
    line.valid = true;
    line.dirty = dirty;
    line.tag = tagOf(addr);
    // LRU stamps use request order: a fill is a use at the time of
    // the demand access, not at probe or completion time (otherwise
    // an in-flight fill would look younger than a later hit).
    line.lastUse = request;
    _sink.record(_events.fill, cycle + next_lat, 1);
    return next_lat;
}

std::uint32_t
Cache::read(std::uint64_t addr, std::uint64_t cycle)
{
    const int way = findWay(addr);
    if (way >= 0) {
        ++_stats.readHits;
        Line &line = lineAt(setIndex(addr), static_cast<std::uint32_t>(way));
        line.lastUse = cycle;
        _sink.record(_events.read, cycle, 1);
        return _geom.hitLatency;
    }
    ++_stats.readMisses;
    // Tag probe costs the hit latency, then the lower level services
    // the fill.
    const std::uint32_t next_lat = fillLine(
        addr, cycle + _geom.hitLatency, cycle, /*dirty=*/false);
    return _geom.hitLatency + next_lat;
}

std::uint32_t
Cache::write(std::uint64_t addr, std::uint64_t cycle)
{
    const int way = findWay(addr);
    if (way >= 0) {
        ++_stats.writeHits;
        Line &line = lineAt(setIndex(addr), static_cast<std::uint32_t>(way));
        line.lastUse = cycle;
        line.dirty = true;
        _sink.record(_events.write, cycle, 1);
        return _geom.hitLatency;
    }
    ++_stats.writeMisses;
    // Write-allocate: fetch the line, then merge the store into it.
    const std::uint32_t next_lat = fillLine(
        addr, cycle + _geom.hitLatency, cycle, /*dirty=*/true);
    _sink.record(_events.write, cycle + _geom.hitLatency + next_lat, 1);
    return _geom.hitLatency + next_lat;
}

std::uint32_t
Cache::probeSet(std::uint32_t set, std::uint64_t base,
                std::uint64_t cycle)
{
    // The attacker array is way-major: way w's line for this set
    // lives at base + w * (numSets * lineBytes) + set * lineBytes,
    // so the assoc addresses below all map to `set` with distinct
    // tags.
    const std::uint64_t way_stride =
        static_cast<std::uint64_t>(_geom.numSets()) * _geom.lineBytes;
    std::uint32_t total = 0;
    for (std::uint32_t w = 0; w < _geom.assoc; ++w) {
        const std::uint64_t addr = base + w * way_stride +
                                   static_cast<std::uint64_t>(set) *
                                       _geom.lineBytes;
        total += read(addr, cycle);
    }
    return total;
}

std::uint64_t
Cache::probeSweep(std::uint64_t base, std::uint64_t cycle)
{
    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s < _geom.numSets(); ++s)
        total += probeSet(s, base, cycle);
    return total;
}

void
Cache::writeback(std::uint64_t addr, std::uint64_t cycle)
{
    ++_stats.writebacksIn;
    const int way = findWay(addr);
    if (way >= 0) {
        Line &line = lineAt(setIndex(addr), static_cast<std::uint32_t>(way));
        line.lastUse = cycle;
        line.dirty = true;
        _sink.record(_events.write, cycle, 1);
        return;
    }
    // Non-inclusive fallback: allocate the full line without fetching
    // (the incoming write-back carries the whole line).
    std::uint32_t way2 = 0;
    evictFor(addr, cycle, way2);
    Line &line = lineAt(setIndex(addr), way2);
    line.valid = true;
    line.dirty = true;
    line.tag = tagOf(addr);
    line.lastUse = cycle;
    _sink.record(_events.write, cycle, 1);
}

} // namespace savat::uarch
