/**
 * @file
 * Functional sparse memory and the DRAM/bus timing model.
 */

#ifndef SAVAT_UARCH_MEMORY_HH
#define SAVAT_UARCH_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "uarch/activity.hh"

namespace savat::uarch {

/**
 * Byte-addressable functional memory backed by on-demand 4 KiB pages.
 *
 * The measurement kernels sweep arrays up to a few times the L2 size
 * (8 MiB and more); sparse pages keep the host footprint proportional
 * to the bytes actually touched.
 */
class SparseMemory
{
  public:
    static constexpr std::uint64_t kPageBytes = 4096;

    std::uint8_t readByte(std::uint64_t addr) const;
    void writeByte(std::uint64_t addr, std::uint8_t value);

    std::uint32_t readWord(std::uint64_t addr) const;
    void writeWord(std::uint64_t addr, std::uint32_t value);

    /**
     * Bulk store of `count` copies of a little-endian word starting
     * at addr (same byte layout as count writeWord() calls 4 bytes
     * apart). Resolves each page once, so prefilling a multi-MiB
     * footprint does not pay a hash lookup per word.
     */
    void fillWords(std::uint64_t addr, std::uint32_t value,
                   std::uint64_t count);

    /** Number of pages materialized so far. */
    std::size_t pageCount() const { return _pages.size(); }

  private:
    using Page = std::unique_ptr<std::uint8_t[]>;
    mutable std::unordered_map<std::uint64_t, Page> _pages;

    /** One-entry page cache: kernel sweeps touch runs of addresses
     * on the same page, so most lookups skip the hash map. */
    mutable std::uint64_t _lastPage = ~std::uint64_t{0};
    mutable std::uint8_t *_lastData = nullptr;

    std::uint8_t *pageFor(std::uint64_t addr) const;
};

/**
 * Abstract memory level: everything below a cache (another cache, or
 * main memory) implements this timing interface.
 */
class MemLevel
{
  public:
    virtual ~MemLevel() = default;

    /**
     * Demand read of the line containing addr.
     * @return latency in cycles until the data is available.
     */
    virtual std::uint32_t read(std::uint64_t addr, std::uint64_t cycle) = 0;

    /**
     * Write-back of a full dirty line. Non-blocking (buffered): the
     * caller does not stall, so no latency is returned.
     */
    virtual void writeback(std::uint64_t addr, std::uint64_t cycle) = 0;
};

/** Statistics kept by MainMemory. */
struct MainMemoryStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
};

/**
 * Main memory timing model: fixed access latency, burst transfers on
 * the off-chip bus, DRAM array activity. Emits BusRead/BusWrite and
 * DramRead/DramWrite events.
 */
class MainMemory : public MemLevel
{
  public:
    /**
     * @param latency     Demand-read latency in CPU cycles.
     * @param burstCycles Bus occupancy of one line transfer.
     * @param sink        Receiver for activity events.
     */
    MainMemory(std::uint32_t latency, std::uint32_t burstCycles,
               ActivitySink &sink);

    std::uint32_t read(std::uint64_t addr, std::uint64_t cycle) override;
    void writeback(std::uint64_t addr, std::uint64_t cycle) override;

    const MainMemoryStats &stats() const { return _stats; }
    void clearStats() { _stats = {}; }

  private:
    std::uint32_t _latency;
    std::uint32_t _burstCycles;
    ActivitySink &_sink;
    MainMemoryStats _stats;
};

} // namespace savat::uarch

#endif // SAVAT_UARCH_MEMORY_HH
