#include "uarch/machine.hh"

#include <cstring>

#include "support/logging.hh"

namespace savat::uarch {

MachineConfig
core2duo()
{
    MachineConfig m;
    m.id = "core2duo";
    m.name = "Intel Core 2 Duo";
    m.clock = Frequency::ghz(2.4);
    m.l1 = {32 * 1024, 8, 64, 3, 2};
    m.l2 = {4096 * 1024, 16, 64, 4, 6};
    // Effective (prefetch-assisted, bandwidth-bound) stall of the
    // streaming sweeps the kernels run -- on real hardware a
    // sequential miss stream costs ~20-30 cycles per line, not the
    // raw DRAM round trip.
    m.memLatency = 12;
    m.memBurst = 16;
    m.lat.imul = 3;
    m.lat.idiv = 22;
    return m;
}

MachineConfig
pentium3m()
{
    MachineConfig m;
    m.id = "pentium3m";
    m.name = "Intel Pentium 3 M";
    m.clock = Frequency::ghz(1.2);
    m.l1 = {16 * 1024, 4, 32, 3, 2};
    // The P3M's slow FSB makes dirty write-backs expensive: stores
    // that miss stall noticeably longer than loads.
    m.l2 = {512 * 1024, 8, 32, 3, 16};
    m.memLatency = 10;
    m.memBurst = 24;
    m.lat.imul = 4;
    m.lat.idiv = 39;
    return m;
}

MachineConfig
turionx2()
{
    MachineConfig m;
    m.id = "turionx2";
    m.name = "AMD Turion X2";
    m.clock = Frequency::ghz(2.0);
    m.l1 = {64 * 1024, 2, 64, 3, 2};
    m.l2 = {1024 * 1024, 16, 64, 4, 26};
    m.memLatency = 12;
    m.memBurst = 20;
    m.lat.imul = 3;
    m.lat.idiv = 40;
    return m;
}

std::vector<MachineConfig>
caseStudyMachines()
{
    return {core2duo(), pentium3m(), turionx2()};
}

MachineConfig
machineById(const std::string &id)
{
    for (const auto &m : caseStudyMachines()) {
        if (m.id == id)
            return m;
    }
    SAVAT_FATAL("unknown machine id: ", id);
}

std::uint64_t
configDigest(const MachineConfig &m)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001B3ull;
    };
    for (char c : m.id)
        mix(static_cast<unsigned char>(c));
    std::uint64_t clock_bits = 0;
    const double hz = m.clock.inHz();
    std::memcpy(&clock_bits, &hz, sizeof(clock_bits));
    mix(clock_bits);
    auto mix_geom = [&](const CacheGeometry &g) {
        mix(g.sizeBytes);
        mix(g.assoc);
        mix(g.lineBytes);
        mix(g.hitLatency);
        mix(g.dirtyEvictPenalty);
    };
    mix_geom(m.l1);
    mix_geom(m.l2);
    mix(m.memLatency);
    mix(m.memBurst);
    mix(m.lat.alu);
    mix(m.lat.mov);
    mix(m.lat.imul);
    mix(m.lat.idiv);
    mix(m.lat.branch);
    mix(m.lat.branchTaken);
    mix(m.lat.nop);
    mix(m.lat.agu);
    mix(m.lat.branchMispredict);
    mix(static_cast<std::uint64_t>(m.timing));
    mix(m.spec.window);
    return h;
}

} // namespace savat::uarch
