#include "kernels/generator.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "isa/assembler.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace savat::kernels {

namespace {

/**
 * Emit one loop body (pointer update + test instruction + loop
 * control) into the stream.
 */
void
emitBody(std::ostringstream &oss, const uarch::MachineConfig &m,
         EventKind e, const std::string &ptr_reg, std::uint64_t mask,
         const std::string &label)
{
    const std::uint64_t not_mask = (~mask) & 0xFFFFFFFFull;
    oss << label << ":\n";
    oss << "    mov ebx," << ptr_reg << "\n";
    oss << "    add ebx," << m.l1.lineBytes << "\n";
    oss << format("    and ebx,0x%llX\n",
                  static_cast<unsigned long long>(mask));
    oss << format("    and %s,0x%llX\n", ptr_reg.c_str(),
                  static_cast<unsigned long long>(not_mask));
    oss << "    or " << ptr_reg << ",ebx\n";
    oss << "    cdq\n";
    const std::string test = eventAsm(e, ptr_reg, label);
    if (!test.empty()) {
        for (const auto &line : split(test, '\n'))
            oss << "    " << line << "\n";
    }
    oss << "    dec ecx\n";
    oss << "    jne " << label << "\n";
}

/** Common register setup. */
void
emitPrologue(std::ostringstream &oss)
{
    oss << format("    mov esi,0x%llX\n",
                  static_cast<unsigned long long>(kBaseA));
    oss << format("    mov edi,0x%llX\n",
                  static_cast<unsigned long long>(kBaseB));
    oss << "    mov eax,7\n";
    oss << "    mov edx,0\n";
}

} // namespace

const char *
kernelHalfName(KernelHalf h)
{
    switch (h) {
      case KernelHalf::Prologue: return "prologue";
      case KernelHalf::A: return "A half";
      case KernelHalf::B: return "B half";
      default: SAVAT_PANIC("bad kernel half");
    }
}

KernelHalf
AlternationKernel::halfOf(std::size_t i) const
{
    if (halfA.contains(i))
        return KernelHalf::A;
    if (halfB.contains(i))
        return KernelHalf::B;
    return KernelHalf::Prologue;
}

EventKind
AlternationKernel::eventOf(std::size_t i) const
{
    return halfOf(i) == KernelHalf::B ? b : a;
}

bool
computeKernelRegions(AlternationKernel &kernel)
{
    const auto &insts = kernel.program.instructions();
    std::size_t period = insts.size(), half = insts.size();
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const auto &inst = insts[i];
        if (inst.op != isa::Opcode::Mark || !inst.dst.isImm())
            continue;
        if (inst.dst.imm == Marks::kPeriodStart &&
            period == insts.size()) {
            period = i;
        } else if (inst.dst.imm == Marks::kHalfBoundary &&
                   half == insts.size()) {
            half = i;
        }
    }
    if (period >= half || half >= insts.size()) {
        kernel.prologue = kernel.halfA = kernel.halfB = {};
        return false;
    }
    kernel.prologue = {0, period};
    kernel.halfA = {period, half};
    kernel.halfB = {half, insts.size()};
    return true;
}

AlternationKernel
buildAlternationKernel(const uarch::MachineConfig &m, EventKind a,
                       EventKind b, std::uint64_t countA,
                       std::uint64_t countB)
{
    SAVAT_ASSERT(countA >= 1 && countB >= 1, "empty burst");

    AlternationKernel k;
    k.a = a;
    k.b = b;
    k.countA = countA;
    k.countB = countB;
    k.baseA = kBaseA;
    k.baseB = kBaseB;
    k.maskA = footprintBytes(a, m) - 1;
    k.maskB = footprintBytes(b, m) - 1;

    std::ostringstream oss;
    oss << "; SAVAT alternation kernel: A=" << eventName(a)
        << " B=" << eventName(b) << " machine=" << m.id << "\n";
    emitPrologue(oss);
    oss << "top:\n";
    oss << "    mark " << Marks::kPeriodStart << "\n";
    oss << "    mov ecx," << countA << "\n";
    emitBody(oss, m, a, "esi", k.maskA, "a_loop");
    oss << "    mark " << Marks::kHalfBoundary << "\n";
    oss << "    mov ecx," << countB << "\n";
    emitBody(oss, m, b, "edi", k.maskB, "b_loop");
    oss << "    jmp top\n";

    k.source = oss.str();
    k.program = isa::assembleOrDie(
        k.source, std::string("savat_") + eventName(a) + "_" +
                      eventName(b));
    computeKernelRegions(k);
    return k;
}

isa::Program
buildCalibrationKernel(const uarch::MachineConfig &m, EventKind e,
                       std::uint64_t warmIters,
                       std::uint64_t measureIters)
{
    SAVAT_ASSERT(warmIters >= 1 && measureIters >= 1,
                 "degenerate calibration kernel");
    const std::uint64_t mask = footprintBytes(e, m) - 1;

    std::ostringstream oss;
    oss << "; SAVAT calibration kernel: " << eventName(e)
        << " machine=" << m.id << "\n";
    emitPrologue(oss);
    oss << "    mov ecx," << warmIters << "\n";
    emitBody(oss, m, e, "esi", mask, "w_loop");
    oss << "    mark " << Marks::kCalibBegin << "\n";
    oss << "    mov ecx," << measureIters << "\n";
    emitBody(oss, m, e, "esi", mask, "m_loop");
    oss << "    mark " << Marks::kCalibEnd << "\n";
    oss << "    hlt\n";
    return isa::assembleOrDie(oss.str(),
                              std::string("calib_") + eventName(e));
}

void
prefillEventArray(uarch::SimpleCpu &cpu, const uarch::MachineConfig &m,
                  EventKind e, std::uint64_t base)
{
    if (!isLoadEvent(e) && !isTransientEvent(e))
        return;
    const std::uint64_t bytes = footprintBytes(e, m);
    cpu.memory().fillWords(base, 0x07070707u, (bytes + 3) / 4);
}

namespace {

/**
 * The calibration result is a pure function of the machine's
 * timing-relevant fields plus the event, so identical machines
 * share one global CPI measurement no matter how many meters (or
 * campaign workers) are constructed. uarch::configDigest() covers
 * the machine; the event is mixed in on top.
 */
std::uint64_t
calibrationKey(const uarch::MachineConfig &m, EventKind e)
{
    std::uint64_t h = uarch::configDigest(m);
    h ^= static_cast<std::uint64_t>(e) + 0x9E37u;
    h *= 0x100000001B3ull;
    return h;
}

} // namespace

double
measureIterationCycles(const uarch::MachineConfig &m, EventKind e)
{
    // Process-wide calibration cache: campaign workers copy their
    // meters from a prototype, but the underlying simulation is
    // deterministic per (machine, event), so one process never needs
    // to calibrate the same cell twice.
    static std::mutex cache_mutex;
    static std::unordered_map<std::uint64_t, double> cache;
    const std::uint64_t key = calibrationKey(m, e);
    {
        const std::lock_guard<std::mutex> lock(cache_mutex);
        const auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }

    const std::uint64_t lines =
        footprintBytes(e, m) / m.l1.lineBytes;

    // Warm-up must cover two full sweeps for cache-resident events.
    // Off-chip sweeps also need the L2 to fill completely: only then
    // do store sweeps start evicting dirty lines (write-back
    // pressure), which is part of their steady-state timing.
    const bool fits_somewhere = footprintBytes(e, m) <= m.l2.sizeBytes;
    const std::uint64_t l2_lines = m.l2.sizeBytes / m.l1.lineBytes;
    const std::uint64_t warm = fits_somewhere
                                   ? 2 * lines + 1024
                                   : l2_lines * 6 / 5 + 1024;
    const std::uint64_t measure = std::clamp<std::uint64_t>(
        lines, 2048, 16384);

    auto program = buildCalibrationKernel(m, e, warm, measure);

    uarch::NullActivitySink sink;
    uarch::SimpleCpu cpu(m, sink);
    prefillEventArray(cpu, m, e, kBaseA);

    std::uint64_t begin = 0, end = 0;
    cpu.setMarkCallback([&](std::int64_t id, std::uint64_t cycle,
                            std::uint64_t) {
        if (id == Marks::kCalibBegin)
            begin = cycle;
        else if (id == Marks::kCalibEnd)
            end = cycle;
        return true;
    });
    const auto res = cpu.run(program);
    SAVAT_ASSERT(res.halted, "calibration kernel did not halt");
    SAVAT_ASSERT(end > begin, "calibration marks missing");
    const double cpi = static_cast<double>(end - begin) /
                       static_cast<double>(measure);
    {
        const std::lock_guard<std::mutex> lock(cache_mutex);
        cache.emplace(key, cpi);
    }
    return cpi;
}

CountSolution
solveCounts(const uarch::MachineConfig &m, double cpiA, double cpiB,
            Frequency alternation, PairingMode mode)
{
    SAVAT_ASSERT(cpiA > 0.0 && cpiB > 0.0, "non-positive cpi");
    const double period_cycles = m.cyclesPerPeriod(alternation);
    SAVAT_ASSERT(period_cycles > cpiA + cpiB,
                 "alternation frequency too high for this pair");

    CountSolution s;
    s.cpiA = cpiA;
    s.cpiB = cpiB;
    switch (mode) {
      case PairingMode::EqualDuration: {
        s.countA = static_cast<std::uint64_t>(
            std::max(1.0, std::round(period_cycles / 2.0 / cpiA)));
        s.countB = static_cast<std::uint64_t>(
            std::max(1.0, std::round(period_cycles / 2.0 / cpiB)));
        break;
      }
      case PairingMode::EqualCounts: {
        const auto n = static_cast<std::uint64_t>(
            std::max(1.0, std::round(period_cycles / (cpiA + cpiB))));
        s.countA = n;
        s.countB = n;
        break;
      }
    }
    return s;
}

} // namespace savat::kernels
