/**
 * @file
 * The instruction/event classes of the paper's case study (Figure 5):
 * loads and stores serviced by each level of the memory hierarchy,
 * simple and complex integer arithmetic, and the empty "no
 * instruction" slot.
 */

#ifndef SAVAT_KERNELS_EVENTS_HH
#define SAVAT_KERNELS_EVENTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "uarch/machine.hh"

namespace savat::kernels {

/** The eleven instruction/event classes of Figure 5. */
enum class EventKind : std::uint8_t {
    LDM,  //!< load from main memory
    STM,  //!< store to main memory
    LDL2, //!< load hitting in L2
    STL2, //!< store hitting in L2
    LDL1, //!< load hitting in L1
    STL1, //!< store hitting in L1
    NOI,  //!< no instruction (empty slot)
    ADD,  //!< add immediate to register
    SUB,  //!< subtract immediate from register
    MUL,  //!< integer multiply
    DIV,  //!< integer divide
    // --- extension events (the paper's Section VII future work) ---
    BRH,  //!< well-predicted conditional branch
    BRM,  //!< frequently mispredicted conditional branch
    TLD,  //!< transient load: Spectre-v1 wrong-path gadget
    TLF,  //!< fenced transient load: same gadget behind lfence
    NumEvents
};

/** Number of event classes, including the extension events. */
inline constexpr std::size_t kNumEventKinds =
    static_cast<std::size_t>(EventKind::NumEvents);

/** Number of events in the paper's case study (Figure 5). */
inline constexpr std::size_t kNumPaperEvents = 11;

/** Short name ("LDM", "ADD", ...). */
const char *eventName(EventKind e);

/** Long description, as in Figure 5 ("Load from main memory", ...). */
const char *eventDescription(EventKind e);

/** Parse an event name; fatal on unknown names. */
EventKind eventByName(const std::string &name);

/** The paper's eleven events, in Figure 5's table order. */
std::vector<EventKind> allEvents();

/**
 * The paper's events plus the extension events (branch predictor
 * hits/misses -- Section VII's "should be studied" list).
 */
std::vector<EventKind> extendedEvents();

/** True for the branch-predictor extension events. */
bool isBranchEvent(EventKind e);

/**
 * True for the transient-execution extension events (TLD/TLF). Their
 * loads run on the wrong path of a mispredicted branch, so they only
 * differ from NOI-like slots when the machine's speculation window is
 * nonzero.
 */
bool isTransientEvent(EventKind e);

/** True for memory-accessing events. */
bool isMemoryEvent(EventKind e);

/** True for loads (LDM/LDL2/LDL1). */
bool isLoadEvent(EventKind e);

/** True for stores (STM/STL2/STL1). */
bool isStoreEvent(EventKind e);

/**
 * The assembly text of the event's test slot (Figure 5), with the
 * access pointer in the given register ("esi"/"edi"). NOI returns an
 * empty string; the branch events return a multi-line slot whose
 * internal label is made unique with labelSuffix.
 */
std::string eventAsm(EventKind e, const std::string &ptrReg,
                     const std::string &labelSuffix = "");

/**
 * Size of the array the pointer-update code sweeps to create the
 * event's cache behaviour on the given machine: half the L1 for L1
 * hits, bigger than L1 but resident in L2 for L2 hits, several times
 * the L2 for off-chip accesses. Non-memory events get the L1-sized
 * footprint (the pointer-update code runs either way, exactly as in
 * the paper's Figure 4).
 */
std::uint64_t footprintBytes(EventKind e, const uarch::MachineConfig &m);

} // namespace savat::kernels

#endif // SAVAT_KERNELS_EVENTS_HH
