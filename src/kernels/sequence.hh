/**
 * @file
 * Instruction-sequence alternation kernels.
 *
 * Section III of the paper raises "combination": sensitive data may
 * select between entire *sequences* of instructions, not single
 * ones, and conjectures that the sum of single-instruction SAVATs
 * estimates the combined signal. It also notes that a more accurate
 * measurement simply uses the whole sequences as the A/B activity in
 * the alternation kernel. This module implements exactly that:
 * alternation kernels whose test slot holds a short sequence of
 * Figure-5 events, so sequence SAVAT can be measured directly and
 * the additivity conjecture tested (see bench_ext_sequences).
 */

#ifndef SAVAT_KERNELS_SEQUENCE_HH
#define SAVAT_KERNELS_SEQUENCE_HH

#include <string>
#include <vector>

#include "kernels/events.hh"
#include "kernels/generator.hh"

namespace savat::kernels {

/** A short sequence of Figure-5 events used as one test slot. */
using EventSequence = std::vector<EventKind>;

/** Display name ("ADD+LDM+DIV"). */
std::string sequenceName(const EventSequence &seq);

/**
 * Build an alternation kernel whose A and B slots each execute a
 * sequence of events (memory events use the half's own pointer, so
 * the cache behaviour matches the single-event kernels).
 *
 * The loop body layout matches buildAlternationKernel exactly --
 * pointer update, cdq, test slot, loop control -- only the test slot
 * holds several instructions.
 */
AlternationKernel
buildSequenceKernel(const uarch::MachineConfig &m,
                    const EventSequence &a, const EventSequence &b,
                    std::uint64_t countA, std::uint64_t countB);

/**
 * Steady-state cycles per iteration of a sequence half (analogous to
 * measureIterationCycles).
 */
double measureSequenceIterationCycles(const uarch::MachineConfig &m,
                                      const EventSequence &seq);

/**
 * Largest footprint used by the sequence (the sweep mask must cover
 * the most demanding event; NOI-only sequences use the L1 default).
 */
std::uint64_t sequenceFootprintBytes(const EventSequence &seq,
                                     const uarch::MachineConfig &m);

} // namespace savat::kernels

#endif // SAVAT_KERNELS_SEQUENCE_HH
