#include "kernels/events.hh"

#include <algorithm>

#include "support/logging.hh"

namespace savat::kernels {

const char *
eventName(EventKind e)
{
    switch (e) {
      case EventKind::LDM: return "LDM";
      case EventKind::STM: return "STM";
      case EventKind::LDL2: return "LDL2";
      case EventKind::STL2: return "STL2";
      case EventKind::LDL1: return "LDL1";
      case EventKind::STL1: return "STL1";
      case EventKind::NOI: return "NOI";
      case EventKind::ADD: return "ADD";
      case EventKind::SUB: return "SUB";
      case EventKind::MUL: return "MUL";
      case EventKind::DIV: return "DIV";
      case EventKind::BRH: return "BRH";
      case EventKind::BRM: return "BRM";
      case EventKind::TLD: return "TLD";
      case EventKind::TLF: return "TLF";
      default: SAVAT_PANIC("bad event kind");
    }
}

const char *
eventDescription(EventKind e)
{
    switch (e) {
      case EventKind::LDM: return "Load from main memory";
      case EventKind::STM: return "Store to main memory";
      case EventKind::LDL2: return "Load from L2 cache";
      case EventKind::STL2: return "Store to L2 cache";
      case EventKind::LDL1: return "Load from L1 cache";
      case EventKind::STL1: return "Store to L1 cache";
      case EventKind::NOI: return "No instruction";
      case EventKind::ADD: return "Add imm to reg";
      case EventKind::SUB: return "Sub imm from reg";
      case EventKind::MUL: return "Integer multiplication";
      case EventKind::DIV: return "Integer division";
      case EventKind::BRH: return "Predicted branch";
      case EventKind::BRM: return "Mispredicted branch";
      case EventKind::TLD: return "Transient load (Spectre gadget)";
      case EventKind::TLF: return "Fenced transient load";
      default: SAVAT_PANIC("bad event kind");
    }
}

EventKind
eventByName(const std::string &name)
{
    for (auto e : extendedEvents()) {
        if (name == eventName(e))
            return e;
    }
    SAVAT_FATAL("unknown event name: ", name);
}

std::vector<EventKind>
allEvents()
{
    std::vector<EventKind> out;
    out.reserve(kNumPaperEvents);
    for (std::size_t i = 0; i < kNumPaperEvents; ++i)
        out.push_back(static_cast<EventKind>(i));
    return out;
}

std::vector<EventKind>
extendedEvents()
{
    std::vector<EventKind> out;
    out.reserve(kNumEventKinds);
    for (std::size_t i = 0; i < kNumEventKinds; ++i)
        out.push_back(static_cast<EventKind>(i));
    return out;
}

bool
isBranchEvent(EventKind e)
{
    return e == EventKind::BRH || e == EventKind::BRM;
}

bool
isTransientEvent(EventKind e)
{
    return e == EventKind::TLD || e == EventKind::TLF;
}

bool
isLoadEvent(EventKind e)
{
    return e == EventKind::LDM || e == EventKind::LDL2 ||
           e == EventKind::LDL1;
}

bool
isStoreEvent(EventKind e)
{
    return e == EventKind::STM || e == EventKind::STL2 ||
           e == EventKind::STL1;
}

bool
isMemoryEvent(EventKind e)
{
    return isLoadEvent(e) || isStoreEvent(e);
}

std::string
eventAsm(EventKind e, const std::string &ptrReg,
         const std::string &labelSuffix)
{
    // The branch slots test a bit of the freshly computed sweep
    // offset (in ebx): bit 6 of a 64-byte-stride sweep toggles every
    // iteration, defeating the bimodal predictor; testing against 0
    // gives a never-taken, perfectly predicted branch. Both slots
    // execute the same instruction mix.
    const std::string label = "bp_" + labelSuffix;
    switch (e) {
      case EventKind::LDM:
      case EventKind::LDL2:
      case EventKind::LDL1:
        return "mov eax,[" + ptrReg + "]";
      case EventKind::STM:
      case EventKind::STL2:
      case EventKind::STL1:
        return "mov [" + ptrReg + "],0xFFFFFFFF";
      case EventKind::NOI:
        return "";
      case EventKind::ADD:
        return "add eax,173";
      case EventKind::SUB:
        return "sub eax,173";
      case EventKind::MUL:
        return "imul eax,173";
      case EventKind::DIV:
        return "idiv eax";
      case EventKind::BRH:
        return "test ebx,0\njne " + label + "\nnop\n" + label + ":";
      case EventKind::BRM:
        return "test ebx,64\njne " + label + "\nnop\n" + label +
               ":";
      case EventKind::TLD:
        // Spectre-v1 shape: bit 9 of the 64-byte-stride sweep offset
        // flips every 8 iterations, so the guard runs in streaks the
        // bimodal predictor mispredicts at each transition. When the
        // taken (skip) streak begins, the not-taken prediction sends
        // the load down the wrong path: a transient fill of a line
        // the architectural path never touches.
        return "test ebx,512\njne " + label + "\nmov eax,[" + ptrReg +
               "]\n" + label + ":";
      case EventKind::TLF:
        // Identical gadget with the lfence mitigation: the fence
        // stops the wrong-path window before the load, so no
        // transient fill ever lands.
        return "test ebx,512\njne " + label + "\nlfence\nmov eax,[" +
               ptrReg + "]\n" + label + ":";
      default:
        SAVAT_PANIC("bad event kind");
    }
}

std::uint64_t
footprintBytes(EventKind e, const uarch::MachineConfig &m)
{
    switch (e) {
      case EventKind::LDM:
      case EventKind::STM:
        // Several times the L2 so the sweep always misses.
        return std::uint64_t{4} * m.l2.sizeBytes;
      case EventKind::LDL2:
      case EventKind::STL2:
        // Bigger than L1, comfortably resident in L2.
        return std::min<std::uint64_t>(std::uint64_t{4} * m.l1.sizeBytes,
                                       m.l2.sizeBytes / 4);
      default:
        // L1 hits and the non-memory events: half the L1.
        return m.l1.sizeBytes / 2;
    }
}

} // namespace savat::kernels
