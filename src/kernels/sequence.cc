#include "kernels/sequence.hh"

#include <algorithm>
#include <sstream>

#include "isa/assembler.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "uarch/cpu.hh"

namespace savat::kernels {

std::string
sequenceName(const EventSequence &seq)
{
    std::string out;
    for (std::size_t i = 0; i < seq.size(); ++i) {
        if (i)
            out += "+";
        out += eventName(seq[i]);
    }
    return out.empty() ? "EMPTY" : out;
}

std::uint64_t
sequenceFootprintBytes(const EventSequence &seq,
                       const uarch::MachineConfig &m)
{
    std::uint64_t fp = footprintBytes(EventKind::NOI, m);
    for (auto e : seq)
        fp = std::max(fp, footprintBytes(e, m));
    return fp;
}

namespace {

/**
 * Emit one sequence loop body. Layout matches the single-event
 * kernels (pointer update, cdq, test slot, loop control); the test
 * slot holds the whole sequence, all memory events sharing the
 * half's pointer.
 */
void
emitSequenceBody(std::ostringstream &oss, const uarch::MachineConfig &m,
                 const EventSequence &seq, const std::string &ptr_reg,
                 std::uint64_t mask, const std::string &label)
{
    const std::uint64_t not_mask = (~mask) & 0xFFFFFFFFull;
    oss << label << ":\n";
    oss << "    mov ebx," << ptr_reg << "\n";
    oss << "    add ebx," << m.l1.lineBytes << "\n";
    oss << format("    and ebx,0x%llX\n",
                  static_cast<unsigned long long>(mask));
    oss << format("    and %s,0x%llX\n", ptr_reg.c_str(),
                  static_cast<unsigned long long>(not_mask));
    oss << "    or " << ptr_reg << ",ebx\n";
    oss << "    cdq\n";
    for (std::size_t i = 0; i < seq.size(); ++i) {
        const std::string text =
            eventAsm(seq[i], ptr_reg, label + format("_%zu", i));
        if (text.empty())
            continue;
        for (const auto &line : split(text, '\n'))
            oss << "    " << line << "\n";
    }
    oss << "    dec ecx\n";
    oss << "    jne " << label << "\n";
}

} // namespace

AlternationKernel
buildSequenceKernel(const uarch::MachineConfig &m,
                    const EventSequence &a, const EventSequence &b,
                    std::uint64_t countA, std::uint64_t countB)
{
    SAVAT_ASSERT(countA >= 1 && countB >= 1, "empty burst");

    AlternationKernel k;
    k.a = a.empty() ? EventKind::NOI : a.front();
    k.b = b.empty() ? EventKind::NOI : b.front();
    k.countA = countA;
    k.countB = countB;
    k.baseA = kBaseA;
    k.baseB = kBaseB;
    k.maskA = sequenceFootprintBytes(a, m) - 1;
    k.maskB = sequenceFootprintBytes(b, m) - 1;

    std::ostringstream oss;
    oss << "; SAVAT sequence kernel: A=" << sequenceName(a)
        << " B=" << sequenceName(b) << " machine=" << m.id << "\n";
    oss << format("    mov esi,0x%llX\n",
                  static_cast<unsigned long long>(kBaseA));
    oss << format("    mov edi,0x%llX\n",
                  static_cast<unsigned long long>(kBaseB));
    oss << "    mov eax,7\n";
    oss << "    mov edx,0\n";
    oss << "top:\n";
    oss << "    mark " << Marks::kPeriodStart << "\n";
    oss << "    mov ecx," << countA << "\n";
    emitSequenceBody(oss, m, a, "esi", k.maskA, "a_loop");
    oss << "    mark " << Marks::kHalfBoundary << "\n";
    oss << "    mov ecx," << countB << "\n";
    emitSequenceBody(oss, m, b, "edi", k.maskB, "b_loop");
    oss << "    jmp top\n";

    k.source = oss.str();
    k.program = isa::assembleOrDie(
        k.source,
        "seq_" + sequenceName(a) + "_" + sequenceName(b));
    computeKernelRegions(k);
    return k;
}

double
measureSequenceIterationCycles(const uarch::MachineConfig &m,
                               const EventSequence &seq)
{
    const std::uint64_t fp = sequenceFootprintBytes(seq, m);
    const std::uint64_t lines = fp / m.l1.lineBytes;
    const bool fits_somewhere = fp <= m.l2.sizeBytes;
    const std::uint64_t l2_lines = m.l2.sizeBytes / m.l1.lineBytes;
    const std::uint64_t warm = fits_somewhere
                                   ? 2 * lines + 1024
                                   : l2_lines * 6 / 5 + 1024;
    const std::uint64_t measure =
        std::clamp<std::uint64_t>(lines, 2048, 16384);

    std::ostringstream oss;
    oss << "; sequence calibration: " << sequenceName(seq) << "\n";
    oss << format("    mov esi,0x%llX\n",
                  static_cast<unsigned long long>(kBaseA));
    oss << "    mov eax,7\n";
    oss << "    mov edx,0\n";
    oss << "    mov ecx," << warm << "\n";
    emitSequenceBody(oss, m, seq, "esi", fp - 1, "w_loop");
    oss << "    mark " << Marks::kCalibBegin << "\n";
    oss << "    mov ecx," << measure << "\n";
    emitSequenceBody(oss, m, seq, "esi", fp - 1, "m_loop");
    oss << "    mark " << Marks::kCalibEnd << "\n";
    oss << "    hlt\n";
    const auto program =
        isa::assembleOrDie(oss.str(), "seqcalib_" + sequenceName(seq));

    uarch::NullActivitySink sink;
    uarch::SimpleCpu cpu(m, sink);
    // Pre-fill so loaded values are valid idiv operands.
    bool any_load = false;
    for (auto e : seq)
        any_load = any_load || isLoadEvent(e);
    if (any_load) {
        for (std::uint64_t off = 0; off < fp; off += 4)
            cpu.memory().writeWord(kBaseA + off, 0x07070707u);
    }

    std::uint64_t begin = 0, end = 0;
    cpu.setMarkCallback([&](std::int64_t id, std::uint64_t cycle,
                            std::uint64_t) {
        if (id == Marks::kCalibBegin)
            begin = cycle;
        else if (id == Marks::kCalibEnd)
            end = cycle;
        return true;
    });
    const auto res = cpu.run(program);
    SAVAT_ASSERT(res.halted, "sequence calibration did not halt");
    SAVAT_ASSERT(end > begin, "sequence calibration marks missing");
    return static_cast<double>(end - begin) /
           static_cast<double>(measure);
}

} // namespace savat::kernels
