/**
 * @file
 * Generator for the paper's A/B alternation kernels (Figure 4).
 *
 * The generated program alternates between a burst of A
 * instructions/events and a burst of B instructions/events forever:
 *
 *     top:    mark 1                  ; period boundary
 *             mov ecx,<countA>
 *     a_loop: mov ebx,esi             ; ptr1 update:
 *             add ebx,<line>          ;   ptr1 = (ptr1 & ~mask1)
 *             and ebx,<mask1>         ;        | ((ptr1+off) & mask1)
 *             and esi,<~mask1>
 *             or esi,ebx
 *             cdq                     ; keeps edx:eax sane for idiv
 *             <A instruction>         ; e.g. mov eax,[esi]
 *             dec ecx
 *             jne a_loop
 *             mark 2                  ; half boundary
 *             mov ecx,<countB>
 *     b_loop: ... identical, ptr2 in edi, <B instruction> ...
 *             jne b_loop
 *             jmp top
 *
 * Every kernel body is identical except for the single test
 * instruction — including the pointer-update code, which runs even
 * for non-memory events, exactly as the paper requires. The `cdq`
 * (present in every body in the same slot) keeps edx:eax a valid
 * sign-extended dividend so the DIV event's `idiv eax` computes
 * eax/eax = 1 with remainder 0 and never faults, whatever the other
 * half does to eax.
 */

#ifndef SAVAT_KERNELS_GENERATOR_HH
#define SAVAT_KERNELS_GENERATOR_HH

#include <cstdint>
#include <string>

#include "isa/instruction.hh"
#include "kernels/events.hh"
#include "uarch/cpu.hh"
#include "uarch/machine.hh"

namespace savat::kernels {

/** Mark identifiers planted in generated kernels. */
struct Marks
{
    static constexpr std::int64_t kPeriodStart = 1;
    static constexpr std::int64_t kHalfBoundary = 2;
    static constexpr std::int64_t kCalibBegin = 10;
    static constexpr std::int64_t kCalibEnd = 11;
};

/** Half-open instruction-index range of one kernel region. */
struct KernelRegion
{
    std::size_t begin = 0;
    std::size_t end = 0; //!< one past the last instruction

    bool contains(std::size_t i) const { return i >= begin && i < end; }
    bool empty() const { return begin >= end; }
};

/** Which part of a kernel an instruction belongs to. */
enum class KernelHalf : std::uint8_t {
    Prologue, //!< register setup before the alternation loop
    A,        //!< period mark through the end of the A burst
    B,        //!< half mark through the jmp back to the top
};

/** Display name ("prologue", "A half", "B half"). */
const char *kernelHalfName(KernelHalf h);

/** Description of one generated alternation kernel. */
struct AlternationKernel
{
    EventKind a = EventKind::NOI;
    EventKind b = EventKind::NOI;
    std::uint64_t countA = 0; //!< A instructions per burst
    std::uint64_t countB = 0; //!< B instructions per burst

    std::uint64_t baseA = 0; //!< base address of ptr1's array
    std::uint64_t baseB = 0; //!< base address of ptr2's array
    std::uint64_t maskA = 0; //!< footprintA - 1
    std::uint64_t maskB = 0; //!< footprintB - 1

    std::string source;   //!< generated assembly text
    isa::Program program; //!< assembled program

    /**
     * Provenance regions, so diagnostics can attribute an
     * instruction to the half (and therefore the event) it came
     * from. Filled by the generators via computeKernelRegions().
     */
    KernelRegion prologue; //!< [0, period mark)
    KernelRegion halfA;    //!< [period mark, half mark)
    KernelRegion halfB;    //!< [half mark, jmp top]

    /** The half an instruction index belongs to. */
    KernelHalf halfOf(std::size_t i) const;

    /** The event-under-test of the half instruction i belongs to. */
    EventKind eventOf(std::size_t i) const;
};

/**
 * Derive the provenance regions of an assembled alternation kernel
 * from its period/half marks. Returns false (and leaves the regions
 * empty) when the marks are missing — the structural lint will
 * report that separately.
 */
bool computeKernelRegions(AlternationKernel &kernel);

/** Array base addresses used by generated kernels. */
inline constexpr std::uint64_t kBaseA = 0x10000000ull;
inline constexpr std::uint64_t kBaseB = 0x30000000ull;

/**
 * Build the alternation kernel for the (a, b) pair on the given
 * machine with the given burst lengths.
 */
AlternationKernel buildAlternationKernel(const uarch::MachineConfig &m,
                                         EventKind a, EventKind b,
                                         std::uint64_t countA,
                                         std::uint64_t countB);

/**
 * Build a single-burst calibration kernel: runs `warmIters`
 * iterations of the event's loop body, emits mark kCalibBegin, runs
 * `measureIters` more, emits mark kCalibEnd and halts. Used to
 * measure the steady-state cycles-per-iteration of one half.
 */
isa::Program buildCalibrationKernel(const uarch::MachineConfig &m,
                                    EventKind e, std::uint64_t warmIters,
                                    std::uint64_t measureIters);

/**
 * Pre-fill the array a load event sweeps with a non-zero pattern
 * (0x07 bytes) so loaded values are valid idiv operands. No-op for
 * non-load events.
 */
void prefillEventArray(uarch::SimpleCpu &cpu, const uarch::MachineConfig &m,
                       EventKind e, std::uint64_t base);

/**
 * Steady-state cycles per loop iteration of the event's half-loop on
 * the given machine, measured by simulation (cold-start effects are
 * excluded by a warm-up phase sized to the event's footprint).
 */
double measureIterationCycles(const uarch::MachineConfig &m, EventKind e);

/** How A and B burst lengths are chosen. */
enum class PairingMode {
    /**
     * Each burst lasts half the alternation period (a clean 50 %
     * duty cycle); countA and countB differ when the two events have
     * different iteration times. Default.
     */
    EqualDuration,
    /**
     * countA == countB, as in the paper's Figure 4 listing verbatim;
     * the duty cycle then depends on the events' relative speed.
     */
    EqualCounts
};

/** Burst lengths for a pair at a target alternation frequency. */
struct CountSolution
{
    std::uint64_t countA = 0;
    std::uint64_t countB = 0;
    double cpiA = 0.0; //!< measured cycles per A-loop iteration
    double cpiB = 0.0; //!< measured cycles per B-loop iteration

    /** Expected alternation period in cycles. */
    double
    periodCycles() const
    {
        return cpiA * static_cast<double>(countA) +
               cpiB * static_cast<double>(countB);
    }
};

/**
 * Choose burst lengths so the A/B alternation runs at the intended
 * frequency on the given machine.
 *
 * @param cpiA Steady-state cycles/iteration of the A half
 *             (from measureIterationCycles).
 * @param cpiB Same for the B half.
 */
CountSolution solveCounts(const uarch::MachineConfig &m, double cpiA,
                          double cpiB, Frequency alternation,
                          PairingMode mode);

} // namespace savat::kernels

#endif // SAVAT_KERNELS_GENERATOR_HH
