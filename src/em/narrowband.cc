#include "em/narrowband.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace savat::em {

std::size_t
NarrowbandSpectrum::binFor(double freq_hz) const
{
    SAVAT_ASSERT(!psd.empty() && binHz > 0.0, "empty spectrum");
    const double idx = (freq_hz - startHz) / binHz;
    const double clamped =
        std::clamp(idx, 0.0, static_cast<double>(psd.size() - 1));
    return static_cast<std::size_t>(std::lround(clamped));
}

double
NarrowbandSpectrum::bandPower(double lo_hz, double hi_hz) const
{
    SAVAT_ASSERT(hi_hz >= lo_hz, "inverted band");
    double power = 0.0;
    for (std::size_t i = 0; i < psd.size(); ++i) {
        const double lo = frequency(i) - 0.5 * binHz;
        const double hi = frequency(i) + 0.5 * binHz;
        const double olo = std::max(lo, lo_hz);
        const double ohi = std::min(hi, hi_hz);
        if (ohi > olo)
            power += psd[i] * (ohi - olo);
    }
    return power;
}

double
NarrowbandSpectrum::peakPsd(double lo_hz, double hi_hz) const
{
    double peak = 0.0;
    for (std::size_t i = 0; i < psd.size(); ++i) {
        const double f = frequency(i);
        if (f >= lo_hz && f <= hi_hz)
            peak = std::max(peak, psd[i]);
    }
    return peak;
}

} // namespace savat::em
