/**
 * @file
 * Received-signal synthesizer.
 *
 * Combines the per-channel alternation-tone amplitudes produced by
 * the micro-architectural simulation with the emission profile,
 * distance model, antenna and environment to produce the incident
 * narrowband spectrum a spectrum analyzer would see over a one-second
 * capture.
 *
 * The alternation signal is periodic and narrowband, so instead of
 * synthesizing 10^9 time-domain samples we place the tone's power
 * directly in the frequency domain: a random-walk of the
 * instantaneous alternation frequency (clock wander, OS jitter)
 * spreads the tone over nearby 1 Hz bins exactly as in the paper's
 * Figure 7, and ambient noise plus narrowband interferers fill the
 * rest of the window.
 */

#ifndef SAVAT_EM_SYNTH_HH
#define SAVAT_EM_SYNTH_HH

#include <array>
#include <complex>

#include "em/antenna.hh"
#include "em/channels.hh"
#include "em/emission.hh"
#include "em/environment.hh"
#include "em/narrowband.hh"
#include "em/propagation.hh"
#include "support/rng.hh"
#include "support/units.hh"

namespace savat::support {
class Arena;
} // namespace savat::support

namespace savat::em {

/** Per-channel complex tone amplitude, in activity units (au). */
using ChannelAmplitudes =
    std::array<std::complex<double>, kNumChannels>;

/** Inputs of one synthesis. */
struct ToneInput
{
    /** Fundamental (peak) amplitude of each channel's activity. */
    ChannelAmplitudes amplitude{};

    /**
     * Residual half-mismatch amplitudes (same units). Added to the
     * tone as INCOHERENT power: the mismatch comes from fluctuating
     * array/DRAM behaviour whose phase wanders over the capture, so
     * it cannot systematically cancel the genuine difference.
     */
    ChannelAmplitudes residualAmplitude{};

    /** Actual alternation frequency achieved by the software. */
    Frequency toneFrequency;

    /**
     * Extra tone power injected to model the residual mismatch of
     * the two structurally identical loop bodies (watts). See
     * EmissionProfile::baseMismatchEnergyZj.
     */
    double residualPowerW = 0.0;

    /** Capture duration (the spectrum analyzer dwell). */
    Duration captureTime = Duration::seconds(1.0);
};

/** Synthesis result. */
struct SynthesisResult
{
    NarrowbandSpectrum spectrum; //!< incident PSD around the tone
    double tonePowerW = 0.0;     //!< received tone power (pre-noise)
    double realizedToneHz = 0.0; //!< tone center after env. shift
};

/** The full emission -> antenna chain for one machine. */
class ReceivedSignalSynthesizer
{
  public:
    ReceivedSignalSynthesizer(EmissionProfile profile,
                              DistanceModel distances, LoopAntenna antenna,
                              EnvironmentConfig environment);

    /**
     * Received tone power (watts) for the given channel amplitudes
     * at the given distance, including per-measurement phase jitter
     * and gain drift.
     */
    double tonePower(const ChannelAmplitudes &amps, Distance d,
                     const EnvironmentDraw &env, Rng &rng) const;

    /**
     * Tone power on the power side channel: all channels draw from
     * one supply rail, so their currents add coherently with the
     * profile's currentWeight -- no distance attenuation, no
     * antenna, no spatial phase diversity.
     */
    double powerRailTonePower(const ChannelAmplitudes &amps,
                              const EnvironmentDraw &env) const;

    /**
     * Synthesize the incident spectrum at the EM antenna in a window
     * of +/- spanHz around the intended tone frequency: draws the
     * environment, sums the channels coherently at the given
     * distance and spreads the tone via synthesizeTone(). The power
     * chain composes its own front end from powerRailTonePower() and
     * synthesizeTone() instead (see pipeline::PowerChain).
     *
     * @param input      Tone description from the simulation.
     * @param d          Antenna distance.
     * @param windowCenter Intended alternation frequency (window
     *                   center; the realized tone lands nearby).
     * @param spanHz     Half-width of the synthesized window.
     * @param rng        Randomness source for this measurement.
     */
    SynthesisResult synthesize(const ToneInput &input, Distance d,
                               Frequency windowCenter, double spanHz,
                               Rng &rng) const;

    /**
     * Allocation-free variant of synthesize(): writes into `out`
     * (whose spectrum buffer is reused across reps) and takes its
     * noise-staging scratch from `arena` when given. Byte-identical
     * results to synthesize().
     */
    void synthesizeInto(const ToneInput &input, Distance d,
                        Frequency windowCenter, double spanHz,
                        Rng &rng, SynthesisResult &out,
                        support::Arena *arena = nullptr) const;

    /**
     * Chain-agnostic back half of the synthesis: place a tone of the
     * given received power into a +/- spanHz window, dispersed by
     * the environment's frequency random walk, plus ambient noise
     * and narrowband interferers.
     *
     * @param tonePowerW        Tone power before the front-end
     *                          response is applied (watts).
     * @param toneFrequency     Realized alternation frequency.
     * @param frontEndResponse  Power response of the capture front
     *                          end at the window center (antenna
     *                          band shape for EM, 1 for the power
     *                          rail). Applied to the tone and to the
     *                          ambient noise.
     * @param windowCenter      Window center frequency.
     * @param spanHz            Half-width of the window.
     * @param env               This measurement's environment draw.
     * @param rng               Randomness source.
     */
    SynthesisResult synthesizeTone(double tonePowerW,
                                   Frequency toneFrequency,
                                   double frontEndResponse,
                                   Frequency windowCenter,
                                   double spanHz,
                                   const EnvironmentDraw &env,
                                   Rng &rng) const;

    /** Allocation-free variant of synthesizeTone() (see
     * synthesizeInto()). */
    void synthesizeToneInto(double tonePowerW, Frequency toneFrequency,
                            double frontEndResponse,
                            Frequency windowCenter, double spanHz,
                            const EnvironmentDraw &env, Rng &rng,
                            SynthesisResult &out,
                            support::Arena *arena = nullptr) const;

    const EmissionProfile &profile() const { return _profile; }
    const DistanceModel &distances() const { return _distances; }
    const LoopAntenna &antenna() const { return _antenna; }
    const EnvironmentConfig &environment() const { return _environment; }

  private:
    EmissionProfile _profile;
    DistanceModel _distances;
    LoopAntenna _antenna;
    EnvironmentConfig _environment;
};

} // namespace savat::em

#endif // SAVAT_EM_SYNTH_HH
