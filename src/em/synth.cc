#include "em/synth.hh"

#include <cmath>
#include <vector>

#include "dsp/simd.hh"
#include "support/arena.hh"
#include "support/logging.hh"

namespace savat::em {

ReceivedSignalSynthesizer::ReceivedSignalSynthesizer(
    EmissionProfile profile, DistanceModel distances, LoopAntenna antenna,
    EnvironmentConfig environment)
    : _profile(std::move(profile)),
      _distances(distances),
      _antenna(antenna),
      _environment(environment)
{
}

double
ReceivedSignalSynthesizer::tonePower(const ChannelAmplitudes &amps,
                                     Distance d,
                                     const EnvironmentDraw &env,
                                     Rng &rng) const
{
    // Coherent sum over channels: each channel arrives with its own
    // coupling gain, distance attenuation and phase (plus the
    // per-measurement positioning jitter).
    std::complex<double> field(0.0, 0.0);
    for (std::size_t c = 0; c < kNumChannels; ++c) {
        const Channel ch = channelAt(c);
        const double mag = std::abs(amps[c]);
        if (mag == 0.0)
            continue;
        const double coupling =
            _profile.gain[c] * _distances.amplitudeFactor(ch, d);
        const double jitter =
            rng.gaussian(0.0, _environment.phaseJitterSigma);
        const std::complex<double> rot(
            std::cos(_profile.phase[c] + jitter),
            std::sin(_profile.phase[c] + jitter));
        field += coupling * rot * amps[c];
    }
    const double peak = std::abs(field) * env.gainFactor;
    // Mean power of a sinusoid with the given peak amplitude.
    return 0.5 * peak * peak;
}

double
ReceivedSignalSynthesizer::powerRailTonePower(
    const ChannelAmplitudes &amps, const EnvironmentDraw &env) const
{
    std::complex<double> current(0.0, 0.0);
    for (std::size_t c = 0; c < kNumChannels; ++c)
        current += _profile.currentWeight[c] * amps[c];
    const double peak = std::abs(current) * env.gainFactor;
    return 0.5 * peak * peak;
}

SynthesisResult
ReceivedSignalSynthesizer::synthesize(const ToneInput &input, Distance d,
                                      Frequency windowCenter, double spanHz,
                                      Rng &rng) const
{
    SynthesisResult res;
    synthesizeInto(input, d, windowCenter, spanHz, rng, res);
    return res;
}

void
ReceivedSignalSynthesizer::synthesizeInto(
    const ToneInput &input, Distance d, Frequency windowCenter,
    double spanHz, Rng &rng, SynthesisResult &out,
    support::Arena *arena) const
{
    const EnvironmentDraw env = drawEnvironment(_environment, rng);

    // Coherent per-channel summation at the antenna; the residual
    // mismatch adds as incoherent power.
    const double signal =
        tonePower(input.amplitude, d, env, rng) +
        tonePower(input.residualAmplitude, d, env, rng);
    synthesizeToneInto(signal + input.residualPowerW *
                                    env.gainFactor * env.gainFactor,
                       input.toneFrequency,
                       _antenna.powerResponse(windowCenter),
                       windowCenter, spanHz, env, rng, out, arena);
}

SynthesisResult
ReceivedSignalSynthesizer::synthesizeTone(
    double tonePowerW, Frequency toneFrequency,
    double frontEndResponse, Frequency windowCenter, double spanHz,
    const EnvironmentDraw &env, Rng &rng) const
{
    SynthesisResult res;
    synthesizeToneInto(tonePowerW, toneFrequency, frontEndResponse,
                       windowCenter, spanHz, env, rng, res);
    return res;
}

void
ReceivedSignalSynthesizer::synthesizeToneInto(
    double tonePowerW, Frequency toneFrequency,
    double frontEndResponse, Frequency windowCenter, double spanHz,
    const EnvironmentDraw &env, Rng &rng, SynthesisResult &out,
    support::Arena *arena) const
{
    SAVAT_ASSERT(spanHz > 0.0, "non-positive span");
    const double f0 = windowCenter.inHz();
    SAVAT_ASSERT(f0 > spanHz, "window extends below DC");

    SynthesisResult &res = out;
    res.spectrum.startHz = f0 - spanHz;
    res.spectrum.binHz = 1.0;
    const std::size_t nbins =
        static_cast<std::size_t>(std::lround(2.0 * spanHz)) + 1;
    // assign() reuses the capacity of a recycled result buffer.
    res.spectrum.psd.assign(nbins, 0.0);

    // Front-end response at the tone (antenna band shape for EM;
    // the power rail passes 1).
    const double ant = frontEndResponse;

    const double p_tone = tonePowerW * ant;
    res.tonePowerW = p_tone;

    // Spread the tone with a bounded random walk of the
    // instantaneous frequency (clock wander / OS jitter), exactly
    // the dispersion visible in the paper's Figure 7.
    const double tone_center =
        toneFrequency.inHz() + env.freqOffsetHz;
    res.realizedToneHz = tone_center;

    const std::size_t steps =
        std::max<std::size_t>(1, _environment.dispersionSteps);
    const double step_sigma =
        _environment.dispersionSigmaHz /
        std::sqrt(static_cast<double>(steps) / 3.0);
    double wander = 0.0;
    const double p_slice = p_tone / static_cast<double>(steps);
    for (std::size_t i = 0; i < steps; ++i) {
        wander += rng.gaussian(0.0, step_sigma);
        // Mean-revert so the walk stays bounded over the capture.
        wander *= 0.98;
        const double f = tone_center + wander;
        if (f >= res.spectrum.startHz - 0.5 &&
            f <= res.spectrum.endHz() + 0.5) {
            res.spectrum.psd[res.spectrum.binFor(f)] +=
                p_slice / res.spectrum.binHz;
        }
    }

    // Ambient noise: exponentially distributed per 1 Hz bin
    // (Rayleigh-fading power) around the configured density. The
    // uniform draws are staged scalar-sequentially (preserving the
    // RNG stream order, including the rejection loop), then the
    // -log transform runs through the vectorized kernel.
    const double ambient = _environment.ambientNoiseWPerHz * ant;
    double *ubuf;
    std::vector<double> fallback;
    if (arena != nullptr) {
        ubuf = arena->alloc<double>(nbins);
    } else {
        fallback.resize(nbins);
        ubuf = fallback.data();
    }
    for (std::size_t i = 0; i < nbins; ++i) {
        double u;
        do {
            u = rng.uniform();
        } while (u <= 0.0);
        ubuf[i] = u;
    }
    dsp::simd::kernels().negLogAccum(ambient, ubuf,
                                     res.spectrum.psd.data(), nbins);

    // Narrowband interferers: Poisson count across the window, each
    // a 1-bin carrier with log-normal power (the "weak external
    // radio signal" of Figure 8).
    const double expected =
        _environment.interfererDensityPerKhz * (2.0 * spanHz / 1000.0);
    // Knuth Poisson sampling (expected is small).
    std::size_t count = 0;
    {
        const double limit = std::exp(-expected);
        double prod = rng.uniform();
        while (prod > limit) {
            ++count;
            prod *= rng.uniform();
        }
    }
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t bin = static_cast<std::size_t>(
            rng.uniformInt(res.spectrum.psd.size()));
        const double log_p =
            rng.gaussian(_environment.interfererLogMeanW,
                         _environment.interfererLogSigma);
        res.spectrum.psd[bin] +=
            std::pow(10.0, log_p) / res.spectrum.binHz;
    }
}

} // namespace savat::em
