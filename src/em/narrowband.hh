/**
 * @file
 * Narrowband spectrum container shared by the EM synthesizer and the
 * spectrum-analyzer model.
 */

#ifndef SAVAT_EM_NARROWBAND_HH
#define SAVAT_EM_NARROWBAND_HH

#include <cstddef>
#include <vector>

namespace savat::em {

/**
 * A power spectral density over a narrow frequency window
 * (e.g. 80 kHz +/- 2 kHz at 1 Hz resolution).
 */
struct NarrowbandSpectrum
{
    double startHz = 0.0; //!< frequency of bin 0
    double binHz = 1.0;   //!< bin width
    std::vector<double> psd; //!< W/Hz per bin

    std::size_t size() const { return psd.size(); }

    /** Center frequency of bin i. */
    double frequency(std::size_t i) const
    {
        return startHz + static_cast<double>(i) * binHz;
    }

    /** Frequency of the last bin. */
    double endHz() const
    {
        return psd.empty() ? startHz
                           : frequency(psd.size() - 1);
    }

    /** Index of the bin containing the given frequency (clamped). */
    std::size_t binFor(double freq_hz) const;

    /** Integrated power in [lo, hi] (partial edge bins included). */
    double bandPower(double lo_hz, double hi_hz) const;

    /** Largest PSD value in [lo, hi]; 0 when the band is empty. */
    double peakPsd(double lo_hz, double hi_hz) const;
};

} // namespace savat::em

#endif // SAVAT_EM_NARROWBAND_HH
