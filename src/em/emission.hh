/**
 * @file
 * Machine emission profiles: how micro-architectural activity turns
 * into radiated signal.
 *
 * An EmissionProfile maps every MicroEvent onto an emitter channel
 * with an activity weight, and gives each channel a coupling gain
 * (received amplitude per unit activity at the reference distance),
 * a coupling phase, and a relative mismatch fraction (how much the
 * channel's activity differs between the two structurally identical
 * kernel halves: different array addresses, DRAM row behaviour,
 * fetch alignment...).
 *
 * The gains are *calibrated constants* per machine, chosen so that
 * the full simulation pipeline lands in the zJ range the paper
 * reports; the structure of the SAVAT matrices emerges from the
 * simulated activity, not from these tables. See DESIGN.md §2.
 */

#ifndef SAVAT_EM_EMISSION_HH
#define SAVAT_EM_EMISSION_HH

#include <array>
#include <string>

#include "em/channels.hh"
#include "uarch/activity.hh"

namespace savat::em {

/** Complete emission description of one machine. */
struct EmissionProfile
{
    /** Machine this profile belongs to. */
    std::string machineId;

    /** Channel each MicroEvent radiates on. */
    std::array<Channel, uarch::kNumMicroEvents> eventChannel{};

    /** Activity weight of each MicroEvent (arbitrary units, "au"). */
    std::array<double, uarch::kNumMicroEvents> eventWeight{};

    /**
     * Per-channel coupling gain: received field amplitude
     * (sqrt(watt)) per au of activity rate, at the 10 cm reference
     * distance.
     */
    std::array<double, kNumChannels> gain{};

    /** Per-channel coupling phase at the antenna (radians). */
    std::array<double, kNumChannels> phase{};

    /**
     * Per-channel supply-current draw (sqrt(watt) at the power
     * meter per au of activity). Used by the power side channel,
     * where all components share one rail and therefore sum
     * coherently -- no spatial/phase diversity.
     */
    std::array<double, kNumChannels> currentWeight{};

    /**
     * Relative half-to-half activity mismatch of each channel
     * (fraction of the mean activity level).
     */
    std::array<double, kNumChannels> mismatchFraction{};

    /**
     * Residual per-pair signal energy (zJ) present in every
     * measurement regardless of the instruction pair: imperfect
     * matching of the two alternation-loop bodies plus environmental
     * pickup. Matches the paper's A/A diagonal floor.
     */
    double baseMismatchEnergyZj = 0.55;

    /** Standard deviation of the residual energy across repetitions. */
    double baseMismatchSpreadZj = 0.07;

    /**
     * Weight vector selecting the activity of a single channel; feed
     * to uarch::ActivityTrace::weightedWaveform.
     */
    std::array<double, uarch::kNumMicroEvents>
    channelWeights(Channel c) const;
};

/**
 * Emission profile of a case-study machine
 * ("core2duo" | "pentium3m" | "turionx2"); fatal on unknown id.
 */
EmissionProfile emissionProfileFor(const std::string &machineId);

} // namespace savat::em

#endif // SAVAT_EM_EMISSION_HH
