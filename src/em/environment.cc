#include "em/environment.hh"

namespace savat::em {

EnvironmentDraw
drawEnvironment(const EnvironmentConfig &cfg, Rng &rng)
{
    EnvironmentDraw d;
    d.freqOffsetHz = rng.gaussian(0.0, cfg.freqOffsetSigmaHz);
    d.gainFactor = 1.0 + rng.gaussian(0.0, cfg.gainDriftSigma);
    if (d.gainFactor < 0.5)
        d.gainFactor = 0.5;
    return d;
}

} // namespace savat::em
