#include "em/propagation.hh"

#include <cmath>

#include "support/logging.hh"

namespace savat::em {

namespace {

constexpr std::size_t
chIdx(Channel c)
{
    return static_cast<std::size_t>(c);
}

} // namespace

DistanceModel::DistanceModel()
{
    // Calibrated amplitude anchors at 10/50/100 cm. Off-chip
    // channels (Bus/Dram) retain roughly half their amplitude at
    // 50 cm and barely drop further; the big L2 array loses most of
    // its signal; the divider sits in between (its switching couples
    // into the power-delivery network); small logic structures are
    // near-field only.
    const std::array<double, kAnchors> offchip = {1.0, 0.46, 0.42};
    const std::array<double, kAnchors> divider = {1.0, 0.33, 0.26};
    const std::array<double, kAnchors> l2array = {1.0, 0.17, 0.12};
    const std::array<double, kAnchors> onchip = {1.0, 0.15, 0.10};

    _anchors[chIdx(Channel::Fetch)] = onchip;
    _anchors[chIdx(Channel::Logic)] = onchip;
    _anchors[chIdx(Channel::Mul)] = onchip;
    _anchors[chIdx(Channel::Div)] = divider;
    _anchors[chIdx(Channel::L1)] = onchip;
    _anchors[chIdx(Channel::L2)] = l2array;
    _anchors[chIdx(Channel::Bus)] = offchip;
    _anchors[chIdx(Channel::Dram)] = offchip;
}

void
DistanceModel::setAnchors(Channel c, const std::array<double, kAnchors> &a)
{
    SAVAT_ASSERT(a[0] == 1.0, "first anchor must be 1.0 (10 cm reference)");
    for (std::size_t i = 1; i < kAnchors; ++i) {
        SAVAT_ASSERT(a[i] > 0.0 && a[i] <= a[i - 1],
                     "anchors must be positive and non-increasing");
    }
    _anchors[chIdx(c)] = a;
}

const std::array<double, DistanceModel::kAnchors> &
DistanceModel::anchors(Channel c) const
{
    return _anchors[chIdx(c)];
}

double
DistanceModel::segmentSlope(Channel c, std::size_t i) const
{
    const auto &a = _anchors[chIdx(c)];
    return std::log(a[i + 1] / a[i]) /
           std::log(kAnchorMeters[i + 1] / kAnchorMeters[i]);
}

double
DistanceModel::amplitudeFactor(Channel c, Distance d) const
{
    const double m = d.inMeters();
    SAVAT_ASSERT(m > 0.0, "non-positive distance");
    const auto &a = _anchors[chIdx(c)];

    if (m <= kAnchorMeters.front()) {
        // Near-field extrapolation: magnetic dipole, amplitude ~1/r^3.
        const double ratio = kAnchorMeters.front() / m;
        return a.front() * ratio * ratio * ratio;
    }
    if (m >= kAnchorMeters.back()) {
        // Far-field extrapolation: amplitude ~1/r.
        return a.back() * kAnchorMeters.back() / m;
    }
    for (std::size_t i = 0; i + 1 < kAnchors; ++i) {
        if (m <= kAnchorMeters[i + 1]) {
            const double slope = segmentSlope(c, i);
            return a[i] * std::pow(m / kAnchorMeters[i], slope);
        }
    }
    SAVAT_PANIC("unreachable distance interpolation");
}

} // namespace savat::em
