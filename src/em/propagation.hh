/**
 * @file
 * Distance-dependent propagation of emitter channels.
 *
 * Small on-chip current loops (ALU, caches) are near-field sources
 * whose magnetic field collapses quickly with distance; off-chip bus
 * traces and DRAM modules are electrically larger and keep more of
 * their signal at range (the paper's Figures 16-18 show exactly this
 * split). We anchor each channel's amplitude factor at the paper's
 * three measurement distances (10/50/100 cm) and interpolate in
 * log-log space, extrapolating with a near-field slope below the
 * first anchor and a far-field slope beyond the last.
 */

#ifndef SAVAT_EM_PROPAGATION_HH
#define SAVAT_EM_PROPAGATION_HH

#include <array>

#include "em/channels.hh"
#include "support/units.hh"

namespace savat::em {

/** Per-channel distance attenuation model. */
class DistanceModel
{
  public:
    /** Number of anchor distances. */
    static constexpr std::size_t kAnchors = 3;

    /** Anchor distances in meters (the paper's 10/50/100 cm). */
    static constexpr std::array<double, kAnchors> kAnchorMeters = {
        0.10, 0.50, 1.00};

    /** Construct with the default calibrated anchor table. */
    DistanceModel();

    /**
     * Replace the amplitude anchors of one channel. Values are
     * amplitude factors relative to the 10 cm reference; the first
     * must be 1.0 and the sequence non-increasing.
     */
    void setAnchors(Channel c, const std::array<double, kAnchors> &a);

    /** Anchor values of a channel. */
    const std::array<double, kAnchors> &anchors(Channel c) const;

    /**
     * Amplitude factor (relative to 10 cm) for the given channel at
     * the given distance. Requires a strictly positive distance.
     */
    double amplitudeFactor(Channel c, Distance d) const;

    /** Power factor: square of the amplitude factor. */
    double
    powerFactor(Channel c, Distance d) const
    {
        const double a = amplitudeFactor(c, d);
        return a * a;
    }

  private:
    std::array<std::array<double, kAnchors>, kNumChannels> _anchors;

    /** log-log slope between anchors i and i+1 for channel c. */
    double segmentSlope(Channel c, std::size_t i) const;
};

} // namespace savat::em

#endif // SAVAT_EM_PROPAGATION_HH
