/**
 * @file
 * Measurement-environment model: everything about the lab that is
 * not the device under test or the instrument.
 */

#ifndef SAVAT_EM_ENVIRONMENT_HH
#define SAVAT_EM_ENVIRONMENT_HH

#include "support/rng.hh"
#include "support/units.hh"

namespace savat::em {

/**
 * Stochastic properties of the measurement environment.
 *
 * These produce the imperfections visible in the paper's recorded
 * spectra (Figures 7 and 8): the alternation tone is shifted a few
 * hundred hertz from its intended frequency and dispersed over tens
 * of hertz (OS jitter and clock wander in the running code), weak
 * external radio carriers appear in the window, and repeated
 * measurement campaigns see slow gain drift (antenna repositioning,
 * temperature).
 */
struct EnvironmentConfig
{
    /** Ambient (non-instrument) RF noise density [W/Hz]. */
    double ambientNoiseWPerHz = 1.0e-18;

    /** Expected number of narrowband interferers per kHz of window. */
    double interfererDensityPerKhz = 0.4;

    /** Log10 mean of interferer carrier power [W]. */
    double interfererLogMeanW = -16.0;

    /** Log10 standard deviation of interferer power. */
    double interfererLogSigma = 0.6;

    /** Std dev of the per-measurement tone frequency shift [Hz]. */
    double freqOffsetSigmaHz = 220.0;

    /** Total rms dispersion of the tone over a capture [Hz]. */
    double dispersionSigmaHz = 45.0;

    /** Per-measurement multiplicative gain drift (std dev). */
    double gainDriftSigma = 0.015;

    /** Per-measurement coupling phase jitter per channel [rad]. */
    double phaseJitterSigma = 0.06;

    /** Random-walk steps used to spread the tone (1 ms steps / 1 s). */
    std::size_t dispersionSteps = 1000;
};

/** One measurement's realized environmental state. */
struct EnvironmentDraw
{
    double freqOffsetHz = 0.0; //!< realized tone shift
    double gainFactor = 1.0;   //!< realized amplitude drift factor
};

/** Draw the per-measurement environmental state. */
EnvironmentDraw drawEnvironment(const EnvironmentConfig &cfg, Rng &rng);

} // namespace savat::em

#endif // SAVAT_EM_ENVIRONMENT_HH
