#include "em/antenna.hh"

#include <cmath>

#include "support/logging.hh"

namespace savat::em {

LoopAntenna::LoopAntenna(double gain, Frequency cornerHz,
                         Frequency maxFrequency)
    : _gain(gain), _corner(cornerHz), _max(maxFrequency)
{
    SAVAT_ASSERT(gain > 0.0, "non-positive antenna gain");
    SAVAT_ASSERT(cornerHz.inHz() > 0.0, "non-positive corner frequency");
}

double
LoopAntenna::amplitudeResponse(Frequency f) const
{
    SAVAT_ASSERT(f.inHz() > 0.0, "non-positive frequency");
    if (f > _max) {
        // Beyond the rated band the response collapses quickly.
        const double ratio = _max.inHz() / f.inHz();
        return _gain * ratio * ratio;
    }
    // Single-pole high-pass shape: flat above the corner.
    const double x = f.inHz() / _corner.inHz();
    return _gain * x / std::sqrt(1.0 + x * x);
}

} // namespace savat::em
