/**
 * @file
 * Receiving antenna model (magnetic loop, AOR LA400 class).
 */

#ifndef SAVAT_EM_ANTENNA_HH
#define SAVAT_EM_ANTENNA_HH

#include "support/units.hh"

namespace savat::em {

/**
 * A wideband magnetic loop antenna.
 *
 * The loop's output is flat across its rated band and rolls off
 * below a corner frequency (the electrically-small loop's response
 * falls ~20 dB/decade toward DC). The paper's 80 kHz alternation
 * tone sits comfortably inside the LA400's 10 kHz-500 MHz range.
 */
class LoopAntenna
{
  public:
    /**
     * @param gain          Mid-band amplitude gain (relative, 1.0 =
     *                      calibrated reference).
     * @param cornerHz      Low-frequency corner.
     * @param maxFrequency  Upper edge of the rated band.
     */
    explicit LoopAntenna(double gain = 1.0,
                         Frequency cornerHz = Frequency::khz(10.0),
                         Frequency maxFrequency = Frequency::mhz(500.0));

    /** Amplitude response at the given frequency. */
    double amplitudeResponse(Frequency f) const;

    /** Power response (square of amplitude response). */
    double
    powerResponse(Frequency f) const
    {
        const double a = amplitudeResponse(f);
        return a * a;
    }

    double gain() const { return _gain; }
    Frequency corner() const { return _corner; }
    Frequency maxFrequency() const { return _max; }

  private:
    double _gain;
    Frequency _corner;
    Frequency _max;
};

} // namespace savat::em

#endif // SAVAT_EM_ANTENNA_HH
