/**
 * @file
 * Physical emitter channels.
 *
 * Each micro-architectural component with a distinct physical
 * location/geometry radiates on its own "channel": its field has its
 * own coupling strength, phase, and distance behaviour at the
 * receiving antenna. This is how the model reproduces the paper's
 * observation that LDM and LDL2 are each distinguishable from ADD by
 * about the same amount, yet *more* distinguishable from each other:
 * their signals live on different channels.
 */

#ifndef SAVAT_EM_CHANNELS_HH
#define SAVAT_EM_CHANNELS_HH

#include <cstddef>
#include <cstdint>

namespace savat::em {

/** Emitter channels (one per physically distinct radiating group). */
enum class Channel : std::uint8_t {
    Fetch, //!< front-end fetch/decode structures
    Logic, //!< general integer logic, schedulers, pipeline clocking
    Mul,   //!< multiplier array
    Div,   //!< iterative divider
    L1,    //!< L1 data array
    L2,    //!< L2 data array (large on-chip SRAM)
    Bus,   //!< off-chip processor-memory bus traces
    Dram,  //!< DRAM devices
    NumChannels
};

/** Number of emitter channels. */
inline constexpr std::size_t kNumChannels =
    static_cast<std::size_t>(Channel::NumChannels);

/** Short display name ("L2", "Bus", ...). */
const char *channelName(Channel c);

/** Iteration helper. */
inline Channel
channelAt(std::size_t i)
{
    return static_cast<Channel>(i);
}

} // namespace savat::em

#endif // SAVAT_EM_CHANNELS_HH
