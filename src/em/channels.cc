#include "em/channels.hh"

#include "support/logging.hh"

namespace savat::em {

const char *
channelName(Channel c)
{
    switch (c) {
      case Channel::Fetch: return "Fetch";
      case Channel::Logic: return "Logic";
      case Channel::Mul: return "Mul";
      case Channel::Div: return "Div";
      case Channel::L1: return "L1";
      case Channel::L2: return "L2";
      case Channel::Bus: return "Bus";
      case Channel::Dram: return "Dram";
      default: SAVAT_PANIC("bad channel");
    }
}

} // namespace savat::em
