#include "em/emission.hh"

#include <cmath>

#include "support/logging.hh"

namespace savat::em {

using uarch::MicroEvent;

namespace {

/** Index helper. */
constexpr std::size_t
evIdx(MicroEvent ev)
{
    return static_cast<std::size_t>(ev);
}

constexpr std::size_t
chIdx(Channel c)
{
    return static_cast<std::size_t>(c);
}

/** Event -> channel routing shared by all machines. */
void
routeEvents(EmissionProfile &p)
{
    auto set = [&p](MicroEvent ev, Channel ch, double w) {
        p.eventChannel[evIdx(ev)] = ch;
        p.eventWeight[evIdx(ev)] = w;
    };
    set(MicroEvent::IFetch, Channel::Fetch, 1.0);
    set(MicroEvent::PipelineCycle, Channel::Logic, 0.05);
    set(MicroEvent::AluOp, Channel::Logic, 1.0);
    set(MicroEvent::AguOp, Channel::Logic, 0.6);
    set(MicroEvent::MulOp, Channel::Mul, 1.0);
    set(MicroEvent::DivCycle, Channel::Div, 1.0);
    set(MicroEvent::L1Read, Channel::L1, 1.0);
    set(MicroEvent::L1Write, Channel::L1, 1.0);
    set(MicroEvent::L1Fill, Channel::L1, 0.8);
    set(MicroEvent::L1Evict, Channel::L1, 0.8);
    // A fill writes a whole line into the L2 array; a demand read
    // hit reads one. Their energies are comparable but not equal.
    set(MicroEvent::L2Read, Channel::L2, 1.0);
    set(MicroEvent::L2Write, Channel::L2, 0.55);
    set(MicroEvent::L2Fill, Channel::L2, 0.70);
    set(MicroEvent::L2Evict, Channel::L2, 0.55);
    // The read burst toggles the full-width data bus; posted writes
    // are quieter per beat on the machines measured.
    set(MicroEvent::BusRead, Channel::Bus, 1.0);
    set(MicroEvent::BusWrite, Channel::Bus, 0.20);
    set(MicroEvent::DramRead, Channel::Dram, 1.0);
    set(MicroEvent::DramWrite, Channel::Dram, 0.35);
    // A misprediction flush re-drives the whole front end and
    // replays a pipeline's worth of speculated work every flush
    // cycle: far more switching than one ordinary fetch.
    set(MicroEvent::BpMispredict, Channel::Fetch, 30.0);
}

/**
 * Coupling phases: fixed per channel, offset per machine.
 *
 * Physically distinct emitter groups arrive in near-quadrature at
 * the antenna (different positions and coupling paths), so their
 * powers add: this is what makes the paper's LDM-vs-LDL2 SAVAT come
 * out close to the sum of each event's SAVAT against ADD. Related
 * structures (fetch+logic, bus+DRAM) share a phase.
 */
void
setPhases(EmissionProfile &p, double machine_offset)
{
    const double q = M_PI / 2.0;
    // Fetch, Logic, Mul, Div, L1, L2, Bus, Dram. The divider's
    // supply-noise coupling shares the off-chip channels' phase; the
    // big arrays (Mul, L2, and L1 on the opposite side) arrive in
    // quadrature to it.
    const double base[kNumChannels] = {0.0, 0.0, q, 0.0, q, q, 0.0,
                                       0.0};
    for (std::size_t c = 0; c < kNumChannels; ++c)
        p.phase[c] = base[c] + machine_offset;
}

/**
 * Relative supply-current draw of each channel (for the power side
 * channel): everything sums coherently on the power rail, unlike the
 * spatially separated EM channels.
 */
void
setCurrentWeights(EmissionProfile &p)
{
    p.currentWeight[chIdx(Channel::Fetch)] = 1.0e-6;
    p.currentWeight[chIdx(Channel::Logic)] = 2.0e-6;
    p.currentWeight[chIdx(Channel::Mul)] = 3.0e-6;
    p.currentWeight[chIdx(Channel::Div)] = 6.0e-6;
    p.currentWeight[chIdx(Channel::L1)] = 3.0e-6;
    p.currentWeight[chIdx(Channel::L2)] = 6.0e-6;
    p.currentWeight[chIdx(Channel::Bus)] = 9.0e-6;
    p.currentWeight[chIdx(Channel::Dram)] = 4.0e-6;
}

/** Mismatch fractions shared by all machines. */
void
setMismatch(EmissionProfile &p)
{
    p.mismatchFraction[chIdx(Channel::Fetch)] = 0.03;
    p.mismatchFraction[chIdx(Channel::Logic)] = 0.03;
    p.mismatchFraction[chIdx(Channel::Mul)] = 0.03;
    p.mismatchFraction[chIdx(Channel::Div)] = 0.03;
    p.mismatchFraction[chIdx(Channel::L1)] = 0.05;
    p.mismatchFraction[chIdx(Channel::L2)] = 0.03;
    // The two off-chip sweeps use different DRAM regions (row
    // behaviour, refresh interaction): the loudest mismatch.
    p.mismatchFraction[chIdx(Channel::Bus)] = 0.15;
    p.mismatchFraction[chIdx(Channel::Dram)] = 0.15;
}

} // namespace

std::array<double, uarch::kNumMicroEvents>
EmissionProfile::channelWeights(Channel c) const
{
    std::array<double, uarch::kNumMicroEvents> w{};
    for (std::size_t e = 0; e < uarch::kNumMicroEvents; ++e) {
        if (eventChannel[e] == c)
            w[e] = eventWeight[e];
    }
    return w;
}

EmissionProfile
emissionProfileFor(const std::string &machineId)
{
    EmissionProfile p;
    p.machineId = machineId;
    routeEvents(p);
    setCurrentWeights(p);
    setMismatch(p);

    auto g = [&p](Channel c) -> double & { return p.gain[chIdx(c)]; };

    // Coupling gains are sqrt(W) of received amplitude per au of
    // activity rate at the 10 cm reference distance. Calibrated so
    // the simulated Figure 9/12/14 matrices land in the paper's zJ
    // range; see DESIGN.md section 2.
    auto w = [&p](MicroEvent ev) -> double & {
        return p.eventWeight[evIdx(ev)];
    };

    if (machineId == "core2duo") {
        setPhases(p, 0.0);
        g(Channel::Fetch) = 1.0e-7;
        g(Channel::Logic) = 2.0e-7;
        g(Channel::Mul) = 1.7e-7;
        g(Channel::Div) = 1.2e-6;
        g(Channel::L1) = 2.2e-6;
        g(Channel::L2) = 1.95e-5;
        g(Channel::Bus) = 2.2e-6;
        g(Channel::Dram) = 7.0e-7;
        w(MicroEvent::L2Write) = 0.42;
        p.mismatchFraction[chIdx(Channel::Bus)] = 0.30;
        p.mismatchFraction[chIdx(Channel::Dram)] = 0.30;
        p.baseMismatchEnergyZj = 0.55;
        p.baseMismatchSpreadZj = 0.07;
    } else if (machineId == "pentium3m") {
        // Several generations older: higher operating voltage, longer
        // wires, a very loud divider.
        setPhases(p, 0.7);
        g(Channel::Fetch) = 2.0e-7;
        g(Channel::Logic) = 4.0e-7;
        g(Channel::Mul) = 3.0e-7;
        g(Channel::Div) = 2.9e-6;
        g(Channel::L1) = 1.5e-6;
        g(Channel::L2) = 1.13e-5;
        g(Channel::Bus) = 2.4e-6;
        g(Channel::Dram) = 5.0e-7;
        w(MicroEvent::L2Write) = 0.42;
        p.mismatchFraction[chIdx(Channel::Div)] = 0.11;
        p.baseMismatchEnergyZj = 0.80;
        p.baseMismatchSpreadZj = 0.10;
    } else if (machineId == "turionx2") {
        setPhases(p, 1.3);
        g(Channel::Fetch) = 1.5e-7;
        g(Channel::Logic) = 3.0e-7;
        g(Channel::Mul) = 2.3e-7;
        g(Channel::Div) = 3.5e-6;
        g(Channel::L1) = 2.0e-6;
        g(Channel::L2) = 2.34e-5;
        g(Channel::Bus) = 2.87e-6;
        g(Channel::Dram) = 5.0e-7;
        // The Turion's memory controller posts writes aggressively:
        // store traffic toggles far less of the off-chip interface.
        w(MicroEvent::BusWrite) = 0.05;
        w(MicroEvent::DramWrite) = 0.10;
        p.mismatchFraction[chIdx(Channel::Div)] = 0.20;
        p.baseMismatchEnergyZj = 0.90;
        p.baseMismatchSpreadZj = 0.12;
    } else {
        SAVAT_FATAL("no emission profile for machine '", machineId, "'");
    }
    return p;
}

} // namespace savat::em
