#include "dsp/window.hh"

#include <cmath>

#include "support/logging.hh"

namespace savat::dsp {

const char *
windowName(WindowKind kind)
{
    switch (kind) {
      case WindowKind::Rectangular: return "rectangular";
      case WindowKind::Hann: return "hann";
      case WindowKind::Hamming: return "hamming";
      case WindowKind::Blackman: return "blackman";
      case WindowKind::BlackmanHarris: return "blackman-harris";
      case WindowKind::FlatTop: return "flattop";
      default: SAVAT_PANIC("bad window kind");
    }
}

namespace {

/** Generalized cosine window from coefficient list. */
void
cosineWindow(double *w, std::size_t n, const double *a,
             std::size_t terms)
{
    if (n == 1) {
        w[0] = 1.0;
        return;
    }
    for (std::size_t i = 0; i < n; ++i) {
        const double x =
            2.0 * M_PI * static_cast<double>(i) /
            static_cast<double>(n - 1);
        double v = 0.0;
        double sign = 1.0;
        for (std::size_t k = 0; k < terms; ++k) {
            v += sign * a[k] * std::cos(static_cast<double>(k) * x);
            sign = -sign;
        }
        w[i] = v;
    }
}

} // namespace

void
makeWindowInto(WindowKind kind, double *out, std::size_t n)
{
    SAVAT_ASSERT(n >= 1, "window length must be >= 1");
    switch (kind) {
      case WindowKind::Rectangular:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = 1.0;
        return;
      case WindowKind::Hann: {
        static const double a[] = {0.5, 0.5};
        return cosineWindow(out, n, a, 2);
      }
      case WindowKind::Hamming: {
        static const double a[] = {0.54, 0.46};
        return cosineWindow(out, n, a, 2);
      }
      case WindowKind::Blackman: {
        static const double a[] = {0.42, 0.5, 0.08};
        return cosineWindow(out, n, a, 3);
      }
      case WindowKind::BlackmanHarris: {
        static const double a[] = {0.35875, 0.48829, 0.14128, 0.01168};
        return cosineWindow(out, n, a, 4);
      }
      case WindowKind::FlatTop: {
        static const double a[] = {0.21557895, 0.41663158, 0.277263158,
                                   0.083578947, 0.006947368};
        return cosineWindow(out, n, a, 5);
      }
      default:
        SAVAT_PANIC("bad window kind");
    }
}

std::vector<double>
makeWindow(WindowKind kind, std::size_t n)
{
    SAVAT_ASSERT(n >= 1, "window length must be >= 1");
    std::vector<double> w(n);
    makeWindowInto(kind, w.data(), n);
    return w;
}

double
coherentGain(const std::vector<double> &window)
{
    SAVAT_ASSERT(!window.empty(), "empty window");
    double s = 0.0;
    for (double w : window)
        s += w;
    return s / static_cast<double>(window.size());
}

double
noiseBandwidthBins(const std::vector<double> &window)
{
    SAVAT_ASSERT(!window.empty(), "empty window");
    double s1 = 0.0, s2 = 0.0;
    for (double w : window) {
        s1 += w;
        s2 += w * w;
    }
    return static_cast<double>(window.size()) * s2 / (s1 * s1);
}

} // namespace savat::dsp
